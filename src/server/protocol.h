// Wire protocol for segidxd, the network serving layer.
//
// Frames are length-prefixed: a little-endian u32 payload length followed
// by the payload. Payloads reuse the on-page little-endian coding helpers
// (storage/coding.h), so the wire format is byte-identical across
// platforms, like the file format.
//
// Request payload layout:
//
//   u8  type          (MsgType)
//   u64 request_id    (client-chosen; echoed verbatim in the response)
//   -- kSearch:  4 x f64 rect, u64 budget_us (0 = no deadline),
//                u8 allow_partial
//   -- kInsert / kDelete: 4 x f64 rect, u64 tid
//   -- kCommit / kStats / kHealth: no body
//   -- kHello:   u32 protocol_version, u64 session_id
//
// Exactly-once extension (protocol version 2): a mutating request
// (kInsert / kDelete / kCommit) may append a 16-byte tail
//
//   u64 session_id    (nonzero; client-chosen, stable across reconnects)
//   u64 seq           (monotonic per session, starting at 1)
//
// after its fixed body. The tail is self-describing by length, so version-1
// clients that omit it keep working unchanged. The server keeps a bounded
// per-session window of the last applied sequence number and its verdict,
// persisted with every checkpoint; a retried (session_id, seq) after a
// reconnect — or after a server crash-restart — is acknowledged from the
// window instead of re-applied. kHello reports the server's protocol
// version and the session's last recorded seq so a reconnecting client can
// resynchronize.
//
// Response payload layout:
//
//   u8  type          (echoes the request type)
//   u64 request_id
//   u8  status_code   (StatusCode)
//   u32 message_len, message bytes (status message; empty on OK)
//   -- kSearch: u8 partial, u64 nodes_accessed, u32 hit_count,
//               hit_count x { u64 tid, 4 x f64 rect }
//   -- kStats / kHealth: the remaining bytes are a JSON document
//   -- others: no body
//
// Responses on one connection arrive in completion order, not request
// order — a pipelining client must match on request_id. The server closes
// the connection on any malformed frame (bad length, unknown type, short
// body): framing is the protocol's only integrity layer, so a parse error
// means the stream is unrecoverable.

#ifndef SEGIDX_SERVER_PROTOCOL_H_
#define SEGIDX_SERVER_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "common/types.h"
#include "rtree/rtree.h"
#include "storage/coding.h"

namespace segidx::server {

// Hard cap on one frame's payload. Large enough for ~100k search hits;
// small enough that a garbage length prefix cannot make the server (or a
// client) try to buffer gigabytes.
inline constexpr uint32_t kMaxFrameBytes = 8u << 20;

// Bumped to 2 for the exactly-once session/seq extension and kHello.
inline constexpr uint32_t kProtocolVersion = 2;

enum class MsgType : uint8_t {
  kSearch = 1,
  kInsert = 2,
  kDelete = 3,
  kCommit = 4,
  kStats = 5,
  kHealth = 6,
  kHello = 7,
};

inline bool ValidMsgType(uint8_t raw) {
  return raw >= static_cast<uint8_t>(MsgType::kSearch) &&
         raw <= static_cast<uint8_t>(MsgType::kHello);
}

// A decoded request. Fields beyond `type`/`request_id` are meaningful only
// for the message types that carry them.
struct Request {
  MsgType type = MsgType::kHealth;
  uint64_t request_id = 0;
  Rect rect;
  TupleId tid = 0;
  uint64_t budget_us = 0;     // kSearch: 0 = no deadline.
  bool allow_partial = false;  // kSearch.
  // Exactly-once tail on mutating requests; 0 = sessionless (version-1
  // client). kHello carries session_id alone.
  uint64_t session_id = 0;
  uint64_t seq = 0;
  uint32_t version = 0;  // kHello: client protocol version.
};

// A decoded response. `body` holds the type-specific tail (search hits or
// JSON text), still encoded.
struct Response {
  MsgType type = MsgType::kHealth;
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::vector<uint8_t> body;

  Status ToStatus() const {
    if (code == StatusCode::kOk) return Status::OK();
    return Status(code, message);
  }
};

namespace wire {

inline void AppendU8(std::vector<uint8_t>* out, uint8_t v) {
  out->push_back(v);
}
inline void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  uint8_t buf[4];
  storage::EncodeU32(buf, v);
  out->insert(out->end(), buf, buf + 4);
}
inline void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  uint8_t buf[8];
  storage::EncodeU64(buf, v);
  out->insert(out->end(), buf, buf + 8);
}
inline void AppendDouble(std::vector<uint8_t>* out, double v) {
  uint8_t buf[8];
  storage::EncodeDouble(buf, v);
  out->insert(out->end(), buf, buf + 8);
}
inline void AppendRect(std::vector<uint8_t>* out, const Rect& r) {
  AppendDouble(out, r.x.lo);
  AppendDouble(out, r.x.hi);
  AppendDouble(out, r.y.lo);
  AppendDouble(out, r.y.hi);
}

// Sequential decoder over a payload; every Take checks bounds so a short
// or oversized body is a decode failure, never an out-of-range read.
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool TakeU8(uint8_t* v) {
    if (pos_ + 1 > size_) return false;
    *v = data_[pos_];
    pos_ += 1;
    return true;
  }
  bool TakeU32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    *v = storage::DecodeU32(data_ + pos_);
    pos_ += 4;
    return true;
  }
  bool TakeU64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    *v = storage::DecodeU64(data_ + pos_);
    pos_ += 8;
    return true;
  }
  bool TakeDouble(double* v) {
    if (pos_ + 8 > size_) return false;
    *v = storage::DecodeDouble(data_ + pos_);
    pos_ += 8;
    return true;
  }
  bool TakeRect(Rect* r) {
    return TakeDouble(&r->x.lo) && TakeDouble(&r->x.hi) &&
           TakeDouble(&r->y.lo) && TakeDouble(&r->y.hi);
  }
  bool TakeBytes(size_t n, const uint8_t** p) {
    if (pos_ + n > size_) return false;
    *p = data_ + pos_;
    pos_ += n;
    return true;
  }

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace wire

// --- Request encoding / decoding -------------------------------------------

inline std::vector<uint8_t> EncodeSearchRequest(uint64_t request_id,
                                                const Rect& rect,
                                                uint64_t budget_us,
                                                bool allow_partial) {
  std::vector<uint8_t> out;
  out.reserve(1 + 8 + 32 + 8 + 1);
  wire::AppendU8(&out, static_cast<uint8_t>(MsgType::kSearch));
  wire::AppendU64(&out, request_id);
  wire::AppendRect(&out, rect);
  wire::AppendU64(&out, budget_us);
  wire::AppendU8(&out, allow_partial ? 1 : 0);
  return out;
}

// `session_id` == 0 encodes the version-1 frame without the session tail.
inline std::vector<uint8_t> EncodeWriteRequest(MsgType type,
                                               uint64_t request_id,
                                               const Rect& rect, TupleId tid,
                                               uint64_t session_id = 0,
                                               uint64_t seq = 0) {
  std::vector<uint8_t> out;
  out.reserve(1 + 8 + 32 + 8 + 16);
  wire::AppendU8(&out, static_cast<uint8_t>(type));
  wire::AppendU64(&out, request_id);
  wire::AppendRect(&out, rect);
  wire::AppendU64(&out, tid);
  if (session_id != 0) {
    wire::AppendU64(&out, session_id);
    wire::AppendU64(&out, seq);
  }
  return out;
}

inline std::vector<uint8_t> EncodeSimpleRequest(MsgType type,
                                                uint64_t request_id) {
  std::vector<uint8_t> out;
  out.reserve(1 + 8);
  wire::AppendU8(&out, static_cast<uint8_t>(type));
  wire::AppendU64(&out, request_id);
  return out;
}

inline std::vector<uint8_t> EncodeCommitRequest(uint64_t request_id,
                                                uint64_t session_id = 0,
                                                uint64_t seq = 0) {
  std::vector<uint8_t> out;
  out.reserve(1 + 8 + 16);
  wire::AppendU8(&out, static_cast<uint8_t>(MsgType::kCommit));
  wire::AppendU64(&out, request_id);
  if (session_id != 0) {
    wire::AppendU64(&out, session_id);
    wire::AppendU64(&out, seq);
  }
  return out;
}

inline std::vector<uint8_t> EncodeHelloRequest(uint64_t request_id,
                                               uint64_t session_id) {
  std::vector<uint8_t> out;
  out.reserve(1 + 8 + 4 + 8);
  wire::AppendU8(&out, static_cast<uint8_t>(MsgType::kHello));
  wire::AppendU64(&out, request_id);
  wire::AppendU32(&out, kProtocolVersion);
  wire::AppendU64(&out, session_id);
  return out;
}

namespace wire_internal {

// The optional exactly-once tail on a mutating request: exactly 16 extra
// bytes (nonzero session id + seq) or nothing. Any other remainder is a
// malformed frame.
inline bool TakeSessionTail(wire::Cursor* cur, Request* out) {
  if (cur->remaining() == 0) return true;  // Version-1 frame.
  if (cur->remaining() != 16) return false;
  if (!cur->TakeU64(&out->session_id) || !cur->TakeU64(&out->seq)) {
    return false;
  }
  return out->session_id != 0;
}

}  // namespace wire_internal

inline bool DecodeRequest(const uint8_t* data, size_t size, Request* out) {
  wire::Cursor cur(data, size);
  uint8_t raw_type = 0;
  if (!cur.TakeU8(&raw_type) || !ValidMsgType(raw_type)) return false;
  out->type = static_cast<MsgType>(raw_type);
  if (!cur.TakeU64(&out->request_id)) return false;
  switch (out->type) {
    case MsgType::kSearch: {
      uint8_t partial = 0;
      if (!cur.TakeRect(&out->rect) || !cur.TakeU64(&out->budget_us) ||
          !cur.TakeU8(&partial)) {
        return false;
      }
      out->allow_partial = partial != 0;
      break;
    }
    case MsgType::kInsert:
    case MsgType::kDelete:
      if (!cur.TakeRect(&out->rect) || !cur.TakeU64(&out->tid)) return false;
      if (!wire_internal::TakeSessionTail(&cur, out)) return false;
      break;
    case MsgType::kCommit:
      if (!wire_internal::TakeSessionTail(&cur, out)) return false;
      break;
    case MsgType::kStats:
    case MsgType::kHealth:
      break;
    case MsgType::kHello:
      if (!cur.TakeU32(&out->version) || !cur.TakeU64(&out->session_id)) {
        return false;
      }
      break;
  }
  return cur.exhausted();
}

// --- Response encoding / decoding ------------------------------------------

// Header plus an already-encoded type-specific body.
inline std::vector<uint8_t> EncodeResponse(MsgType type, uint64_t request_id,
                                           const Status& status,
                                           const uint8_t* body = nullptr,
                                           size_t body_size = 0) {
  std::vector<uint8_t> out;
  out.reserve(1 + 8 + 1 + 4 + status.message().size() + body_size);
  wire::AppendU8(&out, static_cast<uint8_t>(type));
  wire::AppendU64(&out, request_id);
  wire::AppendU8(&out, static_cast<uint8_t>(status.code()));
  wire::AppendU32(&out, static_cast<uint32_t>(status.message().size()));
  out.insert(out.end(), status.message().begin(), status.message().end());
  if (body_size > 0) out.insert(out.end(), body, body + body_size);
  return out;
}

inline std::vector<uint8_t> EncodeSearchBody(
    const std::vector<rtree::SearchHit>& hits, bool partial,
    uint64_t nodes_accessed) {
  std::vector<uint8_t> out;
  out.reserve(1 + 8 + 4 + hits.size() * 40);
  wire::AppendU8(&out, partial ? 1 : 0);
  wire::AppendU64(&out, nodes_accessed);
  wire::AppendU32(&out, static_cast<uint32_t>(hits.size()));
  for (const rtree::SearchHit& hit : hits) {
    wire::AppendU64(&out, hit.tid);
    wire::AppendRect(&out, hit.rect);
  }
  return out;
}

inline bool DecodeResponse(const uint8_t* data, size_t size, Response* out) {
  wire::Cursor cur(data, size);
  uint8_t raw_type = 0;
  uint8_t raw_code = 0;
  uint32_t msg_len = 0;
  if (!cur.TakeU8(&raw_type) || !ValidMsgType(raw_type) ||
      !cur.TakeU64(&out->request_id) || !cur.TakeU8(&raw_code) ||
      !cur.TakeU32(&msg_len)) {
    return false;
  }
  out->type = static_cast<MsgType>(raw_type);
  out->code = static_cast<StatusCode>(raw_code);
  const uint8_t* msg = nullptr;
  if (!cur.TakeBytes(msg_len, &msg)) return false;
  out->message.assign(reinterpret_cast<const char*>(msg), msg_len);
  const uint8_t* body = nullptr;
  const size_t body_size = cur.remaining();
  if (!cur.TakeBytes(body_size, &body)) return false;
  out->body.assign(body, body + body_size);
  return true;
}

struct SearchReply {
  std::vector<rtree::SearchHit> hits;
  bool partial = false;
  uint64_t nodes_accessed = 0;
};

inline bool DecodeSearchBody(const std::vector<uint8_t>& body,
                             SearchReply* out) {
  wire::Cursor cur(body.data(), body.size());
  uint8_t partial = 0;
  uint32_t count = 0;
  if (!cur.TakeU8(&partial) || !cur.TakeU64(&out->nodes_accessed) ||
      !cur.TakeU32(&count)) {
    return false;
  }
  out->partial = partial != 0;
  if (cur.remaining() != static_cast<size_t>(count) * 40) return false;
  out->hits.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!cur.TakeU64(&out->hits[i].tid) || !cur.TakeRect(&out->hits[i].rect)) {
      return false;
    }
  }
  return cur.exhausted();
}

// kHello response body: the server's protocol version plus the last
// sequence number it has recorded for the client's session (0 for a new or
// evicted session).
struct HelloReply {
  uint32_t server_version = 0;
  uint64_t last_seq = 0;
};

inline std::vector<uint8_t> EncodeHelloBody(const HelloReply& reply) {
  std::vector<uint8_t> out;
  out.reserve(4 + 8);
  wire::AppendU32(&out, reply.server_version);
  wire::AppendU64(&out, reply.last_seq);
  return out;
}

inline bool DecodeHelloBody(const std::vector<uint8_t>& body,
                            HelloReply* out) {
  wire::Cursor cur(body.data(), body.size());
  return cur.TakeU32(&out->server_version) && cur.TakeU64(&out->last_seq) &&
         cur.exhausted();
}

}  // namespace segidx::server

#endif  // SEGIDX_SERVER_PROTOCOL_H_
