// Wire protocol for segidxd, the network serving layer.
//
// Frames are length-prefixed: a little-endian u32 payload length followed
// by the payload. Payloads reuse the on-page little-endian coding helpers
// (storage/coding.h), so the wire format is byte-identical across
// platforms, like the file format.
//
// Request payload layout:
//
//   u8  type          (MsgType)
//   u64 request_id    (client-chosen; echoed verbatim in the response)
//   -- kSearch:  4 x f64 rect, u64 budget_us (0 = no deadline),
//                u8 allow_partial
//   -- kInsert / kDelete: 4 x f64 rect, u64 tid
//   -- kCommit / kStats / kHealth: no body
//
// Response payload layout:
//
//   u8  type          (echoes the request type)
//   u64 request_id
//   u8  status_code   (StatusCode)
//   u32 message_len, message bytes (status message; empty on OK)
//   -- kSearch: u8 partial, u64 nodes_accessed, u32 hit_count,
//               hit_count x { u64 tid, 4 x f64 rect }
//   -- kStats / kHealth: the remaining bytes are a JSON document
//   -- others: no body
//
// Responses on one connection arrive in completion order, not request
// order — a pipelining client must match on request_id. The server closes
// the connection on any malformed frame (bad length, unknown type, short
// body): framing is the protocol's only integrity layer, so a parse error
// means the stream is unrecoverable.

#ifndef SEGIDX_SERVER_PROTOCOL_H_
#define SEGIDX_SERVER_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "common/types.h"
#include "rtree/rtree.h"
#include "storage/coding.h"

namespace segidx::server {

// Hard cap on one frame's payload. Large enough for ~100k search hits;
// small enough that a garbage length prefix cannot make the server (or a
// client) try to buffer gigabytes.
inline constexpr uint32_t kMaxFrameBytes = 8u << 20;

enum class MsgType : uint8_t {
  kSearch = 1,
  kInsert = 2,
  kDelete = 3,
  kCommit = 4,
  kStats = 5,
  kHealth = 6,
};

inline bool ValidMsgType(uint8_t raw) {
  return raw >= static_cast<uint8_t>(MsgType::kSearch) &&
         raw <= static_cast<uint8_t>(MsgType::kHealth);
}

// A decoded request. Fields beyond `type`/`request_id` are meaningful only
// for the message types that carry them.
struct Request {
  MsgType type = MsgType::kHealth;
  uint64_t request_id = 0;
  Rect rect;
  TupleId tid = 0;
  uint64_t budget_us = 0;     // kSearch: 0 = no deadline.
  bool allow_partial = false;  // kSearch.
};

// A decoded response. `body` holds the type-specific tail (search hits or
// JSON text), still encoded.
struct Response {
  MsgType type = MsgType::kHealth;
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::vector<uint8_t> body;

  Status ToStatus() const {
    if (code == StatusCode::kOk) return Status::OK();
    return Status(code, message);
  }
};

namespace wire {

inline void AppendU8(std::vector<uint8_t>* out, uint8_t v) {
  out->push_back(v);
}
inline void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  uint8_t buf[4];
  storage::EncodeU32(buf, v);
  out->insert(out->end(), buf, buf + 4);
}
inline void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  uint8_t buf[8];
  storage::EncodeU64(buf, v);
  out->insert(out->end(), buf, buf + 8);
}
inline void AppendDouble(std::vector<uint8_t>* out, double v) {
  uint8_t buf[8];
  storage::EncodeDouble(buf, v);
  out->insert(out->end(), buf, buf + 8);
}
inline void AppendRect(std::vector<uint8_t>* out, const Rect& r) {
  AppendDouble(out, r.x.lo);
  AppendDouble(out, r.x.hi);
  AppendDouble(out, r.y.lo);
  AppendDouble(out, r.y.hi);
}

// Sequential decoder over a payload; every Take checks bounds so a short
// or oversized body is a decode failure, never an out-of-range read.
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool TakeU8(uint8_t* v) {
    if (pos_ + 1 > size_) return false;
    *v = data_[pos_];
    pos_ += 1;
    return true;
  }
  bool TakeU32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    *v = storage::DecodeU32(data_ + pos_);
    pos_ += 4;
    return true;
  }
  bool TakeU64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    *v = storage::DecodeU64(data_ + pos_);
    pos_ += 8;
    return true;
  }
  bool TakeDouble(double* v) {
    if (pos_ + 8 > size_) return false;
    *v = storage::DecodeDouble(data_ + pos_);
    pos_ += 8;
    return true;
  }
  bool TakeRect(Rect* r) {
    return TakeDouble(&r->x.lo) && TakeDouble(&r->x.hi) &&
           TakeDouble(&r->y.lo) && TakeDouble(&r->y.hi);
  }
  bool TakeBytes(size_t n, const uint8_t** p) {
    if (pos_ + n > size_) return false;
    *p = data_ + pos_;
    pos_ += n;
    return true;
  }

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace wire

// --- Request encoding / decoding -------------------------------------------

inline std::vector<uint8_t> EncodeSearchRequest(uint64_t request_id,
                                                const Rect& rect,
                                                uint64_t budget_us,
                                                bool allow_partial) {
  std::vector<uint8_t> out;
  out.reserve(1 + 8 + 32 + 8 + 1);
  wire::AppendU8(&out, static_cast<uint8_t>(MsgType::kSearch));
  wire::AppendU64(&out, request_id);
  wire::AppendRect(&out, rect);
  wire::AppendU64(&out, budget_us);
  wire::AppendU8(&out, allow_partial ? 1 : 0);
  return out;
}

inline std::vector<uint8_t> EncodeWriteRequest(MsgType type,
                                               uint64_t request_id,
                                               const Rect& rect,
                                               TupleId tid) {
  std::vector<uint8_t> out;
  out.reserve(1 + 8 + 32 + 8);
  wire::AppendU8(&out, static_cast<uint8_t>(type));
  wire::AppendU64(&out, request_id);
  wire::AppendRect(&out, rect);
  wire::AppendU64(&out, tid);
  return out;
}

inline std::vector<uint8_t> EncodeSimpleRequest(MsgType type,
                                                uint64_t request_id) {
  std::vector<uint8_t> out;
  out.reserve(1 + 8);
  wire::AppendU8(&out, static_cast<uint8_t>(type));
  wire::AppendU64(&out, request_id);
  return out;
}

inline bool DecodeRequest(const uint8_t* data, size_t size, Request* out) {
  wire::Cursor cur(data, size);
  uint8_t raw_type = 0;
  if (!cur.TakeU8(&raw_type) || !ValidMsgType(raw_type)) return false;
  out->type = static_cast<MsgType>(raw_type);
  if (!cur.TakeU64(&out->request_id)) return false;
  switch (out->type) {
    case MsgType::kSearch: {
      uint8_t partial = 0;
      if (!cur.TakeRect(&out->rect) || !cur.TakeU64(&out->budget_us) ||
          !cur.TakeU8(&partial)) {
        return false;
      }
      out->allow_partial = partial != 0;
      break;
    }
    case MsgType::kInsert:
    case MsgType::kDelete:
      if (!cur.TakeRect(&out->rect) || !cur.TakeU64(&out->tid)) return false;
      break;
    case MsgType::kCommit:
    case MsgType::kStats:
    case MsgType::kHealth:
      break;
  }
  return cur.exhausted();
}

// --- Response encoding / decoding ------------------------------------------

// Header plus an already-encoded type-specific body.
inline std::vector<uint8_t> EncodeResponse(MsgType type, uint64_t request_id,
                                           const Status& status,
                                           const uint8_t* body = nullptr,
                                           size_t body_size = 0) {
  std::vector<uint8_t> out;
  out.reserve(1 + 8 + 1 + 4 + status.message().size() + body_size);
  wire::AppendU8(&out, static_cast<uint8_t>(type));
  wire::AppendU64(&out, request_id);
  wire::AppendU8(&out, static_cast<uint8_t>(status.code()));
  wire::AppendU32(&out, static_cast<uint32_t>(status.message().size()));
  out.insert(out.end(), status.message().begin(), status.message().end());
  if (body_size > 0) out.insert(out.end(), body, body + body_size);
  return out;
}

inline std::vector<uint8_t> EncodeSearchBody(
    const std::vector<rtree::SearchHit>& hits, bool partial,
    uint64_t nodes_accessed) {
  std::vector<uint8_t> out;
  out.reserve(1 + 8 + 4 + hits.size() * 40);
  wire::AppendU8(&out, partial ? 1 : 0);
  wire::AppendU64(&out, nodes_accessed);
  wire::AppendU32(&out, static_cast<uint32_t>(hits.size()));
  for (const rtree::SearchHit& hit : hits) {
    wire::AppendU64(&out, hit.tid);
    wire::AppendRect(&out, hit.rect);
  }
  return out;
}

inline bool DecodeResponse(const uint8_t* data, size_t size, Response* out) {
  wire::Cursor cur(data, size);
  uint8_t raw_type = 0;
  uint8_t raw_code = 0;
  uint32_t msg_len = 0;
  if (!cur.TakeU8(&raw_type) || !ValidMsgType(raw_type) ||
      !cur.TakeU64(&out->request_id) || !cur.TakeU8(&raw_code) ||
      !cur.TakeU32(&msg_len)) {
    return false;
  }
  out->type = static_cast<MsgType>(raw_type);
  out->code = static_cast<StatusCode>(raw_code);
  const uint8_t* msg = nullptr;
  if (!cur.TakeBytes(msg_len, &msg)) return false;
  out->message.assign(reinterpret_cast<const char*>(msg), msg_len);
  const uint8_t* body = nullptr;
  const size_t body_size = cur.remaining();
  if (!cur.TakeBytes(body_size, &body)) return false;
  out->body.assign(body, body + body_size);
  return true;
}

struct SearchReply {
  std::vector<rtree::SearchHit> hits;
  bool partial = false;
  uint64_t nodes_accessed = 0;
};

inline bool DecodeSearchBody(const std::vector<uint8_t>& body,
                             SearchReply* out) {
  wire::Cursor cur(body.data(), body.size());
  uint8_t partial = 0;
  uint32_t count = 0;
  if (!cur.TakeU8(&partial) || !cur.TakeU64(&out->nodes_accessed) ||
      !cur.TakeU32(&count)) {
    return false;
  }
  out->partial = partial != 0;
  if (cur.remaining() != static_cast<size_t>(count) * 40) return false;
  out->hits.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!cur.TakeU64(&out->hits[i].tid) || !cur.TakeRect(&out->hits[i].rect)) {
      return false;
    }
  }
  return cur.exhausted();
}

}  // namespace segidx::server

#endif  // SEGIDX_SERVER_PROTOCOL_H_
