// Fault-tolerant client for segidxd: Client plus a retry loop.
//
// RetryingClient owns (and re-establishes) the TCP connection and drives
// the protocol-v2 exactly-once extension, so its mutating calls have
// clean semantics under connection resets, torn frames, server restarts,
// and load shedding:
//
//   * every Insert/Delete/Commit carries this session's (session_id, seq);
//   * a transport failure mid-round-trip (send failed, connection reset,
//     stream desynchronized) reconnects with capped exponential backoff +
//     jitter and resends the SAME seq — the server's dedup window turns
//     the resend into a replayed acknowledgement if the first copy did
//     land, and a fresh application if it did not;
//   * retryable server verdicts (kResourceExhausted and kUnavailable
//     shedding, kCancelled batch aborts, queue-full kDeadlineExceeded)
//     back off and retry on the live connection;
//   * everything else — including the operation's own semantic errors —
//     is returned to the caller unchanged.
//
// An OK return therefore means "applied exactly once and durable"; an
// error return after the retry budget (attempts or wall-clock deadline)
// is exhausted means the op MAY have been applied — the caller can call
// LastResolvedSeq() via a fresh Hello, or re-issue the same op later,
// because the seq stays reserved until the next mutation is issued.
//
// Searches carry no session tail (they are idempotent); they get the same
// reconnect/backoff treatment.
//
// Not thread-safe: one RetryingClient per thread, like Client.

#ifndef SEGIDX_SERVER_RETRYING_CLIENT_H_
#define SEGIDX_SERVER_RETRYING_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/geometry.h"
#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "server/client.h"

namespace segidx::server {

struct RetryPolicy {
  // Attempts per operation (first try included). <= 0 retries until the
  // deadline alone gives up.
  int max_attempts = 8;
  // Exponential backoff between attempts, with multiplicative jitter in
  // [0.5, 1.0] so colliding clients spread out.
  uint64_t initial_backoff_us = 1000;
  uint64_t max_backoff_us = 200000;
  // Wall-clock budget per operation, reconnects included. Generous by
  // default: it must ride out a server crash + recovery + restart.
  uint64_t total_deadline_ms = 30000;
  // Seeds the jitter stream (deterministic tests).
  uint64_t seed = 1;
};

class RetryingClient {
 public:
  // session_id must be nonzero and unique among concurrent writers (two
  // sessions sharing an id would corrupt each other's dedup state).
  RetryingClient(std::string host, uint16_t port, uint64_t session_id,
                 const RetryPolicy& policy = RetryPolicy());

  RetryingClient(const RetryingClient&) = delete;
  RetryingClient& operator=(const RetryingClient&) = delete;

  // Exactly-once mutations (see file comment for the contract).
  Status Insert(const Rect& rect, TupleId tid);
  Status Delete(const Rect& rect, TupleId tid);
  Status Commit();

  // Idempotent read with the same reconnect/backoff loop.
  Status Search(const Rect& rect, SearchReply* reply, uint64_t budget_us = 0,
                bool allow_partial = false);

  // Forces a (re)connect inside the policy's deadline; usable as a
  // liveness probe.
  Status Ping();

  uint64_t session_id() const { return session_id_; }
  // Successful reconnects after the initial connect.
  uint64_t reconnects() const { return reconnects_; }
  // Attempts beyond each operation's first.
  uint64_t retries() const { return retries_; }
  // The server's resolved high-water mark from the most recent Hello.
  uint64_t hello_last_seq() const { return hello_last_seq_; }

 private:
  using Clock = std::chrono::steady_clock;

  // True for verdicts worth retrying: the op did not (or may not have)
  // settled, and a later attempt can succeed.
  static bool Retryable(const Status& status);

  Status EnsureConnected(Clock::time_point deadline);
  // Sleeps the current backoff (clipped to the deadline) and advances it.
  void Backoff(Clock::time_point deadline);
  // The shared retry loop; `op` runs against a live connection.
  Status Run(const std::function<Status(Client&)>& op);

  const std::string host_;
  const uint16_t port_;
  const uint64_t session_id_;
  const RetryPolicy policy_;

  std::unique_ptr<Client> client_;  // Null while disconnected.
  uint64_t next_seq_ = 1;
  uint64_t backoff_us_;
  Rng rng_;

  uint64_t reconnects_ = 0;
  uint64_t retries_ = 0;
  uint64_t hello_last_seq_ = 0;
  bool ever_connected_ = false;
};

}  // namespace segidx::server

#endif  // SEGIDX_SERVER_RETRYING_CLIENT_H_
