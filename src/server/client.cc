#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "server/faulty_transport.h"

namespace segidx::server {

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return InvalidArgumentError("bad address: " + host);
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = IoError("connect(" + host + ":" +
                                  std::to_string(port) +
                                  "): " + strerror(errno));
    close(fd);
    return status;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Status Client::SendFrame(const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return InvalidArgumentError("request frame too large");
  }
  std::vector<uint8_t> frame;
  frame.reserve(4 + payload.size());
  uint8_t len[4];
  storage::EncodeU32(len, static_cast<uint32_t>(payload.size()));
  frame.insert(frame.end(), len, len + 4);
  frame.insert(frame.end(), payload.begin(), payload.end());
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        transport::Write(fd_, frame.data() + sent, frame.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError(std::string("send: ") + strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::ReadResponse(Response* out) {
  auto read_exact = [this](uint8_t* dst, size_t n) -> Status {
    size_t got = 0;
    while (got < n) {
      const ssize_t r = transport::Read(fd_, dst + got, n - got);
      if (r < 0) {
        if (errno == EINTR) continue;
        return IoError(std::string("recv: ") + strerror(errno));
      }
      if (r == 0) return IoError("connection closed by server");
      got += static_cast<size_t>(r);
    }
    return Status::OK();
  };
  uint8_t len_buf[4];
  SEGIDX_RETURN_IF_ERROR(read_exact(len_buf, 4));
  const uint32_t len = storage::DecodeU32(len_buf);
  if (len == 0 || len > kMaxFrameBytes) {
    return CorruptionError("bad response frame length");
  }
  std::vector<uint8_t> payload(len);
  SEGIDX_RETURN_IF_ERROR(read_exact(payload.data(), len));
  if (!DecodeResponse(payload.data(), payload.size(), out)) {
    return CorruptionError("malformed response frame");
  }
  return Status::OK();
}

Status Client::RoundTrip(const std::vector<uint8_t>& payload,
                         uint64_t request_id, Response* out) {
  SEGIDX_RETURN_IF_ERROR(SendFrame(payload));
  SEGIDX_RETURN_IF_ERROR(ReadResponse(out));
  if (out->request_id != request_id) {
    // Convenience calls never pipeline, so completion order is request
    // order; a mismatch means the stream is desynchronized.
    return CorruptionError("response id does not match the request");
  }
  return Status::OK();
}

Status Client::Search(const Rect& rect, SearchReply* reply,
                      uint64_t budget_us, bool allow_partial) {
  const uint64_t id = next_id_++;
  Response resp;
  SEGIDX_RETURN_IF_ERROR(RoundTrip(
      EncodeSearchRequest(id, rect, budget_us, allow_partial), id, &resp));
  if (!resp.ToStatus().ok()) return resp.ToStatus();
  if (!DecodeSearchBody(resp.body, reply)) {
    return CorruptionError("malformed search body");
  }
  return Status::OK();
}

Status Client::Insert(const Rect& rect, TupleId tid) {
  const uint64_t id = next_id_++;
  Response resp;
  SEGIDX_RETURN_IF_ERROR(RoundTrip(
      EncodeWriteRequest(MsgType::kInsert, id, rect, tid), id, &resp));
  return resp.ToStatus();
}

Status Client::Delete(const Rect& rect, TupleId tid) {
  const uint64_t id = next_id_++;
  Response resp;
  SEGIDX_RETURN_IF_ERROR(RoundTrip(
      EncodeWriteRequest(MsgType::kDelete, id, rect, tid), id, &resp));
  return resp.ToStatus();
}

Status Client::Commit() {
  const uint64_t id = next_id_++;
  Response resp;
  SEGIDX_RETURN_IF_ERROR(
      RoundTrip(EncodeSimpleRequest(MsgType::kCommit, id), id, &resp));
  return resp.ToStatus();
}

Result<std::string> Client::Stats() {
  const uint64_t id = next_id_++;
  Response resp;
  SEGIDX_RETURN_IF_ERROR(
      RoundTrip(EncodeSimpleRequest(MsgType::kStats, id), id, &resp));
  if (!resp.ToStatus().ok()) return resp.ToStatus();
  return std::string(resp.body.begin(), resp.body.end());
}

Result<std::string> Client::Health() {
  const uint64_t id = next_id_++;
  Response resp;
  SEGIDX_RETURN_IF_ERROR(
      RoundTrip(EncodeSimpleRequest(MsgType::kHealth, id), id, &resp));
  if (!resp.ToStatus().ok()) return resp.ToStatus();
  return std::string(resp.body.begin(), resp.body.end());
}

Status Client::Insert(const Rect& rect, TupleId tid, uint64_t session_id,
                      uint64_t seq) {
  const uint64_t id = next_id_++;
  Response resp;
  SEGIDX_RETURN_IF_ERROR(RoundTrip(
      EncodeWriteRequest(MsgType::kInsert, id, rect, tid, session_id, seq),
      id, &resp));
  return resp.ToStatus();
}

Status Client::Delete(const Rect& rect, TupleId tid, uint64_t session_id,
                      uint64_t seq) {
  const uint64_t id = next_id_++;
  Response resp;
  SEGIDX_RETURN_IF_ERROR(RoundTrip(
      EncodeWriteRequest(MsgType::kDelete, id, rect, tid, session_id, seq),
      id, &resp));
  return resp.ToStatus();
}

Status Client::Commit(uint64_t session_id, uint64_t seq) {
  const uint64_t id = next_id_++;
  Response resp;
  SEGIDX_RETURN_IF_ERROR(RoundTrip(
      EncodeCommitRequest(id, session_id, seq), id, &resp));
  return resp.ToStatus();
}

Status Client::Hello(uint64_t session_id, HelloReply* reply) {
  const uint64_t id = next_id_++;
  Response resp;
  SEGIDX_RETURN_IF_ERROR(
      RoundTrip(EncodeHelloRequest(id, session_id), id, &resp));
  if (!resp.ToStatus().ok()) return resp.ToStatus();
  if (!DecodeHelloBody(resp.body, reply)) {
    return CorruptionError("malformed hello body");
  }
  return Status::OK();
}

Result<uint64_t> Client::SendSearch(const Rect& rect, uint64_t budget_us,
                                    bool allow_partial) {
  const uint64_t id = next_id_++;
  SEGIDX_RETURN_IF_ERROR(
      SendFrame(EncodeSearchRequest(id, rect, budget_us, allow_partial)));
  return id;
}

Result<uint64_t> Client::SendInsert(const Rect& rect, TupleId tid) {
  const uint64_t id = next_id_++;
  SEGIDX_RETURN_IF_ERROR(
      SendFrame(EncodeWriteRequest(MsgType::kInsert, id, rect, tid)));
  return id;
}

Result<uint64_t> Client::SendCommit() {
  const uint64_t id = next_id_++;
  SEGIDX_RETURN_IF_ERROR(SendFrame(EncodeSimpleRequest(MsgType::kCommit, id)));
  return id;
}

}  // namespace segidx::server
