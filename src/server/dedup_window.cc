#include "server/dedup_window.h"

#include <algorithm>

#include "check/lock_order.h"

namespace segidx::server {

namespace {
using check::LockClass;
using check::TrackedMutexLock;

constexpr uint8_t kDedupVersion = 1;
constexpr size_t kHeaderBytes = 4;   // 'D' 'W' version count.
constexpr size_t kEntryBytes = 17;   // session + seq + code.
}  // namespace

DedupWindow::Lru::iterator DedupWindow::Touch(uint64_t session_id) {
  auto it = index_.find(session_id);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return lru_.begin();
  }
  lru_.push_front(Entry{session_id, Verdict{}});
  index_[session_id] = lru_.begin();
  while (lru_.size() > max_sessions_) {
    index_.erase(lru_.back().session_id);
    lru_.pop_back();
  }
  return lru_.begin();
}

std::optional<DedupWindow::Verdict> DedupWindow::Check(uint64_t session_id,
                                                       uint64_t seq) {
  TrackedMutexLock lock(&mu_, LockClass::kServerDedup);
  auto it = index_.find(session_id);
  if (it == index_.end()) return std::nullopt;
  // A duplicate check is activity: keep live sessions off the LRU tail.
  lru_.splice(lru_.begin(), lru_, it->second);
  const Verdict& v = lru_.front().verdict;
  if (seq > v.seq) return std::nullopt;
  return v;
}

std::optional<DedupWindow::Verdict> DedupWindow::Record(uint64_t session_id,
                                                        uint64_t seq,
                                                        StatusCode code) {
  TrackedMutexLock lock(&mu_, LockClass::kServerDedup);
  std::optional<Verdict> previous;
  if (auto it = index_.find(session_id); it != index_.end()) {
    previous = it->second->verdict;
  }
  Touch(session_id)->verdict = Verdict{seq, code};
  return previous;
}

void DedupWindow::Restore(uint64_t session_id,
                          std::optional<Verdict> previous) {
  TrackedMutexLock lock(&mu_, LockClass::kServerDedup);
  auto it = index_.find(session_id);
  if (!previous.has_value()) {
    if (it != index_.end()) {
      lru_.erase(it->second);
      index_.erase(it);
    }
    return;
  }
  Touch(session_id)->verdict = *previous;
}

uint64_t DedupWindow::LastSeq(uint64_t session_id) const {
  TrackedMutexLock lock(&mu_, LockClass::kServerDedup);
  auto it = index_.find(session_id);
  return it == index_.end() ? 0 : it->second->verdict.seq;
}

size_t DedupWindow::session_count() const {
  TrackedMutexLock lock(&mu_, LockClass::kServerDedup);
  return lru_.size();
}

std::vector<uint8_t> DedupWindow::Serialize() const {
  TrackedMutexLock lock(&mu_, LockClass::kServerDedup);
  const size_t count = std::min(lru_.size(), kMaxPersistedSessions);
  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes + count * kEntryBytes);
  out.push_back('D');
  out.push_back('W');
  out.push_back(kDedupVersion);
  out.push_back(static_cast<uint8_t>(count));
  size_t emitted = 0;
  for (const Entry& e : lru_) {
    if (emitted == count) break;
    for (int shift = 0; shift < 64; shift += 8) {
      out.push_back(static_cast<uint8_t>(e.session_id >> shift));
    }
    for (int shift = 0; shift < 64; shift += 8) {
      out.push_back(static_cast<uint8_t>(e.verdict.seq >> shift));
    }
    out.push_back(static_cast<uint8_t>(e.verdict.code));
    ++emitted;
  }
  return out;
}

Status DedupWindow::Load(const std::vector<uint8_t>& blob) {
  TrackedMutexLock lock(&mu_, LockClass::kServerDedup);
  if (blob.empty()) {
    lru_.clear();
    index_.clear();
    return Status::OK();
  }
  if (blob.size() < kHeaderBytes || blob[0] != 'D' || blob[1] != 'W') {
    return CorruptionError("bad dedup-window magic");
  }
  if (blob[2] != kDedupVersion) {
    return CorruptionError("unknown dedup-window version " +
                           std::to_string(blob[2]));
  }
  const size_t count = blob[3];
  if (blob.size() != kHeaderBytes + count * kEntryBytes) {
    return CorruptionError("dedup-window size does not match its count");
  }
  Lru lru;
  std::unordered_map<uint64_t, Lru::iterator> index;
  const uint8_t* p = blob.data() + kHeaderBytes;
  for (size_t i = 0; i < count; ++i) {
    uint64_t session = 0;
    uint64_t seq = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      session |= static_cast<uint64_t>(*p++) << shift;
    }
    for (int shift = 0; shift < 64; shift += 8) {
      seq |= static_cast<uint64_t>(*p++) << shift;
    }
    const StatusCode code = static_cast<StatusCode>(*p++);
    if (session == 0 || index.count(session) != 0) {
      return CorruptionError("dedup-window entry has a bad session id");
    }
    // Serialize emits newest first; rebuild the same recency order.
    lru.push_back(Entry{session, Verdict{seq, code}});
    index[session] = std::prev(lru.end());
  }
  lru_ = std::move(lru);
  index_ = std::move(index);
  return Status::OK();
}

}  // namespace segidx::server
