#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>
#include <utility>

#include "check/lock_order.h"
#include "rtree/latch.h"
#include "server/faulty_transport.h"
#include "storage/pager.h"

namespace segidx::server {

using check::LockClass;
using check::TrackedMutexLock;

namespace {

// Bounded wait for a stalled peer's socket buffer to drain before the
// connection is declared dead. Keeps a slow client from pinning a
// dispatcher thread forever.
constexpr int kWriteStallTimeoutMs = 5000;

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return IoError("fcntl(O_NONBLOCK) failed");
  }
  return Status::OK();
}

}  // namespace

Server::Server(core::IntervalIndex* index, const ServerOptions& options)
    : index_(index), options_(options) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return FailedPreconditionError("server already started");

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return IoError("socket() failed");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return InvalidArgumentError("bad listen address: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        IoError("bind(" + options_.host + ":" +
                std::to_string(options_.port) + "): " + strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (listen(listen_fd_, options_.backlog) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return IoError("listen() failed");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return IoError("getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);

  if (auto st = SetNonBlocking(listen_fd_); !st.ok()) {
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return IoError("pipe2() failed");
  }
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    close(listen_fd_);
    close(wake_pipe_[0]);
    close(wake_pipe_[1]);
    listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
    return IoError("epoll_create1() failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_pipe_[0];
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev);

  exec::WritePoolOptions wopts;
  wopts.num_threads = options_.write_threads;
  // No commit callback: the write dispatcher is the only checkpoint
  // initiator while serving, so it can record exactly-once verdicts in
  // the dedup window *before* the checkpoint that persists them — a
  // worker-initiated commit could otherwise race the window update and
  // persist data without the verdicts that acknowledge it.
  write_pool_ =
      std::make_unique<exec::WritePool>(index_->tree(), nullptr, wopts);

  // The dedup window travels with every checkpoint (the hook runs inside
  // Commit, under the pager's exclusive phase) and is restored from the
  // last checkpoint on open — an acked session write and its verdict are
  // durable together or not at all.
  if (Status st = dedup_.Load(index_->recovered_commit_meta()); !st.ok()) {
    // A window we cannot parse only costs dedup coverage for sessions
    // from before the restart; serving with an empty window is safe
    // (retries re-apply, which the torture's oracle flags — but a corrupt
    // window means the checkpoint itself was damaged, which recovery
    // rejects first).
    std::fprintf(stderr, "segidxd: dedup window not restored: %s\n",
                 st.message().c_str());
  }
  index_->SetCommitMetaHook([this] { return dedup_.Serialize(); });

  stopping_.store(false, std::memory_order_relaxed);
  aborting_.store(false, std::memory_order_relaxed);
  scrub_cancel_.store(false, std::memory_order_relaxed);
  io_thread_ = std::thread(&Server::IoLoop, this);
  search_thread_ = std::thread(&Server::SearchLoop, this);
  write_thread_ = std::thread(&Server::WriteLoop, this);
  if (options_.scrub_interval_ms > 0) {
    scrub_thread_ = std::thread(&Server::ScrubLoop, this);
  }
  started_ = true;
  return Status::OK();
}

void Server::Stop() {
  if (!started_) return;
  {
    // Store the predicate under queue_mu_ so it cannot land inside a
    // dispatcher's check-to-wait window: a waiter either sees the flag
    // before sleeping or is already in Wait when the notify arrives.
    TrackedMutexLock lock(&queue_mu_, LockClass::kServerQueue);
    stopping_.store(true, std::memory_order_seq_cst);
  }
  // Abort an in-flight scrub pass: rate-limited scrubs over a large index
  // would otherwise pin scrub_thread_.join() for a very long time.
  scrub_cancel_.store(true, std::memory_order_relaxed);
  // Wake everyone: dispatchers drain their queues and exit; the I/O
  // thread returns from epoll_wait and stops reading.
  search_cv_.NotifyAll();
  write_cv_.NotifyAll();
  scrub_cv_.NotifyAll();
  const char byte = 0;
  ssize_t ignored = write(wake_pipe_[1], &byte, 1);
  (void)ignored;

  io_thread_.join();
  search_thread_.join();
  write_thread_.join();
  if (scrub_thread_.joinable()) scrub_thread_.join();
  // Dispatchers are gone, so ApplyBatch can never run again; tear the
  // pool down before the final checkpoint.
  write_pool_.reset();

  // Final durability point for everything acknowledged above. Ignore the
  // status: a read-only (degraded / format-v1) index legitimately refuses.
  // Abort() skips it on purpose — a crash does not get a goodbye
  // checkpoint.
  if (!aborting_.load(std::memory_order_relaxed)) (void)index_->Commit();
  index_->SetCommitMetaHook(nullptr);

  // Any connection still in the map never went through CloseConnection,
  // so its fd is open even if a dispatcher already marked it closed.
  for (auto& [fd, conn] : connections_) {
    TrackedMutexLock lock(&conn->write_mu, LockClass::kServerConn);
    conn->closed = true;
    close(conn->fd);
  }
  connections_.clear();
  close(listen_fd_);
  close(epoll_fd_);
  close(wake_pipe_[0]);
  close(wake_pipe_[1]);
  listen_fd_ = epoll_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
  started_ = false;
}

void Server::Abort() {
  aborting_.store(true, std::memory_order_seq_cst);
  Stop();
}

// --- I/O thread -------------------------------------------------------------

void Server::IoLoop() {
  std::vector<epoll_event> events(64);
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int n = epoll_wait(epoll_fd_, events.data(),
                             static_cast<int>(events.size()), 500);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_pipe_[0]) continue;  // Drained on shutdown only.
      if (fd == listen_fd_) {
        AcceptConnections();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 ||
          !DrainReadable(it->second)) {
        CloseConnection(it->second);
        connections_.erase(it);
      }
    }
    if (options_.idle_timeout_ms > 0) ReapIdleConnections();
  }
}

void Server::AcceptConnections() {
  for (;;) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Out of fds/buffers. The listen fd is level-triggered, so epoll
        // would re-arm instantly and spin the I/O thread at 100% while
        // the condition lasts; sleep with a capped exponential backoff
        // instead. Connections in the backlog wait; the idle reaper and
        // normal closes free fds meanwhile.
        accept_overload_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(accept_backoff_ms_));
        accept_backoff_ms_ = std::min<uint64_t>(accept_backoff_ms_ * 2, 200);
      }
      return;  // EAGAIN or a transient error; epoll retries.
    }
    accept_backoff_ms_ = 1;
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->last_active = Clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      close(fd);
      continue;
    }
    connections_.emplace(fd, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::ReapIdleConnections() {
  const Clock::time_point cutoff =
      Clock::now() - std::chrono::milliseconds(options_.idle_timeout_ms);
  for (auto it = connections_.begin(); it != connections_.end();) {
    const std::shared_ptr<Connection>& conn = it->second;
    // Never reap a connection with an answer pending: a dispatcher may be
    // about to write to it, and "idle" means the *peer* went quiet, not
    // that we are slow.
    if (conn->inflight.load(std::memory_order_relaxed) == 0 &&
        conn->last_active < cutoff) {
      idle_reaped_.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  // Close under the write mutex so no dispatcher can write to a reused fd
  // number: writers re-check `closed` under the same lock. The close is
  // unconditional — `closed` may already be set by SendResponse's failure
  // path, which shuts the socket down but leaves the fd open for us.
  TrackedMutexLock lock(&conn->write_mu, LockClass::kServerConn);
  conn->closed = true;
  close(conn->fd);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

bool Server::DrainReadable(const std::shared_ptr<Connection>& conn) {
  uint8_t chunk[16 * 1024];
  for (;;) {
    const ssize_t got = transport::Read(conn->fd, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // Peer closed.
    conn->last_active = Clock::now();
    conn->inbuf.insert(conn->inbuf.end(), chunk, chunk + got);
  }
  // Extract every complete frame.
  size_t consumed = 0;
  while (conn->inbuf.size() - consumed >= 4) {
    const uint32_t len = storage::DecodeU32(conn->inbuf.data() + consumed);
    if (len == 0 || len > kMaxFrameBytes) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (conn->inbuf.size() - consumed < 4 + static_cast<size_t>(len)) break;
    if (!HandleFrame(conn, conn->inbuf.data() + consumed + 4, len)) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    consumed += 4 + static_cast<size_t>(len);
  }
  if (consumed > 0) {
    conn->inbuf.erase(conn->inbuf.begin(),
                      conn->inbuf.begin() + static_cast<long>(consumed));
  }
  return true;
}

bool Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         const uint8_t* data, size_t size) {
  Request req;
  if (!DecodeRequest(data, size, &req)) return false;
  switch (req.type) {
    case MsgType::kSearch:
      searches_.fetch_add(1, std::memory_order_relaxed);
      if (!req.rect.valid()) {
        SendResponse(conn, req.type, req.request_id,
                     InvalidArgumentError("invalid query rectangle"),
                     nullptr, /*counted=*/false);
        return true;
      }
      EnqueueSearch(conn, req);
      return true;
    case MsgType::kInsert:
    case MsgType::kDelete:
      (req.type == MsgType::kInsert ? inserts_ : deletes_)
          .fetch_add(1, std::memory_order_relaxed);
      if (!req.rect.valid()) {
        // Reject here: one bad rect inside a WritePool run would fail the
        // whole batch for its neighbors.
        SendResponse(conn, req.type, req.request_id,
                     InvalidArgumentError("invalid rectangle"), nullptr,
                     /*counted=*/false);
        return true;
      }
      EnqueueWrite(conn, req);
      return true;
    case MsgType::kCommit:
      commits_.fetch_add(1, std::memory_order_relaxed);
      EnqueueWrite(conn, req);
      return true;
    case MsgType::kHello: {
      // Session handshake: tell the client our protocol version and the
      // highest sequence number its session has resolved, so a
      // reconnecting client knows which in-doubt retries are settled.
      hellos_.fetch_add(1, std::memory_order_relaxed);
      const HelloReply reply{
          kProtocolVersion,
          req.session_id != 0 ? dedup_.LastSeq(req.session_id) : 0};
      const std::vector<uint8_t> body = EncodeHelloBody(reply);
      SendResponse(conn, req.type, req.request_id, Status::OK(), &body,
                   /*counted=*/false);
      return true;
    }
    case MsgType::kStats:
    case MsgType::kHealth: {
      info_requests_.fetch_add(1, std::memory_order_relaxed);
      const std::string json = req.type == MsgType::kStats
                                   ? BuildStatsJson()
                                   : BuildHealthJson();
      std::vector<uint8_t> body(json.begin(), json.end());
      SendResponse(conn, req.type, req.request_id, Status::OK(), &body,
                   /*counted=*/false);
      return true;
    }
  }
  return false;
}

void Server::EnqueueSearch(const std::shared_ptr<Connection>& conn,
                           const Request& req) {
  if (conn->inflight.load(std::memory_order_relaxed) >=
      options_.max_inflight_per_conn) {
    shed_quota_.fetch_add(1, std::memory_order_relaxed);
    SendResponse(conn, req.type, req.request_id,
                 ResourceExhaustedError(
                     "per-connection quota: too many requests in flight"),
                 nullptr, /*counted=*/false);
    return;
  }
  PendingSearch pending;
  pending.conn = conn;
  pending.request_id = req.request_id;
  pending.rect = req.rect;
  pending.allow_partial = req.allow_partial;
  const uint64_t budget =
      req.budget_us != 0 ? req.budget_us : options_.default_budget_us;
  if (budget != 0) {
    pending.deadline = Clock::now() + std::chrono::microseconds(budget);
  }
  bool shed = false;
  {
    TrackedMutexLock lock(&queue_mu_, LockClass::kServerQueue);
    if (search_queue_.size() >= options_.max_queue_depth) {
      shed = true;
    } else {
      conn->inflight.fetch_add(1, std::memory_order_relaxed);
      search_queue_.push_back(std::move(pending));
    }
  }
  if (shed) {
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
    SendResponse(conn, req.type, req.request_id,
                 DeadlineExceededError("load shed: search queue full"),
                 nullptr, /*counted=*/false);
    return;
  }
  search_cv_.NotifyOne();
}

void Server::EnqueueWrite(const std::shared_ptr<Connection>& conn,
                          const Request& req) {
  if (conn->inflight.load(std::memory_order_relaxed) >=
      options_.max_inflight_per_conn) {
    shed_quota_.fetch_add(1, std::memory_order_relaxed);
    SendResponse(conn, req.type, req.request_id,
                 ResourceExhaustedError(
                     "per-connection quota: too many requests in flight"),
                 nullptr, /*counted=*/false);
    return;
  }
  PendingWrite pending;
  pending.conn = conn;
  pending.request_id = req.request_id;
  pending.type = req.type;
  pending.rect = req.rect;
  pending.tid = req.tid;
  pending.session_id = req.session_id;
  pending.seq = req.seq;
  bool shed = false;
  {
    TrackedMutexLock lock(&queue_mu_, LockClass::kServerQueue);
    if (write_queue_.size() >= options_.max_queue_depth) {
      shed = true;
    } else {
      conn->inflight.fetch_add(1, std::memory_order_relaxed);
      write_queue_.push_back(std::move(pending));
    }
  }
  if (shed) {
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
    SendResponse(conn, req.type, req.request_id,
                 ResourceExhaustedError("load shed: write queue full"),
                 nullptr, /*counted=*/false);
    return;
  }
  write_cv_.NotifyOne();
}

// --- Search dispatcher ------------------------------------------------------

void Server::SearchLoop() {
  for (;;) {
    std::vector<PendingSearch> batch;
    {
      TrackedMutexLock lock(&queue_mu_, LockClass::kServerQueue);
      while (search_queue_.empty() &&
             !stopping_.load(std::memory_order_relaxed)) {
        search_cv_.Wait(&queue_mu_);
      }
      if (aborting_.load(std::memory_order_relaxed)) return;  // Crash.
      if (search_queue_.empty()) return;  // Stopping and fully drained.
      const size_t n = std::min(options_.max_batch, search_queue_.size());
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(search_queue_.front()));
        search_queue_.pop_front();
      }
    }
    if (options_.admission_delay_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.admission_delay_us));
    }

    // Admission: answer already-expired requests without touching a page
    // (the deadline machinery would do the same, but this keeps them out
    // of the batch entirely).
    const Clock::time_point now = Clock::now();
    std::vector<PendingSearch> live;
    live.reserve(batch.size());
    for (PendingSearch& p : batch) {
      if (p.deadline.has_value() && *p.deadline <= now) {
        deadline_expired_.fetch_add(1, std::memory_order_relaxed);
        SendResponse(p.conn, MsgType::kSearch, p.request_id,
                     DeadlineExceededError(
                         "deadline expired before the search was scheduled"));
      } else {
        live.push_back(std::move(p));
      }
    }
    if (live.empty()) continue;

    // One read phase for the whole batch. allow_partial is forced on so
    // one quarantined page cannot fail a neighbor's query; each request's
    // own policy is applied to its entry below.
    rtree::SearchOptions so;
    so.allow_partial = true;
    for (const PendingSearch& p : live) {
      if (p.deadline.has_value() &&
          (!so.deadline.has_value() || *p.deadline < *so.deadline)) {
        so.deadline = *p.deadline;
      }
    }
    std::vector<Rect> queries;
    queries.reserve(live.size());
    for (const PendingSearch& p : live) queries.push_back(p.rect);

    batches_.fetch_add(1, std::memory_order_relaxed);
    batch_queries_.fetch_add(live.size(), std::memory_order_relaxed);
    std::vector<exec::BatchResult> results;
    const Status batch_status =
        index_->SearchBatch(queries, so, &results, options_.search_threads);
    if (results.size() != live.size()) {
      // The batch never ran (e.g. skeleton finalize failed): answer
      // everyone with the batch status.
      for (const PendingSearch& p : live) {
        SendResponse(p.conn, MsgType::kSearch, p.request_id,
                     batch_status.ok() ? InternalError("batch lost results")
                                       : batch_status);
      }
      continue;
    }

    std::vector<PendingSearch> requeue;
    const Clock::time_point after = Clock::now();
    for (size_t i = 0; i < live.size(); ++i) {
      PendingSearch& p = live[i];
      exec::BatchResult& r = results[i];
      if (r.status.ok()) {
        if (r.partial && !p.allow_partial) {
          SendResponse(p.conn, MsgType::kSearch, p.request_id,
                       UnavailableError(
                           std::to_string(r.skipped_subtrees.size()) +
                           " damaged subtree(s) skipped; retry with "
                           "allow_partial for partial results"));
        } else {
          const std::vector<uint8_t> body =
              EncodeSearchBody(r.hits, r.partial, r.nodes_accessed);
          SendResponse(p.conn, MsgType::kSearch, p.request_id, Status::OK(),
                       &body);
        }
        continue;
      }
      const bool own_deadline_expired =
          p.deadline.has_value() && *p.deadline <= after;
      if (r.status.code() == StatusCode::kDeadlineExceeded &&
          own_deadline_expired) {
        deadline_expired_.fetch_add(1, std::memory_order_relaxed);
        SendResponse(p.conn, MsgType::kSearch, p.request_id, r.status);
        continue;
      }
      if (r.status.code() == StatusCode::kDeadlineExceeded ||
          r.status.code() == StatusCode::kCancelled) {
        // Cut off by a peer's tighter deadline (or a batch abort) before
        // its own budget ran out: retry in the next batch.
        if (++p.retries > options_.max_retries) {
          SendResponse(p.conn, MsgType::kSearch, p.request_id,
                       UnavailableError("batch retries exhausted"));
        } else {
          retries_.fetch_add(1, std::memory_order_relaxed);
          requeue.push_back(std::move(p));
        }
        continue;
      }
      SendResponse(p.conn, MsgType::kSearch, p.request_id, r.status);
    }
    if (!requeue.empty()) {
      {
        TrackedMutexLock lock(&queue_mu_, LockClass::kServerQueue);
        // Front of the queue: they have been waiting longest.
        for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
          search_queue_.push_front(std::move(*it));
        }
      }
      search_cv_.NotifyOne();
    }
  }
}

// --- Write dispatcher -------------------------------------------------------

void Server::WriteLoop() {
  for (;;) {
    std::vector<PendingWrite> work;
    {
      TrackedMutexLock lock(&queue_mu_, LockClass::kServerQueue);
      while (write_queue_.empty() &&
             !stopping_.load(std::memory_order_relaxed)) {
        write_cv_.Wait(&queue_mu_);
      }
      if (aborting_.load(std::memory_order_relaxed)) return;  // Crash.
      if (write_queue_.empty()) return;  // Stopping and fully drained.
      work.reserve(write_queue_.size());
      while (!write_queue_.empty()) {
        work.push_back(std::move(write_queue_.front()));
        write_queue_.pop_front();
      }
    }
    ExecuteWrites(std::move(work));
  }
}

void Server::ExecuteWrites(std::vector<PendingWrite> work) {
  // Arrival order is preserved: consecutive inserts coalesce into
  // WritePool runs (commit_every ops per chunk, one checkpoint each);
  // consecutive commits are acknowledged by a single checkpoint.
  //
  // Exactly-once discipline for session-tagged ops (session_id != 0):
  //
  //   * Before executing, the dedup window is consulted; a sequence number
  //     at or below the session's resolved high-water mark is answered
  //     from the cached verdict without touching the index.
  //   * An applied op's OK verdict is recorded *before* the checkpoint
  //     that makes it durable. The window rides inside the checkpoint
  //     (commit-meta hook), so the data and the verdict that acknowledges
  //     it persist atomically — after a crash, a retry the client never
  //     saw acked re-applies (correct: the data was lost too), and a
  //     retry of an acked op replays its ack (correct: the data is there).
  //   * A failed checkpoint downgrades the in-memory verdict to the
  //     commit's error code; the op is applied but volatile. A retry of
  //     that seq does not re-apply — it runs a fresh checkpoint and
  //     upgrades the verdict to OK when one lands.
  //   * Ops that never reached the tree (failed or skipped) are not
  //     recorded at all, so a retry re-executes them.

  // Answers `op` from the dedup window. Returns false if the op is fresh
  // and must be executed.
  auto replay_if_duplicate = [&](const PendingWrite& op) -> bool {
    if (op.session_id == 0) return false;
    const auto hit = dedup_.Check(op.session_id, op.seq);
    if (!hit.has_value()) return false;
    dedup_hits_.fetch_add(1, std::memory_order_relaxed);
    if (op.seq < hit->seq || hit->code == StatusCode::kOk) {
      // Resolved — either this very seq acked OK, or a newer op from the
      // same session already resolved past it (the client only retries
      // its newest op, so anything older was settled before it moved on).
      SendResponse(op.conn, op.type, op.request_id, Status::OK());
      return true;
    }
    // This seq was applied but its checkpoint failed. Converge instead of
    // replaying the stale error: a fresh checkpoint makes it durable now.
    const Status commit_status = index_->Commit();
    const StatusCode code =
        commit_status.ok() ? StatusCode::kOk : commit_status.code();
    dedup_.Record(op.session_id, op.seq, code);
    SendResponse(op.conn, op.type, op.request_id, commit_status);
    return true;
  };

  std::vector<size_t> run;  // Indexes of the current insert run.
  // Session keys already in `run`: a duplicate must not share a batch
  // with its original (the window only knows resolved ops).
  std::set<std::pair<uint64_t, uint64_t>> pending_keys;

  // Applies one chunk of the insert run and checkpoints it.
  auto flush_chunk = [&](const size_t* idx, size_t n) {
    std::vector<exec::WriteOp> ops;
    ops.reserve(n);
    for (size_t k = 0; k < n; ++k) {
      ops.push_back(exec::WriteOp{work[idx[k]].rect, work[idx[k]].tid});
    }
    std::vector<exec::WriteOpResult> results;
    (void)write_pool_->ApplyBatch(ops, &results);
    // Provisional verdicts first, then the checkpoint: the window blob the
    // commit-meta hook serializes must already acknowledge everything the
    // checkpoint is about to make durable.
    for (size_t k = 0; k < n; ++k) {
      const PendingWrite& op = work[idx[k]];
      if (op.session_id != 0 &&
          results[k].outcome == exec::WriteOpResult::Outcome::kApplied) {
        dedup_.Record(op.session_id, op.seq, StatusCode::kOk);
      }
    }
    const Status commit_status = index_->Commit();
    for (size_t k = 0; k < n; ++k) {
      const PendingWrite& op = work[idx[k]];
      switch (results[k].outcome) {
        case exec::WriteOpResult::Outcome::kApplied:
          if (commit_status.ok()) {
            SendResponse(op.conn, MsgType::kInsert, op.request_id,
                         Status::OK());
          } else {
            if (op.session_id != 0) {
              dedup_.Record(op.session_id, op.seq, commit_status.code());
            }
            SendResponse(
                op.conn, MsgType::kInsert, op.request_id,
                Status(commit_status.code(),
                       commit_status.message() +
                           " (insert applied but not yet durable; "
                           "retry to checkpoint it)"));
          }
          break;
        case exec::WriteOpResult::Outcome::kFailed:
          SendResponse(op.conn, MsgType::kInsert, op.request_id,
                       results[k].status);
          break;
        case exec::WriteOpResult::Outcome::kSkipped:
          SendResponse(op.conn, MsgType::kInsert, op.request_id,
                       CancelledError("not applied: batch aborted by a "
                                      "neighbor's failure — safe to retry"));
          break;
      }
    }
  };

  auto flush_run = [&] {
    if (run.empty()) return;
    const size_t chunk =
        options_.commit_every > 0 ? options_.commit_every : run.size();
    for (size_t off = 0; off < run.size(); off += chunk) {
      flush_chunk(run.data() + off, std::min(chunk, run.size() - off));
    }
    run.clear();
    pending_keys.clear();
  };

  for (size_t i = 0; i < work.size(); ++i) {
    PendingWrite& op = work[i];
    switch (op.type) {
      case MsgType::kInsert: {
        if (op.session_id != 0) {
          if (pending_keys.count({op.session_id, op.seq}) != 0) flush_run();
          if (replay_if_duplicate(op)) break;
          pending_keys.insert({op.session_id, op.seq});
        }
        run.push_back(i);
        break;
      }
      case MsgType::kDelete: {
        flush_run();
        if (replay_if_duplicate(op)) break;
        const Status status = index_->Delete(op.rect, op.tid);
        if (op.session_id == 0 || !status.ok()) {
          // Failed ops are not recorded: nothing changed, retry re-runs.
          SendResponse(op.conn, MsgType::kDelete, op.request_id, status);
          break;
        }
        dedup_.Record(op.session_id, op.seq, StatusCode::kOk);
        const Status commit_status = index_->Commit();
        if (commit_status.ok()) {
          SendResponse(op.conn, MsgType::kDelete, op.request_id,
                       Status::OK());
        } else {
          dedup_.Record(op.session_id, op.seq, commit_status.code());
          SendResponse(op.conn, MsgType::kDelete, op.request_id,
                       Status(commit_status.code(),
                              commit_status.message() +
                                  " (delete applied but not yet durable; "
                                  "retry to checkpoint it)"));
        }
        break;
      }
      case MsgType::kCommit: {
        flush_run();
        // Gather every immediately-following commit: one checkpoint
        // acknowledges them all.
        size_t last = i;
        while (last + 1 < work.size() &&
               work[last + 1].type == MsgType::kCommit) {
          ++last;
        }
        // Answer duplicates from the window; pre-record the fresh ones as
        // OK so the checkpoint persists its own acknowledgements, rolling
        // back if it fails.
        std::vector<size_t> fresh;
        std::vector<std::optional<DedupWindow::Verdict>> previous;
        for (size_t j = i; j <= last; ++j) {
          if (replay_if_duplicate(work[j])) continue;
          fresh.push_back(j);
          if (work[j].session_id != 0) {
            previous.push_back(dedup_.Record(work[j].session_id,
                                             work[j].seq, StatusCode::kOk));
          } else {
            previous.push_back(std::nullopt);
          }
        }
        if (!fresh.empty()) {
          const Status status = index_->Commit();
          if (!status.ok()) {
            for (size_t k = fresh.size(); k-- > 0;) {
              if (work[fresh[k]].session_id != 0) {
                dedup_.Restore(work[fresh[k]].session_id, previous[k]);
              }
            }
          }
          for (size_t j : fresh) {
            SendResponse(work[j].conn, MsgType::kCommit, work[j].request_id,
                         status);
          }
        }
        i = last;
        break;
      }
      default:
        SendResponse(op.conn, op.type, op.request_id,
                     InternalError("non-write request on the write queue"));
        break;
    }
  }
  flush_run();
}

// --- Background scrub -------------------------------------------------------

void Server::ScrubLoop() {
  for (;;) {
    {
      TrackedMutexLock lock(&queue_mu_, LockClass::kServerQueue);
      const auto wake = Clock::now() + std::chrono::milliseconds(
                                           options_.scrub_interval_ms);
      while (!stopping_.load(std::memory_order_relaxed) &&
             Clock::now() < wake) {
        scrub_cv_.WaitUntil(&queue_mu_, wake);
      }
      if (stopping_.load(std::memory_order_relaxed)) return;
    }
    scrub_running_.store(true, std::memory_order_relaxed);
    storage::ScrubOptions sopts;
    sopts.max_extents_per_second = options_.scrub_extents_per_second;
    sopts.cancel_token = &scrub_cancel_;
    auto report = index_->Scrub(sopts);
    scrub_running_.store(false, std::memory_order_relaxed);
    if (report.ok()) {
      scrubs_completed_.fetch_add(1, std::memory_order_relaxed);
      scrub_defects_.fetch_add(report->defects.size(),
                               std::memory_order_relaxed);
    }
  }
}

// --- Responses --------------------------------------------------------------

void Server::SendResponse(const std::shared_ptr<Connection>& conn,
                          MsgType type, uint64_t request_id,
                          const Status& status,
                          const std::vector<uint8_t>* body, bool counted) {
  if (counted) conn->inflight.fetch_sub(1, std::memory_order_relaxed);
  // A crashing server answers nobody: drop the frame on the floor so the
  // client sees the same silence a dead process would produce.
  if (aborting_.load(std::memory_order_relaxed)) return;
  const std::vector<uint8_t> payload = EncodeResponse(
      type, request_id, status, body != nullptr ? body->data() : nullptr,
      body != nullptr ? body->size() : 0);
  std::vector<uint8_t> frame;
  frame.reserve(4 + payload.size());
  uint8_t len[4];
  storage::EncodeU32(len, static_cast<uint32_t>(payload.size()));
  frame.insert(frame.end(), len, len + 4);
  frame.insert(frame.end(), payload.begin(), payload.end());

  TrackedMutexLock lock(&conn->write_mu, LockClass::kServerConn);
  if (conn->closed) return;
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = transport::Write(conn->fd, frame.data() + sent,
                                       frame.size() - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{conn->fd, POLLOUT, 0};
      if (poll(&pfd, 1, kWriteStallTimeoutMs) > 0) continue;
    }
    // Stalled or dead peer: stop writing and let the I/O thread reap the
    // connection — shutdown() wakes its epoll with EPOLLHUP/EPOLLIN on
    // the still-registered fd. Never close() here: the fd must stay
    // allocated until the I/O thread erases the Connection, or a new
    // accept() could reuse the number while the stale entry still owns
    // its connections_ slot.
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    conn->closed = true;
    shutdown(conn->fd, SHUT_RDWR);
    return;
  }
  responses_.fetch_add(1, std::memory_order_relaxed);
}

// --- Stats / health ---------------------------------------------------------

ServerStatsSnapshot Server::stats_snapshot() const {
  ServerStatsSnapshot s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_active = connections_active_.load(std::memory_order_relaxed);
  s.searches = searches_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.deletes = deletes_.load(std::memory_order_relaxed);
  s.commits = commits_.load(std::memory_order_relaxed);
  s.info_requests = info_requests_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.send_failures = send_failures_.load(std::memory_order_relaxed);
  s.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  s.shed_quota = shed_quota_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.scrubs_completed = scrubs_completed_.load(std::memory_order_relaxed);
  s.scrub_defects = scrub_defects_.load(std::memory_order_relaxed);
  s.scrub_running = scrub_running_.load(std::memory_order_relaxed);
  s.accept_overload = accept_overload_.load(std::memory_order_relaxed);
  s.idle_reaped = idle_reaped_.load(std::memory_order_relaxed);
  s.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  s.hellos = hellos_.load(std::memory_order_relaxed);
  return s;
}

std::string Server::BuildStatsJson() {
  const ServerStatsSnapshot s = stats_snapshot();
  const storage::StorageStats& st = index_->storage_stats();
  const rtree::LatchStats latch = index_->tree()->latch_stats();
  char buf[3072];
  std::snprintf(
      buf, sizeof(buf),
      "{\"server\": {\"connections_accepted\": %llu, "
      "\"connections_active\": %llu, \"searches\": %llu, "
      "\"inserts\": %llu, \"deletes\": %llu, \"commits\": %llu, "
      "\"responses\": %llu, \"protocol_errors\": %llu, "
      "\"send_failures\": %llu, \"shed_queue_full\": %llu, "
      "\"shed_quota\": %llu, \"deadline_expired\": %llu, "
      "\"batches\": %llu, \"batch_queries\": %llu, \"retries\": %llu, "
      "\"accept_overload\": %llu, \"idle_reaped\": %llu, "
      "\"dedup_hits\": %llu, \"hellos\": %llu}, "
      "\"index\": {\"records\": %llu, \"height\": %d, "
      "\"index_bytes\": %llu}, "
      "\"storage\": {\"logical_reads\": %llu, \"cache_hits\": %llu, "
      "\"physical_reads\": %llu, \"physical_writes\": %llu, "
      "\"checkpoints\": %llu, \"commit_requests\": %llu, "
      "\"commit_batches\": %llu, \"degraded\": %llu, "
      "\"pages_quarantined\": %llu, \"quarantine_hits\": %llu}, "
      "\"latch\": {\"gate_read_enters\": %llu, \"gate_write_enters\": %llu, "
      "\"gate_read_blocked\": %llu, \"gate_write_blocked\": %llu, "
      "\"gate_read_wait_us\": %llu, \"gate_write_wait_us\": %llu, "
      "\"node_latch_acquires\": %llu, \"node_latch_blocked\": %llu, "
      "\"node_latch_wait_us\": %llu}}",
      static_cast<unsigned long long>(s.connections_accepted),
      static_cast<unsigned long long>(s.connections_active),
      static_cast<unsigned long long>(s.searches),
      static_cast<unsigned long long>(s.inserts),
      static_cast<unsigned long long>(s.deletes),
      static_cast<unsigned long long>(s.commits),
      static_cast<unsigned long long>(s.responses),
      static_cast<unsigned long long>(s.protocol_errors),
      static_cast<unsigned long long>(s.send_failures),
      static_cast<unsigned long long>(s.shed_queue_full),
      static_cast<unsigned long long>(s.shed_quota),
      static_cast<unsigned long long>(s.deadline_expired),
      static_cast<unsigned long long>(s.batches),
      static_cast<unsigned long long>(s.batch_queries),
      static_cast<unsigned long long>(s.retries),
      static_cast<unsigned long long>(s.accept_overload),
      static_cast<unsigned long long>(s.idle_reaped),
      static_cast<unsigned long long>(s.dedup_hits),
      static_cast<unsigned long long>(s.hellos),
      static_cast<unsigned long long>(index_->size()), index_->height(),
      static_cast<unsigned long long>(index_->index_bytes()),
      static_cast<unsigned long long>(st.logical_reads),
      static_cast<unsigned long long>(st.cache_hits),
      static_cast<unsigned long long>(st.physical_reads),
      static_cast<unsigned long long>(st.physical_writes),
      static_cast<unsigned long long>(st.checkpoints),
      static_cast<unsigned long long>(st.commit_requests),
      static_cast<unsigned long long>(st.commit_batches),
      static_cast<unsigned long long>(st.degraded),
      static_cast<unsigned long long>(st.pages_quarantined),
      static_cast<unsigned long long>(st.quarantine_hits),
      static_cast<unsigned long long>(latch.gate_enters[0]),
      static_cast<unsigned long long>(latch.gate_enters[1]),
      static_cast<unsigned long long>(latch.gate_blocked[0]),
      static_cast<unsigned long long>(latch.gate_blocked[1]),
      static_cast<unsigned long long>(latch.gate_wait_us[0]),
      static_cast<unsigned long long>(latch.gate_wait_us[1]),
      static_cast<unsigned long long>(latch.latch_acquires),
      static_cast<unsigned long long>(latch.latch_blocked),
      static_cast<unsigned long long>(latch.latch_wait_us));
  return buf;
}

std::string Server::BuildHealthJson() {
  const ServerStatsSnapshot s = stats_snapshot();
  const storage::StorageStats& st = index_->storage_stats();
  const size_t quarantined = index_->pager()->quarantined_count();
  size_t search_depth = 0;
  size_t write_depth = 0;
  {
    TrackedMutexLock lock(&queue_mu_, LockClass::kServerQueue);
    search_depth = search_queue_.size();
    write_depth = write_queue_.size();
  }
  const bool degraded = st.degraded != 0;
  // Degraded (read-only after a hard write error) and quarantine (damaged
  // pages skipped by partial searches) surface here so clients can act
  // before requests start failing.
  const char* status = degraded          ? "degraded"
                       : quarantined > 0 ? "quarantined"
                                         : "ok";
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"status\": \"%s\", \"degraded\": %s, "
      "\"quarantined_pages\": %zu, "
      "\"scrub\": {\"running\": %s, \"completed\": %llu, "
      "\"defects_found\": %llu, \"interval_ms\": %llu}, "
      "\"search_queue_depth\": %zu, \"write_queue_depth\": %zu, "
      "\"connections_active\": %llu, \"records\": %llu}",
      status, degraded ? "true" : "false", quarantined,
      s.scrub_running ? "true" : "false",
      static_cast<unsigned long long>(s.scrubs_completed),
      static_cast<unsigned long long>(s.scrub_defects),
      static_cast<unsigned long long>(options_.scrub_interval_ms),
      search_depth, write_depth,
      static_cast<unsigned long long>(s.connections_active),
      static_cast<unsigned long long>(index_->size()));
  return buf;
}

}  // namespace segidx::server
