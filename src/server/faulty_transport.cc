#include "server/faulty_transport.h"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/random.h"

namespace segidx::server::transport {

namespace {

// One decision per wrapped call, drawn under a plain mutex so concurrent
// connections share a single deterministic stream. The fast path (no plan
// installed) is one relaxed atomic load.
std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_injected{0};

std::mutex& PlanMutex() {
  static std::mutex mu;
  return mu;
}

FaultPlan& PlanLocked() {
  static FaultPlan plan;
  return plan;
}

Rng& RngLocked() {
  static Rng rng(1);
  return rng;
}

struct Decision {
  bool reset = false;
  uint32_t delay_us = 0;
  size_t short_write_at = 0;  // 0 = full write.
};

Decision Roll(bool is_write, size_t n) {
  Decision d;
  std::lock_guard<std::mutex> lock(PlanMutex());
  const FaultPlan& plan = PlanLocked();
  Rng& rng = RngLocked();
  if (rng.NextDouble() < plan.reset_prob) {
    d.reset = true;
    return d;
  }
  if (plan.max_delay_us > 0 && rng.NextDouble() < plan.delay_prob) {
    d.delay_us = static_cast<uint32_t>(
        rng.UniformInt(1, static_cast<int64_t>(plan.max_delay_us)));
  }
  if (is_write && n > 1 && rng.NextDouble() < plan.short_write_prob) {
    d.short_write_at =
        static_cast<size_t>(rng.UniformInt(1, static_cast<int64_t>(n - 1)));
  }
  return d;
}

}  // namespace

void InstallFaultPlan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(PlanMutex());
  PlanLocked() = plan;
  RngLocked() = Rng(plan.seed);
  g_injected.store(0, std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_release);
}

void ClearFaultPlan() { g_enabled.store(false, std::memory_order_release); }

bool FaultsEnabled() {
  return g_enabled.load(std::memory_order_acquire);
}

uint64_t FaultsInjected() {
  return g_injected.load(std::memory_order_relaxed);
}

ssize_t Read(int fd, void* buf, size_t n) {
  if (!FaultsEnabled()) return ::read(fd, buf, n);
  const Decision d = Roll(/*is_write=*/false, n);
  if (d.reset) {
    g_injected.fetch_add(1, std::memory_order_relaxed);
    ::shutdown(fd, SHUT_RDWR);
    errno = ECONNRESET;
    return -1;
  }
  if (d.delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(d.delay_us));
  }
  return ::read(fd, buf, n);
}

ssize_t Write(int fd, const void* buf, size_t n) {
  // MSG_NOSIGNAL even on the clean path: a peer that vanished mid-write
  // must surface as EPIPE, never as a process-killing SIGPIPE.
  if (!FaultsEnabled()) return ::send(fd, buf, n, MSG_NOSIGNAL);
  const Decision d = Roll(/*is_write=*/true, n);
  if (d.reset) {
    g_injected.fetch_add(1, std::memory_order_relaxed);
    ::shutdown(fd, SHUT_RDWR);
    errno = ECONNRESET;
    return -1;
  }
  if (d.delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(d.delay_us));
  }
  if (d.short_write_at > 0) {
    // Torn frame: the prefix reaches the peer, then the connection dies.
    g_injected.fetch_add(1, std::memory_order_relaxed);
    const ssize_t sent = ::send(fd, buf, d.short_write_at, MSG_NOSIGNAL);
    ::shutdown(fd, SHUT_RDWR);
    if (sent > 0) return sent;
    errno = ECONNRESET;
    return -1;
  }
  return ::send(fd, buf, n, MSG_NOSIGNAL);
}

}  // namespace segidx::server::transport
