#include "server/retrying_client.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace segidx::server {

RetryingClient::RetryingClient(std::string host, uint16_t port,
                               uint64_t session_id,
                               const RetryPolicy& policy)
    : host_(std::move(host)),
      port_(port),
      session_id_(session_id),
      policy_(policy),
      backoff_us_(policy.initial_backoff_us),
      rng_(policy.seed ^ session_id) {}

bool RetryingClient::Retryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:      // Connection died mid-round-trip.
    case StatusCode::kCorruption:   // Torn frame / desynchronized stream.
    case StatusCode::kUnavailable:  // Shed, degraded, retries exhausted.
    case StatusCode::kResourceExhausted:  // Queue full / quota.
    case StatusCode::kDeadlineExceeded:   // Server-side queue expiry.
    case StatusCode::kCancelled:          // Batch aborted; safe to retry.
      return true;
    default:
      return false;
  }
}

Status RetryingClient::EnsureConnected(Clock::time_point deadline) {
  if (client_ != nullptr) return Status::OK();
  Status last = UnavailableError("never attempted to connect");
  do {
    auto conn = Client::Connect(host_, port_);
    if (conn.ok()) {
      client_ = std::move(*conn);
      // Resynchronize: the server's resolved high-water mark tells us
      // whether an in-doubt seq from before the disconnect actually
      // settled, and guards against a stale session resuming too low.
      HelloReply hello;
      Status st = client_->Hello(session_id_, &hello);
      if (st.ok()) {
        hello_last_seq_ = hello.last_seq;
        next_seq_ = std::max(next_seq_, hello.last_seq + 1);
        if (ever_connected_) ++reconnects_;
        ever_connected_ = true;
        return Status::OK();
      }
      client_.reset();
      last = std::move(st);
    } else {
      last = conn.status();
    }
    Backoff(deadline);
  } while (Clock::now() < deadline);
  return Status(StatusCode::kUnavailable,
                "reconnect deadline exhausted: " + last.message());
}

void RetryingClient::Backoff(Clock::time_point deadline) {
  // Multiplicative jitter in [0.5, 1.0): colliding clients fan out
  // instead of thundering back in lockstep.
  const double jitter = 0.5 + 0.5 * rng_.NextDouble();
  auto sleep_us = std::chrono::microseconds(
      static_cast<uint64_t>(static_cast<double>(backoff_us_) * jitter));
  const auto now = Clock::now();
  if (now + sleep_us > deadline) {
    sleep_us = std::chrono::duration_cast<std::chrono::microseconds>(
        deadline - now);
  }
  if (sleep_us.count() > 0) std::this_thread::sleep_for(sleep_us);
  backoff_us_ = std::min(backoff_us_ * 2, policy_.max_backoff_us);
}

Status RetryingClient::Run(const std::function<Status(Client&)>& op) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(policy_.total_deadline_ms);
  backoff_us_ = policy_.initial_backoff_us;
  Status last;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) retries_++;
    Status st = EnsureConnected(deadline);
    if (st.ok()) {
      st = op(*client_);
      if (st.ok() || !Retryable(st)) return st;
      if (st.code() == StatusCode::kIoError ||
          st.code() == StatusCode::kCorruption) {
        // The stream is unusable; the next attempt reconnects.
        client_.reset();
      }
    }
    last = std::move(st);
    if (policy_.max_attempts > 0 && attempt + 1 >= policy_.max_attempts) {
      break;
    }
    if (Clock::now() >= deadline) break;
    Backoff(deadline);
  }
  return Status(last.code(),
                last.message() + " (retry budget exhausted after " +
                    std::to_string(retries_) + " total retries)");
}

Status RetryingClient::Insert(const Rect& rect, TupleId tid) {
  const uint64_t seq = next_seq_++;
  return Run([&](Client& c) {
    return c.Insert(rect, tid, session_id_, seq);
  });
}

Status RetryingClient::Delete(const Rect& rect, TupleId tid) {
  const uint64_t seq = next_seq_++;
  return Run([&](Client& c) {
    return c.Delete(rect, tid, session_id_, seq);
  });
}

Status RetryingClient::Commit() {
  const uint64_t seq = next_seq_++;
  return Run([&](Client& c) { return c.Commit(session_id_, seq); });
}

Status RetryingClient::Search(const Rect& rect, SearchReply* reply,
                              uint64_t budget_us, bool allow_partial) {
  return Run([&](Client& c) {
    return c.Search(rect, reply, budget_us, allow_partial);
  });
}

Status RetryingClient::Ping() {
  return Run([&](Client& c) {
    HelloReply hello;
    Status st = c.Hello(session_id_, &hello);
    if (st.ok()) hello_last_seq_ = hello.last_seq;
    return st;
  });
}

}  // namespace segidx::server
