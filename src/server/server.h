// segidxd: an epoll-based socket front end over core::IntervalIndex.
//
// One server owns one index and serves the length-prefixed binary protocol
// in protocol.h (search, insert, delete, commit, stats, health). The
// design goal is to funnel many connections into the small number of
// index-level batch entry points the engine already amortizes:
//
//   * Searches from all connections are coalesced by a dispatcher thread
//     into one exec::SearchBatch per round — one read-phase admission per
//     batch, so the whole batch sees a single consistent snapshot
//     (docs/CONCURRENCY.md) and the phase gate rotates once, not once per
//     request.
//   * Inserts are drained into exec::WritePool::ApplyBatch runs, whose
//     workers commit on a cadence through the pager's group-commit
//     sequencer — N connections' writes share fsync rounds.
//   * Explicit kCommit requests arriving together are acknowledged by one
//     checkpoint.
//
// Admission control rides the deadline machinery the tree already has
// (rtree::SearchOptions): each search carries a client budget; a request
// whose deadline expires while queued is answered kDeadlineExceeded
// without touching a page, and a full search queue sheds new arrivals the
// same way. Per-connection in-flight quotas bound what one client can pin.
// A coalesced batch runs under the earliest member deadline; members that
// were cut off by a *peer's* tighter deadline (their own budget still has
// time) are re-queued for the next batch rather than failed.
//
// Threading: one I/O thread (epoll accept/read + stats/health replies),
// one search dispatcher, one write dispatcher, optionally one scrub
// thread; responses are written by whichever dispatcher finished the
// request, serialized per connection by a write mutex. Server mutexes are
// strict leaves in the lock hierarchy (LockClass::kServerQueue /
// kServerConn): never held across an index call or another lock.

#ifndef SEGIDX_SERVER_SERVER_H_
#define SEGIDX_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/interval_index.h"
#include "exec/write_pool.h"
#include "server/dedup_window.h"
#include "server/protocol.h"

namespace segidx::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  // 0 binds an ephemeral port; read it back with port() after Start().
  uint16_t port = 0;
  int backlog = 128;

  // Worker width of the coalesced search batches (exec::QueryEngine) and
  // of the insert runs (exec::WritePool).
  int search_threads = 4;
  int write_threads = 2;

  // At most this many searches are coalesced into one read phase.
  size_t max_batch = 64;
  // Pending searches (and separately, pending writes) beyond which new
  // arrivals are shed instead of queued.
  size_t max_queue_depth = 1024;
  // Per-connection limit on requests accepted but not yet answered.
  int max_inflight_per_conn = 64;

  // WritePool cadence: each write worker commits after this many applied
  // inserts (0 = only explicit kCommit requests checkpoint).
  uint64_t commit_every = 512;

  // Server-side deadline applied to searches that carry no client budget
  // (0 = such searches run unbounded).
  uint64_t default_budget_us = 0;

  // A search bounced from a batch by a peer's tighter deadline (or a
  // batch abort) is retried this many times before kUnavailable.
  int max_retries = 3;

  // Connections with no inbound bytes for this long (and no request in
  // flight) are reaped so dead peers stop pinning per-connection quota
  // and fds. 0 disables.
  uint64_t idle_timeout_ms = 0;

  // Background media scrub every interval (0 = disabled). Runs under the
  // read phase, so it coexists with serving searches.
  uint64_t scrub_interval_ms = 0;
  uint64_t scrub_extents_per_second = 4096;

  // Test hook: the search dispatcher sleeps this long after dequeuing a
  // batch and before the deadline check, making queue-expiry paths
  // deterministic in tests. Production leaves it 0.
  uint64_t admission_delay_us = 0;
};

// Monotonic counters, snapshotted for the stats endpoint.
struct ServerStatsSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t searches = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t commits = 0;
  uint64_t info_requests = 0;  // kStats + kHealth.
  uint64_t responses = 0;
  uint64_t protocol_errors = 0;
  uint64_t send_failures = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_quota = 0;
  uint64_t deadline_expired = 0;
  uint64_t batches = 0;
  uint64_t batch_queries = 0;  // Sum of batch sizes (avg = /batches).
  uint64_t retries = 0;
  uint64_t scrubs_completed = 0;
  uint64_t scrub_defects = 0;
  bool scrub_running = false;
  // Accepts refused for fd/buffer exhaustion (EMFILE and friends), each
  // answered with a backed-off sleep instead of an epoll hot-spin.
  uint64_t accept_overload = 0;
  // Connections reaped by the idle timeout.
  uint64_t idle_reaped = 0;
  // Mutating requests answered from the exactly-once dedup window.
  uint64_t dedup_hits = 0;
  uint64_t hellos = 0;
};

class Server {
 public:
  // The index must outlive the server. The server issues SearchBatch,
  // WritePool inserts, Delete, Commit, Scrub, and stats reads against it;
  // other threads may keep using the index concurrently (the engine's
  // normal concurrency contract applies).
  Server(core::IntervalIndex* index, const ServerOptions& options);
  ~Server();  // Calls Stop().

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and spawns the serving threads. Fails without side
  // effects on bind/listen errors.
  Status Start();

  // Graceful shutdown: stop accepting and reading, answer every queued
  // request, run a final commit, close every connection. Idempotent.
  void Stop();

  // Crash-simulating shutdown for fault-tolerance tests: queued requests
  // are dropped unanswered, no final commit runs, and connections are cut
  // mid-stream — from a client's point of view the process died. The
  // index is left exactly as the last checkpoint (plus any uncommitted
  // in-memory state) describes it.
  void Abort();

  // The bound port (after Start()); useful with options.port == 0.
  uint16_t port() const { return port_; }

  ServerStatsSnapshot stats_snapshot() const;

  // The JSON documents served to kStats / kHealth clients (exposed for
  // the CLI and tests).
  std::string BuildStatsJson();
  std::string BuildHealthJson();

 private:
  using Clock = std::chrono::steady_clock;

  struct Connection {
    int fd = -1;
    // Serializes frame writes; also guards the closed flag. Strict leaf
    // lock.
    common::Mutex write_mu;
    // No more writes allowed. Dispatchers may set this (after a send
    // failure they shutdown() the socket but leave the fd open); only the
    // I/O thread — or Stop() after joining it — actually close()s the fd,
    // so a dead connection's fd number cannot be reused while its entry
    // is still in connections_.
    bool closed GUARDED_BY(write_mu) = false;
    // Requests accepted but not yet answered (quota).
    std::atomic<int> inflight{0};
    // Read buffer; touched only by the I/O thread.
    std::vector<uint8_t> inbuf;
    // Last inbound activity; touched only by the I/O thread (accept,
    // drain, and the idle sweep all run there).
    Clock::time_point last_active{};
  };

  struct PendingSearch {
    std::shared_ptr<Connection> conn;
    uint64_t request_id = 0;
    Rect rect;
    bool allow_partial = false;
    std::optional<Clock::time_point> deadline;
    int retries = 0;
  };

  struct PendingWrite {
    std::shared_ptr<Connection> conn;
    uint64_t request_id = 0;
    MsgType type = MsgType::kInsert;
    Rect rect;
    TupleId tid = 0;
    // Exactly-once tail; 0 = sessionless (version-1 client).
    uint64_t session_id = 0;
    uint64_t seq = 0;
  };

  void IoLoop();
  void SearchLoop();
  void WriteLoop();
  void ScrubLoop();

  void AcceptConnections();
  // Closes connections idle past options_.idle_timeout_ms (I/O thread).
  void ReapIdleConnections();
  // Reads everything available; returns false when the connection is done
  // (EOF, error, or protocol violation) and should be dropped.
  bool DrainReadable(const std::shared_ptr<Connection>& conn);
  bool HandleFrame(const std::shared_ptr<Connection>& conn,
                   const uint8_t* data, size_t size);
  void CloseConnection(const std::shared_ptr<Connection>& conn);

  void EnqueueSearch(const std::shared_ptr<Connection>& conn,
                     const Request& req);
  void EnqueueWrite(const std::shared_ptr<Connection>& conn,
                    const Request& req);
  // Runs one drained segment of the write queue in arrival order:
  // consecutive inserts become one WritePool run, consecutive commits one
  // checkpoint.
  void ExecuteWrites(std::vector<PendingWrite> work);

  // Encodes and writes one response frame; decrements the connection's
  // in-flight count when `counted`.
  void SendResponse(const std::shared_ptr<Connection>& conn, MsgType type,
                    uint64_t request_id, const Status& status,
                    const std::vector<uint8_t>* body = nullptr,
                    bool counted = true);

  core::IntervalIndex* index_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  bool started_ = false;

  std::atomic<bool> stopping_{false};
  // Abort() in progress: skip the final commit and drop queued answers.
  std::atomic<bool> aborting_{false};
  // Cancels an in-flight scrub pass promptly on Stop().
  std::atomic<bool> scrub_cancel_{false};

  // Exactly-once window for session-tagged mutations; serialized into the
  // checkpoint metadata via the index's commit-meta hook.
  DedupWindow dedup_;

  // Accept-failure backoff (EMFILE and friends); I/O thread only.
  uint64_t accept_backoff_ms_ = 1;

  // Request queues. queue_mu_ is a strict leaf: dispatchers move work out
  // under it, release it, then touch the index / sockets.
  common::Mutex queue_mu_;
  common::CondVar search_cv_;
  common::CondVar write_cv_;
  common::CondVar scrub_cv_;
  std::deque<PendingSearch> search_queue_ GUARDED_BY(queue_mu_);
  std::deque<PendingWrite> write_queue_ GUARDED_BY(queue_mu_);

  // Owned by the I/O thread while running; read by Stop() after the join.
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  std::unique_ptr<exec::WritePool> write_pool_;

  std::thread io_thread_;
  std::thread search_thread_;
  std::thread write_thread_;
  std::thread scrub_thread_;

  // Stats counters (relaxed; monotonic).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_active_{0};
  std::atomic<uint64_t> searches_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> deletes_{0};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> info_requests_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> send_failures_{0};
  std::atomic<uint64_t> shed_queue_full_{0};
  std::atomic<uint64_t> shed_quota_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batch_queries_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> scrubs_completed_{0};
  std::atomic<uint64_t> scrub_defects_{0};
  std::atomic<bool> scrub_running_{false};
  std::atomic<uint64_t> accept_overload_{0};
  std::atomic<uint64_t> idle_reaped_{0};
  std::atomic<uint64_t> dedup_hits_{0};
  std::atomic<uint64_t> hellos_{0};
};

}  // namespace segidx::server

#endif  // SEGIDX_SERVER_SERVER_H_
