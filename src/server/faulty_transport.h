// Network fault injection for the serving layer: the socket-transport twin
// of storage::FaultInjectingBlockDevice.
//
// Server and client I/O go through transport::Read/Write below. Normally
// they are plain read(2)/write(2); once a FaultPlan is installed they
// probabilistically inject the failure modes real networks produce:
//
//   * connection resets — the fd is shut down and the call fails with
//     ECONNRESET, killing the connection from the peer's point of view;
//   * delays — a bounded sleep before the syscall (latency, GC pauses,
//     congested links);
//   * short writes — only a prefix of the buffer is written before the fd
//     is shut down, so the peer observes a torn frame mid-stream.
//
// The plan is process-global (tests, `segidx_load --chaos`, and the serve
// torture install it around both endpoints at once) and seed-deterministic:
// the decision stream is a fixed-seed PRNG, so a single-threaded sequence
// of calls replays identically. Faults never target fds outside the
// wrapped call sites — the server's wake pipe and epoll plumbing stay
// reliable, as they are process-internal, not network.

#ifndef SEGIDX_SERVER_FAULTY_TRANSPORT_H_
#define SEGIDX_SERVER_FAULTY_TRANSPORT_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>

namespace segidx::server::transport {

struct FaultPlan {
  // Per-call probabilities in [0, 1].
  double reset_prob = 0.0;        // Fail with ECONNRESET + shutdown(fd).
  double delay_prob = 0.0;        // Sleep up to max_delay_us first.
  double short_write_prob = 0.0;  // Write a prefix, then shutdown(fd).
  uint32_t max_delay_us = 2000;
  uint64_t seed = 1;
};

// Installs (replacing any previous) / removes the process-global plan.
void InstallFaultPlan(const FaultPlan& plan);
void ClearFaultPlan();
bool FaultsEnabled();

// Total faults injected since the last InstallFaultPlan.
uint64_t FaultsInjected();

// read(2)/write(2) with the installed plan applied; errno is set exactly
// as the syscall (or the injected fault) dictates.
ssize_t Read(int fd, void* buf, size_t n);
ssize_t Write(int fd, const void* buf, size_t n);

}  // namespace segidx::server::transport

#endif  // SEGIDX_SERVER_FAULTY_TRANSPORT_H_
