// Bounded per-session dedup window for the exactly-once write protocol.
//
// The server records, for every client session, the last sequence number
// it resolved and the verdict it acknowledged. A retried (session, seq) —
// after a reconnect, or after a server crash-restart — is answered from
// the window instead of re-applied. The window is serialized into the
// index's commit metadata by the server's commit-meta hook, so it is
// persisted atomically with every checkpoint: the durable window always
// describes exactly the durable data.
//
// Bounds: in memory the window keeps the most recently active
// `max_sessions` sessions (LRU eviction); on disk it persists at most
// kMaxPersistedSessions of those, newest first, to fit the pager's
// user-meta budget. An evicted session's retry is re-applied — the client
// contract (one in-flight mutation per session, strict round trips) makes
// that reachable only after a session has been idle far longer than any
// retry horizon.
//
// Serialized layout (little-endian):
//
//   'D' 'W' u8 version(1) u8 count
//   count x { u64 session_id, u64 last_seq, u8 status_code }
//
// Thread safety: all methods lock the internal mutex
// (LockClass::kServerDedup, a leaf — taken alone by the dispatcher and
// I/O threads, and under the commit's exclusive phase by the hook).

#ifndef SEGIDX_SERVER_DEDUP_WINDOW_H_
#define SEGIDX_SERVER_DEDUP_WINDOW_H_

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace segidx::server {

class DedupWindow {
 public:
  // Most sessions one checkpoint can persist: 4-byte header plus 17 bytes
  // per entry must fit the commit-metadata budget (430 bytes today).
  static constexpr size_t kMaxPersistedSessions = 24;

  struct Verdict {
    uint64_t seq = 0;
    StatusCode code = StatusCode::kOk;
  };

  explicit DedupWindow(size_t max_sessions = 64)
      : max_sessions_(max_sessions == 0 ? 1 : max_sessions) {}

  DedupWindow(const DedupWindow&) = delete;
  DedupWindow& operator=(const DedupWindow&) = delete;

  // The duplicate check: a verdict when `seq` is at or below the session's
  // recorded sequence (the request was already resolved — acknowledge from
  // the window), nullopt when it is fresh and must be processed.
  std::optional<Verdict> Check(uint64_t session_id, uint64_t seq);

  // Records `seq` as the session's last resolved sequence with the verdict
  // that was (or will be) acknowledged, and returns the session's previous
  // verdict (nullopt for a new session) so a failed commit can roll back
  // with Restore(). Recording an already-recorded seq overwrites the
  // verdict in place.
  std::optional<Verdict> Record(uint64_t session_id, uint64_t seq,
                                StatusCode code);

  // Reverts a session to a previous verdict (nullopt erases it): the
  // rollback half of record-then-commit when the commit fails.
  void Restore(uint64_t session_id, std::optional<Verdict> previous);

  // The session's last recorded sequence (0 when unknown) — the kHello
  // resynchronization answer.
  uint64_t LastSeq(uint64_t session_id) const;

  size_t session_count() const;

  // Serializes the most recently active sessions, newest first, capped at
  // kMaxPersistedSessions.
  std::vector<uint8_t> Serialize() const;

  // Replaces the window with a previously serialized image. An empty blob
  // clears the window; a malformed blob fails without modifying it.
  Status Load(const std::vector<uint8_t>& blob);

 private:
  struct Entry {
    uint64_t session_id = 0;
    Verdict verdict;
  };
  using Lru = std::list<Entry>;  // Front = most recently active.

  // Moves (or inserts) the session to the LRU front and returns its entry.
  Lru::iterator Touch(uint64_t session_id) REQUIRES(mu_);

  const size_t max_sessions_;
  mutable common::Mutex mu_;
  Lru lru_ GUARDED_BY(mu_);
  std::unordered_map<uint64_t, Lru::iterator> index_ GUARDED_BY(mu_);
};

}  // namespace segidx::server

#endif  // SEGIDX_SERVER_DEDUP_WINDOW_H_
