// Blocking client for the segidxd wire protocol.
//
// One Client owns one TCP connection. The convenience calls (Search,
// Insert, Commit, ...) are strict request/response round trips; the
// Send*/ReadResponse primitives expose pipelining — queue several frames,
// then collect responses and match them by request_id — which is what the
// load generator and the quota tests need. A Client is not thread-safe;
// use one per thread.

#ifndef SEGIDX_SERVER_CLIENT_H_
#define SEGIDX_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "common/types.h"
#include "server/protocol.h"

namespace segidx::server {

class Client {
 public:
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Round trips. The returned Status is the server's verdict for the
  // request (kDeadlineExceeded, kResourceExhausted, ...) or a local
  // kIoError when the connection itself failed.
  Status Search(const Rect& rect, SearchReply* reply, uint64_t budget_us = 0,
                bool allow_partial = false);
  Status Insert(const Rect& rect, TupleId tid);
  Status Delete(const Rect& rect, TupleId tid);
  Status Commit();
  Result<std::string> Stats();
  Result<std::string> Health();

  // Session-tagged variants (exactly-once): the server dedups on
  // (session_id, seq), so resending the same pair after a reconnect
  // replays the original verdict instead of re-applying. session_id must
  // be nonzero; seq must be strictly increasing within the session.
  // RetryingClient drives these; call them directly only when managing
  // retries by hand.
  Status Insert(const Rect& rect, TupleId tid, uint64_t session_id,
                uint64_t seq);
  Status Delete(const Rect& rect, TupleId tid, uint64_t session_id,
                uint64_t seq);
  Status Commit(uint64_t session_id, uint64_t seq);

  // Version/session handshake: reports the server's protocol version and
  // the session's highest resolved sequence number (0 if unknown).
  Status Hello(uint64_t session_id, HelloReply* reply);

  // Pipelining primitives. Each Send* picks and returns a fresh
  // request_id; ReadResponse returns the next response frame off the wire
  // (completion order — match on Response::request_id).
  Result<uint64_t> SendSearch(const Rect& rect, uint64_t budget_us = 0,
                              bool allow_partial = false);
  Result<uint64_t> SendInsert(const Rect& rect, TupleId tid);
  Result<uint64_t> SendCommit();
  Status ReadResponse(Response* out);

 private:
  explicit Client(int fd) : fd_(fd) {}

  Status SendFrame(const std::vector<uint8_t>& payload);
  // One full round trip for a single-response request.
  Status RoundTrip(const std::vector<uint8_t>& payload, uint64_t request_id,
                   Response* out);

  int fd_;
  uint64_t next_id_ = 1;
};

}  // namespace segidx::server

#endif  // SEGIDX_SERVER_CLIENT_H_
