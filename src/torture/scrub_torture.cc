#include "torture/scrub_torture.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/salvage.h"
#include "storage/block_device.h"

namespace segidx::torture {

namespace {

using core::IntervalIndex;
using storage::MemoryBlockDevice;

std::vector<std::pair<Rect, TupleId>> MakeRecords(uint64_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> start(0.0, 1000.0);
  std::uniform_real_distribution<double> length(0.5, 40.0);
  std::uniform_real_distribution<double> ypos(0.0, 1000.0);
  std::vector<std::pair<Rect, TupleId>> records;
  records.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const double s = start(rng);
    records.emplace_back(
        Rect(Interval(s, s + length(rng)), Interval::Point(ypos(rng))),
        static_cast<TupleId>(i + 1));
  }
  return records;
}

// One reachable node extent of the baseline tree, with the record pieces
// (leaf entries and spanning records) stored directly on it.
struct NodeInfo {
  storage::PageId id;
  int parent = -1;                // Index into the nodes vector; -1 = root.
  std::vector<size_t> children;   // Indices into the nodes vector.
  std::vector<TupleId> piece_tids;
};

// Walks the pristine tree into a flat node list (index 0 = root).
Result<std::vector<NodeInfo>> MapTree(IntervalIndex* index) {
  std::vector<NodeInfo> nodes;
  struct Item {
    storage::PageId id;
    int parent;
  };
  std::vector<Item> stack;
  stack.push_back({index->tree()->root(), -1});
  uint64_t accesses = 0;
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    const size_t me = nodes.size();
    nodes.push_back({item.id, item.parent, {}, {}});
    if (item.parent >= 0) nodes[item.parent].children.push_back(me);
    SEGIDX_ASSIGN_OR_RETURN(rtree::Node node,
                            index->tree()->ReadNode(item.id, &accesses));
    if (node.is_leaf()) {
      for (const rtree::LeafEntry& e : node.records) {
        nodes[me].piece_tids.push_back(e.tid);
      }
      continue;
    }
    for (const rtree::SpanningEntry& s : node.spanning) {
      nodes[me].piece_tids.push_back(s.tid);
    }
    for (const rtree::BranchEntry& b : node.branches) {
      stack.push_back({b.child, static_cast<int>(me)});
    }
  }
  return nodes;
}

bool HasChosenAncestorOrDescendant(const std::vector<NodeInfo>& nodes,
                                   const std::vector<char>& chosen,
                                   size_t candidate) {
  for (int p = nodes[candidate].parent; p >= 0; p = nodes[p].parent) {
    if (chosen[p]) return true;
  }
  std::vector<size_t> stack(nodes[candidate].children.begin(),
                            nodes[candidate].children.end());
  while (!stack.empty()) {
    const size_t n = stack.back();
    stack.pop_back();
    if (chosen[n]) return true;
    stack.insert(stack.end(), nodes[n].children.begin(),
                 nodes[n].children.end());
  }
  return false;
}

std::string Describe(uint64_t round, const std::string& what) {
  return "round " + std::to_string(round) + ": " + what;
}

std::string BlockList(const std::vector<uint32_t>& blocks) {
  std::string out = "[";
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(blocks[i]);
  }
  return out + "]";
}

}  // namespace

Result<ScrubTortureReport> RunScrubTorture(
    const ScrubTortureOptions& options) {
  if (options.records == 0 || options.rounds == 0 ||
      options.max_corrupt_per_round == 0) {
    return InvalidArgumentError(
        "scrub torture needs records, rounds, and max_corrupt_per_round > 0");
  }
  const std::vector<std::pair<Rect, TupleId>> records =
      MakeRecords(options.records, options.seed);
  const Rect everything(Interval(-1e12, 1e12), Interval(-1e12, 1e12));

  // --- baseline: build the index and snapshot its image -------------------
  std::vector<uint8_t> baseline_image;
  {
    auto device = std::make_unique<MemoryBlockDevice>();
    MemoryBlockDevice* dev = device.get();
    SEGIDX_ASSIGN_OR_RETURN(
        std::unique_ptr<IntervalIndex> index,
        IntervalIndex::CreateWithDevice(options.kind, std::move(device),
                                        options.index));
    for (size_t i = 0; i < records.size(); ++i) {
      SEGIDX_RETURN_IF_ERROR(
          index->Insert(records[i].first, records[i].second));
      // Periodic checkpoints age some extents into the free lists, so the
      // media pass of every later scrub has real work to do.
      if ((i + 1) % 100 == 0) SEGIDX_RETURN_IF_ERROR(index->Flush());
    }
    // Two flushes in a row: journal replay rewrites every page image in the
    // newest checkpoint's journal back to the device on open, silently
    // healing corruption under it. An empty final checkpoint leaves every
    // node extent outside the replay window so injected damage stays
    // visible to scrub.
    SEGIDX_RETURN_IF_ERROR(index->Flush());
    SEGIDX_RETURN_IF_ERROR(index->Flush());
    SEGIDX_RETURN_IF_ERROR(index->Close());
    baseline_image = dev->Snapshot();
  }

  // Map the pristine tree: reachable extents, parentage, and which records
  // have pieces where.
  std::vector<NodeInfo> nodes;
  {
    auto opened = IntervalIndex::OpenFromDevice(
        std::make_unique<MemoryBlockDevice>(baseline_image), options.index);
    SEGIDX_RETURN_IF_ERROR(opened.status());
    SEGIDX_ASSIGN_OR_RETURN(nodes, MapTree(opened.value().get()));
  }
  std::unordered_map<TupleId, uint64_t> piece_counts;
  for (const NodeInfo& n : nodes) {
    for (TupleId tid : n.piece_tids) ++piece_counts[tid];
  }

  const uint32_t bbs = options.index.pager.base_block_size;
  std::mt19937 rng(options.seed ^ 0x5c20bu);
  ScrubTortureReport report;

  for (uint64_t round = 0; round < options.rounds; ++round) {
    if (options.log_progress && options.rounds >= 10 &&
        round % (options.rounds / 10) == 0) {
      std::fprintf(stderr, "scrub-torture: round %llu/%llu\n",
                   static_cast<unsigned long long>(round),
                   static_cast<unsigned long long>(options.rounds));
    }
    // --- choose an ancestor-free set of extents to corrupt ----------------
    const uint64_t want =
        1 + rng() % options.max_corrupt_per_round;
    std::vector<size_t> order(nodes.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), rng);
    std::vector<char> chosen(nodes.size(), 0);
    std::vector<size_t> picks;
    for (size_t candidate : order) {
      if (picks.size() >= want) break;
      if (HasChosenAncestorOrDescendant(nodes, chosen, candidate)) continue;
      chosen[candidate] = 1;
      picks.push_back(candidate);
    }
    std::vector<uint32_t> picked_blocks;
    for (size_t p : picks) picked_blocks.push_back(nodes[p].id.block);
    std::sort(picked_blocks.begin(), picked_blocks.end());

    // Expected outcomes. Search loses every record whose pieces all sit in
    // the damaged *subtrees*; salvage only loses records whose pieces all
    // sit on the damaged extents *themselves*.
    std::unordered_map<TupleId, uint64_t> subtree_pieces;
    std::unordered_map<TupleId, uint64_t> extent_pieces;
    for (size_t p : picks) {
      for (TupleId tid : nodes[p].piece_tids) ++extent_pieces[tid];
      std::vector<size_t> stack{p};
      while (!stack.empty()) {
        const size_t n = stack.back();
        stack.pop_back();
        for (TupleId tid : nodes[n].piece_tids) ++subtree_pieces[tid];
        stack.insert(stack.end(), nodes[n].children.begin(),
                     nodes[n].children.end());
      }
    }
    std::vector<TupleId> expect_search;
    std::unordered_set<TupleId> expect_salvage;
    for (const auto& [tid, total] : piece_counts) {
      auto sub = subtree_pieces.find(tid);
      if (sub == subtree_pieces.end() || sub->second < total) {
        expect_search.push_back(tid);
      }
      auto ext = extent_pieces.find(tid);
      if (ext == extent_pieces.end() || ext->second < total) {
        expect_salvage.insert(tid);
      }
    }
    std::sort(expect_search.begin(), expect_search.end());

    // --- corrupt a copy of the image --------------------------------------
    std::vector<uint8_t> image = baseline_image;
    for (size_t p : picks) {
      const uint64_t off = static_cast<uint64_t>(nodes[p].id.block) * bbs;
      const size_t extent_bytes =
          static_cast<size_t>(bbs) << nodes[p].id.size_class;
      const size_t span = std::min<size_t>(256, extent_bytes);
      for (size_t i = 0; i < span; ++i) image[off + i] ^= 0xa5;
    }
    ++report.rounds_run;
    report.pages_corrupted += picks.size();

    auto opened = IntervalIndex::OpenFromDevice(
        std::make_unique<MemoryBlockDevice>(image), options.index);
    if (!opened.ok()) {
      report.failures.push_back(Describe(
          round, "open failed (content damage must not block open): " +
                     opened.status().ToString()));
      continue;
    }
    std::unique_ptr<IntervalIndex> index = std::move(opened).value();

    // --- scrub must find exactly the corrupted extents --------------------
    auto scrubbed = index->Scrub();
    if (!scrubbed.ok()) {
      report.failures.push_back(
          Describe(round, "scrub failed: " + scrubbed.status().ToString()));
      continue;
    }
    const storage::ScrubReport& scrub = scrubbed.value();
    std::vector<uint32_t> defect_blocks;
    for (const storage::ScrubDefect& d : scrub.defects) {
      if (d.page.valid()) defect_blocks.push_back(d.page.block);
    }
    std::sort(defect_blocks.begin(), defect_blocks.end());
    if (!scrub.completed || defect_blocks != picked_blocks) {
      report.failures.push_back(Describe(
          round, "scrub found " + BlockList(defect_blocks) +
                     ", corrupted " + BlockList(picked_blocks)));
      continue;
    }
    if (index->pager()->quarantined_count() != picks.size()) {
      report.failures.push_back(
          Describe(round, "scrub quarantined " +
                              std::to_string(index->pager()->quarantined_count()) +
                              " pages, corrupted " +
                              std::to_string(picks.size())));
      continue;
    }

    // --- partial search: exact skip set, exact surviving records ----------
    rtree::SearchOptions search_options;
    search_options.allow_partial = true;
    std::vector<rtree::SearchHit> hits;
    rtree::SearchOutcome outcome;
    const Status searched =
        index->Search(everything, search_options, &hits, &outcome);
    if (!searched.ok()) {
      report.failures.push_back(
          Describe(round, "partial search failed: " + searched.ToString()));
      continue;
    }
    std::vector<uint32_t> skipped_blocks;
    for (const storage::PageId& id : outcome.skipped_subtrees) {
      skipped_blocks.push_back(id.block);
    }
    std::sort(skipped_blocks.begin(), skipped_blocks.end());
    if (!outcome.partial || skipped_blocks != picked_blocks) {
      report.failures.push_back(Describe(
          round, "search skipped " + BlockList(skipped_blocks) +
                     ", corrupted " + BlockList(picked_blocks)));
      continue;
    }
    std::vector<TupleId> got;
    {
      std::unordered_set<TupleId> seen;
      for (const rtree::SearchHit& h : hits) {
        if (seen.insert(h.tid).second) got.push_back(h.tid);
      }
    }
    std::sort(got.begin(), got.end());
    if (got != expect_search) {
      report.failures.push_back(Describe(
          round, "partial search returned " + std::to_string(got.size()) +
                     " records, expected " +
                     std::to_string(expect_search.size())));
      continue;
    }
    report.records_skipped += piece_counts.size() - expect_search.size();
    if (index->pager()->degraded()) {
      report.failures.push_back(Describe(
          round, "pager went device-degraded over per-page content damage"));
      continue;
    }

    // --- salvage: every record with a piece outside the damaged extents ---
    core::SalvageOptions salvage_options;
    salvage_options.pager = options.index.pager;
    core::SalvageReport salvage_report;
    const MemoryBlockDevice damaged(image);
    auto rebuilt = core::SalvageToDevice(
        damaged, std::make_unique<MemoryBlockDevice>(), salvage_options,
        &salvage_report);
    if (!rebuilt.ok()) {
      report.failures.push_back(
          Describe(round, "salvage failed: " + rebuilt.status().ToString()));
      continue;
    }
    const Status check = rebuilt.value()->CheckInvariants();
    if (!check.ok()) {
      report.failures.push_back(Describe(
          round, "salvaged index fails structure check: " + check.ToString()));
      continue;
    }
    std::vector<TupleId> salvaged;
    {
      const Status s =
          rebuilt.value()->SearchTuples(everything, &salvaged);
      if (!s.ok()) {
        report.failures.push_back(Describe(
            round, "salvaged index search failed: " + s.ToString()));
        continue;
      }
    }
    // Stale page copies may legitimately resurrect extra pieces, so the
    // expected set is a floor, not an exact match.
    std::unordered_set<TupleId> salvaged_set(salvaged.begin(),
                                             salvaged.end());
    uint64_t missing = 0;
    for (TupleId tid : expect_salvage) {
      if (salvaged_set.find(tid) == salvaged_set.end()) ++missing;
    }
    if (missing != 0) {
      report.failures.push_back(Describe(
          round, "salvage lost " + std::to_string(missing) +
                     " records that had pieces outside the damaged extents"));
      continue;
    }
    report.records_salvaged += salvaged_set.size();
  }
  return report;
}

}  // namespace segidx::torture
