// Corruption torture harness (runtime-resilience work, ISSUE 5).
//
// Where the crash torture (recovery_torture.h) truncates history at a fault
// point, this harness damages *content*: it builds a deterministic index,
// then over many rounds corrupts a random ancestor-free set of reachable
// node extents in a copy of the image and asserts the resilience stack
// tells the exact truth about the damage:
//
//   * IntervalIndex::Scrub reports precisely the corrupted extents — every
//     one of them, and nothing else — and quarantines them;
//   * an allow_partial full-space search stays OK, lists exactly the
//     corrupted extents as skipped subtrees, and returns exactly the
//     records with at least one piece outside the damaged subtrees;
//   * the pager never enters whole-device degraded mode (content damage is
//     a per-page problem);
//   * salvage rebuilds a fresh index that passes the structure checker and
//     contains exactly the records with at least one piece outside the
//     damaged extents themselves (children of a damaged interior node are
//     intact on disk, so salvage recovers more than the partial search).
//
// The corrupted sets are ancestor-free (no chosen extent lies inside
// another's subtree) so the expected scrub/search/salvage sets are exact,
// not bounds.

#ifndef SEGIDX_TORTURE_SCRUB_TORTURE_H_
#define SEGIDX_TORTURE_SCRUB_TORTURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/interval_index.h"

namespace segidx::torture {

struct ScrubTortureOptions {
  core::IndexKind kind = core::IndexKind::kSRTree;
  uint64_t records = 400;
  // Corruption rounds, each against a fresh copy of the baseline image.
  uint64_t rounds = 20;
  // Extents corrupted per round: 1..max, drawn per round.
  uint64_t max_corrupt_per_round = 3;
  uint32_t seed = 4321;
  core::IndexOptions index;
  bool log_progress = false;
};

struct ScrubTortureReport {
  uint64_t rounds_run = 0;
  uint64_t pages_corrupted = 0;   // Across all rounds.
  uint64_t records_skipped = 0;   // Records partial searches had to drop.
  uint64_t records_salvaged = 0;  // Records salvage brought back.
  // One message per failed round (empty means the sweep passed).
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
};

// Runs the baseline build plus the corruption sweep. Returns non-OK only
// when the harness itself cannot run; per-round violations are reported in
// `failures`.
Result<ScrubTortureReport> RunScrubTorture(const ScrubTortureOptions& options);

}  // namespace segidx::torture

#endif  // SEGIDX_TORTURE_SCRUB_TORTURE_H_
