#include "torture/serve_torture.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <utility>

#include "common/random.h"
#include "server/faulty_transport.h"
#include "server/retrying_client.h"
#include "server/server.h"
#include "storage/block_device.h"
#include "storage/fault_injection.h"

namespace segidx::torture {

namespace {

constexpr const char* kHost = "127.0.0.1";

// Deterministic geometry: insert and delete must present the identical
// rect for a tid, and verification must not depend on thread interleaving.
Rect RectFor(TupleId tid) {
  const double x = static_cast<double>(tid % 997);
  const double y = static_cast<double>((tid * 7) % 991);
  return Rect(x, x + 4.0, y, y + 4.0);
}

Rect Everywhere() { return Rect(-1e9, 1e9, -1e9, 1e9); }

// The verdicts RetryingClient keeps retrying on; when it gives up the
// operation's outcome is unknown, not failed.
bool RetryableCode(StatusCode code) {
  switch (code) {
    case StatusCode::kIoError:
    case StatusCode::kCorruption:
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
      return true;
    default:
      return false;
  }
}

// One writer thread's oracle. Threads never share logs, so no locking.
struct WriterLog {
  std::set<TupleId> acked_live;     // Insert acked, no delete issued since.
  std::set<TupleId> acked_deleted;  // Delete acked: must be absent.
  std::set<TupleId> unresolved;     // Gave up mid-retry: present 0 or 1 time.
  uint64_t reconnects = 0;
  uint64_t retries = 0;
  std::vector<std::string> errors;  // Hard (non-retryable) verdicts.
};

struct ServingStack {
  storage::MemoryBlockDevice* memory = nullptr;          // Borrowed.
  storage::FaultInjectingBlockDevice* device = nullptr;  // Borrowed.
  std::unique_ptr<core::IntervalIndex> index;            // Owns the chain.
  std::unique_ptr<server::Server> server;
};

server::ServerOptions MakeServerOptions(const ServeTortureOptions& options,
                                        uint16_t port) {
  server::ServerOptions sopts;
  sopts.host = kHost;
  sopts.port = port;
  sopts.commit_every = options.server_commit_every;
  return sopts;
}

// Builds index + server on a fresh (or recovered) device image. Binding
// an explicit port retries briefly: a restart can race the old socket's
// teardown.
Result<ServingStack> StartStack(const ServeTortureOptions& options,
                                std::vector<uint8_t>* image, uint16_t port) {
  ServingStack stack;
  auto memory = image == nullptr
                    ? std::make_unique<storage::MemoryBlockDevice>()
                    : std::make_unique<storage::MemoryBlockDevice>(
                          std::move(*image));
  stack.memory = memory.get();
  auto faulty =
      std::make_unique<storage::FaultInjectingBlockDevice>(std::move(memory));
  stack.device = faulty.get();
  auto index = image == nullptr
                   ? core::IntervalIndex::CreateWithDevice(
                         options.kind, std::move(faulty), options.index)
                   : core::IntervalIndex::OpenFromDevice(std::move(faulty),
                                                         options.index);
  if (!index.ok()) return index.status();
  stack.index = std::move(*index);

  Status last = UnavailableError("server never started");
  for (int attempt = 0; attempt < 100; ++attempt) {
    stack.server = std::make_unique<server::Server>(
        stack.index.get(), MakeServerOptions(options, port));
    last = stack.server->Start();
    if (last.ok()) return stack;
    stack.server.reset();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return last;
}

void WriterThread(const ServeTortureOptions& options, uint16_t port,
                  int round, int writer, WriterLog* log) {
  server::RetryPolicy policy;
  policy.max_attempts = 0;  // Deadline-bound: ride out crash + restart.
  policy.total_deadline_ms = options.client_deadline_ms;
  policy.seed = options.seed + static_cast<uint64_t>(round) * 7919 + writer;
  const uint64_t session_id =
      static_cast<uint64_t>(round + 1) * 1000 + writer + 1;
  server::RetryingClient client(kHost, port, session_id, policy);
  Rng rng(policy.seed * 2654435761u + 1);

  const bool allow_deletes =
      options.kind == core::IndexKind::kRTree && options.delete_fraction > 0;
  TupleId next_tid =
      static_cast<TupleId>(writer) * options.ops_per_writer + 1;

  for (uint64_t op = 0; op < options.ops_per_writer; ++op) {
    const bool do_delete = allow_deletes && !log->acked_live.empty() &&
                           rng.NextDouble() < options.delete_fraction;
    if (do_delete) {
      // Deterministic-ish victim: hop a random distance into our own
      // acked set.
      auto it = log->acked_live.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(
                           0, static_cast<int64_t>(log->acked_live.size()) -
                                  1)));
      const TupleId victim = *it;
      const Status st = client.Delete(RectFor(victim), victim);
      log->acked_live.erase(victim);
      if (st.ok()) {
        log->acked_deleted.insert(victim);
      } else if (RetryableCode(st.code())) {
        log->unresolved.insert(victim);
      } else {
        log->errors.push_back("delete tid " + std::to_string(victim) +
                              ": " + st.ToString());
      }
    } else {
      const TupleId tid = next_tid++;
      const Status st = client.Insert(RectFor(tid), tid);
      if (st.ok()) {
        log->acked_live.insert(tid);
      } else if (RetryableCode(st.code())) {
        log->unresolved.insert(tid);
      } else {
        log->errors.push_back("insert tid " + std::to_string(tid) + ": " +
                              st.ToString());
      }
    }
    if (options.client_commit_every > 0 &&
        (op + 1) % options.client_commit_every == 0) {
      // The server already checkpoints its batches; an explicit commit
      // exercises the coalesced-commit + dedup path. Its verdict does not
      // change the oracle (acked mutations are durable either way).
      (void)client.Commit();
    }
  }
  log->reconnects = client.reconnects();
  log->retries = client.retries();
}

void ReaderThread(const ServeTortureOptions& options, uint16_t port,
                  int round, int reader, const std::atomic<bool>* stop) {
  server::RetryPolicy policy;
  policy.max_attempts = 3;  // Searches are disposable; fail fast and loop.
  policy.total_deadline_ms = 2000;
  policy.seed = options.seed + static_cast<uint64_t>(round) * 104729 + reader;
  const uint64_t session_id =
      static_cast<uint64_t>(round + 1) * 1000 + 500 + reader;
  server::RetryingClient client(kHost, port, session_id, policy);
  Rng rng(policy.seed + 17);
  while (!stop->load(std::memory_order_relaxed)) {
    const double x = rng.NextDouble() * 900.0;
    const double y = rng.NextDouble() * 900.0;
    server::SearchReply reply;
    (void)client.Search(Rect(x, x + 50, y, y + 50), &reply,
                        /*budget_us=*/5000, /*allow_partial=*/true);
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

std::string Describe(int round, const std::string& what) {
  return "round " + std::to_string(round) + ": " + what;
}

}  // namespace

Result<ServeTortureReport> RunServeTorture(
    const ServeTortureOptions& options) {
  if (core::IsSkeleton(options.kind)) {
    return InvalidArgumentError(
        "serve torture requires a non-skeleton index kind (the skeleton "
        "build buffer hides acked records from the oracle)");
  }
  if (options.writers <= 0 || options.ops_per_writer == 0) {
    return InvalidArgumentError("serve torture needs at least one writer op");
  }

  ServeTortureReport report;
  Rng crash_rng(options.seed ^ 0x5eedf00du);
  const int total_rounds = options.chaos_rounds + options.crash_rounds;

  for (int round = 0; round < total_rounds; ++round) {
    const bool crashing = round >= options.chaos_rounds;
    if (options.log_progress) {
      std::fprintf(stderr, "serve-torture: round %d/%d (%s)\n", round + 1,
                   total_rounds, crashing ? "crash" : "chaos");
    }

    auto stack = StartStack(options, nullptr, /*port=*/0);
    if (!stack.ok()) return stack.status();
    const uint16_t port = stack->server->port();

    server::transport::FaultPlan plan;
    plan.reset_prob = options.reset_prob;
    plan.delay_prob = options.delay_prob;
    plan.short_write_prob = options.short_write_prob;
    plan.max_delay_us = options.max_delay_us;
    plan.seed = options.seed + static_cast<uint64_t>(round) * 31;
    server::transport::InstallFaultPlan(plan);

    std::vector<WriterLog> logs(options.writers);
    std::atomic<bool> readers_stop{false};
    std::vector<std::thread> threads;
    threads.reserve(options.writers + options.readers);
    for (int w = 0; w < options.writers; ++w) {
      threads.emplace_back(WriterThread, std::cref(options), port, round, w,
                           &logs[w]);
    }
    std::vector<std::thread> readers;
    readers.reserve(options.readers);
    for (int r = 0; r < options.readers; ++r) {
      readers.emplace_back(ReaderThread, std::cref(options), port, round, r,
                           &readers_stop);
    }

    // Crash controller: freeze the device mid-traffic, crash the server,
    // recover the surviving image, restart on the same port — repeatedly —
    // while the writer/reader threads above keep hammering.
    if (crashing) {
      for (int c = 0; c < options.crashes_per_round; ++c) {
        // Let some durability traffic land first.
        const uint64_t start_ops = stack->device->counters().ops();
        const auto progress_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(10);
        while (stack->device->counters().ops() < start_ops + 20 &&
               std::chrono::steady_clock::now() < progress_deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        stack->device->CrashAtOp(stack->device->counters().ops() +
                                 static_cast<uint64_t>(
                                     crash_rng.UniformInt(0, 30)));
        const auto crash_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(10);
        while (!stack->device->crashed() &&
               std::chrono::steady_clock::now() < crash_deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }

        stack->server->Abort();
        stack->server.reset();
        std::vector<uint8_t> image = stack->memory->Snapshot();
        stack->index.reset();

        auto recovered = StartStack(options, &image, port);
        if (!recovered.ok()) {
          report.failures.push_back(Describe(
              round, "recovery/restart failed after crash " +
                         std::to_string(c) + ": " +
                         recovered.status().ToString()));
          break;  // Writers drain against a dead port and give up.
        }
        *stack = std::move(*recovered);
        report.server_crashes++;
        if (options.log_progress) {
          std::fprintf(stderr, "serve-torture:   crash %d recovered, %llu "
                               "records back\n",
                       c + 1,
                       static_cast<unsigned long long>(stack->index->size()));
        }
      }
    }

    for (std::thread& t : threads) t.join();
    readers_stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : readers) t.join();

    report.transport_faults += server::transport::FaultsInjected();
    server::transport::ClearFaultPlan();

    if (stack->server != nullptr) {
      report.dedup_hits += stack->server->stats_snapshot().dedup_hits;
      stack->server->Stop();
      stack->server.reset();
    }

    // --- Verification against the merged oracle --------------------------
    std::set<TupleId> live;
    std::set<TupleId> deleted;
    std::set<TupleId> unresolved;
    for (WriterLog& log : logs) {
      report.client_reconnects += log.reconnects;
      report.client_retries += log.retries;
      report.acked_inserts += log.acked_live.size() + log.acked_deleted.size();
      report.acked_deletes += log.acked_deleted.size();
      report.unresolved_ops += log.unresolved.size();
      live.insert(log.acked_live.begin(), log.acked_live.end());
      deleted.insert(log.acked_deleted.begin(), log.acked_deleted.end());
      unresolved.insert(log.unresolved.begin(), log.unresolved.end());
      for (const std::string& err : log.errors) {
        report.failures.push_back(Describe(round, "hard client error: " + err));
      }
    }

    if (stack->index == nullptr) {
      report.rounds_run++;
      continue;  // Recovery failed above; already reported.
    }

    auto check = stack->index->CheckStructure();
    if (!check.ok()) {
      report.failures.push_back(
          Describe(round, "structure check did not run: " +
                              check.status().ToString()));
    } else if (!check->ok()) {
      report.failures.push_back(
          Describe(round, "structure violations: " + check->ToString()));
    }

    std::vector<TupleId> found;
    if (Status st = stack->index->SearchTuples(Everywhere(), &found);
        !st.ok()) {
      report.failures.push_back(
          Describe(round, "final search failed: " + st.ToString()));
      report.rounds_run++;
      continue;
    }
    std::map<TupleId, int> count;
    for (TupleId tid : found) count[tid]++;

    // Segment kinds may legitimately split one record into several pieces
    // sharing a tid; only plain kinds support the exact-count check.
    const bool exact = !core::IsSegment(options.kind);
    size_t reported = 0;
    auto flag = [&](const std::string& msg) {
      if (reported++ < 8) report.failures.push_back(Describe(round, msg));
    };
    for (TupleId tid : live) {
      const int n = count.count(tid) != 0 ? count[tid] : 0;
      if (n == 0) {
        flag("LOST: acked insert tid " + std::to_string(tid) + " missing");
      } else if (exact && n != 1) {
        flag("DUPLICATED: acked insert tid " + std::to_string(tid) +
             " present " + std::to_string(n) + " times");
      }
    }
    for (TupleId tid : deleted) {
      if (count.count(tid) != 0) {
        flag("RESURRECTED: acked delete tid " + std::to_string(tid) +
             " still present");
      }
    }
    for (const auto& [tid, n] : count) {
      if (exact && n > 1 && live.count(tid) == 0) {
        flag("DUPLICATED: tid " + std::to_string(tid) + " present " +
             std::to_string(n) + " times");
      }
      if (live.count(tid) == 0 && unresolved.count(tid) == 0 &&
          deleted.count(tid) == 0) {  // Deleted-but-present flagged above.
        flag("PHANTOM: tid " + std::to_string(tid) +
             " present but never acked or in doubt");
      }
    }
    if (reported > 8) {
      report.failures.push_back(Describe(
          round, "... " + std::to_string(reported - 8) + " more violations"));
    }
    report.rounds_run++;
  }
  return report;
}

}  // namespace segidx::torture
