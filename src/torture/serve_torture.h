// End-to-end serving fault-tolerance torture (robustness work, ISSUE 10).
//
// Spins up a real segidxd Server over a fault-injecting block device,
// points N RetryingClient writer threads and M reader threads at it over
// a fault-injecting transport, and tortures the whole stack:
//
//   * chaos rounds keep the network hostile for the entire run —
//     connection resets, torn response frames, randomized delays — while
//     writers insert (and, on plain R-Tree kinds, delete) with
//     exactly-once sessions and readers search;
//   * crash rounds additionally kill the server mid-traffic: the block
//     device freezes at a scheduled op (as if the process died), the
//     server Abort()s without answering or checkpointing, the surviving
//     image is snapshotted and recovered, and a new server comes back on
//     the same port while the clients' retry loops ride out the outage.
//
// Every writer keeps its own oracle: the tuple ids whose inserts/deletes
// were ACKED (the retry loop returned OK) and the ones left UNRESOLVED
// (retry budget exhausted mid-fault — the op may or may not have landed).
// After the final graceful stop the harness asserts, against the index
// itself:
//
//   * the structure checker is clean;
//   * every acked insert not later acked-deleted is present exactly once
//     — an acked op that a crash forgot (lost write) or a retry that
//     re-applied (broken dedup) both fail this;
//   * every acked delete is absent;
//   * an unresolved op appears at most once (never duplicated).
//
// The workload is seed-deterministic per thread; the interleaving is not,
// so the oracle is per-op bookkeeping rather than a replayable trace.
// Skeleton kinds are rejected: their build-phase buffer keeps acked
// records outside the tree, which this oracle cannot see.

#ifndef SEGIDX_TORTURE_SERVE_TORTURE_H_
#define SEGIDX_TORTURE_SERVE_TORTURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/interval_index.h"

namespace segidx::torture {

struct ServeTortureOptions {
  // Plain R-Tree by default: its one-record-per-tid search result makes
  // the duplicate check exact. kSRTree is allowed (deletes are skipped and
  // presence is checked as a distinct set); skeleton kinds are rejected.
  core::IndexKind kind = core::IndexKind::kRTree;

  int writers = 4;
  int readers = 2;
  // Exactly-once mutations each writer issues per round (inserts plus
  // deletes, before retries).
  uint64_t ops_per_writer = 150;
  // A writer issues an explicit Commit after this many of its own ops.
  uint64_t client_commit_every = 25;
  // Fraction of a writer's ops that delete one of its own acked inserts
  // (plain R-Tree kinds only; see `kind`).
  double delete_fraction = 0.2;

  // Rounds without a server crash (network chaos only) and rounds with
  // crash+restart cycles.
  int chaos_rounds = 1;
  int crash_rounds = 1;
  // Server kills per crash round.
  int crashes_per_round = 2;

  // Network fault plan applied to every round.
  double reset_prob = 0.02;
  double short_write_prob = 0.01;
  double delay_prob = 0.05;
  uint32_t max_delay_us = 500;

  // Server-side WritePool chunk size (ServerOptions::commit_every).
  uint64_t server_commit_every = 32;
  // Per-operation client retry budget; must ride out crash + recovery +
  // restart.
  uint64_t client_deadline_ms = 20000;

  uint32_t seed = 1234;
  core::IndexOptions index;
  bool log_progress = false;
};

struct ServeTortureReport {
  uint64_t rounds_run = 0;
  uint64_t server_crashes = 0;   // Abort()+recover+restart cycles.
  uint64_t client_reconnects = 0;
  uint64_t client_retries = 0;
  uint64_t transport_faults = 0;  // Faults the transport layer injected.
  uint64_t acked_inserts = 0;
  uint64_t acked_deletes = 0;
  uint64_t unresolved_ops = 0;    // Retry budget exhausted; outcome unknown.
  uint64_t dedup_hits = 0;        // Server-side replays (from final stats).
  // One message per violated invariant (empty means the torture passed).
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
};

// Runs every round. A non-OK status means the harness itself could not
// run (bad options, server failed to start on a clean stack); invariant
// violations land in `failures`.
Result<ServeTortureReport> RunServeTorture(const ServeTortureOptions& options);

}  // namespace segidx::torture

#endif  // SEGIDX_TORTURE_SERVE_TORTURE_H_
