// Crash-recovery torture harness (robustness work, ISSUE 4).
//
// Runs a deterministic insert/checkpoint workload against a
// FaultInjectingBlockDevice twice over:
//
//   1. A clean baseline pass records, for every checkpoint, the pager epoch
//      it produced, the set of tuple ids durable at that epoch, and the
//      combined write+sync op index at which the checkpoint finished.
//   2. A sweep then re-runs the identical workload once per fault point k,
//      crashing the device at op k (optionally tearing the faulting write),
//      snapshots the surviving image, re-opens it, and asserts:
//        * the open succeeds (a torn checkpoint falls back, never bricks);
//        * the recovered epoch is one the baseline made durable, and at
//          least the newest checkpoint whose ops all preceded the crash;
//        * the structure checker passes on the recovered tree;
//        * a full-space search returns exactly the baseline's record set
//          for the recovered epoch — nothing lost, nothing resurrected.
//
// The workload is deterministic (fixed-seed PRNG, single thread), so the
// crashed run's op sequence is bit-identical to the baseline prefix and the
// baseline oracle applies exactly.

#ifndef SEGIDX_TORTURE_RECOVERY_TORTURE_H_
#define SEGIDX_TORTURE_RECOVERY_TORTURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/interval_index.h"

namespace segidx::torture {

struct TortureOptions {
  core::IndexKind kind = core::IndexKind::kSRTree;
  // Records inserted by the workload and how often it checkpoints.
  uint64_t records = 300;
  uint64_t checkpoint_every = 40;
  // Bytes of the faulting write that reach the device before the crash
  // (0 = the write vanishes whole; >0 = torn write).
  size_t tear_bytes = 0;
  // Cap on fault points to sweep; 0 sweeps every write+sync op after the
  // initial checkpoint. When capped, points are spread evenly.
  uint64_t max_fault_points = 0;
  uint32_t seed = 1234;
  // Stack configuration for every run; shrink `index.pager.pool_bytes` to
  // force eviction/spill traffic into the fault window.
  core::IndexOptions index;
  // Print a progress line to stderr every ~10% of the sweep.
  bool log_progress = false;
};

struct TortureReport {
  uint64_t total_ops = 0;         // Baseline write+sync ops, end to end.
  uint64_t first_fault_op = 0;    // Sweep starts here (after initial flush).
  uint64_t fault_points_run = 0;
  uint64_t checkpoints = 0;       // Oracle entries the baseline produced.
  uint64_t fallbacks = 0;         // Recoveries served by the older slot.
  uint64_t journal_replays = 0;   // Recoveries that re-applied a journal.
  // One message per failed fault point (empty means the sweep passed).
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
};

// Runs the baseline plus the full crash sweep. Returns a non-OK status only
// when the harness itself cannot run (e.g. the baseline workload fails);
// per-fault-point recovery violations are reported in `failures`.
Result<TortureReport> RunRecoveryTorture(const TortureOptions& options);

}  // namespace segidx::torture

#endif  // SEGIDX_TORTURE_RECOVERY_TORTURE_H_
