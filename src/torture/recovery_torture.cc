#include "torture/recovery_torture.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <random>
#include <utility>

#include "storage/block_device.h"
#include "storage/fault_injection.h"

namespace segidx::torture {

namespace {

using core::IntervalIndex;
using storage::FaultInjectingBlockDevice;
using storage::MemoryBlockDevice;

// One baseline checkpoint: the epoch it produced, the write+sync op count
// when it finished, and how many records it made durable.
struct OracleEntry {
  uint64_t epoch = 0;
  uint64_t ops_done = 0;
  uint64_t records = 0;
};

std::vector<std::pair<Rect, TupleId>> MakeRecords(uint64_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> start(0.0, 1000.0);
  std::uniform_real_distribution<double> length(0.5, 40.0);
  std::uniform_real_distribution<double> ypos(0.0, 1000.0);
  std::vector<std::pair<Rect, TupleId>> records;
  records.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const double s = start(rng);
    records.emplace_back(
        Rect(Interval(s, s + length(rng)), Interval::Point(ypos(rng))),
        static_cast<TupleId>(i + 1));
  }
  return records;
}

// Runs create → initial flush → inserts with periodic checkpoints. With
// `oracle` set (baseline), statuses are checked and every checkpoint is
// recorded; without it (crash runs), errors past the fault are expected and
// ignored — the device image, not the in-memory index, is the output.
Status RunWorkload(IntervalIndex* index, FaultInjectingBlockDevice* device,
                   const std::vector<std::pair<Rect, TupleId>>& records,
                   uint64_t checkpoint_every,
                   std::vector<OracleEntry>* oracle) {
  Status status = index->Flush();
  if (oracle != nullptr) {
    SEGIDX_RETURN_IF_ERROR(status);
    oracle->push_back({index->pager()->epoch(), device->counters().ops(), 0});
  }
  for (uint64_t i = 0; i < records.size(); ++i) {
    status = index->Insert(records[i].first, records[i].second);
    if (oracle != nullptr) SEGIDX_RETURN_IF_ERROR(status);
    const bool at_checkpoint = (i + 1) % checkpoint_every == 0;
    if (at_checkpoint || i + 1 == records.size()) {
      status = index->Flush();
      if (oracle != nullptr) {
        SEGIDX_RETURN_IF_ERROR(status);
        oracle->push_back(
            {index->pager()->epoch(), device->counters().ops(), i + 1});
      }
    }
  }
  return Status::OK();
}

std::string Describe(uint64_t fault_op, const std::string& what) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "fault op %llu: ",
                static_cast<unsigned long long>(fault_op));
  return buf + what;
}

}  // namespace

Result<TortureReport> RunRecoveryTorture(const TortureOptions& options) {
  if (options.records == 0 || options.checkpoint_every == 0) {
    return InvalidArgumentError(
        "torture workload needs records > 0 and checkpoint_every > 0");
  }
  const std::vector<std::pair<Rect, TupleId>> records =
      MakeRecords(options.records, options.seed);

  // --- baseline pass: build the oracle ------------------------------------
  TortureReport report;
  std::vector<OracleEntry> oracle;
  {
    auto device = std::make_unique<FaultInjectingBlockDevice>(
        std::make_unique<MemoryBlockDevice>());
    FaultInjectingBlockDevice* dev = device.get();
    SEGIDX_ASSIGN_OR_RETURN(
        std::unique_ptr<IntervalIndex> index,
        IntervalIndex::CreateWithDevice(options.kind, std::move(device),
                                        options.index));
    SEGIDX_RETURN_IF_ERROR(RunWorkload(index.get(), dev, records,
                                       options.checkpoint_every, &oracle));
    report.total_ops = dev->counters().ops();
    SEGIDX_RETURN_IF_ERROR(index->Close());
  }
  report.checkpoints = oracle.size();
  report.first_fault_op = oracle.front().ops_done;
  if (report.first_fault_op >= report.total_ops) {
    return InternalError("workload produced no ops after the initial flush");
  }

  // --- pick fault points ---------------------------------------------------
  std::vector<uint64_t> points;
  const uint64_t span = report.total_ops - report.first_fault_op;
  if (options.max_fault_points == 0 || options.max_fault_points >= span) {
    points.reserve(span);
    for (uint64_t k = report.first_fault_op; k < report.total_ops; ++k) {
      points.push_back(k);
    }
  } else {
    points.reserve(options.max_fault_points);
    for (uint64_t i = 0; i < options.max_fault_points; ++i) {
      points.push_back(report.first_fault_op + i * span /
                       options.max_fault_points);
    }
  }

  // --- crash sweep ---------------------------------------------------------
  constexpr size_t kMaxFailures = 25;
  const Rect everything(Interval(-1e12, 1e12), Interval(-1e12, 1e12));
  for (size_t pi = 0; pi < points.size(); ++pi) {
    const uint64_t k = points[pi];
    if (options.log_progress && points.size() >= 10 &&
        pi % (points.size() / 10) == 0) {
      std::fprintf(stderr, "torture: fault point %zu/%zu (op %llu)\n", pi,
                   points.size(), static_cast<unsigned long long>(k));
    }

    // Re-run the workload and kill the device at op k.
    std::vector<uint8_t> image;
    {
      auto device = std::make_unique<FaultInjectingBlockDevice>(
          std::make_unique<MemoryBlockDevice>());
      FaultInjectingBlockDevice* dev = device.get();
      dev->CrashAtOp(k, options.tear_bytes);
      auto created = IntervalIndex::CreateWithDevice(
          options.kind, std::move(device), options.index);
      if (!created.ok()) {
        // k lies after the initial flush, so creation must not see the fault.
        report.failures.push_back(
            Describe(k, "create failed: " + created.status().ToString()));
        continue;
      }
      std::unique_ptr<IntervalIndex> index = std::move(created).value();
      // Past the fault every op fails; the workload soldiers on regardless,
      // like a process that has not yet noticed its disk died.
      RunWorkload(index.get(), dev, records, options.checkpoint_every,
                  nullptr);
      (void)index->Close();
      if (!dev->crashed()) {
        report.failures.push_back(Describe(k, "fault never fired"));
        continue;
      }
      image = static_cast<MemoryBlockDevice*>(dev->inner())->Snapshot();
    }

    // Recover from the image a fresh process would find.
    auto reopened = IntervalIndex::OpenFromDevice(
        std::make_unique<MemoryBlockDevice>(std::move(image)), options.index);
    if (!reopened.ok()) {
      report.failures.push_back(
          Describe(k, "recovery failed: " + reopened.status().ToString()));
      if (report.failures.size() >= kMaxFailures) break;
      continue;
    }
    std::unique_ptr<IntervalIndex> index = std::move(reopened).value();
    const storage::RecoveryReport& rec = index->pager()->recovery_report();
    if (rec.fell_back) ++report.fallbacks;
    if (rec.journal_replayed) ++report.journal_replays;

    // The recovered epoch must be one the baseline checkpointed, and no
    // older than the newest checkpoint that finished before the fault.
    const OracleEntry* entry = nullptr;
    uint64_t min_epoch = 0;
    for (const OracleEntry& e : oracle) {
      if (e.epoch == rec.epoch) entry = &e;
      if (e.ops_done <= k) min_epoch = std::max(min_epoch, e.epoch);
    }
    if (entry == nullptr) {
      report.failures.push_back(Describe(
          k, "recovered epoch " + std::to_string(rec.epoch) +
                 " was never made durable by the baseline"));
    } else if (rec.epoch < min_epoch) {
      report.failures.push_back(Describe(
          k, "recovered epoch " + std::to_string(rec.epoch) +
                 " lost durable checkpoint " + std::to_string(min_epoch)));
    } else {
      Status check = index->CheckInvariants();
      if (!check.ok()) {
        report.failures.push_back(
            Describe(k, "structure check failed: " + check.ToString()));
      } else {
        std::vector<TupleId> tids;
        Status search = index->SearchTuples(everything, &tids);
        if (!search.ok()) {
          report.failures.push_back(
              Describe(k, "search failed: " + search.ToString()));
        } else {
          std::sort(tids.begin(), tids.end());
          bool match = tids.size() == entry->records;
          for (size_t i = 0; match && i < tids.size(); ++i) {
            match = tids[i] == static_cast<TupleId>(i + 1);
          }
          if (!match) {
            report.failures.push_back(Describe(
                k, "recovered record set diverges from checkpoint " +
                       std::to_string(rec.epoch) + ": " +
                       std::to_string(tids.size()) + " records vs " +
                       std::to_string(entry->records)));
          }
        }
      }
    }
    ++report.fault_points_run;
    if (report.failures.size() >= kMaxFailures) break;
  }
  return report;
}

}  // namespace segidx::torture
