// Public facade over the four index types evaluated in the paper:
//
//   kRTree          — Guttman R-Tree (baseline)
//   kSRTree         — Segment R-Tree (Section 3)
//   kSkeletonRTree  — pre-constructed, adaptive R-Tree (Section 4)
//   kSkeletonSRTree — pre-constructed, adaptive SR-Tree (Section 4)
//
// An IntervalIndex owns the whole stack: storage backend, pager (buffer
// pool + extent allocator), tree, and — for skeleton kinds — the
// distribution-prediction / coalescing policy.
//
// Quickstart:
//
//   segidx::core::IndexOptions options;
//   auto index = segidx::core::IntervalIndex::CreateInMemory(
//       segidx::core::IndexKind::kSkeletonSRTree, options).value();
//   index->Insert(segidx::Rect(10, 500, 42, 42), /*tid=*/1);
//   std::vector<segidx::TupleId> hits;
//   index->SearchTuples(segidx::Rect(0, 100, 0, 100), &hits);
//
// Thread safety: Insert/Delete/Search/SearchBatch/Commit may be called
// from any number of threads concurrently. Writers share the tree's write
// phase under per-node latches; searches and batches run read-shared;
// commits batch through the pager's group-commit sequencer. The full
// contract — latch order, what readers may observe, crash guarantees —
// is written down in docs/CONCURRENCY.md.

#ifndef SEGIDX_CORE_INTERVAL_INDEX_H_
#define SEGIDX_CORE_INTERVAL_INDEX_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/structure_checker.h"
#include "common/geometry.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/types.h"
#include "exec/query_engine.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "skeleton/skeleton_index.h"
#include "srtree/srtree.h"
#include "storage/pager.h"

namespace segidx::core {

enum class IndexKind {
  kRTree = 0,
  kSRTree = 1,
  kSkeletonRTree = 2,
  kSkeletonSRTree = 3,
};

// Stable display name, e.g. "Skeleton SR-Tree".
const char* IndexKindName(IndexKind kind);

inline bool IsSkeleton(IndexKind kind) {
  return kind == IndexKind::kSkeletonRTree ||
         kind == IndexKind::kSkeletonSRTree;
}
inline bool IsSegment(IndexKind kind) {
  return kind == IndexKind::kSRTree || kind == IndexKind::kSkeletonSRTree;
}

struct IndexOptions {
  // Tree behavior. `tree.enable_spanning` is derived from the index kind
  // and must be left false here.
  rtree::TreeOptions tree;
  // Skeleton policy; ignored for non-skeleton kinds.
  skeleton::SkeletonOptions skeleton;
  // Storage: base block size is the leaf node size (paper: 1 KB).
  storage::PagerOptions pager;
};

class IntervalIndex {
 public:
  // Creates an index backed by memory (fast experiments, tests).
  static Result<std::unique_ptr<IntervalIndex>> CreateInMemory(
      IndexKind kind, const IndexOptions& options);

  // Creates an index in a file at `path`, formatting it from scratch (an
  // existing file is truncated).
  static Result<std::unique_ptr<IntervalIndex>> CreateOnDisk(
      IndexKind kind, const std::string& path, const IndexOptions& options);

  // Creates an index on a caller-supplied block device, formatting it from
  // scratch. Useful for fault-injection tests (wrap a MemoryBlockDevice in
  // a FaultInjectingBlockDevice) and custom backends.
  static Result<std::unique_ptr<IntervalIndex>> CreateWithDevice(
      IndexKind kind, std::unique_ptr<storage::BlockDevice> device,
      const IndexOptions& options);

  // Re-opens an index persisted with Flush(). `options.pager` must match
  // the creation-time base block size; tree options are restored from the
  // file.
  static Result<std::unique_ptr<IntervalIndex>> OpenFromDisk(
      const std::string& path, const IndexOptions& options);

  // Re-opens an index from a caller-supplied device (e.g. a crash image
  // snapshot). Runs the same dual-slot recovery as OpenFromDisk; consult
  // pager()->recovery_report() for what happened.
  static Result<std::unique_ptr<IntervalIndex>> OpenFromDevice(
      std::unique_ptr<storage::BlockDevice> device,
      const IndexOptions& options);

  // Flushes once if there are unpersisted mutations, then marks the index
  // closed. Idempotent; later calls return OK without touching storage.
  // The destructor calls Close() and swallows the status — call Close()
  // explicitly to learn whether the final checkpoint made it to disk.
  Status Close();

  ~IntervalIndex();
  IntervalIndex(const IntervalIndex&) = delete;
  IntervalIndex& operator=(const IntervalIndex&) = delete;

  // Inserts a record for a 2-D rectangle (or degenerate interval/point).
  Status Insert(const Rect& rect, TupleId tid);
  // Convenience: a 1-D interval at Y position `y` (paper Figure 1 layout:
  // X = time interval, Y = attribute value).
  Status InsertInterval(const Interval& x, Coord y, TupleId tid);

  // Every stored entry intersecting `query`; a record cut into several
  // pieces (SR-Trees) surfaces once per piece.
  Status Search(const Rect& query, std::vector<rtree::SearchHit>* out,
                uint64_t* nodes_accessed = nullptr);
  // Same, with runtime controls (deadline, cancel token, partial results
  // over damaged pages — see rtree::SearchOptions). A still-buffering
  // skeleton index is finalized first, outside the deadline.
  Status Search(const Rect& query, const rtree::SearchOptions& options,
                std::vector<rtree::SearchHit>* out,
                rtree::SearchOutcome* outcome = nullptr);
  // Logical result: distinct tuple ids intersecting `query`.
  Status SearchTuples(const Rect& query, std::vector<TupleId>* out,
                      uint64_t* nodes_accessed = nullptr);

  // Runs a batch of queries on a pool of `num_threads` worker threads
  // (clamped to >= 1). Results come back in query order, identical to
  // issuing each query through Search() serially. A still-buffering
  // skeleton index is finalized first (same auto-finalize as Search).
  // The worker pool is created on first use and kept for subsequent
  // batches with the same thread count. Safe to call while other threads
  // mutate: the batch holds the tree's read phase, so it sees a
  // consistent snapshot and its results are deterministic for that
  // snapshot (see docs/CONCURRENCY.md). One batch at a time per index.
  Status SearchBatch(const std::vector<Rect>& queries,
                     std::vector<exec::BatchResult>* results,
                     int num_threads = 4);
  // Same, applying a per-batch deadline / cancel token / partial-results
  // policy to every query (see exec::QueryEngine::SearchBatch for the
  // per-entry status contract).
  Status SearchBatch(const std::vector<Rect>& queries,
                     const rtree::SearchOptions& options,
                     std::vector<exec::BatchResult>* results,
                     int num_threads = 4);

  // Statically bulk-loads all records into an empty non-skeleton index
  // (packed R-Tree construction, see rtree/bulk_load.h). Skeleton kinds
  // refuse: packing is the static alternative the skeleton replaces.
  Status BulkLoad(std::vector<std::pair<Rect, TupleId>> records,
                  rtree::PackingMethod method = rtree::PackingMethod::kSTR);

  // Removes one entry (plain R-Tree only; see RTree::Delete).
  Status Delete(const Rect& rect, TupleId tid);

  // Skeleton kinds: force skeleton construction from the buffered sample.
  // No-op otherwise.
  Status Finalize();

  // Durable group commit: when Commit() returns OK, every mutation that
  // completed before the call is checkpointed on disk. Concurrent callers
  // are batched through the pager's group-commit sequencer — one
  // checkpoint (and its fsyncs) covers the whole batch, so N writers
  // committing on a cadence amortize the I/O N-fold. See
  // docs/CONCURRENCY.md for the leader/joiner protocol.
  Status Commit();

  // Persists tree metadata and all dirty pages; the index stays usable.
  // Synonym for Commit() (kept for existing callers).
  Status Flush();

  // Deep structural validation (tests / debugging): runs the full
  // StructureChecker walk with defaults appropriate for this index kind
  // (containment, spanning links and quotas, page accounting; tightness and
  // strict spanning placement off) and returns the first violation.
  Status CheckInvariants();

  // Full structural validation with caller-chosen options, returning every
  // violation. See check/structure_checker.h for the invariant set.
  Result<check::CheckReport> CheckStructure(
      const check::CheckOptions& options = {});

  // Online media scrub: CRC-verifies every reachable node page with a light
  // structure pass (level / child-pointer / rectangle sanity), then runs the
  // pager's scrub over the superblock slots and free extents — together the
  // two passes tile the whole file. Rate-limited and cancellable via
  // `options`; safe against a serving (read-only) index. Damaged node pages
  // are quarantined when `options.quarantine_damaged` is set, so subsequent
  // allow_partial searches skip them without re-reading bad media.
  Result<storage::ScrubReport> Scrub(const storage::ScrubOptions& options = {});

  IndexKind kind() const { return kind_; }
  // Skeleton kinds: true while the distribution sample is still buffering
  // (records live in memory, not in the tree). Always false otherwise.
  bool skeleton_building() const {
    return skeleton_ != nullptr && !skeleton_->built();
  }
  uint64_t size() const;
  int height() const { return tree_->height(); }
  // Total bytes of index extents ever allocated (file high-water mark).
  uint64_t index_bytes() const;

  const rtree::TreeStats& tree_stats() const { return tree_->stats(); }
  const storage::StorageStats& storage_stats() const {
    return pager_->stats();
  }
  void ResetStats();

  Result<std::vector<uint64_t>> NodesPerLevel() {
    return tree_->CountNodesPerLevel();
  }

  // Escape hatches for tests and benchmarks.
  rtree::RTree* tree() { return tree_.get(); }
  storage::Pager* pager() { return pager_.get(); }

  // Commit-metadata hook: a small blob the owner wants persisted
  // atomically with every checkpoint (the serving layer stores its
  // exactly-once dedup window here). The hook runs inside the commit's
  // exclusive phase, after tree metadata is staged and before the
  // checkpoint, so the blob and the data it describes land in the same
  // durable epoch — or neither does. The blob is size-limited (see
  // kCommitMetaCapacity); an oversized blob fails the commit. Set (or
  // clear with nullptr) only while no concurrent Commit/Close can run.
  using CommitMetaHook = std::function<std::vector<uint8_t>()>;
  void SetCommitMetaHook(CommitMetaHook hook);

  // The commit-metadata blob recovered by OpenFromDisk/OpenFromDevice
  // (empty when the file carries none, e.g. pre-extension files).
  const std::vector<uint8_t>& recovered_commit_meta() const {
    return recovered_commit_meta_;
  }

  // Upper bound on a commit-metadata blob: the pager's user-meta area
  // minus the tree metadata, the blob's own frame, and the facade tail.
  static size_t CommitMetaCapacity();

 private:
  IntervalIndex(IndexKind kind, std::unique_ptr<storage::Pager> pager,
                std::unique_ptr<rtree::RTree> tree,
                std::unique_ptr<skeleton::SkeletonIndex> skeleton)
      : kind_(kind),
        pager_(std::move(pager)),
        tree_(std::move(tree)),
        skeleton_(std::move(skeleton)) {}

  // Shared tail of OpenFromDisk / OpenFromDevice: facade metadata checks
  // plus tree and skeleton resurrection.
  static Result<std::unique_ptr<IntervalIndex>> OpenWithPager(
      std::unique_ptr<storage::Pager> pager, const IndexOptions& options);

  // Mutations on a legacy (format v1) file fail up front with
  // kFailedPrecondition instead of half-applying in the buffer pool and
  // then failing to checkpoint.
  Status CheckWritable() const;

  IndexKind kind_;
  std::unique_ptr<storage::Pager> pager_;
  std::unique_ptr<rtree::RTree> tree_;
  std::unique_ptr<skeleton::SkeletonIndex> skeleton_;  // Skeleton kinds only.
  // Lazily created by SearchBatch; rebuilt when the thread count changes.
  std::unique_ptr<exec::QueryEngine> engine_;
  // Invoked under the commit's exclusive phase; see SetCommitMetaHook.
  CommitMetaHook commit_meta_hook_;
  std::vector<uint8_t> recovered_commit_meta_;
  // Serializes skeleton sample buffering / finalize (plain memory, unlike
  // the tree's own latched write path). Uncontended for built skeletons.
  // Lock order: held while entering the tree's phase gate (a buffered
  // search builds the tree under it), so kSkeleton sits above kPhaseGate.
  common::Mutex skeleton_mu_;
  // True when mutations have happened since the last successful Commit();
  // Close() only checkpoints when set. Raised by concurrent writers,
  // cleared by the group-commit leader.
  std::atomic<bool> dirty_{false};
  bool closed_ = false;
};

}  // namespace segidx::core

#endif  // SEGIDX_CORE_INTERVAL_INDEX_H_
