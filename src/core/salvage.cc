#include "core/salvage.h"

#include <algorithm>
#include <unordered_map>

#include "rtree/node.h"
#include "storage/block_device.h"

namespace segidx::core {

namespace {

// Plausibility screen applied after a successful checksum + decode. The v2
// CRC32C is folded to 16 bits, so a damaged extent passes it with
// probability ~2^-16 per candidate; rejecting nodes whose decoded fields
// are impossible keeps such collisions (and v1's weaker FNV checksum) from
// injecting garbage records.
bool PlausibleNode(const rtree::Node& node) {
  // Far above any real tree height (fan-out >= 2 over 2^64 records).
  if (node.level > 64) return false;
  for (const rtree::LeafEntry& e : node.records) {
    if (!e.rect.valid() || e.tid == kInvalidTupleId) return false;
  }
  for (const rtree::BranchEntry& b : node.branches) {
    if (!b.rect.valid() || !b.child.valid()) return false;
  }
  for (const rtree::SpanningEntry& s : node.spanning) {
    if (!s.rect.valid() || s.tid == kInvalidTupleId) return false;
  }
  return true;
}

}  // namespace

std::string SalvageReport::ToString() const {
  std::string out;
  out += "salvage: scanned " + std::to_string(blocks_scanned) + " blocks, ";
  out += "decoded " + std::to_string(nodes_decoded) + " node pages (" +
         std::to_string(leaf_nodes) + " leaves)\n";
  out += "salvage: " + std::to_string(pieces_found) + " record pieces, " +
         std::to_string(duplicate_pieces) + " stale duplicates dropped\n";
  out += "salvage: " + std::to_string(records_recovered) +
         " records recovered";
  return out;
}

Result<std::vector<std::pair<Rect, TupleId>>> ScavengeRecords(
    const storage::BlockDevice& device, const SalvageOptions& options,
    SalvageReport* report) {
  const uint64_t bbs = options.pager.base_block_size;
  if (bbs == 0) return InvalidArgumentError("base_block_size must be > 0");
  const uint64_t total_blocks = device.size() / bbs;

  SalvageReport local;
  SalvageReport& rep = report != nullptr ? *report : local;
  rep = SalvageReport();

  // Pieces per tuple id, deduplicating exact rectangles (the same page can
  // appear twice: once live, once as a stale copy in a freed extent).
  std::unordered_map<TupleId, std::vector<Rect>> pieces;
  auto add_piece = [&](TupleId tid, const Rect& rect) {
    ++rep.pieces_found;
    std::vector<Rect>& list = pieces[tid];
    if (std::find(list.begin(), list.end(), rect) != list.end()) {
      ++rep.duplicate_pieces;
      return;
    }
    list.push_back(rect);
  };

  // Walk every block past the two superblock slots, trying each extent size
  // in turn. The v2 checksum covers the whole extent, so a node only
  // decodes at its true size class; journal pages, metadata, and damaged
  // extents fail the checksum and are skipped one block at a time.
  std::vector<uint8_t> buf;
  uint64_t block = 2;
  while (block < total_blocks) {
    ++rep.blocks_scanned;
    uint64_t advance = 1;
    for (uint8_t sc = 0; sc <= options.pager.max_size_class; ++sc) {
      const uint64_t extent_blocks = 1ULL << sc;
      if (block + extent_blocks > total_blocks) break;
      const size_t n = static_cast<size_t>(bbs << sc);
      buf.resize(n);
      if (!device.Read(block * bbs, n, buf.data()).ok()) break;
      Result<rtree::Node> node_or =
          rtree::Node::Deserialize(buf.data(), n, options.checksum_kind);
      if (!node_or.ok() || !PlausibleNode(*node_or)) continue;
      const rtree::Node& node = *node_or;
      ++rep.nodes_decoded;
      if (node.is_leaf()) {
        ++rep.leaf_nodes;
        for (const rtree::LeafEntry& e : node.records) {
          add_piece(e.tid, e.rect);
        }
      } else {
        // Spanning records live on non-leaf nodes and may be the only
        // surviving piece of a cut record whose remnant leaves are gone.
        for (const rtree::SpanningEntry& s : node.spanning) {
          add_piece(s.tid, s.rect);
        }
      }
      advance = extent_blocks;
      break;
    }
    rep.blocks_scanned += advance - 1;
    block += advance;
  }

  // Merge the pieces of each cut record back into one rectangle (cuts
  // partition a record, so the bounding box of the surviving pieces is the
  // original rectangle when all pieces survived, and a subset of it
  // otherwise).
  std::vector<std::pair<Rect, TupleId>> records;
  records.reserve(pieces.size());
  for (const auto& [tid, list] : pieces) {
    Rect merged = list.front();
    for (size_t i = 1; i < list.size(); ++i) {
      merged = merged.Enclose(list[i]);
    }
    records.emplace_back(merged, tid);
  }
  // Deterministic output order regardless of hash-map iteration.
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  rep.records_recovered = records.size();
  return records;
}

Result<std::unique_ptr<IntervalIndex>> SalvageToDevice(
    const storage::BlockDevice& source,
    std::unique_ptr<storage::BlockDevice> dest, const SalvageOptions& options,
    SalvageReport* report) {
  if (IsSkeleton(options.rebuild_kind)) {
    return InvalidArgumentError(
        "salvage rebuilds by bulk loading; pick a non-skeleton rebuild kind");
  }
  SEGIDX_ASSIGN_OR_RETURN(auto records,
                          ScavengeRecords(source, options, report));
  IndexOptions index_options;
  index_options.pager = options.pager;
  SEGIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<IntervalIndex> index,
      IntervalIndex::CreateWithDevice(options.rebuild_kind, std::move(dest),
                                      index_options));
  if (!records.empty()) {
    SEGIDX_RETURN_IF_ERROR(
        index->BulkLoad(std::move(records), options.packing));
  }
  SEGIDX_RETURN_IF_ERROR(index->Flush());
  return index;
}

Result<SalvageReport> SalvageFile(const std::string& source_path,
                                  const std::string& dest_path,
                                  const SalvageOptions& options) {
  if (source_path == dest_path) {
    return InvalidArgumentError(
        "salvage writes a new file; destination must differ from source");
  }
  SEGIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::FileBlockDevice> source,
      storage::FileBlockDevice::Open(source_path, /*create=*/false));
  SEGIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::FileBlockDevice> dest,
      storage::FileBlockDevice::Open(dest_path, /*create=*/true));
  SEGIDX_RETURN_IF_ERROR(dest->Truncate(0));
  SalvageReport report;
  SEGIDX_ASSIGN_OR_RETURN(std::unique_ptr<IntervalIndex> index,
                          SalvageToDevice(*source, std::move(dest), options,
                                          &report));
  SEGIDX_RETURN_IF_ERROR(index->Close());
  return report;
}

}  // namespace segidx::core
