// Last-resort recovery: scavenge records out of a damaged index file and
// rebuild a fresh index from them.
//
// Salvage deliberately ignores the index's own structure — superblock,
// journal, and tree linkage may all be damaged. It walks the raw blocks of
// the device, attempts to decode a node page at every block-aligned extent
// size, and harvests the records (leaf entries and spanning records) of
// every page whose checksum verifies. Cut pieces of one record (SR-Tree
// cutting, paper Section 3.1.1) are merged back into one rectangle per
// tuple id; exact duplicate pieces from stale page copies are dropped.
//
// Coverage contract: every record with at least one decodable piece outside
// the damaged extents is recovered. Limits: records wholly inside damaged
// extents are lost, and a stale (freed but not yet overwritten) page can
// resurrect records deleted since it was written — salvage trades exactness
// for maximum recall. Verify the rebuilt index with CheckStructure() and
// reconcile against an external source of truth where one exists.

#ifndef SEGIDX_CORE_SALVAGE_H_
#define SEGIDX_CORE_SALVAGE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/interval_index.h"

namespace segidx::core {

struct SalvageOptions {
  // Geometry of the damaged file; base_block_size must match creation time.
  storage::PagerOptions pager;
  // Node checksum algorithm of the damaged file (CRC32C for format v2).
  rtree::PageChecksumKind checksum_kind = rtree::PageChecksumKind::kCrc32c;
  // Kind of the rebuilt index (must not be a skeleton kind: the rebuild
  // bulk-loads, which skeleton pre-construction replaces).
  IndexKind rebuild_kind = IndexKind::kRTree;
  rtree::PackingMethod packing = rtree::PackingMethod::kSTR;
};

struct SalvageReport {
  uint64_t blocks_scanned = 0;      // Raw base blocks examined.
  uint64_t nodes_decoded = 0;       // Pages whose checksum + decode passed.
  uint64_t leaf_nodes = 0;
  uint64_t pieces_found = 0;        // Leaf entries + spanning records seen.
  uint64_t duplicate_pieces = 0;    // Exact (tid, rect) duplicates dropped.
  uint64_t records_recovered = 0;   // Distinct tuple ids after merging.
  std::string ToString() const;
};

// Raw-scan phase: returns one (rect, tid) pair per recovered tuple id, the
// rectangle being the bounding box of every decodable piece. Never fails on
// damage — damaged extents simply contribute nothing. `report` (optional)
// receives scan statistics.
Result<std::vector<std::pair<Rect, TupleId>>> ScavengeRecords(
    const storage::BlockDevice& device, const SalvageOptions& options,
    SalvageReport* report = nullptr);

// Scavenges `source` and bulk-loads the recovered records into a fresh
// index created on `dest` (formatted from scratch). The rebuilt index is
// flushed before returning; run CheckStructure() on it to verify.
Result<std::unique_ptr<IntervalIndex>> SalvageToDevice(
    const storage::BlockDevice& source,
    std::unique_ptr<storage::BlockDevice> dest, const SalvageOptions& options,
    SalvageReport* report = nullptr);

// File-to-file convenience for the CLI: salvage `source_path` into a new
// index file at `dest_path` (refusing to overwrite the source in place).
Result<SalvageReport> SalvageFile(const std::string& source_path,
                                  const std::string& dest_path,
                                  const SalvageOptions& options);

}  // namespace segidx::core

#endif  // SEGIDX_CORE_SALVAGE_H_
