#include "core/interval_index.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>

#include "check/lock_order.h"
#include "common/logging.h"
#include "storage/block_device.h"

namespace segidx::core {

namespace {

using check::LockClass;
using check::TrackedMutexLock;

// Facade metadata appended after the tree's metadata in the pager's user
// area: magic "CO", index kind, skeleton-built flag.
constexpr size_t kCoreMetaBytes = 4;

// Optional commit-metadata blob framed between the tree metadata and the
// facade tail: [blob][u16 blob_len LE]['X']['M']. The frame sits directly
// before the facade tail so OpenWithPager can parse backward from the
// validated "CO" magic; files written before the extension simply lack the
// "XM" marker.
constexpr size_t kExtraMetaFrameBytes = 4;

Status AppendCoreMeta(storage::Pager* pager, IndexKind kind, bool built) {
  std::vector<uint8_t> meta = pager->user_meta();
  meta.push_back('C');
  meta.push_back('O');
  meta.push_back(static_cast<uint8_t>(kind));
  meta.push_back(built ? 1 : 0);
  return pager->SetUserMeta(meta.data(), meta.size());
}

Status AppendExtraMeta(storage::Pager* pager,
                       const std::vector<uint8_t>& blob) {
  if (blob.size() > IntervalIndex::CommitMetaCapacity()) {
    return InvalidArgumentError(
        "commit-metadata blob exceeds the user-meta budget (" +
        std::to_string(blob.size()) + " > " +
        std::to_string(IntervalIndex::CommitMetaCapacity()) + " bytes)");
  }
  std::vector<uint8_t> meta = pager->user_meta();
  meta.insert(meta.end(), blob.begin(), blob.end());
  const uint16_t len = static_cast<uint16_t>(blob.size());
  meta.push_back(static_cast<uint8_t>(len & 0xff));
  meta.push_back(static_cast<uint8_t>(len >> 8));
  meta.push_back('X');
  meta.push_back('M');
  return pager->SetUserMeta(meta.data(), meta.size());
}

// Recovers the blob from the bytes before the facade tail; returns an
// empty vector when no frame is present (pre-extension file).
std::vector<uint8_t> ParseExtraMeta(const std::vector<uint8_t>& meta,
                                    size_t core_tail) {
  if (core_tail < kExtraMetaFrameBytes) return {};
  if (meta[core_tail - 2] != 'X' || meta[core_tail - 1] != 'M') return {};
  const size_t len = static_cast<size_t>(meta[core_tail - 4]) |
                     (static_cast<size_t>(meta[core_tail - 3]) << 8);
  if (len > core_tail - kExtraMetaFrameBytes) return {};
  const size_t begin = core_tail - kExtraMetaFrameBytes - len;
  return std::vector<uint8_t>(meta.begin() + static_cast<long>(begin),
                              meta.begin() + static_cast<long>(begin + len));
}

}  // namespace

size_t IntervalIndex::CommitMetaCapacity() {
  // User-meta budget minus the tree metadata, the blob frame, and the
  // facade tail.
  return storage::Pager::kUserMetaCapacity - rtree::RTree::kTreeMetaBytes -
         kExtraMetaFrameBytes - kCoreMetaBytes;
}

void IntervalIndex::SetCommitMetaHook(CommitMetaHook hook) {
  commit_meta_hook_ = std::move(hook);
}

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kRTree:
      return "R-Tree";
    case IndexKind::kSRTree:
      return "SR-Tree";
    case IndexKind::kSkeletonRTree:
      return "Skeleton R-Tree";
    case IndexKind::kSkeletonSRTree:
      return "Skeleton SR-Tree";
  }
  return "unknown";
}

Result<std::unique_ptr<IntervalIndex>> IntervalIndex::CreateWithDevice(
    IndexKind kind, std::unique_ptr<storage::BlockDevice> device,
    const IndexOptions& options) {
  if (options.tree.enable_spanning) {
    return InvalidArgumentError(
        "IndexOptions::tree.enable_spanning is derived from the index kind; "
        "leave it false");
  }
  SEGIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::Pager> pager,
      storage::Pager::Create(std::move(device), options.pager));

  std::unique_ptr<rtree::RTree> tree;
  if (IsSegment(kind)) {
    SEGIDX_ASSIGN_OR_RETURN(std::unique_ptr<srtree::SRTree> sr,
                            srtree::SRTree::Create(pager.get(), options.tree));
    tree = std::move(sr);
  } else {
    SEGIDX_ASSIGN_OR_RETURN(tree,
                            rtree::RTree::Create(pager.get(), options.tree));
  }

  std::unique_ptr<skeleton::SkeletonIndex> skel;
  if (IsSkeleton(kind)) {
    skel = std::make_unique<skeleton::SkeletonIndex>(tree.get(),
                                                     options.skeleton);
  }
  return std::unique_ptr<IntervalIndex>(new IntervalIndex(
      kind, std::move(pager), std::move(tree), std::move(skel)));
}

Result<std::unique_ptr<IntervalIndex>> IntervalIndex::CreateInMemory(
    IndexKind kind, const IndexOptions& options) {
  return CreateWithDevice(
      kind, std::make_unique<storage::MemoryBlockDevice>(), options);
}

Result<std::unique_ptr<IntervalIndex>> IntervalIndex::CreateOnDisk(
    IndexKind kind, const std::string& path, const IndexOptions& options) {
  SEGIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::FileBlockDevice> device,
      storage::FileBlockDevice::Open(path, /*create=*/true));
  SEGIDX_RETURN_IF_ERROR(device->Truncate(0));
  return CreateWithDevice(kind, std::move(device), options);
}

Result<std::unique_ptr<IntervalIndex>> IntervalIndex::OpenFromDisk(
    const std::string& path, const IndexOptions& options) {
  SEGIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::FileBlockDevice> device,
      storage::FileBlockDevice::Open(path, /*create=*/false));
  return OpenFromDevice(std::move(device), options);
}

Result<std::unique_ptr<IntervalIndex>> IntervalIndex::OpenFromDevice(
    std::unique_ptr<storage::BlockDevice> device,
    const IndexOptions& options) {
  SEGIDX_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::Pager> pager,
      storage::Pager::Open(std::move(device), options.pager));
  return OpenWithPager(std::move(pager), options);
}

Result<std::unique_ptr<IntervalIndex>> IntervalIndex::OpenWithPager(
    std::unique_ptr<storage::Pager> pager, const IndexOptions& options) {
  const std::vector<uint8_t>& meta = pager->user_meta();
  if (meta.size() < kCoreMetaBytes) {
    return CorruptionError("missing index facade metadata");
  }
  const size_t tail = meta.size() - kCoreMetaBytes;
  if (meta[tail] != 'C' || meta[tail + 1] != 'O') {
    return CorruptionError("bad index facade metadata magic");
  }
  if (meta[tail + 2] > static_cast<uint8_t>(IndexKind::kSkeletonSRTree)) {
    return CorruptionError("unknown index kind in metadata");
  }
  const IndexKind kind = static_cast<IndexKind>(meta[tail + 2]);
  const bool built = meta[tail + 3] != 0;
  if (IsSkeleton(kind) && !built) {
    return CorruptionError(
        "skeleton index persisted before construction completed");
  }

  std::unique_ptr<rtree::RTree> tree;
  if (IsSegment(kind)) {
    SEGIDX_ASSIGN_OR_RETURN(std::unique_ptr<srtree::SRTree> sr,
                            srtree::SRTree::Open(pager.get()));
    tree = std::move(sr);
  } else {
    SEGIDX_ASSIGN_OR_RETURN(tree, rtree::RTree::Open(pager.get()));
  }

  std::unique_ptr<skeleton::SkeletonIndex> skel;
  if (IsSkeleton(kind)) {
    skel = skeleton::SkeletonIndex::Resume(tree.get(), options.skeleton);
  }
  std::vector<uint8_t> extra = ParseExtraMeta(meta, tail);
  auto index = std::unique_ptr<IntervalIndex>(new IntervalIndex(
      kind, std::move(pager), std::move(tree), std::move(skel)));
  index->recovered_commit_meta_ = std::move(extra);
  return index;
}

Status IntervalIndex::CheckWritable() const {
  if (pager_->format_version() == 1) {
    return FailedPreconditionError(
        "format v1 index files are read-only; recreate the index to write");
  }
  return Status::OK();
}

Status IntervalIndex::Insert(const Rect& rect, TupleId tid) {
  SEGIDX_RETURN_IF_ERROR(CheckWritable());
  Status status;
  if (skeleton_ != nullptr) {
    // The skeleton's sample buffer is plain memory; serialize mutations on
    // it here. Once built, inserts still flow through skeleton_->Insert
    // (it forwards to the tree), so keep the lock unconditionally.
    TrackedMutexLock lock(&skeleton_mu_, LockClass::kSkeleton);
    status = skeleton_->Insert(rect, tid);
  } else {
    status = tree_->Insert(rect, tid);
  }
  if (status.ok()) dirty_.store(true, std::memory_order_relaxed);
  return status;
}

Status IntervalIndex::InsertInterval(const Interval& x, Coord y,
                                     TupleId tid) {
  return Insert(Rect(x, Interval::Point(y)), tid);
}

Status IntervalIndex::Search(const Rect& query,
                             std::vector<rtree::SearchHit>* out,
                             uint64_t* nodes_accessed) {
  if (skeleton_ != nullptr) {
    // A search against a still-buffering skeleton builds the tree as a side
    // effect, producing pages that need a checkpoint; the lock serializes
    // that build against concurrent skeleton mutation.
    TrackedMutexLock lock(&skeleton_mu_, LockClass::kSkeleton);
    const bool was_building = !skeleton_->built();
    Status status = skeleton_->Search(query, out, nodes_accessed);
    if (status.ok() && was_building && skeleton_->built()) {
      dirty_.store(true, std::memory_order_relaxed);
    }
    return status;
  }
  return tree_->Search(query, out, nodes_accessed);
}

Status IntervalIndex::Search(const Rect& query,
                             const rtree::SearchOptions& options,
                             std::vector<rtree::SearchHit>* out,
                             rtree::SearchOutcome* outcome) {
  // Building the tree from a buffered skeleton sample is index setup, not
  // query work — run it before the deadline applies.
  SEGIDX_RETURN_IF_ERROR(Finalize());
  return tree_->Search(query, options, out, outcome);
}

Status IntervalIndex::SearchBatch(const std::vector<Rect>& queries,
                                  std::vector<exec::BatchResult>* results,
                                  int num_threads) {
  return SearchBatch(queries, rtree::SearchOptions(), results, num_threads);
}

Status IntervalIndex::SearchBatch(const std::vector<Rect>& queries,
                                  const rtree::SearchOptions& options,
                                  std::vector<exec::BatchResult>* results,
                                  int num_threads) {
  // Workers search the tree directly, so a buffering skeleton must build
  // its tree first (Search would do the same one query at a time).
  SEGIDX_RETURN_IF_ERROR(Finalize());
  const int threads = std::clamp(num_threads, 1, 64);
  if (engine_ == nullptr || engine_->num_threads() != threads) {
    exec::QueryEngineOptions opts;
    opts.num_threads = threads;
    engine_ = std::make_unique<exec::QueryEngine>(tree_.get(), opts);
  }
  return engine_->SearchBatch(queries, options, results);
}

Status IntervalIndex::SearchTuples(const Rect& query,
                                   std::vector<TupleId>* out,
                                   uint64_t* nodes_accessed) {
  std::vector<rtree::SearchHit> hits;
  SEGIDX_RETURN_IF_ERROR(Search(query, &hits, nodes_accessed));
  std::unordered_set<TupleId> seen;
  seen.reserve(hits.size());
  for (const rtree::SearchHit& hit : hits) {
    if (seen.insert(hit.tid).second) out->push_back(hit.tid);
  }
  return Status::OK();
}

Status IntervalIndex::BulkLoad(
    std::vector<std::pair<Rect, TupleId>> records,
    rtree::PackingMethod method) {
  if (skeleton_ != nullptr) {
    return FailedPreconditionError(
        "bulk loading replaces skeleton pre-construction; use a "
        "non-skeleton index kind");
  }
  SEGIDX_RETURN_IF_ERROR(CheckWritable());
  {
    // Bulk loading rebuilds the tree wholesale outside the latch
    // protocol; run it alone.
    rtree::PhaseGate::Scope gate(&tree_->phase_gate(),
                                 rtree::PhaseGate::Mode::kExclusive);
    SEGIDX_RETURN_IF_ERROR(
        rtree::BulkLoad(tree_.get(), std::move(records), method));
  }
  dirty_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status IntervalIndex::Delete(const Rect& rect, TupleId tid) {
  if (skeleton_ != nullptr && !skeleton_->built()) {
    return FailedPreconditionError(
        "cannot delete while the skeleton sample is buffering");
  }
  SEGIDX_RETURN_IF_ERROR(CheckWritable());
  SEGIDX_RETURN_IF_ERROR(tree_->Delete(rect, tid));
  dirty_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status IntervalIndex::Finalize() {
  if (skeleton_ == nullptr) return Status::OK();
  TrackedMutexLock lock(&skeleton_mu_, LockClass::kSkeleton);
  const bool was_building = !skeleton_->built();
  SEGIDX_RETURN_IF_ERROR(skeleton_->Finalize());
  if (was_building && skeleton_->built()) {
    dirty_.store(true, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status IntervalIndex::Commit() {
  SEGIDX_RETURN_IF_ERROR(CheckWritable());
  // Buffered sample records live only in memory; build before persisting.
  SEGIDX_RETURN_IF_ERROR(Finalize());
  // The checkpoint itself runs once per group-commit batch, on whichever
  // caller the pager elects leader. It must not overlap tree mutation
  // (Checkpoint snapshots the dirty-frame set), so the leader takes the
  // tree's exclusive phase: batch members have already left the write
  // phase (their mutations completed before they called Commit), and any
  // unrelated writer drains out of the gate first — complete operations
  // only, never a half-applied insert.
  return pager_->GroupCommit([this]() -> Status {
    rtree::PhaseGate::Scope gate(&tree_->phase_gate(),
                                 rtree::PhaseGate::Mode::kExclusive);
    SEGIDX_RETURN_IF_ERROR(tree_->SaveMeta());
    if (commit_meta_hook_ != nullptr) {
      // The hook's blob rides the same checkpoint as the data it
      // describes: a failed checkpoint persists neither.
      SEGIDX_RETURN_IF_ERROR(
          AppendExtraMeta(pager_.get(), commit_meta_hook_()));
    }
    SEGIDX_RETURN_IF_ERROR(AppendCoreMeta(
        pager_.get(), kind_, skeleton_ == nullptr || skeleton_->built()));
    SEGIDX_RETURN_IF_ERROR(pager_->Checkpoint());
    // Clearing the flag here is conservative: a mutation racing this
    // checkpoint re-raises it after the store, at worst costing one
    // redundant checkpoint at Close.
    dirty_.store(false, std::memory_order_relaxed);
    return Status::OK();
  });
}

Status IntervalIndex::Flush() { return Commit(); }

Status IntervalIndex::Close() {
  if (closed_) return Status::OK();
  Status status = Status::OK();
  // Commit() funnels through the pager's group-commit sequencer, so this
  // final checkpoint queues behind any batch still in flight: every write
  // acknowledged before Close() began is covered either by that batch's
  // checkpoint or by this one. Nothing acknowledged is lost on a clean
  // shutdown.
  if (dirty_.load(std::memory_order_relaxed)) status = Flush();
  closed_ = true;
  return status;
}

IntervalIndex::~IntervalIndex() {
  // Best effort: a failed final checkpoint leaves the previous durable
  // checkpoint intact, so ignoring the status here never corrupts the file
  // — it only loses the unflushed tail. Call Close() to observe failures.
  const Status status = Close();
  if (!status.ok()) {
    std::fprintf(stderr, "segidx: final checkpoint failed in ~IntervalIndex: %s\n",
                 status.ToString().c_str());
  }
}

Status IntervalIndex::CheckInvariants() {
  // The tree's own quick check first: it exercises the non-public
  // entries-seen accounting the walker below does not repeat.
  SEGIDX_RETURN_IF_ERROR(tree_->CheckInvariants());
  SEGIDX_ASSIGN_OR_RETURN(check::CheckReport report, CheckStructure());
  return report.ToStatus();
}

Result<check::CheckReport> IntervalIndex::CheckStructure(
    const check::CheckOptions& options) {
  // The checker's walk assumes a frozen tree and page accounting; run it
  // alone. (Safe to call while writers are active — they just wait.)
  rtree::PhaseGate::Scope gate(&tree_->phase_gate(),
                               rtree::PhaseGate::Mode::kExclusive);
  check::StructureChecker checker(tree_.get(), options);
  return checker.Check();
}

Result<storage::ScrubReport> IntervalIndex::Scrub(
    const storage::ScrubOptions& options) {
  // Scrub shares the read phase: it coexists with searches but excludes
  // writers, so the reachability walk never chases a mid-split pointer.
  rtree::PhaseGate::Scope gate(&tree_->phase_gate(),
                               rtree::PhaseGate::Mode::kRead);
  using Clock = std::chrono::steady_clock;
  storage::ScrubReport report;
  const auto start = Clock::now();
  uint64_t paced = 0;
  auto pace = [&] {
    if (options.max_extents_per_second == 0) return;
    const auto target =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        static_cast<double>(paced) /
                        static_cast<double>(options.max_extents_per_second)));
    const auto now = Clock::now();
    if (target > now) std::this_thread::sleep_for(target - now);
    ++paced;
  };
  auto cancelled = [&] {
    return options.cancel_token != nullptr &&
           options.cancel_token->load(std::memory_order_relaxed);
  };
  auto defect = [&](storage::PageId id, std::string error, bool structural) {
    if (structural) ++report.structure_errors;
    report.defects.push_back({id, std::move(error)});
  };

  // Reachable pass: walk the tree from the root, CRC-verifying every node
  // page (ReadNode checks the page checksum during deserialization) plus a
  // light structure pass — level bookkeeping and entry sanity. Deep
  // invariants (containment, spanning quotas) belong to CheckStructure().
  struct Item {
    storage::PageId id;
    int level;
  };
  std::vector<Item> stack;
  stack.push_back({tree_->root(), tree_->height() - 1});
  uint64_t ignored_accesses = 0;
  while (!stack.empty()) {
    if (cancelled()) {
      report.completed = false;
      return report;
    }
    pace();
    const Item item = stack.back();
    stack.pop_back();
    ++report.extents_scanned;
    ++report.reachable_extents;
    Result<rtree::Node> node_or =
        tree_->ReadNode(item.id, &ignored_accesses);
    if (!node_or.ok()) {
      defect(item.id, node_or.status().ToString(), /*structural=*/false);
      if (options.quarantine_damaged &&
          node_or.status().code() == StatusCode::kCorruption) {
        pager_->QuarantinePage(item.id, node_or.status().message());
      }
      continue;
    }
    const rtree::Node& node = *node_or;
    report.bytes_scanned += static_cast<uint64_t>(pager_->base_block_size())
                            << item.id.size_class;
    if (static_cast<int>(node.level) != item.level) {
      defect(item.id,
             "level mismatch: node says " + std::to_string(node.level) +
                 ", walk expects " + std::to_string(item.level),
             /*structural=*/true);
    }
    if (node.is_leaf()) {
      for (const rtree::LeafEntry& e : node.records) {
        if (!e.rect.valid()) {
          defect(item.id, "invalid leaf record rectangle",
                 /*structural=*/true);
          break;
        }
      }
      continue;
    }
    for (const rtree::SpanningEntry& s : node.spanning) {
      if (!s.rect.valid()) {
        defect(item.id, "invalid spanning record rectangle",
               /*structural=*/true);
        break;
      }
    }
    for (const rtree::BranchEntry& b : node.branches) {
      if (!b.child.valid() || !b.rect.valid()) {
        defect(item.id, "invalid branch (child page id or rectangle)",
               /*structural=*/true);
        continue;
      }
      stack.push_back({b.child, static_cast<int>(node.level) - 1});
    }
  }

  // Media pass: superblock slots plus free/unreachable extents. Together
  // with the reachable pass above, this tiles every allocated byte.
  SEGIDX_ASSIGN_OR_RETURN(storage::ScrubReport media, pager_->Scrub(options));
  report.extents_scanned += media.extents_scanned;
  report.free_extents += media.free_extents;
  report.bytes_scanned += media.bytes_scanned;
  report.structure_errors += media.structure_errors;
  report.completed = report.completed && media.completed;
  for (storage::ScrubDefect& d : media.defects) {
    report.defects.push_back(std::move(d));
  }
  return report;
}

uint64_t IntervalIndex::size() const {
  if (skeleton_ != nullptr && !skeleton_->built()) {
    return skeleton_->inserted();
  }
  return tree_->size();
}

uint64_t IntervalIndex::index_bytes() const {
  return pager_->allocated_blocks() *
         static_cast<uint64_t>(pager_->base_block_size());
}

void IntervalIndex::ResetStats() {
  tree_->ResetStats();
  pager_->ResetStats();
}

}  // namespace segidx::core
