// SR-Tree: the Segment Index adaptation of the R-Tree
// (Kolovson & Stonebraker, SIGMOD 1991, Section 3).
//
// An SR-Tree is an R-Tree in which an interval/rectangle record is stored on
// the highest node N such that the record spans the region of at least one
// of N's children (in either or both dimensions). Such "spanning index
// records" live on non-leaf nodes, linked to the branch they span:
//
//   * insertion descends from the root; the first node with a spanned
//     branch (and free spanning capacity) consumes the record;
//   * a record that pokes outside the node's own region is cut into a
//     spanning portion plus remnant portions; the remnants are re-inserted
//     (Figure 3);
//   * region expansion can break span relationships: affected records are
//     demoted (removed and re-inserted);
//   * node splits carry spanning records with their linked branch, and
//     records that span a post-split region are promoted (re-inserted so
//     they land on the parent) — both implemented in the shared split code;
//   * searches additionally scan the spanning records of every visited
//     node (shared search code).
//
// Non-leaf capacity: `branch_fraction` (2/3 in the paper's experiments) of
// the entry slots is reserved for branches, the rest for spanning records.
// When a node's spanning quota is exhausted the record simply descends and
// is placed deeper — see DESIGN.md for the relation to the paper's
// overflow-on-spanning-insert formulation.
//
// Deletion is intentionally unsupported (the paper scopes SR-Trees to
// historical data, which only needs insert + search).

#ifndef SEGIDX_SRTREE_SRTREE_H_
#define SEGIDX_SRTREE_SRTREE_H_

#include <memory>

#include "rtree/rtree.h"

namespace segidx::srtree {

class SRTree : public rtree::RTree {
 public:
  // Creates an empty SR-Tree. `options.enable_spanning` is forced on.
  static Result<std::unique_ptr<SRTree>> Create(
      storage::Pager* pager, const rtree::TreeOptions& options);

  // Re-opens a persisted SR-Tree (see RTree::SaveMeta()).
  static Result<std::unique_ptr<SRTree>> Open(storage::Pager* pager);

 protected:
  SRTree(storage::Pager* pager, const rtree::TreeOptions& options)
      : RTree(pager, options) {}

  Result<SpanningPlacement> TryPlaceSpanningRecord(
      storage::PageId node_id, rtree::Node* node, Rect* node_region,
      bool is_root, const Rect& rect, TupleId tid,
      InsertContext* ctx) override;

  Status ProcessDemotions(InsertContext* ctx) override;
};

}  // namespace segidx::srtree

#endif  // SEGIDX_SRTREE_SRTREE_H_
