#include "srtree/srtree.h"

#include <algorithm>
#include <cstddef>

#include "common/logging.h"

namespace segidx::srtree {

using rtree::BranchEntry;
using rtree::Node;
using rtree::NodeLatchTable;
using rtree::SpanningEntry;
using rtree::TreeOptions;

Result<std::unique_ptr<SRTree>> SRTree::Create(storage::Pager* pager,
                                               const TreeOptions& options) {
  if (options.branch_fraction <= 0 || options.branch_fraction >= 1) {
    return InvalidArgumentError(
        "SR-Tree branch_fraction must be in (0, 1) so that spanning "
        "records have capacity");
  }
  if (options.min_fill_fraction <= 0 || options.min_fill_fraction > 0.5) {
    return InvalidArgumentError("min_fill_fraction must be in (0, 0.5]");
  }
  TreeOptions effective = options;
  effective.enable_spanning = true;
  std::unique_ptr<SRTree> tree(new SRTree(pager, effective));
  SEGIDX_RETURN_IF_ERROR(tree->SetupEmptyRoot());
  return tree;
}

Result<std::unique_ptr<SRTree>> SRTree::Open(storage::Pager* pager) {
  TreeOptions options;
  std::unique_ptr<SRTree> tree(new SRTree(pager, options));
  SEGIDX_RETURN_IF_ERROR(tree->LoadMeta());
  if (!tree->options().enable_spanning) {
    return InvalidArgumentError(
        "file holds a plain R-Tree; open it with RTree::Open");
  }
  return tree;
}

Result<rtree::RTree::SpanningPlacement> SRTree::TryPlaceSpanningRecord(
    storage::PageId node_id, Node* node, Rect* node_region, bool is_root,
    const Rect& rect, TupleId tid, InsertContext* ctx) {
  SEGIDX_DCHECK(!node->is_leaf());
  const int level = node->level;

  // Find a branch whose region the record spans (Section 3.1.1: spanning
  // in either or both dimensions qualifies).
  const BranchEntry* spanned = nullptr;
  for (const BranchEntry& b : node->branches) {
    if (rect.SpansRegion(b.rect)) {
      spanned = &b;
      break;
    }
  }
  if (spanned == nullptr) return SpanningPlacement::kNotPlaced;

  // Determine the portion that would be stored here. Cutting (Figure 3) is
  // committed — remnants queued — only once placement is certain.
  Rect portion = rect;
  bool was_cut = false;
  CutResult cut;
  bool grow_root = false;
  if (!node_region->Contains(rect)) {
    if (is_root) {
      // The root has no parent region constraining it; growing the root
      // region is free of overlap cost, so no cut is needed.
      grow_root = true;
    } else if (rect.Intersects(*node_region)) {
      // The spanning portion still spans `spanned` because the spanned
      // branch region is contained in this node's region.
      cut = CutRecord(rect, *node_region);
      portion = cut.spanning_portion;
      was_cut = true;
      SEGIDX_DCHECK(portion.SpansRegion(spanned->rect));
    } else {
      // The record is disjoint from this node's region (the descent may
      // pass through nodes that do not yet cover the record); placement
      // here is impossible without stretching the node, which the paper
      // rejects. Let the record descend.
      return SpanningPlacement::kNotPlaced;
    }
  }

  // Capacity resolution per the configured overflow policy.
  const bool quota_full = node->spanning.size() >= SpanningCapacity(level);
  const bool node_full = !HasByteRoomForSpanning(*node);
  bool split_after_place = false;
  switch (options_.spanning_overflow_policy) {
    case rtree::SpanningOverflowPolicy::kDescend:
      if (quota_full || node_full) return SpanningPlacement::kNotPlaced;
      break;
    case rtree::SpanningOverflowPolicy::kSplit:
      if (node_full) {
        // Splitting needs at least two branches to distribute; a
        // single-branch full node lets the record descend instead.
        if (node->branches.size() < 2) return SpanningPlacement::kNotPlaced;
        split_after_place = true;
      }
      break;
    case rtree::SpanningOverflowPolicy::kEvictSmallest:
      if (quota_full || node_full) {
        if (node->spanning.empty()) return SpanningPlacement::kNotPlaced;
        // Keep the longest records in the bounded slots: displace the
        // smallest resident if the newcomer is strictly larger. margin()
        // (width + height) orders degenerate segments by length, where
        // area() would compare every segment as zero.
        size_t smallest = 0;
        for (size_t i = 1; i < node->spanning.size(); ++i) {
          if (node->spanning[i].rect.margin() <
              node->spanning[smallest].rect.margin()) {
            smallest = i;
          }
        }
        if (portion.margin() <= node->spanning[smallest].rect.margin()) {
          return SpanningPlacement::kNotPlaced;
        }
        ctx->reinserts.emplace_back(node->spanning[smallest].rect,
                                    node->spanning[smallest].tid);
        node->spanning.erase(node->spanning.begin() +
                             static_cast<ptrdiff_t>(smallest));
        BumpTreeStat(stats_.spanning_evictions);
      }
      break;
  }

  if (grow_root) {
    *node_region = node_region->Enclose(rect);
  }
  if (was_cut) {
    for (const Rect& remnant : cut.remnants) {
      ctx->reinserts.emplace_back(remnant, tid);
      BumpTreeStat(stats_.remnants_inserted);
    }
    BumpTreeStat(stats_.cuts);
  }

  SpanningEntry entry;
  entry.rect = portion;
  entry.tid = tid;
  entry.linked_child = spanned->child.Encode();
  node->spanning.push_back(entry);
  BumpTreeStat(stats_.spanning_placed);
  if (split_after_place) {
    // Over-full in memory; the caller splits the node, which writes both
    // halves.
    return SpanningPlacement::kPlacedOverflow;
  }
  SEGIDX_RETURN_IF_ERROR(WriteNode(node_id, *node));
  return SpanningPlacement::kPlaced;
}

Status SRTree::ProcessDemotions(InsertContext* ctx) {
  if (ctx->expanded_nodes.empty()) return Status::OK();

  // Deduplicate; a node can be recorded once per expansion.
  std::vector<storage::PageId> nodes = std::move(ctx->expanded_nodes);
  ctx->expanded_nodes.clear();
  // Order must agree with PageId equality (block AND size_class), or
  // std::unique can miss duplicates that sorted apart.
  std::sort(nodes.begin(), nodes.end(),
            [](const storage::PageId& a, const storage::PageId& b) {
              if (a.block != b.block) return a.block < b.block;
              return a.size_class < b.size_class;
            });
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  // Runs after InsertOne released every descent latch, so each node is
  // re-latched here one at a time with nothing else held — trivially
  // deadlock-free against descending writers, whatever order they latch
  // in. The re-read under the latch makes the pass self-validating:
  // another writer may have split, rewritten, freed, or even reused the
  // page since the expansion was recorded, and the keep/relink/demote
  // decision below is computed from the node's current contents, which is
  // correct in every one of those cases.
  for (const storage::PageId& id : nodes) {
    NodeLatchTable::Guard guard = latch_table_.Acquire(
        id.block, NodeLatchTable::LatchOrigin::Standalone());
    SEGIDX_ASSIGN_OR_RETURN(Node node, ReadNode(id, &ctx->node_accesses));
    if (node.is_leaf() || node.spanning.empty()) continue;
    bool changed = false;
    std::vector<SpanningEntry> keep;
    keep.reserve(node.spanning.size());
    for (SpanningEntry s : node.spanning) {
      const int linked =
          node.FindBranch(storage::PageId::Decode(s.linked_child));
      if (linked >= 0 &&
          s.rect.SpansRegion(node.branches[linked].rect)) {
        keep.push_back(s);
        continue;
      }
      // Try to relink to another branch the record still spans.
      bool relinked = false;
      for (const BranchEntry& b : node.branches) {
        if (s.rect.SpansRegion(b.rect)) {
          s.linked_child = b.child.Encode();
          keep.push_back(s);
          relinked = true;
          BumpTreeStat(stats_.relinks);
          break;
        }
      }
      if (!relinked) {
        // Demotion (Section 3.1.1): remove and re-insert.
        ctx->reinserts.emplace_back(s.rect, s.tid);
        BumpTreeStat(stats_.demotions);
      }
      changed = true;
    }
    if (changed) {
      node.spanning = std::move(keep);
      SEGIDX_RETURN_IF_ERROR(WriteNode(id, node));
    }
  }
  return Status::OK();
}

}  // namespace segidx::srtree
