#include "storage/pager.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "storage/coding.h"

namespace segidx::storage {

namespace {

constexpr uint64_t kMagic = 0x5345474944583031ULL;  // "SEGIDX01"
constexpr uint32_t kFormatVersion = 1;

// Superblock layout (within block 0):
//   0   magic             u64
//   8   version           u32
//   12  base_block_size   u32
//   16  max_size_class    u8
//   17  pad               7 bytes
//   24  next_block        u32
//   28  free list heads   (max_size_class + 1) * u32
//   ..  user_meta_len     u16
//   ..  user_meta         kUserMetaCapacity bytes
constexpr size_t kSuperFixed = 28;

}  // namespace

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pager_(other.pager_),
      id_(other.id_),
      data_(other.data_),
      size_(other.size_) {
  other.pager_ = nullptr;
  other.data_ = nullptr;
  other.size_ = 0;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pager_ = other.pager_;
    id_ = other.id_;
    data_ = other.data_;
    size_ = other.size_;
    other.pager_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void PageHandle::MarkDirty() {
  SEGIDX_DCHECK(valid());
  auto it = pager_->frames_.find(id_.block);
  SEGIDX_DCHECK(it != pager_->frames_.end());
  it->second.dirty = true;
}

void PageHandle::Release() {
  if (pager_ != nullptr) {
    pager_->Unpin(id_.block);
    pager_ = nullptr;
    data_ = nullptr;
    size_ = 0;
  }
}

Result<std::unique_ptr<Pager>> Pager::Create(
    std::unique_ptr<BlockDevice> device, const PagerOptions& options) {
  if (options.base_block_size < 256) {
    return InvalidArgumentError("base_block_size must be >= 256");
  }
  const size_t super_need = kSuperFixed +
                            (options.max_size_class + 1) * 4 + 2 +
                            kUserMetaCapacity;
  if (super_need > options.base_block_size) {
    return InvalidArgumentError("superblock does not fit in one block");
  }
  std::unique_ptr<Pager> pager(new Pager(std::move(device), options));
  pager->free_heads_.assign(options.max_size_class + 1, kInvalidBlock);
  SEGIDX_RETURN_IF_ERROR(pager->WriteSuperblock());
  return pager;
}

Result<std::unique_ptr<Pager>> Pager::Open(
    std::unique_ptr<BlockDevice> device, const PagerOptions& options) {
  std::unique_ptr<Pager> pager(new Pager(std::move(device), options));
  SEGIDX_RETURN_IF_ERROR(pager->ReadSuperblock());
  return pager;
}

Pager::~Pager() {
  // Best-effort write-back so that dropping a pager without Checkpoint()
  // does not silently lose pages (tests rely on explicit Checkpoint for
  // durability of the superblock).
  (void)Flush();
}

Status Pager::WriteSuperblock() {
  std::vector<uint8_t> buf(options_.base_block_size, 0);
  EncodeU64(buf.data(), kMagic);
  EncodeU32(buf.data() + 8, kFormatVersion);
  EncodeU32(buf.data() + 12, options_.base_block_size);
  buf[16] = options_.max_size_class;
  EncodeU32(buf.data() + 24, next_block_);
  size_t off = kSuperFixed;
  for (uint32_t head : free_heads_) {
    EncodeU32(buf.data() + off, head);
    off += 4;
  }
  SEGIDX_CHECK_LE(user_meta_.size(), kUserMetaCapacity);
  EncodeU16(buf.data() + off, static_cast<uint16_t>(user_meta_.size()));
  off += 2;
  if (!user_meta_.empty()) {  // .data() may be null when empty.
    std::memcpy(buf.data() + off, user_meta_.data(), user_meta_.size());
  }
  return device_->Write(0, buf.data(), buf.size());
}

Status Pager::ReadSuperblock() {
  if (device_->size() < options_.base_block_size) {
    return CorruptionError("device too small for superblock");
  }
  std::vector<uint8_t> buf(options_.base_block_size);
  SEGIDX_RETURN_IF_ERROR(device_->Read(0, buf.size(), buf.data()));
  if (DecodeU64(buf.data()) != kMagic) {
    return CorruptionError("bad magic; not a segment-index file");
  }
  if (DecodeU32(buf.data() + 8) != kFormatVersion) {
    return CorruptionError("unsupported format version");
  }
  if (DecodeU32(buf.data() + 12) != options_.base_block_size) {
    return InvalidArgumentError(
        "base_block_size mismatch between file and options");
  }
  options_.max_size_class = buf[16];
  next_block_ = DecodeU32(buf.data() + 24);
  size_t off = kSuperFixed;
  free_heads_.assign(options_.max_size_class + 1, kInvalidBlock);
  for (uint32_t& head : free_heads_) {
    head = DecodeU32(buf.data() + off);
    off += 4;
  }
  const uint16_t meta_len = DecodeU16(buf.data() + off);
  off += 2;
  if (meta_len > kUserMetaCapacity) {
    return CorruptionError("user metadata length out of range");
  }
  user_meta_.assign(buf.data() + off, buf.data() + off + meta_len);
  return Status::OK();
}

Result<PageHandle> Pager::Allocate(uint8_t size_class) {
  if (size_class > options_.max_size_class) {
    return InvalidArgumentError("size class exceeds maximum");
  }
  uint32_t block;
  if (free_heads_[size_class] != kInvalidBlock) {
    // Pop the free list: the first 4 bytes of a free extent hold the next
    // free extent's first block.
    block = free_heads_[size_class];
    uint8_t link[4];
    SEGIDX_RETURN_IF_ERROR(device_->Read(BlockOffset(block), 4, link));
    free_heads_[size_class] = DecodeU32(link);
  } else {
    block = next_block_;
    next_block_ += 1u << size_class;
  }
  ++stats_.pages_allocated;

  SEGIDX_RETURN_IF_ERROR(EnforceCapacity());
  Frame& frame = frames_[block];
  SEGIDX_CHECK_EQ(frame.pin_count, 0);
  frame.bytes.assign(ExtentBytes(size_class), 0);
  frame.size_class = size_class;
  frame.dirty = true;
  frame.pin_count = 1;
  frame.in_lru = false;
  cached_bytes_ += frame.bytes.size();
  return MakeHandle(block, &frame);
}

Result<PageHandle> Pager::Fetch(PageId id) {
  if (!id.valid() || id.size_class > options_.max_size_class) {
    return InvalidArgumentError("invalid page id");
  }
  ++stats_.logical_reads;
  auto it = frames_.find(id.block);
  if (it != frames_.end()) {
    ++stats_.cache_hits;
    Frame& frame = it->second;
    SEGIDX_CHECK_EQ(frame.size_class, id.size_class);
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return MakeHandle(id.block, &frame);
  }

  ++stats_.physical_reads;
  const size_t n = ExtentBytes(id.size_class);
  std::vector<uint8_t> bytes(n);
  SEGIDX_RETURN_IF_ERROR(
      device_->Read(BlockOffset(id.block), n, bytes.data()));

  SEGIDX_RETURN_IF_ERROR(EnforceCapacity());
  Frame& frame = frames_[id.block];
  frame.bytes = std::move(bytes);
  frame.size_class = id.size_class;
  frame.dirty = false;
  frame.pin_count = 1;
  frame.in_lru = false;
  cached_bytes_ += frame.bytes.size();
  return MakeHandle(id.block, &frame);
}

Status Pager::Free(PageId id) {
  if (!id.valid() || id.size_class > options_.max_size_class) {
    return InvalidArgumentError("invalid page id");
  }
  auto it = frames_.find(id.block);
  if (it != frames_.end()) {
    Frame& frame = it->second;
    if (frame.pin_count != 0) {
      return FailedPreconditionError("cannot free a pinned page");
    }
    if (frame.in_lru) lru_.erase(frame.lru_pos);
    cached_bytes_ -= frame.bytes.size();
    frames_.erase(it);
  }
  // Thread onto the free list.
  uint8_t link[4];
  EncodeU32(link, free_heads_[id.size_class]);
  SEGIDX_RETURN_IF_ERROR(device_->Write(BlockOffset(id.block), link, 4));
  free_heads_[id.size_class] = id.block;
  ++stats_.pages_freed;
  return Status::OK();
}

Status Pager::Flush() {
  for (auto& [block, frame] : frames_) {
    if (frame.dirty) {
      SEGIDX_RETURN_IF_ERROR(device_->Write(BlockOffset(block),
                                            frame.bytes.data(),
                                            frame.bytes.size()));
      ++stats_.physical_writes;
      frame.dirty = false;
    }
  }
  return Status::OK();
}

Status Pager::Checkpoint() {
  SEGIDX_RETURN_IF_ERROR(Flush());
  SEGIDX_RETURN_IF_ERROR(WriteSuperblock());
  return device_->Sync();
}

Status Pager::SetUserMeta(const uint8_t* data, size_t n) {
  if (n > kUserMetaCapacity) {
    return InvalidArgumentError("user metadata too large");
  }
  user_meta_.assign(data, data + n);
  return Status::OK();
}

Result<std::vector<PageId>> Pager::FreeExtents() const {
  std::vector<PageId> out;
  for (uint8_t sc = 0; sc < free_heads_.size(); ++sc) {
    uint32_t block = free_heads_[sc];
    // A well-formed list holds at most next_block_ extents; anything longer
    // is a cycle.
    uint64_t steps = 0;
    while (block != kInvalidBlock) {
      if (block == 0 || block >= next_block_) {
        return CorruptionError("free list of size class " +
                               std::to_string(sc) +
                               " references out-of-range block " +
                               std::to_string(block));
      }
      if (++steps > next_block_) {
        return CorruptionError("free list of size class " +
                               std::to_string(sc) + " is cyclic");
      }
      PageId id;
      id.block = block;
      id.size_class = sc;
      out.push_back(id);
      uint8_t link[4];
      SEGIDX_RETURN_IF_ERROR(device_->Read(BlockOffset(block), 4, link));
      block = DecodeU32(link);
    }
  }
  return out;
}

size_t Pager::pinned_frames() const {
  size_t n = 0;
  for (const auto& [block, frame] : frames_) {
    if (frame.pin_count > 0) ++n;
  }
  return n;
}

Status Pager::EnforceCapacity() {
  while (cached_bytes_ > options_.buffer_pool_bytes && !lru_.empty()) {
    const uint32_t victim = lru_.back();
    SEGIDX_RETURN_IF_ERROR(EvictFrame(victim));
  }
  return Status::OK();
}

Status Pager::EvictFrame(uint32_t block) {
  auto it = frames_.find(block);
  SEGIDX_CHECK(it != frames_.end());
  Frame& frame = it->second;
  SEGIDX_CHECK_EQ(frame.pin_count, 0);
  if (frame.dirty) {
    SEGIDX_RETURN_IF_ERROR(device_->Write(BlockOffset(block),
                                          frame.bytes.data(),
                                          frame.bytes.size()));
    ++stats_.physical_writes;
  }
  if (frame.in_lru) lru_.erase(frame.lru_pos);
  cached_bytes_ -= frame.bytes.size();
  frames_.erase(it);
  ++stats_.evictions;
  return Status::OK();
}

void Pager::Unpin(uint32_t block) {
  auto it = frames_.find(block);
  SEGIDX_CHECK(it != frames_.end());
  Frame& frame = it->second;
  SEGIDX_CHECK_GT(frame.pin_count, 0);
  if (--frame.pin_count == 0) {
    lru_.push_front(block);
    frame.lru_pos = lru_.begin();
    frame.in_lru = true;
    // Opportunistically shrink back to capacity now that a frame became
    // evictable.
    (void)EnforceCapacity();
  }
}

PageHandle Pager::MakeHandle(uint32_t block, Frame* frame) {
  PageId id;
  id.block = block;
  id.size_class = frame->size_class;
  return PageHandle(this, id, frame->bytes.data(), frame->bytes.size());
}

}  // namespace segidx::storage
