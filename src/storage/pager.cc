#include "storage/pager.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "storage/coding.h"

namespace segidx::storage {

namespace {

constexpr uint64_t kMagic = 0x5345474944583031ULL;  // "SEGIDX01"
constexpr uint32_t kFormatVersion = 1;

// Superblock layout (within block 0):
//   0   magic             u64
//   8   version           u32
//   12  base_block_size   u32
//   16  max_size_class    u8
//   17  pad               7 bytes
//   24  next_block        u32
//   28  free list heads   (max_size_class + 1) * u32
//   ..  user_meta_len     u16
//   ..  user_meta         kUserMetaCapacity bytes
constexpr size_t kSuperFixed = 28;

// Relaxed counter bump on a plain stats field; atomic_ref keeps the struct
// copyable for callers while making concurrent Fetch paths race-free.
inline void BumpStat(uint64_t& counter, uint64_t delta = 1) {
  std::atomic_ref<uint64_t>(counter).fetch_add(delta,
                                               std::memory_order_relaxed);
}

}  // namespace

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pager_(other.pager_),
      id_(other.id_),
      data_(other.data_),
      size_(other.size_) {
  other.pager_ = nullptr;
  other.data_ = nullptr;
  other.size_ = 0;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pager_ = other.pager_;
    id_ = other.id_;
    data_ = other.data_;
    size_ = other.size_;
    other.pager_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void PageHandle::MarkDirty() {
  SEGIDX_DCHECK(valid());
  pager_->MarkFrameDirty(id_.block);
}

void PageHandle::Release() {
  if (pager_ != nullptr) {
    pager_->Unpin(id_.block);
    pager_ = nullptr;
    data_ = nullptr;
    size_ = 0;
  }
}

Pager::Pager(std::unique_ptr<BlockDevice> device, const PagerOptions& options)
    : device_(std::move(device)), options_(options) {
  num_partitions_ = std::clamp<uint32_t>(options_.lru_partitions, 1, 256);
  partition_budget_ =
      std::max<size_t>(1, options_.buffer_pool_bytes / num_partitions_);
  partitions_ = std::make_unique<Partition[]>(num_partitions_);
}

Result<std::unique_ptr<Pager>> Pager::Create(
    std::unique_ptr<BlockDevice> device, const PagerOptions& options) {
  if (options.base_block_size < 256) {
    return InvalidArgumentError("base_block_size must be >= 256");
  }
  const size_t super_need = kSuperFixed +
                            (options.max_size_class + 1) * 4 + 2 +
                            kUserMetaCapacity;
  if (super_need > options.base_block_size) {
    return InvalidArgumentError("superblock does not fit in one block");
  }
  std::unique_ptr<Pager> pager(new Pager(std::move(device), options));
  pager->free_heads_.assign(options.max_size_class + 1, kInvalidBlock);
  SEGIDX_RETURN_IF_ERROR(pager->WriteSuperblock());
  return pager;
}

Result<std::unique_ptr<Pager>> Pager::Open(
    std::unique_ptr<BlockDevice> device, const PagerOptions& options) {
  std::unique_ptr<Pager> pager(new Pager(std::move(device), options));
  SEGIDX_RETURN_IF_ERROR(pager->ReadSuperblock());
  return pager;
}

Pager::~Pager() {
  // Best-effort write-back so that dropping a pager without Checkpoint()
  // does not silently lose pages (tests rely on explicit Checkpoint for
  // durability of the superblock).
  (void)Flush();
}

Status Pager::WriteSuperblock() {
  std::vector<uint8_t> buf(options_.base_block_size, 0);
  EncodeU64(buf.data(), kMagic);
  EncodeU32(buf.data() + 8, kFormatVersion);
  EncodeU32(buf.data() + 12, options_.base_block_size);
  buf[16] = options_.max_size_class;
  EncodeU32(buf.data() + 24, next_block_);
  size_t off = kSuperFixed;
  for (uint32_t head : free_heads_) {
    EncodeU32(buf.data() + off, head);
    off += 4;
  }
  SEGIDX_CHECK_LE(user_meta_.size(), kUserMetaCapacity);
  EncodeU16(buf.data() + off, static_cast<uint16_t>(user_meta_.size()));
  off += 2;
  if (!user_meta_.empty()) {  // .data() may be null when empty.
    std::memcpy(buf.data() + off, user_meta_.data(), user_meta_.size());
  }
  return device_->Write(0, buf.data(), buf.size());
}

Status Pager::ReadSuperblock() {
  if (device_->size() < options_.base_block_size) {
    return CorruptionError("device too small for superblock");
  }
  std::vector<uint8_t> buf(options_.base_block_size);
  SEGIDX_RETURN_IF_ERROR(device_->Read(0, buf.size(), buf.data()));
  if (DecodeU64(buf.data()) != kMagic) {
    return CorruptionError("bad magic; not a segment-index file");
  }
  if (DecodeU32(buf.data() + 8) != kFormatVersion) {
    return CorruptionError("unsupported format version");
  }
  if (DecodeU32(buf.data() + 12) != options_.base_block_size) {
    return InvalidArgumentError(
        "base_block_size mismatch between file and options");
  }
  options_.max_size_class = buf[16];
  next_block_ = DecodeU32(buf.data() + 24);
  size_t off = kSuperFixed;
  free_heads_.assign(options_.max_size_class + 1, kInvalidBlock);
  for (uint32_t& head : free_heads_) {
    head = DecodeU32(buf.data() + off);
    off += 4;
  }
  const uint16_t meta_len = DecodeU16(buf.data() + off);
  off += 2;
  if (meta_len > kUserMetaCapacity) {
    return CorruptionError("user metadata length out of range");
  }
  user_meta_.assign(buf.data() + off, buf.data() + off + meta_len);
  return Status::OK();
}

PageHandle Pager::InstallFrame(uint32_t block, uint8_t size_class,
                               std::vector<uint8_t> bytes, bool dirty) {
  Partition& part = PartitionFor(block);
  std::lock_guard<std::mutex> lock(part.mu);
  Frame& frame = part.frames[block];
  SEGIDX_CHECK_EQ(frame.pin_count, 0);
  SEGIDX_CHECK(!frame.in_lru);
  frame.bytes = std::move(bytes);
  frame.size_class = size_class;
  frame.dirty = dirty;
  frame.pin_count = 1;
  frame.in_lru = false;
  part.cached_bytes += frame.bytes.size();
  (void)EnforceCapacityLocked(part);
  PageId id;
  id.block = block;
  id.size_class = size_class;
  return PageHandle(this, id, frame.bytes.data(), frame.bytes.size());
}

Result<PageHandle> Pager::Allocate(uint8_t size_class) {
  if (size_class > options_.max_size_class) {
    return InvalidArgumentError("size class exceeds maximum");
  }
  uint32_t block;
  {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    if (free_heads_[size_class] != kInvalidBlock) {
      // Pop the free list: the first 4 bytes of a free extent hold the next
      // free extent's first block.
      block = free_heads_[size_class];
      uint8_t link[4];
      SEGIDX_RETURN_IF_ERROR(device_->Read(BlockOffset(block), 4, link));
      free_heads_[size_class] = DecodeU32(link);
    } else {
      block = next_block_;
      next_block_ += 1u << size_class;
    }
  }
  BumpStat(stats_.pages_allocated);
  return InstallFrame(block, size_class,
                      std::vector<uint8_t>(ExtentBytes(size_class), 0),
                      /*dirty=*/true);
}

Result<PageHandle> Pager::Fetch(PageId id) {
  if (!id.valid() || id.size_class > options_.max_size_class) {
    return InvalidArgumentError("invalid page id");
  }
  BumpStat(stats_.logical_reads);
  Partition& part = PartitionFor(id.block);
  {
    std::lock_guard<std::mutex> lock(part.mu);
    auto it = part.frames.find(id.block);
    if (it != part.frames.end()) {
      BumpStat(stats_.cache_hits);
      Frame& frame = it->second;
      SEGIDX_CHECK_EQ(frame.size_class, id.size_class);
      if (frame.in_lru) {
        part.lru.erase(frame.lru_pos);
        frame.in_lru = false;
      }
      ++frame.pin_count;
      return PageHandle(this, id, frame.bytes.data(), frame.bytes.size());
    }

    // Miss: read the extent from the device while holding the partition
    // latch, so a second reader of the same block waits here and then takes
    // the hit path instead of double-reading.
    BumpStat(stats_.physical_reads);
    const size_t n = ExtentBytes(id.size_class);
    std::vector<uint8_t> bytes(n);
    SEGIDX_RETURN_IF_ERROR(
        device_->Read(BlockOffset(id.block), n, bytes.data()));
    Frame& frame = part.frames[id.block];
    frame.bytes = std::move(bytes);
    frame.size_class = id.size_class;
    frame.dirty = false;
    frame.pin_count = 1;
    frame.in_lru = false;
    part.cached_bytes += frame.bytes.size();
    (void)EnforceCapacityLocked(part);
    return PageHandle(this, id, frame.bytes.data(), frame.bytes.size());
  }
}

Status Pager::Free(PageId id) {
  if (!id.valid() || id.size_class > options_.max_size_class) {
    return InvalidArgumentError("invalid page id");
  }
  {
    Partition& part = PartitionFor(id.block);
    std::lock_guard<std::mutex> lock(part.mu);
    auto it = part.frames.find(id.block);
    if (it != part.frames.end()) {
      Frame& frame = it->second;
      if (frame.pin_count != 0) {
        return FailedPreconditionError("cannot free a pinned page");
      }
      if (frame.in_lru) part.lru.erase(frame.lru_pos);
      part.cached_bytes -= frame.bytes.size();
      part.frames.erase(it);
    }
  }
  // Thread onto the free list.
  std::lock_guard<std::mutex> lock(alloc_mu_);
  uint8_t link[4];
  EncodeU32(link, free_heads_[id.size_class]);
  SEGIDX_RETURN_IF_ERROR(device_->Write(BlockOffset(id.block), link, 4));
  free_heads_[id.size_class] = id.block;
  BumpStat(stats_.pages_freed);
  return Status::OK();
}

Status Pager::Flush() {
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    Partition& part = partitions_[p];
    std::lock_guard<std::mutex> lock(part.mu);
    for (auto& [block, frame] : part.frames) {
      if (frame.dirty) {
        SEGIDX_RETURN_IF_ERROR(device_->Write(BlockOffset(block),
                                              frame.bytes.data(),
                                              frame.bytes.size()));
        BumpStat(stats_.physical_writes);
        frame.dirty = false;
      }
    }
  }
  return Status::OK();
}

Status Pager::Checkpoint() {
  SEGIDX_RETURN_IF_ERROR(Flush());
  {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    SEGIDX_RETURN_IF_ERROR(WriteSuperblock());
  }
  return device_->Sync();
}

Status Pager::SetUserMeta(const uint8_t* data, size_t n) {
  if (n > kUserMetaCapacity) {
    return InvalidArgumentError("user metadata too large");
  }
  std::lock_guard<std::mutex> lock(alloc_mu_);
  user_meta_.assign(data, data + n);
  return Status::OK();
}

Result<std::vector<PageId>> Pager::FreeExtents() const {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  std::vector<PageId> out;
  for (uint8_t sc = 0; sc < free_heads_.size(); ++sc) {
    uint32_t block = free_heads_[sc];
    // A well-formed list holds at most next_block_ extents; anything longer
    // is a cycle.
    uint64_t steps = 0;
    while (block != kInvalidBlock) {
      if (block == 0 || block >= next_block_) {
        return CorruptionError("free list of size class " +
                               std::to_string(sc) +
                               " references out-of-range block " +
                               std::to_string(block));
      }
      if (++steps > next_block_) {
        return CorruptionError("free list of size class " +
                               std::to_string(sc) + " is cyclic");
      }
      PageId id;
      id.block = block;
      id.size_class = sc;
      out.push_back(id);
      uint8_t link[4];
      SEGIDX_RETURN_IF_ERROR(device_->Read(BlockOffset(block), 4, link));
      block = DecodeU32(link);
    }
  }
  return out;
}

size_t Pager::pinned_frames() const {
  size_t n = 0;
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    const Partition& part = partitions_[p];
    std::lock_guard<std::mutex> lock(part.mu);
    for (const auto& [block, frame] : part.frames) {
      if (frame.pin_count > 0) ++n;
    }
  }
  return n;
}

size_t Pager::cached_frames() const {
  size_t n = 0;
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    const Partition& part = partitions_[p];
    std::lock_guard<std::mutex> lock(part.mu);
    n += part.frames.size();
  }
  return n;
}

size_t Pager::cached_bytes() const {
  size_t n = 0;
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    const Partition& part = partitions_[p];
    std::lock_guard<std::mutex> lock(part.mu);
    n += part.cached_bytes;
  }
  return n;
}

Status Pager::EnforceCapacityLocked(Partition& part) {
  while (part.cached_bytes > partition_budget_ && !part.lru.empty()) {
    const uint32_t victim = part.lru.back();
    auto it = part.frames.find(victim);
    SEGIDX_CHECK(it != part.frames.end());
    Frame& frame = it->second;
    SEGIDX_CHECK_EQ(frame.pin_count, 0);
    if (frame.dirty) {
      SEGIDX_RETURN_IF_ERROR(device_->Write(BlockOffset(victim),
                                            frame.bytes.data(),
                                            frame.bytes.size()));
      BumpStat(stats_.physical_writes);
    }
    part.lru.pop_back();
    part.cached_bytes -= frame.bytes.size();
    part.frames.erase(it);
    BumpStat(stats_.evictions);
  }
  return Status::OK();
}

void Pager::Unpin(uint32_t block) {
  Partition& part = PartitionFor(block);
  std::lock_guard<std::mutex> lock(part.mu);
  auto it = part.frames.find(block);
  SEGIDX_CHECK(it != part.frames.end());
  Frame& frame = it->second;
  SEGIDX_CHECK_GT(frame.pin_count, 0);
  if (--frame.pin_count == 0) {
    part.lru.push_front(block);
    frame.lru_pos = part.lru.begin();
    frame.in_lru = true;
    // Opportunistically shrink back to capacity now that a frame became
    // evictable.
    (void)EnforceCapacityLocked(part);
  }
}

void Pager::MarkFrameDirty(uint32_t block) {
  Partition& part = PartitionFor(block);
  std::lock_guard<std::mutex> lock(part.mu);
  auto it = part.frames.find(block);
  SEGIDX_CHECK(it != part.frames.end());
  it->second.dirty = true;
}

}  // namespace segidx::storage
