#include "storage/pager.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "storage/coding.h"

namespace segidx::storage {

namespace {

using check::LockClass;
using check::TrackedMutexLock;

constexpr uint64_t kMagicV1 = 0x5345474944583031ULL;  // "SEGIDX01"
constexpr uint64_t kMagicV2 = 0x5345474944583032ULL;  // "SEGIDX02"
constexpr uint32_t kFormatVersionV2 = 2;

// Format v2 superblock slot layout (block 0 = slot 0, block 1 = slot 1):
//   0   magic             u64
//   8   version           u32  (= 2)
//   12  base_block_size   u32
//   16  max_size_class    u8
//   17  pad               7 bytes
//   24  epoch             u64  (monotonically increasing checkpoint count)
//   32  next_block        u32  (allocation high-water mark)
//   36  log_start         u32  (first block of this checkpoint's journal)
//   40  log_blocks        u32  (journal length; 0 = empty checkpoint)
//   44  prev_log_start    u32  (previous checkpoint's journal run)
//   48  prev_log_blocks   u32
//   52  free list heads   (max_size_class + 1) * u32
//   ..  user_meta_len     u16
//   ..  user_meta         kUserMetaCapacity bytes
//   bbs-4  crc32c         u32  over bytes [0, bbs-4)
// prev_log_* records the other slot's journal run. That run stays out of
// the allocator for one extra epoch so a checkpoint never overwrites the
// journal its fallback slot still needs for replay.
constexpr size_t kSuperV2Fixed = 52;

// Legacy v1 layout (single slot in block 0, no epoch/journal/crc).
constexpr size_t kSuperV1Fixed = 28;

// Checkpoint journal layout (log_blocks contiguous blocks at log_start):
//   0   magic             u64
//   8   epoch             u64  (must match the slot that references it)
//   16  entry_count       u32
//   20  scrap_count       u32
//   24  payload_bytes     u64
//   32  crc32c            u32  over the payload
//   36  pad               u32
//   40  payload:
//         entry_count × { home_block u32, length u32, bytes[length] }
//         scrap_count × { block u32, size_class u32 }
// Entries are writes to re-apply at their home offsets (full page images
// and 4-byte free-list links); scraps are spill extents the checkpoint
// absorbed, which the recovered allocator must keep accounting for.
constexpr uint64_t kJournalMagic = 0x5345474944584a4cULL;  // "SEGIDXJL"
constexpr size_t kJournalHeader = 40;

// Relaxed counter bump on a plain stats field; atomic_ref keeps the struct
// copyable for callers while making concurrent Fetch paths race-free.
inline void BumpStat(uint64_t& counter, uint64_t delta = 1) {
  std::atomic_ref<uint64_t>(counter).fetch_add(delta,
                                               std::memory_order_relaxed);
}

size_t SlotBytesNeeded(uint8_t max_size_class) {
  return kSuperV2Fixed + (static_cast<size_t>(max_size_class) + 1) * 4 + 2 +
         Pager::kUserMetaCapacity + 4;
}

}  // namespace

std::string ScrubReport::ToString() const {
  std::string out = "scrub: " + std::to_string(extents_scanned) +
                    " extents (" + std::to_string(reachable_extents) +
                    " reachable, " + std::to_string(free_extents) +
                    " free), " + std::to_string(bytes_scanned) + " bytes";
  if (!completed) out += " [cancelled]";
  out += defects.empty()
             ? "; clean\n"
             : "; " + std::to_string(defects.size()) + " defect(s)\n";
  for (const ScrubDefect& d : defects) {
    out += "  ";
    if (d.page.valid()) {
      out += "page block=" + std::to_string(d.page.block) +
             " size_class=" + std::to_string(d.page.size_class) + ": ";
    }
    out += d.error + "\n";
  }
  return out;
}

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pager_(other.pager_),
      id_(other.id_),
      data_(other.data_),
      size_(other.size_) {
  other.pager_ = nullptr;
  other.data_ = nullptr;
  other.size_ = 0;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pager_ = other.pager_;
    id_ = other.id_;
    data_ = other.data_;
    size_ = other.size_;
    other.pager_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void PageHandle::MarkDirty() {
  SEGIDX_DCHECK(valid());
  pager_->MarkFrameDirty(id_.block);
}

void PageHandle::Release() {
  if (pager_ != nullptr) {
    pager_->Unpin(id_.block);
    pager_ = nullptr;
    data_ = nullptr;
    size_ = 0;
  }
}

Pager::Pager(std::unique_ptr<BlockDevice> device, const PagerOptions& options)
    : device_(std::move(device)), options_(options) {
  num_partitions_ = std::clamp<uint32_t>(options_.lru_partitions, 1, 256);
  partition_budget_ =
      std::max<size_t>(1, options_.buffer_pool_bytes / num_partitions_);
  partitions_ = std::make_unique<Partition[]>(num_partitions_);
}

Result<std::unique_ptr<Pager>> Pager::Create(
    std::unique_ptr<BlockDevice> device, const PagerOptions& options) {
  if (options.base_block_size < 256) {
    return InvalidArgumentError("base_block_size must be >= 256");
  }
  if (SlotBytesNeeded(options.max_size_class) > options.base_block_size) {
    return InvalidArgumentError("superblock does not fit in one block");
  }
  std::unique_ptr<Pager> pager(new Pager(std::move(device), options));
  const uint8_t max_sc = options.max_size_class;
  SlotState slot;
  {
    // Single-threaded (the pager is not published yet); locked so the
    // compile-time analysis sees the guarded allocator fields initialized
    // under their capability.
    common::MutexLock lock(&pager->alloc_mu_);
    pager->free_heads_.assign(max_sc + 1, kInvalidBlock);
    pager->pending_free_.assign(max_sc + 1, {});
    pager->run_scrap_.assign(max_sc + 1, {});
    pager->epoch_ = 1;
    pager->active_slot_ = 0;
    pager->next_block_ = 2;
    slot.free_heads = pager->free_heads_;
  }
  slot.epoch = 1;
  slot.next_block = 2;
  slot.max_size_class = max_sc;
  const std::vector<uint8_t> buf = pager->SerializeSlot(slot);
  SEGIDX_RETURN_IF_ERROR(pager->device_->Write(0, buf.data(), buf.size()));
  // Zero the second slot so stale bytes from a recycled device can never
  // parse as a valid checkpoint.
  const std::vector<uint8_t> zero(options.base_block_size, 0);
  SEGIDX_RETURN_IF_ERROR(
      pager->device_->Write(options.base_block_size, zero.data(),
                            zero.size()));

  pager->report_.format_version = kFormatVersionV2;
  pager->report_.active_slot = 0;
  pager->report_.epoch = 1;
  return pager;
}

Result<std::unique_ptr<Pager>> Pager::Open(
    std::unique_ptr<BlockDevice> device, const PagerOptions& options) {
  std::unique_ptr<Pager> pager(new Pager(std::move(device), options));
  SEGIDX_RETURN_IF_ERROR(pager->ReadSuperblock());
  return pager;
}

// Durability is explicit: only Checkpoint() persists state, so dropping a
// pager writes nothing (a v1-era best-effort flush here would overwrite
// blocks the durable checkpoint still references).
Pager::~Pager() = default;

Status Pager::CheckMutable() const {
  if (format_version_ == 1) {
    return FailedPreconditionError(
        "format v1 index files are read-only; recreate the file to write");
  }
  if (degraded()) {
    return UnavailableError(
        "pager is in read-only degraded mode after a hard I/O error");
  }
  return Status::OK();
}

void Pager::EnterDegraded() {
  degraded_.store(true, std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(stats_.degraded)
      .store(1, std::memory_order_relaxed);
}

void Pager::ResetStats() {
  stats_ = StorageStats();
  stats_.degraded = degraded() ? 1 : 0;
  stats_.pages_quarantined =
      quarantine_count_.load(std::memory_order_relaxed);
}

std::vector<uint8_t> Pager::SerializeSlot(const SlotState& state) const {
  const uint32_t bbs = options_.base_block_size;
  std::vector<uint8_t> buf(bbs, 0);
  EncodeU64(buf.data(), kMagicV2);
  EncodeU32(buf.data() + 8, kFormatVersionV2);
  EncodeU32(buf.data() + 12, bbs);
  buf[16] = state.max_size_class;
  EncodeU64(buf.data() + 24, state.epoch);
  EncodeU32(buf.data() + 32, state.next_block);
  EncodeU32(buf.data() + 36, state.log_start);
  EncodeU32(buf.data() + 40, state.log_blocks);
  EncodeU32(buf.data() + 44, state.prev_log_start);
  EncodeU32(buf.data() + 48, state.prev_log_blocks);
  size_t off = kSuperV2Fixed;
  for (uint32_t head : state.free_heads) {
    EncodeU32(buf.data() + off, head);
    off += 4;
  }
  SEGIDX_CHECK_LE(state.user_meta.size(), kUserMetaCapacity);
  EncodeU16(buf.data() + off, static_cast<uint16_t>(state.user_meta.size()));
  off += 2;
  if (!state.user_meta.empty()) {  // .data() may be null when empty.
    std::memcpy(buf.data() + off, state.user_meta.data(),
                state.user_meta.size());
  }
  EncodeU32(buf.data() + bbs - 4, Crc32c(buf.data(), bbs - 4));
  return buf;
}

Status Pager::ParseSlot(const uint8_t* buf, SlotState* out) const {
  const uint32_t bbs = options_.base_block_size;
  if (DecodeU64(buf) != kMagicV2) {
    return CorruptionError("bad magic; not a segment-index file");
  }
  if (DecodeU32(buf + 8) != kFormatVersionV2) {
    return CorruptionError("unsupported format version");
  }
  if (DecodeU32(buf + 12) != bbs) {
    return InvalidArgumentError(
        "base_block_size mismatch between file and options");
  }
  const uint8_t max_sc = buf[16];
  if (SlotBytesNeeded(max_sc) > bbs) {
    return CorruptionError("superblock slot max_size_class out of range");
  }
  if (DecodeU32(buf + bbs - 4) != Crc32c(buf, bbs - 4)) {
    return CorruptionError("superblock slot checksum mismatch");
  }
  out->epoch = DecodeU64(buf + 24);
  out->next_block = DecodeU32(buf + 32);
  out->log_start = DecodeU32(buf + 36);
  out->log_blocks = DecodeU32(buf + 40);
  out->prev_log_start = DecodeU32(buf + 44);
  out->prev_log_blocks = DecodeU32(buf + 48);
  out->max_size_class = max_sc;
  if (out->next_block < 2) {
    return CorruptionError("superblock high-water mark out of range");
  }
  if (static_cast<uint64_t>(out->next_block) * bbs > device_->size()) {
    return CorruptionError("superblock high-water mark past end of device");
  }
  if (out->log_blocks > 0 &&
      (out->log_start < 2 ||
       static_cast<uint64_t>(out->log_start) + out->log_blocks >
           out->next_block)) {
    return CorruptionError("checkpoint journal range out of bounds");
  }
  if (out->prev_log_blocks > 0 &&
      (out->prev_log_start < 2 ||
       static_cast<uint64_t>(out->prev_log_start) + out->prev_log_blocks >
           out->next_block)) {
    return CorruptionError("previous checkpoint journal range out of bounds");
  }
  size_t off = kSuperV2Fixed;
  out->free_heads.assign(max_sc + 1, kInvalidBlock);
  for (uint32_t& head : out->free_heads) {
    head = DecodeU32(buf + off);
    off += 4;
    if (head != kInvalidBlock && (head < 2 || head >= out->next_block)) {
      return CorruptionError("superblock free-list head out of range");
    }
  }
  const uint16_t meta_len = DecodeU16(buf + off);
  off += 2;
  if (meta_len > kUserMetaCapacity) {
    return CorruptionError("user metadata length out of range");
  }
  out->user_meta.assign(buf + off, buf + off + meta_len);
  return Status::OK();
}

Status Pager::ReplayJournal(const SlotState& slot, std::vector<PageId>* scraps,
                            uint64_t* entries, uint64_t* salvaged) {
  *entries = 0;
  *salvaged = 0;
  if (slot.log_blocks == 0) return Status::OK();
  const uint32_t bbs = options_.base_block_size;
  const size_t run_bytes = static_cast<size_t>(slot.log_blocks) * bbs;
  if (run_bytes < kJournalHeader) {
    return CorruptionError("checkpoint journal run too small");
  }
  std::vector<uint8_t> run(run_bytes);
  SEGIDX_RETURN_IF_ERROR(
      device_->Read(BlockOffset(slot.log_start), run_bytes, run.data()));
  if (DecodeU64(run.data()) != kJournalMagic) {
    return CorruptionError("checkpoint journal has bad magic");
  }
  if (DecodeU64(run.data() + 8) != slot.epoch) {
    return CorruptionError("checkpoint journal epoch mismatch");
  }
  const uint32_t entry_count = DecodeU32(run.data() + 16);
  const uint32_t scrap_count = DecodeU32(run.data() + 20);
  const uint64_t payload = DecodeU64(run.data() + 24);
  if (payload > run_bytes - kJournalHeader) {
    return CorruptionError("checkpoint journal payload overruns its run");
  }
  if (DecodeU32(run.data() + 32) !=
      Crc32c(run.data() + kJournalHeader, payload)) {
    return CorruptionError("checkpoint journal checksum mismatch");
  }

  // Parse and bounds-check everything before writing a single byte, so a
  // damaged journal never half-applies.
  struct Apply {
    uint32_t block;
    const uint8_t* data;
    uint32_t length;
  };
  std::vector<Apply> applies;
  applies.reserve(entry_count);
  const uint8_t* p = run.data() + kJournalHeader;
  const uint8_t* const end = p + payload;
  for (uint32_t i = 0; i < entry_count; ++i) {
    if (end - p < 8) {
      return CorruptionError("checkpoint journal entry truncated");
    }
    const uint32_t block = DecodeU32(p);
    const uint32_t length = DecodeU32(p + 4);
    p += 8;
    if (length == 0 || length > static_cast<uint64_t>(end - p)) {
      return CorruptionError("checkpoint journal entry truncated");
    }
    if (block < 2 || BlockOffset(block) + length >
                         static_cast<uint64_t>(slot.next_block) * bbs) {
      return CorruptionError(
          "checkpoint journal entry targets an out-of-range block");
    }
    applies.push_back({block, p, length});
    p += length;
  }
  for (uint32_t i = 0; i < scrap_count; ++i) {
    if (end - p < 8) {
      return CorruptionError("checkpoint journal scrap list truncated");
    }
    const uint32_t block = DecodeU32(p);
    const uint32_t sc = DecodeU32(p + 4);
    p += 8;
    if (sc > slot.max_size_class || block < 2 ||
        static_cast<uint64_t>(block) + (1u << sc) > slot.next_block) {
      return CorruptionError("checkpoint journal scrap extent out of range");
    }
    PageId id;
    id.block = block;
    id.size_class = static_cast<uint8_t>(sc);
    scraps->push_back(id);
  }

  for (const Apply& a : applies) {
    SEGIDX_RETURN_IF_ERROR(
        device_->Write(BlockOffset(a.block), a.data, a.length));
    if (a.length > 4) ++*salvaged;
  }
  *entries = entry_count;
  return Status::OK();
}

void Pager::AdoptSlot(int index, const SlotState& slot,
                      std::vector<PageId> scraps) {
  // Runs during Open() before the pager is shared; locked for the
  // compile-time analysis, same as in Create().
  common::MutexLock lock(&alloc_mu_);
  format_version_ = kFormatVersionV2;
  options_.max_size_class = slot.max_size_class;
  epoch_ = slot.epoch;
  active_slot_ = index;
  next_block_ = slot.next_block;
  free_heads_ = slot.free_heads;
  user_meta_ = slot.user_meta;
  pending_free_.assign(slot.max_size_class + 1, {});
  run_scrap_.assign(slot.max_size_class + 1, {});
  // The winning checkpoint's journal (and the fallback slot's) stay pinned
  // until later checkpoints retire them; only absorbed spill extents are
  // immediately reusable scrap.
  active_log_start_ = slot.log_start;
  active_log_blocks_ = slot.log_blocks;
  fallback_log_start_ = slot.prev_log_start;
  fallback_log_blocks_ = slot.prev_log_blocks;
  for (const PageId& id : scraps) {
    run_scrap_[id.size_class].push_back(id.block);
  }
  report_.format_version = kFormatVersionV2;
  report_.active_slot = index;
  report_.epoch = slot.epoch;
}

Status Pager::OpenLegacyV1(const std::vector<uint8_t>& block0) {
  const uint8_t* buf = block0.data();
  if (DecodeU32(buf + 8) != 1) {
    return CorruptionError("unsupported format version");
  }
  if (DecodeU32(buf + 12) != options_.base_block_size) {
    return InvalidArgumentError(
        "base_block_size mismatch between file and options");
  }
  common::MutexLock lock(&alloc_mu_);  // Open-time only; for the analysis.
  format_version_ = 1;
  options_.max_size_class = buf[16];
  next_block_ = DecodeU32(buf + 24);
  size_t off = kSuperV1Fixed;
  free_heads_.assign(options_.max_size_class + 1, kInvalidBlock);
  for (uint32_t& head : free_heads_) {
    head = DecodeU32(buf + off);
    off += 4;
  }
  const uint16_t meta_len = DecodeU16(buf + off);
  off += 2;
  if (meta_len > kUserMetaCapacity) {
    return CorruptionError("user metadata length out of range");
  }
  user_meta_.assign(buf + off, buf + off + meta_len);
  pending_free_.assign(options_.max_size_class + 1, {});
  run_scrap_.assign(options_.max_size_class + 1, {});
  report_.format_version = 1;
  return Status::OK();
}

Status Pager::ReadSuperblock() {
  const uint32_t bbs = options_.base_block_size;
  if (device_->size() < bbs) {
    return CorruptionError("device too small for superblock");
  }
  std::vector<uint8_t> block0(bbs);
  SEGIDX_RETURN_IF_ERROR(device_->Read(0, bbs, block0.data()));
  if (DecodeU64(block0.data()) == kMagicV1) return OpenLegacyV1(block0);

  SlotState slots[2];
  Status errs[2] = {Status::OK(), Status::OK()};
  errs[0] = ParseSlot(block0.data(), &slots[0]);
  if (device_->size() >= 2ull * bbs) {
    std::vector<uint8_t> block1(bbs);
    errs[1] = device_->Read(bbs, bbs, block1.data());
    if (errs[1].ok()) errs[1] = ParseSlot(block1.data(), &slots[1]);
  } else {
    errs[1] = CorruptionError("device too small for second superblock slot");
  }

  // Try candidates newest-epoch first. A slot whose journal fails
  // validation is as unusable as a torn slot: fall back across it.
  int order[2] = {0, 1};
  if (errs[1].ok() && (!errs[0].ok() || slots[1].epoch > slots[0].epoch)) {
    order[0] = 1;
    order[1] = 0;
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int idx = order[attempt];
    if (!errs[idx].ok()) continue;
    std::vector<PageId> scraps;
    uint64_t applied = 0;
    uint64_t salvaged = 0;
    const Status replay =
        ReplayJournal(slots[idx], &scraps, &applied, &salvaged);
    if (replay.code() == StatusCode::kCorruption) {
      errs[idx] = replay;
      continue;
    }
    SEGIDX_RETURN_IF_ERROR(replay);  // Hard I/O error: do not mask it.
    AdoptSlot(idx, slots[idx], std::move(scraps));
    report_.journal_replayed = applied > 0;
    report_.journal_entries = applied;
    report_.pages_salvaged = salvaged;
    report_.fell_back = !errs[idx ^ 1].ok();
    report_.slot_error[0] = errs[0].ok() ? "" : errs[0].message();
    report_.slot_error[1] = errs[1].ok() ? "" : errs[1].message();
    return Status::OK();
  }

  // Neither slot is usable. Prefer the configuration error (block-size
  // mismatch) over generic corruption so callers get an actionable message.
  for (const Status& err : errs) {
    if (err.code() == StatusCode::kInvalidArgument) return err;
  }
  return CorruptionError("no usable superblock slot (slot 0: " +
                         errs[0].message() + "; slot 1: " + errs[1].message() +
                         ")");
}

std::vector<PageId> Pager::ChopRun(uint32_t start, uint32_t blocks) const {
  std::vector<PageId> out;
  uint32_t cur = start;
  uint32_t left = blocks;
  while (left > 0) {
    uint8_t sc = 0;
    while (sc < options_.max_size_class && (2u << sc) <= left) ++sc;
    PageId id;
    id.block = cur;
    id.size_class = sc;
    out.push_back(id);
    cur += 1u << sc;
    left -= 1u << sc;
  }
  return out;
}

PageHandle Pager::InstallFrame(uint32_t block, uint8_t size_class,
                               std::vector<uint8_t> bytes, bool dirty) {
  Partition& part = PartitionFor(block);
  TrackedMutexLock lock(&part.mu, LockClass::kPagerPartition);
  Frame& frame = part.frames[block];
  SEGIDX_CHECK_EQ(frame.pin_count, 0);
  SEGIDX_CHECK(!frame.in_lru);
  frame.bytes = std::move(bytes);
  frame.size_class = size_class;
  frame.dirty = dirty;
  frame.pin_count = 1;
  frame.in_lru = false;
  part.cached_bytes += frame.bytes.size();
  EnforceCapacityLocked(part);
  PageId id;
  id.block = block;
  id.size_class = size_class;
  return PageHandle(this, id, frame.bytes.data(), frame.bytes.size());
}

Result<PageHandle> Pager::Allocate(uint8_t size_class) {
  if (size_class > options_.max_size_class) {
    return InvalidArgumentError("size class exceeds maximum");
  }
  SEGIDX_RETURN_IF_ERROR(CheckMutable());
  uint32_t block;
  {
    TrackedMutexLock lock(&alloc_mu_, LockClass::kPagerAlloc);
    if (!pending_free_[size_class].empty()) {
      // Extents freed this epoch are reused first, most recent first.
      block = pending_free_[size_class].back();
      pending_free_[size_class].pop_back();
    } else if (free_heads_[size_class] != kInvalidBlock) {
      // Pop the durable free list: the first 4 bytes of a free extent hold
      // the next free extent's first block.
      block = free_heads_[size_class];
      uint8_t link[4];
      SEGIDX_RETURN_IF_ERROR(device_->Read(BlockOffset(block), 4, link));
      free_heads_[size_class] = DecodeU32(link);
    } else if (!run_scrap_[size_class].empty()) {
      block = run_scrap_[size_class].back();
      run_scrap_[size_class].pop_back();
    } else {
      block = next_block_;
      next_block_ += 1u << size_class;
    }
  }
  BumpStat(stats_.pages_allocated);
  return InstallFrame(block, size_class,
                      std::vector<uint8_t>(ExtentBytes(size_class), 0),
                      /*dirty=*/true);
}

Result<PageHandle> Pager::Fetch(PageId id) {
  if (!id.valid() || id.size_class > options_.max_size_class) {
    return InvalidArgumentError("invalid page id");
  }
  BumpStat(stats_.logical_reads);
  // Quarantined pages fail fast without touching the device or the pool.
  // The relaxed count check keeps the common (empty-quarantine) path free
  // of an extra lock.
  if (quarantine_count_.load(std::memory_order_acquire) != 0) {
    TrackedMutexLock qlock(&quarantine_mu_, LockClass::kPagerQuarantine);
    auto qit = quarantine_.find(id.block);
    if (qit != quarantine_.end()) {
      BumpStat(stats_.quarantine_hits);
      return CorruptionError("block " + std::to_string(id.block) +
                             " is quarantined: " + qit->second.reason);
    }
  }
  Partition& part = PartitionFor(id.block);
  {
    TrackedMutexLock lock(&part.mu, LockClass::kPagerPartition);
    auto it = part.frames.find(id.block);
    if (it != part.frames.end()) {
      BumpStat(stats_.cache_hits);
      Frame& frame = it->second;
      SEGIDX_CHECK_EQ(frame.size_class, id.size_class);
      if (frame.in_lru) {
        part.lru.erase(frame.lru_pos);
        frame.in_lru = false;
      }
      ++frame.pin_count;
      return PageHandle(this, id, frame.bytes.data(), frame.bytes.size());
    }

    // Miss: read the extent from the device while holding the partition
    // latch, so a second reader of the same block waits here and then takes
    // the hit path instead of double-reading. An evicted dirty page's
    // current bytes live on its spill extent, not at home.
    BumpStat(stats_.physical_reads);
    uint32_t src_block = id.block;
    {
      TrackedMutexLock alloc_lock(&alloc_mu_, LockClass::kPagerAlloc);
      auto rit = redirects_.find(id.block);
      if (rit != redirects_.end()) src_block = rit->second.block;
    }
    const size_t n = ExtentBytes(id.size_class);
    std::vector<uint8_t> bytes(n);
    SEGIDX_RETURN_IF_ERROR(
        device_->Read(BlockOffset(src_block), n, bytes.data()));
    Frame& frame = part.frames[id.block];
    frame.bytes = std::move(bytes);
    frame.size_class = id.size_class;
    frame.dirty = false;
    frame.pin_count = 1;
    frame.in_lru = false;
    part.cached_bytes += frame.bytes.size();
    EnforceCapacityLocked(part);
    return PageHandle(this, id, frame.bytes.data(), frame.bytes.size());
  }
}

Status Pager::Free(PageId id) {
  if (!id.valid() || id.size_class > options_.max_size_class) {
    return InvalidArgumentError("invalid page id");
  }
  SEGIDX_RETURN_IF_ERROR(CheckMutable());
  {
    Partition& part = PartitionFor(id.block);
    TrackedMutexLock lock(&part.mu, LockClass::kPagerPartition);
    auto it = part.frames.find(id.block);
    if (it != part.frames.end()) {
      Frame& frame = it->second;
      if (frame.pin_count != 0) {
        return FailedPreconditionError("cannot free a pinned page");
      }
      if (frame.in_lru) part.lru.erase(frame.lru_pos);
      part.cached_bytes -= frame.bytes.size();
      part.frames.erase(it);
    }
  }
  // Deferred: the extent joins the durable free list at the next
  // checkpoint. Writing its link now would clobber a block the previous
  // checkpoint may still reference.
  TrackedMutexLock lock(&alloc_mu_, LockClass::kPagerAlloc);
  auto rit = redirects_.find(id.block);
  if (rit != redirects_.end()) {
    run_scrap_[rit->second.size_class].push_back(rit->second.block);
    redirects_.erase(rit);
  }
  pending_free_[id.size_class].push_back(id.block);
  BumpStat(stats_.pages_freed);
  // A freed extent no longer holds the damaged page; lift its quarantine
  // so the recycled extent is fetchable again.
  if (quarantine_count_.load(std::memory_order_relaxed) != 0) {
    TrackedMutexLock qlock(&quarantine_mu_, LockClass::kPagerQuarantine);
    if (quarantine_.erase(id.block) != 0) {
      quarantine_count_.store(quarantine_.size(),
                              std::memory_order_release);
    }
  }
  return Status::OK();
}

bool Pager::QuarantinePage(PageId id, const std::string& reason) {
  TrackedMutexLock lock(&quarantine_mu_, LockClass::kPagerQuarantine);
  if (quarantine_.count(id.block) != 0) return true;
  if (quarantine_.size() >= kMaxQuarantinedPages) return false;
  quarantine_.emplace(id.block, QuarantinedPage{id, reason});
  quarantine_count_.store(quarantine_.size(), std::memory_order_release);
  BumpStat(stats_.pages_quarantined);
  return true;
}

bool Pager::IsQuarantined(uint32_t block) const {
  if (quarantine_count_.load(std::memory_order_acquire) == 0) return false;
  TrackedMutexLock lock(&quarantine_mu_, LockClass::kPagerQuarantine);
  return quarantine_.count(block) != 0;
}

std::vector<QuarantinedPage> Pager::QuarantinedPages() const {
  TrackedMutexLock lock(&quarantine_mu_, LockClass::kPagerQuarantine);
  std::vector<QuarantinedPage> out;
  out.reserve(quarantine_.size());
  for (const auto& [block, entry] : quarantine_) out.push_back(entry);
  std::sort(out.begin(), out.end(),
            [](const QuarantinedPage& a, const QuarantinedPage& b) {
              return a.page.block < b.page.block;
            });
  return out;
}

void Pager::ClearQuarantine() {
  TrackedMutexLock lock(&quarantine_mu_, LockClass::kPagerQuarantine);
  quarantine_.clear();
  quarantine_count_.store(0, std::memory_order_release);
}

Result<ScrubReport> Pager::Scrub(const ScrubOptions& options) const {
  using Clock = std::chrono::steady_clock;
  ScrubReport report;
  const auto start = Clock::now();
  uint64_t paced = 0;
  // Hold the scan to max_extents_per_second by sleeping up to the time the
  // current extent "should" start at the configured pace.
  auto pace = [&] {
    if (options.max_extents_per_second == 0) return;
    const auto target =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        static_cast<double>(paced) /
                        static_cast<double>(options.max_extents_per_second)));
    const auto now = Clock::now();
    if (target > now) std::this_thread::sleep_for(target - now);
    ++paced;
  };
  auto cancelled = [&] {
    return options.cancel_token != nullptr &&
           options.cancel_token->load(std::memory_order_relaxed);
  };

  // Superblock slots: both must parse (v1 predates slot checksums).
  if (format_version_ == kFormatVersionV2) {
    std::vector<uint8_t> slot_buf(options_.base_block_size);
    for (int slot = 0; slot < 2; ++slot) {
      Status st = device_->Read(
          static_cast<uint64_t>(slot) * options_.base_block_size,
          slot_buf.size(), slot_buf.data());
      if (st.ok()) {
        SlotState state;
        st = ParseSlot(slot_buf.data(), &state);
      }
      report.bytes_scanned += slot_buf.size();
      if (!st.ok()) {
        ++report.structure_errors;
        report.defects.push_back(
            {PageId{}, "superblock slot " + std::to_string(slot) + ": " +
                           st.ToString()});
      }
    }
  }

  // Free and otherwise-unreachable extents: a readability pass. Node-page
  // CRC verification for reachable extents happens in the tree-walking
  // scrub layered on top (core::IntervalIndex::Scrub).
  SEGIDX_ASSIGN_OR_RETURN(std::vector<PageId> free_extents, FreeExtents());
  std::vector<uint8_t> buf;
  for (const PageId& id : free_extents) {
    if (cancelled()) {
      report.completed = false;
      return report;
    }
    pace();
    ++report.extents_scanned;
    ++report.free_extents;
    const size_t n = ExtentBytes(id.size_class);
    buf.resize(n);
    const Status st = device_->Read(BlockOffset(id.block), n, buf.data());
    if (!st.ok()) {
      report.defects.push_back(
          {id, "unreadable free extent: " + st.ToString()});
    } else {
      report.bytes_scanned += n;
    }
  }
  return report;
}

Status Pager::Checkpoint() {
  SEGIDX_RETURN_IF_ERROR(CheckMutable());
  const uint32_t bbs = options_.base_block_size;

  struct Entry {
    uint32_t block;
    std::vector<uint8_t> bytes;
  };

  // Phase 1: snapshot every dirty pooled page. No writer runs concurrently
  // (single-writer contract), so the copies stay current for the rest of
  // the checkpoint; readers may still evict these frames, but a spill
  // carries the same bytes.
  std::vector<Entry> page_entries;
  std::vector<uint32_t> snapshotted;
  std::unordered_set<uint32_t> dirty_set;
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    Partition& part = partitions_[p];
    TrackedMutexLock lock(&part.mu, LockClass::kPagerPartition);
    for (auto& [block, frame] : part.frames) {
      if (!frame.dirty) continue;
      page_entries.push_back({block, frame.bytes});
      snapshotted.push_back(block);
      dirty_set.insert(block);
    }
  }

  // Phase 2 (alloc latch): absorb spilled pages, thread this epoch's frees
  // into the new free lists, and reserve the journal run at the top of the
  // allocated range. Any spill racing in after this point lands above
  // `slot.next_block` and is invisible to the durable state.
  std::vector<Entry> spill_entries;
  std::vector<std::pair<uint32_t, uint32_t>> links;  // block -> next free.
  std::vector<PageId> scraps;
  std::unordered_set<uint32_t> scrapped_blocks;
  SlotState slot;
  int slot_index;
  {
    TrackedMutexLock lock(&alloc_mu_, LockClass::kPagerAlloc);
    for (const auto& [home, spill] : redirects_) {
      if (dirty_set.count(home) == 0) {
        // The spill extent holds the only current copy; journal it home.
        std::vector<uint8_t> bytes(ExtentBytes(spill.size_class));
        SEGIDX_RETURN_IF_ERROR(device_->Read(BlockOffset(spill.block),
                                             bytes.size(), bytes.data()));
        spill_entries.push_back({home, std::move(bytes)});
      }
      scraps.push_back({spill.block, spill.size_class});
      scrapped_blocks.insert(spill.block);
    }
    slot.free_heads = free_heads_;
    // The fallback slot's journal run retires now: after this checkpoint
    // commits, the on-disk slots are {E, E-1}, so the run that backed E-2
    // is unreferenced and its link writes (phase 5) clobber nothing a
    // recovery could still need.
    std::vector<std::vector<uint32_t>> retired(free_heads_.size());
    for (const PageId& id : ChopRun(fallback_log_start_, fallback_log_blocks_)) {
      retired[id.size_class].push_back(id.block);
    }
    for (size_t sc = 0; sc < free_heads_.size(); ++sc) {
      // Retired journal first, scrap next, user frees last, so the most
      // recently freed extent ends up at the list head (LIFO order
      // survives reopen).
      for (uint32_t b : retired[sc]) {
        links.emplace_back(b, slot.free_heads[sc]);
        slot.free_heads[sc] = b;
      }
      for (uint32_t b : run_scrap_[sc]) {
        links.emplace_back(b, slot.free_heads[sc]);
        slot.free_heads[sc] = b;
      }
      for (uint32_t b : pending_free_[sc]) {
        links.emplace_back(b, slot.free_heads[sc]);
        slot.free_heads[sc] = b;
      }
    }
    uint64_t payload = 0;
    for (const Entry& e : page_entries) payload += 8 + e.bytes.size();
    for (const Entry& e : spill_entries) payload += 8 + e.bytes.size();
    payload += links.size() * 12;
    payload += scraps.size() * 8;
    if (payload > 0) {
      const uint64_t total = kJournalHeader + payload;
      slot.log_blocks = static_cast<uint32_t>((total + bbs - 1) / bbs);
      slot.log_start = next_block_;
      next_block_ += slot.log_blocks;
    }
    slot.epoch = epoch_ + 1;
    slot.next_block = next_block_;
    slot.max_size_class = options_.max_size_class;
    slot.user_meta = user_meta_;
    // The outgoing active journal becomes this slot's fallback run; it
    // must survive untouched until checkpoint E+1 retires it, because the
    // other slot (epoch E) still replays it on recovery.
    slot.prev_log_start = active_log_start_;
    slot.prev_log_blocks = active_log_blocks_;
    slot_index = active_slot_ ^ 1;
  }

  // Phase 3: write and sync the journal. Until the slot below lands, these
  // blocks are unreferenced — a crash here costs nothing.
  if (slot.log_blocks > 0) {
    std::vector<uint8_t> run(static_cast<size_t>(slot.log_blocks) * bbs, 0);
    EncodeU64(run.data(), kJournalMagic);
    EncodeU64(run.data() + 8, slot.epoch);
    EncodeU32(run.data() + 16,
              static_cast<uint32_t>(page_entries.size() +
                                    spill_entries.size() + links.size()));
    EncodeU32(run.data() + 20, static_cast<uint32_t>(scraps.size()));
    uint8_t* p = run.data() + kJournalHeader;
    const auto put_entry = [&p](uint32_t block, const uint8_t* data,
                                uint32_t length) {
      EncodeU32(p, block);
      EncodeU32(p + 4, length);
      std::memcpy(p + 8, data, length);
      p += 8 + length;
    };
    for (const Entry& e : page_entries) {
      put_entry(e.block, e.bytes.data(), static_cast<uint32_t>(e.bytes.size()));
    }
    for (const Entry& e : spill_entries) {
      put_entry(e.block, e.bytes.data(), static_cast<uint32_t>(e.bytes.size()));
    }
    for (const auto& [block, next] : links) {
      uint8_t link[4];
      EncodeU32(link, next);
      put_entry(block, link, 4);
    }
    for (const PageId& s : scraps) {
      EncodeU32(p, s.block);
      EncodeU32(p + 4, s.size_class);
      p += 8;
    }
    const uint64_t payload =
        static_cast<uint64_t>(p - (run.data() + kJournalHeader));
    EncodeU64(run.data() + 24, payload);
    EncodeU32(run.data() + 32, Crc32c(run.data() + kJournalHeader, payload));
    Status st = device_->Write(BlockOffset(slot.log_start), run.data(),
                               run.size());
    if (st.ok()) st = device_->Sync();
    if (!st.ok()) {
      EnterDegraded();
      return st;
    }
  }

  // Phase 4: publish the inactive slot. Once this sync returns, the new
  // epoch is the one Open() recovers.
  {
    const std::vector<uint8_t> buf = SerializeSlot(slot);
    Status st = device_->Write(static_cast<uint64_t>(slot_index) * bbs,
                               buf.data(), buf.size());
    if (st.ok()) st = device_->Sync();
    if (!st.ok()) {
      EnterDegraded();
      return st;
    }
  }
  BumpStat(stats_.checkpoints);

  // Commit the new durable state in memory.
  {
    TrackedMutexLock lock(&alloc_mu_, LockClass::kPagerAlloc);
    epoch_ = slot.epoch;
    active_slot_ = slot_index;
    free_heads_ = slot.free_heads;
    for (auto& v : pending_free_) v.clear();
    for (auto& v : run_scrap_) v.clear();
    for (const PageId& id : scraps) {
      run_scrap_[id.size_class].push_back(id.block);
    }
    // Rotate the protected journal runs: the run we just wrote is active,
    // the previous active run backs the fallback slot for one more epoch.
    fallback_log_start_ = active_log_start_;
    fallback_log_blocks_ = active_log_blocks_;
    active_log_start_ = slot.log_start;
    active_log_blocks_ = slot.log_blocks;
  }

  // Phase 5: apply the journaled changes to their home locations. A crash
  // anywhere in here is fine — Open() replays the journal — so no final
  // sync. Page images go first so that once redirects drop, a pool miss
  // finds current bytes at home.
  for (const Entry& e : page_entries) {
    const Status st =
        device_->Write(BlockOffset(e.block), e.bytes.data(), e.bytes.size());
    if (!st.ok()) {
      EnterDegraded();
      return st;
    }
    BumpStat(stats_.physical_writes);
  }
  for (const Entry& e : spill_entries) {
    const Status st =
        device_->Write(BlockOffset(e.block), e.bytes.data(), e.bytes.size());
    if (!st.ok()) {
      EnterDegraded();
      return st;
    }
    BumpStat(stats_.physical_writes);
  }
  for (uint32_t block : snapshotted) {
    Partition& part = PartitionFor(block);
    TrackedMutexLock lock(&part.mu, LockClass::kPagerPartition);
    auto it = part.frames.find(block);
    if (it != part.frames.end()) it->second.dirty = false;
  }
  {
    // Retire every redirect: home blocks are current again. Spills created
    // while this checkpoint ran (concurrent evictions) hold the same bytes
    // we just applied, so dropping them is safe too; their extents rejoin
    // the allocator as scrap.
    TrackedMutexLock lock(&alloc_mu_, LockClass::kPagerAlloc);
    for (const auto& [home, spill] : redirects_) {
      if (scrapped_blocks.count(spill.block) == 0) {
        run_scrap_[spill.size_class].push_back(spill.block);
      }
    }
    redirects_.clear();
  }
  // Free-list links last: their targets are dead extents no reader touches.
  for (const auto& [block, next] : links) {
    uint8_t link[4];
    EncodeU32(link, next);
    const Status st = device_->Write(BlockOffset(block), link, 4);
    if (!st.ok()) {
      EnterDegraded();
      return st;
    }
  }
  return Status::OK();
}

Status Pager::SetUserMeta(const uint8_t* data, size_t n) {
  if (n > kUserMetaCapacity) {
    return InvalidArgumentError("user metadata too large");
  }
  SEGIDX_RETURN_IF_ERROR(CheckMutable());
  TrackedMutexLock lock(&alloc_mu_, LockClass::kPagerAlloc);
  user_meta_.assign(data, data + n);
  return Status::OK();
}

// Manual Lock/Unlock (not a scoped guard): the sequencer drops commit_mu_
// around commit_fn — the one rule the class comment promises — and the
// lockdep hooks bracket each held region so the validator sees the same
// thing.
Status Pager::GroupCommit(const std::function<Status()>& commit_fn) {
  check::LockdepOnLock(LockClass::kPagerCommit, &commit_mu_);
  commit_mu_.Lock();
  BumpStat(stats_.commit_requests);
  const uint64_t my_seq = ++commit_seq_;
  for (;;) {
    if (durable_seq_ >= my_seq) {
      // A batch that started after this request arrived has completed; its
      // commit covered every mutation visible at our call.
      const Status st = last_commit_status_;
      commit_mu_.Unlock();
      check::LockdepOnUnlock(LockClass::kPagerCommit, &commit_mu_);
      return st;
    }
    if (!committing_) break;  // Become the next leader.
    commit_cv_.Wait(&commit_mu_);
  }
  committing_ = true;
  if (options_.group_commit_window_us > 0) {
    // Linger for the full window so near-simultaneous requesters join this
    // batch instead of forcing their own fsync round. Waiting (rather than
    // sleeping unlocked) releases commit_mu_, which joiners need to
    // enqueue; spurious wakeups before the deadline just wait again.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(options_.group_commit_window_us);
    while (commit_cv_.WaitUntil(&commit_mu_, deadline)) {
    }
  }
  const uint64_t batch_end = commit_seq_;  // Requests this batch covers.
  commit_mu_.Unlock();
  check::LockdepOnUnlock(LockClass::kPagerCommit, &commit_mu_);
  const Status st = commit_fn();
  check::LockdepOnLock(LockClass::kPagerCommit, &commit_mu_);
  commit_mu_.Lock();
  BumpStat(stats_.commit_batches);
  durable_seq_ = batch_end;
  last_commit_status_ = st;
  committing_ = false;
  commit_mu_.Unlock();
  check::LockdepOnUnlock(LockClass::kPagerCommit, &commit_mu_);
  commit_cv_.NotifyAll();
  return st;
}

Result<std::vector<PageId>> Pager::FreeExtents() const {
  TrackedMutexLock lock(&alloc_mu_, LockClass::kPagerAlloc);
  std::vector<PageId> out;
  const uint32_t first_data = format_version_ == 1 ? 1 : 2;
  for (uint8_t sc = 0; sc < free_heads_.size(); ++sc) {
    uint32_t block = free_heads_[sc];
    // A well-formed list holds at most next_block_ extents; anything longer
    // is a cycle.
    uint64_t steps = 0;
    while (block != kInvalidBlock) {
      if (block < first_data || block >= next_block_) {
        return CorruptionError("free list of size class " +
                               std::to_string(sc) +
                               " references out-of-range block " +
                               std::to_string(block));
      }
      if (++steps > next_block_) {
        return CorruptionError("free list of size class " +
                               std::to_string(sc) + " is cyclic");
      }
      PageId id;
      id.block = block;
      id.size_class = sc;
      out.push_back(id);
      uint8_t link[4];
      SEGIDX_RETURN_IF_ERROR(device_->Read(BlockOffset(block), 4, link));
      block = DecodeU32(link);
    }
  }
  // Extents freed or retired this epoch (not yet threaded on the device)
  // and live spill extents also hold no reachable home page.
  for (uint8_t sc = 0; sc < free_heads_.size(); ++sc) {
    for (uint32_t block : pending_free_[sc]) {
      PageId id;
      id.block = block;
      id.size_class = sc;
      out.push_back(id);
    }
    for (uint32_t block : run_scrap_[sc]) {
      PageId id;
      id.block = block;
      id.size_class = sc;
      out.push_back(id);
    }
  }
  for (const auto& [home, spill] : redirects_) {
    PageId id;
    id.block = spill.block;
    id.size_class = spill.size_class;
    out.push_back(id);
  }
  // The two protected journal runs hold no pages either; they rejoin the
  // device free lists one and two checkpoints from now.
  for (const PageId& id : ChopRun(active_log_start_, active_log_blocks_)) {
    out.push_back(id);
  }
  for (const PageId& id : ChopRun(fallback_log_start_, fallback_log_blocks_)) {
    out.push_back(id);
  }
  return out;
}

size_t Pager::pinned_frames() const {
  size_t n = 0;
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    const Partition& part = partitions_[p];
    TrackedMutexLock lock(&part.mu, LockClass::kPagerPartition);
    for (const auto& [block, frame] : part.frames) {
      if (frame.pin_count > 0) ++n;
    }
  }
  return n;
}

size_t Pager::cached_frames() const {
  size_t n = 0;
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    const Partition& part = partitions_[p];
    TrackedMutexLock lock(&part.mu, LockClass::kPagerPartition);
    n += part.frames.size();
  }
  return n;
}

size_t Pager::cached_bytes() const {
  size_t n = 0;
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    const Partition& part = partitions_[p];
    TrackedMutexLock lock(&part.mu, LockClass::kPagerPartition);
    n += part.cached_bytes;
  }
  return n;
}

Status Pager::SpillFrame(uint32_t home, const Frame& frame) {
  uint32_t spill_block;
  {
    TrackedMutexLock lock(&alloc_mu_, LockClass::kPagerAlloc);
    auto it = redirects_.find(home);
    if (it != redirects_.end()) {
      // Re-evicting a page that already has a spill extent: overwrite it
      // in place. No reader can be reading the spill concurrently, because
      // while the frame is pooled every Fetch() of this page is a hit.
      spill_block = it->second.block;
    } else {
      spill_block = next_block_;
      next_block_ += 1u << frame.size_class;
      redirects_.emplace(home, SpillSlot{spill_block, frame.size_class});
    }
  }
  const Status st = device_->Write(BlockOffset(spill_block),
                                   frame.bytes.data(), frame.bytes.size());
  if (st.ok()) BumpStat(stats_.physical_writes);
  return st;
}

void Pager::EnforceCapacityLocked(Partition& part) {
  auto it = part.lru.end();
  while (it != part.lru.begin() && part.cached_bytes > partition_budget_) {
    --it;
    const uint32_t victim = *it;
    auto fit = part.frames.find(victim);
    SEGIDX_CHECK(fit != part.frames.end());
    Frame& frame = fit->second;
    SEGIDX_CHECK_EQ(frame.pin_count, 0);
    if (frame.dirty) {
      if (format_version_ == 1) {
        // Legacy v1 write-back (v1 files are read-only above this layer,
        // so this path only covers defensive edge cases).
        if (!device_
                 ->Write(BlockOffset(victim), frame.bytes.data(),
                         frame.bytes.size())
                 .ok()) {
          EnterDegraded();
          continue;
        }
        BumpStat(stats_.physical_writes);
      } else if (degraded()) {
        // Nowhere safe to persist the bytes; keep the frame cached.
        continue;
      } else if (const Status st = SpillFrame(victim, frame); !st.ok()) {
        EnterDegraded();
        continue;
      } else {
        BumpStat(stats_.spills);
      }
    }
    it = part.lru.erase(it);
    part.cached_bytes -= frame.bytes.size();
    part.frames.erase(fit);
    BumpStat(stats_.evictions);
  }
}

void Pager::Unpin(uint32_t block) {
  Partition& part = PartitionFor(block);
  TrackedMutexLock lock(&part.mu, LockClass::kPagerPartition);
  auto it = part.frames.find(block);
  SEGIDX_CHECK(it != part.frames.end());
  Frame& frame = it->second;
  SEGIDX_CHECK_GT(frame.pin_count, 0);
  if (--frame.pin_count == 0) {
    part.lru.push_front(block);
    frame.lru_pos = part.lru.begin();
    frame.in_lru = true;
    // Opportunistically shrink back to capacity now that a frame became
    // evictable.
    EnforceCapacityLocked(part);
  }
}

void Pager::MarkFrameDirty(uint32_t block) {
  Partition& part = PartitionFor(block);
  TrackedMutexLock lock(&part.mu, LockClass::kPagerPartition);
  auto it = part.frames.find(block);
  SEGIDX_CHECK(it != part.frames.end());
  it->second.dirty = true;
}

}  // namespace segidx::storage
