// Deterministic I/O fault injection for crash-safety and resilience testing.
//
// FaultInjectingBlockDevice decorates any BlockDevice with a scriptable
// failure schedule: fail the Nth write/sync/read with a chosen errno-style
// message, fail every Kth read (a flaky cable — transient, later retries
// of the same offset succeed), corrupt reads overlapping chosen byte
// ranges (per-page damage targeting: the inner bytes stay intact, the
// reader sees them flipped), delay every read (a slow device, for
// deadline benchmarks), tear a write after K bytes, simulate a process
// crash at a given op index (everything after the fault fails), go
// read-only, or report a full disk (ENOSPC-style kResourceExhausted).
// Counters expose how many ops of each kind reached the device
// so tests can assert fault points precisely and torture harnesses can
// enumerate them.
//
// The op index used by CrashAtOp() counts writes and syncs in issue order
// (reads are not durability events). Index k is 0-based: CrashAtOp(0)
// fails the very first write or sync.

#ifndef SEGIDX_STORAGE_FAULT_INJECTION_H_
#define SEGIDX_STORAGE_FAULT_INJECTION_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/block_device.h"

namespace segidx::storage {

class FaultInjectingBlockDevice : public BlockDevice {
 public:
  struct Counters {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t syncs = 0;
    uint64_t faults_fired = 0;
    // Combined write+sync count (the crash-point index space).
    uint64_t ops() const { return writes + syncs; }
  };

  explicit FaultInjectingBlockDevice(std::unique_ptr<BlockDevice> inner)
      : inner_(std::move(inner)) {}

  // --- schedule -----------------------------------------------------------

  // Fails the nth write from now (0-based). With `sticky`, every later
  // write fails too. `tear_bytes` > 0 writes that prefix through to the
  // inner device before failing — a torn write.
  void FailNthWrite(uint64_t n, bool sticky = false, size_t tear_bytes = 0);
  // Fails the nth sync from now (0-based; sticky fails all later syncs).
  void FailNthSync(uint64_t n, bool sticky = false);
  // Fails the nth read from now (0-based; sticky fails all later reads).
  void FailNthRead(uint64_t n, bool sticky = false);

  // Flaky reads: every kth read from now fails (k >= 1; the k-1 reads in
  // between succeed). Unlike FailNthRead(sticky), the failure is
  // transient — retrying the same offset later succeeds. 0 disables.
  void FailEveryKthRead(uint64_t k);

  // Per-page corruption targeting: reads overlapping [offset, offset+n)
  // see those bytes inverted (the inner device is NOT modified, so the
  // same image can be observed clean by dropping the range). Ranges
  // accumulate until ClearCorruptRanges().
  void CorruptRange(uint64_t offset, uint64_t n);
  void ClearCorruptRanges();

  // Injects latency into every read (a slow or contended device); zero
  // disables. Used by the resilience benchmark to make deadlines bite.
  void SetReadDelay(std::chrono::microseconds delay);

  // Simulates a crash at combined write+sync op index `n` (counted from
  // construction): that op fails — a write first tears `tear_bytes` bytes
  // through — and every subsequent write and sync fails as well, as if the
  // process had died at that instant. Reads keep working so the caller can
  // observe the surviving image.
  void CrashAtOp(uint64_t n, size_t tear_bytes = 0);

  // Rejects all writes/syncs with an I/O error (no tear) until unset.
  void SetReadOnly(bool read_only);

  // Rejects all writes/syncs/truncates with kResourceExhausted (ENOSPC)
  // until unset — the disk is full, not broken: reads keep working, and
  // the data already on the device is intact.
  void SetDiskFull(bool disk_full);

  // Clears every scheduled fault (counters keep running).
  void ClearFaults();

  // --- observation --------------------------------------------------------

  Counters counters() const;
  bool crashed() const;
  BlockDevice* inner() { return inner_.get(); }

  // --- BlockDevice --------------------------------------------------------

  Status Read(uint64_t offset, size_t n, uint8_t* out) const override;
  Status Write(uint64_t offset, const uint8_t* data, size_t n) override;
  Status Sync() override;
  uint64_t size() const override { return inner_->size(); }
  Status Truncate(uint64_t new_size) override;

 private:
  static constexpr uint64_t kNever = ~uint64_t{0};

  std::unique_ptr<BlockDevice> inner_;

  mutable std::mutex mu_;
  mutable Counters counters_;
  uint64_t fail_write_at_ = kNever;
  bool write_sticky_ = false;
  size_t write_tear_bytes_ = 0;
  uint64_t fail_sync_at_ = kNever;
  bool sync_sticky_ = false;
  uint64_t fail_read_at_ = kNever;
  bool read_sticky_ = false;
  uint64_t fail_read_every_ = 0;  // 0 = off; else every kth read fails.
  std::vector<std::pair<uint64_t, uint64_t>> corrupt_ranges_;  // [off, off+n)
  std::chrono::microseconds read_delay_{0};
  uint64_t crash_at_op_ = kNever;
  size_t crash_tear_bytes_ = 0;
  bool dead_ = false;
  bool read_only_ = false;
  bool disk_full_ = false;
};

}  // namespace segidx::storage

#endif  // SEGIDX_STORAGE_FAULT_INJECTION_H_
