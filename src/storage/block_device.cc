#include "storage/block_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

namespace segidx::storage {

namespace {

// strerror_r comes in two flavors (glibc returns char*, POSIX returns
// int); overload on the result so both build without feature-test macros.
// std::strerror itself is not thread-safe, and this layer is called from
// concurrent readers.
inline const char* StrerrorResult(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}
inline const char* StrerrorResult(const char* msg, const char* /*buf*/) {
  return msg;
}

Status ErrnoToStatus(const char* op, const std::string& detail) {
  const int err = errno;
  char buf[128] = "unknown error";
  const char* msg = StrerrorResult(strerror_r(err, buf, sizeof(buf)), buf);
  const std::string text = std::string(op) + " failed: " + msg +
                           (detail.empty() ? "" : " (" + detail + ")");
  // A full disk (or an exhausted quota) is an environmental condition the
  // operator can fix, not device damage: surface it as kResourceExhausted
  // so callers can distinguish "free some space" from "replace the disk".
  // The pager still degrades to read-only either way — a failed write is
  // a failed write — but the status code names the cure.
  if (err == ENOSPC || err == EDQUOT) return ResourceExhaustedError(text);
  return IoError(text);
}

// EINTR/EAGAIN are transient: retry with capped exponential backoff instead
// of surfacing them as hard I/O errors (which would needlessly flip the
// pager into degraded mode). Returns false once the retry budget is spent.
constexpr int kMaxTransientRetries = 8;

bool BackoffTransient(int err, int attempt) {
  if (err != EINTR && err != EAGAIN) return false;
  if (attempt >= kMaxTransientRetries) return false;
  if (err == EAGAIN) {
    // 100us, 200us, ... capped at 5ms; EINTR retries immediately.
    const auto delay = std::chrono::microseconds(
        std::min<int64_t>(100ll << attempt, 5000));
    std::this_thread::sleep_for(delay);
  }
  return true;
}

// Durably records a newly created file's directory entry.
Status SyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return ErrnoToStatus("open", dir);
  const int rc = ::fsync(dfd);
  const int saved_errno = errno;
  ::close(dfd);
  if (rc != 0) {
    errno = saved_errno;
    return ErrnoToStatus("fsync", dir);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(
    const std::string& path, bool create) {
  bool created = false;
  int fd = -1;
  if (create) {
    // O_EXCL first so we know whether the directory entry is new and needs
    // its parent fsync'd for the file to survive a crash of this process.
    fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
    if (fd >= 0) {
      created = true;
    } else if (errno != EEXIST) {
      return ErrnoToStatus("open", path);
    }
  }
  if (fd < 0) {
    fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0) return ErrnoToStatus("open", path);
  }
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    const Status st = ErrnoToStatus("lseek", path);
    ::close(fd);
    return st;
  }
  if (created) {
    const Status st = SyncParentDirectory(path);
    if (!st.ok()) {
      ::close(fd);
      return st;
    }
  }
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(fd, static_cast<uint64_t>(end)));
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileBlockDevice::Read(uint64_t offset, size_t n, uint8_t* out) const {
  if (offset + n > size_.load(std::memory_order_acquire)) {
    return OutOfRangeError("read past end of device");
  }
  size_t done = 0;
  int transient = 0;
  while (done < n) {
    const ssize_t r = ::pread(fd_, out + done, n - done,
                              static_cast<off_t>(offset + done));
    if (r < 0) {
      if (BackoffTransient(errno, transient++)) continue;
      return ErrnoToStatus("pread", "");
    }
    if (r == 0) return IoError("short read");
    done += static_cast<size_t>(r);
    transient = 0;
  }
  return Status::OK();
}

Status FileBlockDevice::Write(uint64_t offset, const uint8_t* data,
                              size_t n) {
  size_t done = 0;
  int transient = 0;
  while (done < n) {
    const ssize_t w = ::pwrite(fd_, data + done, n - done,
                               static_cast<off_t>(offset + done));
    if (w < 0) {
      if (BackoffTransient(errno, transient++)) continue;
      return ErrnoToStatus("pwrite", "");
    }
    done += static_cast<size_t>(w);
    transient = 0;
  }
  // Advance the high-water mark; concurrent writers race benignly, so CAS
  // up to the max.
  uint64_t cur = size_.load(std::memory_order_relaxed);
  while (offset + n > cur &&
         !size_.compare_exchange_weak(cur, offset + n,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Status FileBlockDevice::Sync() {
  int transient = 0;
  while (::fsync(fd_) != 0) {
    if (!BackoffTransient(errno, transient++)) {
      return ErrnoToStatus("fsync", "");
    }
  }
  return Status::OK();
}

Status FileBlockDevice::Truncate(uint64_t new_size) {
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return ErrnoToStatus("ftruncate", "");
  }
  size_.store(new_size, std::memory_order_release);
  return Status::OK();
}

Status MemoryBlockDevice::Read(uint64_t offset, size_t n,
                               uint8_t* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (offset + n > bytes_.size()) {
    return OutOfRangeError("read past end of device");
  }
  std::memcpy(out, bytes_.data() + offset, n);
  return Status::OK();
}

Status MemoryBlockDevice::Write(uint64_t offset, const uint8_t* data,
                                size_t n) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (offset + n > bytes_.size()) bytes_.resize(offset + n, 0);
  std::memcpy(bytes_.data() + offset, data, n);
  return Status::OK();
}

Status MemoryBlockDevice::Truncate(uint64_t new_size) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  bytes_.resize(new_size, 0);
  return Status::OK();
}

}  // namespace segidx::storage
