#include "storage/block_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>

namespace segidx::storage {

namespace {

Status ErrnoToStatus(const char* op, const std::string& detail) {
  return IoError(std::string(op) + " failed: " + std::strerror(errno) +
                 (detail.empty() ? "" : " (" + detail + ")"));
}

}  // namespace

Result<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(
    const std::string& path, bool create) {
  int flags = O_RDWR;
  if (create) flags |= O_CREAT;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return ErrnoToStatus("open", path);
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return ErrnoToStatus("lseek", path);
  }
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(fd, static_cast<uint64_t>(end)));
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileBlockDevice::Read(uint64_t offset, size_t n, uint8_t* out) const {
  if (offset + n > size_.load(std::memory_order_acquire)) {
    return OutOfRangeError("read past end of device");
  }
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(fd_, out + done, n - done,
                              static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoToStatus("pread", "");
    }
    if (r == 0) return IoError("short read");
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status FileBlockDevice::Write(uint64_t offset, const uint8_t* data,
                              size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::pwrite(fd_, data + done, n - done,
                               static_cast<off_t>(offset + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoToStatus("pwrite", "");
    }
    done += static_cast<size_t>(w);
  }
  // Advance the high-water mark; concurrent writers race benignly, so CAS
  // up to the max.
  uint64_t cur = size_.load(std::memory_order_relaxed);
  while (offset + n > cur &&
         !size_.compare_exchange_weak(cur, offset + n,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Status FileBlockDevice::Sync() {
  if (::fsync(fd_) != 0) return ErrnoToStatus("fsync", "");
  return Status::OK();
}

Status FileBlockDevice::Truncate(uint64_t new_size) {
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return ErrnoToStatus("ftruncate", "");
  }
  size_.store(new_size, std::memory_order_release);
  return Status::OK();
}

Status MemoryBlockDevice::Read(uint64_t offset, size_t n,
                               uint8_t* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (offset + n > bytes_.size()) {
    return OutOfRangeError("read past end of device");
  }
  std::memcpy(out, bytes_.data() + offset, n);
  return Status::OK();
}

Status MemoryBlockDevice::Write(uint64_t offset, const uint8_t* data,
                                size_t n) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (offset + n > bytes_.size()) bytes_.resize(offset + n, 0);
  std::memcpy(bytes_.data() + offset, data, n);
  return Status::OK();
}

Status MemoryBlockDevice::Truncate(uint64_t new_size) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  bytes_.resize(new_size, 0);
  return Status::OK();
}

}  // namespace segidx::storage
