#include "storage/fault_injection.h"

#include <algorithm>
#include <thread>

namespace segidx::storage {

void FaultInjectingBlockDevice::FailNthWrite(uint64_t n, bool sticky,
                                             size_t tear_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_write_at_ = counters_.writes + n;
  write_sticky_ = sticky;
  write_tear_bytes_ = tear_bytes;
}

void FaultInjectingBlockDevice::FailNthSync(uint64_t n, bool sticky) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_sync_at_ = counters_.syncs + n;
  sync_sticky_ = sticky;
}

void FaultInjectingBlockDevice::FailNthRead(uint64_t n, bool sticky) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_read_at_ = counters_.reads + n;
  read_sticky_ = sticky;
}

void FaultInjectingBlockDevice::FailEveryKthRead(uint64_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_read_every_ = k;
}

void FaultInjectingBlockDevice::CorruptRange(uint64_t offset, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  corrupt_ranges_.emplace_back(offset, offset + n);
}

void FaultInjectingBlockDevice::ClearCorruptRanges() {
  std::lock_guard<std::mutex> lock(mu_);
  corrupt_ranges_.clear();
}

void FaultInjectingBlockDevice::SetReadDelay(
    std::chrono::microseconds delay) {
  std::lock_guard<std::mutex> lock(mu_);
  read_delay_ = delay;
}

void FaultInjectingBlockDevice::CrashAtOp(uint64_t n, size_t tear_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_op_ = n;
  crash_tear_bytes_ = tear_bytes;
}

void FaultInjectingBlockDevice::SetReadOnly(bool read_only) {
  std::lock_guard<std::mutex> lock(mu_);
  read_only_ = read_only;
}

void FaultInjectingBlockDevice::SetDiskFull(bool disk_full) {
  std::lock_guard<std::mutex> lock(mu_);
  disk_full_ = disk_full;
}

void FaultInjectingBlockDevice::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  fail_write_at_ = kNever;
  fail_sync_at_ = kNever;
  fail_read_at_ = kNever;
  fail_read_every_ = 0;
  corrupt_ranges_.clear();
  read_delay_ = std::chrono::microseconds{0};
  crash_at_op_ = kNever;
  dead_ = false;
  read_only_ = false;
  disk_full_ = false;
}

FaultInjectingBlockDevice::Counters FaultInjectingBlockDevice::counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

bool FaultInjectingBlockDevice::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

Status FaultInjectingBlockDevice::Read(uint64_t offset, size_t n,
                                       uint8_t* out) const {
  std::chrono::microseconds delay{0};
  std::vector<std::pair<uint64_t, uint64_t>> corrupt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t index = counters_.reads++;
    if (fail_read_at_ != kNever &&
        (index == fail_read_at_ ||
         (read_sticky_ && index > fail_read_at_))) {
      ++counters_.faults_fired;
      return IoError("injected read fault (EIO) at read #" +
                     std::to_string(index));
    }
    if (fail_read_every_ != 0 && (index + 1) % fail_read_every_ == 0) {
      ++counters_.faults_fired;
      return IoError("injected flaky read fault (EIO) at read #" +
                     std::to_string(index));
    }
    delay = read_delay_;
    corrupt = corrupt_ranges_;
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  SEGIDX_RETURN_IF_ERROR(inner_->Read(offset, n, out));
  for (const auto& [lo, hi] : corrupt) {
    const uint64_t begin = std::max(lo, offset);
    const uint64_t end = std::min(hi, offset + n);
    for (uint64_t i = begin; i < end; ++i) out[i - offset] ^= 0xff;
  }
  return Status::OK();
}

Status FaultInjectingBlockDevice::Write(uint64_t offset, const uint8_t* data,
                                        size_t n) {
  size_t tear = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t op = counters_.ops();
    const uint64_t index = counters_.writes++;
    if (dead_) {
      ++counters_.faults_fired;
      return IoError("injected fault: device lost after crash point");
    }
    if (read_only_) {
      ++counters_.faults_fired;
      return IoError("injected fault: device is read-only (EROFS)");
    }
    if (disk_full_) {
      ++counters_.faults_fired;
      return ResourceExhaustedError("injected fault: disk full (ENOSPC)");
    }
    if (op == crash_at_op_) {
      dead_ = true;
      ++counters_.faults_fired;
      tear = std::min(crash_tear_bytes_, n);
      if (tear == 0) {
        return IoError("injected crash (EIO) at op #" + std::to_string(op));
      }
    } else if (fail_write_at_ != kNever &&
               (index == fail_write_at_ ||
                (write_sticky_ && index > fail_write_at_))) {
      ++counters_.faults_fired;
      tear = std::min(write_tear_bytes_, n);
      if (tear == 0) {
        return IoError("injected write fault (EIO) at write #" +
                       std::to_string(index));
      }
    } else {
      tear = n;  // No fault: full write.
    }
  }
  // Inner write happens outside the lock (inner devices synchronize
  // themselves); `tear < n` means the scheduled fault fires after the
  // prefix lands — a torn write.
  const Status st = inner_->Write(offset, data, tear);
  if (!st.ok()) return st;
  if (tear < n) {
    return IoError("injected torn write (EIO) after " +
                   std::to_string(tear) + " bytes");
  }
  return Status::OK();
}

Status FaultInjectingBlockDevice::Sync() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t op = counters_.ops();
    const uint64_t index = counters_.syncs++;
    if (dead_) {
      ++counters_.faults_fired;
      return IoError("injected fault: device lost after crash point");
    }
    if (read_only_) {
      ++counters_.faults_fired;
      return IoError("injected fault: device is read-only (EROFS)");
    }
    if (disk_full_) {
      ++counters_.faults_fired;
      return ResourceExhaustedError("injected fault: disk full (ENOSPC)");
    }
    if (op == crash_at_op_) {
      dead_ = true;
      ++counters_.faults_fired;
      return IoError("injected crash (EIO) at op #" + std::to_string(op));
    }
    if (fail_sync_at_ != kNever &&
        (index == fail_sync_at_ || (sync_sticky_ && index > fail_sync_at_))) {
      ++counters_.faults_fired;
      return IoError("injected sync fault (EIO) at sync #" +
                     std::to_string(index));
    }
  }
  return inner_->Sync();
}

Status FaultInjectingBlockDevice::Truncate(uint64_t new_size) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_ || read_only_) {
      ++counters_.faults_fired;
      return IoError("injected fault: truncate rejected");
    }
    if (disk_full_) {
      ++counters_.faults_fired;
      return ResourceExhaustedError("injected fault: disk full (ENOSPC)");
    }
  }
  return inner_->Truncate(new_size);
}

}  // namespace segidx::storage
