// Paged storage manager: extent allocation plus a pinning buffer pool,
// with crash-atomic checkpoints (format v2).
//
// The paper's indexes use *variable node sizes*: leaf nodes are one base
// block (1 KB in the experiments) and the node size doubles at each level
// above the leaves (Section 2.1.2 / Section 5). The pager therefore manages
// extents — contiguous runs of 2^size_class base blocks — rather than fixed
// pages. Freed extents go on a per-size-class free list threaded through the
// first bytes of each free extent and anchored in the superblock, so index
// files can be closed and reopened.
//
// Crash safety (format v2) rests on one invariant: between two
// checkpoints, no block that the newest durable superblock slot can reach
// (pages, free-list links, the slot itself, its journal) is ever written.
// Everything the pager writes mid-epoch — evicted dirty pages, the next
// checkpoint's journal — goes to freshly allocated blocks past the durable
// high-water mark. Concretely:
//
//   * Two superblock slots live in blocks 0 and 1, each carrying a
//     monotonically increasing checkpoint epoch and a CRC32C. Checkpoint()
//     always writes the slot the newest durable state does NOT occupy, so a
//     torn slot write leaves the previous slot (and everything it
//     references) untouched.
//   * Checkpoint() first serializes every change of the epoch — dirty page
//     images, spilled pages being re-homed, free-list link updates — into a
//     contiguous *journal* run of fresh blocks, syncs it, then writes and
//     syncs the inactive slot (which records the run). Only after the slot
//     is durable are the changes applied to their home locations; Open()
//     replays the winning slot's journal, so those home writes need no
//     final sync and may tear freely.
//   * Evicting a dirty frame *spills* it to a fresh extent and records a
//     home→spill redirect instead of overwriting the home block; Fetch()
//     follows redirects. Free() only defers the extent to an in-memory
//     pending list; links are threaded at the next checkpoint.
//
// Format v1 files (single superblock, no journal) still open, read-only.
//
// A hard I/O *write* failure (after the block device's own retries) flips
// the pager into degraded read-only mode: Fetch() keeps serving, while
// Allocate/Free/SetUserMeta/Checkpoint return kUnavailable and eviction
// skips dirty frames. Transient EINTR/EAGAIN never reaches this layer —
// FileBlockDevice retries those with capped backoff.
//
// Thread-safety contract (multi-writer; see docs/CONCURRENCY.md):
//
//   * Fetch(), PageHandle pin/unpin/MarkDirty, and the stats counters are
//     safe to call from any number of threads concurrently. The buffer pool
//     is sharded into `PagerOptions::lru_partitions` latch-protected
//     partitions keyed by base block, so concurrent readers on different
//     pages rarely contend; stats counters are updated with relaxed
//     atomics.
//   * Allocate(), Free(), and SetUserMeta() serialize on the allocator
//     latch (alloc_mu_) and are safe from concurrent threads. Freeing or
//     reallocating a page another thread is concurrently fetching remains
//     a logical race the caller must prevent — the tree layer guarantees
//     this with node latches plus its phase gate (a page is freed only
//     while its parent's latch pins the only path to it).
//   * Checkpoint() requires *mutation quiescence*: no concurrent
//     Allocate/Free/WriteNode-style page mutation while it snapshots dirty
//     frames (concurrent Fetch of stable pages is fine). Callers get this
//     by entering the tree layer's exclusive gate; use GroupCommit() to
//     let N threads amortize one such checkpoint + fsync.
//   * GroupCommit(fn) is safe from any number of threads: callers batch
//     behind one leader, the leader runs `fn` (typically meta save +
//     Checkpoint) once, and every batched caller observes its result.
//   * Lock order: a partition latch may be held while taking alloc_mu_
//     (the spill and redirect-lookup paths do), never the reverse. The
//     group-commit latch (commit_mu_) is never held while running `fn`.
//   * ResetStats() and FreeExtents() require external quiescence.
//
// LRU is maintained per partition; with `lru_partitions = 1` the pager
// degenerates to the exact global-LRU behavior of the original
// single-threaded design (tests that assert eviction order use this).

#ifndef SEGIDX_STORAGE_PAGER_H_
#define SEGIDX_STORAGE_PAGER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/lock_order.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/block_device.h"

namespace segidx::storage {

inline constexpr uint32_t kInvalidBlock = 0xffffffffu;

// Address of an extent: its first base block and its size class
// (the extent spans 1 << size_class base blocks).
struct PageId {
  uint32_t block = kInvalidBlock;
  uint8_t size_class = 0;

  bool valid() const { return block != kInvalidBlock; }

  // Packs into 8 bytes for on-page child pointers. Bits 40-63 are
  // reserved and always zero.
  uint64_t Encode() const {
    return static_cast<uint64_t>(block) |
           static_cast<uint64_t>(size_class) << 32;
  }
  // Non-zero reserved bits mean the pointer bytes are corrupt; Decode maps
  // such values to an invalid PageId so the damage surfaces as a clean
  // error (Fetch rejects invalid ids) instead of silently aliasing an
  // arbitrary (block, size_class).
  static PageId Decode(uint64_t v) {
    PageId id;
    if ((v >> 40) != 0) return id;
    id.block = static_cast<uint32_t>(v);
    id.size_class = static_cast<uint8_t>(v >> 32);
    return id;
  }

  friend bool operator==(const PageId& a, const PageId& b) {
    return a.block == b.block && a.size_class == b.size_class;
  }
};

// Counters are plain integers mutated exclusively through relaxed
// std::atomic_ref, so concurrent readers (Fetch from many threads) never
// race. Reading a consistent snapshot requires quiescence, which every
// caller (tests, benchmarks after joining workers) already has.
struct StorageStats {
  uint64_t logical_reads = 0;    // Fetch() calls (= node accesses).
  uint64_t cache_hits = 0;
  uint64_t physical_reads = 0;   // device reads caused by cache misses.
  uint64_t physical_writes = 0;  // device writes (spills + checkpoints).
  uint64_t evictions = 0;
  uint64_t pages_allocated = 0;
  uint64_t pages_freed = 0;
  uint64_t spills = 0;           // dirty evictions redirected to spill blocks.
  uint64_t checkpoints = 0;      // completed (durable) checkpoints.
  uint64_t degraded = 0;         // 1 once a hard write error forced
                                 // read-only mode (survives ResetStats).
  uint64_t pages_quarantined = 0;  // Extents ever quarantined after a
                                   // checksum/decode failure (survives
                                   // ResetStats, like degraded).
  uint64_t quarantine_hits = 0;    // Fetches rejected on quarantined pages.
  uint64_t commit_requests = 0;    // GroupCommit() calls.
  uint64_t commit_batches = 0;     // Leader executions (fsync rounds); the
                                   // ratio requests/batches is the group
                                   // commit's amortization factor.
};

struct PagerOptions {
  uint32_t base_block_size = 1024;
  // Largest supported extent: 1 << max_size_class base blocks.
  uint8_t max_size_class = 7;
  // Buffer pool capacity. The pool may transiently exceed this when every
  // frame is pinned.
  size_t buffer_pool_bytes = 8u << 20;
  // Buffer-pool partitions (frame map + LRU list + byte budget each),
  // keyed by base block. More partitions means less latch contention for
  // concurrent readers; 1 restores exact global LRU. Clamped to [1, 256].
  uint32_t lru_partitions = 8;
  // GroupCommit(): how long a commit leader lingers (microseconds) for
  // more requesters to join its batch before running the commit function.
  // 0 commits immediately — concurrent requesters that arrived while a
  // previous batch was in flight still coalesce; the window only adds
  // latency to *absorb* near-simultaneous requesters into fewer fsyncs.
  uint32_t group_commit_window_us = 200;
};

// What Open() found: which superblock slot won, whether the other one was
// unusable (a torn checkpoint we fell back across), and how much of the
// winning checkpoint's journal was replayed.
struct RecoveryReport {
  uint32_t format_version = 0;
  int active_slot = -1;       // Winning slot index (v2 files only).
  uint64_t epoch = 0;         // Epoch of the recovered state.
  // True when exactly one slot was usable — i.e. the file carries evidence
  // of an interrupted checkpoint (or external damage) that Open() recovered
  // across.
  bool fell_back = false;
  bool journal_replayed = false;
  uint64_t journal_entries = 0;  // Total journal entries re-applied.
  uint64_t pages_salvaged = 0;   // Full page images among those entries.
  // Per-slot parse failure, empty when the slot was valid.
  std::array<std::string, 2> slot_error;
};

// One quarantined extent: a page whose bytes failed their checksum or
// decode. The pager keeps serving every other page; readers treat the
// subtree rooted here as missing (partial results) until the page is
// freed, rebuilt, or the quarantine is cleared.
struct QuarantinedPage {
  PageId page;
  std::string reason;
};

// Controls for the online media scrub (Pager::Scrub and the tree-walking
// core::IntervalIndex::Scrub built on top of it).
struct ScrubOptions {
  // Rate limit: extents verified per second (0 = full speed). The scrub
  // sleeps between extents to hold this pace, so it can run against a
  // serving index without starving foreground reads.
  uint64_t max_extents_per_second = 0;
  // Cooperative cancellation: checked between extents; a fired token stops
  // the scan early with ScrubReport::completed = false.
  const std::atomic<bool>* cancel_token = nullptr;
  // Register every damaged node page in the pager's quarantine set so
  // subsequent searches skip it (core-layer scrub only).
  bool quarantine_damaged = true;
};

// One damaged extent (or superblock slot) found by a scrub.
struct ScrubDefect {
  PageId page;        // invalid() for superblock-slot defects.
  std::string error;
};

struct ScrubReport {
  uint64_t extents_scanned = 0;    // Total extents examined.
  uint64_t reachable_extents = 0;  // Tree node pages CRC-verified.
  uint64_t free_extents = 0;       // Free/unreachable extents read-verified.
  uint64_t bytes_scanned = 0;
  uint64_t structure_errors = 0;   // Light structure pass findings.
  bool completed = true;           // false when cancelled mid-scan.
  std::vector<ScrubDefect> defects;

  bool clean() const { return defects.empty(); }
  // Human-readable multi-line summary (one line per defect).
  std::string ToString() const;
};

class Pager;

// RAII pin on a cached extent. While alive, data() is stable and the frame
// cannot be evicted. Call MarkDirty() after mutating the bytes.
class PageHandle {
 public:
  PageHandle() = default;
  ~PageHandle();

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;

  bool valid() const { return pager_ != nullptr; }
  PageId id() const { return id_; }
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  void MarkDirty();

  // Drops the pin early (idempotent).
  void Release();

 private:
  friend class Pager;
  PageHandle(Pager* pager, PageId id, uint8_t* data, size_t size)
      : pager_(pager), id_(id), data_(data), size_(size) {}

  Pager* pager_ = nullptr;
  PageId id_;
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

// See file comment.
class Pager {
 public:
  // Maximum bytes of tree-private metadata stored in the superblock.
  static constexpr size_t kUserMetaCapacity = 512;

  // Formats a fresh device (writes both superblock slots).
  static Result<std::unique_ptr<Pager>> Create(
      std::unique_ptr<BlockDevice> device, const PagerOptions& options);

  // Opens an existing formatted device; validates both superblock slots
  // against `options.base_block_size`, adopts the newest usable checkpoint,
  // and replays its journal. recovery_report() describes what happened.
  static Result<std::unique_ptr<Pager>> Open(
      std::unique_ptr<BlockDevice> device, const PagerOptions& options);

  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  // Allocates a zeroed extent of the given size class; returns it pinned
  // and marked dirty. Single-writer path.
  Result<PageHandle> Allocate(uint8_t size_class);

  // Fetches an extent, reading it from the device on a cache miss. Safe for
  // concurrent callers.
  Result<PageHandle> Fetch(PageId id);

  // Returns an extent to the free list. The extent must be unpinned. The
  // free becomes durable at the next Checkpoint(). Single-writer path.
  Status Free(PageId id);

  // Makes the current state durable: journals every change of this epoch,
  // syncs, publishes the inactive superblock slot, syncs again, then
  // applies the changes home. A crash at any point leaves the file
  // openable at either this or the previous checkpoint. The pager remains
  // usable. Requires mutation quiescence (see the thread-safety contract).
  Status Checkpoint();

  // Group commit: durability requests from N threads coalesce into one
  // execution of `commit_fn` (which typically saves metadata and calls
  // Checkpoint(), under whatever quiescence the caller's layer provides).
  // The calling thread returns once a batch *covering its request* has
  // completed — i.e. a leader ran commit_fn after this call arrived — with
  // that batch's status. Requests that arrive while a batch is in flight
  // wait for the next batch; the leader of a batch holds no pager locks
  // while commit_fn runs. `PagerOptions::group_commit_window_us` bounds
  // how long a leader waits for joiners before committing.
  Status GroupCommit(const std::function<Status()>& commit_fn);

  // Tree-private metadata persisted in the superblock at Checkpoint().
  const std::vector<uint8_t>& user_meta() const { return user_meta_; }
  Status SetUserMeta(const uint8_t* data, size_t n);

  uint32_t base_block_size() const { return options_.base_block_size; }
  uint8_t max_size_class() const { return options_.max_size_class; }
  size_t ExtentBytes(uint8_t size_class) const {
    return static_cast<size_t>(options_.base_block_size) << size_class;
  }
  // Total base blocks ever allocated (file high-water mark), for size
  // accounting in experiments.
  uint64_t allocated_blocks() const { return next_block_; }

  // 2 for v2 files (dual superblock slots), 1 for legacy v1 files.
  uint32_t format_version() const { return format_version_; }
  // First block available to data extents (after the superblock slot(s)).
  uint32_t first_data_block() const { return format_version_ == 1 ? 1 : 2; }
  // Epoch of the newest durable checkpoint (v2; 0 for v1 files).
  uint64_t epoch() const { return epoch_; }
  // True once a hard write error flipped the pager read-only.
  bool degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }
  // What Open()/Create() found; stable for the pager's lifetime.
  const RecoveryReport& recovery_report() const { return report_; }

  const StorageStats& stats() const { return stats_; }
  void ResetStats();

  // Number of currently pinned / cached frames across every partition
  // (for tests / leak detection).
  size_t pinned_frames() const;
  size_t cached_frames() const;
  // Bytes currently held by the buffer pool across every partition.
  size_t cached_bytes() const;

  // --- per-page quarantine -----------------------------------------------
  //
  // Whole-pager degraded mode is reserved for hard device *write* errors;
  // a single page whose bytes fail their checksum or decode is instead
  // quarantined individually, keeping every other page readable and the
  // pager writable. Quarantined pages fail Fetch() fast with kCorruption
  // (no device traffic), so a search can skip the dead subtree and report
  // a partial result instead of re-reading known-bad media.

  // Bound on the quarantine set: damage wider than this is no longer
  // "a few bad pages" and should fail hard (run salvage instead).
  static constexpr size_t kMaxQuarantinedPages = 256;

  // Quarantines one extent. Returns false when the set is full and the
  // page was not added (the caller should propagate the original error).
  // Quarantining an already-quarantined block is a no-op returning true.
  // Thread-safe.
  bool QuarantinePage(PageId id, const std::string& reason);
  bool IsQuarantined(uint32_t block) const;
  size_t quarantined_count() const {
    return quarantine_count_.load(std::memory_order_relaxed);
  }
  // Snapshot of the live quarantine set (for scrub and status surfaces).
  std::vector<QuarantinedPage> QuarantinedPages() const;
  // Forgets every quarantined page (after the damage was repaired or the
  // subtree rebuilt). Freeing a quarantined extent also removes its entry.
  void ClearQuarantine();

  // Storage-level online scrub: verifies both superblock slots parse and
  // reads every free/unreachable extent (FreeExtents) back from the
  // device, surfacing media errors before a query trips over them. Node
  // pages are NOT checksum-verified here — the pager does not know the
  // page format; core::IntervalIndex::Scrub layers the reachable-page CRC
  // walk on top and merges both into one report. Rate-limited and
  // cancellable per ScrubOptions; safe to run concurrently with readers.
  Result<ScrubReport> Scrub(const ScrubOptions& options = {}) const;

  // Every extent not holding a reachable home page: the durable
  // per-size-class lists (walked on the device), frees pending the next
  // checkpoint, retired journal/spill scrap awaiting re-threading, and live
  // spill extents. Used by the structure checker's page-accounting pass:
  // reachable extents + these must exactly tile the allocated block range.
  // Fails with kCorruption on a cyclic or out-of-range device list.
  Result<std::vector<PageId>> FreeExtents() const;

 private:
  struct Frame {
    std::vector<uint8_t> bytes;
    uint8_t size_class = 0;
    int pin_count = 0;
    bool dirty = false;
    // Position in the partition's lru when pin_count == 0.
    std::list<uint32_t>::iterator lru_pos;
    bool in_lru = false;
  };

  // One buffer-pool shard: its own latch, frame map, LRU list (front =
  // most recent), and byte budget. Frames live in the node-based map, so
  // pointers handed out while pinned stay valid across rehashes.
  struct Partition {
    mutable common::Mutex mu;
    std::unordered_map<uint32_t, Frame> frames GUARDED_BY(mu);
    std::list<uint32_t> lru GUARDED_BY(mu);
    size_t cached_bytes GUARDED_BY(mu) = 0;
  };

  // Where an evicted dirty page's bytes currently live.
  struct SpillSlot {
    uint32_t block = kInvalidBlock;
    uint8_t size_class = 0;
  };

  // Decoded superblock slot.
  struct SlotState {
    uint64_t epoch = 0;
    uint32_t next_block = 0;
    uint32_t log_start = 0;
    uint32_t log_blocks = 0;
    // The previous checkpoint's journal run (the other slot's journal).
    // Keeping it recorded — and unrecycled for one extra epoch — means the
    // fallback slot's journal is never overwritten while that slot is still
    // on disk, so even external destruction of the newest slot leaves a
    // fully replayable older checkpoint.
    uint32_t prev_log_start = 0;
    uint32_t prev_log_blocks = 0;
    uint8_t max_size_class = 0;
    std::vector<uint32_t> free_heads;
    std::vector<uint8_t> user_meta;
  };

  friend class PageHandle;

  Pager(std::unique_ptr<BlockDevice> device, const PagerOptions& options);

  // kFailedPrecondition for v1 files, kUnavailable when degraded.
  Status CheckMutable() const;
  void EnterDegraded();

  Status ReadSuperblock();
  Status OpenLegacyV1(const std::vector<uint8_t>& block0);
  Status ParseSlot(const uint8_t* buf, SlotState* out) const;
  // Serializes a slot image for `state` into a base-block-sized buffer.
  std::vector<uint8_t> SerializeSlot(const SlotState& state) const;
  // Validates the journal recorded by `slot` fully in memory, then applies
  // it to the device. Validation failures leave the device untouched (the
  // caller can fall back to the other slot); only apply-time write errors
  // mutate anything. Touches no member state besides the device.
  Status ReplayJournal(const SlotState& slot, std::vector<PageId>* scraps,
                       uint64_t* entries, uint64_t* salvaged);
  // Adopts `slot` as the live state (free lists, epoch, scrap).
  void AdoptSlot(int index, const SlotState& slot,
                 std::vector<PageId> scraps);

  // Greedily splits the block run [start, start + blocks) into extents no
  // larger than the maximum size class.
  std::vector<PageId> ChopRun(uint32_t start, uint32_t blocks) const;

  uint64_t BlockOffset(uint32_t block) const {
    return static_cast<uint64_t>(block) * options_.base_block_size;
  }

  Partition& PartitionFor(uint32_t block) {
    return partitions_[block % num_partitions_];
  }

  // Installs a frame for `block` (must not be cached), evicting unpinned
  // LRU frames of its partition past the per-partition budget. Returns the
  // pinned handle.
  PageHandle InstallFrame(uint32_t block, uint8_t size_class,
                          std::vector<uint8_t> bytes, bool dirty);

  // Evicts unpinned LRU frames until the partition is within its budget.
  // Dirty victims spill (v2); frames that cannot be persisted (degraded
  // mode) are skipped. Caller holds part.mu.
  void EnforceCapacityLocked(Partition& part) REQUIRES(part.mu);
  // Writes `frame`'s bytes to its spill extent (allocating one on first
  // spill). Caller holds part.mu (inexpressible to the compile-time
  // analysis — `part` is not a parameter); takes alloc_mu_ internally,
  // which is the one legal partition-then-alloc nesting.
  Status SpillFrame(uint32_t home, const Frame& frame);
  void Unpin(uint32_t block);
  void MarkFrameDirty(uint32_t block);

  std::unique_ptr<BlockDevice> device_;
  PagerOptions options_;
  StorageStats stats_;

  uint32_t num_partitions_ = 1;
  size_t partition_budget_ = 0;  // buffer_pool_bytes / num_partitions_.
  std::unique_ptr<Partition[]> partitions_;

  // Quarantined extents keyed by first block. quarantine_count_ mirrors
  // the map size so the Fetch fast path can skip the lock when empty.
  mutable common::Mutex quarantine_mu_;
  std::atomic<size_t> quarantine_count_{0};
  std::unordered_map<uint32_t, QuarantinedPage> quarantine_
      GUARDED_BY(quarantine_mu_);

  uint32_t format_version_ = 2;
  std::atomic<bool> degraded_{false};
  RecoveryReport report_;

  // Allocation state, guarded by alloc_mu_. free_heads_ mirrors the newest
  // durable slot's on-device lists; pending_free_ holds extents freed this
  // epoch (preferred by Allocate, LIFO); run_scrap_ holds retired journal
  // runs and absorbed spill extents (reused only after the device lists);
  // redirects_ maps home blocks of spilled dirty pages to their current
  // spill extents.
  // epoch_, next_block_ and user_meta_ are read by lock-free const
  // accessors whose callers have external quiescence (documented above),
  // so they stay unannotated; the remaining allocator state is
  // GUARDED_BY(alloc_mu_).
  mutable common::Mutex alloc_mu_;
  uint64_t epoch_ = 0;
  int active_slot_ GUARDED_BY(alloc_mu_) = 0;
  uint32_t next_block_ = 2;  // Blocks 0 and 1 are the superblock slots.
  // Journal runs of the newest durable checkpoint and of the one before it.
  // Both are off limits to the allocator: the active run is what Open()
  // replays after a crash, and the fallback run keeps the *other* slot
  // replayable should the newest slot be destroyed. A retired run rejoins
  // the free lists two checkpoints after it was written.
  uint32_t active_log_start_ GUARDED_BY(alloc_mu_) = 0;
  uint32_t active_log_blocks_ GUARDED_BY(alloc_mu_) = 0;
  uint32_t fallback_log_start_ GUARDED_BY(alloc_mu_) = 0;
  uint32_t fallback_log_blocks_ GUARDED_BY(alloc_mu_) = 0;
  std::vector<uint32_t> free_heads_ GUARDED_BY(alloc_mu_);
  std::vector<std::vector<uint32_t>> pending_free_ GUARDED_BY(alloc_mu_);
  std::vector<std::vector<uint32_t>> run_scrap_ GUARDED_BY(alloc_mu_);
  std::unordered_map<uint32_t, SpillSlot> redirects_ GUARDED_BY(alloc_mu_);
  std::vector<uint8_t> user_meta_;

  // Group-commit sequencer (GroupCommit). commit_requests_ numbers every
  // request; durable_requests_ is the highest request number covered by a
  // completed batch. A requester is done once durable_requests_ passes its
  // own number; the first waiter to find no batch in flight becomes the
  // leader. commit_mu_ is never held while the leader runs commit_fn.
  common::Mutex commit_mu_;
  common::CondVar commit_cv_;
  // Requests issued.
  uint64_t commit_seq_ GUARDED_BY(commit_mu_) = 0;
  // Requests covered by finished batches.
  uint64_t durable_seq_ GUARDED_BY(commit_mu_) = 0;
  // A leader is running commit_fn.
  bool committing_ GUARDED_BY(commit_mu_) = false;
  // Result of the newest finished batch.
  Status last_commit_status_ GUARDED_BY(commit_mu_);
};

}  // namespace segidx::storage

#endif  // SEGIDX_STORAGE_PAGER_H_
