// Paged storage manager: extent allocation plus a pinning buffer pool.
//
// The paper's indexes use *variable node sizes*: leaf nodes are one base
// block (1 KB in the experiments) and the node size doubles at each level
// above the leaves (Section 2.1.2 / Section 5). The pager therefore manages
// extents — contiguous runs of 2^size_class base blocks — rather than fixed
// pages. Freed extents go on a per-size-class free list threaded through the
// first bytes of each free extent and anchored in the superblock, so index
// files can be closed and reopened.
//
// Thread-safety contract (single-writer / multi-reader):
//
//   * Fetch(), PageHandle pin/unpin/MarkDirty, and the stats counters are
//     safe to call from any number of threads concurrently. The buffer pool
//     is sharded into `PagerOptions::lru_partitions` latch-protected
//     partitions keyed by base block, so concurrent readers on different
//     pages rarely contend; stats counters are updated with relaxed
//     atomics.
//   * Allocate(), Free(), SetUserMeta(), Flush(), and Checkpoint() mutate
//     allocator state under one exclusive latch and must not run
//     concurrently with each other. They MAY run concurrently with readers
//     of *other* pages (eviction write-back already does), but freeing or
//     reallocating a page some reader is concurrently fetching is a logical
//     race the caller must prevent — the tree layer guarantees this by
//     never exposing unreachable pages to readers.
//   * ResetStats() and FreeExtents() require external quiescence.
//
// LRU is maintained per partition; with `lru_partitions = 1` the pager
// degenerates to the exact global-LRU behavior of the original
// single-threaded design (tests that assert eviction order use this).

#ifndef SEGIDX_STORAGE_PAGER_H_
#define SEGIDX_STORAGE_PAGER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/block_device.h"

namespace segidx::storage {

inline constexpr uint32_t kInvalidBlock = 0xffffffffu;

// Address of an extent: its first base block and its size class
// (the extent spans 1 << size_class base blocks).
struct PageId {
  uint32_t block = kInvalidBlock;
  uint8_t size_class = 0;

  bool valid() const { return block != kInvalidBlock; }

  // Packs into 8 bytes for on-page child pointers. Bits 40-63 are
  // reserved and always zero.
  uint64_t Encode() const {
    return static_cast<uint64_t>(block) |
           static_cast<uint64_t>(size_class) << 32;
  }
  // Non-zero reserved bits mean the pointer bytes are corrupt; Decode maps
  // such values to an invalid PageId so the damage surfaces as a clean
  // error (Fetch rejects invalid ids) instead of silently aliasing an
  // arbitrary (block, size_class).
  static PageId Decode(uint64_t v) {
    PageId id;
    if ((v >> 40) != 0) return id;
    id.block = static_cast<uint32_t>(v);
    id.size_class = static_cast<uint8_t>(v >> 32);
    return id;
  }

  friend bool operator==(const PageId& a, const PageId& b) {
    return a.block == b.block && a.size_class == b.size_class;
  }
};

// Counters are plain integers mutated exclusively through relaxed
// std::atomic_ref, so concurrent readers (Fetch from many threads) never
// race. Reading a consistent snapshot requires quiescence, which every
// caller (tests, benchmarks after joining workers) already has.
struct StorageStats {
  uint64_t logical_reads = 0;    // Fetch() calls (= node accesses).
  uint64_t cache_hits = 0;
  uint64_t physical_reads = 0;   // device reads caused by cache misses.
  uint64_t physical_writes = 0;  // device writes (eviction + flush).
  uint64_t evictions = 0;
  uint64_t pages_allocated = 0;
  uint64_t pages_freed = 0;
};

struct PagerOptions {
  uint32_t base_block_size = 1024;
  // Largest supported extent: 1 << max_size_class base blocks.
  uint8_t max_size_class = 7;
  // Buffer pool capacity. The pool may transiently exceed this when every
  // frame is pinned.
  size_t buffer_pool_bytes = 8u << 20;
  // Buffer-pool partitions (frame map + LRU list + byte budget each),
  // keyed by base block. More partitions means less latch contention for
  // concurrent readers; 1 restores exact global LRU. Clamped to [1, 256].
  uint32_t lru_partitions = 8;
};

class Pager;

// RAII pin on a cached extent. While alive, data() is stable and the frame
// cannot be evicted. Call MarkDirty() after mutating the bytes.
class PageHandle {
 public:
  PageHandle() = default;
  ~PageHandle();

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;

  bool valid() const { return pager_ != nullptr; }
  PageId id() const { return id_; }
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  void MarkDirty();

  // Drops the pin early (idempotent).
  void Release();

 private:
  friend class Pager;
  PageHandle(Pager* pager, PageId id, uint8_t* data, size_t size)
      : pager_(pager), id_(id), data_(data), size_(size) {}

  Pager* pager_ = nullptr;
  PageId id_;
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

// See file comment.
class Pager {
 public:
  // Maximum bytes of tree-private metadata stored in the superblock.
  static constexpr size_t kUserMetaCapacity = 512;

  // Formats a fresh device (writes the superblock).
  static Result<std::unique_ptr<Pager>> Create(
      std::unique_ptr<BlockDevice> device, const PagerOptions& options);

  // Opens an existing formatted device; validates the superblock against
  // `options.base_block_size`.
  static Result<std::unique_ptr<Pager>> Open(
      std::unique_ptr<BlockDevice> device, const PagerOptions& options);

  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  // Allocates a zeroed extent of the given size class; returns it pinned
  // and marked dirty. Single-writer path.
  Result<PageHandle> Allocate(uint8_t size_class);

  // Fetches an extent, reading it from the device on a cache miss. Safe for
  // concurrent callers.
  Result<PageHandle> Fetch(PageId id);

  // Returns an extent to the free list. The extent must be unpinned.
  // Single-writer path.
  Status Free(PageId id);

  // Writes back every dirty frame (cache stays populated).
  Status Flush();

  // Flush + superblock write + device sync. The pager remains usable.
  Status Checkpoint();

  // Tree-private metadata persisted in the superblock at Checkpoint().
  const std::vector<uint8_t>& user_meta() const { return user_meta_; }
  Status SetUserMeta(const uint8_t* data, size_t n);

  uint32_t base_block_size() const { return options_.base_block_size; }
  uint8_t max_size_class() const { return options_.max_size_class; }
  size_t ExtentBytes(uint8_t size_class) const {
    return static_cast<size_t>(options_.base_block_size) << size_class;
  }
  // Total base blocks ever allocated (file high-water mark), for size
  // accounting in experiments.
  uint64_t allocated_blocks() const { return next_block_; }

  const StorageStats& stats() const { return stats_; }
  void ResetStats() { stats_ = StorageStats(); }

  // Number of currently pinned / cached frames across every partition
  // (for tests / leak detection).
  size_t pinned_frames() const;
  size_t cached_frames() const;
  // Bytes currently held by the buffer pool across every partition.
  size_t cached_bytes() const;

  // Every extent currently on a free list, by walking the per-size-class
  // lists on the device. Used by the structure checker's page-accounting
  // pass: reachable extents + free extents must exactly tile the allocated
  // block range. Fails with kCorruption on a cyclic or out-of-range list.
  Result<std::vector<PageId>> FreeExtents() const;

 private:
  struct Frame {
    std::vector<uint8_t> bytes;
    uint8_t size_class = 0;
    int pin_count = 0;
    bool dirty = false;
    // Position in the partition's lru when pin_count == 0.
    std::list<uint32_t>::iterator lru_pos;
    bool in_lru = false;
  };

  // One buffer-pool shard: its own latch, frame map, LRU list (front =
  // most recent), and byte budget. Frames live in the node-based map, so
  // pointers handed out while pinned stay valid across rehashes.
  struct Partition {
    mutable std::mutex mu;
    std::unordered_map<uint32_t, Frame> frames;
    std::list<uint32_t> lru;
    size_t cached_bytes = 0;
  };

  friend class PageHandle;

  Pager(std::unique_ptr<BlockDevice> device, const PagerOptions& options);

  Status WriteSuperblock();  // Caller holds alloc_mu_ (or is init-time).
  Status ReadSuperblock();

  uint64_t BlockOffset(uint32_t block) const {
    return static_cast<uint64_t>(block) * options_.base_block_size;
  }

  Partition& PartitionFor(uint32_t block) {
    return partitions_[block % num_partitions_];
  }

  // Installs a frame for `block` (must not be cached), evicting unpinned
  // LRU frames of its partition past the per-partition budget. Returns the
  // pinned handle.
  PageHandle InstallFrame(uint32_t block, uint8_t size_class,
                          std::vector<uint8_t> bytes, bool dirty);

  // Evicts unpinned LRU frames until the partition is within its budget.
  // Caller holds part.mu.
  Status EnforceCapacityLocked(Partition& part);
  void Unpin(uint32_t block);
  void MarkFrameDirty(uint32_t block);

  std::unique_ptr<BlockDevice> device_;
  PagerOptions options_;
  StorageStats stats_;

  uint32_t num_partitions_ = 1;
  size_t partition_budget_ = 0;  // buffer_pool_bytes / num_partitions_.
  std::unique_ptr<Partition[]> partitions_;

  // Allocation state (persisted in the superblock), guarded by alloc_mu_.
  mutable std::mutex alloc_mu_;
  uint32_t next_block_ = 1;  // Block 0 is the superblock.
  std::vector<uint32_t> free_heads_;
  std::vector<uint8_t> user_meta_;
};

}  // namespace segidx::storage

#endif  // SEGIDX_STORAGE_PAGER_H_
