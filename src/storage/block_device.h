// Byte-addressable storage backends for the pager.
//
// FileBlockDevice is the production backend (POSIX pread/pwrite).
// MemoryBlockDevice backs unit tests and fast experiment runs; it behaves
// identically, including explicit size management, so every code path above
// it is exercised the same way.

#ifndef SEGIDX_STORAGE_BLOCK_DEVICE_H_
#define SEGIDX_STORAGE_BLOCK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace segidx::storage {

// Implementations must support concurrent Read() calls, and Read()
// concurrent with Write()/Truncate() of *disjoint* ranges (the pager's
// eviction write-back runs while other partitions serve reads).
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Reads exactly `n` bytes at `offset`. It is an error to read past the
  // current device size.
  virtual Status Read(uint64_t offset, size_t n, uint8_t* out) const = 0;

  // Writes exactly `n` bytes at `offset`, growing the device if needed.
  virtual Status Write(uint64_t offset, const uint8_t* data, size_t n) = 0;

  // Durably flushes previous writes.
  virtual Status Sync() = 0;

  virtual uint64_t size() const = 0;

  // Grows or shrinks the device to `new_size` bytes (new space is zeroed).
  virtual Status Truncate(uint64_t new_size) = 0;
};

// POSIX file backend.
class FileBlockDevice : public BlockDevice {
 public:
  // Opens (or creates, when `create` is true) the file at `path`.
  static Result<std::unique_ptr<FileBlockDevice>> Open(
      const std::string& path, bool create);

  ~FileBlockDevice() override;

  FileBlockDevice(const FileBlockDevice&) = delete;
  FileBlockDevice& operator=(const FileBlockDevice&) = delete;

  Status Read(uint64_t offset, size_t n, uint8_t* out) const override;
  Status Write(uint64_t offset, const uint8_t* data, size_t n) override;
  Status Sync() override;
  uint64_t size() const override {
    return size_.load(std::memory_order_acquire);
  }
  Status Truncate(uint64_t new_size) override;

 private:
  FileBlockDevice(int fd, uint64_t size) : fd_(fd), size_(size) {}

  int fd_;
  // pread/pwrite are themselves thread-safe; only the size high-water mark
  // needs synchronizing.
  std::atomic<uint64_t> size_;
};

// In-memory backend.
class MemoryBlockDevice : public BlockDevice {
 public:
  MemoryBlockDevice() = default;
  // Device pre-loaded with `image` (crash-recovery harnesses clone a device
  // at a fault point and reopen the copy).
  explicit MemoryBlockDevice(std::vector<uint8_t> image)
      : bytes_(std::move(image)) {}

  // Copy of the current contents.
  std::vector<uint8_t> Snapshot() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return bytes_;
  }

  Status Read(uint64_t offset, size_t n, uint8_t* out) const override;
  Status Write(uint64_t offset, const uint8_t* data, size_t n) override;
  Status Sync() override { return Status::OK(); }
  uint64_t size() const override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return bytes_.size();
  }
  Status Truncate(uint64_t new_size) override;

 private:
  // Writes may grow the vector and move its storage, so readers take the
  // shared side of this lock.
  mutable std::shared_mutex mu_;
  std::vector<uint8_t> bytes_;
};

}  // namespace segidx::storage

#endif  // SEGIDX_STORAGE_BLOCK_DEVICE_H_
