// Little-endian fixed-width encoding helpers for on-page serialization.
//
// All node pages, the superblock, and free-list links are encoded with these
// helpers so that index files are byte-identical across platforms (the
// library assumes IEEE-754 doubles, which C++20 guarantees via
// std::numeric_limits<double>::is_iec559 on supported targets).

#ifndef SEGIDX_STORAGE_CODING_H_
#define SEGIDX_STORAGE_CODING_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace segidx::storage {

inline void EncodeU16(uint8_t* dst, uint16_t v) {
  dst[0] = static_cast<uint8_t>(v);
  dst[1] = static_cast<uint8_t>(v >> 8);
}

inline uint16_t DecodeU16(const uint8_t* src) {
  return static_cast<uint16_t>(src[0]) |
         static_cast<uint16_t>(src[1]) << 8;
}

inline void EncodeU32(uint8_t* dst, uint32_t v) {
  dst[0] = static_cast<uint8_t>(v);
  dst[1] = static_cast<uint8_t>(v >> 8);
  dst[2] = static_cast<uint8_t>(v >> 16);
  dst[3] = static_cast<uint8_t>(v >> 24);
}

inline uint32_t DecodeU32(const uint8_t* src) {
  return static_cast<uint32_t>(src[0]) | static_cast<uint32_t>(src[1]) << 8 |
         static_cast<uint32_t>(src[2]) << 16 |
         static_cast<uint32_t>(src[3]) << 24;
}

inline void EncodeU64(uint8_t* dst, uint64_t v) {
  EncodeU32(dst, static_cast<uint32_t>(v));
  EncodeU32(dst + 4, static_cast<uint32_t>(v >> 32));
}

inline uint64_t DecodeU64(const uint8_t* src) {
  return static_cast<uint64_t>(DecodeU32(src)) |
         static_cast<uint64_t>(DecodeU32(src + 4)) << 32;
}

inline void EncodeDouble(uint8_t* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  EncodeU64(dst, bits);
}

inline double DecodeDouble(const uint8_t* src) {
  const uint64_t bits = DecodeU64(src);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Fast 16-bit checksum over a byte range; used as the per-node-page
// checksum (it fits the node header's reserved field, and 16 bits is ample
// for the single-page payloads it guards). Implemented as word-at-a-time
// FNV-1a folded to 16 bits — page reads and writes are hot paths, so a
// bitwise CRC would dominate them.
inline uint16_t Checksum16(const uint8_t* data, size_t n) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, 8);
    hash = (hash ^ word) * kPrime;
  }
  for (; i < n; ++i) {
    hash = (hash ^ data[i]) * kPrime;
  }
  hash ^= hash >> 32;
  hash ^= hash >> 16;
  return static_cast<uint16_t>(hash);
}

namespace internal {

// Lazily built lookup table for the Castagnoli polynomial (reflected
// 0x82f63b78). Function-local static so header-only users share one copy.
inline const uint32_t* Crc32cTable() {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table.data();
}

}  // namespace internal

// CRC32C (Castagnoli) over a byte range. Guards the format-v2 superblock
// slots, checkpoint journal, and node extents, where error detection
// strength matters more than the last nanosecond (the table-driven form is
// still a few bytes/cycle).
inline uint32_t Crc32c(const uint8_t* data, size_t n, uint32_t seed = 0) {
  const uint32_t* table = internal::Crc32cTable();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace segidx::storage

#endif  // SEGIDX_STORAGE_CODING_H_
