// Brute-force reference "index": a flat list scanned on every query.
// Used as ground truth by the test suite and as the unindexed baseline in
// examples. Semantics match the R-Tree exactly (closed-interval
// intersection).

#ifndef SEGIDX_ORACLE_NAIVE_ORACLE_H_
#define SEGIDX_ORACLE_NAIVE_ORACLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/geometry.h"
#include "common/types.h"

namespace segidx::oracle {

class NaiveOracle {
 public:
  void Insert(const Rect& rect, TupleId tid) {
    entries_.emplace_back(rect, tid);
  }

  // Removes one entry equal to (rect, tid); returns whether one existed.
  bool Delete(const Rect& rect, TupleId tid);

  // Tuple ids of all entries intersecting `query`, sorted ascending and
  // deduplicated.
  std::vector<TupleId> Search(const Rect& query) const;

  size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<Rect, TupleId>> entries_;
};

}  // namespace segidx::oracle

#endif  // SEGIDX_ORACLE_NAIVE_ORACLE_H_
