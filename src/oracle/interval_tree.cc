#include "oracle/interval_tree.h"

#include <algorithm>

namespace segidx::oracle {

bool IntervalTree::Less(const Interval& a, TupleId at, const Interval& b,
                        TupleId bt) {
  if (a.lo != b.lo) return a.lo < b.lo;
  if (a.hi != b.hi) return a.hi < b.hi;
  return at < bt;
}

void IntervalTree::Update(TreapNode* node) {
  node->max_hi = node->interval.hi;
  if (node->left != nullptr) {
    node->max_hi = std::max(node->max_hi, node->left->max_hi);
  }
  if (node->right != nullptr) {
    node->max_hi = std::max(node->max_hi, node->right->max_hi);
  }
}

void IntervalTree::RotateLeft(std::unique_ptr<TreapNode>* link) {
  std::unique_ptr<TreapNode> node = std::move(*link);
  std::unique_ptr<TreapNode> pivot = std::move(node->right);
  node->right = std::move(pivot->left);
  Update(node.get());
  pivot->left = std::move(node);
  Update(pivot.get());
  *link = std::move(pivot);
}

void IntervalTree::RotateRight(std::unique_ptr<TreapNode>* link) {
  std::unique_ptr<TreapNode> node = std::move(*link);
  std::unique_ptr<TreapNode> pivot = std::move(node->left);
  node->left = std::move(pivot->right);
  Update(node.get());
  pivot->right = std::move(node);
  Update(pivot.get());
  *link = std::move(pivot);
}

void IntervalTree::Insert(const Interval& interval, TupleId tid) {
  auto node = std::make_unique<TreapNode>();
  node->interval = interval;
  node->tid = tid;
  node->priority = rng_.NextU64();
  node->max_hi = interval.hi;
  InsertAt(&root_, std::move(node));
  ++size_;
}

void IntervalTree::InsertAt(std::unique_ptr<TreapNode>* link,
                            std::unique_ptr<TreapNode> node) {
  if (*link == nullptr) {
    *link = std::move(node);
    return;
  }
  TreapNode* cur = link->get();
  if (Less(node->interval, node->tid, cur->interval, cur->tid)) {
    InsertAt(&cur->left, std::move(node));
    Update(cur);
    if (cur->left->priority > cur->priority) RotateRight(link);
  } else {
    InsertAt(&cur->right, std::move(node));
    Update(cur);
    if (cur->right->priority > cur->priority) RotateLeft(link);
  }
}

bool IntervalTree::Delete(const Interval& interval, TupleId tid) {
  if (DeleteAt(&root_, interval, tid)) {
    --size_;
    return true;
  }
  return false;
}

bool IntervalTree::DeleteAt(std::unique_ptr<TreapNode>* link,
                            const Interval& interval, TupleId tid) {
  if (*link == nullptr) return false;
  TreapNode* cur = link->get();
  bool removed;
  if (Less(interval, tid, cur->interval, cur->tid)) {
    removed = DeleteAt(&cur->left, interval, tid);
  } else if (Less(cur->interval, cur->tid, interval, tid)) {
    removed = DeleteAt(&cur->right, interval, tid);
  } else {
    // Found: rotate down to a leaf position, then unlink.
    if (cur->left == nullptr) {
      *link = std::move(cur->right);
      return true;
    }
    if (cur->right == nullptr) {
      *link = std::move(cur->left);
      return true;
    }
    if (cur->left->priority > cur->right->priority) {
      RotateRight(link);
      removed = DeleteAt(&link->get()->right, interval, tid);
    } else {
      RotateLeft(link);
      removed = DeleteAt(&link->get()->left, interval, tid);
    }
  }
  if (*link != nullptr) Update(link->get());
  return removed;
}

void IntervalTree::Collect(const TreapNode* node, const Interval& query,
                           std::vector<TupleId>* out) {
  if (node == nullptr) return;
  // Subtree pruning: no interval below has an upper endpoint reaching the
  // query's lower endpoint.
  if (node->max_hi < query.lo) return;
  Collect(node->left.get(), query, out);
  if (node->interval.Intersects(query)) out->push_back(node->tid);
  // Keys to the right start at or after this node's lo; if even this
  // subtree's smallest lo exceeds query.hi nothing to the right matches.
  if (node->interval.lo <= query.hi) {
    Collect(node->right.get(), query, out);
  }
}

std::vector<TupleId> IntervalTree::Stab(Coord point) const {
  return Overlapping(Interval::Point(point));
}

std::vector<TupleId> IntervalTree::Overlapping(const Interval& query) const {
  std::vector<TupleId> out;
  Collect(root_.get(), query, &out);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace segidx::oracle
