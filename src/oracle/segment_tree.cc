#include "oracle/segment_tree.h"

#include <algorithm>

#include "common/logging.h"

namespace segidx::oracle {

SegmentTree::SegmentTree(std::vector<Coord> endpoints)
    : endpoints_(std::move(endpoints)) {
  SEGIDX_CHECK(!endpoints_.empty());
  std::sort(endpoints_.begin(), endpoints_.end());
  endpoints_.erase(std::unique(endpoints_.begin(), endpoints_.end()),
                   endpoints_.end());
  const int slots = static_cast<int>(endpoints_.size()) * 2 - 1;
  nodes_.reserve(static_cast<size_t>(slots) * 2);
  root_ = BuildRange(0, slots - 1);
}

int SegmentTree::BuildRange(int slot_lo, int slot_hi) {
  const int index = static_cast<int>(nodes_.size());
  nodes_.push_back(TreeNode{slot_lo, slot_hi, -1, -1, {}});
  if (slot_lo < slot_hi) {
    const int mid = slot_lo + (slot_hi - slot_lo) / 2;
    const int left = BuildRange(slot_lo, mid);
    const int right = BuildRange(mid + 1, slot_hi);
    nodes_[index].left = left;
    nodes_[index].right = right;
  }
  return index;
}

int SegmentTree::EndpointIndex(Coord value) const {
  const auto it =
      std::lower_bound(endpoints_.begin(), endpoints_.end(), value);
  if (it == endpoints_.end() || *it != value) return -1;
  return static_cast<int>(it - endpoints_.begin());
}

int SegmentTree::SlotOf(Coord value) const {
  if (value < endpoints_.front() || value > endpoints_.back()) return -1;
  const auto it =
      std::lower_bound(endpoints_.begin(), endpoints_.end(), value);
  const int i = static_cast<int>(it - endpoints_.begin());
  if (*it == value) return 2 * i;
  return 2 * i - 1;  // Open gap below endpoint i.
}

Status SegmentTree::Insert(const Interval& interval, TupleId tid) {
  if (!interval.valid()) return InvalidArgumentError("invalid interval");
  const int lo = EndpointIndex(interval.lo);
  const int hi = EndpointIndex(interval.hi);
  if (lo < 0 || hi < 0) {
    return InvalidArgumentError(
        "interval endpoint not in the segment tree's endpoint set");
  }
  InsertRange(root_, 2 * lo, 2 * hi, tid);
  ++size_;
  return Status::OK();
}

void SegmentTree::InsertRange(int node_index, int slot_lo, int slot_hi,
                              TupleId tid) {
  TreeNode& node = nodes_[node_index];
  if (slot_lo <= node.slot_lo && node.slot_hi <= slot_hi) {
    node.tids.push_back(tid);  // Canonical node: fully spanned.
    return;
  }
  const int mid = node.slot_lo + (node.slot_hi - node.slot_lo) / 2;
  if (slot_lo <= mid) {
    InsertRange(node.left, slot_lo, std::min(slot_hi, mid), tid);
  }
  if (slot_hi > mid) {
    InsertRange(node.right, std::max(slot_lo, mid + 1), slot_hi, tid);
  }
}

std::vector<TupleId> SegmentTree::Stab(Coord point) const {
  std::vector<TupleId> out;
  const int slot = SlotOf(point);
  if (slot < 0) return out;
  int node_index = root_;
  while (node_index >= 0) {
    const TreeNode& node = nodes_[node_index];
    out.insert(out.end(), node.tids.begin(), node.tids.end());
    if (node.slot_lo == node.slot_hi) break;
    const int mid = node.slot_lo + (node.slot_hi - node.slot_lo) / 2;
    node_index = slot <= mid ? node.left : node.right;
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace segidx::oracle
