#include "oracle/naive_oracle.h"

#include <algorithm>
#include <cstddef>

namespace segidx::oracle {

bool NaiveOracle::Delete(const Rect& rect, TupleId tid) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].second == tid && entries_[i].first == rect) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

std::vector<TupleId> NaiveOracle::Search(const Rect& query) const {
  std::vector<TupleId> out;
  for (const auto& [rect, tid] : entries_) {
    if (rect.Intersects(query)) out.push_back(tid);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace segidx::oracle
