// Dynamic interval tree (CLRS-style augmented search tree) over 1-D closed
// intervals — one of the main-memory Computational Geometry structures the
// paper contrasts with disk-based Segment Indexes (Section 1). Implemented
// as a randomized treap keyed by (lo, hi, tid) with a max-upper-endpoint
// augmentation; expected O(log n) insert/delete and output-sensitive
// overlap queries.
//
// Used in tests as a second ground-truth implementation for 1-D workloads
// and in examples as the in-memory baseline.

#ifndef SEGIDX_ORACLE_INTERVAL_TREE_H_
#define SEGIDX_ORACLE_INTERVAL_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/geometry.h"
#include "common/random.h"
#include "common/types.h"

namespace segidx::oracle {

class IntervalTree {
 public:
  IntervalTree() : rng_(0x5e601dc5u) {}

  void Insert(const Interval& interval, TupleId tid);
  // Removes one entry equal to (interval, tid); returns whether it existed.
  bool Delete(const Interval& interval, TupleId tid);

  // Tuple ids of intervals containing `point`, sorted ascending.
  std::vector<TupleId> Stab(Coord point) const;
  // Tuple ids of intervals intersecting `query`, sorted ascending.
  std::vector<TupleId> Overlapping(const Interval& query) const;

  size_t size() const { return size_; }

 private:
  struct TreapNode {
    Interval interval;
    TupleId tid;
    uint64_t priority;
    Coord max_hi;
    std::unique_ptr<TreapNode> left;
    std::unique_ptr<TreapNode> right;
  };

  // Strict ordering on (lo, hi, tid).
  static bool Less(const Interval& a, TupleId at, const Interval& b,
                   TupleId bt);
  static void Update(TreapNode* node);
  static void RotateLeft(std::unique_ptr<TreapNode>* link);
  static void RotateRight(std::unique_ptr<TreapNode>* link);
  void InsertAt(std::unique_ptr<TreapNode>* link,
                std::unique_ptr<TreapNode> node);
  bool DeleteAt(std::unique_ptr<TreapNode>* link, const Interval& interval,
                TupleId tid);
  static void Collect(const TreapNode* node, const Interval& query,
                      std::vector<TupleId>* out);

  std::unique_ptr<TreapNode> root_;
  size_t size_ = 0;
  Rng rng_;
};

}  // namespace segidx::oracle

#endif  // SEGIDX_ORACLE_INTERVAL_TREE_H_
