// Classic (static) segment tree over a fixed set of endpoint coordinates
// (Bentley 1977) — the structure whose "spanning" idea the paper transplants
// into paged indexes (Section 2). An interval is stored on the O(log n)
// highest nodes whose ranges it fully spans; a stabbing query walks one
// root-to-leaf path and reports every interval stored along it.
//
// Closed-interval semantics are implemented with the standard slot encoding
// (2m+1 slots for m+1 endpoints: each endpoint and each open gap is one
// elementary slot), so results match the R-Tree's closed intersections
// exactly.

#ifndef SEGIDX_ORACLE_SEGMENT_TREE_H_
#define SEGIDX_ORACLE_SEGMENT_TREE_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "common/types.h"

namespace segidx::oracle {

class SegmentTree {
 public:
  // Builds the skeleton over the given endpoint coordinates (sorted and
  // deduplicated internally; at least one endpoint required). Inserted
  // interval endpoints must be members of this set.
  explicit SegmentTree(std::vector<Coord> endpoints);

  // Stores `interval` on its canonical nodes. Fails with InvalidArgument
  // if an endpoint is not in the endpoint set.
  Status Insert(const Interval& interval, TupleId tid);

  // Tuple ids of intervals containing `point`, sorted ascending. A point
  // outside [min endpoint, max endpoint] matches nothing.
  std::vector<TupleId> Stab(Coord point) const;

  size_t size() const { return size_; }
  size_t endpoint_count() const { return endpoints_.size(); }

 private:
  struct TreeNode {
    int slot_lo = 0;
    int slot_hi = 0;
    int left = -1;   // Index into nodes_, -1 for none.
    int right = -1;
    std::vector<TupleId> tids;  // Intervals spanning this node's range.
  };

  int BuildRange(int slot_lo, int slot_hi);
  // Slot index of a coordinate: 2i for endpoint i, 2i+1 for the open gap
  // (e_i, e_{i+1}); -1 outside the domain.
  int SlotOf(Coord value) const;
  // Exact endpoint index or -1.
  int EndpointIndex(Coord value) const;
  void InsertRange(int node, int slot_lo, int slot_hi, TupleId tid);

  std::vector<Coord> endpoints_;
  std::vector<TreeNode> nodes_;
  int root_ = -1;
  size_t size_ = 0;
};

}  // namespace segidx::oracle

#endif  // SEGIDX_ORACLE_SEGMENT_TREE_H_
