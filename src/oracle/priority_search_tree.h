// Static priority search tree (McCreight 1985) — the third main-memory
// Computational Geometry structure the paper cites (Section 1).
//
// A PST over points answers "x in (-inf, qx], y >= qy" queries in
// O(log n + k). Mapping a closed interval [lo, hi] to the point
// (x=lo, y=hi) turns interval stabbing at q — lo <= q <= hi — into exactly
// that query: lo <= q and hi >= q. Used by tests as a third independent
// 1-D ground truth and available as an in-memory baseline.
//
// The structure is built once from the full interval set (the classic
// formulation); use IntervalTree for a dynamic in-memory structure.

#ifndef SEGIDX_ORACLE_PRIORITY_SEARCH_TREE_H_
#define SEGIDX_ORACLE_PRIORITY_SEARCH_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/geometry.h"
#include "common/types.h"

namespace segidx::oracle {

class PrioritySearchTree {
 public:
  // Builds over the given intervals; invalid intervals are rejected by
  // SEGIDX_CHECK.
  explicit PrioritySearchTree(
      std::vector<std::pair<Interval, TupleId>> intervals);

  // Tuple ids of intervals containing `point`, sorted ascending.
  std::vector<TupleId> Stab(Coord point) const;

  // Tuple ids of intervals with lo <= x_max and hi >= y_min (the raw PST
  // query), sorted ascending.
  std::vector<TupleId> Query(Coord x_max, Coord y_min) const;

  size_t size() const { return entries_.size(); }

 private:
  struct PstNode {
    // The "priority" element stored at this node: the entry with the
    // largest hi among those in this subtree's x-range.
    int entry = -1;
    // Median lo splitting the remaining entries.
    Coord split = 0;
    int left = -1;
    int right = -1;
  };

  int Build(std::vector<int>* by_lo, size_t begin, size_t end);
  void Collect(int node_index, Coord x_max, Coord y_min,
               std::vector<TupleId>* out) const;

  std::vector<std::pair<Interval, TupleId>> entries_;
  std::vector<PstNode> nodes_;
  int root_ = -1;
};

}  // namespace segidx::oracle

#endif  // SEGIDX_ORACLE_PRIORITY_SEARCH_TREE_H_
