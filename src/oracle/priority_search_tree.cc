#include "oracle/priority_search_tree.h"

#include <algorithm>
#include <cstddef>

#include "common/logging.h"

namespace segidx::oracle {

PrioritySearchTree::PrioritySearchTree(
    std::vector<std::pair<Interval, TupleId>> intervals)
    : entries_(std::move(intervals)) {
  for (const auto& [interval, tid] : entries_) {
    SEGIDX_CHECK(interval.valid());
  }
  std::vector<int> by_lo(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    by_lo[i] = static_cast<int>(i);
  }
  std::sort(by_lo.begin(), by_lo.end(), [this](int a, int b) {
    if (entries_[a].first.lo != entries_[b].first.lo) {
      return entries_[a].first.lo < entries_[b].first.lo;
    }
    return entries_[a].second < entries_[b].second;
  });
  nodes_.reserve(entries_.size());
  root_ = Build(&by_lo, 0, by_lo.size());
}

int PrioritySearchTree::Build(std::vector<int>* by_lo, size_t begin,
                              size_t end) {
  if (begin >= end) return -1;
  // Pull out the entry with the largest hi; it becomes this node's
  // priority element. A stable rotate keeps the rest in lo-order.
  size_t best = begin;
  for (size_t i = begin + 1; i < end; ++i) {
    if (entries_[static_cast<size_t>((*by_lo)[i])].first.hi >
        entries_[static_cast<size_t>((*by_lo)[best])].first.hi) {
      best = i;
    }
  }
  const int entry = (*by_lo)[best];
  std::rotate(by_lo->begin() + static_cast<ptrdiff_t>(best),
              by_lo->begin() + static_cast<ptrdiff_t>(best) + 1,
              by_lo->begin() + static_cast<ptrdiff_t>(end));
  const size_t rest_end = end - 1;

  const int index = static_cast<int>(nodes_.size());
  nodes_.push_back(PstNode{});
  nodes_[static_cast<size_t>(index)].entry = entry;

  if (begin < rest_end) {
    const size_t mid = begin + (rest_end - begin) / 2;
    // Children of the median go right (split = first lo of the right
    // part); degenerate when all entries share one lo, which still
    // terminates because each node consumes one entry.
    const Coord split =
        entries_[static_cast<size_t>((*by_lo)[mid])].first.lo;
    const int left = Build(by_lo, begin, mid);
    const int right = Build(by_lo, mid, rest_end);
    nodes_[static_cast<size_t>(index)].split = split;
    nodes_[static_cast<size_t>(index)].left = left;
    nodes_[static_cast<size_t>(index)].right = right;
  } else {
    nodes_[static_cast<size_t>(index)].split =
        entries_[static_cast<size_t>(entry)].first.lo;
  }
  return index;
}

void PrioritySearchTree::Collect(int node_index, Coord x_max, Coord y_min,
                                 std::vector<TupleId>* out) const {
  if (node_index < 0) return;
  const PstNode& node = nodes_[static_cast<size_t>(node_index)];
  const auto& [interval, tid] = entries_[static_cast<size_t>(node.entry)];
  // The priority element has the largest hi in this subtree: if it fails
  // the y condition, everything below does too.
  if (interval.hi < y_min) return;
  if (interval.lo <= x_max) out->push_back(tid);
  Collect(node.left, x_max, y_min, out);
  if (node.split <= x_max) {
    Collect(node.right, x_max, y_min, out);
  }
}

std::vector<TupleId> PrioritySearchTree::Query(Coord x_max,
                                               Coord y_min) const {
  std::vector<TupleId> out;
  Collect(root_, x_max, y_min, &out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TupleId> PrioritySearchTree::Stab(Coord point) const {
  return Query(point, point);
}

}  // namespace segidx::oracle
