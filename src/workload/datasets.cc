#include "workload/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace segidx::workload {

namespace {

constexpr Coord kDomainWidth = kDomainHi - kDomainLo;

// One generated value per dimension-and-role.
struct Generators {
  bool x_is_interval = true;
  bool y_is_interval = false;
  bool centers_exponential = false;
  bool lengths_exponential = false;
  bool y_exponential = false;
};

Generators ConfigFor(DatasetKind kind) {
  Generators g;
  switch (kind) {
    case DatasetKind::kI1:
      break;
    case DatasetKind::kI2:
      g.y_exponential = true;
      break;
    case DatasetKind::kI3:
      g.lengths_exponential = true;
      break;
    case DatasetKind::kI4:
      g.y_exponential = true;
      g.lengths_exponential = true;
      break;
    case DatasetKind::kR1:
      g.y_is_interval = true;
      break;
    case DatasetKind::kR2:
      g.y_is_interval = true;
      g.lengths_exponential = true;
      break;
    case DatasetKind::kRC1:
      g.y_is_interval = true;
      g.centers_exponential = true;
      break;
    case DatasetKind::kRC2:
      g.y_is_interval = true;
      g.centers_exponential = true;
      g.lengths_exponential = true;
      break;
    case DatasetKind::kM1:
      break;  // Handled directly in GenerateDataset.
  }
  return g;
}

Coord DrawCenter(Rng& rng, bool exponential) {
  if (exponential) {
    return kDomainLo + rng.Exponential(kBetaY, kDomainWidth);
  }
  return rng.Uniform(kDomainLo, kDomainHi);
}

Coord DrawLength(Rng& rng, bool exponential) {
  if (exponential) return rng.Exponential(kBetaLength, kDomainWidth);
  return rng.Uniform(0, kUniformLengthMax);
}

Interval IntervalAround(Coord center, Coord length) {
  return Interval(center - length / 2, center + length / 2);
}

}  // namespace

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kI1:
      return "I1";
    case DatasetKind::kI2:
      return "I2";
    case DatasetKind::kI3:
      return "I3";
    case DatasetKind::kI4:
      return "I4";
    case DatasetKind::kR1:
      return "R1";
    case DatasetKind::kR2:
      return "R2";
    case DatasetKind::kRC1:
      return "RC1";
    case DatasetKind::kRC2:
      return "RC2";
    case DatasetKind::kM1:
      return "M1";
  }
  return "?";
}

Result<DatasetKind> ParseDatasetKind(const std::string& name) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "I1") return DatasetKind::kI1;
  if (upper == "I2") return DatasetKind::kI2;
  if (upper == "I3") return DatasetKind::kI3;
  if (upper == "I4") return DatasetKind::kI4;
  if (upper == "R1") return DatasetKind::kR1;
  if (upper == "R2") return DatasetKind::kR2;
  if (upper == "RC1") return DatasetKind::kRC1;
  if (upper == "RC2") return DatasetKind::kRC2;
  if (upper == "M1") return DatasetKind::kM1;
  return InvalidArgumentError("unknown dataset kind: " + name);
}

std::vector<Rect> GenerateDataset(const DatasetSpec& spec) {
  const Generators g = ConfigFor(spec.kind);
  Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<Rect> out;
  out.reserve(spec.count);
  if (spec.kind == DatasetKind::kM1) {
    // 30% events (points in time), 60% short ranges, 10% long ranges.
    for (uint64_t i = 0; i < spec.count; ++i) {
      const Coord y = rng.Uniform(kDomainLo, kDomainHi);
      const double roll = rng.NextDouble();
      if (roll < 0.3) {
        out.push_back(Rect::Point(rng.Uniform(kDomainLo, kDomainHi), y));
      } else {
        const double beta = roll < 0.9 ? 500 : 20000;
        const Coord c = rng.Uniform(kDomainLo, kDomainHi);
        out.push_back(
            Rect(IntervalAround(c, rng.Exponential(beta, kDomainWidth)),
                 Interval::Point(y)));
      }
    }
    return out;
  }
  for (uint64_t i = 0; i < spec.count; ++i) {
    const Coord cx = DrawCenter(rng, g.centers_exponential);
    const Interval x = IntervalAround(cx, DrawLength(rng, g.lengths_exponential));
    Interval y;
    if (g.y_is_interval) {
      const Coord cy = DrawCenter(rng, g.centers_exponential);
      y = IntervalAround(cy, DrawLength(rng, g.lengths_exponential));
    } else {
      y = Interval::Point(DrawCenter(rng, g.y_exponential));
    }
    out.push_back(Rect(x, y));
  }
  return out;
}

const std::vector<double>& PaperQarSweep() {
  static const std::vector<double>& sweep = *new std::vector<double>{
      0.0001, 0.001, 0.01, 0.1, 0.2, 0.5, 1, 2, 5, 10, 100, 1000, 10000};
  return sweep;
}

std::vector<Rect> GenerateQueries(double qar, double area, int count,
                                  uint64_t seed) {
  SEGIDX_CHECK_GT(qar, 0);
  SEGIDX_CHECK_GT(area, 0);
  const Coord width = std::sqrt(area * qar);
  const Coord height = std::sqrt(area / qar);
  Rng rng(seed * 0xd1342543de82ef95ULL + 7);
  std::vector<Rect> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const Coord cx = rng.Uniform(kDomainLo, kDomainHi);
    const Coord cy = rng.Uniform(kDomainLo, kDomainHi);
    out.push_back(Rect(Interval(cx - width / 2, cx + width / 2),
                       Interval(cy - height / 2, cy + height / 2)));
  }
  return out;
}

}  // namespace segidx::workload
