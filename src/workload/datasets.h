// Synthetic workloads from the paper's evaluation (Section 5).
//
// All datasets live in the domain [0, 100000] in both dimensions. Interval
// datasets (I1-I4) are horizontal line segments: X is an interval, Y a
// point — the shape of historical data (paper Figure 1). Rectangle datasets
// (R1, R2) are intervals in both dimensions. RC1/RC2 are the
// exponential-centroid rectangle variants the paper ran but omitted for
// brevity (Section 5.1, last paragraph).
//
//   I1: Y uniform;                X centers uniform, lengths U[0, 100]
//   I2: Y exponential (β=7000);   X as I1
//   I3: Y uniform;                X centers uniform, lengths Exp(β=2000)
//   I4: Y exponential (β=7000);   X as I3
//   R1: centroids uniform;        both lengths U[0, 100]
//   R2: centroids uniform;        both lengths Exp(β=2000)
//   RC1: centroids exponential;   both lengths U[0, 100]
//   RC2: centroids exponential;   both lengths Exp(β=2000)
//   M1:  mixed event/time-range records (Section 2.2 motivation; ours)
//
// Exponential draws are resampled into the domain so values stay bounded.

#ifndef SEGIDX_WORKLOAD_DATASETS_H_
#define SEGIDX_WORKLOAD_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"

namespace segidx::workload {

inline constexpr Coord kDomainLo = 0;
inline constexpr Coord kDomainHi = 100000;
inline constexpr double kBetaY = 7000;       // I2/I4 Y-value distribution.
inline constexpr double kBetaLength = 2000;  // Exponential interval lengths.
inline constexpr double kUniformLengthMax = 100;

enum class DatasetKind {
  kI1,
  kI2,
  kI3,
  kI4,
  kR1,
  kR2,
  kRC1,
  kRC2,
  // M1 (ours, from the paper's Section 2.2 motivation): historical data
  // mixing *event* records (points in time) with *time-range* records of
  // skewed length — 30% events, 60% short ranges (Exp β=500), 10% long
  // ranges (Exp β=20000); Y values uniform.
  kM1,
};

const char* DatasetKindName(DatasetKind kind);
// Parses "I1".."I4", "R1", "R2", "RC1", "RC2", "M1" (case-insensitive).
Result<DatasetKind> ParseDatasetKind(const std::string& name);

struct DatasetSpec {
  DatasetKind kind = DatasetKind::kI1;
  uint64_t count = 100000;
  uint64_t seed = 1;
};

// Generates the dataset; rects[i] belongs to tuple id i.
std::vector<Rect> GenerateDataset(const DatasetSpec& spec);

// The paper's query-aspect-ratio sweep: QAR in {1e-4 .. 1e4}, 13 values.
const std::vector<double>& PaperQarSweep();

// Generates `count` query rectangles of the given area and aspect ratio
// (width/height), centroids uniform over the domain.
std::vector<Rect> GenerateQueries(double qar, double area, int count,
                                  uint64_t seed);

}  // namespace segidx::workload

#endif  // SEGIDX_WORKLOAD_DATASETS_H_
