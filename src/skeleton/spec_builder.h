// Computes the pre-partitioned hierarchy of a Skeleton index (paper
// Section 4): the number of nodes per level follows the paper's recurrence
//
//   n = number_of_tuples;
//   while (n > 1) {
//     number_of_nodes[level] = ceil(sqrt(ceil(n / fanout[level])))^2;
//     n = number_of_nodes[level]; ++level;
//   }
//
// (node counts are rounded up to perfect squares so every level is an equal
// grid in both dimensions), and the partition boundaries at the leaf level
// are equi-depth quantiles of per-dimension histograms. Boundaries of upper
// levels are subsets of the leaf boundaries chosen by proportional grouping
// so cells nest exactly (see DESIGN.md).

#ifndef SEGIDX_SKELETON_SPEC_BUILDER_H_
#define SEGIDX_SKELETON_SPEC_BUILDER_H_

#include <cstdint>
#include <functional>

#include "common/histogram.h"
#include "common/status.h"
#include "rtree/rtree.h"

namespace segidx::skeleton {

struct SpecBuilderParams {
  // Estimated number of tuples to be inserted.
  uint64_t expected_tuples = 0;
  // Entry capacity of a leaf node.
  size_t leaf_fanout = 0;
  // Branch capacity of a non-leaf node at the given level (>= 1). For
  // SR-Trees this is the branch-reserved quota (paper: 2/3 of the slots).
  std::function<size_t(int level)> branch_fanout;
};

// Computes the skeleton hierarchy for the domains and mass distributions
// captured by `x_hist` / `y_hist`. Empty histograms produce uniform
// partitions over their domains.
Result<rtree::SkeletonSpec> BuildSkeletonSpec(const SpecBuilderParams& params,
                                              const Histogram& x_hist,
                                              const Histogram& y_hist);

}  // namespace segidx::skeleton

#endif  // SEGIDX_SKELETON_SPEC_BUILDER_H_
