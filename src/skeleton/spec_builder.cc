#include "skeleton/spec_builder.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace segidx::skeleton {

namespace {

// ceil(sqrt(x)) for positive integers.
uint64_t CeilSqrt(uint64_t x) {
  uint64_t r = static_cast<uint64_t>(std::sqrt(static_cast<double>(x)));
  while (r * r < x) ++r;
  while (r > 0 && (r - 1) * (r - 1) >= x) --r;
  return r;
}

uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

}  // namespace

Result<rtree::SkeletonSpec> BuildSkeletonSpec(const SpecBuilderParams& params,
                                              const Histogram& x_hist,
                                              const Histogram& y_hist) {
  if (params.expected_tuples == 0) {
    return InvalidArgumentError("expected_tuples must be positive");
  }
  if (params.leaf_fanout == 0) {
    return InvalidArgumentError("leaf_fanout must be positive");
  }
  if (!params.branch_fanout) {
    return InvalidArgumentError("branch_fanout callback is required");
  }

  // Paper recurrence: partitions-per-dimension P[level] with
  // P[level]^2 = number_of_nodes[level].
  std::vector<uint64_t> partitions;
  uint64_t n = params.expected_tuples;
  {
    uint64_t nodes = CeilSqrt(CeilDiv(n, params.leaf_fanout));
    nodes = std::max<uint64_t>(nodes, 1);
    partitions.push_back(nodes);
    n = nodes * nodes;
  }
  int level = 1;
  while (n > 1) {
    const size_t fanout = std::max<size_t>(params.branch_fanout(level), 2);
    uint64_t p = CeilSqrt(CeilDiv(n, fanout));
    p = std::max<uint64_t>(p, 1);
    if (p >= partitions.back()) {
      // Degenerate input (tiny fanout); force convergence.
      p = std::max<uint64_t>(partitions.back() / 2, 1);
    }
    if (p == 1) break;
    partitions.push_back(p);
    n = p * p;
    ++level;
  }

  // Fix-up pass: the proportional grouping assigns at most
  // ceil(P[l-1] / P[l]) cells per dimension of a parent cell; make sure
  // that never exceeds the branch capacity (the paper's recurrence does not
  // guarantee this for every rounding outcome).
  for (size_t li = 1; li < partitions.size(); ++li) {
    const size_t fanout =
        std::max<size_t>(params.branch_fanout(static_cast<int>(li)), 2);
    while (true) {
      const uint64_t group = CeilDiv(partitions[li - 1], partitions[li]);
      if (group * group <= fanout) break;
      ++partitions[li];
    }
    partitions[li] = std::min(partitions[li], partitions[li - 1]);
  }
  // Drop trailing levels that collapsed to a single cell; the implicit
  // root covers the top level.
  while (partitions.size() > 1 && partitions.back() == 1) {
    partitions.pop_back();
  }
  // The implicit root must be able to hold every top-level cell.
  {
    const int root_level = static_cast<int>(partitions.size());
    const size_t root_fanout =
        std::max<size_t>(params.branch_fanout(root_level), 2);
    while (partitions.size() > 1 &&
           partitions.back() * partitions.back() > root_fanout) {
      // Too many top cells for one root: add a coarser level on top.
      const size_t fanout = std::max<size_t>(
          params.branch_fanout(static_cast<int>(partitions.size())), 2);
      uint64_t p = CeilSqrt(CeilDiv(partitions.back() * partitions.back(),
                                    fanout));
      p = std::max<uint64_t>(p, 1);
      if (p >= partitions.back()) p = partitions.back() - 1;
      if (p <= 1) break;
      partitions.push_back(p);
    }
  }

  // Leaf-level boundaries: equi-depth quantiles of the histograms.
  const int leaf_parts = static_cast<int>(partitions[0]);
  rtree::SkeletonSpec spec;
  spec.levels.resize(partitions.size());
  spec.levels[0].x_bounds = x_hist.EquiDepthBoundaries(leaf_parts);
  spec.levels[0].y_bounds = y_hist.EquiDepthBoundaries(leaf_parts);

  // Upper levels: subset selection by proportional grouping. Parent cell j
  // of a level with Q partitions covers leaf slots [floor(j*P/Q),
  // floor((j+1)*P/Q)) of the level below (P partitions).
  for (size_t li = 1; li < partitions.size(); ++li) {
    const uint64_t p_below = partitions[li - 1];
    const uint64_t q = partitions[li];
    auto subset = [p_below, q](const std::vector<Coord>& below) {
      std::vector<Coord> bounds;
      bounds.reserve(q + 1);
      for (uint64_t j = 0; j <= q; ++j) {
        bounds.push_back(below[j * p_below / q]);
      }
      return bounds;
    };
    spec.levels[li].x_bounds = subset(spec.levels[li - 1].x_bounds);
    spec.levels[li].y_bounds = subset(spec.levels[li - 1].y_bounds);
  }
  return spec;
}

}  // namespace segidx::skeleton
