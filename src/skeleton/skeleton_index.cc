#include "skeleton/skeleton_index.h"

#include <algorithm>

#include "common/logging.h"
#include "skeleton/spec_builder.h"

namespace segidx::skeleton {

SkeletonIndex::SkeletonIndex(rtree::RTree* tree,
                             const SkeletonOptions& options)
    : tree_(tree),
      options_(options),
      x_hist_(options.x_domain, options.histogram_buckets),
      y_hist_(options.y_domain, options.histogram_buckets) {
  SEGIDX_CHECK(tree != nullptr);
  SEGIDX_CHECK(tree->size() == 0);
  buffer_.reserve(options.prediction_sample);
}

SkeletonIndex::SkeletonIndex(rtree::RTree* tree,
                             const SkeletonOptions& options, ResumeTag)
    : tree_(tree),
      options_(options),
      built_(true),
      inserted_(tree->size()),
      x_hist_(options.x_domain, options.histogram_buckets),
      y_hist_(options.y_domain, options.histogram_buckets) {
  SEGIDX_CHECK(tree != nullptr);
}

std::unique_ptr<SkeletonIndex> SkeletonIndex::Resume(
    rtree::RTree* tree, const SkeletonOptions& options) {
  return std::unique_ptr<SkeletonIndex>(
      new SkeletonIndex(tree, options, ResumeTag{}));
}

Status SkeletonIndex::Insert(const Rect& rect, TupleId tid) {
  ++inserted_;
  if (!built_) {
    // Distribution prediction: histogram the record centers.
    x_hist_.Add(rect.x.center());
    y_hist_.Add(rect.y.center());
    buffer_.emplace_back(rect, tid);
    if (buffer_.size() >= options_.prediction_sample) {
      SEGIDX_RETURN_IF_ERROR(Finalize());
    }
    return Status::OK();
  }

  SEGIDX_RETURN_IF_ERROR(tree_->Insert(rect, tid));
  if (options_.coalesce_interval > 0 &&
      ++since_coalesce_ >= options_.coalesce_interval) {
    since_coalesce_ = 0;
    SEGIDX_ASSIGN_OR_RETURN(
        int merged,
        tree_->CoalesceSparseLeaves(options_.coalesce_candidates));
    (void)merged;
  }
  return Status::OK();
}

Status SkeletonIndex::Finalize() {
  if (built_) return Status::OK();

  SpecBuilderParams params;
  params.expected_tuples =
      std::max<uint64_t>(options_.expected_tuples, buffer_.size());
  params.leaf_fanout = tree_->LeafCapacity();
  params.branch_fanout = [this](int level) {
    return tree_->BranchPlanningCapacity(level);
  };
  SEGIDX_ASSIGN_OR_RETURN(rtree::SkeletonSpec spec,
                          BuildSkeletonSpec(params, x_hist_, y_hist_));
  SEGIDX_RETURN_IF_ERROR(tree_->PreBuild(spec));
  built_ = true;

  for (const auto& [rect, tid] : buffer_) {
    SEGIDX_RETURN_IF_ERROR(tree_->Insert(rect, tid));
  }
  buffer_.clear();
  buffer_.shrink_to_fit();
  return Status::OK();
}

Status SkeletonIndex::Search(const Rect& query,
                             std::vector<rtree::SearchHit>* out,
                             uint64_t* nodes_accessed) {
  if (!built_) {
    SEGIDX_RETURN_IF_ERROR(Finalize());
  }
  return tree_->Search(query, out, nodes_accessed);
}

}  // namespace segidx::skeleton
