// Skeleton index policy (paper Section 4): distribution prediction,
// pre-construction, and the periodic coalescing pass.
//
// A SkeletonIndex wraps an (empty) R-Tree or SR-Tree:
//   1. the first `prediction_sample` inserts are buffered in memory while
//      per-dimension histograms of the record centers accumulate
//      ("distribution prediction"; the paper found 5-10% of the expected
//      input to work well);
//   2. the skeleton hierarchy is then computed (spec_builder.h) and
//      materialized (RTree::PreBuild), and the buffered records are
//      inserted;
//   3. afterwards every insert goes straight to the tree, and after every
//      `coalesce_interval` inserts the `coalesce_candidates` least
//      frequently modified leaves are considered for merging with an
//      adjacent sibling (RTree::CoalesceSparseLeaves).
//
// With `prediction_sample == 0` the skeleton is built immediately from the
// configured domains assuming a uniform distribution (the paper's
// alternative when no sample is available).

#ifndef SEGIDX_SKELETON_SKELETON_INDEX_H_
#define SEGIDX_SKELETON_SKELETON_INDEX_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/geometry.h"
#include "common/histogram.h"
#include "common/status.h"
#include "common/types.h"
#include "rtree/rtree.h"

namespace segidx::skeleton {

struct SkeletonOptions {
  // Estimated total number of tuples (sizes the hierarchy).
  uint64_t expected_tuples = 100000;
  // Number of initial inserts buffered for distribution prediction.
  // 0 builds immediately with uniform histograms.
  uint64_t prediction_sample = 10000;
  // Domain of the data in each dimension.
  Interval x_domain{0, 100000};
  Interval y_domain{0, 100000};
  // Histogram resolution used for distribution prediction.
  int histogram_buckets = 100;
  // Run a coalescing pass after every this many post-build inserts
  // (paper: 1000). 0 disables coalescing.
  uint64_t coalesce_interval = 1000;
  // Leaves examined per coalescing pass (paper: 10).
  int coalesce_candidates = 10;
};

class SkeletonIndex {
 public:
  // `tree` must be empty and outlive this object.
  SkeletonIndex(rtree::RTree* tree, const SkeletonOptions& options);

  // Wraps an already-built skeleton tree (e.g., re-opened from disk): the
  // prediction phase is skipped and inserts go straight to the tree.
  static std::unique_ptr<SkeletonIndex> Resume(rtree::RTree* tree,
                                               const SkeletonOptions& options);

  // Buffers or forwards one record; may trigger skeleton construction or a
  // coalescing pass.
  Status Insert(const Rect& rect, TupleId tid);

  // Builds the skeleton from whatever sample has accumulated and flushes
  // the buffer. Idempotent. Called automatically by the first Search()
  // while still buffering.
  Status Finalize();

  // Forwards to the tree (after Finalize()).
  Status Search(const Rect& query, std::vector<rtree::SearchHit>* out,
                uint64_t* nodes_accessed = nullptr);

  bool built() const { return built_; }
  uint64_t inserted() const { return inserted_; }
  rtree::RTree* tree() { return tree_; }

 private:
  struct ResumeTag {};
  SkeletonIndex(rtree::RTree* tree, const SkeletonOptions& options,
                ResumeTag tag);

  rtree::RTree* tree_;
  SkeletonOptions options_;

  bool built_ = false;
  uint64_t inserted_ = 0;
  uint64_t since_coalesce_ = 0;
  std::vector<std::pair<Rect, TupleId>> buffer_;
  Histogram x_hist_;
  Histogram y_hist_;
};

}  // namespace segidx::skeleton

#endif  // SEGIDX_SKELETON_SKELETON_INDEX_H_
