// Parallel query execution over a read-only tree.
//
// QueryEngine owns a fixed pool of worker threads and fans a batch of
// search rectangles out across them, relying on the concurrent read path
// (pager partition latches + per-call node-access counting in
// RTree::Search). Results are returned in query order and are identical to
// running the same queries serially — workers claim whole queries, never
// split one, so each result vector is produced by exactly one thread.
//
// Concurrency contract: SearchBatch() holds the tree's read phase
// (PhaseGate) for the duration of the batch, so it may be called while
// other threads Insert/Delete — mutation simply waits, and the batch sees
// a consistent snapshot (results are deterministic for a given tree
// state). Workers run RTree::SearchGateHeld under that one admission; see
// docs/CONCURRENCY.md. One batch runs at a time per engine; SearchBatch
// itself is not reentrant.

#ifndef SEGIDX_EXEC_QUERY_ENGINE_H_
#define SEGIDX_EXEC_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/geometry.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "rtree/rtree.h"

namespace segidx::exec {

struct QueryEngineOptions {
  // Worker threads in the pool; clamped to [1, 64]. With 1, the batch
  // still runs on the (single) worker, exercising the same code path.
  int num_threads = 4;
};

// One query's outcome within a batch. SearchBatch pre-marks every entry
// kCancelled ("not claimed"); a worker that executes the query overwrites
// `status` with that query's real outcome, so after any batch — success,
// error, cancel, or deadline — each entry states deterministically whether
// its `hits` are valid (status ok), partial (ok + partial), or absent.
struct BatchResult {
  Status status = Status::OK();
  std::vector<rtree::SearchHit> hits;
  uint64_t nodes_accessed = 0;
  // With SearchOptions::allow_partial, damaged subtrees are skipped rather
  // than failing the query: `partial` is set and the skipped subtree roots
  // are listed here. Hits outside the skipped subtrees are complete.
  bool partial = false;
  std::vector<storage::PageId> skipped_subtrees;
};

class QueryEngine {
 public:
  // The tree (and its pager) must outlive the engine.
  QueryEngine(rtree::RTree* tree, const QueryEngineOptions& options);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Executes every query and fills `results` (resized to queries.size(),
  // same order). On failure the per-entry statuses say exactly which
  // queries completed: executed entries carry their own status, unclaimed
  // entries stay kCancelled. The returned batch status is derived from the
  // entries in query order — the first hard error wins; otherwise
  // kCancelled (cancel token fired) beats kDeadlineExceeded beats OK.
  Status SearchBatch(const std::vector<Rect>& queries,
                     std::vector<BatchResult>* results);

  // Same, with a per-batch deadline / cancel token / partial-results
  // policy applied to every query. A fired cancel token stops unclaimed
  // queries; an expired deadline fails each remaining query at its first
  // node-fetch check without touching any pages.
  Status SearchBatch(const std::vector<Rect>& queries,
                     const rtree::SearchOptions& options,
                     std::vector<BatchResult>* results);

  // Total node accesses across every query of every batch so far.
  uint64_t total_node_accesses() const {
    return total_node_accesses_.load(std::memory_order_relaxed);
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  rtree::RTree* tree_;

  common::Mutex mu_;
  common::CondVar work_cv_;  // Workers wait for a batch (or stop).
  common::CondVar done_cv_;  // SearchBatch waits for completion.
  // Bumped once per batch.
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  // Current batch.
  const std::vector<Rect>* queries_ GUARDED_BY(mu_) = nullptr;
  std::vector<BatchResult>* results_ GUARDED_BY(mu_) = nullptr;
  const rtree::SearchOptions* options_ GUARDED_BY(mu_) = nullptr;
  // Workers still in the current batch.
  int active_workers_ GUARDED_BY(mu_) = 0;

  std::atomic<size_t> next_{0};       // Next unclaimed query index.
  std::atomic<bool> failed_{false};   // Short-circuits the rest of a batch.
  std::atomic<uint64_t> total_node_accesses_{0};

  std::vector<std::thread> workers_;
};

}  // namespace segidx::exec

#endif  // SEGIDX_EXEC_QUERY_ENGINE_H_
