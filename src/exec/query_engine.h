// Parallel query execution over a read-only tree.
//
// QueryEngine owns a fixed pool of worker threads and fans a batch of
// search rectangles out across them, relying on the concurrent read path
// (pager partition latches + per-call node-access counting in
// RTree::Search). Results are returned in query order and are identical to
// running the same queries serially — workers claim whole queries, never
// split one, so each result vector is produced by exactly one thread.
//
// Concurrency contract: SearchBatch() may not overlap with tree mutation
// (Insert/Delete/bulk load) — the single-writer / multi-reader rule of the
// storage layer. One batch runs at a time per engine; SearchBatch itself
// is not reentrant.

#ifndef SEGIDX_EXEC_QUERY_ENGINE_H_
#define SEGIDX_EXEC_QUERY_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "rtree/rtree.h"

namespace segidx::exec {

struct QueryEngineOptions {
  // Worker threads in the pool; clamped to [1, 64]. With 1, the batch
  // still runs on the (single) worker, exercising the same code path.
  int num_threads = 4;
};

// One query's outcome within a batch.
struct BatchResult {
  std::vector<rtree::SearchHit> hits;
  uint64_t nodes_accessed = 0;
};

class QueryEngine {
 public:
  // The tree (and its pager) must outlive the engine.
  QueryEngine(rtree::RTree* tree, const QueryEngineOptions& options);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Executes every query and fills `results` (resized to queries.size(),
  // same order). If any query fails, the first error is returned and the
  // remaining unclaimed queries are skipped; `results` contents are then
  // unspecified.
  Status SearchBatch(const std::vector<Rect>& queries,
                     std::vector<BatchResult>* results);

  // Total node accesses across every query of every batch so far.
  uint64_t total_node_accesses() const {
    return total_node_accesses_.load(std::memory_order_relaxed);
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  rtree::RTree* tree_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // Workers wait for a batch (or stop).
  std::condition_variable done_cv_;   // SearchBatch waits for completion.
  uint64_t generation_ = 0;           // Bumped once per batch.
  bool stop_ = false;
  const std::vector<Rect>* queries_ = nullptr;   // Current batch.
  std::vector<BatchResult>* results_ = nullptr;
  int active_workers_ = 0;            // Workers still in the current batch.
  Status batch_status_;               // First error of the current batch.

  std::atomic<size_t> next_{0};       // Next unclaimed query index.
  std::atomic<bool> failed_{false};   // Short-circuits the rest of a batch.
  std::atomic<uint64_t> total_node_accesses_{0};

  std::vector<std::thread> workers_;
};

}  // namespace segidx::exec

#endif  // SEGIDX_EXEC_QUERY_ENGINE_H_
