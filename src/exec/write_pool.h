// Parallel write execution over a concurrently-writable tree.
//
// WritePool is the mutation-side twin of QueryEngine: a fixed pool of
// worker threads that fans a batch of insert operations out across them.
// Each worker claims whole operations from a shared cursor and applies
// them through RTree::Insert, which enters the tree's shared write phase
// and latch-couples down the tree (docs/CONCURRENCY.md). Durability is
// the caller's policy: an optional commit callback — typically
// IntervalIndex::Commit, which batches through the pager's group-commit
// sequencer — is invoked by each worker every `commit_every` applied
// operations, and once more by ApplyBatch before it returns, so N workers
// committing on a cadence amortize one checkpoint per group-commit batch.
//
// Concurrency contract: ApplyBatch may overlap with searches and with
// SearchBatch on the same tree (phases alternate under the gate's
// round-robin). One batch runs at a time per pool; ApplyBatch itself is
// not reentrant.

#ifndef SEGIDX_EXEC_WRITE_POOL_H_
#define SEGIDX_EXEC_WRITE_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/geometry.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "rtree/rtree.h"

namespace segidx::exec {

struct WritePoolOptions {
  // Worker threads in the pool; clamped to [1, 64]. With 1, the batch
  // still runs on the (single) worker, exercising the same code path.
  int num_threads = 4;
  // Each worker invokes the commit callback after this many applied
  // operations. 0 disables cadence commits; ApplyBatch still runs one
  // final commit so no applied operation is left unacknowledged.
  uint64_t commit_every = 0;
};

// One insert operation.
struct WriteOp {
  Rect rect;
  TupleId tid = 0;
};

// Per-operation verdict of a batch (see ApplyBatch's `results`). Gives the
// caller a determinate outcome for every operation even when the batch
// short-circuits: an op either reached the tree (kApplied), failed inside
// the tree (kFailed, with its status), or was never claimed because a
// neighbor failed first (kSkipped — safe to retry as-is).
struct WriteOpResult {
  enum class Outcome : uint8_t { kSkipped = 0, kApplied, kFailed };
  Outcome outcome = Outcome::kSkipped;
  Status status;  // kFailed: the insert's error. Otherwise OK.
};

class WritePool {
 public:
  // The tree (and its pager) must outlive the pool. `commit` may be empty
  // (no durability inside the batch; the caller checkpoints afterwards).
  WritePool(rtree::RTree* tree, std::function<Status()> commit,
            const WritePoolOptions& options);
  ~WritePool();

  WritePool(const WritePool&) = delete;
  WritePool& operator=(const WritePool&) = delete;

  // Applies every operation, spreading them across the workers, then (if
  // a commit callback is set) commits once so the whole batch is durable
  // on return. On the first failed insert the batch short-circuits:
  // remaining unclaimed operations are skipped and the error is returned.
  // Which operations were applied before a failure is unspecified beyond
  // "every operation claimed before the failure was attempted" — unless
  // `results` is passed, in which case it is resized to ops.size() and
  // filled with each operation's determinate outcome (workers write
  // disjoint slots; the vector is complete when ApplyBatch returns).
  Status ApplyBatch(const std::vector<WriteOp>& ops,
                    std::vector<WriteOpResult>* results = nullptr);

  // Operations successfully applied across all batches so far.
  uint64_t total_applied() const {
    return total_applied_.load(std::memory_order_relaxed);
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  rtree::RTree* tree_;
  std::function<Status()> commit_;
  uint64_t commit_every_;

  common::Mutex mu_;
  common::CondVar work_cv_;  // Workers wait for a batch (or stop).
  common::CondVar done_cv_;  // ApplyBatch waits for completion.
  // Bumped once per batch.
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  // Current batch.
  const std::vector<WriteOp>* ops_ GUARDED_BY(mu_) = nullptr;
  // Per-op outcome slots for the current batch (null when the caller did
  // not ask). Workers write only the slots of the ops they claimed.
  std::vector<WriteOpResult>* results_ GUARDED_BY(mu_) = nullptr;
  // First error of the current batch.
  Status batch_status_ GUARDED_BY(mu_);
  // Workers still in the current batch.
  int active_workers_ GUARDED_BY(mu_) = 0;

  std::atomic<size_t> next_{0};       // Next unclaimed operation index.
  std::atomic<bool> failed_{false};   // Short-circuits the rest of a batch.
  std::atomic<uint64_t> total_applied_{0};

  std::vector<std::thread> workers_;
};

}  // namespace segidx::exec

#endif  // SEGIDX_EXEC_WRITE_POOL_H_
