#include "exec/query_engine.h"

#include <algorithm>

namespace segidx::exec {

QueryEngine::QueryEngine(rtree::RTree* tree,
                         const QueryEngineOptions& options)
    : tree_(tree) {
  const int n = std::clamp(options.num_threads, 1, 64);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryEngine::~QueryEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

Status QueryEngine::SearchBatch(const std::vector<Rect>& queries,
                                std::vector<BatchResult>* results) {
  results->clear();
  results->resize(queries.size());
  if (queries.empty()) return Status::OK();

  std::unique_lock<std::mutex> lock(mu_);
  queries_ = &queries;
  results_ = results;
  batch_status_ = Status::OK();
  next_.store(0, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  active_workers_ = static_cast<int>(workers_.size());
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return active_workers_ == 0; });
  queries_ = nullptr;
  results_ = nullptr;
  return batch_status_;
}

void QueryEngine::WorkerLoop() {
  uint64_t seen_gen = 0;
  for (;;) {
    const std::vector<Rect>* queries;
    std::vector<BatchResult>* results;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stop_ || generation_ != seen_gen; });
      if (stop_) return;
      seen_gen = generation_;
      queries = queries_;
      results = results_;
    }

    uint64_t local_accesses = 0;
    Status local_status = Status::OK();
    for (;;) {
      if (failed_.load(std::memory_order_relaxed)) break;
      const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries->size()) break;
      BatchResult& r = (*results)[i];
      const Status s = tree_->Search((*queries)[i], &r.hits,
                                     &r.nodes_accessed);
      local_accesses += r.nodes_accessed;
      if (!s.ok()) {
        local_status = s;
        failed_.store(true, std::memory_order_relaxed);
        break;
      }
    }
    total_node_accesses_.fetch_add(local_accesses,
                                   std::memory_order_relaxed);

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!local_status.ok() && batch_status_.ok()) {
        batch_status_ = local_status;
      }
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace segidx::exec
