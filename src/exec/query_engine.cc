#include "exec/query_engine.h"

#include <algorithm>

#include "check/lock_order.h"

namespace segidx::exec {

namespace {
using check::LockClass;
using check::TrackedMutexLock;
}  // namespace

QueryEngine::QueryEngine(rtree::RTree* tree,
                         const QueryEngineOptions& options)
    : tree_(tree) {
  const int n = std::clamp(options.num_threads, 1, 64);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryEngine::~QueryEngine() {
  {
    TrackedMutexLock lock(&mu_, LockClass::kExecPool);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

Status QueryEngine::SearchBatch(const std::vector<Rect>& queries,
                                std::vector<BatchResult>* results) {
  return SearchBatch(queries, rtree::SearchOptions(), results);
}

Status QueryEngine::SearchBatch(const std::vector<Rect>& queries,
                                const rtree::SearchOptions& options,
                                std::vector<BatchResult>* results) {
  results->clear();
  results->resize(queries.size());
  // Every entry starts "not claimed"; workers overwrite the status of each
  // query they actually execute, so an aborted batch leaves a precise
  // record of which entries hold valid hits.
  for (BatchResult& r : *results) {
    r.status = CancelledError("query not claimed: batch aborted early");
  }
  if (queries.empty()) return Status::OK();

  // The batch runs under one read-phase admission held by this thread:
  // writers are excluded for the whole batch, so the results are a
  // consistent snapshot and deterministic regardless of worker timing.
  // Workers use SearchGateHeld (never Search) — a nested gate entry from a
  // worker could deadlock against the fairness rotation.
  rtree::PhaseGate::Scope gate(&tree_->phase_gate(),
                               rtree::PhaseGate::Mode::kRead);

  {
    TrackedMutexLock lock(&mu_, LockClass::kExecPool);
    queries_ = &queries;
    results_ = results;
    options_ = &options;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    active_workers_ = static_cast<int>(workers_.size());
    ++generation_;
    work_cv_.NotifyAll();
    while (active_workers_ != 0) done_cv_.Wait(&mu_);
    queries_ = nullptr;
    results_ = nullptr;
    options_ = nullptr;
  }

  // Derive the batch status from the per-entry statuses in query order so
  // it does not depend on which worker reported first.
  const Status* cancelled = nullptr;
  const Status* deadline = nullptr;
  for (const BatchResult& r : *results) {
    if (r.status.ok()) continue;
    switch (r.status.code()) {
      case StatusCode::kCancelled:
        if (cancelled == nullptr) cancelled = &r.status;
        break;
      case StatusCode::kDeadlineExceeded:
        if (deadline == nullptr) deadline = &r.status;
        break;
      default:
        return r.status;  // First hard error in query order wins.
    }
  }
  if (cancelled != nullptr) return *cancelled;
  if (deadline != nullptr) return *deadline;
  return Status::OK();
}

void QueryEngine::WorkerLoop() {
  uint64_t seen_gen = 0;
  for (;;) {
    const std::vector<Rect>* queries;
    std::vector<BatchResult>* results;
    const rtree::SearchOptions* options;
    {
      TrackedMutexLock lock(&mu_, LockClass::kExecPool);
      while (!stop_ && generation_ == seen_gen) work_cv_.Wait(&mu_);
      if (stop_) return;
      seen_gen = generation_;
      queries = queries_;
      results = results_;
      options = options_;
    }

    uint64_t local_accesses = 0;
    for (;;) {
      if (failed_.load(std::memory_order_relaxed)) break;
      const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries->size()) break;
      BatchResult& r = (*results)[i];
      rtree::SearchOutcome outcome;
      r.status = tree_->SearchGateHeld((*queries)[i], *options, &r.hits,
                                       &outcome);
      r.nodes_accessed = outcome.nodes_accessed;
      r.partial = outcome.partial;
      r.skipped_subtrees = std::move(outcome.skipped_subtrees);
      local_accesses += r.nodes_accessed;
      // Hard errors and cancellation stop the batch: nothing more is
      // claimed. An expired deadline keeps claiming — each remaining
      // query fails its first deadline check without touching a page, so
      // every entry ends with its own kDeadlineExceeded status.
      if (!r.status.ok() &&
          r.status.code() != StatusCode::kDeadlineExceeded) {
        failed_.store(true, std::memory_order_relaxed);
        break;
      }
    }
    total_node_accesses_.fetch_add(local_accesses,
                                   std::memory_order_relaxed);

    {
      TrackedMutexLock lock(&mu_, LockClass::kExecPool);
      if (--active_workers_ == 0) done_cv_.NotifyAll();
    }
  }
}

}  // namespace segidx::exec
