#include "exec/write_pool.h"

#include <algorithm>

#include "check/lock_order.h"

namespace segidx::exec {

namespace {
using check::LockClass;
using check::TrackedMutexLock;
}  // namespace

WritePool::WritePool(rtree::RTree* tree, std::function<Status()> commit,
                     const WritePoolOptions& options)
    : tree_(tree),
      commit_(std::move(commit)),
      commit_every_(options.commit_every) {
  const int n = std::clamp(options.num_threads, 1, 64);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WritePool::~WritePool() {
  {
    TrackedMutexLock lock(&mu_, LockClass::kExecPool);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

Status WritePool::ApplyBatch(const std::vector<WriteOp>& ops,
                             std::vector<WriteOpResult>* results) {
  if (results != nullptr) {
    results->assign(ops.size(), WriteOpResult{});
  }
  if (ops.empty()) return Status::OK();

  Status status;
  {
    TrackedMutexLock lock(&mu_, LockClass::kExecPool);
    ops_ = &ops;
    results_ = results;
    batch_status_ = Status::OK();
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    active_workers_ = static_cast<int>(workers_.size());
    ++generation_;
    work_cv_.NotifyAll();
    while (active_workers_ != 0) done_cv_.Wait(&mu_);
    ops_ = nullptr;
    results_ = nullptr;
    status = batch_status_;
  }

  // Final commit: every applied operation of the batch is durable before
  // ApplyBatch acknowledges it. Runs even after a failed insert so the
  // operations that did apply are not silently volatile.
  if (commit_ != nullptr) {
    Status commit_status = commit_();
    if (status.ok()) status = std::move(commit_status);
  }
  return status;
}

void WritePool::WorkerLoop() {
  uint64_t seen_gen = 0;
  for (;;) {
    const std::vector<WriteOp>* ops;
    std::vector<WriteOpResult>* results;
    {
      TrackedMutexLock lock(&mu_, LockClass::kExecPool);
      while (!stop_ && generation_ == seen_gen) work_cv_.Wait(&mu_);
      if (stop_) return;
      seen_gen = generation_;
      ops = ops_;
      results = results_;
    }

    uint64_t applied = 0;
    uint64_t since_commit = 0;
    Status first_error;
    for (;;) {
      if (failed_.load(std::memory_order_relaxed)) break;
      const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= ops->size()) break;
      const WriteOp& op = (*ops)[i];
      Status status = tree_->Insert(op.rect, op.tid);
      if (!status.ok()) {
        if (results != nullptr) {
          (*results)[i].outcome = WriteOpResult::Outcome::kFailed;
          (*results)[i].status = status;
        }
        first_error = std::move(status);
        failed_.store(true, std::memory_order_relaxed);
        break;
      }
      if (results != nullptr) {
        (*results)[i].outcome = WriteOpResult::Outcome::kApplied;
      }
      ++applied;
      // Commit cadence: concurrent workers hitting this together are
      // coalesced into one checkpoint by the group-commit sequencer.
      if (commit_ != nullptr && commit_every_ > 0 &&
          ++since_commit >= commit_every_) {
        since_commit = 0;
        status = commit_();
        if (!status.ok()) {
          first_error = std::move(status);
          failed_.store(true, std::memory_order_relaxed);
          break;
        }
      }
    }
    total_applied_.fetch_add(applied, std::memory_order_relaxed);

    {
      TrackedMutexLock lock(&mu_, LockClass::kExecPool);
      if (!first_error.ok() && batch_status_.ok()) {
        batch_status_ = std::move(first_error);
      }
      if (--active_workers_ == 0) done_cv_.NotifyAll();
    }
  }
}

}  // namespace segidx::exec
