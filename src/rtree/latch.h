// Concurrency primitives for the tree write path (docs/CONCURRENCY.md).
//
// Two layers:
//
//  * PhaseGate — a three-mode gate (readers share / writers share /
//    exclusive alone) that keeps structurally incompatible operations out
//    of each other's way without per-node reader latches. Searches enter
//    read-shared, Insert/Delete enter write-shared (and rely on node
//    latches below for mutual exclusion among themselves), and whole-tree
//    operations (checkpoint, invariant checks, bulk load, coalescing)
//    enter exclusive. Mode turns rotate when other-mode waiters exist, so
//    no mode can be starved indefinitely.
//
//  * NodeLatchTable — an exclusive latch per live node extent, keyed by
//    the extent's first block. Writers crab these latches down the tree
//    (parent-then-child order only, see docs/CONCURRENCY.md for the
//    deadlock-freedom argument). Readers never touch node latches — they
//    are excluded wholesale by the phase gate.
//
// The contract is machine-checked three ways (docs/CONCURRENCY.md §7):
// clang -Wthread-safety via the annotations below, the SEGIDX_LOCKDEP
// runtime validator hooked into Enter/Acquire (check/lock_order.h), and
// tools/lint/check_concurrency.py (bare Enter/Exit outside Scope, blocking
// under map_mu_). Both classes also count contention (LatchStats) so
// gate/latch waits are visible in `segidx stats` and bench-mixed.
//
// Both are self-contained standard-library constructs; neither knows about
// pages or nodes beyond the 32-bit block key.

#ifndef SEGIDX_RTREE_LATCH_H_
#define SEGIDX_RTREE_LATCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "check/lock_order.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace segidx::rtree {

// Contention counters for the write-path primitives. Snapshot via
// RTree::latch_stats(); a consistent read requires quiescence, like every
// other stats struct in the tree.
struct LatchStats {
  // Phase gate, indexed by PhaseGate::Mode (0 read, 1 write, 2 exclusive).
  uint64_t gate_enters[3] = {0, 0, 0};
  uint64_t gate_blocked[3] = {0, 0, 0};  // Entries that had to wait.
  uint64_t gate_wait_us[3] = {0, 0, 0};  // Total blocked time per mode.
  // Node latch table.
  uint64_t latch_acquires = 0;
  uint64_t latch_blocked = 0;  // Acquires that found the latch held.
  uint64_t latch_wait_us = 0;  // Total blocked time.
};

// Three-way phase gate. Threads in the same shared mode run concurrently;
// threads in different modes never overlap. kExclusive admits one thread
// alone. Fairness: an entering thread yields to waiters of other modes
// (it queues instead of piggybacking on its running mode), and on the last
// exit the turn advances round-robin to the next mode with waiters.
class PhaseGate {
 public:
  enum class Mode : int {
    kRead = 0,       // Shared among searches.
    kWrite = 1,      // Shared among Insert/Delete (node latches arbitrate).
    kExclusive = 2,  // Alone: checkpoint, checks, bulk ops.
  };

  // Prefer Scope. Bare Enter/Exit outside this file is rejected by
  // tools/lint/check_concurrency.py — an early return between them leaks
  // the phase.
  void Enter(Mode mode);
  void Exit(Mode mode);

  // Adds this gate's counters into `out`.
  void AccumulateStats(LatchStats* out) const;

  // RAII scope. Movable so it can be returned from helpers.
  class Scope {
   public:
    Scope() = default;
    Scope(PhaseGate* gate, Mode mode) : gate_(gate), mode_(mode) {
      gate_->Enter(mode_);
    }
    Scope(Scope&& o) noexcept : gate_(o.gate_), mode_(o.mode_) {
      o.gate_ = nullptr;
    }
    Scope& operator=(Scope&& o) noexcept {
      if (this != &o) {
        Release();
        gate_ = o.gate_;
        mode_ = o.mode_;
        o.gate_ = nullptr;
      }
      return *this;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { Release(); }

    void Release() {
      if (gate_ != nullptr) {
        gate_->Exit(mode_);
        gate_ = nullptr;
      }
    }

   private:
    PhaseGate* gate_ = nullptr;
    Mode mode_ = Mode::kRead;
  };

 private:
  bool CanEnterLocked(Mode mode) const REQUIRES(mu_);

  mutable common::Mutex mu_;
  common::CondVar cv_;
  Mode active_mode_ GUARDED_BY(mu_) = Mode::kRead;
  // Mode favored when the gate drains empty.
  Mode turn_ GUARDED_BY(mu_) = Mode::kRead;
  int active_ GUARDED_BY(mu_) = 0;
  // Same-mode waiters still owed entry this turn.
  int admit_quota_ GUARDED_BY(mu_) = 0;
  int waiting_[3] GUARDED_BY(mu_) = {0, 0, 0};
  // Contention counters (LatchStats), updated under mu_ which Enter holds
  // anyway.
  uint64_t enters_[3] GUARDED_BY(mu_) = {0, 0, 0};
  uint64_t blocked_[3] GUARDED_BY(mu_) = {0, 0, 0};
  uint64_t wait_us_[3] GUARDED_BY(mu_) = {0, 0, 0};
};

// Exclusive latch per node extent, keyed by first block number. Entries are
// created on demand and reclaimed when the last interested thread releases,
// so the table stays proportional to the number of concurrently latched
// nodes, not the tree size. The internal map mutex is never held while
// blocking on an entry latch.
class NodeLatchTable {
 public:
  NodeLatchTable() = default;
  NodeLatchTable(const NodeLatchTable&) = delete;
  NodeLatchTable& operator=(const NodeLatchTable&) = delete;

  // How an acquisition satisfies the latch-order contract
  // (docs/CONCURRENCY.md §3). Declared at every call site and checked at
  // runtime by the SEGIDX_LOCKDEP validator.
  struct LatchOrigin {
    // Crabbing: the caller holds `parent`'s latch and is descending.
    static LatchOrigin Child(uint32_t parent) { return {true, parent}; }
    // Root retry protocol / SR-Tree demotion drain: the caller holds no
    // node latch at all.
    static LatchOrigin Standalone() { return {false, 0}; }

    bool has_parent = false;
    uint32_t parent_block = 0;
  };

  // Move-only RAII holder for one latched node.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& o) noexcept : table_(o.table_), entry_(o.entry_) {
      o.table_ = nullptr;
      o.entry_ = nullptr;
    }
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        Release();
        table_ = o.table_;
        entry_ = o.entry_;
        o.table_ = nullptr;
        o.entry_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { Release(); }

    void Release();
    bool held() const { return entry_ != nullptr; }
    uint32_t block() const;

   private:
    friend class NodeLatchTable;
    struct Entry {
      common::Mutex mu;
      int refs = 0;  // Guarded by the table's map_mu_.
      uint32_t block = 0;
    };
    Guard(NodeLatchTable* table, Entry* entry)
        : table_(table), entry_(entry) {}

    NodeLatchTable* table_ = nullptr;
    Entry* entry_ = nullptr;
  };

  // Blocks until the latch on `block` is held. The caller must follow the
  // tree latch order (parent before child; see docs/CONCURRENCY.md) and
  // declare how via `origin`.
  Guard Acquire(uint32_t block, LatchOrigin origin);

  // Adds this table's counters into `out`.
  void AccumulateStats(LatchStats* out) const;

 private:
  common::Mutex map_mu_;
  std::unordered_map<uint32_t, std::unique_ptr<Guard::Entry>> entries_
      GUARDED_BY(map_mu_);
  // Contention counters (LatchStats); relaxed — bumped outside map_mu_.
  std::atomic<uint64_t> acquires_{0};
  std::atomic<uint64_t> blocked_{0};
  std::atomic<uint64_t> wait_us_{0};
};

}  // namespace segidx::rtree

#endif  // SEGIDX_RTREE_LATCH_H_
