// Concurrency primitives for the tree write path (docs/CONCURRENCY.md).
//
// Two layers:
//
//  * PhaseGate — a three-mode gate (readers share / writers share /
//    exclusive alone) that keeps structurally incompatible operations out
//    of each other's way without per-node reader latches. Searches enter
//    read-shared, Insert/Delete enter write-shared (and rely on node
//    latches below for mutual exclusion among themselves), and whole-tree
//    operations (checkpoint, invariant checks, bulk load, coalescing)
//    enter exclusive. Mode turns rotate when other-mode waiters exist, so
//    no mode can be starved indefinitely.
//
//  * NodeLatchTable — an exclusive latch per live node extent, keyed by
//    the extent's first block. Writers crab these latches down the tree
//    (parent-then-child order only, see docs/CONCURRENCY.md for the
//    deadlock-freedom argument). Readers never touch node latches — they
//    are excluded wholesale by the phase gate.
//
// Both are self-contained standard-library constructs; neither knows about
// pages or nodes beyond the 32-bit block key.

#ifndef SEGIDX_RTREE_LATCH_H_
#define SEGIDX_RTREE_LATCH_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace segidx::rtree {

// Three-way phase gate. Threads in the same shared mode run concurrently;
// threads in different modes never overlap. kExclusive admits one thread
// alone. Fairness: an entering thread yields to waiters of other modes
// (it queues instead of piggybacking on its running mode), and on the last
// exit the turn advances round-robin to the next mode with waiters.
class PhaseGate {
 public:
  enum class Mode : int {
    kRead = 0,       // Shared among searches.
    kWrite = 1,      // Shared among Insert/Delete (node latches arbitrate).
    kExclusive = 2,  // Alone: checkpoint, checks, bulk ops.
  };

  void Enter(Mode mode);
  void Exit(Mode mode);

  // RAII scope. Movable so it can be returned from helpers.
  class Scope {
   public:
    Scope() = default;
    Scope(PhaseGate* gate, Mode mode) : gate_(gate), mode_(mode) {
      gate_->Enter(mode_);
    }
    Scope(Scope&& o) noexcept : gate_(o.gate_), mode_(o.mode_) {
      o.gate_ = nullptr;
    }
    Scope& operator=(Scope&& o) noexcept {
      if (this != &o) {
        Release();
        gate_ = o.gate_;
        mode_ = o.mode_;
        o.gate_ = nullptr;
      }
      return *this;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { Release(); }

    void Release() {
      if (gate_ != nullptr) {
        gate_->Exit(mode_);
        gate_ = nullptr;
      }
    }

   private:
    PhaseGate* gate_ = nullptr;
    Mode mode_ = Mode::kRead;
  };

 private:
  bool CanEnterLocked(Mode mode) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Mode active_mode_ = Mode::kRead;
  Mode turn_ = Mode::kRead;  // Mode favored when the gate drains empty.
  int active_ = 0;
  int admit_quota_ = 0;  // Same-mode waiters still owed entry this turn.
  int waiting_[3] = {0, 0, 0};
};

// Exclusive latch per node extent, keyed by first block number. Entries are
// created on demand and reclaimed when the last interested thread releases,
// so the table stays proportional to the number of concurrently latched
// nodes, not the tree size. The internal map mutex is never held while
// blocking on an entry latch.
class NodeLatchTable {
 public:
  NodeLatchTable() = default;
  NodeLatchTable(const NodeLatchTable&) = delete;
  NodeLatchTable& operator=(const NodeLatchTable&) = delete;

  // Move-only RAII holder for one latched node.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& o) noexcept : table_(o.table_), entry_(o.entry_) {
      o.table_ = nullptr;
      o.entry_ = nullptr;
    }
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        Release();
        table_ = o.table_;
        entry_ = o.entry_;
        o.table_ = nullptr;
        o.entry_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { Release(); }

    void Release();
    bool held() const { return entry_ != nullptr; }
    uint32_t block() const;

   private:
    friend class NodeLatchTable;
    struct Entry {
      std::mutex mu;
      int refs = 0;
      uint32_t block = 0;
    };
    Guard(NodeLatchTable* table, Entry* entry)
        : table_(table), entry_(entry) {}

    NodeLatchTable* table_ = nullptr;
    Entry* entry_ = nullptr;
  };

  // Blocks until the latch on `block` is held. The caller must follow the
  // tree latch order (parent before child; see docs/CONCURRENCY.md).
  Guard Acquire(uint32_t block);

 private:
  std::mutex map_mu_;
  std::unordered_map<uint32_t, std::unique_ptr<Guard::Entry>> entries_;
};

}  // namespace segidx::rtree

#endif  // SEGIDX_RTREE_LATCH_H_
