#include "rtree/node.h"

#include "common/logging.h"
#include "storage/coding.h"

namespace segidx::rtree {

namespace {

using storage::DecodeDouble;
using storage::DecodeU16;
using storage::DecodeU64;
using storage::EncodeDouble;
using storage::EncodeU16;
using storage::EncodeU64;

void EncodeRect(uint8_t* dst, const Rect& r) {
  EncodeDouble(dst, r.x.lo);
  EncodeDouble(dst + 8, r.x.hi);
  EncodeDouble(dst + 16, r.y.lo);
  EncodeDouble(dst + 24, r.y.hi);
}

Rect DecodeRect(const uint8_t* src) {
  Rect r;
  r.x.lo = DecodeDouble(src);
  r.x.hi = DecodeDouble(src + 8);
  r.y.lo = DecodeDouble(src + 16);
  r.y.hi = DecodeDouble(src + 24);
  return r;
}

}  // namespace

size_t Node::SerializedBytes() const {
  if (is_leaf()) {
    return kNodeHeaderBytes + records.size() * kLeafEntryBytes;
  }
  return kNodeHeaderBytes + branches.size() * kBranchEntryBytes +
         spanning.size() * kSpanningEntryBytes;
}

Rect Node::ComputeMbr() const {
  SEGIDX_CHECK_GT(entry_count(), 0u);
  bool first = true;
  Rect mbr;
  auto fold = [&first, &mbr](const Rect& r) {
    mbr = first ? r : mbr.Enclose(r);
    first = false;
  };
  if (is_leaf()) {
    for (const LeafEntry& e : records) fold(e.rect);
  } else {
    for (const BranchEntry& b : branches) fold(b.rect);
    for (const SpanningEntry& s : spanning) fold(s.rect);
  }
  return mbr;
}

int Node::FindBranch(storage::PageId child) const {
  for (size_t i = 0; i < branches.size(); ++i) {
    if (branches[i].child == child) return static_cast<int>(i);
  }
  return -1;
}

Status Node::Serialize(uint8_t* buf, size_t buf_size,
                       PageChecksumKind kind) const {
  const size_t need = SerializedBytes();
  if (need > buf_size) {
    return InternalError("node does not fit in its extent");
  }
  EncodeU16(buf, level);
  EncodeU16(buf + 2,
            static_cast<uint16_t>(is_leaf() ? records.size()
                                            : branches.size()));
  EncodeU16(buf + 4, static_cast<uint16_t>(spanning.size()));
  size_t off = kNodeHeaderBytes;
  if (is_leaf()) {
    for (const LeafEntry& e : records) {
      EncodeRect(buf + off, e.rect);
      EncodeU64(buf + off + 32, e.tid);
      off += kLeafEntryBytes;
    }
  } else {
    for (const BranchEntry& b : branches) {
      EncodeRect(buf + off, b.rect);
      EncodeU64(buf + off + 32, b.child.Encode());
      off += kBranchEntryBytes;
    }
    for (const SpanningEntry& s : spanning) {
      EncodeRect(buf + off, s.rect);
      EncodeU64(buf + off + 32, s.tid);
      EncodeU64(buf + off + 40, s.linked_child);
      off += kSpanningEntryBytes;
    }
  }
  // Checksum lives in the header's reserved field (docs/FILE_FORMAT.md).
  // CRC32C covers the whole extent, so zero the unused tail first — bytes
  // left over from an extent's previous life must not count.
  if (kind == PageChecksumKind::kCrc32c && need < buf_size) {
    std::memset(buf + need, 0, buf_size - need);
  }
  EncodeU16(buf + 6,
            PageChecksum(buf, kind == PageChecksumKind::kCrc32c ? buf_size
                                                                : need,
                         kind));
  return Status::OK();
}

uint16_t Node::PageChecksum(const uint8_t* buf, size_t n,
                            PageChecksumKind kind) {
  if (kind == PageChecksumKind::kCrc32c) {
    // CRC32C over the header minus the checksum field, then the rest of
    // the extent, folded to the 16 bits the header has room for.
    uint32_t crc = storage::Crc32c(buf, 6);
    crc = storage::Crc32c(buf + kNodeHeaderBytes, n - kNodeHeaderBytes, crc);
    return static_cast<uint16_t>(crc ^ (crc >> 16));
  }
  const uint16_t head = storage::Checksum16(buf, 6);
  return static_cast<uint16_t>(
      head ^ storage::Checksum16(buf + kNodeHeaderBytes,
                                 n - kNodeHeaderBytes));
}

Result<Node> Node::Deserialize(const uint8_t* buf, size_t buf_size,
                               PageChecksumKind kind) {
  if (buf_size < kNodeHeaderBytes) {
    return CorruptionError("node extent smaller than header");
  }
  // The v2 checksum covers the full extent independently of the entry
  // counts, so damage anywhere — counts included — surfaces here first.
  if (kind == PageChecksumKind::kCrc32c &&
      DecodeU16(buf + 6) != PageChecksum(buf, buf_size, kind)) {
    return CorruptionError(
        "node page CRC32C checksum mismatch (extent payload damaged)");
  }
  Node node;
  node.level = DecodeU16(buf);
  const uint16_t entry_count = DecodeU16(buf + 2);
  const uint16_t spanning_count = DecodeU16(buf + 4);
  size_t need = kNodeHeaderBytes;
  if (node.level == 0) {
    need += static_cast<size_t>(entry_count) * kLeafEntryBytes;
    if (spanning_count != 0) {
      return CorruptionError("leaf node with spanning records");
    }
  } else {
    need += static_cast<size_t>(entry_count) * kBranchEntryBytes +
            static_cast<size_t>(spanning_count) * kSpanningEntryBytes;
  }
  if (need > buf_size) {
    return CorruptionError("node entry counts exceed extent size");
  }
  if (kind == PageChecksumKind::kFnv16 &&
      DecodeU16(buf + 6) != PageChecksum(buf, need, kind)) {
    return CorruptionError("node page checksum mismatch");
  }
  size_t off = kNodeHeaderBytes;
  if (node.level == 0) {
    node.records.reserve(entry_count);
    for (uint16_t i = 0; i < entry_count; ++i) {
      LeafEntry e;
      e.rect = DecodeRect(buf + off);
      e.tid = DecodeU64(buf + off + 32);
      node.records.push_back(e);
      off += kLeafEntryBytes;
    }
  } else {
    node.branches.reserve(entry_count);
    for (uint16_t i = 0; i < entry_count; ++i) {
      BranchEntry b;
      b.rect = DecodeRect(buf + off);
      b.child = storage::PageId::Decode(DecodeU64(buf + off + 32));
      node.branches.push_back(b);
      off += kBranchEntryBytes;
    }
    node.spanning.reserve(spanning_count);
    for (uint16_t i = 0; i < spanning_count; ++i) {
      SpanningEntry s;
      s.rect = DecodeRect(buf + off);
      s.tid = DecodeU64(buf + off + 32);
      s.linked_child = DecodeU64(buf + off + 40);
      node.spanning.push_back(s);
      off += kSpanningEntryBytes;
    }
  }
  return node;
}

}  // namespace segidx::rtree
