#include "rtree/rtree.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <limits>

#include "common/logging.h"
#include "storage/coding.h"

namespace segidx::rtree {

namespace {

using check::LockClass;
using check::TrackedMutexLock;
using LatchOrigin = NodeLatchTable::LatchOrigin;

constexpr uint32_t kTreeMetaMagic = 0x54524545;  // "TREE"
constexpr uint16_t kTreeMetaVersion = 1;
constexpr size_t kTreeMetaBytes = RTree::kTreeMetaBytes;

// Safety valve against pathological reinsertion cascades.
constexpr int kMaxReinsertIterations = 1 << 20;

}  // namespace

RTree::RTree(storage::Pager* pager, const TreeOptions& options)
    : options_(options), pager_(pager) {
  SEGIDX_CHECK(pager != nullptr);
  checksum_kind_ = pager->format_version() == 1 ? PageChecksumKind::kFnv16
                                                : PageChecksumKind::kCrc32c;
}

Result<std::unique_ptr<RTree>> RTree::Create(storage::Pager* pager,
                                             const TreeOptions& options) {
  if (options.enable_spanning) {
    return InvalidArgumentError(
        "plain RTree cannot enable spanning records; use SRTree");
  }
  if (options.branch_fraction <= 0 || options.branch_fraction > 1) {
    return InvalidArgumentError("branch_fraction must be in (0, 1]");
  }
  if (options.min_fill_fraction <= 0 || options.min_fill_fraction > 0.5) {
    return InvalidArgumentError("min_fill_fraction must be in (0, 0.5]");
  }
  std::unique_ptr<RTree> tree(new RTree(pager, options));
  SEGIDX_RETURN_IF_ERROR(tree->SetupEmptyRoot());
  return tree;
}

Result<std::unique_ptr<RTree>> RTree::Open(storage::Pager* pager) {
  TreeOptions options;
  std::unique_ptr<RTree> tree(new RTree(pager, options));
  SEGIDX_RETURN_IF_ERROR(tree->LoadMeta());
  if (tree->options_.enable_spanning) {
    return InvalidArgumentError(
        "file holds an SR-Tree; open it with SRTree::Open");
  }
  return std::unique_ptr<RTree>(std::move(tree));
}

Status RTree::SetupEmptyRoot() {
  Node root;
  root.level = 0;
  SEGIDX_ASSIGN_OR_RETURN(storage::PageHandle page,
                          pager_->Allocate(SizeClassForLevel(0)));
  SEGIDX_RETURN_IF_ERROR(root.Serialize(page.data(), page.size(), checksum_kind_));
  page.MarkDirty();
  TrackedMutexLock lock(&meta_mu_, LockClass::kTreeMeta);
  root_ = page.id();
  root_level_ = 0;
  root_region_valid_ = false;
  std::atomic_ref<uint64_t>(record_count_)
      .store(0, std::memory_order_relaxed);
  return Status::OK();
}

uint8_t RTree::SizeClassForLevel(int level) const {
  if (!options_.double_node_size_per_level) return 0;
  const int capped = std::min<int>(level, pager_->max_size_class());
  return static_cast<uint8_t>(capped);
}

size_t RTree::NodeBytes(int level) const {
  return pager_->ExtentBytes(SizeClassForLevel(level));
}

size_t RTree::LeafCapacity() const {
  return NodeCapacity::LeafEntries(NodeBytes(0));
}

size_t RTree::BranchCapacity(int level) const {
  SEGIDX_CHECK_GT(level, 0);
  return (NodeBytes(level) - kNodeHeaderBytes) / kBranchEntryBytes;
}

size_t RTree::BranchPlanningCapacity(int level) const {
  if (!options_.enable_spanning) return BranchCapacity(level);
  const size_t entry_bytes = NodeBytes(level) - kNodeHeaderBytes;
  const size_t quota = static_cast<size_t>(
      options_.branch_fraction * static_cast<double>(entry_bytes) /
      kBranchEntryBytes);
  return std::max<size_t>(quota, 2);
}

size_t RTree::SpanningCapacity(int level) const {
  if (!options_.enable_spanning) return 0;
  const size_t entry_bytes = NodeBytes(level) - kNodeHeaderBytes;
  return static_cast<size_t>((1.0 - options_.branch_fraction) *
                             static_cast<double>(entry_bytes) /
                             kSpanningEntryBytes);
}

bool RTree::NonLeafOverflowed(const Node& node) const {
  return node.branches.size() > BranchCapacity(node.level) ||
         node.SerializedBytes() > NodeBytes(node.level);
}

bool RTree::HasByteRoomForSpanning(const Node& node) const {
  return node.SerializedBytes() + kSpanningEntryBytes <=
         NodeBytes(node.level);
}

Result<Node> RTree::ReadNode(storage::PageId id) {
  CountNodeAccess();
  SEGIDX_ASSIGN_OR_RETURN(storage::PageHandle page, pager_->Fetch(id));
  return Node::Deserialize(page.data(), page.size(), checksum_kind_);
}

Result<Node> RTree::ReadNode(storage::PageId id, uint64_t* accesses) const {
  ++*accesses;
  SEGIDX_ASSIGN_OR_RETURN(storage::PageHandle page, pager_->Fetch(id));
  return Node::Deserialize(page.data(), page.size(), checksum_kind_);
}

Status RTree::WriteNode(storage::PageId id, const Node& node) {
  SEGIDX_ASSIGN_OR_RETURN(storage::PageHandle page, pager_->Fetch(id));
  SEGIDX_RETURN_IF_ERROR(node.Serialize(page.data(), page.size(), checksum_kind_));
  page.MarkDirty();
  return Status::OK();
}

void RTree::NoteLeafModified(uint32_t block) {
  TrackedMutexLock lock(&leaf_mu_, LockClass::kTreeLeaf);
  ++leaf_mod_counts_[block];
}

void RTree::ForgetLeaf(uint32_t block) {
  TrackedMutexLock lock(&leaf_mu_, LockClass::kTreeLeaf);
  leaf_mod_counts_.erase(block);
}

// ---------------------------------------------------------------------------
// Insertion
// ---------------------------------------------------------------------------

Status RTree::Insert(const Rect& rect, TupleId tid) {
  if (!rect.valid()) {
    return InvalidArgumentError("invalid rectangle: " + rect.ToString());
  }
  PhaseGate::Scope gate(&gate_, PhaseGate::Mode::kWrite);
  uint64_t accesses = 0;

  std::deque<std::pair<Rect, TupleId>> queue;
  queue.emplace_back(rect, tid);
  int iterations = 0;
  while (!queue.empty()) {
    if (++iterations > kMaxReinsertIterations) {
      return InternalError("reinsertion cascade did not terminate");
    }
    auto [r, t] = queue.front();
    queue.pop_front();
    InsertContext ctx;
    SEGIDX_RETURN_IF_ERROR(InsertOne(r, t, &ctx));
    SEGIDX_RETURN_IF_ERROR(ProcessDemotions(&ctx));
    accesses += ctx.node_accesses;
    for (auto& pending : ctx.reinserts) queue.push_back(std::move(pending));
  }

  BumpTreeStat(record_count_);
  BumpTreeStat(stats_.inserts);
  BumpTreeStat(stats_.insert_node_accesses, accesses);
  return Status::OK();
}

Status RTree::InsertOne(const Rect& rect, TupleId tid, InsertContext* ctx) {
  // Root protocol: latch the root node first, then validate under meta_mu_
  // that it still is the root (another writer may have grown or shrunk the
  // tree between the read and the latch grant). Blocking on a node latch
  // while holding meta_mu_ is forbidden, hence the retry loop.
  storage::PageId root;
  Rect root_region;
  for (;;) {
    {
      TrackedMutexLock lock(&meta_mu_, LockClass::kTreeMeta);
      root = root_;
    }
    NodeLatchTable::Guard guard =
        latch_table_.Acquire(root.block, LatchOrigin::Standalone());
    TrackedMutexLock lock(&meta_mu_, LockClass::kTreeMeta);
    if (root_.block == root.block) {
      root = root_;
      if (!root_region_valid_) {
        root_region_ = rect;
        root_region_valid_ = true;
      }
      root_region = root_region_;
      ctx->latches.push_back(std::move(guard));
      break;
    }
    // The root moved while we latched the old one; retry against the new.
  }

  SEGIDX_ASSIGN_OR_RETURN(
      std::optional<BranchEntry> sibling,
      InsertRecursive(root, &root_region, /*is_root=*/true, rect, tid,
                      ctx));
  if (sibling.has_value()) {
    // A split reached the root, so no descendant was "safe" and the root
    // latch is still held: growing the root cannot race another writer.
    BranchEntry old_root;
    old_root.rect = root_region;
    old_root.child = root;
    SEGIDX_RETURN_IF_ERROR(GrowRootAfterSplit(old_root, *sibling));
  } else if (!ctx->latches.empty() &&
             ctx->latches.front().block() == root.block) {
    // Root latch retained: the root region may have grown. When crabbing
    // released it instead, containment held at the release point, so the
    // root region provably did not change.
    TrackedMutexLock lock(&meta_mu_, LockClass::kTreeMeta);
    root_region_ = root_region;
  }
  ctx->latches.clear();
  return Status::OK();
}

bool RTree::InsertSafe(const Node& node, const Rect& node_region,
                       const Rect& rect) const {
  // Region containment: nothing above this node expands.
  if (!node_region.Contains(rect)) return false;
  // Split immunity: one more entry (a record, or a branch from a child
  // split) still fits. Under the kSplit spanning-overflow policy a
  // spanning placement can split any non-leaf regardless of branch room,
  // so non-leaves are never safe there.
  if (node.is_leaf()) return node.records.size() + 1 <= LeafCapacity();
  if (options_.enable_spanning &&
      options_.spanning_overflow_policy == SpanningOverflowPolicy::kSplit) {
    return false;
  }
  return node.branches.size() + 1 <= BranchCapacity(node.level) &&
         node.SerializedBytes() + kBranchEntryBytes <= NodeBytes(node.level);
}

Result<std::optional<BranchEntry>> RTree::InsertRecursive(
    storage::PageId node_id, Rect* node_region, bool is_root,
    const Rect& rect, TupleId tid, InsertContext* ctx) {
  // The caller (InsertOne for the root, the parent frame otherwise)
  // already holds this node's latch.
  SEGIDX_ASSIGN_OR_RETURN(Node node, ReadNode(node_id, &ctx->node_accesses));

  // Crabbing: once this node is safe — it cannot split and its region
  // already contains the record — nothing can propagate above it, so the
  // ancestor latches (the deque prefix) are released. Every write a
  // released ancestor frame would perform is then provably a no-op: the
  // child region it observes cannot change and Enclose(rect) is identity
  // under containment.
  if (!is_root && ctx->latches.size() > 1 &&
      InsertSafe(node, *node_region, rect)) {
    while (ctx->latches.size() > 1) ctx->latches.pop_front();
  }

  if (node.is_leaf()) {
    node.records.push_back(LeafEntry{rect, tid});
    NoteLeafModified(node_id.block);
    if (node.records.size() > LeafCapacity()) {
      BumpTreeStat(stats_.leaf_splits);
      Rect self_region;
      SEGIDX_ASSIGN_OR_RETURN(BranchEntry sibling,
                              SplitNode(node_id, &node, &self_region, ctx));
      *node_region = self_region;
      return std::optional<BranchEntry>(sibling);
    }
    SEGIDX_RETURN_IF_ERROR(WriteNode(node_id, node));
    *node_region = node_region->Enclose(rect);
    return std::optional<BranchEntry>();
  }

  // Non-leaf node: give the SR-Tree a chance to consume the record as a
  // spanning record at this level (Section 3.1.1).
  if (options_.enable_spanning) {
    SEGIDX_ASSIGN_OR_RETURN(
        SpanningPlacement placement,
        TryPlaceSpanningRecord(node_id, &node, node_region, is_root, rect,
                               tid, ctx));
    if (placement == SpanningPlacement::kPlaced) {
      ctx->consumed_as_spanning = true;
      return std::optional<BranchEntry>();
    }
    if (placement == SpanningPlacement::kPlacedOverflow) {
      ctx->consumed_as_spanning = true;
      BumpTreeStat(stats_.nonleaf_splits);
      Rect self_region;
      SEGIDX_ASSIGN_OR_RETURN(BranchEntry sibling,
                              SplitNode(node_id, &node, &self_region, ctx));
      *node_region = self_region;
      return std::optional<BranchEntry>(sibling);
    }
  }

  const size_t idx = ChooseSubtree(node, rect);
  Rect child_region = node.branches[idx].rect;
  const Rect old_child_region = child_region;
  // Latch-couple: acquire the child before descending (parent-to-child
  // order only). The child guard is popped back off after the descent
  // unless a deeper safe node already released this whole prefix.
  const size_t depth = ctx->latches.size();
  ctx->latches.push_back(latch_table_.Acquire(
      node.branches[idx].child.block, LatchOrigin::Child(node_id.block)));
  SEGIDX_ASSIGN_OR_RETURN(
      std::optional<BranchEntry> child_split,
      InsertRecursive(node.branches[idx].child, &child_region,
                      /*is_root=*/false, rect, tid, ctx));
  while (ctx->latches.size() > depth) ctx->latches.pop_back();

  bool dirty = false;
  if (!(child_region == old_child_region)) {
    node.branches[idx].rect = child_region;
    dirty = true;
    // An expanded child region can break span relationships of spanning
    // records stored on this node (paper Section 3.1.1, demotions).
    if (options_.enable_spanning && !node.spanning.empty()) {
      ctx->expanded_nodes.push_back(node_id);
    }
  }

  if (child_split.has_value()) {
    node.branches.push_back(*child_split);
    dirty = true;
    if (NonLeafOverflowed(node)) {
      ++stats_.nonleaf_splits;
      Rect self_region;
      SEGIDX_ASSIGN_OR_RETURN(BranchEntry sibling,
                              SplitNode(node_id, &node, &self_region, ctx));
      *node_region = self_region;
      return std::optional<BranchEntry>(sibling);
    }
  }

  if (dirty) {
    SEGIDX_RETURN_IF_ERROR(WriteNode(node_id, node));
  }
  if (ctx->consumed_as_spanning) {
    // The stored spanning portion lies inside the child branch rect already
    // updated above; enclosing the full original rect here would elongate
    // this region for data that lives elsewhere (as remnants).
    *node_region = node_region->Enclose(node.branches[idx].rect);
  } else {
    *node_region = node_region->Enclose(rect);
  }
  return std::optional<BranchEntry>();
}

size_t RTree::ChooseSubtree(const Node& node, const Rect& rect) {
  SEGIDX_CHECK(!node.branches.empty());
  size_t best = 0;
  Coord best_enlargement = std::numeric_limits<Coord>::infinity();
  Coord best_area = std::numeric_limits<Coord>::infinity();
  for (size_t i = 0; i < node.branches.size(); ++i) {
    const Rect& r = node.branches[i].rect;
    const Coord enlargement = r.Enlargement(rect);
    const Coord area = r.area();
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement && area < best_area)) {
      best = i;
      best_enlargement = enlargement;
      best_area = area;
    }
  }
  return best;
}

Result<BranchEntry> RTree::SplitNode(storage::PageId node_id, Node* node,
                                     Rect* self_region_out,
                                     InsertContext* ctx) {
  const size_t min_fill = static_cast<size_t>(
      options_.min_fill_fraction *
      static_cast<double>(node->is_leaf() ? LeafCapacity()
                                          : BranchCapacity(node->level)));

  Node sibling;
  sibling.level = node->level;

  if (node->is_leaf()) {
    std::vector<Rect> rects;
    rects.reserve(node->records.size());
    for (const LeafEntry& e : node->records) rects.push_back(e.rect);
    const SplitPartition part =
        SplitRects(rects, min_fill, options_.split_algorithm);

    std::vector<LeafEntry> own;
    own.reserve(part.group_a.size());
    for (int i : part.group_a) own.push_back(node->records[i]);
    sibling.records.reserve(part.group_b.size());
    for (int i : part.group_b) sibling.records.push_back(node->records[i]);
    node->records = std::move(own);
  } else {
    std::vector<Rect> rects;
    rects.reserve(node->branches.size());
    for (const BranchEntry& b : node->branches) rects.push_back(b.rect);
    const SplitPartition part =
        SplitRects(rects, min_fill, options_.split_algorithm);

    std::vector<BranchEntry> own;
    own.reserve(part.group_a.size());
    for (int i : part.group_a) own.push_back(node->branches[i]);
    sibling.branches.reserve(part.group_b.size());
    for (int i : part.group_b) sibling.branches.push_back(node->branches[i]);
    node->branches = std::move(own);

    // Carry spanning records to the side that received their linked branch
    // (paper Figure 4), except those that now span a whole post-split
    // region: those are promoted by reinsertion (paper Section 3.1.2).
    if (!node->spanning.empty()) {
      Rect region_a = node->branches[0].rect;
      for (size_t i = 1; i < node->branches.size(); ++i) {
        region_a = region_a.Enclose(node->branches[i].rect);
      }
      Rect region_b = sibling.branches[0].rect;
      for (size_t i = 1; i < sibling.branches.size(); ++i) {
        region_b = region_b.Enclose(sibling.branches[i].rect);
      }
      std::vector<SpanningEntry> keep_a;
      for (SpanningEntry s : node->spanning) {
        if (s.rect.SpansRegion(region_a) ||
            s.rect.SpansRegion(region_b)) {
          BumpTreeStat(stats_.promotions);
          ctx->reinserts.emplace_back(s.rect, s.tid);
          continue;
        }
        const storage::PageId linked = storage::PageId::Decode(s.linked_child);
        Node* dest = sibling.FindBranch(linked) >= 0 ? &sibling : node;
        // The linked branch may have expanded earlier in this descent and
        // no longer be spanned; relink to any spanned branch on the
        // destination side, or fall back to reinsertion.
        bool placed = false;
        if (dest->FindBranch(linked) >= 0 &&
            s.rect.SpansRegion(
                dest->branches[dest->FindBranch(linked)].rect)) {
          placed = true;
        } else {
          for (const BranchEntry& b : dest->branches) {
            if (s.rect.SpansRegion(b.rect)) {
              s.linked_child = b.child.Encode();
              BumpTreeStat(stats_.relinks);
              placed = true;
              break;
            }
          }
        }
        if (!placed) {
          BumpTreeStat(stats_.demotions);
          ctx->reinserts.emplace_back(s.rect, s.tid);
          continue;
        }
        if (dest == &sibling) {
          sibling.spanning.push_back(s);
        } else {
          keep_a.push_back(s);
        }
      }
      node->spanning = std::move(keep_a);
    }

    // An overflow split started from a node one spanning entry over its
    // extent; in the worst case one side can still be a few bytes over.
    // Shed the smallest spanning records into reinsertion until both
    // halves fit.
    for (Node* side : {node, &sibling}) {
      while (side->SerializedBytes() > NodeBytes(side->level) &&
             !side->spanning.empty()) {
        size_t smallest = 0;
        for (size_t i = 1; i < side->spanning.size(); ++i) {
          if (side->spanning[i].rect.margin() <
              side->spanning[smallest].rect.margin()) {
            smallest = i;
          }
        }
        ctx->reinserts.emplace_back(side->spanning[smallest].rect,
                                    side->spanning[smallest].tid);
        side->spanning.erase(side->spanning.begin() +
                             static_cast<ptrdiff_t>(smallest));
        BumpTreeStat(stats_.spanning_evictions);
      }
    }
  }

  // Allocate the sibling extent at this level's size class.
  SEGIDX_ASSIGN_OR_RETURN(storage::PageHandle page,
                          pager_->Allocate(SizeClassForLevel(node->level)));
  const storage::PageId sibling_id = page.id();
  SEGIDX_RETURN_IF_ERROR(sibling.Serialize(page.data(), page.size(), checksum_kind_));
  page.MarkDirty();
  page.Release();

  SEGIDX_RETURN_IF_ERROR(WriteNode(node_id, *node));

  if (node->is_leaf()) {
    // Split the modification statistic between the halves.
    TrackedMutexLock lock(&leaf_mu_, LockClass::kTreeLeaf);
    const uint64_t count = leaf_mod_counts_[node_id.block];
    leaf_mod_counts_[node_id.block] = count / 2;
    leaf_mod_counts_[sibling_id.block] = count / 2;
  }

  *self_region_out = node->ComputeMbr();
  BranchEntry out;
  out.rect = sibling.ComputeMbr();
  out.child = sibling_id;
  return out;
}

Status RTree::GrowRootAfterSplit(const BranchEntry& old_root,
                                 const BranchEntry& sibling) {
  Node new_root;
  new_root.level = static_cast<uint16_t>(root_level_ + 1);
  new_root.branches.push_back(old_root);
  new_root.branches.push_back(sibling);

  SEGIDX_ASSIGN_OR_RETURN(storage::PageHandle page,
                          pager_->Allocate(SizeClassForLevel(new_root.level)));
  SEGIDX_RETURN_IF_ERROR(new_root.Serialize(page.data(), page.size(), checksum_kind_));
  page.MarkDirty();
  // The caller holds the old root's latch (a split that reached the root
  // means no safe node released it), so no other writer can be moving the
  // root concurrently; meta_mu_ publishes the new root to writers blocked
  // in the root protocol.
  TrackedMutexLock lock(&meta_mu_, LockClass::kTreeMeta);
  root_ = page.id();
  root_level_ = new_root.level;
  root_region_ = old_root.rect.Enclose(sibling.rect);
  BumpTreeStat(stats_.root_splits);
  return Status::OK();
}

// Default hooks: a plain R-Tree stores nothing in non-leaf nodes.
Result<RTree::SpanningPlacement> RTree::TryPlaceSpanningRecord(
    storage::PageId /*node_id*/, Node* /*node*/, Rect* /*node_region*/,
    bool /*is_root*/, const Rect& /*rect*/, TupleId /*tid*/,
    InsertContext* /*ctx*/) {
  return SpanningPlacement::kNotPlaced;
}

Status RTree::ProcessDemotions(InsertContext* /*ctx*/) {
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

Status RTree::Search(const Rect& query, std::vector<SearchHit>* out,
                     uint64_t* nodes_accessed) {
  SearchOutcome outcome;
  const Status status = Search(query, SearchOptions(), out, &outcome);
  if (nodes_accessed != nullptr) *nodes_accessed = outcome.nodes_accessed;
  return status;
}

Status RTree::Search(const Rect& query, const SearchOptions& options,
                     std::vector<SearchHit>* out, SearchOutcome* outcome) {
  PhaseGate::Scope gate(&gate_, PhaseGate::Mode::kRead);
  return SearchGateHeld(query, options, out, outcome);
}

Status RTree::SearchGateHeld(const Rect& query, const SearchOptions& options,
                             std::vector<SearchHit>* out,
                             SearchOutcome* outcome) {
  if (!query.valid()) {
    return InvalidArgumentError("invalid query rectangle");
  }
  SearchOutcome local;
  SearchOutcome& oc = outcome != nullptr ? *outcome : local;
  oc = SearchOutcome();
  const Status status = SearchImpl(query, options, out, &oc);
  // Shared stats are published on every exit path — an aborted search's
  // node accesses still happened.
  std::atomic_ref<uint64_t>(stats_.searches)
      .fetch_add(1, std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(stats_.search_node_accesses)
      .fetch_add(oc.nodes_accessed, std::memory_order_relaxed);
  return status;
}

Status RTree::SearchImpl(const Rect& query, const SearchOptions& options,
                         std::vector<SearchHit>* out,
                         SearchOutcome* oc) const {
  // Searches run concurrently: count node accesses in the per-call outcome
  // rather than the shared per-op counter the mutation path uses.
  std::vector<storage::PageId> stack;
  stack.push_back(root_);
  while (!stack.empty()) {
    // Deadline and cancellation fire at node-fetch granularity: a search
    // never starts another page read past either, so a deadline of "now"
    // costs zero node accesses.
    if (options.cancel_token != nullptr &&
        options.cancel_token->load(std::memory_order_relaxed)) {
      return CancelledError("search cancelled after " +
                            std::to_string(oc->nodes_accessed) +
                            " node accesses");
    }
    if (options.deadline.has_value() &&
        std::chrono::steady_clock::now() >= *options.deadline) {
      return DeadlineExceededError("search deadline expired after " +
                                   std::to_string(oc->nodes_accessed) +
                                   " node accesses");
    }
    const storage::PageId id = stack.back();
    stack.pop_back();
    Result<Node> node_or = ReadNode(id, &oc->nodes_accessed);
    if (!node_or.ok()) {
      const StatusCode code = node_or.status().code();
      const bool damage = code == StatusCode::kCorruption ||
                          code == StatusCode::kIoError ||
                          code == StatusCode::kInvalidArgument;
      if (!options.allow_partial || !damage) return node_or.status();
      // Skip the dead subtree and answer partially. Checksum/decode
      // failures quarantine the page so later fetches fail fast without
      // re-reading known-bad media; transient I/O errors are skipped but
      // not quarantined (a retry may succeed). A full quarantine set
      // means the damage is wider than per-page resilience should mask —
      // fail hard so the operator runs salvage.
      if (code == StatusCode::kCorruption && id.valid() &&
          !pager_->QuarantinePage(id, node_or.status().message())) {
        return node_or.status();
      }
      oc->partial = true;
      oc->skipped_subtrees.push_back(id);
      continue;
    }
    const Node& node = *node_or;
    if (node.is_leaf()) {
      for (const LeafEntry& e : node.records) {
        if (e.rect.Intersects(query)) {
          out->push_back(SearchHit{e.tid, e.rect});
        }
      }
      continue;
    }
    // Spanning records stored on a node are wholly contained by it, so
    // every intersecting spanning record is found on the descent
    // (Section 3.1.3).
    for (const SpanningEntry& s : node.spanning) {
      if (s.rect.Intersects(query)) {
        out->push_back(SearchHit{s.tid, s.rect});
      }
    }
    for (const BranchEntry& b : node.branches) {
      if (b.rect.Intersects(query)) {
        stack.push_back(b.child);
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Deletion (plain R-Tree)
// ---------------------------------------------------------------------------

Status RTree::Delete(const Rect& rect, TupleId tid) {
  if (options_.enable_spanning) {
    return UnimplementedError(
        "SR-Tree supports insertion and search only (paper Section 3.1.1); "
        "delete is available on the plain R-Tree");
  }
  PhaseGate::Scope gate(&gate_, PhaseGate::Mode::kWrite);
  uint64_t accesses = 0;

  // Root protocol: latch the root block without holding meta_mu_, then
  // verify the root did not move while we blocked (see InsertOne).
  NodeLatchTable::Guard root_guard;
  storage::PageId root;
  Rect region;
  for (;;) {
    storage::PageId seen;
    {
      TrackedMutexLock lock(&meta_mu_, LockClass::kTreeMeta);
      seen = root_;
    }
    NodeLatchTable::Guard guard =
        latch_table_.Acquire(seen.block, LatchOrigin::Standalone());
    TrackedMutexLock lock(&meta_mu_, LockClass::kTreeMeta);
    if (root_.block != seen.block) continue;  // Root moved; retry.
    root = root_;
    region = root_region_;
    root_guard = std::move(guard);
    break;
  }

  // Deletion holds the whole latch path: each frame keeps its node latched
  // while it recurses, so the write-back after the child returns is always
  // covered. Depth is small (R-Tree height), so the lost concurrency is
  // cheaper than insert-style safe-release bookkeeping for the rare op.
  std::vector<std::pair<Rect, TupleId>> orphans;
  bool underflow = false;
  SEGIDX_ASSIGN_OR_RETURN(
      bool found, DeleteRecursive(root, rect, tid, &orphans, &region,
                                  &underflow, &accesses));
  if (!found) return NotFoundError("no such index record");
  {
    TrackedMutexLock lock(&meta_mu_, LockClass::kTreeMeta);
    root_region_ = region;
  }

  // Shrink the root while it is a non-leaf node with a single branch. We
  // still hold the old root's latch; the replacement child is latched
  // before the swap is published so descending writers that pass the root
  // protocol always land on a latched, live node.
  for (;;) {
    SEGIDX_ASSIGN_OR_RETURN(Node root_node, ReadNode(root, &accesses));
    if (root_node.is_leaf()) {
      if (root_node.records.empty()) {
        TrackedMutexLock lock(&meta_mu_, LockClass::kTreeMeta);
        root_region_valid_ = false;
      }
      break;
    }
    if (root_node.branches.empty()) {
      // The whole tree emptied out; replace with a fresh leaf root.
      // SetupEmptyRoot publishes the new root under meta_mu_; the old
      // root's latch covers the Free.
      SEGIDX_RETURN_IF_ERROR(pager_->Free(root));
      SEGIDX_RETURN_IF_ERROR(SetupEmptyRoot());
      break;
    }
    if (root_node.branches.size() == 1 && root_node.spanning.empty()) {
      const storage::PageId child = root_node.branches[0].child;
      const Rect child_rect = root_node.branches[0].rect;
      NodeLatchTable::Guard child_guard =
          latch_table_.Acquire(child.block, LatchOrigin::Child(root.block));
      {
        TrackedMutexLock lock(&meta_mu_, LockClass::kTreeMeta);
        root_ = child;
        --root_level_;
        root_region_ = child_rect;
      }
      SEGIDX_RETURN_IF_ERROR(pager_->Free(root));
      root = child;
      root_guard = std::move(child_guard);
      continue;
    }
    break;
  }

  std::atomic_ref<uint64_t>(record_count_)
      .fetch_sub(1, std::memory_order_relaxed);
  BumpTreeStat(stats_.deletes);

  // Reinsert entries orphaned by condensed leaves. These are fresh root
  // descents; drop the root latch first so they cannot self-deadlock.
  root_guard.Release();
  for (const auto& [r, t] : orphans) {
    InsertContext ctx;
    SEGIDX_RETURN_IF_ERROR(InsertOne(r, t, &ctx));
    SEGIDX_CHECK(ctx.reinserts.empty());  // Plain R-Tree never re-queues.
  }
  return Status::OK();
}

Result<bool> RTree::DeleteRecursive(
    storage::PageId node_id, const Rect& rect, TupleId tid,
    std::vector<std::pair<Rect, TupleId>>* orphans, Rect* region_out,
    bool* underflow_out, uint64_t* accesses) {
  // Caller holds node_id's latch for the duration of this frame.
  SEGIDX_ASSIGN_OR_RETURN(Node node, ReadNode(node_id, accesses));
  *underflow_out = false;

  if (node.is_leaf()) {
    for (size_t i = 0; i < node.records.size(); ++i) {
      if (node.records[i].rect == rect && node.records[i].tid == tid) {
        node.records.erase(node.records.begin() +
                           static_cast<ptrdiff_t>(i));
        SEGIDX_RETURN_IF_ERROR(WriteNode(node_id, node));
        NoteLeafModified(node_id.block);
        const size_t min_fill = static_cast<size_t>(
            options_.min_fill_fraction *
            static_cast<double>(LeafCapacity()));
        *underflow_out = node.records.size() < std::max<size_t>(1, min_fill);
        if (!node.records.empty()) *region_out = node.ComputeMbr();
        return true;
      }
    }
    return false;
  }

  for (size_t i = 0; i < node.branches.size(); ++i) {
    if (!node.branches[i].rect.Contains(rect)) continue;
    // Latch-couple downward: the child is latched before we recurse and
    // stays latched through the condense/Free below, so no other writer
    // can touch it while this frame rewrites the parent.
    NodeLatchTable::Guard child_guard = latch_table_.Acquire(
        node.branches[i].child.block, LatchOrigin::Child(node_id.block));
    Rect child_region = node.branches[i].rect;
    bool child_underflow = false;
    SEGIDX_ASSIGN_OR_RETURN(
        bool found,
        DeleteRecursive(node.branches[i].child, rect, tid, orphans,
                        &child_region, &child_underflow, accesses));
    if (!found) continue;

    if (child_underflow) {
      // CondenseTree: orphan the leaf's remaining records and drop the
      // branch. (Non-leaf nodes are condensed only when empty; see
      // DESIGN.md.)
      SEGIDX_ASSIGN_OR_RETURN(Node child,
                              ReadNode(node.branches[i].child, accesses));
      bool drop = false;
      if (child.is_leaf()) {
        for (const LeafEntry& e : child.records) {
          orphans->emplace_back(e.rect, e.tid);
        }
        drop = true;
      } else if (child.branches.empty()) {
        drop = true;
      }
      if (drop) {
        SEGIDX_RETURN_IF_ERROR(pager_->Free(node.branches[i].child));
        ForgetLeaf(node.branches[i].child.block);
        node.branches.erase(node.branches.begin() +
                            static_cast<ptrdiff_t>(i));
      }
    } else {
      node.branches[i].rect = child_region;
    }

    SEGIDX_RETURN_IF_ERROR(WriteNode(node_id, node));
    *underflow_out = node.branches.empty();
    if (!node.branches.empty()) *region_out = node.ComputeMbr();
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Skeleton support
// ---------------------------------------------------------------------------

Status RTree::PreBuild(const SkeletonSpec& spec) {
  PhaseGate::Scope gate(&gate_, PhaseGate::Mode::kExclusive);
  if (record_count_ != 0 || root_level_ != 0) {
    return FailedPreconditionError("PreBuild requires an empty tree");
  }
  if (spec.levels.empty()) {
    return InvalidArgumentError("skeleton spec has no levels");
  }
  for (const SkeletonLevel& level : spec.levels) {
    if (level.x_bounds.size() < 2 || level.y_bounds.size() < 2) {
      return InvalidArgumentError("skeleton level needs >= 1 cell per dim");
    }
  }

  // Free the fresh empty root created by Create().
  SEGIDX_RETURN_IF_ERROR(pager_->Free(root_));
  ForgetLeaf(root_.block);

  // Build each level bottom-up. prev[j][i] is the child node of cell (i, j)
  // of the previous (lower) level, with its region.
  struct Cell {
    storage::PageId id;
    Rect rect;
  };
  std::vector<std::vector<Cell>> prev;  // prev[y][x]

  for (size_t li = 0; li < spec.levels.size(); ++li) {
    const SkeletonLevel& lvl = spec.levels[li];
    const size_t nx = lvl.x_bounds.size() - 1;
    const size_t ny = lvl.y_bounds.size() - 1;
    std::vector<std::vector<Cell>> current(
        ny, std::vector<Cell>(nx));

    // For upper levels, assign each child cell to the parent cell whose
    // bounds contain it. Bounds of level li are subsets of level li-1's, so
    // containment is exact; a linear merge keeps this O(cells).
    for (size_t cy = 0; cy < ny; ++cy) {
      for (size_t cx = 0; cx < nx; ++cx) {
        const Rect cell_rect(
            Interval(lvl.x_bounds[cx], lvl.x_bounds[cx + 1]),
            Interval(lvl.y_bounds[cy], lvl.y_bounds[cy + 1]));
        Node node;
        node.level = static_cast<uint16_t>(li);
        if (li > 0) {
          const SkeletonLevel& below = spec.levels[li - 1];
          const size_t bx = below.x_bounds.size() - 1;
          const size_t by = below.y_bounds.size() - 1;
          for (size_t qy = 0; qy < by; ++qy) {
            for (size_t qx = 0; qx < bx; ++qx) {
              const Cell& child = prev[qy][qx];
              if (cell_rect.Contains(child.rect)) {
                node.branches.push_back(BranchEntry{child.rect, child.id});
              }
            }
          }
          if (node.branches.empty()) {
            return InvalidArgumentError(
                "skeleton level bounds do not nest (empty parent cell)");
          }
          if (node.branches.size() >
              BranchCapacity(static_cast<int>(li))) {
            return InvalidArgumentError(
                "skeleton cell fanout exceeds branch capacity");
          }
        }
        SEGIDX_ASSIGN_OR_RETURN(
            storage::PageHandle page,
            pager_->Allocate(SizeClassForLevel(static_cast<int>(li))));
        SEGIDX_RETURN_IF_ERROR(node.Serialize(page.data(), page.size(), checksum_kind_));
        page.MarkDirty();
        current[cy][cx] = Cell{page.id(), cell_rect};
        if (li == 0) leaf_mod_counts_[page.id().block] = 0;
      }
    }
    prev = std::move(current);
  }

  // Root node over the cells of the top level.
  const size_t top_cells = prev.size() * prev[0].size();
  Node root;
  root.level = static_cast<uint16_t>(spec.levels.size());
  if (top_cells > BranchCapacity(root.level)) {
    return InvalidArgumentError("top skeleton level exceeds root capacity");
  }
  Rect region;
  bool first = true;
  for (const auto& row : prev) {
    for (const Cell& cell : row) {
      root.branches.push_back(BranchEntry{cell.rect, cell.id});
      region = first ? cell.rect : region.Enclose(cell.rect);
      first = false;
    }
  }
  SEGIDX_ASSIGN_OR_RETURN(storage::PageHandle page,
                          pager_->Allocate(SizeClassForLevel(root.level)));
  SEGIDX_RETURN_IF_ERROR(root.Serialize(page.data(), page.size(), checksum_kind_));
  page.MarkDirty();
  root_ = page.id();
  root_level_ = root.level;
  root_region_ = region;
  root_region_valid_ = true;
  return Status::OK();
}

Result<int> RTree::CoalesceSparseLeaves(int max_candidates) {
  // Exclusive: the walk assumes a frozen structure, and the merge loop
  // rewrites parents without latch-coupling.
  PhaseGate::Scope gate(&gate_, PhaseGate::Mode::kExclusive);
  if (max_candidates <= 0 || root_level_ == 0) return 0;

  // Walk the non-leaf levels once, collecting every leaf with its parent.
  struct LeafInfo {
    storage::PageId id;
    storage::PageId parent;
    uint64_t mods = 0;
  };
  std::vector<LeafInfo> leaves;
  std::vector<storage::PageId> stack{root_};
  while (!stack.empty()) {
    const storage::PageId id = stack.back();
    stack.pop_back();
    SEGIDX_ASSIGN_OR_RETURN(Node node, ReadNode(id));
    if (node.level == 1) {
      for (const BranchEntry& b : node.branches) {
        LeafInfo info;
        info.id = b.child;
        info.parent = id;
        auto it = leaf_mod_counts_.find(b.child.block);
        info.mods = it == leaf_mod_counts_.end() ? 0 : it->second;
        leaves.push_back(info);
      }
    } else {
      for (const BranchEntry& b : node.branches) stack.push_back(b.child);
    }
  }

  std::sort(leaves.begin(), leaves.end(),
            [](const LeafInfo& a, const LeafInfo& b) {
              if (a.mods != b.mods) return a.mods < b.mods;
              return a.id.block < b.id.block;
            });

  int merged = 0;
  std::vector<std::pair<Rect, TupleId>> reinserts;
  std::vector<uint32_t> consumed;  // Leaf blocks merged away this pass.
  const int limit =
      std::min<int>(max_candidates, static_cast<int>(leaves.size()));

  for (int c = 0; c < limit; ++c) {
    const LeafInfo& candidate = leaves[c];
    if (std::find(consumed.begin(), consumed.end(), candidate.id.block) !=
        consumed.end()) {
      continue;
    }
    SEGIDX_ASSIGN_OR_RETURN(Node parent, ReadNode(candidate.parent));
    const int cand_idx = parent.FindBranch(candidate.id);
    if (cand_idx < 0) continue;  // Restructured earlier in this pass.
    SEGIDX_ASSIGN_OR_RETURN(Node cand_node, ReadNode(candidate.id));

    // Absorb adjacent same-parent siblings while the union still fits in
    // one leaf; the merged region grows, so re-scan after every merge.
    bool parent_dirty = false;
    bool absorbed = true;
    while (absorbed) {
      absorbed = false;
      const int idx = parent.FindBranch(candidate.id);
      SEGIDX_CHECK_GE(idx, 0);
      for (size_t s = 0; s < parent.branches.size(); ++s) {
        if (static_cast<int>(s) == idx) continue;
        const BranchEntry& sib_branch = parent.branches[s];
        if (!sib_branch.rect.Intersects(parent.branches[idx].rect)) {
          continue;  // Not spatially adjacent.
        }
        SEGIDX_ASSIGN_OR_RETURN(Node sib_node, ReadNode(sib_branch.child));
        if (cand_node.records.size() + sib_node.records.size() >
            LeafCapacity()) {
          continue;
        }

        // Merge the sibling into the candidate.
        cand_node.records.insert(cand_node.records.end(),
                                 sib_node.records.begin(),
                                 sib_node.records.end());
        const storage::PageId sib_id = sib_branch.child;
        const Rect merged_rect =
            parent.branches[idx].rect.Enclose(sib_branch.rect);
        parent.branches[idx].rect = merged_rect;
        parent.branches.erase(parent.branches.begin() +
                              static_cast<ptrdiff_t>(s));

        // Re-home spanning records that referenced either merged child.
        if (!parent.spanning.empty()) {
          const uint64_t cand_enc = candidate.id.Encode();
          const uint64_t sib_enc = sib_id.Encode();
          std::vector<SpanningEntry> keep;
          keep.reserve(parent.spanning.size());
          for (SpanningEntry span : parent.spanning) {
            if (span.linked_child != cand_enc &&
                span.linked_child != sib_enc) {
              keep.push_back(span);
              continue;
            }
            if (span.rect.SpansRegion(merged_rect)) {
              span.linked_child = cand_enc;
              keep.push_back(span);
              BumpTreeStat(stats_.relinks);
              continue;
            }
            // Try any other branch on the parent.
            bool relinked = false;
            for (const BranchEntry& b : parent.branches) {
              if (span.rect.SpansRegion(b.rect)) {
                span.linked_child = b.child.Encode();
                keep.push_back(span);
                relinked = true;
                BumpTreeStat(stats_.relinks);
                break;
              }
            }
            if (!relinked) {
              BumpTreeStat(stats_.demotions);
              reinserts.emplace_back(span.rect, span.tid);
            }
          }
          parent.spanning = std::move(keep);
        }

        SEGIDX_RETURN_IF_ERROR(pager_->Free(sib_id));
        leaf_mod_counts_[candidate.id.block] +=
            leaf_mod_counts_[sib_id.block];
        ForgetLeaf(sib_id.block);
        consumed.push_back(sib_id.block);
        parent_dirty = true;
        absorbed = true;
        ++merged;
        BumpTreeStat(stats_.coalesced_nodes);
        break;
      }
    }
    if (parent_dirty) {
      SEGIDX_RETURN_IF_ERROR(WriteNode(candidate.id, cand_node));
      SEGIDX_RETURN_IF_ERROR(WriteNode(candidate.parent, parent));
    }
  }

  // Records displaced by re-homing go back through normal insertion
  // (physical reinsertion: no change to the logical record count).
  for (const auto& [r, t] : reinserts) {
    InsertContext ctx;
    SEGIDX_RETURN_IF_ERROR(InsertOne(r, t, &ctx));
    SEGIDX_RETURN_IF_ERROR(ProcessDemotions(&ctx));
    int iterations = 0;
    while (!ctx.reinserts.empty()) {
      if (++iterations > kMaxReinsertIterations) {
        return InternalError("reinsertion cascade did not terminate");
      }
      auto [rr, tt] = ctx.reinserts.back();
      ctx.reinserts.pop_back();
      InsertContext inner;
      SEGIDX_RETURN_IF_ERROR(InsertOne(rr, tt, &inner));
      SEGIDX_RETURN_IF_ERROR(ProcessDemotions(&inner));
      for (auto& pending : inner.reinserts) {
        ctx.reinserts.push_back(std::move(pending));
      }
    }
  }
  return merged;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

Result<std::vector<uint64_t>> RTree::CountNodesPerLevel() {
  PhaseGate::Scope gate(&gate_, PhaseGate::Mode::kExclusive);
  std::vector<uint64_t> counts(static_cast<size_t>(root_level_) + 1, 0);
  std::vector<storage::PageId> stack{root_};
  while (!stack.empty()) {
    const storage::PageId id = stack.back();
    stack.pop_back();
    SEGIDX_ASSIGN_OR_RETURN(Node node, ReadNode(id));
    SEGIDX_CHECK_LE(node.level, root_level_);
    ++counts[node.level];
    for (const BranchEntry& b : node.branches) stack.push_back(b.child);
  }
  return counts;
}

namespace {

// Recursion helper for DumpStructure.
struct DumpFrame {
  storage::PageId id;
  Rect region;
  int depth;
};

}  // namespace

Status RTree::DumpStructure(std::ostream& os, int max_depth) {
  PhaseGate::Scope gate(&gate_, PhaseGate::Mode::kExclusive);
  std::vector<DumpFrame> stack{{root_, root_region_, 0}};
  char line[256];
  while (!stack.empty()) {
    const DumpFrame frame = stack.back();
    stack.pop_back();
    SEGIDX_ASSIGN_OR_RETURN(Node node, ReadNode(frame.id));
    const std::string indent(static_cast<size_t>(frame.depth) * 2, ' ');
    if (node.is_leaf()) {
      std::snprintf(line, sizeof(line), "%sleaf @%u %s: %zu records\n",
                    indent.c_str(), frame.id.block,
                    frame.region.ToString().c_str(), node.records.size());
      os << line;
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "%slevel-%u @%u %s: %zu branches, %zu spanning\n",
                  indent.c_str(), node.level, frame.id.block,
                  frame.region.ToString().c_str(), node.branches.size(),
                  node.spanning.size());
    os << line;
    for (const SpanningEntry& s : node.spanning) {
      std::snprintf(line, sizeof(line), "%s  ~ span %s tid=%llu -> @%u\n",
                    indent.c_str(), s.rect.ToString().c_str(),
                    static_cast<unsigned long long>(s.tid),
                    storage::PageId::Decode(s.linked_child).block);
      os << line;
    }
    if (max_depth >= 0 && frame.depth >= max_depth) {
      std::snprintf(line, sizeof(line), "%s  ... (%zu subtrees elided)\n",
                    indent.c_str(), node.branches.size());
      os << line;
      continue;
    }
    // Push in reverse so branches print in stored order.
    for (size_t i = node.branches.size(); i-- > 0;) {
      stack.push_back(
          {node.branches[i].child, node.branches[i].rect, frame.depth + 1});
    }
  }
  return Status::OK();
}

Result<std::vector<RTree::LevelStats>> RTree::CollectLevelStats() {
  PhaseGate::Scope gate(&gate_, PhaseGate::Mode::kExclusive);
  std::vector<LevelStats> stats(static_cast<size_t>(root_level_) + 1);
  struct Item {
    storage::PageId id;
    Rect region;
  };
  std::vector<Item> stack{{root_, root_region_}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    SEGIDX_ASSIGN_OR_RETURN(Node node, ReadNode(item.id));
    LevelStats& level = stats[node.level];
    ++level.nodes;
    level.branch_entries +=
        node.is_leaf() ? node.records.size() : node.branches.size();
    level.spanning_entries += node.spanning.size();
    level.avg_region_width += item.region.x.length();
    level.avg_region_height += item.region.y.length();
    level.max_region_width =
        std::max(level.max_region_width, item.region.x.length());
    for (const BranchEntry& b : node.branches) {
      stack.push_back({b.child, b.rect});
    }
  }
  for (LevelStats& level : stats) {
    if (level.nodes > 0) {
      level.avg_region_width /= static_cast<double>(level.nodes);
      level.avg_region_height /= static_cast<double>(level.nodes);
    }
  }
  return stats;
}

Status RTree::CheckInvariants(bool expect_min_fill) {
  PhaseGate::Scope gate(&gate_, PhaseGate::Mode::kExclusive);
  if (!root_region_valid_ && record_count_ != 0) {
    return InternalError("records present but root region invalid");
  }
  uint64_t entries_seen = 0;
  return CheckNodeInvariants(root_, root_region_, /*is_root=*/true,
                             root_level_, expect_min_fill, &entries_seen);
}

namespace {

// "page 17 (size class 2)" for invariant-violation messages.
std::string PageName(storage::PageId id) {
  return "page " + std::to_string(id.block) + " (size class " +
         std::to_string(id.size_class) + ")";
}

}  // namespace

Status RTree::CheckNodeInvariants(storage::PageId id, const Rect& region,
                                  bool is_root, int expected_level,
                                  bool expect_min_fill,
                                  uint64_t* entries_seen) {
  SEGIDX_ASSIGN_OR_RETURN(Node node, ReadNode(id));
  if (node.level != expected_level) {
    return InternalError("tree is unbalanced: " + PageName(id) +
                         " has level " + std::to_string(node.level) +
                         " where level " + std::to_string(expected_level) +
                         " was expected");
  }

  if (node.is_leaf()) {
    if (node.records.size() > LeafCapacity()) {
      return InternalError("leaf overflow on " + PageName(id) + ": " +
                           std::to_string(node.records.size()) +
                           " records exceed capacity " +
                           std::to_string(LeafCapacity()));
    }
    if (expect_min_fill && !is_root) {
      const size_t min_fill = static_cast<size_t>(
          options_.min_fill_fraction * static_cast<double>(LeafCapacity()));
      if (node.records.size() < std::max<size_t>(1, min_fill)) {
        return InternalError("leaf " + PageName(id) + " below minimum fill: " +
                             std::to_string(node.records.size()) + " < " +
                             std::to_string(std::max<size_t>(1, min_fill)));
      }
    }
    for (const LeafEntry& e : node.records) {
      if (!e.rect.valid()) {
        return InternalError("invalid leaf rect on " + PageName(id) +
                             " for tid " + std::to_string(e.tid));
      }
      if (root_region_valid_ && !region.Contains(e.rect)) {
        return InternalError("leaf record outside its node region on " +
                             PageName(id) + ": tid " + std::to_string(e.tid) +
                             " rect " + e.rect.ToString() +
                             " escapes region " + region.ToString());
      }
    }
    *entries_seen += node.records.size();
    return Status::OK();
  }

  if (node.branches.empty() && !is_root) {
    return InternalError("non-leaf " + PageName(id) + " has no branches");
  }
  if (node.branches.size() > BranchCapacity(node.level)) {
    return InternalError("branch count on " + PageName(id) +
                         " exceeds capacity: " +
                         std::to_string(node.branches.size()) + " > " +
                         std::to_string(BranchCapacity(node.level)));
  }
  if (node.SerializedBytes() > NodeBytes(node.level)) {
    return InternalError("non-leaf " + PageName(id) +
                         " exceeds its extent bytes: " +
                         std::to_string(node.SerializedBytes()) + " > " +
                         std::to_string(NodeBytes(node.level)));
  }
  if (!options_.enable_spanning && !node.spanning.empty()) {
    return InternalError("spanning records present in a plain R-Tree on " +
                         PageName(id));
  }
  if (expect_min_fill) {
    // Guttman: every non-root node holds at least m entries, and a non-leaf
    // root has at least two children. Splits size m from the branch
    // capacity at this node's level.
    const size_t min_fill =
        is_root ? 2
                : std::max<size_t>(
                      1, static_cast<size_t>(
                             options_.min_fill_fraction *
                             static_cast<double>(BranchCapacity(node.level))));
    if (node.branches.size() < min_fill) {
      return InternalError("non-leaf " + PageName(id) +
                           " below minimum fill: " +
                           std::to_string(node.branches.size()) + " < " +
                           std::to_string(min_fill) + " branches");
    }
  }

  for (const SpanningEntry& s : node.spanning) {
    if (!region.Contains(s.rect)) {
      return InternalError("spanning record not enclosed by its node on " +
                           PageName(id) + ": tid " + std::to_string(s.tid));
    }
    const int branch = node.FindBranch(storage::PageId::Decode(s.linked_child));
    if (branch < 0) {
      return InternalError("spanning record linked to a missing branch on " +
                           PageName(id) + ": tid " + std::to_string(s.tid));
    }
    if (!s.rect.SpansRegion(node.branches[branch].rect)) {
      return InternalError(
          "spanning record does not span its linked branch on " +
          PageName(id) + ": tid " + std::to_string(s.tid));
    }
    *entries_seen += 1;
  }

  for (const BranchEntry& b : node.branches) {
    if (!region.Contains(b.rect)) {
      return InternalError("branch region escapes its parent region on " +
                           PageName(id) + ": child " + PageName(b.child));
    }
    SEGIDX_RETURN_IF_ERROR(CheckNodeInvariants(b.child, b.rect,
                                               /*is_root=*/false,
                                               expected_level - 1,
                                               expect_min_fill,
                                               entries_seen));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Metadata persistence
// ---------------------------------------------------------------------------

Status RTree::SaveMeta() {
  uint8_t buf[kTreeMetaBytes] = {0};
  storage::EncodeU32(buf, kTreeMetaMagic);
  storage::EncodeU16(buf + 4, kTreeMetaVersion);
  storage::EncodeU16(buf + 6, static_cast<uint16_t>(root_level_));
  storage::EncodeU64(buf + 8, root_.Encode());
  storage::EncodeU64(buf + 16, record_count_);
  storage::EncodeDouble(buf + 24, root_region_.x.lo);
  storage::EncodeDouble(buf + 32, root_region_.x.hi);
  storage::EncodeDouble(buf + 40, root_region_.y.lo);
  storage::EncodeDouble(buf + 48, root_region_.y.hi);
  uint8_t flags = 0;
  if (options_.double_node_size_per_level) flags |= 1;
  if (options_.enable_spanning) flags |= 2;
  if (root_region_valid_) flags |= 4;
  flags |= static_cast<uint8_t>(options_.spanning_overflow_policy) << 3;
  buf[56] = flags;
  buf[57] = static_cast<uint8_t>(options_.split_algorithm);
  storage::EncodeDouble(buf + 58, options_.branch_fraction);
  storage::EncodeDouble(buf + 66, options_.min_fill_fraction);
  return pager_->SetUserMeta(buf, sizeof(buf));
}

Status RTree::LoadMeta() {
  const std::vector<uint8_t>& meta = pager_->user_meta();
  if (meta.size() < kTreeMetaBytes) {
    return CorruptionError("tree metadata missing or truncated");
  }
  const uint8_t* buf = meta.data();
  if (storage::DecodeU32(buf) != kTreeMetaMagic) {
    return CorruptionError("bad tree metadata magic");
  }
  if (storage::DecodeU16(buf + 4) != kTreeMetaVersion) {
    return CorruptionError("unsupported tree metadata version");
  }
  root_level_ = storage::DecodeU16(buf + 6);
  root_ = storage::PageId::Decode(storage::DecodeU64(buf + 8));
  if (!root_.valid()) {
    return CorruptionError("tree metadata root pointer is corrupt");
  }
  record_count_ = storage::DecodeU64(buf + 16);
  root_region_.x.lo = storage::DecodeDouble(buf + 24);
  root_region_.x.hi = storage::DecodeDouble(buf + 32);
  root_region_.y.lo = storage::DecodeDouble(buf + 40);
  root_region_.y.hi = storage::DecodeDouble(buf + 48);
  const uint8_t flags = buf[56];
  options_.double_node_size_per_level = (flags & 1) != 0;
  options_.enable_spanning = (flags & 2) != 0;
  root_region_valid_ = (flags & 4) != 0;
  const uint8_t policy = (flags >> 3) & 3;
  if (policy > static_cast<uint8_t>(SpanningOverflowPolicy::kEvictSmallest)) {
    return CorruptionError("unknown spanning overflow policy");
  }
  options_.spanning_overflow_policy =
      static_cast<SpanningOverflowPolicy>(policy);
  options_.split_algorithm = static_cast<SplitAlgorithm>(buf[57]);
  options_.branch_fraction = storage::DecodeDouble(buf + 58);
  options_.min_fill_fraction = storage::DecodeDouble(buf + 66);
  return Status::OK();
}

}  // namespace segidx::rtree
