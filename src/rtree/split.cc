#include "rtree/split.h"

#include <algorithm>
#include <limits>

#include <cstddef>

#include "common/logging.h"

namespace segidx::rtree {

namespace {

// State shared by both distribution loops.
struct Groups {
  std::vector<int> a;
  std::vector<int> b;
  Rect mbr_a;
  Rect mbr_b;

  void AddA(int i, const Rect& r) {
    mbr_a = a.empty() ? r : mbr_a.Enclose(r);
    a.push_back(i);
  }
  void AddB(int i, const Rect& r) {
    mbr_b = b.empty() ? r : mbr_b.Enclose(r);
    b.push_back(i);
  }
};

// Guttman PickSeeds (quadratic): choose the pair wasting the most area if
// grouped together.
std::pair<int, int> QuadraticPickSeeds(const std::vector<Rect>& rects) {
  int seed_a = 0;
  int seed_b = 1;
  Coord worst = -std::numeric_limits<Coord>::infinity();
  for (size_t i = 0; i < rects.size(); ++i) {
    for (size_t j = i + 1; j < rects.size(); ++j) {
      const Coord waste = rects[i].Enclose(rects[j]).area() -
                          rects[i].area() - rects[j].area();
      if (waste > worst) {
        worst = waste;
        seed_a = static_cast<int>(i);
        seed_b = static_cast<int>(j);
      }
    }
  }
  return {seed_a, seed_b};
}

// Guttman linear PickSeeds: in each dimension find the two rectangles with
// the greatest normalized separation.
std::pair<int, int> LinearPickSeeds(const std::vector<Rect>& rects) {
  const int n = static_cast<int>(rects.size());

  auto pick_dim = [&rects, n](auto get_interval) {
    int highest_low = 0;
    int lowest_high = 0;
    Coord min_lo = get_interval(rects[0]).lo;
    Coord max_hi = get_interval(rects[0]).hi;
    for (int i = 1; i < n; ++i) {
      const Interval iv = get_interval(rects[i]);
      if (iv.lo > get_interval(rects[highest_low]).lo) highest_low = i;
      if (iv.hi < get_interval(rects[lowest_high]).hi) lowest_high = i;
      min_lo = std::min(min_lo, iv.lo);
      max_hi = std::max(max_hi, iv.hi);
    }
    const Coord width = max_hi - min_lo;
    const Coord separation = get_interval(rects[highest_low]).lo -
                             get_interval(rects[lowest_high]).hi;
    const Coord normalized = width > 0 ? separation / width : separation;
    struct Out {
      Coord norm;
      int s1;
      int s2;
    };
    return Out{normalized, highest_low, lowest_high};
  };

  const auto x = pick_dim([](const Rect& r) { return r.x; });
  const auto y = pick_dim([](const Rect& r) { return r.y; });
  int s1 = x.norm >= y.norm ? x.s1 : y.s1;
  int s2 = x.norm >= y.norm ? x.s2 : y.s2;
  if (s1 == s2) {
    // Degenerate (e.g., identical rects): pick any distinct pair.
    s2 = (s1 + 1) % n;
  }
  return {s1, s2};
}

// R* split: axis by minimum margin sum, distribution by minimum overlap
// (ties: minimum combined area).
SplitPartition RStarSplit(const std::vector<Rect>& rects, size_t min_fill) {
  const size_t n = rects.size();

  struct Candidate {
    std::vector<int> order;  // Entry indices in sorted order.
    size_t split_at = 0;     // Group A = order[0 .. split_at).
    Coord overlap = 0;
    Coord total_area = 0;
  };

  auto evaluate_axis = [&rects, n, min_fill](auto key) {
    std::vector<int> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(),
              [&rects, &key](int a, int b) { return key(rects[a], rects[b]); });

    // Prefix/suffix MBRs make each distribution O(1).
    std::vector<Rect> prefix(n);
    std::vector<Rect> suffix(n);
    prefix[0] = rects[static_cast<size_t>(order[0])];
    for (size_t i = 1; i < n; ++i) {
      prefix[i] = prefix[i - 1].Enclose(rects[static_cast<size_t>(order[i])]);
    }
    suffix[n - 1] = rects[static_cast<size_t>(order[n - 1])];
    for (size_t i = n - 1; i-- > 0;) {
      suffix[i] = suffix[i + 1].Enclose(rects[static_cast<size_t>(order[i])]);
    }

    Coord margin_sum = 0;
    Candidate best;
    best.order = order;
    best.overlap = std::numeric_limits<Coord>::infinity();
    best.total_area = std::numeric_limits<Coord>::infinity();
    for (size_t k = min_fill; k + min_fill <= n; ++k) {
      const Rect& a = prefix[k - 1];
      const Rect& b = suffix[k];
      margin_sum += a.margin() + b.margin();
      const Coord overlap = a.Intersects(b) ? a.Intersect(b).area() : 0;
      const Coord total_area = a.area() + b.area();
      if (overlap < best.overlap ||
          (overlap == best.overlap && total_area < best.total_area)) {
        best.overlap = overlap;
        best.total_area = total_area;
        best.split_at = k;
      }
    }
    struct Out {
      Coord margin_sum;
      Candidate candidate;
    };
    return Out{margin_sum, std::move(best)};
  };

  // R* evaluates both sort keys per axis; sorting by (lo, hi) pairs is the
  // common consolidation and preserves the axis-selection behavior.
  auto x_axis = evaluate_axis([](const Rect& a, const Rect& b) {
    if (a.x.lo != b.x.lo) return a.x.lo < b.x.lo;
    return a.x.hi < b.x.hi;
  });
  auto y_axis = evaluate_axis([](const Rect& a, const Rect& b) {
    if (a.y.lo != b.y.lo) return a.y.lo < b.y.lo;
    return a.y.hi < b.y.hi;
  });
  const Candidate& chosen = x_axis.margin_sum <= y_axis.margin_sum
                                ? x_axis.candidate
                                : y_axis.candidate;

  SplitPartition out;
  out.group_a.assign(chosen.order.begin(),
                     chosen.order.begin() +
                         static_cast<ptrdiff_t>(chosen.split_at));
  out.group_b.assign(chosen.order.begin() +
                         static_cast<ptrdiff_t>(chosen.split_at),
                     chosen.order.end());
  return out;
}

}  // namespace

SplitPartition SplitRects(const std::vector<Rect>& rects, size_t min_fill,
                          SplitAlgorithm algorithm) {
  const size_t n = rects.size();
  SEGIDX_CHECK_GE(n, 2u);
  min_fill = std::max<size_t>(1, std::min(min_fill, n / 2));

  if (algorithm == SplitAlgorithm::kRStar) {
    return RStarSplit(rects, min_fill);
  }

  const auto [seed_a, seed_b] = algorithm == SplitAlgorithm::kQuadratic
                                    ? QuadraticPickSeeds(rects)
                                    : LinearPickSeeds(rects);

  Groups g;
  g.AddA(seed_a, rects[seed_a]);
  g.AddB(seed_b, rects[seed_b]);

  std::vector<int> remaining;
  remaining.reserve(n - 2);
  for (int i = 0; i < static_cast<int>(n); ++i) {
    if (i != seed_a && i != seed_b) remaining.push_back(i);
  }

  while (!remaining.empty()) {
    // Force assignment when one group must take everything left to reach
    // min_fill.
    if (g.a.size() + remaining.size() == min_fill) {
      for (int i : remaining) g.AddA(i, rects[i]);
      break;
    }
    if (g.b.size() + remaining.size() == min_fill) {
      for (int i : remaining) g.AddB(i, rects[i]);
      break;
    }

    size_t pick_pos = 0;
    if (algorithm == SplitAlgorithm::kQuadratic) {
      // Guttman PickNext: maximal difference of enlargement preference.
      Coord best_diff = -1;
      for (size_t p = 0; p < remaining.size(); ++p) {
        const Rect& r = rects[remaining[p]];
        const Coord da = g.mbr_a.Enlargement(r);
        const Coord db = g.mbr_b.Enlargement(r);
        const Coord diff = da > db ? da - db : db - da;
        if (diff > best_diff) {
          best_diff = diff;
          pick_pos = p;
        }
      }
    }
    const int idx = remaining[pick_pos];
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pick_pos));
    const Rect& r = rects[idx];

    const Coord da = g.mbr_a.Enlargement(r);
    const Coord db = g.mbr_b.Enlargement(r);
    bool to_a;
    if (da != db) {
      to_a = da < db;
    } else if (g.mbr_a.area() != g.mbr_b.area()) {
      to_a = g.mbr_a.area() < g.mbr_b.area();
    } else {
      to_a = g.a.size() <= g.b.size();
    }
    if (to_a) {
      g.AddA(idx, rects[idx]);
    } else {
      g.AddB(idx, rects[idx]);
    }
  }

  SplitPartition out;
  out.group_a = std::move(g.a);
  out.group_b = std::move(g.b);
  return out;
}

}  // namespace segidx::rtree
