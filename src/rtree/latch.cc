#include "rtree/latch.h"

#include <chrono>

namespace segidx::rtree {

namespace {

using check::LockClass;
using check::TrackedMutexLock;

uint64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

bool PhaseGate::CanEnterLocked(Mode mode) const {
  if (active_ == 0) {
    // Empty gate: honor the turn if its mode has waiters, else first come.
    return turn_ == mode || waiting_[static_cast<int>(turn_)] == 0;
  }
  if (active_mode_ != mode || mode == Mode::kExclusive) return false;
  // Members of the batch admitted when this mode took its turn enter even
  // if other modes are waiting; beyond the batch, piggyback only when no
  // other mode waits, so one mode cannot starve the rest.
  if (admit_quota_ > 0) return true;
  const int m = static_cast<int>(mode);
  return waiting_[(m + 1) % 3] == 0 && waiting_[(m + 2) % 3] == 0;
}

void PhaseGate::Enter(Mode mode) {
  check::LockdepPhaseEnter(this, static_cast<int>(mode));
  common::MutexLock lock(&mu_);
  const int m = static_cast<int>(mode);
  ++enters_[m];
  ++waiting_[m];
  bool blocked = false;
  std::chrono::steady_clock::time_point wait_start;
  while (!CanEnterLocked(mode)) {
    if (!blocked) {
      blocked = true;
      ++blocked_[m];
      wait_start = std::chrono::steady_clock::now();
    }
    cv_.Wait(&mu_);
  }
  if (blocked) wait_us_[m] += ElapsedUs(wait_start);
  --waiting_[m];
  if (active_ == 0) {
    active_mode_ = mode;
    turn_ = mode;
    // Everyone of this mode already queued is admitted as one batch.
    admit_quota_ = (mode == Mode::kExclusive) ? 0 : waiting_[m];
  } else if (admit_quota_ > 0) {
    --admit_quota_;
  }
  ++active_;
  if (admit_quota_ > 0) {
    // Batch peers may have re-blocked before the quota opened; wake them.
    cv_.NotifyAll();
  }
}

void PhaseGate::Exit(Mode mode) {
  {
    common::MutexLock lock(&mu_);
    if (--active_ == 0) {
      admit_quota_ = 0;
      // Rotate the turn to the next mode with waiters (starting after the
      // mode that just drained) so waiting modes are served round-robin.
      const int from = static_cast<int>(mode);
      for (int step = 1; step <= 3; ++step) {
        const int candidate = (from + step) % 3;
        if (waiting_[candidate] > 0) {
          turn_ = static_cast<Mode>(candidate);
          break;
        }
      }
      cv_.NotifyAll();
    }
  }
  check::LockdepPhaseExit(this);
}

void PhaseGate::AccumulateStats(LatchStats* out) const {
  common::MutexLock lock(&mu_);
  for (int m = 0; m < 3; ++m) {
    out->gate_enters[m] += enters_[m];
    out->gate_blocked[m] += blocked_[m];
    out->gate_wait_us[m] += wait_us_[m];
  }
}

// Hand-over-hand: the entry latch outlives this scope (released later by
// the Guard), which the scope-based compile-time analysis cannot express —
// the runtime validator (check/lock_order.h) checks the ordering instead.
NodeLatchTable::Guard NodeLatchTable::Acquire(uint32_t block,
                                              LatchOrigin origin)
    NO_THREAD_SAFETY_ANALYSIS {
  check::LockdepNodeLatchAcquire(this, block, origin.has_parent,
                                 origin.parent_block);
  Guard::Entry* entry = nullptr;
  {
    TrackedMutexLock lock(&map_mu_, LockClass::kLatchMap);
    auto& slot = entries_[block];
    if (slot == nullptr) {
      slot = std::make_unique<Guard::Entry>();
      slot->block = block;
    }
    entry = slot.get();
    ++entry->refs;
  }
  // Block on the node latch without holding the map mutex.
  acquires_.fetch_add(1, std::memory_order_relaxed);
  if (!entry->mu.TryLock()) {
    blocked_.fetch_add(1, std::memory_order_relaxed);
    const auto wait_start = std::chrono::steady_clock::now();
    entry->mu.Lock();
    wait_us_.fetch_add(ElapsedUs(wait_start), std::memory_order_relaxed);
  }
  return Guard(this, entry);
}

void NodeLatchTable::Guard::Release() NO_THREAD_SAFETY_ANALYSIS {
  if (entry_ == nullptr) return;
  const uint32_t block = entry_->block;
  entry_->mu.Unlock();
  check::LockdepNodeLatchRelease(table_, block);
  {
    TrackedMutexLock lock(&table_->map_mu_, LockClass::kLatchMap);
    if (--entry_->refs == 0) table_->entries_.erase(block);
  }
  table_ = nullptr;
  entry_ = nullptr;
}

uint32_t NodeLatchTable::Guard::block() const {
  return entry_ != nullptr ? entry_->block : 0;
}

void NodeLatchTable::AccumulateStats(LatchStats* out) const {
  out->latch_acquires += acquires_.load(std::memory_order_relaxed);
  out->latch_blocked += blocked_.load(std::memory_order_relaxed);
  out->latch_wait_us += wait_us_.load(std::memory_order_relaxed);
}

}  // namespace segidx::rtree
