#include "rtree/latch.h"

namespace segidx::rtree {

bool PhaseGate::CanEnterLocked(Mode mode) const {
  if (active_ == 0) {
    // Empty gate: honor the turn if its mode has waiters, else first come.
    return turn_ == mode || waiting_[static_cast<int>(turn_)] == 0;
  }
  if (active_mode_ != mode || mode == Mode::kExclusive) return false;
  // Members of the batch admitted when this mode took its turn enter even
  // if other modes are waiting; beyond the batch, piggyback only when no
  // other mode waits, so one mode cannot starve the rest.
  if (admit_quota_ > 0) return true;
  const int m = static_cast<int>(mode);
  return waiting_[(m + 1) % 3] == 0 && waiting_[(m + 2) % 3] == 0;
}

void PhaseGate::Enter(Mode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  const int m = static_cast<int>(mode);
  ++waiting_[m];
  cv_.wait(lock, [&] { return CanEnterLocked(mode); });
  --waiting_[m];
  if (active_ == 0) {
    active_mode_ = mode;
    turn_ = mode;
    // Everyone of this mode already queued is admitted as one batch.
    admit_quota_ = (mode == Mode::kExclusive) ? 0 : waiting_[m];
  } else if (admit_quota_ > 0) {
    --admit_quota_;
  }
  ++active_;
  if (admit_quota_ > 0) {
    // Batch peers may have re-blocked before the quota opened; wake them.
    cv_.notify_all();
  }
}

void PhaseGate::Exit(Mode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  if (--active_ == 0) {
    admit_quota_ = 0;
    // Rotate the turn to the next mode with waiters (starting after the
    // mode that just drained) so waiting modes are served round-robin.
    const int from = static_cast<int>(mode);
    for (int step = 1; step <= 3; ++step) {
      const int candidate = (from + step) % 3;
      if (waiting_[candidate] > 0) {
        turn_ = static_cast<Mode>(candidate);
        break;
      }
    }
    cv_.notify_all();
  }
}

NodeLatchTable::Guard NodeLatchTable::Acquire(uint32_t block) {
  Guard::Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    auto& slot = entries_[block];
    if (slot == nullptr) {
      slot = std::make_unique<Guard::Entry>();
      slot->block = block;
    }
    entry = slot.get();
    ++entry->refs;
  }
  // Block on the node latch without holding the map mutex.
  entry->mu.lock();
  return Guard(this, entry);
}

void NodeLatchTable::Guard::Release() {
  if (entry_ == nullptr) return;
  entry_->mu.unlock();
  {
    std::lock_guard<std::mutex> lock(table_->map_mu_);
    if (--entry_->refs == 0) table_->entries_.erase(entry_->block);
  }
  table_ = nullptr;
  entry_ = nullptr;
}

uint32_t NodeLatchTable::Guard::block() const {
  return entry_ != nullptr ? entry_->block : 0;
}

}  // namespace segidx::rtree
