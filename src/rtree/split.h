// Node splitting heuristics from Guttman's R-Tree paper: the quadratic-cost
// and linear-cost algorithms. Both partition a set of rectangles into two
// groups, each holding at least `min_fill` entries, trying to minimize the
// total area of the two covering rectangles.

#ifndef SEGIDX_RTREE_SPLIT_H_
#define SEGIDX_RTREE_SPLIT_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace segidx::rtree {

enum class SplitAlgorithm {
  // Guttman's quadratic-cost algorithm (the paper's configuration).
  kQuadratic = 0,
  // Guttman's linear-cost algorithm.
  kLinear = 1,
  // The R*-Tree split (Beckmann et al. 1990, the paper's [BECK90]
  // reference): choose the split axis by minimum margin sum, then the
  // distribution along it by minimum overlap. Split only — R*'s forced
  // reinsertion is not performed.
  kRStar = 2,
};

// Indices of the input rectangles assigned to each side. Every input index
// appears in exactly one group; both groups are non-empty and, when the
// input size permits, hold at least `min_fill` entries.
struct SplitPartition {
  std::vector<int> group_a;
  std::vector<int> group_b;
};

// Requires rects.size() >= 2. `min_fill` is clamped to rects.size() / 2.
SplitPartition SplitRects(const std::vector<Rect>& rects, size_t min_fill,
                          SplitAlgorithm algorithm);

}  // namespace segidx::rtree

#endif  // SEGIDX_RTREE_SPLIT_H_
