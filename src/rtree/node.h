// On-page node representation shared by the R-Tree and SR-Tree.
//
// A node is one extent (Section 2.1.2: leaf nodes are one base block and the
// node size doubles at each level above the leaves). Nodes hold:
//   * leaf nodes (level 0):   data records  (rect + tuple id);
//   * non-leaf nodes:         branches      (rect + child extent), and —
//     only in SR-Trees —      spanning records (rect + tuple id + the child
//                             whose region they span, Section 3.1.1).
//
// Serialized layout (little-endian):
//   0  level         u16   (0 = leaf)
//   2  entry_count   u16   (leaf records or branches)
//   4  spanning_count u16
//   6  reserved      u16
//   8  entries:
//        leaf record    = rect (4 doubles) + tuple id (u64)        = 40 B
//        branch         = rect (4 doubles) + child page id (u64)   = 40 B
//        spanning record= rect + tuple id (u64) + linked child(u64)= 48 B
//      Branches precede spanning records on non-leaf nodes.

#ifndef SEGIDX_RTREE_NODE_H_
#define SEGIDX_RTREE_NODE_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/pager.h"

namespace segidx::rtree {

struct LeafEntry {
  Rect rect;
  TupleId tid = kInvalidTupleId;
};

struct BranchEntry {
  Rect rect;            // Region covered by the child node.
  storage::PageId child;
};

// A spanning index record: stored on a non-leaf node, linked to the branch
// whose region it spans (paper Figure 2).
struct SpanningEntry {
  Rect rect;
  TupleId tid = kInvalidTupleId;
  uint64_t linked_child = 0;  // Encoded PageId of the spanned branch's child.
};

inline constexpr size_t kNodeHeaderBytes = 8;
inline constexpr size_t kLeafEntryBytes = 40;
inline constexpr size_t kBranchEntryBytes = 40;
inline constexpr size_t kSpanningEntryBytes = 48;

// Which page-checksum algorithm a node page carries. Tied to the pager's
// file format version: v1 files use a folded FNV-1a over the serialized
// prefix; v2 files use CRC32C over the *entire* extent (stray bytes in the
// unused tail are detected too), folded into the same 16-bit header field.
enum class PageChecksumKind : uint8_t {
  kFnv16 = 1,   // Format v1 (legacy read support).
  kCrc32c = 2,  // Format v2 (default).
};

// In-memory form of a node; deserialized from / serialized to a page extent.
struct Node {
  uint16_t level = 0;
  std::vector<LeafEntry> records;       // Valid when level == 0.
  std::vector<BranchEntry> branches;    // Valid when level > 0.
  std::vector<SpanningEntry> spanning;  // Valid when level > 0 (SR-Tree).

  bool is_leaf() const { return level == 0; }
  size_t entry_count() const {
    return is_leaf() ? records.size() : branches.size() + spanning.size();
  }

  // Bytes this node requires when serialized.
  size_t SerializedBytes() const;

  // Minimum bounding rectangle over every entry (records / branches /
  // spanning records). Requires at least one entry.
  Rect ComputeMbr() const;

  // Index of the branch whose child id matches, or -1.
  int FindBranch(storage::PageId child) const;

  // Serializes into `buf` (must hold at least SerializedBytes(), which must
  // be <= buf_size). Stamps a 16-bit page checksum into the header's
  // reserved field; Deserialize verifies it and reports kCorruption on
  // mismatch. With kCrc32c the unused tail of the extent is zeroed and the
  // checksum covers all of `buf_size`, so `buf` must span the full extent.
  Status Serialize(uint8_t* buf, size_t buf_size,
                   PageChecksumKind kind = PageChecksumKind::kCrc32c) const;
  static Result<Node> Deserialize(
      const uint8_t* buf, size_t buf_size,
      PageChecksumKind kind = PageChecksumKind::kCrc32c);

  // The checksum a serialized node page should carry. For kFnv16, `n` is
  // the node's serialized byte count; for kCrc32c it is the full extent
  // size. Both cover the first six header bytes plus everything after the
  // checksum field.
  static uint16_t PageChecksum(const uint8_t* buf, size_t n,
                               PageChecksumKind kind);
};

// Per-level entry capacities for a given extent byte size.
struct NodeCapacity {
  // Max data records in a leaf of `node_bytes`.
  static size_t LeafEntries(size_t node_bytes) {
    return (node_bytes - kNodeHeaderBytes) / kLeafEntryBytes;
  }
  // Max uniform entry slots in a non-leaf node, sized conservatively so any
  // mix of branches and spanning records fits.
  static size_t NonLeafSlots(size_t node_bytes) {
    return (node_bytes - kNodeHeaderBytes) / kSpanningEntryBytes;
  }
  // Max branches when no spanning records are stored (plain R-Tree).
  static size_t BranchOnlySlots(size_t node_bytes) {
    return (node_bytes - kNodeHeaderBytes) / kBranchEntryBytes;
  }
};

}  // namespace segidx::rtree

#endif  // SEGIDX_RTREE_NODE_H_
