// Static (packed) R-Tree construction.
//
// The paper's Section 4 motivates Skeleton indexes as the *dynamic*
// alternative to packing "such as that suggested by [ROUS85]", which
// requires all data up front. This module provides that static baseline so
// the trade-off can be measured (bench/ablation_packed):
//
//   * kLowX — Roussopoulos & Leifker's packed R-Tree: records sorted by
//     the lower X boundary and packed into full nodes in order;
//   * kSTR  — sort-tile-recursive packing: records sorted by X center,
//     cut into vertical slabs, each slab sorted by Y center and packed.
//     (A later technique included as the stronger static baseline.)
//
// Packing fills every node to ~100%, so a packed tree is the smallest and
// shallowest possible — at the price of being read-only-optimal: dynamic
// inserts afterwards degrade it (which is the paper's argument).

#ifndef SEGIDX_RTREE_BULK_LOAD_H_
#define SEGIDX_RTREE_BULK_LOAD_H_

#include <utility>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "common/types.h"
#include "rtree/rtree.h"

namespace segidx::rtree {

enum class PackingMethod {
  // Roussopoulos & Leifker's packed R-Tree (the paper's [ROUS85]).
  kLowX = 0,
  // Sort-tile-recursive packing (stronger modern static baseline).
  kSTR = 1,
  // Hilbert-curve order over record centers (Kamel & Faloutsos style):
  // locality-preserving 1-D order, no tiling pass needed.
  kHilbert = 2,
};

// Builds `tree` (which must be empty) from all records at once, packing
// nodes to `fill_fraction` of capacity (default: completely full).
// Works for RTree and SRTree alike; packing stores every record in the
// leaves (a packed SR-Tree acquires spanning records only through later
// dynamic inserts).
Status BulkLoad(RTree* tree,
                std::vector<std::pair<Rect, TupleId>> records,
                PackingMethod method = PackingMethod::kSTR,
                double fill_fraction = 1.0);

}  // namespace segidx::rtree

#endif  // SEGIDX_RTREE_BULK_LOAD_H_
