#include "rtree/bulk_load.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/logging.h"

namespace segidx::rtree {

namespace {

// Maps (x, y) on a 2^order x 2^order grid to its Hilbert-curve distance
// (the classic rotate-and-flip formulation).
uint64_t HilbertDistance(uint32_t x, uint32_t y, int order) {
  uint64_t d = 0;
  for (uint32_t s = 1u << (order - 1); s > 0; s >>= 1) {
    const uint32_t rx = (x & s) > 0 ? 1 : 0;
    const uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

// Sorts indices so that consecutive runs form well-shaped tiles.
void OrderForPacking(std::vector<std::pair<Rect, TupleId>>* records,
                     PackingMethod method, size_t per_node) {
  if (method == PackingMethod::kHilbert) {
    // Quantize centers onto a 2^16 grid over the data's bounding box.
    Rect bbox = records->front().first;
    for (const auto& [rect, tid] : *records) bbox = bbox.Enclose(rect);
    const Coord wx = std::max<Coord>(bbox.x.length(), 1e-12);
    const Coord wy = std::max<Coord>(bbox.y.length(), 1e-12);
    constexpr int kOrder = 16;
    constexpr double kCells = 65535.0;
    auto distance = [&](const Rect& r) {
      const auto gx = static_cast<uint32_t>(
          (r.x.center() - bbox.x.lo) / wx * kCells);
      const auto gy = static_cast<uint32_t>(
          (r.y.center() - bbox.y.lo) / wy * kCells);
      return HilbertDistance(gx, gy, kOrder);
    };
    std::sort(records->begin(), records->end(),
              [&distance](const auto& a, const auto& b) {
                return distance(a.first) < distance(b.first);
              });
    return;
  }
  if (method == PackingMethod::kLowX) {
    // [ROUS85]: plain low-X order.
    std::sort(records->begin(), records->end(),
              [](const auto& a, const auto& b) {
                if (a.first.x.lo != b.first.x.lo) {
                  return a.first.x.lo < b.first.x.lo;
                }
                return a.first.y.lo < b.first.y.lo;
              });
    return;
  }
  // STR: sort by X center, slice into vertical slabs of
  // slab_size = ceil(sqrt(n / per_node)) * per_node records, then sort
  // each slab by Y center.
  std::sort(records->begin(), records->end(),
            [](const auto& a, const auto& b) {
              return a.first.x.center() < b.first.x.center();
            });
  const size_t n = records->size();
  const size_t leaves = (n + per_node - 1) / per_node;
  const size_t slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaves))));
  const size_t slab_records = slabs == 0 ? n : (n + slabs - 1) / slabs;
  for (size_t start = 0; start < n; start += slab_records) {
    const size_t end = std::min(n, start + slab_records);
    std::sort(records->begin() + static_cast<ptrdiff_t>(start),
              records->begin() + static_cast<ptrdiff_t>(end),
              [](const auto& a, const auto& b) {
                return a.first.y.center() < b.first.y.center();
              });
  }
}

}  // namespace

// Friend of RTree (declared in rtree.h); `method` is the PackingMethod.
Status BulkLoadInternal(RTree* tree,
                        std::vector<std::pair<Rect, TupleId>>* records,
                        int method, double fill_fraction) {
  if (tree->record_count_ != 0 || tree->root_level_ != 0) {
    return FailedPreconditionError("BulkLoad requires an empty tree");
  }
  if (fill_fraction <= 0 || fill_fraction > 1) {
    return InvalidArgumentError("fill_fraction must be in (0, 1]");
  }
  for (const auto& [rect, tid] : *records) {
    if (!rect.valid()) {
      return InvalidArgumentError("invalid rectangle in bulk load");
    }
  }
  if (records->empty()) return Status::OK();

  const size_t leaf_per_node = std::max<size_t>(
      1, static_cast<size_t>(fill_fraction *
                             static_cast<double>(tree->LeafCapacity())));
  OrderForPacking(records, static_cast<PackingMethod>(method),
                  leaf_per_node);

  // Replace the empty root created by Create().
  SEGIDX_RETURN_IF_ERROR(tree->pager_->Free(tree->root_));
  tree->ForgetLeaf(tree->root_.block);

  // Build the leaf level.
  std::vector<BranchEntry> current;
  for (size_t start = 0; start < records->size(); start += leaf_per_node) {
    const size_t end = std::min(records->size(), start + leaf_per_node);
    Node leaf;
    leaf.level = 0;
    leaf.records.reserve(end - start);
    for (size_t i = start; i < end; ++i) {
      leaf.records.push_back(
          LeafEntry{(*records)[i].first, (*records)[i].second});
    }
    SEGIDX_ASSIGN_OR_RETURN(storage::PageHandle page,
                            tree->pager_->Allocate(
                                tree->SizeClassForLevel(0)));
    SEGIDX_RETURN_IF_ERROR(leaf.Serialize(page.data(), page.size(), tree->checksum_kind()));
    page.MarkDirty();
    current.push_back(BranchEntry{leaf.ComputeMbr(), page.id()});
    tree->leaf_mod_counts_[page.id().block] = 0;
  }

  // Build non-leaf levels until one node remains; the packing order of the
  // children is preserved, so tiles stay contiguous.
  int level = 1;
  while (current.size() > 1) {
    const size_t per_node = std::max<size_t>(
        2, static_cast<size_t>(
               fill_fraction *
               static_cast<double>(tree->BranchPlanningCapacity(level))));
    std::vector<BranchEntry> next;
    for (size_t start = 0; start < current.size(); start += per_node) {
      const size_t end = std::min(current.size(), start + per_node);
      Node node;
      node.level = static_cast<uint16_t>(level);
      node.branches.assign(current.begin() + static_cast<ptrdiff_t>(start),
                           current.begin() + static_cast<ptrdiff_t>(end));
      SEGIDX_ASSIGN_OR_RETURN(storage::PageHandle page,
                              tree->pager_->Allocate(
                                  tree->SizeClassForLevel(level)));
      SEGIDX_RETURN_IF_ERROR(node.Serialize(page.data(), page.size(), tree->checksum_kind()));
      page.MarkDirty();
      next.push_back(BranchEntry{node.ComputeMbr(), page.id()});
    }
    current = std::move(next);
    ++level;
  }

  if (level == 1) {
    // A single leaf holds everything; it is the root.
    tree->root_ = current[0].child;
    tree->root_level_ = 0;
  } else {
    tree->root_ = current[0].child;
    tree->root_level_ = level - 1;
  }
  tree->root_region_ = current[0].rect;
  tree->root_region_valid_ = true;
  tree->record_count_ = records->size();
  return Status::OK();
}

Status BulkLoad(RTree* tree, std::vector<std::pair<Rect, TupleId>> records,
                PackingMethod method, double fill_fraction) {
  return BulkLoadInternal(tree, &records, static_cast<int>(method),
                          fill_fraction);
}

}  // namespace segidx::rtree
