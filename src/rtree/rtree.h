// Disk-paged R-Tree (Guttman 1984) with the Segment Index extension points
// from Kolovson & Stonebraker (SIGMOD 1991).
//
// The plain RTree implements the classic dynamic R-Tree: ChooseLeaf by least
// enlargement, quadratic or linear node splitting, AdjustTree, search, and
// delete with CondenseTree. Node sizes optionally double per level
// (Section 2.1.2). Two extension points turn it into an SR-Tree (see
// srtree/srtree.h):
//
//   * TryPlaceSpanningRecord — called at every non-leaf node during the
//     insert descent; an SR-Tree places records that span a child region
//     here (with cutting into spanning + remnant portions);
//   * ProcessDemotions — called after the descent for every node whose
//     branch regions expanded; an SR-Tree demotes spanning records whose
//     span relationship broke.
//
// The shared split code carries spanning records to the side that receives
// their linked branch (paper Figure 4) and extracts records for promotion
// when they span one of the post-split regions; for a plain R-Tree those
// vectors are empty and the code is a no-op.
//
// Skeleton variants (Section 4) are produced by PreBuild() — materializing a
// pre-partitioned hierarchy from a SkeletonSpec — plus CoalesceSparseLeaves()
// for the adaptation pass. The policy (distribution prediction, trigger
// cadence) lives in skeleton/.
//
// Region maintenance: branch rectangles only grow during inserts (so
// pre-partitioned skeleton regions persist); splits recompute tight MBRs;
// deletes recompute tight MBRs along the delete path.
//
// Concurrency (full contract: docs/CONCURRENCY.md): Insert/Delete/Search
// self-gate through a three-mode PhaseGate — searches share the read
// phase, Insert/Delete share the write phase and arbitrate among
// themselves with latch crabbing over a NodeLatchTable, and whole-tree
// operations (PreBuild, CoalesceSparseLeaves, CheckInvariants, the
// introspection walks) run exclusive. SaveMeta and the checkpoint itself
// are gated by the caller (core::IntervalIndex's group commit).

#ifndef SEGIDX_RTREE_RTREE_H_
#define SEGIDX_RTREE_RTREE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <ostream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/geometry.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "rtree/latch.h"
#include "rtree/node.h"
#include "rtree/split.h"
#include "storage/pager.h"

namespace segidx::rtree {

// What an SR-Tree does with a spanning record when the target node's
// spanning quota is full.
enum class SpanningOverflowPolicy {
  // The record descends and is stored deeper; the quota is a hard limit.
  kDescend = 0,
  // The node is split to make room (the paper's "overflow due to ... a
  // spanning index record", Section 3.1.2). Spanning capacity grows
  // without bound; heavy spanning workloads inflate the non-leaf levels.
  kSplit = 1,
  // If the incoming record is larger than the smallest spanning record on
  // the node, the smallest is re-inserted (landing deeper) and the larger
  // record takes its slot; otherwise the incoming record descends. The
  // bounded slots therefore retain the *longest* records — the ones whose
  // placement in leaves is most damaging (Section 2.1.1).
  kEvictSmallest = 2,
};

struct TreeOptions {
  // Double the node size at each level above the leaves (paper default).
  bool double_node_size_per_level = true;
  // Fraction of non-leaf entry slots reserved for branches; the remainder
  // holds spanning records. Only meaningful when spanning is enabled
  // (paper Section 5 uses 2/3).
  double branch_fraction = 2.0 / 3.0;
  // Minimum fill fraction enforced by node splits.
  double min_fill_fraction = 0.4;
  SplitAlgorithm split_algorithm = SplitAlgorithm::kQuadratic;
  // SR-Tree behavior; set by SRTree. A plain RTree must leave this false.
  bool enable_spanning = false;
  // SR-Tree policy when a spanning record meets a node whose spanning
  // quota (slots - BranchCapacity) is exhausted; see DESIGN.md for how
  // each reading maps to the paper's Section 3.1.2 / Section 5 text.
  SpanningOverflowPolicy spanning_overflow_policy =
      SpanningOverflowPolicy::kEvictSmallest;
};

// Plain copyable counters. Every field is bumped through relaxed
// std::atomic_ref, so concurrent searches and concurrent writers never
// race on them; the struct stays copyable and reading a consistent
// snapshot requires quiescence (which tests and benchmarks have after
// joining their workers).
struct TreeStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t searches = 0;
  // Node accesses are logical node visits (the paper's cost metric).
  uint64_t search_node_accesses = 0;
  uint64_t insert_node_accesses = 0;
  uint64_t leaf_splits = 0;
  uint64_t nonleaf_splits = 0;
  uint64_t root_splits = 0;
  // SR-Tree specific counters.
  uint64_t spanning_placed = 0;
  uint64_t cuts = 0;
  uint64_t remnants_inserted = 0;
  uint64_t demotions = 0;
  uint64_t relinks = 0;
  uint64_t promotions = 0;
  // Smallest-resident evictions under SpanningOverflowPolicy::kEvictSmallest.
  uint64_t spanning_evictions = 0;
  // Skeleton adaptation.
  uint64_t coalesced_nodes = 0;
};

struct SearchHit {
  TupleId tid = kInvalidTupleId;
  // The stored entry's rectangle. A record that was cut (Section 3.1.1)
  // surfaces once per stored piece; deduplicate by tid when the logical
  // record is wanted.
  Rect rect;
};

// Per-query runtime controls, threaded from the public facade
// (core::IntervalIndex) and the batch engine (exec::QueryEngine) down to
// the node-fetch loop. Shared by the R-Tree and SR-Tree (one search path).
struct SearchOptions {
  // Absolute deadline. Checked before every node fetch, so a pre-expired
  // deadline returns kDeadlineExceeded without touching a single node.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  // Cooperative cancellation, also checked before every node fetch. The
  // token outlives the search; firing it mid-search returns kCancelled.
  const std::atomic<bool>* cancel_token = nullptr;
  // Resilience: when a node page cannot be read (quarantined, checksum or
  // decode failure, device read error), skip the subtree rooted there and
  // report a partial result instead of failing the search. Damaged pages
  // are quarantined in the pager so later fetches fail fast. Off by
  // default: an unqualified search never silently drops results.
  bool allow_partial = false;
};

// What a search did beyond producing hits: its node-access count and, with
// SearchOptions::allow_partial, which subtrees it had to skip.
struct SearchOutcome {
  uint64_t nodes_accessed = 0;
  // True when at least one subtree was skipped; `hits` then underreports.
  bool partial = false;
  // Root pages of the skipped subtrees, in visit order.
  std::vector<storage::PageId> skipped_subtrees;
};

// Pre-partitioned hierarchy description for Skeleton indexes (Section 4).
// levels[0] is the leaf level. Level k has
// (x_bounds.size()-1) * (y_bounds.size()-1) cells. Boundaries of level k+1
// must be subsets of level k's so that cells nest exactly; the builder in
// skeleton/ guarantees this. An implicit root node points at every cell of
// the top level.
struct SkeletonLevel {
  std::vector<Coord> x_bounds;
  std::vector<Coord> y_bounds;
};
struct SkeletonSpec {
  std::vector<SkeletonLevel> levels;
};

class RTree {
 public:
  // Exact size of the metadata record SaveMeta() writes at the head of the
  // pager's user-meta area. Owners that append their own metadata after it
  // (core::IntervalIndex) budget against this.
  static constexpr size_t kTreeMetaBytes = 74;

  // Creates an empty tree on a freshly formatted pager. The pager must
  // outlive the tree.
  static Result<std::unique_ptr<RTree>> Create(storage::Pager* pager,
                                               const TreeOptions& options);
  // Re-opens a tree persisted with SaveMeta()+pager Checkpoint(). Fails if
  // the persisted tree was created with spanning enabled (use SRTree::Open).
  static Result<std::unique_ptr<RTree>> Open(storage::Pager* pager);

  virtual ~RTree() = default;

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  // Inserts an index record for `rect` referencing `tid`. Duplicate (rect,
  // tid) pairs are allowed, as in Guttman's R-Tree. Safe to call from many
  // threads concurrently, and concurrently with Search()/Delete(): inserts
  // enter the write phase of the gate and crab node latches down the
  // descent path (docs/CONCURRENCY.md).
  Status Insert(const Rect& rect, TupleId tid);

  // Appends every stored entry intersecting `query` to `out` and reports
  // the number of nodes accessed by this search. Safe to call from many
  // threads concurrently, and concurrently with Insert()/Delete():
  // searches enter the read phase of the gate, so they always observe a
  // structurally consistent tree (node-access counting is per-call, shared
  // stats are updated atomically).
  Status Search(const Rect& query, std::vector<SearchHit>* out,
                uint64_t* nodes_accessed = nullptr);

  // Same, with runtime controls: a deadline and cancel token checked at
  // node-fetch granularity (kDeadlineExceeded / kCancelled), and optional
  // skip-and-continue over damaged pages (see SearchOptions). `outcome`
  // (optional) receives node-access and partial-result details; on a
  // non-OK return it reflects the work done up to the abort.
  Status Search(const Rect& query, const SearchOptions& options,
                std::vector<SearchHit>* out,
                SearchOutcome* outcome = nullptr);

  // Search body without entering the phase gate: for callers that already
  // hold the read phase (exec::QueryEngine enters once per batch and fans
  // queries out to workers). Entering the gate again from a worker would
  // deadlock under the gate's fairness rotation, so nested entries must
  // use this. Callers MUST hold the read (or exclusive) phase.
  Status SearchGateHeld(const Rect& query, const SearchOptions& options,
                        std::vector<SearchHit>* out,
                        SearchOutcome* outcome = nullptr);

  // Removes one stored entry equal to (rect, tid). Plain R-Tree only: an
  // SR-Tree scopes to insert + search (paper Section 3.1.1) and returns
  // Unimplemented. Returns NotFound if no such entry exists. Safe to call
  // concurrently with Insert()/Search(): deletes enter the write phase and
  // hold latches over the whole descent path (region recomputation
  // propagates unconditionally, so no early release).
  Status Delete(const Rect& rect, TupleId tid);

  // The tree's phase gate. Layers above enter it around operations the
  // tree cannot gate itself: exclusive for SaveMeta + Checkpoint (group
  // commit) and bulk loading, read-shared for whole batches of searches
  // (exec::QueryEngine) or a consistent scrub walk.
  PhaseGate& phase_gate() { return gate_; }

  // Materializes a pre-partitioned skeleton hierarchy (the tree must be
  // empty). Enters the exclusive phase.
  Status PreBuild(const SkeletonSpec& spec);

  // One adaptation pass (Section 4): examines up to `max_candidates` least
  // frequently modified leaves and merges each with a spatially adjacent
  // same-parent sibling when their combined entries fit in one leaf.
  // Returns the number of merges performed. Enters the exclusive phase
  // (leaves are freed, which no concurrent reader may observe).
  Result<int> CoalesceSparseLeaves(int max_candidates);

  // Quick structural self-check: walks the whole tree and returns the first
  // violation as a non-OK status naming the offending page. `expect_min_fill`
  // additionally demands Guttman's minimum fill in every non-root node —
  // leaves and non-leaf nodes alike (valid only for trees grown purely by
  // splits; skeleton trees and coalesced trees violate it by design).
  // The exhaustive multi-violation validator lives in
  // check/structure_checker.h; this member check remains for callers below
  // the check/ layer. Enters the exclusive phase.
  Status CheckInvariants(bool expect_min_fill = false);

  // Persists root/height/count/options into the pager's metadata area.
  // Follow with pager->Checkpoint() for durability. NOT self-gated: the
  // caller must hold the exclusive phase (core::IntervalIndex runs it
  // inside the group-commit function) or have external quiescence.
  Status SaveMeta();

  // Number of logical records inserted (cut remnants do not add to this).
  // Safe to read concurrently with writers (relaxed atomic).
  uint64_t size() const {
    return std::atomic_ref<uint64_t>(const_cast<uint64_t&>(record_count_))
        .load(std::memory_order_relaxed);
  }
  // 1 for a single-leaf tree.
  int height() const { return root_level_ + 1; }
  bool spanning_enabled() const { return options_.enable_spanning; }
  const TreeOptions& options() const { return options_; }
  const TreeStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TreeStats(); }
  // Contention counters for the phase gate and the node latch table
  // (surfaced by `segidx stats` and bench-mixed). Like TreeStats, a
  // consistent snapshot requires quiescence.
  LatchStats latch_stats() const {
    LatchStats out;
    gate_.AccumulateStats(&out);
    latch_table_.AccumulateStats(&out);
    return out;
  }
  storage::Pager* pager() { return pager_; }
  // Node-page checksum algorithm for this tree's file format (CRC32C for
  // v2 files, folded FNV-1a for legacy v1 files).
  PageChecksumKind checksum_kind() const { return checksum_kind_; }

  // Entry capacity of a leaf node.
  size_t LeafCapacity() const;
  // Maximum branches in a non-leaf node at `level` (pure byte capacity).
  // Branches and spanning records share the node's bytes, so an SR-Tree
  // holding no spanning records behaves exactly like the plain R-Tree.
  size_t BranchCapacity(int level) const;
  // Branches the skeleton planner assumes per node: `branch_fraction`
  // (paper: 2/3) of the entry bytes, leaving the rest for expected
  // spanning records (paper Section 4).
  size_t BranchPlanningCapacity(int level) const;
  // Per-node spanning-record quota: the reserved (1 - branch_fraction)
  // byte share (enforced under kDescend / kEvictSmallest).
  size_t SpanningCapacity(int level) const;

  // Total index nodes, by level (level 0 first); walks the tree.
  Result<std::vector<uint64_t>> CountNodesPerLevel();

  // --- read-only introspection (structure checker, tools) ----------------

  // Page id of the root node.
  storage::PageId root() const { return root_; }
  // Region enclosing the whole tree; meaningful when root_region_valid().
  const Rect& root_region() const { return root_region_; }
  bool root_region_valid() const { return root_region_valid_; }
  // Reads and deserializes one node (checksum-verified). Counts as a node
  // access for the active operation's statistics.
  Result<Node> ReadNode(storage::PageId id);
  // Same, but charges the visit to the caller-provided counter instead of
  // the shared per-operation counter — the read path concurrent searches
  // use.
  Result<Node> ReadNode(storage::PageId id, uint64_t* accesses) const;
  // Extent size class / byte size a node at `level` is expected to use
  // (Section 2.1.2 doubling, capped at the pager's maximum size class).
  uint8_t SizeClassForLevel(int level) const;
  size_t NodeBytes(int level) const;

  // Writes an indented human-readable dump of the tree structure to `os`
  // (regions, entry counts, spanning records), descending at most
  // `max_depth` levels below the root; -1 dumps the whole tree.
  Status DumpStructure(std::ostream& os, int max_depth = -1);

  // Aggregate per-level structure statistics (walks the tree).
  struct LevelStats {
    uint64_t nodes = 0;
    uint64_t branch_entries = 0;    // Leaf records at level 0.
    uint64_t spanning_entries = 0;
    double avg_region_width = 0;    // Mean node-region X extent.
    double avg_region_height = 0;   // Mean node-region Y extent.
    double max_region_width = 0;
  };
  Result<std::vector<LevelStats>> CollectLevelStats();

 protected:
  // Insert-time bookkeeping threaded through the recursion.
  struct InsertContext {
    // Records queued for (re)insertion: cut remnants, demoted or evicted
    // spanning records.
    std::vector<std::pair<Rect, TupleId>> reinserts;
    // Nodes whose branch rectangles expanded during the descent; demotion
    // candidates for the SR-Tree.
    std::vector<storage::PageId> expanded_nodes;
    // Set when the record was consumed as a spanning record: the stored
    // portion is already contained in every region on the descent path, so
    // ancestors must not expand their regions by the full original rect
    // (cut remnants are re-inserted separately and expand their own
    // paths).
    bool consumed_as_spanning = false;
    // Node latches held by this descent, shallowest (root) at the front.
    // Crabbing releases the ancestor prefix once a node is "safe" (cannot
    // split and will not expand its region); guards release on
    // destruction, so error paths never leak a latch.
    std::deque<NodeLatchTable::Guard> latches;
    // Node accesses charged to this descent. Concurrent writers each count
    // into their own context (the shared per-op counter would race).
    uint64_t node_accesses = 0;
  };

  enum class SpanningPlacement {
    kNotPlaced,
    kPlaced,
    // Placed, but the node is now over-full and must be split by the
    // caller (paper Section 3.1.2: a node may overflow due to a spanning
    // insert). The hook leaves the over-full node unwritten.
    kPlacedOverflow,
  };

  RTree(storage::Pager* pager, const TreeOptions& options);

  // SR-Tree extension point: try to consume (rect, tid) as a spanning
  // record on `node` (whose region is `node_region`; `is_root` disables
  // cutting in favor of growing the root region). On kPlaced the node has
  // been modified and written back, and `node_region` updated if the root
  // region grew.
  virtual Result<SpanningPlacement> TryPlaceSpanningRecord(
      storage::PageId node_id, Node* node, Rect* node_region, bool is_root,
      const Rect& rect, TupleId tid, InsertContext* ctx);

  // SR-Tree extension point: demote spanning records invalidated by the
  // region expansions recorded in `ctx` (into ctx->reinserts).
  virtual Status ProcessDemotions(InsertContext* ctx);

  // --- shared machinery used by SRTree ---------------------------------

  // Initializes a fresh single-leaf tree (used by the factory functions).
  Status SetupEmptyRoot();
  // Restores tree state from the pager's metadata area.
  Status LoadMeta();

  Status WriteNode(storage::PageId id, const Node& node);
  // Whether `node` (not yet written) exceeds its extent or branch quota
  // and must be split.
  bool NonLeafOverflowed(const Node& node) const;
  // Whether one more spanning entry still fits in the node's bytes.
  bool HasByteRoomForSpanning(const Node& node) const;
  // Node visit accounting for the active operation. Exclusive-phase
  // operations only (the shared counter would race between concurrent
  // writers; the mutation path counts into InsertContext::node_accesses).
  void CountNodeAccess() { ++op_node_accesses_; }

  // Bumps a TreeStats counter with a relaxed atomic (mutation paths run
  // write-shared, so plain increments would race).
  static void BumpTreeStat(uint64_t& counter, uint64_t delta = 1) {
    std::atomic_ref<uint64_t>(counter).fetch_add(delta,
                                                 std::memory_order_relaxed);
  }

  // Exclusive latch per node extent; writers crab these down the tree.
  NodeLatchTable latch_table_;
  // Guards the root fields (root_, root_level_, root_region_,
  // root_region_valid_) against concurrent writers. Never held while
  // blocking on a node latch (see docs/CONCURRENCY.md, root protocol).
  common::Mutex meta_mu_;

  TreeOptions options_;
  TreeStats stats_;

 private:
  // Static packed construction (bulk_load.h) builds nodes directly.
  friend Status BulkLoadInternal(RTree* tree,
                                 std::vector<std::pair<Rect, TupleId>>*,
                                 int method, double fill_fraction);

  // Search loop shared by both public overloads; accumulates node accesses
  // and skipped subtrees into `oc` on every exit path.
  Status SearchImpl(const Rect& query, const SearchOptions& options,
                    std::vector<SearchHit>* out, SearchOutcome* oc) const;

  // Inserts one physical record (an original record, a cut remnant, or a
  // demoted spanning record). Latches the root via the retry protocol
  // (latch first, validate root_ under meta_mu_, retry if it moved) and
  // releases every latch it acquired before returning.
  Status InsertOne(const Rect& rect, TupleId tid, InsertContext* ctx);

  // Whether an insert descent may release its ancestor latches at this
  // node: the node cannot split from one more entry and its region already
  // contains `rect`, so nothing can propagate above it.
  bool InsertSafe(const Node& node, const Rect& node_region,
                  const Rect& rect) const;

  // Recursive descent. `node_region` is this node's region as recorded in
  // its parent (for the root: root_region_). Returns the branch for a new
  // sibling if this node split. Updates *node_region to the (possibly
  // grown) region.
  Result<std::optional<BranchEntry>> InsertRecursive(storage::PageId node_id,
                                                     Rect* node_region,
                                                     bool is_root,
                                                     const Rect& rect,
                                                     TupleId tid,
                                                     InsertContext* ctx);

  // Chooses the branch requiring least enlargement (ties: smaller area).
  static size_t ChooseSubtree(const Node& node, const Rect& rect);

  // Splits `node` (already over capacity in memory). Writes both halves and
  // returns the branch entry for the new sibling. `self_region_out`
  // receives the surviving node's tight region. Spanning records are
  // carried with their linked branch; records spanning a post-split region
  // are extracted into ctx->reinserts (promotion via reinsertion).
  Result<BranchEntry> SplitNode(storage::PageId node_id, Node* node,
                                Rect* self_region_out, InsertContext* ctx);

  Status GrowRootAfterSplit(const BranchEntry& old_root,
                            const BranchEntry& sibling);

  // Delete helpers (plain R-Tree).
  struct PathEntry {
    storage::PageId id;
    int branch_index_in_parent = -1;  // -1 for the root.
  };
  // Caller holds node_id's latch; child latches are acquired here before
  // recursing (parent-to-child order) and held until the branch is done.
  Result<bool> DeleteRecursive(storage::PageId node_id, const Rect& rect,
                               TupleId tid,
                               std::vector<std::pair<Rect, TupleId>>* orphans,
                               Rect* region_out, bool* underflow_out,
                               uint64_t* accesses);

  // Invariant-check recursion.
  Status CheckNodeInvariants(storage::PageId id, const Rect& region,
                             bool is_root, int expected_level,
                             bool expect_min_fill, uint64_t* entries_seen);

  // Leaf bookkeeping for coalescing.
  void NoteLeafModified(uint32_t block);
  void ForgetLeaf(uint32_t block);

  storage::Pager* pager_;
  // Derived from pager_->format_version() at construction.
  PageChecksumKind checksum_kind_ = PageChecksumKind::kCrc32c;

  // The phase gate separating searches (read-shared), Insert/Delete
  // (write-shared) and whole-tree operations (exclusive).
  PhaseGate gate_;

  // Root fields: mutated only under meta_mu_ *and* the root node's latch
  // (write phase). Readers access them without meta_mu_ — the phase gate
  // keeps writers out of the read phase entirely. Deliberately NOT
  // GUARDED_BY(meta_mu_): the protection is the phase, which the
  // compile-time analysis cannot model (the lockdep rules cover the
  // writer-side ordering instead).
  storage::PageId root_;
  int root_level_ = 0;
  Rect root_region_;
  bool root_region_valid_ = false;
  // Mutated via relaxed atomic_ref (concurrent writers).
  uint64_t record_count_ = 0;

  // Modification counts per leaf block (Section 4's "least frequently
  // modified" statistic). Rebuilt lazily after Open(). Concurrent writers
  // update it outside any common node latch.
  common::Mutex leaf_mu_;
  std::unordered_map<uint32_t, uint64_t> leaf_mod_counts_
      GUARDED_BY(leaf_mu_);

  // Exclusive-phase operations only; see CountNodeAccess().
  uint64_t op_node_accesses_ = 0;
};

}  // namespace segidx::rtree

#endif  // SEGIDX_RTREE_RTREE_H_
