// One-dimensional histograms used for Skeleton index distribution prediction
// (paper Section 4): a Skeleton index is pre-partitioned from per-dimension
// histograms of (a sample of) the input, using equi-depth boundaries so that
// each partition is expected to receive the same number of records.

#ifndef SEGIDX_COMMON_HISTOGRAM_H_
#define SEGIDX_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace segidx {

// An equi-width histogram over a fixed domain. Values outside the domain are
// clamped into the boundary buckets.
class Histogram {
 public:
  // Requires bucket_count >= 1 and a valid non-degenerate domain.
  Histogram(Interval domain, int bucket_count);

  void Add(Coord value);
  void AddN(Coord value, int64_t count);

  int bucket_count() const { return static_cast<int>(counts_.size()); }
  int64_t total_count() const { return total_; }
  const Interval& domain() const { return domain_; }
  int64_t bucket(int i) const { return counts_[i]; }
  // The sub-interval of the domain covered by bucket i.
  Interval BucketRange(int i) const;

  // Returns `partitions + 1` boundary values (first = domain lo, last =
  // domain hi) splitting the domain into `partitions` cells that each hold
  // approximately total_count() / partitions of the observed mass
  // (equi-depth). Within a bucket, mass is assumed uniform. If the histogram
  // is empty, returns equi-width boundaries. Boundaries are strictly
  // increasing.
  std::vector<Coord> EquiDepthBoundaries(int partitions) const;

 private:
  Interval domain_;
  Coord bucket_width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace segidx

#endif  // SEGIDX_COMMON_HISTOGRAM_H_
