// Deterministic pseudo-random number generation and the distributions used
// by the paper's workloads (uniform, truncated exponential).
//
// A fixed in-house generator (xoshiro256**) keeps workloads bit-identical
// across standard library implementations, which matters for reproducible
// experiment tables.

#ifndef SEGIDX_COMMON_RANDOM_H_
#define SEGIDX_COMMON_RANDOM_H_

#include <cstdint>

namespace segidx {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi].
  double Uniform(double lo, double hi);

  // Exponential with mean `beta`, truncated (by resampling) to
  // [0, max_value] when max_value > 0. The paper draws exponential values
  // with parameter beta over a bounded domain; resampling preserves the
  // shape within the domain.
  double Exponential(double beta, double max_value = 0);

  // Uniform integer in [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi);

 private:
  uint64_t state_[4];
};

}  // namespace segidx

#endif  // SEGIDX_COMMON_RANDOM_H_
