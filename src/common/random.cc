#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace segidx {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the full 256-bit state from SplitMix64 as recommended by the
  // xoshiro authors; avoids the all-zero state.
  uint64_t sm = seed;
  for (uint64_t& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  SEGIDX_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double beta, double max_value) {
  SEGIDX_DCHECK(beta > 0);
  for (;;) {
    double u = NextDouble();
    // Guard against log(0).
    if (u >= 1.0) u = 0x1.fffffffffffffp-1;
    const double v = -beta * std::log1p(-u);
    if (max_value <= 0 || v <= max_value) return v;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SEGIDX_DCHECK(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextU64());  // Full range.
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

}  // namespace segidx
