// Interval and rectangle geometry used throughout the index structures.
//
// All intervals are closed: [lo, hi] with lo <= hi. A point is the degenerate
// interval [v, v]. Rectangles are products of one interval per dimension.
// The library is two-dimensional (as in the paper's experiments); the
// one-dimensional case is represented by a degenerate Y interval.
//
// Terminology from the paper (Kolovson & Stonebraker, SIGMOD 1991):
//   * interval I1 "spans" I2  iff  I1.lo <= I2.lo and I1.hi >= I2.hi;
//   * a rectangle R spans a region B iff R spans B in either or both
//     dimensions (Section 3.1.1);
//   * "cutting" splits a data rectangle that pokes outside a node region
//     into the portion inside (the spanning portion) and up to four remnant
//     pieces outside (Section 3.1.1, Figure 3).

#ifndef SEGIDX_COMMON_GEOMETRY_H_
#define SEGIDX_COMMON_GEOMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace segidx {

using Coord = double;

// A closed interval [lo, hi].
struct Interval {
  Coord lo = 0;
  Coord hi = 0;

  Interval() = default;
  Interval(Coord lo_in, Coord hi_in) : lo(lo_in), hi(hi_in) {}

  static Interval Point(Coord v) { return Interval(v, v); }

  bool valid() const { return lo <= hi; }
  Coord length() const { return hi - lo; }
  Coord center() const { return (lo + hi) / 2; }
  bool is_point() const { return lo == hi; }

  bool Contains(Coord v) const { return lo <= v && v <= hi; }
  bool Contains(const Interval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }
  // Paper's span relation; identical to containment of the other interval.
  bool Spans(const Interval& other) const { return Contains(other); }
  bool Intersects(const Interval& other) const {
    return lo <= other.hi && other.lo <= hi;
  }

  // Smallest interval containing both. Valid even if they do not intersect.
  Interval Enclose(const Interval& other) const {
    return Interval(lo < other.lo ? lo : other.lo,
                    hi > other.hi ? hi : other.hi);
  }
  // Intersection; only meaningful when Intersects(other).
  Interval Intersect(const Interval& other) const {
    return Interval(lo > other.lo ? lo : other.lo,
                    hi < other.hi ? hi : other.hi);
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }

  std::string ToString() const;
};

// An axis-aligned rectangle (product of closed intervals).
struct Rect {
  Interval x;
  Interval y;

  Rect() = default;
  Rect(Interval x_in, Interval y_in) : x(x_in), y(y_in) {}
  Rect(Coord xlo, Coord xhi, Coord ylo, Coord yhi)
      : x(xlo, xhi), y(ylo, yhi) {}

  static Rect Point(Coord px, Coord py) {
    return Rect(Interval::Point(px), Interval::Point(py));
  }
  // A 1-D segment [lo, hi] embedded at Y = v (degenerate Y interval).
  static Rect Segment1D(Coord lo, Coord hi, Coord v = 0) {
    return Rect(Interval(lo, hi), Interval::Point(v));
  }

  bool valid() const { return x.valid() && y.valid(); }
  Coord area() const { return x.length() * y.length(); }
  // Half-perimeter; used as a tie-breaker in node split heuristics.
  Coord margin() const { return x.length() + y.length(); }

  bool Contains(const Rect& other) const {
    return x.Contains(other.x) && y.Contains(other.y);
  }
  bool ContainsPoint(Coord px, Coord py) const {
    return x.Contains(px) && y.Contains(py);
  }
  bool Intersects(const Rect& other) const {
    return x.Intersects(other.x) && y.Intersects(other.y);
  }

  // Paper Section 3.1.1: a record spans a region if it spans it in either
  // or both dimensions.
  bool SpansEitherDimension(const Rect& region) const {
    return x.Spans(region.x) || y.Spans(region.y);
  }
  // Spans in every dimension (used by the 1-D special case and invariants).
  bool SpansBothDimensions(const Rect& region) const {
    return x.Spans(region.x) && y.Spans(region.y);
  }

  // The SR-Tree spanning-record qualification (paper Figure 2): the record
  // overlaps the region and covers it completely in at least one
  // dimension. Mere x-coverage of a region the record never touches does
  // not qualify — such a record shares no queries with the region.
  bool SpansRegion(const Rect& region) const {
    return Intersects(region) && SpansEitherDimension(region);
  }

  Rect Enclose(const Rect& other) const {
    return Rect(x.Enclose(other.x), y.Enclose(other.y));
  }
  Rect Intersect(const Rect& other) const {
    return Rect(x.Intersect(other.x), y.Intersect(other.y));
  }

  // Area increase needed for this rect to enclose `other` (Guttman's
  // least-enlargement insertion criterion).
  Coord Enlargement(const Rect& other) const {
    return Enclose(other).area() - area();
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.x == b.x && a.y == b.y;
  }

  std::string ToString() const;
};

// Result of cutting a data rectangle against a node region (Figure 3).
struct CutResult {
  // The portion of the record inside the region (record ∩ region).
  Rect spanning_portion;
  // Up to four disjoint pieces of the record outside the region, produced by
  // guillotine cuts: full-height left/right slabs, then top/bottom of the
  // middle column. Empty when the record is fully enclosed.
  std::vector<Rect> remnants;
};

// Cuts `record` against `region`. Requires record.Intersects(region).
// The spanning portion plus the remnants exactly tile `record` (they are
// pairwise disjoint up to shared boundaries and their union is `record`).
CutResult CutRecord(const Rect& record, const Rect& region);

}  // namespace segidx

#endif  // SEGIDX_COMMON_GEOMETRY_H_
