// Clang Thread Safety Analysis attribute macros.
//
// These expand to the `capability`-family attributes when the compiler
// supports them (clang with -Wthread-safety) and to nothing elsewhere
// (GCC builds them as no-ops; the tier-1 CI job doubles as the no-op
// check). They let the concurrency contract in docs/CONCURRENCY.md be
// stated on the types that implement it — `common::Mutex` is the
// annotated capability, classes mark protected members GUARDED_BY and
// lock-holding preconditions REQUIRES — so a descent that touches guarded
// state without its latch fails the clang CI build instead of surfacing
// as a TSan flake.
//
// Naming follows the upstream clang documentation (unprefixed CAPABILITY,
// GUARDED_BY, ...). Keep this header free of any other includes: it is
// pulled into every latch-bearing header in the tree.

#ifndef SEGIDX_COMMON_THREAD_ANNOTATIONS_H_
#define SEGIDX_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SEGIDX_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef SEGIDX_THREAD_ANNOTATION_
#define SEGIDX_THREAD_ANNOTATION_(x)  // Not clang (or too old): no-op.
#endif

// On types: this class is a capability (a lock). The string names the
// capability kind in diagnostics ("mutex").
#define CAPABILITY(x) SEGIDX_THREAD_ANNOTATION_(capability(x))

// On types: RAII object that acquires a capability in its constructor and
// releases it in its destructor.
#define SCOPED_CAPABILITY SEGIDX_THREAD_ANNOTATION_(scoped_lockable)

// On data members: reads/writes require holding the named capability.
#define GUARDED_BY(x) SEGIDX_THREAD_ANNOTATION_(guarded_by(x))

// On pointer members: the pointed-to data (not the pointer) is guarded.
#define PT_GUARDED_BY(x) SEGIDX_THREAD_ANNOTATION_(pt_guarded_by(x))

// On functions: caller must hold the capability (exclusively / shared).
#define REQUIRES(...) \
  SEGIDX_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SEGIDX_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// On functions: acquires / releases the capability.
#define ACQUIRE(...) SEGIDX_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SEGIDX_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) SEGIDX_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SEGIDX_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

// On functions: acquires the capability iff the return value equals the
// first argument.
#define TRY_ACQUIRE(...) \
  SEGIDX_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// On functions: caller must NOT hold the capability (deadlock guard for
// non-reentrant locks).
#define EXCLUDES(...) SEGIDX_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// On functions: asserts (at runtime, by contract) that the capability is
// held, teaching the analysis without an acquire.
#define ASSERT_CAPABILITY(x) SEGIDX_THREAD_ANNOTATION_(assert_capability(x))

// On functions: returns a reference to the named capability.
#define RETURN_CAPABILITY(x) SEGIDX_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch for code the analysis cannot follow (hand-over-hand latch
// transfer, adopt/release tricks). Every use must say why in a comment and
// name the mechanism that checks the invariant instead (usually the
// SEGIDX_LOCKDEP runtime validator, src/check/lock_order.h).
#define NO_THREAD_SAFETY_ANALYSIS \
  SEGIDX_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // SEGIDX_COMMON_THREAD_ANNOTATIONS_H_
