// Shared plain typedefs for the index structures.

#ifndef SEGIDX_COMMON_TYPES_H_
#define SEGIDX_COMMON_TYPES_H_

#include <cstdint>

namespace segidx {

// Identifier of a data tuple referenced by a leaf (or spanning) index
// record. The index stores references only; tuple payloads live in the heap
// file of the host DBMS (out of scope here, as in the paper).
using TupleId = uint64_t;

constexpr TupleId kInvalidTupleId = ~0ULL;

}  // namespace segidx

#endif  // SEGIDX_COMMON_TYPES_H_
