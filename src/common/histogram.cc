#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace segidx {

Histogram::Histogram(Interval domain, int bucket_count) : domain_(domain) {
  // Validate before deriving anything: computing the width first would
  // divide by zero for bucket_count == 0 (and leave AddN clamping to
  // index -1, where std::clamp with lo > hi is UB).
  SEGIDX_CHECK_GE(bucket_count, 1);
  SEGIDX_CHECK(domain.valid());
  SEGIDX_CHECK_GT(domain.length(), 0);
  bucket_width_ = domain.length() / bucket_count;
  counts_.assign(static_cast<size_t>(bucket_count), 0);
}

void Histogram::Add(Coord value) { AddN(value, 1); }

void Histogram::AddN(Coord value, int64_t count) {
  int i = static_cast<int>((value - domain_.lo) / bucket_width_);
  i = std::clamp(i, 0, bucket_count() - 1);
  counts_[i] += count;
  total_ += count;
}

Interval Histogram::BucketRange(int i) const {
  SEGIDX_CHECK(i >= 0 && i < bucket_count());
  const Coord lo = domain_.lo + bucket_width_ * i;
  const Coord hi = (i + 1 == bucket_count()) ? domain_.hi : lo + bucket_width_;
  return Interval(lo, hi);
}

std::vector<Coord> Histogram::EquiDepthBoundaries(int partitions) const {
  SEGIDX_CHECK_GE(partitions, 1);
  std::vector<Coord> bounds;
  bounds.reserve(partitions + 1);
  bounds.push_back(domain_.lo);

  if (total_ == 0) {
    for (int p = 1; p < partitions; ++p) {
      bounds.push_back(domain_.lo + domain_.length() * p / partitions);
    }
    bounds.push_back(domain_.hi);
    return bounds;
  }

  // Walk buckets, emitting a boundary each time cumulative mass crosses a
  // multiple of total/partitions. Mass is interpolated linearly within a
  // bucket.
  const double step = static_cast<double>(total_) / partitions;
  double cumulative = 0;
  int next_boundary = 1;
  for (int i = 0; i < bucket_count() && next_boundary < partitions; ++i) {
    const double bucket_mass = static_cast<double>(counts_[i]);
    while (next_boundary < partitions &&
           cumulative + bucket_mass >= step * next_boundary) {
      const double need = step * next_boundary - cumulative;
      const double frac = bucket_mass > 0 ? need / bucket_mass : 1.0;
      const Interval range = BucketRange(i);
      Coord boundary = range.lo + range.length() * frac;
      // Enforce strictly increasing boundaries even when many quantiles land
      // in one bucket.
      if (boundary <= bounds.back()) {
        boundary = std::nextafter(bounds.back(), domain_.hi);
      }
      boundary = std::min(boundary, domain_.hi);
      bounds.push_back(boundary);
      ++next_boundary;
    }
    cumulative += bucket_mass;
  }
  // If mass ran out early (all records in a prefix), pad remaining
  // boundaries evenly over what is left of the domain.
  while (next_boundary < partitions) {
    const Coord lo = bounds.back();
    const int remaining = partitions - next_boundary + 1;
    Coord boundary = lo + (domain_.hi - lo) / remaining;
    if (boundary <= lo) boundary = std::nextafter(lo, domain_.hi);
    bounds.push_back(std::min(boundary, domain_.hi));
    ++next_boundary;
  }
  bounds.push_back(domain_.hi);

  // Final monotonicity fix-up for degenerate cases near domain hi.
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      bounds[i] = std::nextafter(bounds[i - 1], domain_.hi + 1);
    }
  }
  return bounds;
}

}  // namespace segidx
