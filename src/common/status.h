// Error handling primitives: Status and Result<T>.
//
// The library does not use exceptions. Fallible operations return a Status
// (or a Result<T> when they also produce a value). Modeled on absl::Status /
// absl::StatusOr with only the functionality this project needs.

#ifndef SEGIDX_COMMON_STATUS_H_
#define SEGIDX_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace segidx {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kCorruption,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  // The operation cannot be served right now (e.g. the pager degraded to
  // read-only after a hard I/O error); reads may still succeed.
  kUnavailable,
  // The operation's deadline expired before it completed. Any partial
  // output must be discarded by the caller.
  kDeadlineExceeded,
  // The operation was cancelled cooperatively (cancel token fired, or a
  // batch aborted before the query was claimed).
  kCancelled,
};

// Returns a stable human-readable name, e.g. "IO_ERROR".
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    SEGIDX_DCHECK(code != StatusCode::kOk);
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "IO_ERROR: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Convenience constructors mirroring absl's.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status IoError(std::string message);
Status CorruptionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);
Status CancelledError(std::string message);

// Result<T> holds either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : data_(std::move(value)) {}            // NOLINT
  Result(Status status) : data_(std::move(status)) {      // NOLINT
    SEGIDX_CHECK(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  T& value() & {
    SEGIDX_CHECK(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    SEGIDX_CHECK(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    SEGIDX_CHECK(ok());
    return std::get<T>(std::move(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace segidx

// Propagates a non-OK status out of the enclosing function.
#define SEGIDX_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::segidx::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (false)

// Evaluates a Result<T> expression; on success binds the value, otherwise
// returns the error status.
#define SEGIDX_ASSIGN_OR_RETURN(lhs, expr)    \
  SEGIDX_ASSIGN_OR_RETURN_IMPL(               \
      SEGIDX_STATUS_CONCAT(_result, __LINE__), lhs, expr)

#define SEGIDX_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define SEGIDX_STATUS_CONCAT(a, b) SEGIDX_STATUS_CONCAT_IMPL(a, b)
#define SEGIDX_STATUS_CONCAT_IMPL(a, b) a##b

#endif  // SEGIDX_COMMON_STATUS_H_
