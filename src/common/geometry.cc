#include "common/geometry.h"

#include <cstdio>

#include "common/logging.h"

namespace segidx {

std::string Interval::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%g, %g]", lo, hi);
  return buf;
}

std::string Rect::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%g, %g]x[%g, %g]", x.lo, x.hi, y.lo, y.hi);
  return buf;
}

CutResult CutRecord(const Rect& record, const Rect& region) {
  SEGIDX_CHECK(record.Intersects(region));
  CutResult result;
  result.spanning_portion = record.Intersect(region);

  // Left slab: the part of the record strictly left of the region, full
  // record height.
  if (record.x.lo < region.x.lo) {
    result.remnants.push_back(
        Rect(Interval(record.x.lo, region.x.lo), record.y));
  }
  // Right slab.
  if (record.x.hi > region.x.hi) {
    result.remnants.push_back(
        Rect(Interval(region.x.hi, record.x.hi), record.y));
  }
  // Middle column above / below the region.
  const Interval mid_x = record.x.Intersect(region.x);
  if (record.y.lo < region.y.lo) {
    result.remnants.push_back(Rect(mid_x, Interval(record.y.lo, region.y.lo)));
  }
  if (record.y.hi > region.y.hi) {
    result.remnants.push_back(Rect(mid_x, Interval(region.y.hi, record.y.hi)));
  }
  return result;
}

}  // namespace segidx
