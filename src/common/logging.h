// Minimal assertion / logging macros in the spirit of glog's CHECK family.
//
// The library is exception-free (Google style); unrecoverable internal
// invariant violations abort with a message, while recoverable conditions
// are reported through segidx::Status.

#ifndef SEGIDX_COMMON_LOGGING_H_
#define SEGIDX_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace segidx::internal_logging {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace segidx::internal_logging

#define SEGIDX_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::segidx::internal_logging::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                   \
  } while (false)

#define SEGIDX_CHECK_EQ(a, b) SEGIDX_CHECK((a) == (b))
#define SEGIDX_CHECK_NE(a, b) SEGIDX_CHECK((a) != (b))
#define SEGIDX_CHECK_LT(a, b) SEGIDX_CHECK((a) < (b))
#define SEGIDX_CHECK_LE(a, b) SEGIDX_CHECK((a) <= (b))
#define SEGIDX_CHECK_GT(a, b) SEGIDX_CHECK((a) > (b))
#define SEGIDX_CHECK_GE(a, b) SEGIDX_CHECK((a) >= (b))

#ifndef NDEBUG
#define SEGIDX_DCHECK(expr) SEGIDX_CHECK(expr)
#else
#define SEGIDX_DCHECK(expr) \
  do {                      \
  } while (false)
#endif

#endif  // SEGIDX_COMMON_LOGGING_H_
