// Annotated mutex and condition-variable wrappers.
//
// libstdc++'s std::mutex carries no thread-safety attributes, so
// `GUARDED_BY(some_std_mutex)` teaches clang's -Wthread-safety nothing: it
// cannot see where the lock is taken. These thin wrappers restate the
// standard primitives as annotated capabilities; every latch-bearing class
// in the tree (PhaseGate, NodeLatchTable, Pager, RTree, IntervalIndex,
// the exec pools) holds a common::Mutex so the contract in
// docs/CONCURRENCY.md is machine-checked at compile time. Zero runtime
// cost over the std types.
//
// The repo-specific lint (tools/lint/check_concurrency.py) rejects raw
// std::mutex / std::lock_guard / std::condition_variable in src/ outside a
// short whitelist, so new locking code cannot silently bypass the
// annotations.

#ifndef SEGIDX_COMMON_MUTEX_H_
#define SEGIDX_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace segidx::common {

class CondVar;

// std::mutex as an annotated capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For functions whose contract says "caller holds the lock" but that
  // cannot carry REQUIRES (e.g. reached through a std call): a no-op that
  // teaches the analysis the capability is held here.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock for one scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable bound to common::Mutex. Wait atomically releases the
// mutex, sleeps, and reacquires it before returning — the caller holds the
// mutex across the call from the analysis' point of view, which matches
// the invariant the caller actually relies on. Standard contract applies:
// re-check the predicate in a loop around every wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    // Adopt the already-held mutex so std::condition_variable can release
    // and reacquire it, then detach again without unlocking. The capability
    // is held on entry and on exit, which is all callers may assume; the
    // window in between is what the predicate loop re-checks.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // Returns false if `deadline` passed (the predicate is unchecked either
  // way; loop as usual).
  bool WaitUntil(Mutex* mu, std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace segidx::common

#endif  // SEGIDX_COMMON_MUTEX_H_
