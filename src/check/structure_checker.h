// Deep structural validation for every index variant (the correctness wall
// the perf work lands against).
//
// The paper's structures are easy to break silently: a mis-placed spanning
// record or a lost cut remnant does not crash — it makes some future query
// return the wrong rows. StructureChecker therefore walks a whole
// RTree/SRTree through the public introspection API and verifies the full
// invariant set:
//
//   * tree shape: balance, per-node entry capacities, serialized byte
//     budgets, per-level extent size-class doubling (Section 2.1.2);
//   * regions: every entry (record, branch, spanning record) is contained
//     in its node's region; optionally that each region is the *tight* MBR
//     of its subtree (off by default: skeleton pre-partitioned regions and
//     SR-Tree demotions legitimately leave slack);
//   * spanning records (Section 3.1.1): linked branch exists, the record
//     spans the linked branch's region, and — optionally, strict mode — no
//     record spans its node's whole region un-promoted (quota-overflow
//     policies kDescend/kEvictSmallest deliberately relax this);
//   * cut-remnant tiling (Section 3.1.1, Figure 3): given the original
//     records, the stored pieces of each tuple are pairwise disjoint, lie
//     inside the original rectangle, and cover it exactly;
//   * storage (pager level): no extent referenced twice, no extent both
//     reachable and on a free list, no orphaned extent (reachable + free
//     extents tile the allocated block range), and every reachable page
//     deserializes with a valid checksum.
//
// Unlike RTree::CheckInvariants (a quick first-violation self-check), the
// checker collects *all* violations into a CheckReport so tests can assert
// that a deliberately injected corruption produces exactly the expected
// violation kind, and `segidx check` can print a full damage report.
//
// Skeleton grids (Section 4) are validated by CheckSpec: boundaries strictly
// increasing, each level's cells partition the domain, and upper-level
// boundaries nest into lower-level ones.

#ifndef SEGIDX_CHECK_STRUCTURE_CHECKER_H_
#define SEGIDX_CHECK_STRUCTURE_CHECKER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "common/types.h"
#include "rtree/rtree.h"
#include "storage/pager.h"

namespace segidx::check {

enum class ViolationKind {
  // Node-level structure.
  kNodeReadFailed = 0,   // Fetch/deserialize failure (I/O, checksum).
  kUnbalancedTree,       // Node level differs from its depth.
  kLeafOverflow,         // More records than the leaf capacity.
  kBranchOverflow,       // More branches than the byte capacity allows.
  kNodeBytesOverflow,    // Serialized node exceeds its extent.
  kBelowMinFill,         // Non-root node under Guttman's minimum fill.
  kInvalidRect,          // Stored rectangle with lo > hi.
  kWrongSizeClass,       // Extent size class != expected for the level.
  // Regions.
  kMbrNotContained,      // Entry escapes its node's region.
  kMbrNotTight,          // Region larger than the tight MBR (optional).
  // Spanning records (SR-Tree).
  kSpanningInPlainTree,  // Spanning entry in a tree with spanning disabled.
  kSpanningNotContained, // Spanning rect escapes its node's region.
  kSpanningBrokenLink,   // Linked branch is not on the node.
  kSpanningNotSpanning,  // Record does not span its linked branch's region.
  kSpanningQuotaExceeded,// More spanning entries than the reserved quota.
  kSpanningNotHighest,   // Spans the whole node region un-promoted (strict).
  // Cut-remnant tiling (needs expected records).
  kRemnantOverlap,       // Two pieces of one tuple overlap.
  kRemnantGap,           // Pieces do not cover the original rectangle.
  kRemnantOutsideOriginal,  // A piece pokes outside the original rectangle.
  kUnexpectedRecord,     // Stored tuple id absent from the expected set.
  kRecordCountMismatch,  // tree->size() != expected record count.
  // Storage accounting.
  kPageDoublyReferenced, // Extent reachable twice / overlapping extents.
  kPageOrphaned,         // Allocated blocks neither reachable nor free.
  kPageOutOfBounds,      // Reference beyond the allocation high-water mark.
  kFreeListCorrupt,      // Free list unreadable, cyclic, or out of range.
};

// Stable name, e.g. "SPANNING_BROKEN_LINK".
const char* ViolationKindName(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  // Offending page; invalid() for tree- or record-global violations.
  storage::PageId page;
  // Offending tuple, or kInvalidTupleId.
  TupleId tid = kInvalidTupleId;
  std::string message;

  // "SPANNING_BROKEN_LINK @page 17: ...".
  std::string ToString() const;
};

struct CheckOptions {
  // Demand Guttman's minimum fill in every non-root node (only valid for
  // trees grown purely by splits; skeleton and coalesced trees violate it
  // by design).
  bool expect_min_fill = false;
  // Demand that every node region equals the tight MBR of its entries.
  // Plain dynamic R-Trees maintain this; skeleton pre-partitioned regions
  // and SR-Tree demotions legitimately leave slack.
  bool check_mbr_tightness = false;
  // Strict Section 3 placement: no spanning record may span its node's
  // whole region (it would belong on the parent). The quota-overflow
  // policies kDescend and kEvictSmallest deliberately let records descend
  // past full nodes, so enable this only for workloads known to stay under
  // the spanning quotas.
  bool strict_spanning_placement = false;
  // Check the spanning-record quota (skipped automatically under the
  // kSplit overflow policy, where spanning capacity is unbounded).
  bool check_spanning_quota = true;
  // Cross-check the pager: reachable + free extents must exactly tile the
  // allocated block range.
  bool check_page_accounting = true;
  // The original (uncut) records, for the remnant-tiling and record-count
  // checks; tuple ids must be unique. nullptr skips those checks.
  const std::vector<std::pair<Rect, TupleId>>* expected_records = nullptr;
  // Stop collecting after this many violations (the walk still completes).
  size_t max_violations = 64;
};

struct CheckReport {
  std::vector<Violation> violations;
  bool truncated = false;  // max_violations was hit.

  // Walk statistics.
  uint64_t nodes_visited = 0;
  uint64_t leaf_records = 0;
  uint64_t spanning_records = 0;
  uint64_t reachable_extents = 0;
  uint64_t free_extents = 0;

  bool ok() const { return violations.empty(); }
  bool Has(ViolationKind kind) const;
  size_t CountOf(ViolationKind kind) const;
  // OK, or kInternal carrying the first violation (and the total count).
  Status ToStatus() const;
  // Multi-line human-readable report (all violations + statistics).
  std::string ToString() const;
};

class StructureChecker {
 public:
  // `tree` (and its pager) must outlive the checker. The checker only
  // reads; it never modifies the tree.
  explicit StructureChecker(rtree::RTree* tree, CheckOptions options = {});

  // Walks the whole structure once. The Result is an error only for
  // internal failures (e.g. the free-list walk failing mid-way is reported
  // as a violation, not an error).
  Result<CheckReport> Check();

  // Validates a skeleton grid description (Section 4): at least one cell
  // per dimension and level, strictly increasing boundaries, every level
  // spanning exactly `domain`, and level k+1 boundaries a subset of level
  // k's (so cells nest and each level partitions the domain).
  static Status CheckSpec(const rtree::SkeletonSpec& spec, const Rect& domain);

 private:
  void Report(ViolationKind kind, storage::PageId page, TupleId tid,
              std::string message);
  void CheckNode(storage::PageId id, const rtree::Node& node,
                 const Rect& region, bool is_root);
  void CheckSpanningEntries(storage::PageId id, const rtree::Node& node,
                            const Rect& region, bool is_root);
  void CheckRecordTiling();
  void CheckPageAccounting();

  rtree::RTree* tree_;
  CheckOptions options_;
  CheckReport report_;

  // Pieces stored per tuple id (leaf records + spanning records), collected
  // only when expected_records is provided.
  std::unordered_map<TupleId, std::vector<Rect>> pieces_;
  // Extents reached from the root (block -> size class), for cycle
  // protection and page accounting.
  std::unordered_map<uint32_t, uint8_t> reachable_;
};

}  // namespace segidx::check

#endif  // SEGIDX_CHECK_STRUCTURE_CHECKER_H_
