// Runtime lock-order validation (lockdep) for the concurrency contract.
//
// docs/CONCURRENCY.md states the hierarchy — phase gate, then node latches
// top-down, then the short leaf mutexes, with the pager's own internal
// order below — as prose. This validator turns the rules into aborts:
// compiled in under -DSEGIDX_LOCKDEP=1 (CMake option SEGIDX_LOCKDEP), it
// keeps a per-thread stack of held locks and a global acquired-before
// graph over lock *classes*, and kills the process with both acquisition
// stacks the moment any thread closes an ordering cycle — even if the
// actual interleaving this run never deadlocks. With the option off, every
// hook below is an empty inline and the contract costs nothing.
//
// Beyond the generic graph, three repo-specific rules are enforced
// directly because the graph cannot express them:
//
//   * Phase discipline: node latches may only be acquired by a thread
//     inside a write or exclusive phase, and a thread may not re-enter a
//     gate it is already inside (self-deadlock against the fairness
//     rotation), nor enter any gate while holding a node latch.
//   * Crabbing: acquiring a non-root node latch requires declaring the
//     parent (NodeLatchTable::LatchOrigin::Child) and actually holding that
//     parent's latch; the standalone protocols (root retry loop, SR-Tree
//     demotion drain) must hold no node latch at all.
//   * Leaf locks: NodeLatchTable::map_mu_ may never be held while
//     acquiring anything, and no two pager partition latches may ever be
//     held at once (shards are strictly one-at-a-time).
//
// Violations abort via std::abort after printing the offending stacks, so
// death tests (tests/lockdep_test.cc) can seed breaches and assert they
// are caught.

#ifndef SEGIDX_CHECK_LOCK_ORDER_H_
#define SEGIDX_CHECK_LOCK_ORDER_H_

#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace segidx::check {

// Every blocking primitive in the system belongs to one class. The
// acquired-before graph is built over classes, not instances: one
// violating pair of instances poisons the class pair, which is exactly
// what a hierarchy rule means. (Node latches are the deliberate
// exception — same-class nesting is their crabbing protocol, checked by
// the parent-declaration rule instead.)
enum class LockClass : int {
  kSkeleton = 0,    // core::IntervalIndex::skeleton_mu_ (above the gate).
  kPhaseGate,       // rtree::PhaseGate phase membership.
  kNodeLatch,       // rtree::NodeLatchTable entry latches (crabbing).
  kLatchMap,        // rtree::NodeLatchTable::map_mu_ (leaf; never blocks).
  kTreeMeta,        // rtree::RTree::meta_mu_ (after node latches).
  kTreeLeaf,        // rtree::RTree::leaf_mu_.
  kExecPool,        // exec::QueryEngine / exec::WritePool scheduler mutex.
  kPagerPartition,  // storage::Pager LRU shard latches (one at a time).
  kPagerAlloc,      // storage::Pager::alloc_mu_ (after a partition latch).
  kPagerQuarantine,  // storage::Pager::quarantine_mu_.
  kPagerCommit,     // storage::Pager::commit_mu_ (group-commit sequencer).
  kServerQueue,     // server::Server request queues / scheduler state.
                    // Strict leaf: never held across index calls or sends.
  kServerConn,      // server::Connection write mutex (frames out whole).
                    // Strict leaf: held only across the socket write.
  kServerDedup,     // server::DedupWindow map mutex. Leaf: taken alone by
                    // the write dispatcher / I/O thread, and under the
                    // exclusive phase by the commit-meta hook.
  kClassCount,
};

const char* LockClassName(LockClass cls);

#if defined(SEGIDX_LOCKDEP)

// Called immediately BEFORE blocking on / releasing a plain mutex of class
// `cls`. `instance` distinguishes objects within a class (recursive
// acquisition of the same instance is always fatal).
void LockdepOnLock(LockClass cls, const void* instance);
void LockdepOnUnlock(LockClass cls, const void* instance);

// Phase-gate membership. `mode` is rtree::PhaseGate::Mode as an int
// (0 read, 1 write, 2 exclusive). Enter is called before blocking on the
// gate; Exit after leaving it.
void LockdepPhaseEnter(const void* gate, int mode);
void LockdepPhaseExit(const void* gate);

// Node-latch acquisition/release. `parent_declared` distinguishes crabbing
// (the caller claims to hold `parent_block`'s latch) from the standalone
// protocols (root retry, demotion drain — no node latch held). Called
// before blocking on the entry latch / after releasing it.
void LockdepNodeLatchAcquire(const void* table, uint32_t block,
                             bool parent_declared, uint32_t parent_block);
void LockdepNodeLatchRelease(const void* table, uint32_t block);

// Test-only: forget the global acquired-before graph and the calling
// thread's held-lock state (other threads' stacks are untouched — reset
// only from quiesced tests).
void LockdepResetForTesting();

#else  // !SEGIDX_LOCKDEP

inline void LockdepOnLock(LockClass, const void*) {}
inline void LockdepOnUnlock(LockClass, const void*) {}
inline void LockdepPhaseEnter(const void*, int) {}
inline void LockdepPhaseExit(const void*) {}
inline void LockdepNodeLatchAcquire(const void*, uint32_t, bool, uint32_t) {}
inline void LockdepNodeLatchRelease(const void*, uint32_t) {}
inline void LockdepResetForTesting() {}

#endif  // SEGIDX_LOCKDEP

// Drop-in replacement for common::MutexLock that reports the acquisition
// to the validator. All latch-bearing classes use this for their plain
// mutexes; with SEGIDX_LOCKDEP off it compiles to exactly MutexLock.
class SCOPED_CAPABILITY TrackedMutexLock {
 public:
  TrackedMutexLock(common::Mutex* mu, LockClass cls) ACQUIRE(mu)
      : mu_(mu), cls_(cls) {
    LockdepOnLock(cls_, mu_);
    mu_->Lock();
  }
  ~TrackedMutexLock() RELEASE() {
    mu_->Unlock();
    LockdepOnUnlock(cls_, mu_);
  }

  TrackedMutexLock(const TrackedMutexLock&) = delete;
  TrackedMutexLock& operator=(const TrackedMutexLock&) = delete;

 private:
  common::Mutex* mu_;
  LockClass cls_;
};

}  // namespace segidx::check

#endif  // SEGIDX_CHECK_LOCK_ORDER_H_
