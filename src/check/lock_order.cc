#include "check/lock_order.h"

#include <cstdio>
#include <cstdlib>

namespace segidx::check {

const char* LockClassName(LockClass cls) {
  switch (cls) {
    case LockClass::kSkeleton:
      return "IntervalIndex::skeleton_mu_";
    case LockClass::kPhaseGate:
      return "PhaseGate";
    case LockClass::kNodeLatch:
      return "NodeLatchTable entry latch";
    case LockClass::kLatchMap:
      return "NodeLatchTable::map_mu_";
    case LockClass::kTreeMeta:
      return "RTree::meta_mu_";
    case LockClass::kTreeLeaf:
      return "RTree::leaf_mu_";
    case LockClass::kExecPool:
      return "exec pool mutex";
    case LockClass::kPagerPartition:
      return "Pager partition latch";
    case LockClass::kPagerAlloc:
      return "Pager::alloc_mu_";
    case LockClass::kPagerQuarantine:
      return "Pager::quarantine_mu_";
    case LockClass::kPagerCommit:
      return "Pager::commit_mu_";
    case LockClass::kServerQueue:
      return "Server queue mutex";
    case LockClass::kServerConn:
      return "Server connection write mutex";
    case LockClass::kServerDedup:
      return "Server dedup-window mutex";
    case LockClass::kClassCount:
      break;
  }
  return "unknown lock class";
}

}  // namespace segidx::check

#if defined(SEGIDX_LOCKDEP)

#include <execinfo.h>

#include <mutex>
#include <vector>

namespace segidx::check {
namespace {

constexpr int kNumClasses = static_cast<int>(LockClass::kClassCount);
constexpr int kMaxFrames = 32;

// One learned acquired-before edge: "a lock of class `from` was held while
// a lock of class `to` was acquired", plus the stack that first did so.
struct EdgeInfo {
  bool present = false;
  void* frames[kMaxFrames];
  int depth = 0;
};

// The validator's own mutex is deliberately a raw std::mutex: it must not
// validate itself, and it nests strictly innermost (no callback ever runs
// under it). Whitelisted in tools/lint/check_concurrency.py.
std::mutex g_graph_mu;
EdgeInfo g_edges[kNumClasses][kNumClasses];

struct HeldLock {
  LockClass cls;
  const void* instance;
  uint32_t block;  // Node latches only.
};

struct GateEntry {
  const void* gate;
  int mode;  // 0 read, 1 write, 2 exclusive.
};

struct ThreadState {
  std::vector<HeldLock> held;
  std::vector<GateEntry> gates;
};

ThreadState& State() {
  thread_local ThreadState state;
  return state;
}

void PrintStack(const char* label, void* const* frames, int depth) {
  std::fprintf(stderr, "%s\n", label);
  backtrace_symbols_fd(const_cast<void* const*>(frames), depth,
                       /*fd=*/2);
}

void PrintCurrentStack(const char* label) {
  void* frames[kMaxFrames];
  const int depth = backtrace(frames, kMaxFrames);
  PrintStack(label, frames, depth);
}

[[noreturn]] void Die(const char* format, const char* a, const char* b) {
  std::fprintf(stderr, "lockdep: ");
  std::fprintf(stderr, format, a, b);
  std::fprintf(stderr, "\n");
  PrintCurrentStack("lockdep: violating acquisition:");
  std::fprintf(stderr,
               "lockdep: the concurrency contract is docs/CONCURRENCY.md\n");
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void DieBlock(const char* what, uint32_t block) {
  char detail[160];
  std::snprintf(detail, sizeof(detail), "%s (node block %u)", what, block);
  Die("%s%s", detail, "");
}

// Depth-first reachability in the learned graph. Caller holds g_graph_mu.
bool ReachableLocked(int from, int to, bool* visited) {
  if (from == to) return true;
  visited[from] = true;
  for (int next = 0; next < kNumClasses; ++next) {
    if (g_edges[from][next].present && !visited[next] &&
        ReachableLocked(next, to, visited)) {
      return true;
    }
  }
  return false;
}

// Records held-class -> cls edges for every lock the thread holds, and
// aborts if any new edge closes a cycle — printing the stack that recorded
// the reverse path's first edge next to the current one.
void RecordEdges(LockClass cls) {
  ThreadState& state = State();
  if (state.held.empty()) return;
  const int to = static_cast<int>(cls);
  bool seen_class[kNumClasses] = {};
  std::lock_guard<std::mutex> lock(g_graph_mu);
  for (const HeldLock& held : state.held) {
    const int from = static_cast<int>(held.cls);
    if (from == to || seen_class[from]) continue;
    seen_class[from] = true;
    EdgeInfo& edge = g_edges[from][to];
    if (edge.present) continue;
    // Would from -> to close a cycle? That is: does `to` already reach
    // `from` through learned edges?
    bool visited[kNumClasses] = {};
    if (ReachableLocked(to, from, visited)) {
      std::fprintf(stderr,
                   "lockdep: lock-order cycle: acquiring %s while holding "
                   "%s, but the reverse order was already observed\n",
                   LockClassName(cls), LockClassName(held.cls));
      // Print the first recorded edge on the existing to -> ... -> from
      // path (for a direct inversion this is exactly the other side's
      // acquisition stack).
      for (int next = 0; next < kNumClasses; ++next) {
        const EdgeInfo& other = g_edges[to][next];
        bool via[kNumClasses] = {};
        if (other.present && ReachableLocked(next, from, via)) {
          std::fprintf(stderr,
                       "lockdep: prior acquisition of %s while holding "
                       "%s:\n",
                       LockClassName(static_cast<LockClass>(next)),
                       LockClassName(static_cast<LockClass>(to)));
          PrintStack("lockdep: recorded stack:", other.frames, other.depth);
          break;
        }
      }
      PrintCurrentStack("lockdep: current (cycle-closing) acquisition:");
      std::fflush(stderr);
      std::abort();
    }
    edge.present = true;
    edge.depth = backtrace(edge.frames, kMaxFrames);
  }
}

// Shared per-acquisition checks for plain mutexes and node latches.
void CheckBeforeAcquire(LockClass cls, const void* instance) {
  ThreadState& state = State();
  for (const HeldLock& held : state.held) {
    if (held.cls == LockClass::kLatchMap) {
      Die("acquiring %s while NodeLatchTable::map_mu_ is held — map_mu_ is "
          "a leaf lock, never held while blocking%s",
          LockClassName(cls), "");
    }
    if (held.cls == cls && held.instance == instance &&
        cls != LockClass::kNodeLatch) {
      Die("recursive acquisition of %s (same instance)%s",
          LockClassName(cls), "");
    }
    if (cls == LockClass::kPagerPartition &&
        held.cls == LockClass::kPagerPartition) {
      Die("two pager partition latches held at once — shards are strictly "
          "one-at-a-time%s%s",
          "", "");
    }
  }
}

}  // namespace

void LockdepOnLock(LockClass cls, const void* instance) {
  CheckBeforeAcquire(cls, instance);
  RecordEdges(cls);
  State().held.push_back({cls, instance, 0});
}

void LockdepOnUnlock(LockClass cls, const void* instance) {
  std::vector<HeldLock>& held = State().held;
  for (size_t i = held.size(); i > 0; --i) {
    HeldLock& entry = held[i - 1];
    if (entry.cls == cls && entry.instance == instance) {
      held.erase(held.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
  Die("release of %s that this thread does not hold%s", LockClassName(cls),
      "");
}

void LockdepPhaseEnter(const void* gate, int mode) {
  ThreadState& state = State();
  for (const GateEntry& entry : state.gates) {
    if (entry.gate == gate) {
      Die("re-entering a PhaseGate this thread is already inside — "
          "self-deadlock against the fairness rotation (use SearchGateHeld "
          "or restructure; docs/CONCURRENCY.md §2)%s%s",
          "", "");
    }
  }
  for (const HeldLock& held : state.held) {
    if (held.cls == LockClass::kNodeLatch) {
      DieBlock(
          "entering a PhaseGate while holding a node latch — the gate is "
          "above all node latches",
          held.block);
    }
  }
  CheckBeforeAcquire(LockClass::kPhaseGate, gate);
  RecordEdges(LockClass::kPhaseGate);
  state.held.push_back({LockClass::kPhaseGate, gate, 0});
  state.gates.push_back({gate, mode});
}

void LockdepPhaseExit(const void* gate) {
  ThreadState& state = State();
  for (size_t i = state.gates.size(); i > 0; --i) {
    if (state.gates[i - 1].gate == gate) {
      state.gates.erase(state.gates.begin() + static_cast<ptrdiff_t>(i - 1));
      LockdepOnUnlock(LockClass::kPhaseGate, gate);
      return;
    }
  }
  Die("exiting a PhaseGate this thread never entered%s%s", "", "");
}

void LockdepNodeLatchAcquire(const void* table, uint32_t block,
                             bool parent_declared, uint32_t parent_block) {
  ThreadState& state = State();
  // Phase discipline: latches belong to the write phase (and to the
  // exclusive maintenance walks that insert, e.g. CoalesceSparseLeaves).
  bool in_mutation_phase = false;
  for (const GateEntry& entry : state.gates) {
    if (entry.mode == 1 || entry.mode == 2) {
      in_mutation_phase = true;
      break;
    }
  }
  if (!in_mutation_phase) {
    DieBlock(
        "node latch acquired outside a write/exclusive phase "
        "(docs/CONCURRENCY.md §3: gate before latches)",
        block);
  }
  // Crabbing rule.
  size_t latches_held = 0;
  bool parent_held = false;
  bool self_held = false;
  for (const HeldLock& held : state.held) {
    if (held.cls != LockClass::kNodeLatch || held.instance != table) {
      continue;
    }
    ++latches_held;
    if (held.block == parent_block) parent_held = true;
    if (held.block == block) self_held = true;
  }
  if (self_held) {
    DieBlock("node latch re-acquired by its holder (self-deadlock)", block);
  }
  if (parent_declared) {
    if (!parent_held) {
      char detail[160];
      std::snprintf(detail, sizeof(detail),
                    "crabbing violation: latch %u acquired as a child of %u "
                    "but the parent latch is not held",
                    block, parent_block);
      Die("%s%s", detail, "");
    }
  } else if (latches_held != 0) {
    DieBlock(
        "standalone latch acquisition (root protocol / demotion drain) "
        "while other node latches are held",
        block);
  }
  CheckBeforeAcquire(LockClass::kNodeLatch, table);
  RecordEdges(LockClass::kNodeLatch);
  state.held.push_back({LockClass::kNodeLatch, table, block});
}

void LockdepNodeLatchRelease(const void* table, uint32_t block) {
  std::vector<HeldLock>& held = State().held;
  for (size_t i = held.size(); i > 0; --i) {
    HeldLock& entry = held[i - 1];
    if (entry.cls == LockClass::kNodeLatch && entry.instance == table &&
        entry.block == block) {
      held.erase(held.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
  DieBlock("release of a node latch this thread does not hold", block);
}

void LockdepResetForTesting() {
  {
    std::lock_guard<std::mutex> lock(g_graph_mu);
    for (int from = 0; from < kNumClasses; ++from) {
      for (int to = 0; to < kNumClasses; ++to) {
        g_edges[from][to] = EdgeInfo();
      }
    }
  }
  ThreadState& state = State();
  state.held.clear();
  state.gates.clear();
}

}  // namespace segidx::check

#endif  // SEGIDX_LOCKDEP
