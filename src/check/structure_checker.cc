#include "check/structure_checker.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "rtree/node.h"

namespace segidx::check {

using rtree::BranchEntry;
using rtree::LeafEntry;
using rtree::Node;
using rtree::SpanningEntry;
using storage::PageId;

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kNodeReadFailed:
      return "NODE_READ_FAILED";
    case ViolationKind::kUnbalancedTree:
      return "UNBALANCED_TREE";
    case ViolationKind::kLeafOverflow:
      return "LEAF_OVERFLOW";
    case ViolationKind::kBranchOverflow:
      return "BRANCH_OVERFLOW";
    case ViolationKind::kNodeBytesOverflow:
      return "NODE_BYTES_OVERFLOW";
    case ViolationKind::kBelowMinFill:
      return "BELOW_MIN_FILL";
    case ViolationKind::kInvalidRect:
      return "INVALID_RECT";
    case ViolationKind::kWrongSizeClass:
      return "WRONG_SIZE_CLASS";
    case ViolationKind::kMbrNotContained:
      return "MBR_NOT_CONTAINED";
    case ViolationKind::kMbrNotTight:
      return "MBR_NOT_TIGHT";
    case ViolationKind::kSpanningInPlainTree:
      return "SPANNING_IN_PLAIN_TREE";
    case ViolationKind::kSpanningNotContained:
      return "SPANNING_NOT_CONTAINED";
    case ViolationKind::kSpanningBrokenLink:
      return "SPANNING_BROKEN_LINK";
    case ViolationKind::kSpanningNotSpanning:
      return "SPANNING_NOT_SPANNING";
    case ViolationKind::kSpanningQuotaExceeded:
      return "SPANNING_QUOTA_EXCEEDED";
    case ViolationKind::kSpanningNotHighest:
      return "SPANNING_NOT_HIGHEST";
    case ViolationKind::kRemnantOverlap:
      return "REMNANT_OVERLAP";
    case ViolationKind::kRemnantGap:
      return "REMNANT_GAP";
    case ViolationKind::kRemnantOutsideOriginal:
      return "REMNANT_OUTSIDE_ORIGINAL";
    case ViolationKind::kUnexpectedRecord:
      return "UNEXPECTED_RECORD";
    case ViolationKind::kRecordCountMismatch:
      return "RECORD_COUNT_MISMATCH";
    case ViolationKind::kPageDoublyReferenced:
      return "PAGE_DOUBLY_REFERENCED";
    case ViolationKind::kPageOrphaned:
      return "PAGE_ORPHANED";
    case ViolationKind::kPageOutOfBounds:
      return "PAGE_OUT_OF_BOUNDS";
    case ViolationKind::kFreeListCorrupt:
      return "FREE_LIST_CORRUPT";
  }
  return "UNKNOWN";
}

std::string Violation::ToString() const {
  std::string out = ViolationKindName(kind);
  if (page.valid()) {
    out += " @page " + std::to_string(page.block);
  }
  if (tid != kInvalidTupleId) {
    out += " tid=" + std::to_string(tid);
  }
  out += ": " + message;
  return out;
}

bool CheckReport::Has(ViolationKind kind) const {
  for (const Violation& v : violations) {
    if (v.kind == kind) return true;
  }
  return false;
}

size_t CheckReport::CountOf(ViolationKind kind) const {
  size_t n = 0;
  for (const Violation& v : violations) {
    if (v.kind == kind) ++n;
  }
  return n;
}

Status CheckReport::ToStatus() const {
  if (ok()) return Status::OK();
  std::string message = violations.front().ToString();
  if (violations.size() > 1) {
    message += " (+" + std::to_string(violations.size() - 1) +
               (truncated ? "+ further violations)" : " further violations)");
  }
  return InternalError(std::move(message));
}

std::string CheckReport::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%zu violation(s)%s; %llu nodes, %llu leaf records, "
                "%llu spanning records, %llu reachable / %llu free extents\n",
                violations.size(), truncated ? " (truncated)" : "",
                static_cast<unsigned long long>(nodes_visited),
                static_cast<unsigned long long>(leaf_records),
                static_cast<unsigned long long>(spanning_records),
                static_cast<unsigned long long>(reachable_extents),
                static_cast<unsigned long long>(free_extents));
  std::string out = buf;
  for (const Violation& v : violations) {
    out += "  " + v.ToString() + "\n";
  }
  return out;
}

StructureChecker::StructureChecker(rtree::RTree* tree, CheckOptions options)
    : tree_(tree), options_(options) {
  SEGIDX_CHECK(tree != nullptr);
}

void StructureChecker::Report(ViolationKind kind, PageId page, TupleId tid,
                              std::string message) {
  if (report_.violations.size() >= options_.max_violations) {
    report_.truncated = true;
    return;
  }
  report_.violations.push_back(
      Violation{kind, page, tid, std::move(message)});
}

namespace {

// Measure of `r` over the dimensions in which `original` has extent: the
// natural volume for full-dimensional records, length for records that are
// degenerate segments. Pieces of a cut record are compared in the measure
// of the record they came from.
double MeasureLike(const Rect& original, const Rect& r) {
  double m = 1.0;
  bool any = false;
  if (original.x.length() > 0) {
    m *= r.x.length();
    any = true;
  }
  if (original.y.length() > 0) {
    m *= r.y.length();
    any = true;
  }
  return any ? m : 0.0;
}

// Whether two pieces of `original` overlap in more than a shared boundary.
// Dimensions in which the original is a point are ignored (every piece
// coincides there by construction).
bool PiecesOverlap(const Rect& original, const Rect& a, const Rect& b) {
  const Rect i = a.Intersect(b);
  if (!i.valid()) return false;
  if (original.x.length() > 0 && i.x.length() <= 0) return false;
  if (original.y.length() > 0 && i.y.length() <= 0) return false;
  return true;
}

}  // namespace

Result<CheckReport> StructureChecker::Check() {
  struct Frame {
    PageId id;
    Rect region;
    int expected_level;
    bool is_root;
  };

  const uint64_t allocated = tree_->pager()->allocated_blocks();
  const bool collect_pieces = options_.expected_records != nullptr;

  std::vector<Frame> stack;
  stack.push_back(Frame{tree_->root(), tree_->root_region(),
                        tree_->height() - 1, /*is_root=*/true});
  // Nodes whose subtrees we could not enter; page accounting would then
  // misreport their descendants as orphans, so it is skipped.
  bool subtree_skipped = false;

  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();

    if (!frame.id.valid() ||
        frame.id.block < tree_->pager()->first_data_block() ||
        frame.id.block >= allocated) {
      Report(ViolationKind::kPageOutOfBounds, frame.id, kInvalidTupleId,
             "referenced block " + std::to_string(frame.id.block) +
                 " is outside the allocated range [1, " +
                 std::to_string(allocated) + ")");
      subtree_skipped = true;
      continue;
    }
    if (!reachable_.emplace(frame.id.block, frame.id.size_class).second) {
      Report(ViolationKind::kPageDoublyReferenced, frame.id, kInvalidTupleId,
             "extent is referenced by more than one branch");
      subtree_skipped = true;  // Do not walk (or count) a subtree twice.
      continue;
    }
    const uint8_t expected_class =
        tree_->SizeClassForLevel(frame.expected_level);
    if (frame.id.size_class != expected_class) {
      Report(ViolationKind::kWrongSizeClass, frame.id, kInvalidTupleId,
             "extent has size class " + std::to_string(frame.id.size_class) +
                 " but level " + std::to_string(frame.expected_level) +
                 " nodes use size class " + std::to_string(expected_class));
      // Fetching under a wrong size class would read the wrong byte range
      // (and trips the pager's cache consistency check); stop here.
      subtree_skipped = true;
      continue;
    }

    Result<Node> read = tree_->ReadNode(frame.id);
    if (!read.ok()) {
      Report(ViolationKind::kNodeReadFailed, frame.id, kInvalidTupleId,
             read.status().ToString());
      subtree_skipped = true;
      continue;
    }
    const Node& node = *read;
    ++report_.nodes_visited;

    if (node.level != frame.expected_level) {
      Report(ViolationKind::kUnbalancedTree, frame.id, kInvalidTupleId,
             "node has level " + std::to_string(node.level) +
                 " at depth where level " +
                 std::to_string(frame.expected_level) + " was expected");
    }

    CheckNode(frame.id, node, frame.region, frame.is_root);

    if (node.is_leaf()) {
      report_.leaf_records += node.records.size();
      if (collect_pieces) {
        for (const LeafEntry& e : node.records) {
          pieces_[e.tid].push_back(e.rect);
        }
      }
    } else {
      report_.spanning_records += node.spanning.size();
      if (collect_pieces) {
        for (const SpanningEntry& s : node.spanning) {
          pieces_[s.tid].push_back(s.rect);
        }
      }
      for (const BranchEntry& b : node.branches) {
        stack.push_back(
            Frame{b.child, b.rect, node.level - 1, /*is_root=*/false});
      }
    }
  }
  report_.reachable_extents = reachable_.size();

  if (options_.expected_records != nullptr) CheckRecordTiling();
  if (options_.check_page_accounting && !subtree_skipped) {
    CheckPageAccounting();
  }
  return std::move(report_);
}

void StructureChecker::CheckNode(PageId id, const Node& node,
                                 const Rect& region, bool is_root) {
  const bool region_known = !is_root || tree_->root_region_valid();
  const rtree::TreeOptions& opts = tree_->options();

  if (node.is_leaf()) {
    if (node.records.size() > tree_->LeafCapacity()) {
      Report(ViolationKind::kLeafOverflow, id, kInvalidTupleId,
             std::to_string(node.records.size()) +
                 " records exceed leaf capacity " +
                 std::to_string(tree_->LeafCapacity()));
    }
    if (options_.expect_min_fill && !is_root) {
      const size_t min_fill = std::max<size_t>(
          1, static_cast<size_t>(opts.min_fill_fraction *
                                 static_cast<double>(tree_->LeafCapacity())));
      if (node.records.size() < min_fill) {
        Report(ViolationKind::kBelowMinFill, id, kInvalidTupleId,
               std::to_string(node.records.size()) + " records < minimum " +
                   std::to_string(min_fill));
      }
    }
    for (const LeafEntry& e : node.records) {
      if (!e.rect.valid()) {
        Report(ViolationKind::kInvalidRect, id, e.tid,
               "leaf record rect " + e.rect.ToString() + " is invalid");
        continue;
      }
      if (region_known && !region.Contains(e.rect)) {
        Report(ViolationKind::kMbrNotContained, id, e.tid,
               "leaf record " + e.rect.ToString() + " escapes node region " +
                   region.ToString());
      }
    }
  } else {
    if (node.branches.empty() && !is_root) {
      Report(ViolationKind::kBelowMinFill, id, kInvalidTupleId,
             "non-leaf node has no branches");
    }
    if (node.branches.size() > tree_->BranchCapacity(node.level)) {
      Report(ViolationKind::kBranchOverflow, id, kInvalidTupleId,
             std::to_string(node.branches.size()) +
                 " branches exceed capacity " +
                 std::to_string(tree_->BranchCapacity(node.level)));
    }
    if (node.SerializedBytes() > tree_->NodeBytes(node.level)) {
      Report(ViolationKind::kNodeBytesOverflow, id, kInvalidTupleId,
             std::to_string(node.SerializedBytes()) +
                 " serialized bytes exceed the extent's " +
                 std::to_string(tree_->NodeBytes(node.level)));
    }
    if (options_.expect_min_fill) {
      const size_t min_fill =
          is_root ? 2
                  : std::max<size_t>(
                        1, static_cast<size_t>(
                               opts.min_fill_fraction *
                               static_cast<double>(
                                   tree_->BranchCapacity(node.level))));
      if (node.branches.size() < min_fill) {
        Report(ViolationKind::kBelowMinFill, id, kInvalidTupleId,
               std::to_string(node.branches.size()) + " branches < minimum " +
                   std::to_string(min_fill));
      }
    }
    for (const BranchEntry& b : node.branches) {
      if (!b.rect.valid()) {
        Report(ViolationKind::kInvalidRect, id, kInvalidTupleId,
               "branch rect " + b.rect.ToString() + " is invalid");
        continue;
      }
      if (region_known && !region.Contains(b.rect)) {
        Report(ViolationKind::kMbrNotContained, id, kInvalidTupleId,
               "branch region " + b.rect.ToString() +
                   " (child page " + std::to_string(b.child.block) +
                   ") escapes node region " + region.ToString());
      }
    }
    CheckSpanningEntries(id, node, region, is_root);
  }

  if (options_.check_mbr_tightness && region_known &&
      node.entry_count() > 0) {
    const Rect mbr = node.ComputeMbr();
    if (!(mbr == region)) {
      Report(ViolationKind::kMbrNotTight, id, kInvalidTupleId,
             "node region " + region.ToString() +
                 " is not the tight MBR " + mbr.ToString());
    }
  }
}

void StructureChecker::CheckSpanningEntries(PageId id, const Node& node,
                                            const Rect& region,
                                            bool is_root) {
  const rtree::TreeOptions& opts = tree_->options();
  const bool region_known = !is_root || tree_->root_region_valid();

  if (node.spanning.empty()) return;
  if (!opts.enable_spanning) {
    Report(ViolationKind::kSpanningInPlainTree, id, kInvalidTupleId,
           std::to_string(node.spanning.size()) +
               " spanning records on a tree with spanning disabled");
    return;
  }
  if (options_.check_spanning_quota &&
      opts.spanning_overflow_policy !=
          rtree::SpanningOverflowPolicy::kSplit &&
      node.spanning.size() > tree_->SpanningCapacity(node.level)) {
    Report(ViolationKind::kSpanningQuotaExceeded, id, kInvalidTupleId,
           std::to_string(node.spanning.size()) +
               " spanning records exceed the quota of " +
               std::to_string(tree_->SpanningCapacity(node.level)));
  }

  for (const SpanningEntry& s : node.spanning) {
    if (!s.rect.valid()) {
      Report(ViolationKind::kInvalidRect, id, s.tid,
             "spanning rect " + s.rect.ToString() + " is invalid");
      continue;
    }
    if (region_known && !region.Contains(s.rect)) {
      Report(ViolationKind::kSpanningNotContained, id, s.tid,
             "spanning record " + s.rect.ToString() +
                 " escapes node region " + region.ToString());
    }
    const int branch = node.FindBranch(PageId::Decode(s.linked_child));
    if (branch < 0) {
      Report(ViolationKind::kSpanningBrokenLink, id, s.tid,
             "linked child page " +
                 std::to_string(PageId::Decode(s.linked_child).block) +
                 " is not a branch of this node");
    } else if (!s.rect.SpansRegion(node.branches[branch].rect)) {
      Report(ViolationKind::kSpanningNotSpanning, id, s.tid,
             "record " + s.rect.ToString() +
                 " does not span its linked branch region " +
                 node.branches[branch].rect.ToString());
    }
    if (options_.strict_spanning_placement && !is_root && region_known &&
        s.rect.SpansRegion(region)) {
      Report(ViolationKind::kSpanningNotHighest, id, s.tid,
             "record " + s.rect.ToString() + " spans its node's region " +
                 region.ToString() + " and belongs on the parent");
    }
  }
}

void StructureChecker::CheckRecordTiling() {
  const auto& expected = *options_.expected_records;

  if (tree_->size() != expected.size()) {
    Report(ViolationKind::kRecordCountMismatch, PageId(), kInvalidTupleId,
           "tree reports " + std::to_string(tree_->size()) +
               " records but " + std::to_string(expected.size()) +
               " were expected");
  }

  for (const auto& [original, tid] : expected) {
    auto it = pieces_.find(tid);
    if (it == pieces_.end()) {
      Report(ViolationKind::kRemnantGap, PageId(), tid,
             "no stored pieces for record " + original.ToString());
      continue;
    }
    const std::vector<Rect>& pieces = it->second;

    bool contained = true;
    for (const Rect& piece : pieces) {
      if (!original.Contains(piece)) {
        Report(ViolationKind::kRemnantOutsideOriginal, PageId(), tid,
               "piece " + piece.ToString() + " pokes outside the original " +
                   original.ToString());
        contained = false;
      }
    }

    bool overlapped = false;
    for (size_t a = 0; a < pieces.size() && !overlapped; ++a) {
      for (size_t b = a + 1; b < pieces.size(); ++b) {
        if (PiecesOverlap(original, pieces[a], pieces[b])) {
          Report(ViolationKind::kRemnantOverlap, PageId(), tid,
                 "pieces " + pieces[a].ToString() + " and " +
                     pieces[b].ToString() + " overlap");
          overlapped = true;
          break;
        }
      }
    }

    // Coverage by measure: pieces are contained and pairwise disjoint, so
    // their measures sum to the original's measure iff they cover it.
    // Fully degenerate (point) records are covered by the checks above
    // (one containment-equal piece; a second piece always overlaps).
    const double total = MeasureLike(original, original);
    if (contained && !overlapped && total > 0) {
      double sum = 0;
      for (const Rect& piece : pieces) sum += MeasureLike(original, piece);
      const double tolerance = 1e-9 * std::max(total, 1.0);
      if (sum < total - tolerance) {
        Report(ViolationKind::kRemnantGap, PageId(), tid,
               "stored pieces cover measure " + std::to_string(sum) +
                   " of the original's " + std::to_string(total));
      }
    }
    pieces_.erase(it);
  }

  for (const auto& [tid, rects] : pieces_) {
    Report(ViolationKind::kUnexpectedRecord, PageId(), tid,
           std::to_string(rects.size()) +
               " stored piece(s) for a tuple id absent from the expected "
               "records");
  }
}

void StructureChecker::CheckPageAccounting() {
  storage::Pager* pager = tree_->pager();
  Result<std::vector<PageId>> free_extents = pager->FreeExtents();
  if (!free_extents.ok()) {
    Report(ViolationKind::kFreeListCorrupt, PageId(), kInvalidTupleId,
           free_extents.status().ToString());
    return;
  }
  report_.free_extents = free_extents->size();

  struct Extent {
    uint32_t begin;
    uint32_t end;  // Exclusive.
    bool free;
  };
  std::vector<Extent> extents;
  extents.reserve(reachable_.size() + free_extents->size());
  for (const auto& [block, size_class] : reachable_) {
    extents.push_back(Extent{block, block + (1u << size_class), false});
  }
  for (const PageId& id : *free_extents) {
    extents.push_back(Extent{id.block, id.block + (1u << id.size_class), true});
  }
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) { return a.begin < b.begin; });

  const uint64_t allocated = pager->allocated_blocks();
  // Superblock slot blocks precede the data range (two in format v2).
  uint32_t cursor = pager->first_data_block();
  for (const Extent& e : extents) {
    PageId page;
    page.block = e.begin;
    if (e.begin < cursor) {
      Report(ViolationKind::kPageDoublyReferenced, page, kInvalidTupleId,
             std::string(e.free ? "free" : "reachable") +
                 " extent overlaps blocks already accounted to another "
                 "extent");
    } else if (e.begin > cursor) {
      PageId orphan;
      orphan.block = cursor;
      Report(ViolationKind::kPageOrphaned, orphan, kInvalidTupleId,
             "blocks [" + std::to_string(cursor) + ", " +
                 std::to_string(e.begin) +
                 ") are neither reachable from the root nor on a free list");
    }
    cursor = std::max(cursor, e.end);
  }
  if (cursor < allocated) {
    PageId orphan;
    orphan.block = cursor;
    Report(ViolationKind::kPageOrphaned, orphan, kInvalidTupleId,
           "blocks [" + std::to_string(cursor) + ", " +
               std::to_string(allocated) +
               ") are neither reachable from the root nor on a free list");
  } else if (cursor > allocated) {
    PageId beyond;
    beyond.block = cursor;
    Report(ViolationKind::kPageOutOfBounds, beyond, kInvalidTupleId,
           "accounted extents extend to block " + std::to_string(cursor) +
               ", past the allocation high-water mark " +
               std::to_string(allocated));
  }
}

Status StructureChecker::CheckSpec(const rtree::SkeletonSpec& spec,
                                   const Rect& domain) {
  if (spec.levels.empty()) {
    return InvalidArgumentError("skeleton spec has no levels");
  }
  auto check_bounds = [](const std::vector<Coord>& bounds, const char* dim,
                         size_t level) -> Status {
    if (bounds.size() < 2) {
      return InvalidArgumentError(
          "skeleton level " + std::to_string(level) + " has fewer than one " +
          dim + " cell");
    }
    for (size_t i = 1; i < bounds.size(); ++i) {
      if (bounds[i] <= bounds[i - 1]) {
        return InvalidArgumentError(
            "skeleton level " + std::to_string(level) + " " + dim +
            " boundaries are not strictly increasing at index " +
            std::to_string(i));
      }
    }
    return Status::OK();
  };
  // A sorted `sub` is a subset of sorted `super`.
  auto nested = [](const std::vector<Coord>& sub,
                   const std::vector<Coord>& super) {
    size_t j = 0;
    for (const Coord v : sub) {
      while (j < super.size() && super[j] < v) ++j;
      if (j == super.size() || super[j] != v) return false;
    }
    return true;
  };

  for (size_t li = 0; li < spec.levels.size(); ++li) {
    const rtree::SkeletonLevel& level = spec.levels[li];
    SEGIDX_RETURN_IF_ERROR(check_bounds(level.x_bounds, "x", li));
    SEGIDX_RETURN_IF_ERROR(check_bounds(level.y_bounds, "y", li));
    // Every level must cover the domain (its cells partition
    // [front, back] x [front, back] because boundaries strictly increase).
    if (level.x_bounds.front() > domain.x.lo ||
        level.x_bounds.back() < domain.x.hi ||
        level.y_bounds.front() > domain.y.lo ||
        level.y_bounds.back() < domain.y.hi) {
      return InvalidArgumentError("skeleton level " + std::to_string(li) +
                                  " does not cover the domain " +
                                  domain.ToString());
    }
    if (li > 0) {
      const rtree::SkeletonLevel& below = spec.levels[li - 1];
      if (level.x_bounds.front() != below.x_bounds.front() ||
          level.x_bounds.back() != below.x_bounds.back() ||
          level.y_bounds.front() != below.y_bounds.front() ||
          level.y_bounds.back() != below.y_bounds.back()) {
        return InvalidArgumentError(
            "skeleton level " + std::to_string(li) +
            " spans a different extent than the level below");
      }
      if (!nested(level.x_bounds, below.x_bounds) ||
          !nested(level.y_bounds, below.y_bounds)) {
        return InvalidArgumentError(
            "skeleton level " + std::to_string(li) +
            " boundaries are not a subset of level " + std::to_string(li - 1) +
            "'s (cells would not nest)");
      }
      if (level.x_bounds.size() > below.x_bounds.size() ||
          level.y_bounds.size() > below.y_bounds.size()) {
        return InvalidArgumentError(
            "skeleton level " + std::to_string(li) +
            " is finer than the level below");
      }
    }
  }
  return Status::OK();
}

}  // namespace segidx::check
