#include "bench_support/experiment.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/logging.h"

namespace segidx::bench_support {

using core::IndexKind;
using core::IndexKindName;
using core::IntervalIndex;

Result<std::vector<SeriesResult>> RunExperiment(const ExperimentConfig& config,
                                                std::ostream* progress) {
  const std::vector<Rect> data = workload::GenerateDataset(config.dataset);

  std::vector<SeriesResult> results;
  results.reserve(config.kinds.size());

  for (IndexKind kind : config.kinds) {
    if (progress != nullptr) {
      *progress << "  building " << IndexKindName(kind) << " over "
                << data.size() << " x "
                << workload::DatasetKindName(config.dataset.kind)
                << " records...\n"
                << std::flush;
    }
    SEGIDX_ASSIGN_OR_RETURN(std::unique_ptr<IntervalIndex> index,
                            IntervalIndex::CreateInMemory(kind,
                                                          config.options));
    for (size_t i = 0; i < data.size(); ++i) {
      SEGIDX_RETURN_IF_ERROR(index->Insert(data[i], i));
    }
    SEGIDX_RETURN_IF_ERROR(index->Finalize());

    if (config.check_invariants) {
      SEGIDX_RETURN_IF_ERROR(index->CheckInvariants());
    }

    SeriesResult series;
    series.kind = kind;
    series.build.insert_node_accesses =
        index->tree_stats().insert_node_accesses;
    series.build.leaf_splits = index->tree_stats().leaf_splits;
    series.build.nonleaf_splits = index->tree_stats().nonleaf_splits;
    series.build.spanning_placed = index->tree_stats().spanning_placed;
    series.build.cuts = index->tree_stats().cuts;
    series.build.demotions = index->tree_stats().demotions;
    series.build.promotions = index->tree_stats().promotions;
    series.build.coalesced_nodes = index->tree_stats().coalesced_nodes;
    series.build.index_bytes = index->index_bytes();
    series.build.height = index->height();
    SEGIDX_ASSIGN_OR_RETURN(series.build.nodes_per_level,
                            index->NodesPerLevel());

    for (double qar : config.qars) {
      const std::vector<Rect> queries = workload::GenerateQueries(
          qar, config.query_area, config.queries_per_qar, config.query_seed);
      uint64_t total_accesses = 0;
      std::vector<rtree::SearchHit> hits;
      for (const Rect& query : queries) {
        hits.clear();
        uint64_t accesses = 0;
        SEGIDX_RETURN_IF_ERROR(index->Search(query, &hits, &accesses));
        total_accesses += accesses;
      }
      series.avg_nodes.push_back(static_cast<double>(total_accesses) /
                                 static_cast<double>(queries.size()));
    }
    results.push_back(std::move(series));
  }
  return results;
}

void PrintSeriesTable(const ExperimentConfig& config,
                      const std::vector<SeriesResult>& results,
                      std::ostream& os) {
  os << "INDEX SEARCH PERFORMANCE — dataset "
     << workload::DatasetKindName(config.dataset.kind) << ", "
     << config.dataset.count << " tuples, " << config.queries_per_qar
     << " searches per QAR, query area " << config.query_area << "\n";
  os << "rows: log10(query aspect ratio); values: average nodes accessed "
        "per search\n\n";

  char buf[64];
  std::snprintf(buf, sizeof(buf), "%10s", "log10QAR");
  os << buf;
  for (const SeriesResult& series : results) {
    std::snprintf(buf, sizeof(buf), "  %18s", IndexKindName(series.kind));
    os << buf;
  }
  os << "\n";
  for (size_t qi = 0; qi < config.qars.size(); ++qi) {
    std::snprintf(buf, sizeof(buf), "%10.1f", std::log10(config.qars[qi]));
    os << buf;
    for (const SeriesResult& series : results) {
      std::snprintf(buf, sizeof(buf), "  %18.1f", series.avg_nodes[qi]);
      os << buf;
    }
    os << "\n";
  }
  os << "\n";
}

void PrintBuildTable(const ExperimentConfig& config,
                     const std::vector<SeriesResult>& results,
                     std::ostream& os) {
  os << "BUILD STATISTICS — dataset "
     << workload::DatasetKindName(config.dataset.kind) << ", "
     << config.dataset.count << " tuples\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%-18s %8s %10s %12s %9s %9s %9s %9s %9s\n",
                "index", "height", "nodes", "bytes", "splits", "spanning",
                "cuts", "demote", "coalesce");
  os << buf;
  for (const SeriesResult& series : results) {
    uint64_t nodes = 0;
    for (uint64_t n : series.build.nodes_per_level) nodes += n;
    std::snprintf(
        buf, sizeof(buf),
        "%-18s %8d %10llu %12llu %9llu %9llu %9llu %9llu %9llu\n",
        IndexKindName(series.kind), series.build.height,
        static_cast<unsigned long long>(nodes),
        static_cast<unsigned long long>(series.build.index_bytes),
        static_cast<unsigned long long>(series.build.leaf_splits +
                                        series.build.nonleaf_splits),
        static_cast<unsigned long long>(series.build.spanning_placed),
        static_cast<unsigned long long>(series.build.cuts),
        static_cast<unsigned long long>(series.build.demotions),
        static_cast<unsigned long long>(series.build.coalesced_nodes));
    os << buf;
  }
  os << "\n";
}

Status WriteSeriesCsv(const std::string& path, const ExperimentConfig& config,
                      const std::vector<SeriesResult>& results) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      return IoError("cannot create " + parent.string() + ": " +
                     ec.message());
    }
  }
  std::ofstream out(path);
  if (!out) return IoError("cannot open " + path);
  out << "qar,log10_qar";
  for (const SeriesResult& series : results) {
    std::string name = IndexKindName(series.kind);
    for (char& c : name) {
      if (c == ' ' || c == '-') c = '_';
    }
    out << ',' << name;
  }
  out << '\n';
  for (size_t qi = 0; qi < config.qars.size(); ++qi) {
    out << config.qars[qi] << ',' << std::log10(config.qars[qi]);
    for (const SeriesResult& series : results) {
      out << ',' << series.avg_nodes[qi];
    }
    out << '\n';
  }
  return Status::OK();
}

Result<BenchArgs> ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--tuples=", 0) == 0) {
      args.tuples = std::stoull(value_of("--tuples="));
    } else if (arg.rfind("--queries=", 0) == 0) {
      args.queries = std::stoi(value_of("--queries="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      args.seed = std::stoull(value_of("--seed="));
    } else if (arg == "--check") {
      args.check_invariants = true;
    } else if (arg == "--help") {
      return InvalidArgumentError(
          "usage: [--tuples=N] [--queries=N] [--seed=N] [--check]");
    } else {
      return InvalidArgumentError("unknown flag: " + arg);
    }
  }
  if (args.tuples == 0 || args.queries <= 0) {
    return InvalidArgumentError("--tuples and --queries must be positive");
  }
  return args;
}

ExperimentConfig MakePaperConfig(workload::DatasetKind kind,
                                 const BenchArgs& args) {
  ExperimentConfig config;
  config.dataset.kind = kind;
  config.dataset.count = args.tuples;
  config.dataset.seed = args.seed;
  config.queries_per_qar = args.queries;
  config.check_invariants = args.check_invariants;

  // Paper Section 5 parameters.
  config.options.skeleton.expected_tuples = args.tuples;
  config.options.skeleton.prediction_sample =
      std::min<uint64_t>(10000, std::max<uint64_t>(1, args.tuples / 10));
  config.options.skeleton.x_domain =
      Interval(workload::kDomainLo, workload::kDomainHi);
  config.options.skeleton.y_domain =
      Interval(workload::kDomainLo, workload::kDomainHi);
  config.options.skeleton.coalesce_interval = 1000;
  config.options.skeleton.coalesce_candidates = 10;
  // Leaf nodes are 1 KB and double per level (TreeOptions default).
  config.options.pager.base_block_size = 1024;
  // A generous pool keeps in-memory experiment runs fast; the node-access
  // metric is independent of pool size.
  config.options.pager.buffer_pool_bytes = 256u << 20;
  return config;
}

}  // namespace segidx::bench_support
