// Experiment harness reproducing the paper's evaluation protocol
// (Section 5): build each index type over a dataset by inserting every
// record in (random) generation order, then for each query aspect ratio run
// a batch of area-10^6 rectangle searches and report the average number of
// index nodes accessed per search.

#ifndef SEGIDX_BENCH_SUPPORT_EXPERIMENT_H_
#define SEGIDX_BENCH_SUPPORT_EXPERIMENT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/interval_index.h"
#include "workload/datasets.h"

namespace segidx::bench_support {

struct ExperimentConfig {
  workload::DatasetSpec dataset;
  std::vector<core::IndexKind> kinds = {
      core::IndexKind::kRTree, core::IndexKind::kSRTree,
      core::IndexKind::kSkeletonRTree, core::IndexKind::kSkeletonSRTree};
  std::vector<double> qars = workload::PaperQarSweep();
  int queries_per_qar = 100;
  double query_area = 1e6;
  uint64_t query_seed = 42;
  core::IndexOptions options;  // Skeleton fields are filled in by the runner.
  // Validate structural invariants after the build (slows large runs).
  bool check_invariants = false;
};

struct BuildSummary {
  uint64_t insert_node_accesses = 0;
  uint64_t leaf_splits = 0;
  uint64_t nonleaf_splits = 0;
  uint64_t spanning_placed = 0;
  uint64_t cuts = 0;
  uint64_t demotions = 0;
  uint64_t promotions = 0;
  uint64_t coalesced_nodes = 0;
  uint64_t index_bytes = 0;
  int height = 0;
  std::vector<uint64_t> nodes_per_level;
};

struct SeriesResult {
  core::IndexKind kind = core::IndexKind::kRTree;
  // avg_nodes[i] = average nodes accessed per search at config.qars[i].
  std::vector<double> avg_nodes;
  BuildSummary build;
};

// Runs the full experiment (all index kinds, all QARs). `progress`, when
// non-null, receives one line per phase.
Result<std::vector<SeriesResult>> RunExperiment(const ExperimentConfig& config,
                                                std::ostream* progress);

// Prints the paper-style series table: rows = log10(QAR), one column per
// index type.
void PrintSeriesTable(const ExperimentConfig& config,
                      const std::vector<SeriesResult>& results,
                      std::ostream& os);

// Prints per-index build statistics (our build-cost ablation).
void PrintBuildTable(const ExperimentConfig& config,
                     const std::vector<SeriesResult>& results,
                     std::ostream& os);

// Writes the series as CSV: qar,log10_qar,<kind columns...>.
Status WriteSeriesCsv(const std::string& path, const ExperimentConfig& config,
                      const std::vector<SeriesResult>& results);

// Shared command-line handling for the graph binaries: recognizes
// --tuples=N, --queries=N, --seed=N, --check (invariants). Unknown flags
// produce an error message and false.
struct BenchArgs {
  uint64_t tuples = 200000;
  int queries = 100;
  uint64_t seed = 1;
  bool check_invariants = false;
};
Result<BenchArgs> ParseBenchArgs(int argc, char** argv);

// Fills config.options.skeleton from the dataset (expected tuples, paper
// prediction-sample / coalescing parameters) and applies BenchArgs.
ExperimentConfig MakePaperConfig(workload::DatasetKind kind,
                                 const BenchArgs& args);

}  // namespace segidx::bench_support

#endif  // SEGIDX_BENCH_SUPPORT_EXPERIMENT_H_
