// Historical-data scenario from the paper's Figure 1: employee salary
// histories. Each record is a horizontal segment — an interval on the time
// axis (days an employee held a salary) at a point on the salary axis.
// Most employees get frequent raises (short intervals); a few keep the
// same salary for years (long intervals) — exactly the skewed length
// distribution Segment Indexes target.
//
// The example builds all four index types over the same history and
// answers two classic temporal queries on each, comparing index node
// accesses against a full scan:
//
//   * time-slice:  "which (employee, salary) pairs were in effect on day D
//                   for salaries between 60k and 90k?"
//   * time-travel: "every salary employee-cluster X earned during [D1, D2]"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/interval_index.h"
#include "oracle/naive_oracle.h"

using namespace segidx;

namespace {

struct SalaryRecord {
  Rect rect;       // X: [start_day, end_day]; Y: salary (point).
  TupleId tid;
};

// Generates `employees` salary histories over a 30-year (10958-day) span.
// 85% of employees change salary every 90-700 days; 15% are "lifers" whose
// salary periods last years.
std::vector<SalaryRecord> GenerateHistories(int employees, Rng& rng) {
  std::vector<SalaryRecord> records;
  TupleId tid = 0;
  constexpr double kDays = 10958;
  for (int e = 0; e < employees; ++e) {
    const bool lifer = rng.NextDouble() < 0.15;
    double day = rng.Uniform(0, 2000);         // Hire date.
    double salary = rng.Uniform(30000, 80000);  // Starting salary.
    while (day < kDays) {
      const double period = lifer ? rng.Uniform(2000, kDays)
                                  : rng.Uniform(90, 700);
      const double end = std::min(day + period, kDays);
      records.push_back(
          {Rect(Interval(day, end), Interval::Point(salary)), tid++});
      day = end;
      salary *= rng.Uniform(1.02, 1.12);  // The raise.
    }
  }
  return records;
}

}  // namespace

int main() {
  Rng rng(2026);
  const std::vector<SalaryRecord> history = GenerateHistories(6000, rng);
  std::printf("salary history: %zu salary periods\n\n", history.size());

  oracle::NaiveOracle scan;
  for (const SalaryRecord& r : history) scan.Insert(r.rect, r.tid);

  // Queries: a time-slice (degenerate X, salary band in Y) and a
  // time-travel range (one quarter, all salaries).
  const Rect time_slice(Interval::Point(7300), Interval(60000, 90000));
  const Rect time_travel(Interval(5000, 5090), Interval(0, 1e9));

  std::printf("%-18s %10s %14s %14s\n", "index", "build(s)",
              "slice nodes", "travel nodes");
  for (core::IndexKind kind :
       {core::IndexKind::kRTree, core::IndexKind::kSRTree,
        core::IndexKind::kSkeletonRTree, core::IndexKind::kSkeletonSRTree}) {
    core::IndexOptions options;
    options.skeleton.expected_tuples = history.size();
    options.skeleton.prediction_sample = history.size() / 10;
    options.skeleton.x_domain = Interval(0, 10958);
    options.skeleton.y_domain = Interval(0, 2000000);
    auto index = core::IntervalIndex::CreateInMemory(kind, options).value();
    const auto build_start = std::chrono::steady_clock::now();
    for (const SalaryRecord& r : history) {
      if (auto st = index->Insert(r.rect, r.tid); !st.ok()) {
        std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    (void)index->Finalize();
    const double build_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      build_start)
            .count();

    uint64_t slice_nodes = 0;
    uint64_t travel_nodes = 0;
    std::vector<TupleId> slice_hits;
    std::vector<TupleId> travel_hits;
    (void)index->SearchTuples(time_slice, &slice_hits, &slice_nodes);
    (void)index->SearchTuples(time_travel, &travel_hits, &travel_nodes);

    // Verify both queries against the scan before trusting the numbers.
    auto expect = scan.Search(time_slice);
    std::sort(slice_hits.begin(), slice_hits.end());
    if (slice_hits != expect) {
      std::fprintf(stderr, "BUG: %s time-slice result mismatch\n",
                   IndexKindName(kind));
      return 1;
    }

    std::printf("%-18s %9.2fs %10llu (%4zu) %8llu (%4zu)\n",
                IndexKindName(kind), build_seconds,
                static_cast<unsigned long long>(slice_nodes),
                slice_hits.size(),
                static_cast<unsigned long long>(travel_nodes),
                travel_hits.size());
  }
  std::printf(
      "\n(time-slice: salaries 60-90k in effect on day 7300;"
      " time-travel: all salaries during days 5000-5090;\n"
      " node counts are index pages touched — a full scan reads every"
      " record)\n");
  return 0;
}
