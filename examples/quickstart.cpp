// Quickstart: create a Skeleton SR-Tree, insert interval records, run
// point / range / window queries, and inspect statistics.
//
//   ./quickstart [index-file]
//
// With no argument the index lives in memory; with a path it is persisted
// and could be re-opened with IntervalIndex::OpenFromDisk.

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/interval_index.h"

using segidx::Interval;
using segidx::Rect;
using segidx::TupleId;
using segidx::core::IndexKind;
using segidx::core::IndexOptions;
using segidx::core::IntervalIndex;

int main(int argc, char** argv) {
  // 1. Configure. The skeleton options matter only for skeleton kinds:
  //    the index buffers the first `prediction_sample` inserts, histograms
  //    them, and pre-partitions the tree (paper Section 4).
  IndexOptions options;
  options.skeleton.expected_tuples = 10000;
  options.skeleton.prediction_sample = 1000;
  options.skeleton.x_domain = Interval(0, 100000);
  options.skeleton.y_domain = Interval(0, 100000);

  // 2. Create the index (any of kRTree / kSRTree / kSkeletonRTree /
  //    kSkeletonSRTree behind one API).
  auto created =
      argc > 1
          ? IntervalIndex::CreateOnDisk(IndexKind::kSkeletonSRTree, argv[1],
                                        options)
          : IntervalIndex::CreateInMemory(IndexKind::kSkeletonSRTree,
                                          options);
  if (!created.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  auto index = std::move(created).value();

  // 3. Insert records: 2-D rectangles, 1-D intervals at a Y position, or
  //    points. The tuple id is an opaque reference to your row.
  segidx::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(0, 99000);
    const double y = rng.Uniform(0, 99000);
    TupleId tid = static_cast<TupleId>(i);
    if (i % 3 == 0) {
      // A "historical" record: interval in X (time), point in Y.
      (void)index->InsertInterval(Interval(x, x + 800), y, tid);
    } else {
      (void)index->Insert(Rect(x, x + 50, y, y + 50), tid);
    }
  }
  (void)index->Finalize();  // Force skeleton construction if still buffering.

  // 4. Query. Search returns stored entries; SearchTuples deduplicates to
  //    logical records (an SR-Tree may store one record as several cut
  //    pieces).
  std::vector<TupleId> hits;
  uint64_t nodes_accessed = 0;
  const Rect window(20000, 26000, 30000, 36000);
  if (auto st = index->SearchTuples(window, &hits, &nodes_accessed);
      !st.ok()) {
    std::fprintf(stderr, "search failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("window %s -> %zu records, %llu index nodes accessed\n",
              window.ToString().c_str(), hits.size(),
              static_cast<unsigned long long>(nodes_accessed));

  // 5. Inspect.
  std::printf("index kind: %s\n", IndexKindName(index->kind()));
  std::printf("records: %llu, height: %d, on-disk size: %llu KiB\n",
              static_cast<unsigned long long>(index->size()),
              index->height(),
              static_cast<unsigned long long>(index->index_bytes() / 1024));
  const auto& ts = index->tree_stats();
  std::printf("spanning records placed: %llu, cuts: %llu, coalesced: %llu\n",
              static_cast<unsigned long long>(ts.spanning_placed),
              static_cast<unsigned long long>(ts.cuts),
              static_cast<unsigned long long>(ts.coalesced_nodes));

  // 6. Persist (no-op for the in-memory backend, but keeps the example
  //    copy-pasteable for file-backed indexes).
  if (auto st = index->Flush(); !st.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (argc > 1) {
    std::printf("index persisted to %s\n", argv[1]);
  }
  return 0;
}
