// Spatial scenario: a city map with rectangle features of wildly varying
// sizes — thousands of small building footprints plus a few large parks,
// districts, and transit corridors. Size skew like this is where the
// Skeleton SR-Tree shines (paper Graph 6): large features become spanning
// records in non-leaf nodes instead of elongating leaf regions.
//
// The example builds a file-backed Skeleton SR-Tree, runs map-viewport
// queries at several zoom levels, re-opens the index from disk, and shows
// the storage-level statistics (cache hits, physical reads).

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/interval_index.h"

using namespace segidx;

namespace {

constexpr double kCity = 50000;  // Map extent in meters.

std::vector<Rect> GenerateFeatures(Rng& rng) {
  std::vector<Rect> features;
  // 40000 buildings, 10-60 m.
  for (int i = 0; i < 40000; ++i) {
    const double x = rng.Uniform(0, kCity);
    const double y = rng.Uniform(0, kCity);
    features.push_back(
        Rect(x, x + rng.Uniform(10, 60), y, y + rng.Uniform(10, 60)));
  }
  // 300 parks / campuses, 200-2000 m.
  for (int i = 0; i < 300; ++i) {
    const double x = rng.Uniform(0, kCity);
    const double y = rng.Uniform(0, kCity);
    features.push_back(Rect(x, x + rng.Uniform(200, 2000), y,
                            y + rng.Uniform(200, 2000)));
  }
  // 40 transit corridors: very long, thin.
  for (int i = 0; i < 40; ++i) {
    const bool horizontal = rng.NextDouble() < 0.5;
    const double pos = rng.Uniform(0, kCity);
    const double lo = rng.Uniform(0, kCity / 4);
    const double hi = lo + rng.Uniform(kCity / 2, 3 * kCity / 4);
    features.push_back(horizontal ? Rect(lo, hi, pos, pos + 30)
                                  : Rect(pos, pos + 30, lo, hi));
  }
  return features;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/segidx_spatial_map.idx";
  Rng rng(7);
  const std::vector<Rect> features = GenerateFeatures(rng);

  core::IndexOptions options;
  options.skeleton.expected_tuples = features.size();
  options.skeleton.prediction_sample = features.size() / 10;
  options.skeleton.x_domain = Interval(0, kCity);
  options.skeleton.y_domain = Interval(0, kCity);
  // A small buffer pool to make the storage layer work for a living.
  options.pager.buffer_pool_bytes = 1u << 20;

  {
    auto index = core::IntervalIndex::CreateOnDisk(
                     core::IndexKind::kSkeletonSRTree, path, options)
                     .value();
    for (size_t i = 0; i < features.size(); ++i) {
      if (auto st = index->Insert(features[i], i); !st.ok()) {
        std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    if (auto st = index->Flush(); !st.ok()) {
      std::fprintf(stderr, "flush failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("built %s: %zu features, height %d, %llu KiB, "
                "%llu spanning records\n",
                path.c_str(), features.size(), index->height(),
                static_cast<unsigned long long>(index->index_bytes() / 1024),
                static_cast<unsigned long long>(
                    index->tree_stats().spanning_placed));
  }

  // Re-open from disk and serve viewport queries at three zoom levels.
  auto reopened = core::IntervalIndex::OpenFromDisk(path, options);
  if (!reopened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  auto index = std::move(reopened).value();
  std::printf("\nre-opened index: %llu features\n\n",
              static_cast<unsigned long long>(index->size()));

  struct Zoom {
    const char* name;
    double extent;
  };
  for (const Zoom& zoom : {Zoom{"street", 300.0}, Zoom{"district", 3000.0},
                           Zoom{"city", 25000.0}}) {
    uint64_t total_nodes = 0;
    size_t total_hits = 0;
    const int kViews = 50;
    for (int v = 0; v < kViews; ++v) {
      const double cx = rng.Uniform(0, kCity);
      const double cy = rng.Uniform(0, kCity);
      const Rect viewport(cx, cx + zoom.extent, cy, cy + zoom.extent);
      std::vector<TupleId> hits;
      uint64_t nodes = 0;
      (void)index->SearchTuples(viewport, &hits, &nodes);
      total_nodes += nodes;
      total_hits += hits.size();
    }
    std::printf("zoom %-9s (%5.0fm): avg %6.1f features, "
                "avg %5.1f index nodes per viewport\n",
                zoom.name, zoom.extent,
                static_cast<double>(total_hits) / kViews,
                static_cast<double>(total_nodes) / kViews);
  }

  const auto& ss = index->storage_stats();
  std::printf("\nstorage: %llu logical reads, %llu cache hits, "
              "%llu physical reads (1 MiB buffer pool)\n",
              static_cast<unsigned long long>(ss.logical_reads),
              static_cast<unsigned long long>(ss.cache_hits),
              static_cast<unsigned long long>(ss.physical_reads));
  return 0;
}
