// Migration workflow: bulk-load an existing dataset into a packed index,
// then keep appending live records dynamically — the common path when a
// historical table already exists and new history keeps arriving.
//
// Compares three strategies over the same data:
//   (1) insert everything dynamically into a Skeleton SR-Tree,
//   (2) STR-pack the backlog, then append dynamically (plain R-Tree),
//   (3) STR-pack at 80% fill (headroom for appends), then append.
//
// Reported: build strategy, final size, and average node accesses for a
// time-slice query batch after the appends.

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/interval_index.h"
#include "rtree/bulk_load.h"
#include "workload/datasets.h"

using namespace segidx;

namespace {

struct Strategy {
  const char* name;
  core::IndexKind kind;
  bool pack;
  double fill;
};

}  // namespace

int main() {
  // Backlog: 80 K historical records; live tail: 20 K more.
  workload::DatasetSpec spec;
  spec.kind = workload::DatasetKind::kM1;
  spec.count = 100000;
  spec.seed = 3;
  const std::vector<Rect> data = workload::GenerateDataset(spec);
  const size_t backlog = 80000;

  std::printf("backlog: %zu records, live tail: %zu records\n\n", backlog,
              data.size() - backlog);
  std::printf("%-34s %10s %10s %12s\n", "strategy", "build(s)", "size KiB",
              "nodes/query");

  for (const Strategy& strategy :
       {Strategy{"all dynamic (Skeleton SR-Tree)",
                 core::IndexKind::kSkeletonSRTree, false, 1.0},
        Strategy{"STR pack + dynamic appends", core::IndexKind::kRTree,
                 true, 1.0},
        Strategy{"STR pack @80% + dynamic appends", core::IndexKind::kRTree,
                 true, 0.8}}) {
    core::IndexOptions options;
    options.skeleton.expected_tuples = data.size();
    options.skeleton.prediction_sample = data.size() / 10;
    auto index =
        core::IntervalIndex::CreateInMemory(strategy.kind, options).value();

    const auto start = std::chrono::steady_clock::now();
    if (strategy.pack) {
      std::vector<std::pair<Rect, TupleId>> records;
      records.reserve(backlog);
      for (size_t i = 0; i < backlog; ++i) records.emplace_back(data[i], i);
      if (auto st = rtree::BulkLoad(index->tree(), std::move(records),
                                    rtree::PackingMethod::kSTR,
                                    strategy.fill);
          !st.ok()) {
        std::fprintf(stderr, "bulk load failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
    } else {
      for (size_t i = 0; i < backlog; ++i) {
        if (auto st = index->Insert(data[i], i); !st.ok()) {
          std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
          return 1;
        }
      }
    }
    // The live tail always arrives dynamically.
    for (size_t i = backlog; i < data.size(); ++i) {
      if (auto st = index->Insert(data[i], i); !st.ok()) {
        std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    uint64_t total_nodes = 0;
    const auto queries = workload::GenerateQueries(0.001, 1e6, 200, 9);
    std::vector<TupleId> hits;
    for (const Rect& q : queries) {
      hits.clear();
      uint64_t nodes = 0;
      (void)index->SearchTuples(q, &hits, &nodes);
      total_nodes += nodes;
    }
    std::printf("%-34s %9.2fs %10llu %12.1f\n", strategy.name, seconds,
                static_cast<unsigned long long>(index->index_bytes() / 1024),
                static_cast<double>(total_nodes) /
                    static_cast<double>(queries.size()));
  }
  std::printf(
      "\n(time-slice queries, QAR 1e-3; the packed variants need the "
      "backlog up front,\n the dynamic skeleton never does — the paper's "
      "Section 4 trade-off)\n");
  return 0;
}
