// Rule-lock indexing (paper Section 2.2): database rules guarded by
// predicates over a single attribute are indexed as 1-D intervals (range
// predicates) and points (equality predicates) in one index — the
// one-dimensional special case of the SR-Tree.
//
// Example rules over EMP.salary:
//   Rule 1: 10k < salary <= 20k  -> office has at least 1 window
//   Rule 2: salary == 100k       -> office has at least 4 windows
//
// An incoming tuple's salary is a stabbing query: every rule whose
// predicate interval contains the value must fire. The example also
// cross-checks the SR-Tree against the in-memory interval tree and segment
// tree from oracle/ (the Computational Geometry structures the paper
// builds on).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/interval_index.h"
#include "oracle/interval_tree.h"
#include "oracle/segment_tree.h"

using namespace segidx;

namespace {

struct Rule {
  Interval predicate;  // [lo, hi]; a point for equality predicates.
  std::string action;
};

}  // namespace

int main() {
  // A rule base: salary bands (HR policies) plus equality triggers.
  std::vector<Rule> rules;
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    if (i % 5 == 0) {
      const double v = 1000.0 * rng.UniformInt(10, 300);
      rules.push_back({Interval::Point(v), "audit exact salary " +
                                               std::to_string(v)});
    } else {
      const double lo = rng.Uniform(10000, 250000);
      const double width = rng.Exponential(20000, 100000);
      rules.push_back({Interval(lo, lo + width),
                       "band rule " + std::to_string(i)});
    }
  }
  // The paper's two illustrative rules.
  rules.push_back({Interval(10000.000001, 20000), "office: >= 1 window"});
  rules.push_back({Interval::Point(100000), "office: >= 4 windows"});

  // Index every predicate: a 1-D SR-Tree is the K=1 special case — a
  // degenerate Y coordinate.
  core::IndexOptions options;
  auto index =
      core::IntervalIndex::CreateInMemory(core::IndexKind::kSRTree, options)
          .value();
  oracle::IntervalTree interval_tree;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (auto st = index->Insert(
            Rect(rules[i].predicate, Interval::Point(0)), i);
        !st.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
      return 1;
    }
    interval_tree.Insert(rules[i].predicate, i);
  }
  std::printf("indexed %zu rule predicates (1-D SR-Tree, height %d, "
              "%llu spanning records)\n\n",
              rules.size(), index->height(),
              static_cast<unsigned long long>(
                  index->tree_stats().spanning_placed));

  // Fire rules for a few incoming tuples.
  for (double salary : {15000.0, 100000.0, 237500.0}) {
    std::vector<TupleId> fired;
    uint64_t nodes = 0;
    (void)index->SearchTuples(Rect(Interval::Point(salary),
                                   Interval::Point(0)),
                              &fired, &nodes);
    std::printf("salary %8.0f fires %3zu rules (%llu index nodes):\n",
                salary, fired.size(), static_cast<unsigned long long>(nodes));
    int shown = 0;
    for (TupleId tid : fired) {
      if (rules[tid].action.rfind("office", 0) == 0) {
        std::printf("    -> %s\n", rules[tid].action.c_str());
        ++shown;
      }
    }
    if (shown == 0) std::printf("    (band/audit rules only)\n");

    // Cross-check against the interval tree.
    const std::vector<TupleId> expected = interval_tree.Stab(salary);
    std::vector<TupleId> sorted = fired;
    std::sort(sorted.begin(), sorted.end());
    if (sorted != expected) {
      std::fprintf(stderr, "BUG: SR-Tree disagrees with interval tree\n");
      return 1;
    }
  }

  // Bulk validation against both Computational Geometry oracles.
  std::vector<Coord> endpoints;
  for (const Rule& rule : rules) {
    endpoints.push_back(rule.predicate.lo);
    endpoints.push_back(rule.predicate.hi);
  }
  oracle::SegmentTree segment_tree(endpoints);
  for (size_t i = 0; i < rules.size(); ++i) {
    (void)segment_tree.Insert(rules[i].predicate, i);
  }
  int probes_checked = 0;
  for (int p = 0; p < 2000; ++p) {
    const double v = rng.Uniform(0, 400000);
    std::vector<TupleId> fired;
    (void)index->SearchTuples(
        Rect(Interval::Point(v), Interval::Point(0)), &fired);
    std::sort(fired.begin(), fired.end());
    if (fired != interval_tree.Stab(v) || fired != segment_tree.Stab(v)) {
      std::fprintf(stderr, "BUG: mismatch at probe %f\n", v);
      return 1;
    }
    ++probes_checked;
  }
  std::printf(
      "\n%d stabbing probes agree across SR-Tree, interval tree, and "
      "segment tree\n",
      probes_checked);
  return 0;
}
