# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for graph6_rect_exp.
