# Empty compiler generated dependencies file for graph6_rect_exp.
# This may be replaced when dependencies are built.
