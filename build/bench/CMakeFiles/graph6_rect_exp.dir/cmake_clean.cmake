file(REMOVE_RECURSE
  "CMakeFiles/graph6_rect_exp.dir/graph6_rect_exp.cpp.o"
  "CMakeFiles/graph6_rect_exp.dir/graph6_rect_exp.cpp.o.d"
  "graph6_rect_exp"
  "graph6_rect_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph6_rect_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
