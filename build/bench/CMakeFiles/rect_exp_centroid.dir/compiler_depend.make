# Empty compiler generated dependencies file for rect_exp_centroid.
# This may be replaced when dependencies are built.
