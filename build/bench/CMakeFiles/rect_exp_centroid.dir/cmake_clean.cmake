file(REMOVE_RECURSE
  "CMakeFiles/rect_exp_centroid.dir/rect_exp_centroid.cpp.o"
  "CMakeFiles/rect_exp_centroid.dir/rect_exp_centroid.cpp.o.d"
  "rect_exp_centroid"
  "rect_exp_centroid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rect_exp_centroid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
