file(REMOVE_RECURSE
  "CMakeFiles/graph5_rect_uniform.dir/graph5_rect_uniform.cpp.o"
  "CMakeFiles/graph5_rect_uniform.dir/graph5_rect_uniform.cpp.o.d"
  "graph5_rect_uniform"
  "graph5_rect_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph5_rect_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
