# Empty dependencies file for graph5_rect_uniform.
# This may be replaced when dependencies are built.
