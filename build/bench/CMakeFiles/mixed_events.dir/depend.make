# Empty dependencies file for mixed_events.
# This may be replaced when dependencies are built.
