file(REMOVE_RECURSE
  "CMakeFiles/mixed_events.dir/mixed_events.cpp.o"
  "CMakeFiles/mixed_events.dir/mixed_events.cpp.o.d"
  "mixed_events"
  "mixed_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
