# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for graph4_interval_exp_both.
