# Empty compiler generated dependencies file for graph4_interval_exp_both.
# This may be replaced when dependencies are built.
