file(REMOVE_RECURSE
  "CMakeFiles/graph4_interval_exp_both.dir/graph4_interval_exp_both.cpp.o"
  "CMakeFiles/graph4_interval_exp_both.dir/graph4_interval_exp_both.cpp.o.d"
  "graph4_interval_exp_both"
  "graph4_interval_exp_both.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph4_interval_exp_both.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
