# Empty compiler generated dependencies file for series_100k.
# This may be replaced when dependencies are built.
