file(REMOVE_RECURSE
  "CMakeFiles/series_100k.dir/series_100k.cpp.o"
  "CMakeFiles/series_100k.dir/series_100k.cpp.o.d"
  "series_100k"
  "series_100k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/series_100k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
