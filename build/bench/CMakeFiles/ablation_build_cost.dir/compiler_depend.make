# Empty compiler generated dependencies file for ablation_build_cost.
# This may be replaced when dependencies are built.
