file(REMOVE_RECURSE
  "CMakeFiles/ablation_build_cost.dir/ablation_build_cost.cpp.o"
  "CMakeFiles/ablation_build_cost.dir/ablation_build_cost.cpp.o.d"
  "ablation_build_cost"
  "ablation_build_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_build_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
