file(REMOVE_RECURSE
  "CMakeFiles/graph1_interval_uniform.dir/graph1_interval_uniform.cpp.o"
  "CMakeFiles/graph1_interval_uniform.dir/graph1_interval_uniform.cpp.o.d"
  "graph1_interval_uniform"
  "graph1_interval_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph1_interval_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
