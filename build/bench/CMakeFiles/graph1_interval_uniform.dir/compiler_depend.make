# Empty compiler generated dependencies file for graph1_interval_uniform.
# This may be replaced when dependencies are built.
