file(REMOVE_RECURSE
  "CMakeFiles/ablation_packed.dir/ablation_packed.cpp.o"
  "CMakeFiles/ablation_packed.dir/ablation_packed.cpp.o.d"
  "ablation_packed"
  "ablation_packed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_packed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
