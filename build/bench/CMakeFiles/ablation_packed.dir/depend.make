# Empty dependencies file for ablation_packed.
# This may be replaced when dependencies are built.
