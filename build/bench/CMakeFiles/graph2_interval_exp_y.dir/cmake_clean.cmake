file(REMOVE_RECURSE
  "CMakeFiles/graph2_interval_exp_y.dir/graph2_interval_exp_y.cpp.o"
  "CMakeFiles/graph2_interval_exp_y.dir/graph2_interval_exp_y.cpp.o.d"
  "graph2_interval_exp_y"
  "graph2_interval_exp_y.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph2_interval_exp_y.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
