# Empty compiler generated dependencies file for graph2_interval_exp_y.
# This may be replaced when dependencies are built.
