# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for graph3_interval_exp_len.
