file(REMOVE_RECURSE
  "CMakeFiles/graph3_interval_exp_len.dir/graph3_interval_exp_len.cpp.o"
  "CMakeFiles/graph3_interval_exp_len.dir/graph3_interval_exp_len.cpp.o.d"
  "graph3_interval_exp_len"
  "graph3_interval_exp_len.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph3_interval_exp_len.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
