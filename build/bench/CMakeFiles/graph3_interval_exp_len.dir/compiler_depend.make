# Empty compiler generated dependencies file for graph3_interval_exp_len.
# This may be replaced when dependencies are built.
