file(REMOVE_RECURSE
  "CMakeFiles/buffer_pool_sweep.dir/buffer_pool_sweep.cpp.o"
  "CMakeFiles/buffer_pool_sweep.dir/buffer_pool_sweep.cpp.o.d"
  "buffer_pool_sweep"
  "buffer_pool_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_pool_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
