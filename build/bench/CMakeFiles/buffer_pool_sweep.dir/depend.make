# Empty dependencies file for buffer_pool_sweep.
# This may be replaced when dependencies are built.
