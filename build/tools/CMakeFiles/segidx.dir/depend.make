# Empty dependencies file for segidx.
# This may be replaced when dependencies are built.
