file(REMOVE_RECURSE
  "CMakeFiles/segidx.dir/segidx_cli.cpp.o"
  "CMakeFiles/segidx.dir/segidx_cli.cpp.o.d"
  "segidx"
  "segidx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
