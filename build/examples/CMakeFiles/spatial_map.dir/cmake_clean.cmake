file(REMOVE_RECURSE
  "CMakeFiles/spatial_map.dir/spatial_map.cpp.o"
  "CMakeFiles/spatial_map.dir/spatial_map.cpp.o.d"
  "spatial_map"
  "spatial_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
