# Empty compiler generated dependencies file for spatial_map.
# This may be replaced when dependencies are built.
