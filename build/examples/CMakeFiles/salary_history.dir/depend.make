# Empty dependencies file for salary_history.
# This may be replaced when dependencies are built.
