
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/salary_history.cpp" "examples/CMakeFiles/salary_history.dir/salary_history.cpp.o" "gcc" "examples/CMakeFiles/salary_history.dir/salary_history.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/segidx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/segidx_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/segidx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/srtree/CMakeFiles/segidx_srtree.dir/DependInfo.cmake"
  "/root/repo/build/src/skeleton/CMakeFiles/segidx_skeleton.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/segidx_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/segidx_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
