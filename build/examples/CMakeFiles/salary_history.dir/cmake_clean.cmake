file(REMOVE_RECURSE
  "CMakeFiles/salary_history.dir/salary_history.cpp.o"
  "CMakeFiles/salary_history.dir/salary_history.cpp.o.d"
  "salary_history"
  "salary_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salary_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
