# Empty dependencies file for bulk_migration.
# This may be replaced when dependencies are built.
