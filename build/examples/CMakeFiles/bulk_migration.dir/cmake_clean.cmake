file(REMOVE_RECURSE
  "CMakeFiles/bulk_migration.dir/bulk_migration.cpp.o"
  "CMakeFiles/bulk_migration.dir/bulk_migration.cpp.o.d"
  "bulk_migration"
  "bulk_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
