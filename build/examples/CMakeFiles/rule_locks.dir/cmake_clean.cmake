file(REMOVE_RECURSE
  "CMakeFiles/rule_locks.dir/rule_locks.cpp.o"
  "CMakeFiles/rule_locks.dir/rule_locks.cpp.o.d"
  "rule_locks"
  "rule_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
