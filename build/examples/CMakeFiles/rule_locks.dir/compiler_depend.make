# Empty compiler generated dependencies file for rule_locks.
# This may be replaced when dependencies are built.
