# Empty dependencies file for segidx_integration_test.
# This may be replaced when dependencies are built.
