file(REMOVE_RECURSE
  "CMakeFiles/segidx_integration_test.dir/corruption_test.cc.o"
  "CMakeFiles/segidx_integration_test.dir/corruption_test.cc.o.d"
  "CMakeFiles/segidx_integration_test.dir/experiment_test.cc.o"
  "CMakeFiles/segidx_integration_test.dir/experiment_test.cc.o.d"
  "CMakeFiles/segidx_integration_test.dir/fuzz_test.cc.o"
  "CMakeFiles/segidx_integration_test.dir/fuzz_test.cc.o.d"
  "CMakeFiles/segidx_integration_test.dir/interval_index_test.cc.o"
  "CMakeFiles/segidx_integration_test.dir/interval_index_test.cc.o.d"
  "CMakeFiles/segidx_integration_test.dir/workload_test.cc.o"
  "CMakeFiles/segidx_integration_test.dir/workload_test.cc.o.d"
  "segidx_integration_test"
  "segidx_integration_test.pdb"
  "segidx_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
