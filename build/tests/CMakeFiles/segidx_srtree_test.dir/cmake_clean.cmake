file(REMOVE_RECURSE
  "CMakeFiles/segidx_srtree_test.dir/policy_test.cc.o"
  "CMakeFiles/segidx_srtree_test.dir/policy_test.cc.o.d"
  "CMakeFiles/segidx_srtree_test.dir/srtree_test.cc.o"
  "CMakeFiles/segidx_srtree_test.dir/srtree_test.cc.o.d"
  "segidx_srtree_test"
  "segidx_srtree_test.pdb"
  "segidx_srtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx_srtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
