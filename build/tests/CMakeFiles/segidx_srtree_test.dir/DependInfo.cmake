
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/policy_test.cc" "tests/CMakeFiles/segidx_srtree_test.dir/policy_test.cc.o" "gcc" "tests/CMakeFiles/segidx_srtree_test.dir/policy_test.cc.o.d"
  "/root/repo/tests/srtree_test.cc" "tests/CMakeFiles/segidx_srtree_test.dir/srtree_test.cc.o" "gcc" "tests/CMakeFiles/segidx_srtree_test.dir/srtree_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/srtree/CMakeFiles/segidx_srtree.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/segidx_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/segidx_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/segidx_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/segidx_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/segidx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
