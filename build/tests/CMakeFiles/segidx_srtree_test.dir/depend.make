# Empty dependencies file for segidx_srtree_test.
# This may be replaced when dependencies are built.
