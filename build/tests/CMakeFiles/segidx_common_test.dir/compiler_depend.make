# Empty compiler generated dependencies file for segidx_common_test.
# This may be replaced when dependencies are built.
