file(REMOVE_RECURSE
  "CMakeFiles/segidx_common_test.dir/geometry_test.cc.o"
  "CMakeFiles/segidx_common_test.dir/geometry_test.cc.o.d"
  "CMakeFiles/segidx_common_test.dir/histogram_test.cc.o"
  "CMakeFiles/segidx_common_test.dir/histogram_test.cc.o.d"
  "CMakeFiles/segidx_common_test.dir/random_test.cc.o"
  "CMakeFiles/segidx_common_test.dir/random_test.cc.o.d"
  "CMakeFiles/segidx_common_test.dir/status_test.cc.o"
  "CMakeFiles/segidx_common_test.dir/status_test.cc.o.d"
  "segidx_common_test"
  "segidx_common_test.pdb"
  "segidx_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
