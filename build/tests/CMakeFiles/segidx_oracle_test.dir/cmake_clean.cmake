file(REMOVE_RECURSE
  "CMakeFiles/segidx_oracle_test.dir/oracle_test.cc.o"
  "CMakeFiles/segidx_oracle_test.dir/oracle_test.cc.o.d"
  "segidx_oracle_test"
  "segidx_oracle_test.pdb"
  "segidx_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
