# Empty dependencies file for segidx_oracle_test.
# This may be replaced when dependencies are built.
