# Empty compiler generated dependencies file for segidx_rtree_test.
# This may be replaced when dependencies are built.
