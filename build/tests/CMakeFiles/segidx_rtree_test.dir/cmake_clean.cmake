file(REMOVE_RECURSE
  "CMakeFiles/segidx_rtree_test.dir/bulk_load_test.cc.o"
  "CMakeFiles/segidx_rtree_test.dir/bulk_load_test.cc.o.d"
  "CMakeFiles/segidx_rtree_test.dir/node_test.cc.o"
  "CMakeFiles/segidx_rtree_test.dir/node_test.cc.o.d"
  "CMakeFiles/segidx_rtree_test.dir/rtree_test.cc.o"
  "CMakeFiles/segidx_rtree_test.dir/rtree_test.cc.o.d"
  "CMakeFiles/segidx_rtree_test.dir/split_test.cc.o"
  "CMakeFiles/segidx_rtree_test.dir/split_test.cc.o.d"
  "segidx_rtree_test"
  "segidx_rtree_test.pdb"
  "segidx_rtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx_rtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
