file(REMOVE_RECURSE
  "CMakeFiles/segidx_storage_test.dir/block_device_test.cc.o"
  "CMakeFiles/segidx_storage_test.dir/block_device_test.cc.o.d"
  "CMakeFiles/segidx_storage_test.dir/coding_test.cc.o"
  "CMakeFiles/segidx_storage_test.dir/coding_test.cc.o.d"
  "CMakeFiles/segidx_storage_test.dir/pager_test.cc.o"
  "CMakeFiles/segidx_storage_test.dir/pager_test.cc.o.d"
  "segidx_storage_test"
  "segidx_storage_test.pdb"
  "segidx_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
