# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for segidx_storage_test.
