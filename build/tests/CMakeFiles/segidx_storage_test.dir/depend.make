# Empty dependencies file for segidx_storage_test.
# This may be replaced when dependencies are built.
