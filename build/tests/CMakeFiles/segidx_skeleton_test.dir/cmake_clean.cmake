file(REMOVE_RECURSE
  "CMakeFiles/segidx_skeleton_test.dir/coalesce_test.cc.o"
  "CMakeFiles/segidx_skeleton_test.dir/coalesce_test.cc.o.d"
  "CMakeFiles/segidx_skeleton_test.dir/skeleton_test.cc.o"
  "CMakeFiles/segidx_skeleton_test.dir/skeleton_test.cc.o.d"
  "CMakeFiles/segidx_skeleton_test.dir/spec_builder_test.cc.o"
  "CMakeFiles/segidx_skeleton_test.dir/spec_builder_test.cc.o.d"
  "segidx_skeleton_test"
  "segidx_skeleton_test.pdb"
  "segidx_skeleton_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx_skeleton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
