# Empty compiler generated dependencies file for segidx_skeleton_test.
# This may be replaced when dependencies are built.
