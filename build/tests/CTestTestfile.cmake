# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/segidx_common_test[1]_include.cmake")
include("/root/repo/build/tests/segidx_storage_test[1]_include.cmake")
include("/root/repo/build/tests/segidx_rtree_test[1]_include.cmake")
include("/root/repo/build/tests/segidx_srtree_test[1]_include.cmake")
include("/root/repo/build/tests/segidx_skeleton_test[1]_include.cmake")
include("/root/repo/build/tests/segidx_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/segidx_integration_test[1]_include.cmake")
