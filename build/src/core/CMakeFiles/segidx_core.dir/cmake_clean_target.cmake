file(REMOVE_RECURSE
  "libsegidx_core.a"
)
