# Empty dependencies file for segidx_core.
# This may be replaced when dependencies are built.
