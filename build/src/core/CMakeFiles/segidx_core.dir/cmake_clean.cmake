file(REMOVE_RECURSE
  "CMakeFiles/segidx_core.dir/interval_index.cc.o"
  "CMakeFiles/segidx_core.dir/interval_index.cc.o.d"
  "libsegidx_core.a"
  "libsegidx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
