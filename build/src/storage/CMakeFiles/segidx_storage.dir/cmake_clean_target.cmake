file(REMOVE_RECURSE
  "libsegidx_storage.a"
)
