file(REMOVE_RECURSE
  "CMakeFiles/segidx_storage.dir/block_device.cc.o"
  "CMakeFiles/segidx_storage.dir/block_device.cc.o.d"
  "CMakeFiles/segidx_storage.dir/pager.cc.o"
  "CMakeFiles/segidx_storage.dir/pager.cc.o.d"
  "libsegidx_storage.a"
  "libsegidx_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
