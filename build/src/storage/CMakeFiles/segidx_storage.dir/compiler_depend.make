# Empty compiler generated dependencies file for segidx_storage.
# This may be replaced when dependencies are built.
