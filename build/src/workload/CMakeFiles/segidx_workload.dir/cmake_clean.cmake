file(REMOVE_RECURSE
  "CMakeFiles/segidx_workload.dir/datasets.cc.o"
  "CMakeFiles/segidx_workload.dir/datasets.cc.o.d"
  "libsegidx_workload.a"
  "libsegidx_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
