# Empty compiler generated dependencies file for segidx_workload.
# This may be replaced when dependencies are built.
