file(REMOVE_RECURSE
  "libsegidx_workload.a"
)
