file(REMOVE_RECURSE
  "CMakeFiles/segidx_rtree.dir/bulk_load.cc.o"
  "CMakeFiles/segidx_rtree.dir/bulk_load.cc.o.d"
  "CMakeFiles/segidx_rtree.dir/node.cc.o"
  "CMakeFiles/segidx_rtree.dir/node.cc.o.d"
  "CMakeFiles/segidx_rtree.dir/rtree.cc.o"
  "CMakeFiles/segidx_rtree.dir/rtree.cc.o.d"
  "CMakeFiles/segidx_rtree.dir/split.cc.o"
  "CMakeFiles/segidx_rtree.dir/split.cc.o.d"
  "libsegidx_rtree.a"
  "libsegidx_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
