file(REMOVE_RECURSE
  "libsegidx_rtree.a"
)
