# Empty compiler generated dependencies file for segidx_rtree.
# This may be replaced when dependencies are built.
