file(REMOVE_RECURSE
  "CMakeFiles/segidx_common.dir/geometry.cc.o"
  "CMakeFiles/segidx_common.dir/geometry.cc.o.d"
  "CMakeFiles/segidx_common.dir/histogram.cc.o"
  "CMakeFiles/segidx_common.dir/histogram.cc.o.d"
  "CMakeFiles/segidx_common.dir/random.cc.o"
  "CMakeFiles/segidx_common.dir/random.cc.o.d"
  "CMakeFiles/segidx_common.dir/status.cc.o"
  "CMakeFiles/segidx_common.dir/status.cc.o.d"
  "libsegidx_common.a"
  "libsegidx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
