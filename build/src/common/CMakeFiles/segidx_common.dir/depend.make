# Empty dependencies file for segidx_common.
# This may be replaced when dependencies are built.
