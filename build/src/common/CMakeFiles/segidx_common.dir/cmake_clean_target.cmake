file(REMOVE_RECURSE
  "libsegidx_common.a"
)
