file(REMOVE_RECURSE
  "libsegidx_bench_support.a"
)
