# Empty compiler generated dependencies file for segidx_bench_support.
# This may be replaced when dependencies are built.
