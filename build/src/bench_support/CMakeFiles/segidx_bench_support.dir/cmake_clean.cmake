file(REMOVE_RECURSE
  "CMakeFiles/segidx_bench_support.dir/experiment.cc.o"
  "CMakeFiles/segidx_bench_support.dir/experiment.cc.o.d"
  "libsegidx_bench_support.a"
  "libsegidx_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
