file(REMOVE_RECURSE
  "CMakeFiles/segidx_skeleton.dir/skeleton_index.cc.o"
  "CMakeFiles/segidx_skeleton.dir/skeleton_index.cc.o.d"
  "CMakeFiles/segidx_skeleton.dir/spec_builder.cc.o"
  "CMakeFiles/segidx_skeleton.dir/spec_builder.cc.o.d"
  "libsegidx_skeleton.a"
  "libsegidx_skeleton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx_skeleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
