# Empty compiler generated dependencies file for segidx_skeleton.
# This may be replaced when dependencies are built.
