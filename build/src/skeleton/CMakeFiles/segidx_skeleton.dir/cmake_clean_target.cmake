file(REMOVE_RECURSE
  "libsegidx_skeleton.a"
)
