# Empty dependencies file for segidx_oracle.
# This may be replaced when dependencies are built.
