
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oracle/interval_tree.cc" "src/oracle/CMakeFiles/segidx_oracle.dir/interval_tree.cc.o" "gcc" "src/oracle/CMakeFiles/segidx_oracle.dir/interval_tree.cc.o.d"
  "/root/repo/src/oracle/naive_oracle.cc" "src/oracle/CMakeFiles/segidx_oracle.dir/naive_oracle.cc.o" "gcc" "src/oracle/CMakeFiles/segidx_oracle.dir/naive_oracle.cc.o.d"
  "/root/repo/src/oracle/priority_search_tree.cc" "src/oracle/CMakeFiles/segidx_oracle.dir/priority_search_tree.cc.o" "gcc" "src/oracle/CMakeFiles/segidx_oracle.dir/priority_search_tree.cc.o.d"
  "/root/repo/src/oracle/segment_tree.cc" "src/oracle/CMakeFiles/segidx_oracle.dir/segment_tree.cc.o" "gcc" "src/oracle/CMakeFiles/segidx_oracle.dir/segment_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/segidx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
