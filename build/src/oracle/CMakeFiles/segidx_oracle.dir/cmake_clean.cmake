file(REMOVE_RECURSE
  "CMakeFiles/segidx_oracle.dir/interval_tree.cc.o"
  "CMakeFiles/segidx_oracle.dir/interval_tree.cc.o.d"
  "CMakeFiles/segidx_oracle.dir/naive_oracle.cc.o"
  "CMakeFiles/segidx_oracle.dir/naive_oracle.cc.o.d"
  "CMakeFiles/segidx_oracle.dir/priority_search_tree.cc.o"
  "CMakeFiles/segidx_oracle.dir/priority_search_tree.cc.o.d"
  "CMakeFiles/segidx_oracle.dir/segment_tree.cc.o"
  "CMakeFiles/segidx_oracle.dir/segment_tree.cc.o.d"
  "libsegidx_oracle.a"
  "libsegidx_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
