file(REMOVE_RECURSE
  "libsegidx_oracle.a"
)
