file(REMOVE_RECURSE
  "libsegidx_srtree.a"
)
