# Empty dependencies file for segidx_srtree.
# This may be replaced when dependencies are built.
