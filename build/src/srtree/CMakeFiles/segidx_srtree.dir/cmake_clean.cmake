file(REMOVE_RECURSE
  "CMakeFiles/segidx_srtree.dir/srtree.cc.o"
  "CMakeFiles/segidx_srtree.dir/srtree.cc.o.d"
  "libsegidx_srtree.a"
  "libsegidx_srtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segidx_srtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
