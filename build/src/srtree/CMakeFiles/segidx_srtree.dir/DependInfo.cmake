
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/srtree/srtree.cc" "src/srtree/CMakeFiles/segidx_srtree.dir/srtree.cc.o" "gcc" "src/srtree/CMakeFiles/segidx_srtree.dir/srtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtree/CMakeFiles/segidx_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/segidx_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/segidx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
