// Reproduces the paper's Graph 1: see DESIGN.md experiment index.

#include "bench/graph_main.h"

int main(int argc, char** argv) {
  return segidx::bench_support::RunGraphMain(
      segidx::workload::DatasetKind::kI1,
      "Graph 1 - line segments, uniform length, uniform Y (paper Graph 1)", "graph1_interval_uniform", argc, argv);
}
