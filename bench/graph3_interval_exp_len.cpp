// Reproduces the paper's Graph 3: see DESIGN.md experiment index.

#include "bench/graph_main.h"

int main(int argc, char** argv) {
  return segidx::bench_support::RunGraphMain(
      segidx::workload::DatasetKind::kI3,
      "Graph 3 - line segments, exponential length, uniform Y (paper Graph 3)", "graph3_interval_exp_len", argc, argv);
}
