// Reproduces the second set of omitted results (Section 5.1, last
// paragraph): rectangle data with exponential centroid distributions,
// with uniform (RC1) and exponential (RC2) interval lengths. The paper
// reports these were qualitatively similar to Graphs 5 and 6 respectively.

#include <cstdio>
#include <iostream>

#include "bench_support/experiment.h"

int main(int argc, char** argv) {
  using namespace segidx;
  auto args = bench_support::ParseBenchArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().message().c_str());
    return 2;
  }
  std::cout << "=== Rectangles with exponential centroids (paper Section "
               "5.1, omitted results) ===\n";
  for (workload::DatasetKind kind :
       {workload::DatasetKind::kRC1, workload::DatasetKind::kRC2}) {
    const bench_support::ExperimentConfig config =
        bench_support::MakePaperConfig(kind, *args);
    auto results = bench_support::RunExperiment(config, &std::cout);
    if (!results.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    std::cout << "\n";
    bench_support::PrintSeriesTable(config, *results, std::cout);
    bench_support::PrintBuildTable(config, *results, std::cout);
  }
  return 0;
}
