// Extension experiment for the paper's third motivation (Section 2.2):
// indexing *time range* and *event* data together in one index. The M1
// workload mixes 30% events (points in time), 60% short ranges, and 10%
// very long ranges — the shape of an audit log or measurement stream. The
// full QAR sweep runs over all four index types, like Graphs 1-6.

#include "bench/graph_main.h"

int main(int argc, char** argv) {
  return segidx::bench_support::RunGraphMain(
      segidx::workload::DatasetKind::kM1,
      "Mixed event / time-range data (Section 2.2 motivation; ours)",
      "mixed_events", argc, argv);
}
