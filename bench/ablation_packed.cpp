// Static packing vs dynamic Skeleton construction (paper Section 4).
//
// The paper motivates Skeleton indexes as the *dynamic* alternative to
// packed R-Trees [ROUS85], which need all data before construction. This
// ablation quantifies the trade: packed trees (lowX and STR packing) are
// built from the complete dataset, the dynamic indexes insert record by
// record, and all run the same QAR probes.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_support/experiment.h"
#include "rtree/bulk_load.h"

namespace {

using namespace segidx;

const std::vector<double> kProbeQars = {0.001, 1.0, 1000.0};

int Row(const std::string& label, double v1, double v2, double v3,
        uint64_t bytes, int height) {
  char buf[200];
  std::snprintf(buf, sizeof(buf), "%-34s %10.1f %10.1f %10.1f %10llu %7d\n",
                label.c_str(), v1, v2, v3,
                static_cast<unsigned long long>(bytes / 1024), height);
  std::cout << buf;
  return 0;
}

Result<int> RunPacked(const std::vector<Rect>& data,
                      rtree::PackingMethod method, const std::string& label,
                      const core::IndexOptions& options) {
  SEGIDX_ASSIGN_OR_RETURN(std::unique_ptr<core::IntervalIndex> index,
                          core::IntervalIndex::CreateInMemory(
                              core::IndexKind::kRTree, options));
  std::vector<std::pair<Rect, TupleId>> records;
  records.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) records.emplace_back(data[i], i);
  SEGIDX_RETURN_IF_ERROR(index->BulkLoad(std::move(records), method));

  std::vector<double> avg;
  for (double qar : kProbeQars) {
    const auto queries = workload::GenerateQueries(qar, 1e6, 100, 42);
    uint64_t total = 0;
    std::vector<rtree::SearchHit> hits;
    for (const Rect& q : queries) {
      hits.clear();
      uint64_t accesses = 0;
      SEGIDX_RETURN_IF_ERROR(index->Search(q, &hits, &accesses));
      total += accesses;
    }
    avg.push_back(static_cast<double>(total) /
                  static_cast<double>(queries.size()));
  }
  return Row(label, avg[0], avg[1], avg[2], index->index_bytes(),
             index->height());
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench_support::ParseBenchArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().message().c_str());
    return 2;
  }
  std::cout << "=== Static packing vs dynamic Skeleton construction ("
            << args->tuples << " tuples) ===\n";
  for (workload::DatasetKind kind :
       {workload::DatasetKind::kI3, workload::DatasetKind::kR2}) {
    std::cout << "\n--- dataset " << workload::DatasetKindName(kind)
              << " ---\n";
    char buf[200];
    std::snprintf(buf, sizeof(buf), "%-34s %10s %10s %10s %10s %7s\n",
                  "build method", "QAR 1e-3", "QAR 1", "QAR 1e3",
                  "size KiB", "height");
    std::cout << buf;

    bench_support::ExperimentConfig config =
        bench_support::MakePaperConfig(kind, *args);
    workload::DatasetSpec spec = config.dataset;
    const std::vector<Rect> data = workload::GenerateDataset(spec);

    for (auto [method, label] :
         {std::pair{rtree::PackingMethod::kLowX, "packed R-Tree (lowX)"},
          std::pair{rtree::PackingMethod::kSTR, "packed R-Tree (STR)"},
          std::pair{rtree::PackingMethod::kHilbert,
                    "packed R-Tree (Hilbert)"}}) {
      auto rc = RunPacked(data, method, label, config.options);
      if (!rc.ok()) {
        std::fprintf(stderr, "packed run failed: %s\n",
                     rc.status().ToString().c_str());
        return 1;
      }
    }

    // Dynamic indexes via the standard runner on the same probes.
    config.qars = kProbeQars;
    auto results = bench_support::RunExperiment(config, nullptr);
    if (!results.ok()) {
      std::fprintf(stderr, "dynamic run failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    for (const bench_support::SeriesResult& series : *results) {
      Row(std::string("dynamic ") + core::IndexKindName(series.kind),
          series.avg_nodes[0], series.avg_nodes[1], series.avg_nodes[2],
          series.build.index_bytes, series.build.height);
    }
  }
  std::cout << "\n(packing requires the full dataset up front; the Skeleton"
               " indexes achieve their numbers fully dynamically)\n";
  return 0;
}
