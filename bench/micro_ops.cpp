// Wall-clock micro-benchmarks (google-benchmark): insert and search
// throughput for each index type, plus storage-layer primitives. These
// complement the paper's node-access metric with real time on the
// in-memory backend.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/interval_index.h"
#include "storage/block_device.h"
#include "storage/pager.h"
#include "workload/datasets.h"

namespace {

using namespace segidx;

core::IndexOptions BenchOptions(uint64_t expected) {
  core::IndexOptions options;
  options.skeleton.expected_tuples = expected;
  options.skeleton.prediction_sample = expected / 10;
  options.pager.buffer_pool_bytes = 256u << 20;
  return options;
}

std::vector<Rect> BenchData(workload::DatasetKind kind, uint64_t count) {
  workload::DatasetSpec spec;
  spec.kind = kind;
  spec.count = count;
  spec.seed = 17;
  return workload::GenerateDataset(spec);
}

void BM_Insert(benchmark::State& state) {
  const auto kind = static_cast<core::IndexKind>(state.range(0));
  const uint64_t n = static_cast<uint64_t>(state.range(1));
  const std::vector<Rect> data = BenchData(workload::DatasetKind::kI3, n);
  for (auto _ : state) {
    auto index =
        core::IntervalIndex::CreateInMemory(kind, BenchOptions(n)).value();
    for (size_t i = 0; i < data.size(); ++i) {
      benchmark::DoNotOptimize(index->Insert(data[i], i));
    }
    benchmark::DoNotOptimize(index->Finalize());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.SetLabel(core::IndexKindName(kind));
}
BENCHMARK(BM_Insert)
    ->ArgsProduct({{0, 1, 2, 3}, {20000}})
    ->Unit(benchmark::kMillisecond);

void BM_Search(benchmark::State& state) {
  const auto kind = static_cast<core::IndexKind>(state.range(0));
  const double qar = static_cast<double>(state.range(1)) / 1000.0;
  const uint64_t n = 50000;
  const std::vector<Rect> data = BenchData(workload::DatasetKind::kI3, n);
  auto index =
      core::IntervalIndex::CreateInMemory(kind, BenchOptions(n)).value();
  for (size_t i = 0; i < data.size(); ++i) {
    (void)index->Insert(data[i], i);
  }
  (void)index->Finalize();
  const std::vector<Rect> queries =
      workload::GenerateQueries(qar, 1e6, 256, 23);
  size_t next = 0;
  std::vector<rtree::SearchHit> hits;
  for (auto _ : state) {
    hits.clear();
    benchmark::DoNotOptimize(
        index->Search(queries[next % queries.size()], &hits));
    benchmark::DoNotOptimize(hits.data());
    ++next;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(std::string(core::IndexKindName(kind)) + " QAR=" +
                 std::to_string(qar));
}
BENCHMARK(BM_Search)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 1000, 1000000}})
    ->Unit(benchmark::kMicrosecond);

void BM_PagerFetchHit(benchmark::State& state) {
  auto pager = storage::Pager::Create(
                   std::make_unique<storage::MemoryBlockDevice>(),
                   storage::PagerOptions())
                   .value();
  storage::PageId id;
  {
    auto page = pager->Allocate(0).value();
    id = page.id();
  }
  for (auto _ : state) {
    auto page = pager->Fetch(id);
    benchmark::DoNotOptimize(page->data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PagerFetchHit);

void BM_PagerAllocateFree(benchmark::State& state) {
  auto pager = storage::Pager::Create(
                   std::make_unique<storage::MemoryBlockDevice>(),
                   storage::PagerOptions())
                   .value();
  for (auto _ : state) {
    storage::PageId id;
    {
      auto page = pager->Allocate(1).value();
      id = page.id();
    }
    benchmark::DoNotOptimize(pager->Free(id));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PagerAllocateFree);

}  // namespace

BENCHMARK_MAIN();
