// Reproduces the results the paper measured but omitted for brevity
// (Section 5.1, last paragraph): all six distributions at 100 K tuples.
// The paper reports these were "qualitatively similar" to the 200 K runs
// with smaller magnitudes; this binary regenerates the full series so the
// claim can be checked.

#include <cstdio>
#include <iostream>

#include "bench_support/experiment.h"

int main(int argc, char** argv) {
  using namespace segidx;
  auto args = bench_support::ParseBenchArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().message().c_str());
    return 2;
  }
  // Default to the paper's smaller data sets.
  if (args->tuples == 200000) args->tuples = 100000;

  std::cout << "=== 100K-tuple series (results omitted from the paper, "
               "Section 5.1) ===\n";
  for (workload::DatasetKind kind :
       {workload::DatasetKind::kI1, workload::DatasetKind::kI2,
        workload::DatasetKind::kI3, workload::DatasetKind::kI4,
        workload::DatasetKind::kR1, workload::DatasetKind::kR2}) {
    const bench_support::ExperimentConfig config =
        bench_support::MakePaperConfig(kind, *args);
    auto results = bench_support::RunExperiment(config, &std::cout);
    if (!results.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    std::cout << "\n";
    bench_support::PrintSeriesTable(config, *results, std::cout);
  }
  return 0;
}
