// Reproduces the paper's Graph 6: see DESIGN.md experiment index.

#include "bench/graph_main.h"

int main(int argc, char** argv) {
  return segidx::bench_support::RunGraphMain(
      segidx::workload::DatasetKind::kR2,
      "Graph 6 - rectangles, exponential size, uniform centroids (paper Graph 6)", "graph6_rect_exp", argc, argv);
}
