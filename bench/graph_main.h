// Shared main() body for the per-graph reproduction binaries. Each binary
// reproduces one of the paper's Graphs 1-6: it builds all four index types
// over the graph's dataset, sweeps the 13 query aspect ratios, and prints
// the paper-style series table plus build statistics. A CSV with the same
// series is written to results/ under the working directory (gitignored —
// generated artifacts stay out of the repository).

#ifndef SEGIDX_BENCH_GRAPH_MAIN_H_
#define SEGIDX_BENCH_GRAPH_MAIN_H_

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_support/experiment.h"

namespace segidx::bench_support {

inline int RunGraphMain(workload::DatasetKind kind, const char* title,
                        const char* csv_name, int argc, char** argv) {
  auto args = ParseBenchArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().message().c_str());
    return 2;
  }
  const ExperimentConfig config = MakePaperConfig(kind, *args);
  std::cout << "=== " << title << " ===\n";
  auto results = RunExperiment(config, &std::cout);
  if (!results.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  std::cout << "\n";
  PrintSeriesTable(config, *results, std::cout);
  PrintBuildTable(config, *results, std::cout);
  const std::string csv = "results/" + std::string(csv_name) + ".csv";
  if (Status st = WriteSeriesCsv(csv, config, *results); !st.ok()) {
    std::fprintf(stderr, "csv write failed: %s\n", st.ToString().c_str());
  } else {
    std::cout << "series written to " << csv << "\n";
  }
  return 0;
}

}  // namespace segidx::bench_support

#endif  // SEGIDX_BENCH_GRAPH_MAIN_H_
