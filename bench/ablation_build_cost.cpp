// Build-cost ablation (not a paper figure): index construction statistics
// for all four index types over every workload — insert node accesses,
// split counts, spanning-record activity, coalescing activity, index size
// on disk, and node counts per level. Complements the paper's search-only
// evaluation with the write-side cost of each design.

#include <cstdio>
#include <iostream>

#include "bench_support/experiment.h"

int main(int argc, char** argv) {
  using namespace segidx;
  auto args = bench_support::ParseBenchArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().message().c_str());
    return 2;
  }
  std::cout << "=== Build-cost ablation (all index types x all workloads) "
               "===\n";
  for (workload::DatasetKind kind :
       {workload::DatasetKind::kI1, workload::DatasetKind::kI2,
        workload::DatasetKind::kI3, workload::DatasetKind::kI4,
        workload::DatasetKind::kR1, workload::DatasetKind::kR2}) {
    bench_support::ExperimentConfig config =
        bench_support::MakePaperConfig(kind, *args);
    config.qars = {};  // Build only; no search sweep.
    auto results = bench_support::RunExperiment(config, &std::cout);
    if (!results.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    std::cout << "\n";
    bench_support::PrintBuildTable(config, *results, std::cout);
    char buf[160];
    for (const bench_support::SeriesResult& series : *results) {
      std::snprintf(buf, sizeof(buf), "%-18s insert node accesses: %llu\n",
                    core::IndexKindName(series.kind),
                    static_cast<unsigned long long>(
                        series.build.insert_node_accesses));
      std::cout << buf;
    }
    std::cout << "\n";
  }
  return 0;
}
