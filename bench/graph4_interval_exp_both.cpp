// Reproduces the paper's Graph 4: see DESIGN.md experiment index.

#include "bench/graph_main.h"

int main(int argc, char** argv) {
  return segidx::bench_support::RunGraphMain(
      segidx::workload::DatasetKind::kI4,
      "Graph 4 - line segments, exponential length, exponential Y (paper Graph 4)", "graph4_interval_exp_both", argc, argv);
}
