// Parameter ablations for the design choices DESIGN.md calls out (not
// paper figures):
//
//   (a) branch-reservation fraction (paper fixes 2/3; Section 4 suggests
//       1/2, 2/3, 3/4) — Skeleton SR-Tree over exponential-length segments;
//   (b) node-size doubling per level (Section 2.1.2) on vs off;
//   (c) distribution-prediction sample size (paper: 5-10%; we sweep
//       0-20%) — Skeleton SR-Tree over skewed-Y segments;
//   (d) coalescing on vs off.
//
// Each row reports the average nodes accessed per search at a vertical
// (QAR 1e-3), square (QAR 1), and horizontal (QAR 1e3) aspect ratio.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_support/experiment.h"

namespace {

using namespace segidx;
using bench_support::BenchArgs;
using bench_support::ExperimentConfig;
using bench_support::MakePaperConfig;
using bench_support::RunExperiment;

const std::vector<double> kProbeQars = {0.001, 1.0, 1000.0};

// Runs one configuration for one index kind; prints a single table row.
int RunRow(const std::string& label, ExperimentConfig config,
           core::IndexKind kind) {
  config.qars = kProbeQars;
  config.kinds = {kind};
  auto results = RunExperiment(config, nullptr);
  if (!results.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label.c_str(),
                 results.status().ToString().c_str());
    return 1;
  }
  const bench_support::SeriesResult& series = (*results)[0];
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-44s %10.1f %10.1f %10.1f %10llu %9d\n", label.c_str(),
                series.avg_nodes[0], series.avg_nodes[1],
                series.avg_nodes[2],
                static_cast<unsigned long long>(series.build.index_bytes /
                                                1024),
                series.build.height);
  std::cout << buf;
  return 0;
}

void Header(const std::string& title) {
  std::cout << "\n--- " << title << " ---\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-44s %10s %10s %10s %10s %9s\n",
                "configuration", "QAR 1e-3", "QAR 1", "QAR 1e3", "size KiB",
                "height");
  std::cout << buf;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench_support::ParseBenchArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().message().c_str());
    return 2;
  }
  int rc = 0;
  std::cout << "=== Parameter ablations (" << args->tuples
            << " tuples) ===\n";

  // (a) Branch-reservation fraction, Skeleton SR-Tree on I3.
  Header("branch fraction (Skeleton SR-Tree, I3)");
  for (double fraction : {0.5, 2.0 / 3.0, 0.75, 0.9}) {
    ExperimentConfig config =
        MakePaperConfig(workload::DatasetKind::kI3, *args);
    config.options.tree.branch_fraction = fraction;
    char label[64];
    std::snprintf(label, sizeof(label), "branch_fraction=%.2f", fraction);
    rc |= RunRow(label, config, core::IndexKind::kSkeletonSRTree);
  }

  // (b) Node-size doubling, SR-Tree and Skeleton SR-Tree on I3.
  Header("node-size doubling per level (I3)");
  for (bool doubling : {true, false}) {
    for (core::IndexKind kind :
         {core::IndexKind::kSRTree, core::IndexKind::kSkeletonSRTree}) {
      ExperimentConfig config =
          MakePaperConfig(workload::DatasetKind::kI3, *args);
      config.options.tree.double_node_size_per_level = doubling;
      std::string label = std::string(core::IndexKindName(kind)) +
                          (doubling ? ", doubling" : ", fixed 1KB nodes");
      rc |= RunRow(label, config, kind);
    }
  }

  // (c) Prediction sample size, Skeleton SR-Tree on I2 (skewed Y).
  Header("distribution-prediction sample (Skeleton SR-Tree, I2)");
  for (double percent : {0.0, 2.0, 5.0, 10.0, 20.0}) {
    ExperimentConfig config =
        MakePaperConfig(workload::DatasetKind::kI2, *args);
    config.options.skeleton.prediction_sample =
        static_cast<uint64_t>(args->tuples * percent / 100.0);
    char label[64];
    std::snprintf(label, sizeof(label), "sample=%.0f%% (%llu tuples)",
                  percent,
                  static_cast<unsigned long long>(
                      config.options.skeleton.prediction_sample));
    rc |= RunRow(label, config, core::IndexKind::kSkeletonSRTree);
  }

  // (d) Coalescing cadence, Skeleton SR-Tree on I2.
  Header("coalescing (Skeleton SR-Tree, I2)");
  for (uint64_t interval : {0ULL, 1000ULL, 5000ULL}) {
    ExperimentConfig config =
        MakePaperConfig(workload::DatasetKind::kI2, *args);
    config.options.skeleton.coalesce_interval = interval;
    std::string label =
        interval == 0 ? "coalescing off"
                      : "coalesce every " + std::to_string(interval);
    rc |= RunRow(label, config, core::IndexKind::kSkeletonSRTree);
  }

  // (e) Spanning overflow policy (DESIGN.md): what an SR-Tree does when a
  // node's spanning quota is full.
  for (workload::DatasetKind data_kind :
       {workload::DatasetKind::kI3, workload::DatasetKind::kR2}) {
    Header(std::string("spanning overflow policy (Skeleton SR-Tree, ") +
           workload::DatasetKindName(data_kind) + ")");
    for (auto policy : {rtree::SpanningOverflowPolicy::kDescend,
                        rtree::SpanningOverflowPolicy::kSplit,
                        rtree::SpanningOverflowPolicy::kEvictSmallest}) {
      ExperimentConfig config = MakePaperConfig(data_kind, *args);
      config.options.tree.spanning_overflow_policy = policy;
      const char* name =
          policy == rtree::SpanningOverflowPolicy::kDescend ? "descend"
          : policy == rtree::SpanningOverflowPolicy::kSplit ? "split"
                                                            : "evict-smallest";
      rc |= RunRow(std::string("policy=") + name, config,
                   core::IndexKind::kSkeletonSRTree);
    }
  }

  // (f) Split algorithm, R-Tree and SR-Tree on R2.
  Header("split algorithm (R2)");
  for (auto split :
       {rtree::SplitAlgorithm::kQuadratic, rtree::SplitAlgorithm::kLinear,
        rtree::SplitAlgorithm::kRStar}) {
    for (core::IndexKind kind :
         {core::IndexKind::kRTree, core::IndexKind::kSRTree}) {
      ExperimentConfig config =
          MakePaperConfig(workload::DatasetKind::kR2, *args);
      config.options.tree.split_algorithm = split;
      const char* split_name =
          split == rtree::SplitAlgorithm::kQuadratic ? ", quadratic split"
          : split == rtree::SplitAlgorithm::kLinear  ? ", linear split"
                                                     : ", R* split";
      std::string label = std::string(core::IndexKindName(kind)) + split_name;
      rc |= RunRow(label, config, kind);
    }
  }
  return rc;
}
