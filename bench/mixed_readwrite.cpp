// Mixed read/write throughput over the graph1 (I1) uniform-interval
// workload.
//
// Preloads an R-Tree with half the dataset, then for each writer count
// (1/2/4) pushes the other half through exec::WritePool — concurrent
// inserts under the tree's shared write phase, each worker committing
// through the group-commit sequencer every --commit-every operations.
// Two passes per writer count: write-only (the scaling headline) and
// mixed, where reader threads run point-in-time queries concurrently and
// their throughput is reported alongside. After every pass the tree is
// checked against the expected record count; the binary fails on any
// error.
//
// Flags: --tuples=N --queries=N --seed=N (see ParseBenchArgs).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>
#include <utility>
#include <vector>

#include "bench_support/experiment.h"
#include "core/interval_index.h"
#include "exec/write_pool.h"
#include "workload/datasets.h"

namespace {

using namespace segidx;

constexpr int kWriterCounts[] = {1, 2, 4};
constexpr int kReaders = 2;
constexpr double kQueryArea = 1e6;  // The paper's query area.
constexpr uint64_t kCommitEvery = 1024;

struct PassResult {
  double inserts_per_sec = 0;
  double queries_per_sec = 0;  // Mixed pass only.
  uint64_t commit_batches = 0;
  uint64_t commit_requests = 0;
  rtree::LatchStats latch;  // Gate/latch contention over the pass.
};

// One timed insert pass: `writers` pool threads applying `ops`, with
// `readers` threads running queries until the writers finish.
bool RunPass(core::IntervalIndex* index, const std::vector<exec::WriteOp>& ops,
             int writers, int readers, const std::vector<Rect>& queries,
             PassResult* out) {
  exec::WritePoolOptions wopts;
  wopts.num_threads = writers;
  wopts.commit_every = kCommitEvery;
  exec::WritePool pool(
      index->tree(), [index] { return index->Commit(); }, wopts);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_done{0};
  std::vector<std::thread> reader_threads;
  std::atomic<bool> reader_failed{false};
  for (int r = 0; r < readers; ++r) {
    reader_threads.emplace_back([&, r] {
      size_t qi = static_cast<size_t>(r);
      std::vector<rtree::SearchHit> hits;
      while (!stop.load(std::memory_order_relaxed)) {
        hits.clear();
        if (!index->Search(queries[qi % queries.size()], &hits).ok()) {
          reader_failed.store(true);
          return;
        }
        qi += static_cast<size_t>(readers);
        queries_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  using Clock = std::chrono::steady_clock;
  const uint64_t batches_before = index->storage_stats().commit_batches;
  const uint64_t requests_before = index->storage_stats().commit_requests;
  const auto t0 = Clock::now();
  const Status st = pool.ApplyBatch(ops);
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  stop.store(true);
  for (std::thread& t : reader_threads) t.join();
  if (!st.ok()) {
    std::fprintf(stderr, "apply batch failed: %s\n", st.ToString().c_str());
    return false;
  }
  if (reader_failed.load()) {
    std::fprintf(stderr, "reader thread failed\n");
    return false;
  }
  out->inserts_per_sec = static_cast<double>(ops.size()) / secs;
  out->queries_per_sec = static_cast<double>(queries_done.load()) / secs;
  out->commit_batches =
      index->storage_stats().commit_batches - batches_before;
  out->commit_requests =
      index->storage_stats().commit_requests - requests_before;
  // Each pass uses a fresh index, so the counters are this pass's alone.
  out->latch = index->tree()->latch_stats();
  return true;
}

int Run(const bench_support::BenchArgs& args) {
  workload::DatasetSpec spec;
  spec.kind = workload::DatasetKind::kI1;
  spec.count = args.tuples;
  spec.seed = args.seed;
  std::vector<Rect> rects = workload::GenerateDataset(spec);
  const size_t preload_count = rects.size() / 2;

  const std::vector<Rect> queries =
      workload::GenerateQueries(/*qar=*/1.0, kQueryArea,
                                std::max(args.queries, 64), args.seed);

  std::cout << "=== Mixed read/write (graph1 / I1 workload) ===\n"
            << "tuples: " << args.tuples << " (half preloaded), readers: "
            << kReaders << ", commit every " << kCommitEvery
            << " ops/worker\n";
  std::printf("%8s %6s %12s %12s %9s %14s %16s\n", "writers", "mode",
              "inserts/s", "queries/s", "speedup", "commits (b/r)",
              "gate-wait (ms)");

  double write_only_1w = 0;
  std::vector<std::pair<int, PassResult>> rows;
  for (int writers : kWriterCounts) {
    for (int readers : {0, kReaders}) {
      // Fresh index per pass so every pass inserts into the same shape.
      auto created = core::IntervalIndex::CreateInMemory(
          core::IndexKind::kRTree, core::IndexOptions{});
      if (!created.ok()) {
        std::fprintf(stderr, "create failed: %s\n",
                     created.status().ToString().c_str());
        return 1;
      }
      auto index = std::move(created).value();
      std::vector<std::pair<Rect, TupleId>> preload;
      preload.reserve(preload_count);
      for (size_t i = 0; i < preload_count; ++i) {
        preload.emplace_back(rects[i], static_cast<TupleId>(i));
      }
      if (auto st = index->BulkLoad(std::move(preload)); !st.ok()) {
        std::fprintf(stderr, "bulk load failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      std::vector<exec::WriteOp> ops;
      ops.reserve(rects.size() - preload_count);
      for (size_t i = preload_count; i < rects.size(); ++i) {
        ops.push_back(exec::WriteOp{rects[i], static_cast<TupleId>(i)});
      }

      PassResult result;
      if (!RunPass(index.get(), ops, writers, readers, queries, &result)) {
        return 1;
      }
      if (index->size() != rects.size()) {
        std::fprintf(stderr, "record count mismatch: %llu != %zu\n",
                     static_cast<unsigned long long>(index->size()),
                     rects.size());
        return 1;
      }
      if (auto st = index->CheckInvariants(); !st.ok()) {
        std::fprintf(stderr, "invariant violation after %d-writer pass: %s\n",
                     writers, st.ToString().c_str());
        return 1;
      }
      const bool mixed = readers > 0;
      if (!mixed && writers == 1) write_only_1w = result.inserts_per_sec;
      const double speedup =
          mixed ? 0 : result.inserts_per_sec / write_only_1w;
      char speedup_str[16] = "-";
      if (!mixed) {
        std::snprintf(speedup_str, sizeof(speedup_str), "%.2fx", speedup);
      }
      const double gate_wait_ms =
          static_cast<double>(result.latch.gate_wait_us[0] +
                              result.latch.gate_wait_us[1] +
                              result.latch.gate_wait_us[2]) /
          1000.0;
      std::printf("%8d %6s %12.0f %12.0f %9s %7llu/%llu %16.1f\n", writers,
                  mixed ? "mixed" : "write", result.inserts_per_sec,
                  result.queries_per_sec, speedup_str,
                  static_cast<unsigned long long>(result.commit_batches),
                  static_cast<unsigned long long>(result.commit_requests),
                  gate_wait_ms);
      if (!mixed) rows.emplace_back(writers, result);
    }
  }
  std::cout << "all passes structurally clean\n";

  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  std::ofstream csv("results/mixed_readwrite.csv");
  if (csv) {
    csv << "writers,inserts_per_sec,speedup,gate_write_blocked,"
           "gate_write_wait_us,node_latch_blocked,node_latch_wait_us\n";
    for (const auto& [writers, r] : rows) {
      csv << writers << ',' << r.inserts_per_sec << ','
          << r.inserts_per_sec / write_only_1w << ','
          << r.latch.gate_blocked[1] << ',' << r.latch.gate_wait_us[1]
          << ',' << r.latch.latch_blocked << ',' << r.latch.latch_wait_us
          << '\n';
    }
    std::cout << "series written to results/mixed_readwrite.csv\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench_support::ParseBenchArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().message().c_str());
    return 2;
  }
  return Run(*args);
}
