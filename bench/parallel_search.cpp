// Parallel search throughput over the graph1 (I1) workload.
//
// Builds an R-Tree over the I1 interval dataset, runs a batch of
// area-10^6 queries serially, then through exec::QueryEngine at 1/2/4/8
// worker threads. Every parallel run must return bit-identical result
// sets to the serial baseline (same hits, same order per query); the
// binary fails otherwise. Throughput and speedup are printed per thread
// count and written to results/parallel_search.csv.
//
// Flags: --tuples=N --queries=N --seed=N (see ParseBenchArgs).

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <utility>
#include <vector>

#include "bench_support/experiment.h"
#include "core/interval_index.h"
#include "workload/datasets.h"

namespace {

using namespace segidx;

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr double kQueryArea = 1e6;  // The paper's query area.

bool Identical(const std::vector<rtree::SearchHit>& a,
               const std::vector<rtree::SearchHit>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].tid != b[i].tid || !(a[i].rect == b[i].rect)) return false;
  }
  return true;
}

int Run(const bench_support::BenchArgs& args) {
  workload::DatasetSpec spec;
  spec.kind = workload::DatasetKind::kI1;
  spec.count = args.tuples;
  spec.seed = args.seed;
  std::vector<Rect> rects = workload::GenerateDataset(spec);
  std::vector<std::pair<Rect, TupleId>> records;
  records.reserve(rects.size());
  for (size_t i = 0; i < rects.size(); ++i) {
    records.emplace_back(rects[i], static_cast<TupleId>(i));
  }

  auto created = core::IntervalIndex::CreateInMemory(core::IndexKind::kRTree,
                                                     core::IndexOptions{});
  if (!created.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  auto index = std::move(created).value();
  if (auto st = index->BulkLoad(std::move(records)); !st.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::cout << "=== Parallel search (graph1 / I1 workload) ===\n"
            << "tuples: " << args.tuples << ", height: " << index->height()
            << "\n";

  // A large batch at QAR 1 amortizes pool wake-up; every query is the
  // paper's area (10^6).
  const int batch = args.queries * 100;
  const std::vector<Rect> queries =
      workload::GenerateQueries(/*qar=*/1.0, kQueryArea, batch, args.seed);

  using Clock = std::chrono::steady_clock;
  std::vector<std::vector<rtree::SearchHit>> serial(queries.size());
  const auto serial_start = Clock::now();
  for (size_t i = 0; i < queries.size(); ++i) {
    if (auto st = index->tree()->Search(queries[i], &serial[i]); !st.ok()) {
      std::fprintf(stderr, "search failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const double serial_secs =
      std::chrono::duration<double>(Clock::now() - serial_start).count();

  std::printf("%8s %12s %10s %9s\n", "threads", "queries/s", "time(s)",
              "speedup");
  std::printf("%8s %12.0f %10.3f %9s\n", "serial",
              queries.size() / serial_secs, serial_secs, "1.00x");

  std::vector<std::pair<int, double>> rows;
  for (int threads : kThreadCounts) {
    std::vector<exec::BatchResult> results;
    const auto start = Clock::now();
    if (auto st = index->SearchBatch(queries, &results, threads); !st.ok()) {
      std::fprintf(stderr, "batch failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const double secs =
        std::chrono::duration<double>(Clock::now() - start).count();
    for (size_t i = 0; i < queries.size(); ++i) {
      if (!Identical(results[i].hits, serial[i])) {
        std::fprintf(stderr,
                     "MISMATCH: query %zu differs from serial at %d "
                     "threads\n",
                     i, threads);
        return 1;
      }
    }
    rows.emplace_back(threads, queries.size() / secs);
    std::printf("%8d %12.0f %10.3f %8.2fx\n", threads,
                queries.size() / secs, secs, serial_secs / secs);
  }
  std::cout << "all parallel result sets identical to serial\n";

  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  std::ofstream csv("results/parallel_search.csv");
  if (csv) {
    csv << "threads,queries_per_sec\nserial,"
        << queries.size() / serial_secs << '\n';
    for (const auto& [threads, qps] : rows) {
      csv << threads << ',' << qps << '\n';
    }
    std::cout << "series written to results/parallel_search.csv\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench_support::ParseBenchArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().message().c_str());
    return 2;
  }
  return Run(*args);
}
