// Reproduces the paper's Graph 2: see DESIGN.md experiment index.

#include "bench/graph_main.h"

int main(int argc, char** argv) {
  return segidx::bench_support::RunGraphMain(
      segidx::workload::DatasetKind::kI2,
      "Graph 2 - line segments, uniform length, exponential Y (paper Graph 2)", "graph2_interval_exp_y", argc, argv);
}
