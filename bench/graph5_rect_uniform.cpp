// Reproduces the paper's Graph 5: see DESIGN.md experiment index.

#include "bench/graph_main.h"

int main(int argc, char** argv) {
  return segidx::bench_support::RunGraphMain(
      segidx::workload::DatasetKind::kR1,
      "Graph 5 - rectangles, uniform size, uniform centroids (paper Graph 5)", "graph5_rect_uniform", argc, argv);
}
