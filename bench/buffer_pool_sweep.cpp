// Buffer-pool sweep (our ablation): the paper's setting assumes "only a
// small portion of the index may reside in main memory at a given time".
// The node-access metric is pool-independent, but actual disk reads are
// not: this bench builds each index on disk once, then re-opens it with
// buffer pools from 64 KiB up and reports physical reads per search and
// the cache hit rate over the paper's square-query workload.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_support/experiment.h"

namespace {

using namespace segidx;

}  // namespace

int main(int argc, char** argv) {
  auto args = bench_support::ParseBenchArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().message().c_str());
    return 2;
  }
  std::cout << "=== Buffer-pool sweep (" << args->tuples
            << " tuples, I3, 500 square searches) ===\n";

  for (core::IndexKind kind :
       {core::IndexKind::kRTree, core::IndexKind::kSkeletonSRTree}) {
    const std::string path =
        "/tmp/segidx_pool_sweep_" +
        std::to_string(static_cast<int>(kind)) + ".idx";
    bench_support::ExperimentConfig config = bench_support::MakePaperConfig(
        workload::DatasetKind::kI3, *args);

    // Build once on disk.
    {
      auto index =
          core::IntervalIndex::CreateOnDisk(kind, path, config.options);
      if (!index.ok()) {
        std::fprintf(stderr, "create failed: %s\n",
                     index.status().ToString().c_str());
        return 1;
      }
      const auto data = workload::GenerateDataset(config.dataset);
      for (size_t i = 0; i < data.size(); ++i) {
        if (auto st = (*index)->Insert(data[i], i); !st.ok()) {
          std::fprintf(stderr, "insert failed: %s\n",
                       st.ToString().c_str());
          return 1;
        }
      }
      if (auto st = (*index)->Flush(); !st.ok()) {
        std::fprintf(stderr, "flush failed: %s\n", st.ToString().c_str());
        return 1;
      }
      std::cout << "\n--- " << core::IndexKindName(kind) << " ("
                << (*index)->index_bytes() / 1024 << " KiB on disk) ---\n";
    }

    char buf[160];
    std::snprintf(buf, sizeof(buf), "%12s %14s %14s %12s\n", "pool KiB",
                  "nodes/search", "phys rd/search", "hit rate");
    std::cout << buf;
    for (size_t pool_kib : {64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
      core::IndexOptions options = config.options;
      options.pager.buffer_pool_bytes = pool_kib * 1024;
      auto index = core::IntervalIndex::OpenFromDisk(path, options);
      if (!index.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     index.status().ToString().c_str());
        return 1;
      }
      (*index)->ResetStats();
      const auto queries = workload::GenerateQueries(1.0, 1e6, 500, 11);
      std::vector<rtree::SearchHit> hits;
      for (const Rect& q : queries) {
        hits.clear();
        if (auto st = (*index)->Search(q, &hits); !st.ok()) {
          std::fprintf(stderr, "search failed: %s\n",
                       st.ToString().c_str());
          return 1;
        }
      }
      const auto& ss = (*index)->storage_stats();
      const double per_search =
          static_cast<double>(ss.logical_reads) / queries.size();
      const double phys =
          static_cast<double>(ss.physical_reads) / queries.size();
      const double hit_rate =
          ss.logical_reads == 0
              ? 0
              : static_cast<double>(ss.cache_hits) /
                    static_cast<double>(ss.logical_reads);
      std::snprintf(buf, sizeof(buf), "%12zu %14.1f %14.1f %11.1f%%\n",
                    pool_kib, per_search, phys, 100 * hit_rate);
      std::cout << buf;
    }
    std::remove(path.c_str());
  }
  return 0;
}
