// Differential fuzz driver: random interleaved inserts / deletes / searches
// against the naive oracle, with a full StructureChecker pass (including the
// cut-remnant tiling check against the live record set) every N operations.
//
//   segidx_fuzz [--kind=all|rtree|srtree|skeleton-rtree|skeleton-srtree]
//               [--ops=N] [--seed=S] [--check-every=N] [--verbose=1]
//
// Differences from the gtest fuzz suite (tests/fuzz_test.cc): this driver is
// a standalone binary meant for long unattended runs (millions of ops,
// sanitizer builds) and it hands the checker the expected record set on
// every periodic pass, which the in-test cadence only affords at the end.
//
// Exit codes: 0 all runs clean, 1 divergence or invariant violation,
// 2 usage error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/interval_index.h"
#include "oracle/naive_oracle.h"

namespace {

using namespace segidx;
using core::IndexKind;
using core::IndexOptions;
using core::IntervalIndex;
using oracle::NaiveOracle;

struct FuzzConfig {
  uint64_t ops = 20000;
  uint64_t seed = 1;
  uint64_t check_every = 1000;
  bool verbose = false;
};

// Mirrors tests/fuzz_test.cc: points, 1-D segments, domain-crossing slabs,
// and full rectangles, partly outside the skeleton domain on purpose.
Rect RandomShape(Rng& rng) {
  const double roll = rng.NextDouble();
  const Coord x = rng.Uniform(-1000, 101000);
  const Coord y = rng.Uniform(-1000, 101000);
  if (roll < 0.25) return Rect::Point(x, y);
  if (roll < 0.5) {
    return Rect::Segment1D(x, x + rng.Exponential(8000, 120000), y);
  }
  if (roll < 0.55) {
    return Rect(-5000, 105000, y, y + rng.Uniform(0, 50));
  }
  return Rect(x, x + rng.Exponential(3000, 60000), y,
              y + rng.Exponential(3000, 60000));
}

Rect RandomQuery(Rng& rng) {
  const double roll = rng.NextDouble();
  const Coord x = rng.Uniform(0, 100000);
  const Coord y = rng.Uniform(0, 100000);
  if (roll < 0.3) return Rect::Point(x, y);
  if (roll < 0.6) {
    return Rect(x, x + rng.Uniform(0, 3000), y, y + rng.Uniform(0, 3000));
  }
  if (roll < 0.8) return Rect(x, x + 10, -1e6, 1e6);
  return Rect(-1e6, 1e6, y, y + 10);
}

// Full checker pass; the record-tiling cross-check needs the records to be
// in the tree, so it is withheld while a skeleton index is still buffering.
bool RunChecker(IntervalIndex* index,
                const std::vector<std::pair<Rect, TupleId>>& live,
                uint64_t step) {
  check::CheckOptions options;
  if (!index->skeleton_building()) options.expected_records = &live;
  auto report = index->CheckStructure(options);
  if (!report.ok()) {
    std::fprintf(stderr, "[op %llu] checker failed to run: %s\n",
                 static_cast<unsigned long long>(step),
                 report.status().ToString().c_str());
    return false;
  }
  if (!report->ok()) {
    std::fprintf(stderr, "[op %llu] structural violations:\n%s",
                 static_cast<unsigned long long>(step),
                 report->ToString().c_str());
    return false;
  }
  return true;
}

bool RunOne(IndexKind kind, const FuzzConfig& config) {
  Rng rng(config.seed * 1000003 + static_cast<uint64_t>(kind));
  IndexOptions options;
  options.skeleton.expected_tuples = 3000;
  options.skeleton.prediction_sample = 200;
  options.skeleton.coalesce_interval = 300;

  auto created = IntervalIndex::CreateInMemory(kind, options);
  if (!created.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 created.status().ToString().c_str());
    return false;
  }
  auto index = std::move(created).value();
  NaiveOracle oracle;
  std::vector<std::pair<Rect, TupleId>> live;
  TupleId next_tid = 0;
  const bool can_delete = kind == IndexKind::kRTree;

  std::printf("%s: %llu ops, seed %llu, full check every %llu\n",
              core::IndexKindName(kind),
              static_cast<unsigned long long>(config.ops),
              static_cast<unsigned long long>(config.seed),
              static_cast<unsigned long long>(config.check_every));

  for (uint64_t step = 0; step < config.ops; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.70 || live.empty()) {
      const Rect r = RandomShape(rng);
      if (auto st = index->Insert(r, next_tid); !st.ok()) {
        std::fprintf(stderr, "[op %llu] insert failed: %s\n",
                     static_cast<unsigned long long>(step),
                     st.ToString().c_str());
        return false;
      }
      oracle.Insert(r, next_tid);
      live.emplace_back(r, next_tid);
      ++next_tid;
    } else if (roll < 0.78 && can_delete) {
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, live.size() - 1));
      if (auto st = index->Delete(live[pick].first, live[pick].second);
          !st.ok()) {
        std::fprintf(stderr, "[op %llu] delete failed: %s\n",
                     static_cast<unsigned long long>(step),
                     st.ToString().c_str());
        return false;
      }
      oracle.Delete(live[pick].first, live[pick].second);
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      const Rect q = RandomQuery(rng);
      std::vector<TupleId> tids;
      if (auto st = index->SearchTuples(q, &tids); !st.ok()) {
        std::fprintf(stderr, "[op %llu] search failed: %s\n",
                     static_cast<unsigned long long>(step),
                     st.ToString().c_str());
        return false;
      }
      std::sort(tids.begin(), tids.end());
      if (tids != oracle.Search(q)) {
        std::fprintf(stderr,
                     "[op %llu] DIVERGENCE from oracle on query %s "
                     "(index %zu tuples, oracle %zu)\n",
                     static_cast<unsigned long long>(step),
                     q.ToString().c_str(), tids.size(),
                     oracle.Search(q).size());
        return false;
      }
    }

    if (config.check_every > 0 && (step + 1) % config.check_every == 0) {
      if (!RunChecker(index.get(), live, step)) return false;
      if (config.verbose) {
        std::printf("  op %llu: ok (%zu live records)\n",
                    static_cast<unsigned long long>(step), live.size());
      }
    }
  }

  if (auto st = index->Finalize(); !st.ok()) {
    std::fprintf(stderr, "finalize failed: %s\n", st.ToString().c_str());
    return false;
  }
  if (!RunChecker(index.get(), live, config.ops)) return false;
  std::printf("  clean: %zu live records (index reports %llu)\n", live.size(),
              static_cast<unsigned long long>(index->size()));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzConfig config;
  std::string kind_name = "all";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr,
                   "usage: segidx_fuzz [--kind=all|rtree|srtree|"
                   "skeleton-rtree|skeleton-srtree] [--ops=N] [--seed=S] "
                   "[--check-every=N] [--verbose=1]\n");
      return 2;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "kind") {
      kind_name = value;
    } else if (key == "ops") {
      config.ops = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "seed") {
      config.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "check-every") {
      config.check_every = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "verbose") {
      config.verbose = value != "0";
    } else {
      std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
      return 2;
    }
  }

  std::vector<IndexKind> kinds;
  if (kind_name == "all") {
    kinds = {IndexKind::kRTree, IndexKind::kSRTree, IndexKind::kSkeletonRTree,
             IndexKind::kSkeletonSRTree};
  } else if (kind_name == "rtree") {
    kinds = {IndexKind::kRTree};
  } else if (kind_name == "srtree") {
    kinds = {IndexKind::kSRTree};
  } else if (kind_name == "skeleton-rtree") {
    kinds = {IndexKind::kSkeletonRTree};
  } else if (kind_name == "skeleton-srtree") {
    kinds = {IndexKind::kSkeletonSRTree};
  } else {
    std::fprintf(stderr, "unknown kind: %s\n", kind_name.c_str());
    return 2;
  }

  for (const IndexKind kind : kinds) {
    if (!RunOne(kind, config)) return 1;
  }
  std::printf("all runs clean\n");
  return 0;
}
