#!/usr/bin/env python3
"""Concurrency lint for the segment-index source tree.

Machine-checks the parts of docs/CONCURRENCY.md that neither Clang's
thread-safety analysis nor the runtime lockdep validator can see, because
they are rules about *which code is allowed to say what* rather than about
runtime ordering:

  1. bare-gate:       PhaseGate::Enter/Exit called directly. All phase
                      membership goes through PhaseGate::Scope (RAII), so a
                      throw or early return can never strand a phase.
  2. latch-outside-tree: NodeLatchTable::Acquire called outside the tree
                      layers (src/rtree/, src/srtree/). Node latches are an
                      implementation detail of the descent protocols; no
                      other layer may take them.
  3. blocking-under-map-mu: a blocking call (Lock/Wait/Acquire/Enter) made
                      while NodeLatchTable::map_mu_ is held. map_mu_ is a
                      strict leaf: lookup/refcount only, never held across
                      anything that can block.
  4. raw-std-mutex:   std::mutex / std::condition_variable & friends used
                      outside the whitelist. Everything else must use
                      common::Mutex (annotated for Clang TSA) via
                      check::TrackedMutexLock (visible to lockdep);
                      a raw primitive is invisible to both checkers.

Pure Python 3 stdlib. Exit status 0 when clean, 1 with findings (one line
per finding: path:line: rule: message). Run via the `lint-concurrency`
CMake target or directly:  python3 tools/lint/check_concurrency.py [root]
"""

import os
import re
import sys

# Files allowed to use raw std synchronization primitives, relative to the
# repo root. Each entry carries its justification.
RAW_STD_WHITELIST = {
    # The annotated wrapper layer itself.
    "src/common/mutex.h",
    # The validator must not validate itself; its mutex is deliberately raw.
    "src/check/lock_order.cc",
    # Leaf I/O layer: MemoryBlockDevice's reader/writer shared_mutex nests
    # below everything and is never held across a call out of the file.
    "src/storage/block_device.h",
    "src/storage/block_device.cc",
    # Test-only fault injection; not part of the production lock hierarchy.
    "src/storage/fault_injection.h",
    "src/storage/fault_injection.cc",
    # Network-fault twin of fault_injection: a process-global leaf mutex
    # guarding the chaos PRNG, never held across a syscall or lock.
    "src/server/faulty_transport.cc",
}

# Only the tree layers may take node latches (rule 2).
LATCH_DIRS = ("src/rtree/", "src/srtree/")

# PhaseGate::Scope (and the gate implementation) live here (rule 1).
GATE_IMPL_FILES = {"src/rtree/latch.h", "src/rtree/latch.cc"}

RAW_STD_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)
BARE_GATE_RE = re.compile(
    r"(?:\bgate\w*(?:\(\))?|phase_gate\(\))[.\->]+(Enter|Exit)\s*\("
)
LATCH_ACQUIRE_RE = re.compile(
    r"\b(?:latch_table_?\w*(?:\(\))?|table)[.\->]+Acquire\s*\("
)
MAP_MU_ACQUIRE_RE = re.compile(r"TrackedMutexLock\s+\w+\([^)]*kLatchMap")
BLOCKING_RE = re.compile(
    r"(\.Lock\s*\(\)|->Lock\s*\(\)|\.Wait(Until)?\s*\(|\.Acquire\s*\(|"
    r"\.Enter\s*\(|commit_fn|fsync|pread|pwrite)"
)


def strip_comments(lines):
    """Blank out // and /* */ comment text, preserving line count/offsets."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            result.append(line[i])
            i += 1
        out.append("".join(result))
    return out


def lint_file(root, rel, findings):
    path = os.path.join(root, rel)
    with open(path, encoding="utf-8", errors="replace") as f:
        raw_lines = f.read().splitlines()
    lines = strip_comments(raw_lines)

    for lineno, line in enumerate(lines, start=1):
        if RAW_STD_RE.search(line) and rel not in RAW_STD_WHITELIST:
            findings.append(
                f"{rel}:{lineno}: raw-std-mutex: use common::Mutex + "
                f"check::TrackedMutexLock (or whitelist this file in "
                f"tools/lint/check_concurrency.py with a justification)"
            )
        if BARE_GATE_RE.search(line) and rel not in GATE_IMPL_FILES:
            findings.append(
                f"{rel}:{lineno}: bare-gate: call sites must hold phases "
                f"via PhaseGate::Scope, never Enter/Exit directly"
            )
        if LATCH_ACQUIRE_RE.search(line) and not rel.startswith(LATCH_DIRS):
            findings.append(
                f"{rel}:{lineno}: latch-outside-tree: NodeLatchTable::"
                f"Acquire is reserved to src/rtree/ and src/srtree/"
            )

    # Rule 3: within the lexical scope that holds map_mu_, nothing may
    # block. Track brace depth from the acquisition to the scope's end.
    depth = 0
    held_at = None  # Brace depth just before the acquiring statement.
    for lineno, line in enumerate(lines, start=1):
        if held_at is not None and depth >= held_at:
            blocking = BLOCKING_RE.search(line)
            if blocking and not MAP_MU_ACQUIRE_RE.search(line):
                findings.append(
                    f"{rel}:{lineno}: blocking-under-map-mu: "
                    f"'{blocking.group(0).strip()}' while "
                    f"NodeLatchTable::map_mu_ is held — map_mu_ is a leaf "
                    f"lock (docs/CONCURRENCY.md §3)"
                )
        if MAP_MU_ACQUIRE_RE.search(line):
            held_at = depth + 1 if "{" in line else depth
        depth += line.count("{") - line.count("}")
        if held_at is not None and depth < held_at:
            held_at = None


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    findings = []
    src_root = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cc")):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            rel = rel.replace(os.sep, "/")
            lint_file(root, rel, findings)
    for entry in sorted(RAW_STD_WHITELIST):
        if not os.path.exists(os.path.join(root, entry)):
            findings.append(
                f"{entry}:1: stale-whitelist: file no longer exists; prune "
                f"it from tools/lint/check_concurrency.py"
            )
    if findings:
        for finding in findings:
            print(finding)
        print(f"check_concurrency: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print("check_concurrency: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
