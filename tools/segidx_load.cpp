// Load generator for segidxd: mixed search/insert traffic over N client
// connections, reporting p50/p99 latency per operation type and aggregate
// throughput as JSON (BENCH_serving.json in CI).
//
//   segidx_load [--records=N] [--connections=N] [--duration-ms=N]
//               [--write-pct=0..100] [--budget-us=N] [--qar=F] [--seed=S]
//               [--threads=N] [--writers=N] [--commit-every=N]
//               [--chaos=0|1] [--reset-prob=F] [--delay-prob=F]
//               [--short-write-prob=F] [--host=ADDR --port=N]
//               [--out=JSON_PATH]
//
// By default the tool self-hosts: it builds an in-memory index preloaded
// with --records uniform intervals, starts a server::Server on a loopback
// ephemeral port, drives it, and tears it down — one process, no setup.
// With --host/--port it drives an already-running segidxd instead (the
// preload is skipped; whatever the server holds is queried as-is).
//
// Each connection thread runs its own blocking client: a coin per op
// picks insert (--write-pct) or search (square query covering --qar of
// the preload domain, carrying --budget-us as its deadline budget).
// Searches that the server answers kDeadlineExceeded / kResourceExhausted
// are counted, not failed: exercising admission control under load is the
// point. A final commit makes the inserted records durable before the
// server stops.
//
// --chaos=1 installs the process-global transport fault plan (connection
// resets, torn frames, randomized delays — tunable via the *-prob flags)
// and switches every worker to a RetryingClient with its own exactly-once
// session, so the numbers measure goodput under a hostile network rather
// than the first reset. Ops abandoned after the retry budget are counted
// (`gave_up`), not failed. Chaos only perturbs this process's own
// syscalls; with --host/--port it degrades the client side only.
//
// Exit codes: 0 success, 1 hard failure (connection error, unexpected
// status), 2 usage error.

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/interval_index.h"
#include "server/client.h"
#include "server/faulty_transport.h"
#include "server/retrying_client.h"
#include "server/server.h"

namespace {

using namespace segidx;
using core::IntervalIndex;

int Usage() {
  std::fprintf(
      stderr,
      "usage: segidx_load [--records=N] [--connections=N] "
      "[--duration-ms=N]\n"
      "                   [--write-pct=0..100] [--budget-us=N] [--qar=F]\n"
      "                   [--seed=S] [--threads=N] [--writers=N]\n"
      "                   [--commit-every=N] [--chaos=0|1] "
      "[--reset-prob=F]\n"
      "                   [--delay-prob=F] [--short-write-prob=F]\n"
      "                   [--host=ADDR --port=N] [--out=JSON_PATH]\n");
  return 2;
}

struct Flags {
  uint64_t records = 20000;
  int connections = 4;
  uint64_t duration_ms = 2000;
  uint64_t write_pct = 20;
  uint64_t budget_us = 0;
  double qar = 0.001;
  uint64_t seed = 42;
  int threads = 4;       // Server-side search workers (self-host).
  int writers = 2;       // Server-side write workers (self-host).
  uint64_t commit_every = 256;
  bool chaos = false;
  double reset_prob = 0.02;        // Chaos-mode transport fault plan.
  double delay_prob = 0.05;
  double short_write_prob = 0.01;
  std::string host = "127.0.0.1";
  std::optional<uint64_t> port;  // Set = drive an external server.
  std::optional<std::string> out;
};

bool ParseU64Value(const std::string& text, uint64_t* out) {
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

// nullopt (after printing the offending flag) on any malformed value.
std::optional<Flags> ParseFlags(int argc, char** argv) {
  Flags flags;
  auto fail = [](const std::string& key,
                 const std::string& value) -> std::optional<Flags> {
    std::fprintf(stderr, "--%s: bad value '%s'\n", key.c_str(),
                 value.c_str());
    return std::nullopt;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return std::nullopt;
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    uint64_t u = 0;
    if (key == "host") {
      flags.host = value;
    } else if (key == "out") {
      flags.out = value;
    } else if (key == "qar" || key == "reset-prob" || key == "delay-prob" ||
               key == "short-write-prob") {
      char* end = nullptr;
      errno = 0;
      const double d = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
        return fail(key, value);
      }
      if (key == "qar") {
        if (d <= 0) return fail(key, value);
        flags.qar = d;
      } else if (d < 0 || d > 1) {
        return fail(key, value);
      } else if (key == "reset-prob") {
        flags.reset_prob = d;
      } else if (key == "delay-prob") {
        flags.delay_prob = d;
      } else {
        flags.short_write_prob = d;
      }
    } else if (!ParseU64Value(value, &u)) {
      return fail(key, value);
    } else if (key == "records") {
      flags.records = u;
    } else if (key == "connections") {
      if (u == 0) return fail(key, value);
      flags.connections = static_cast<int>(u);
    } else if (key == "duration-ms") {
      if (u == 0) return fail(key, value);
      flags.duration_ms = u;
    } else if (key == "write-pct") {
      if (u > 100) return fail(key, value);
      flags.write_pct = u;
    } else if (key == "budget-us") {
      flags.budget_us = u;
    } else if (key == "seed") {
      flags.seed = u;
    } else if (key == "threads") {
      if (u == 0) return fail(key, value);
      flags.threads = static_cast<int>(u);
    } else if (key == "writers") {
      if (u == 0) return fail(key, value);
      flags.writers = static_cast<int>(u);
    } else if (key == "commit-every") {
      flags.commit_every = u;
    } else if (key == "chaos") {
      if (u > 1) return fail(key, value);
      flags.chaos = (u == 1);
    } else if (key == "port") {
      if (u > 65535) return fail(key, value);
      flags.port = u;
    } else {
      std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
      return std::nullopt;
    }
  }
  return flags;
}

constexpr double kDomain = 100000.0;

Rect RandomInterval(Rng* rng) {
  const double s = rng->Uniform(0.0, kDomain);
  return Rect(Interval(s, s + rng->Uniform(1.0, 200.0)),
              Interval::Point(rng->Uniform(0.0, kDomain)));
}

struct ThreadResult {
  std::vector<double> search_us;
  std::vector<double> insert_us;
  uint64_t deadline_exceeded = 0;
  uint64_t shed = 0;
  uint64_t unavailable = 0;
  uint64_t hits = 0;
  uint64_t gave_up = 0;     // Chaos: retry budget exhausted, op abandoned.
  uint64_t reconnects = 0;  // Chaos: successful reconnects.
  uint64_t retries = 0;     // Chaos: attempts beyond each op's first.
  std::string error;  // First hard failure; empty = clean.
};

// Codes a RetryingClient keeps retrying; seeing one back means the retry
// budget ran out mid-fault, which chaos mode counts rather than fails.
bool RetryBudgetCode(StatusCode code) {
  switch (code) {
    case StatusCode::kIoError:
    case StatusCode::kCorruption:
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
      return true;
    default:
      return false;
  }
}

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0;
  std::sort(values->begin(), values->end());
  const size_t idx =
      static_cast<size_t>(p * (static_cast<double>(values->size()) - 1) +
                          0.5);
  return (*values)[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv);
  if (!flags) return Usage();

  // Self-hosted server (unless --port points at an external one).
  std::unique_ptr<IntervalIndex> index;
  std::unique_ptr<server::Server> srv;
  uint16_t port = 0;
  if (flags->port.has_value()) {
    port = static_cast<uint16_t>(*flags->port);
  } else {
    auto created = IntervalIndex::CreateInMemory(core::IndexKind::kRTree,
                                                 core::IndexOptions());
    if (!created.ok()) {
      std::fprintf(stderr, "create failed: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    index = std::move(created).value();
    Rng rng(flags->seed);
    std::vector<std::pair<Rect, TupleId>> preload;
    preload.reserve(flags->records);
    for (uint64_t i = 0; i < flags->records; ++i) {
      preload.emplace_back(RandomInterval(&rng),
                           static_cast<TupleId>(i + 1));
    }
    if (auto st = index->BulkLoad(std::move(preload)); !st.ok()) {
      std::fprintf(stderr, "bulk load failed: %s\n", st.ToString().c_str());
      return 1;
    }
    server::ServerOptions sopts;
    sopts.search_threads = flags->threads;
    sopts.write_threads = flags->writers;
    sopts.commit_every = flags->commit_every;
    srv = std::make_unique<server::Server>(index.get(), sopts);
    if (auto st = srv->Start(); !st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    port = srv->port();
  }

  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(flags->duration_ms);
  const double side = std::sqrt(flags->qar) * kDomain;

  if (flags->chaos) {
    server::transport::FaultPlan plan;
    plan.reset_prob = flags->reset_prob;
    plan.delay_prob = flags->delay_prob;
    plan.short_write_prob = flags->short_write_prob;
    plan.seed = flags->seed;
    server::transport::InstallFaultPlan(plan);
  }

  std::vector<ThreadResult> results(
      static_cast<size_t>(flags->connections));
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (int t = 0; t < flags->connections; ++t) {
    threads.emplace_back([&, t] {
      ThreadResult& res = results[static_cast<size_t>(t)];
      // Chaos mode drives a RetryingClient (per-thread exactly-once
      // session) instead of a bare Client, so injected resets and torn
      // frames cost retries, not the run.
      std::unique_ptr<server::Client> client;
      std::unique_ptr<server::RetryingClient> rclient;
      if (flags->chaos) {
        server::RetryPolicy policy;
        policy.max_attempts = 6;
        policy.total_deadline_ms = 10000;
        policy.seed = flags->seed + static_cast<uint64_t>(t);
        rclient = std::make_unique<server::RetryingClient>(
            flags->host, port, /*session_id=*/static_cast<uint64_t>(t) + 1,
            policy);
        if (Status st = rclient->Ping(); !st.ok()) {
          res.error = "connect: " + st.ToString();
          return;
        }
      } else {
        auto connected = server::Client::Connect(flags->host, port);
        if (!connected.ok()) {
          res.error = connected.status().ToString();
          return;
        }
        client = std::move(connected).value();
      }
      Rng rng(flags->seed + 1000003ull * static_cast<uint64_t>(t + 1));
      // Tuple ids for inserted records: disjoint per thread, above the
      // preload range.
      TupleId next_tid = 1000000000ull +
                         1000000ull * static_cast<uint64_t>(t);
      while (Clock::now() < deadline) {
        const bool is_write =
            rng.Uniform(0.0, 100.0) < static_cast<double>(flags->write_pct);
        const auto t0 = Clock::now();
        if (is_write) {
          const Rect rect = RandomInterval(&rng);
          const Status st = rclient ? rclient->Insert(rect, next_tid++)
                                    : client->Insert(rect, next_tid++);
          const double us =
              std::chrono::duration<double, std::micro>(Clock::now() - t0)
                  .count();
          if (st.ok()) {
            res.insert_us.push_back(us);
          } else if (rclient && RetryBudgetCode(st.code())) {
            ++res.gave_up;  // Abandoned mid-fault; the seq stays burned.
          } else {
            res.error = "insert: " + st.ToString();
            return;
          }
        } else {
          const double x = rng.Uniform(0.0, kDomain - side);
          const double y = rng.Uniform(0.0, kDomain - side);
          const Rect q(x, x + side, y, y + side);
          server::SearchReply reply;
          const Status st =
              rclient ? rclient->Search(q, &reply, flags->budget_us,
                                        /*allow_partial=*/true)
                      : client->Search(q, &reply, flags->budget_us,
                                       /*allow_partial=*/true);
          const double us =
              std::chrono::duration<double, std::micro>(Clock::now() - t0)
                  .count();
          if (st.ok()) {
            res.search_us.push_back(us);
            res.hits += reply.hits.size();
          } else if (rclient && RetryBudgetCode(st.code())) {
            ++res.gave_up;  // Retried through the faults, then abandoned.
          } else if (st.code() == StatusCode::kDeadlineExceeded) {
            ++res.deadline_exceeded;  // Admission control doing its job.
          } else if (st.code() == StatusCode::kResourceExhausted) {
            ++res.shed;
          } else if (st.code() == StatusCode::kUnavailable) {
            ++res.unavailable;
          } else {
            res.error = "search: " + st.ToString();
            return;
          }
        }
      }
      // Make this thread's inserts durable before disconnecting.
      const Status st = rclient ? rclient->Commit() : client->Commit();
      if (!st.ok()) {
        if (rclient && RetryBudgetCode(st.code())) {
          ++res.gave_up;
        } else {
          res.error = "commit: " + st.ToString();
        }
      }
      if (rclient) {
        res.reconnects = rclient->reconnects();
        res.retries = rclient->retries();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Faults stop at the workload's edge: the stats connection below and
  // the server teardown run on a reliable transport.
  uint64_t faults_injected = 0;
  if (flags->chaos) {
    faults_injected = server::transport::FaultsInjected();
    server::transport::ClearFaultPlan();
  }

  // Capture the server's own counters: directly when self-hosting, over
  // the wire when driving an external server.
  std::string server_stats = "{}";
  if (srv != nullptr) {
    server_stats = srv->BuildStatsJson();
    srv->Stop();
  } else if (auto c = server::Client::Connect(flags->host, port); c.ok()) {
    if (auto stats = (*c)->Stats(); stats.ok()) {
      server_stats = std::move(stats).value();
    }
  }

  std::vector<double> search_us, insert_us;
  uint64_t deadline_exceeded = 0, shed = 0, unavailable = 0, hits = 0;
  uint64_t gave_up = 0, reconnects = 0, retries = 0;
  for (const ThreadResult& res : results) {
    if (!res.error.empty()) {
      std::fprintf(stderr, "worker failed: %s\n", res.error.c_str());
      return 1;
    }
    search_us.insert(search_us.end(), res.search_us.begin(),
                     res.search_us.end());
    insert_us.insert(insert_us.end(), res.insert_us.begin(),
                     res.insert_us.end());
    deadline_exceeded += res.deadline_exceeded;
    shed += res.shed;
    unavailable += res.unavailable;
    hits += res.hits;
    gave_up += res.gave_up;
    reconnects += res.reconnects;
    retries += res.retries;
  }
  const double secs = static_cast<double>(flags->duration_ms) / 1000.0;
  const uint64_t total_ops = search_us.size() + insert_us.size();

  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\": \"serving\", \"records\": %llu, \"connections\": %d, "
      "\"duration_ms\": %llu, \"write_pct\": %llu, \"budget_us\": %llu, "
      "\"qar\": %g, "
      "\"search\": {\"count\": %zu, \"p50_us\": %.1f, \"p99_us\": %.1f, "
      "\"hits\": %llu, \"deadline_exceeded\": %llu, \"shed\": %llu, "
      "\"unavailable\": %llu}, "
      "\"insert\": {\"count\": %zu, \"p50_us\": %.1f, \"p99_us\": %.1f}, "
      "\"ops_per_sec\": %.0f, ",
      static_cast<unsigned long long>(flags->records), flags->connections,
      static_cast<unsigned long long>(flags->duration_ms),
      static_cast<unsigned long long>(flags->write_pct),
      static_cast<unsigned long long>(flags->budget_us), flags->qar,
      search_us.size(), Percentile(&search_us, 0.50),
      Percentile(&search_us, 0.99), static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(unavailable), insert_us.size(),
      Percentile(&insert_us, 0.50), Percentile(&insert_us, 0.99),
      static_cast<double>(total_ops) / secs);
  std::string json = buf;
  if (flags->chaos) {
    char chaos_buf[256];
    std::snprintf(
        chaos_buf, sizeof(chaos_buf),
        "\"chaos\": {\"faults_injected\": %llu, \"reconnects\": %llu, "
        "\"retries\": %llu, \"gave_up\": %llu}, ",
        static_cast<unsigned long long>(faults_injected),
        static_cast<unsigned long long>(reconnects),
        static_cast<unsigned long long>(retries),
        static_cast<unsigned long long>(gave_up));
    json += chaos_buf;
  }
  json += "\"server\": " + server_stats + "}\n";
  std::fputs(json.c_str(), stdout);
  if (flags->out.has_value()) {
    std::ofstream f(*flags->out);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", flags->out->c_str());
      return 1;
    }
    f << json;
  }
  return 0;
}
