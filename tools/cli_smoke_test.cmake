# Smoke test for CLI flag hardening: malformed numeric flag values must
# exit 1 with a message naming the flag — never abort (an uncaught
# std::invalid_argument from std::stoull shows up here as a signal exit,
# which fails the EQUAL check). Usage errors (no/unknown command) stay
# exit 2.
#
# Run via: cmake -DSEGIDX_BIN=<path to segidx> -P cli_smoke_test.cmake

if(NOT DEFINED SEGIDX_BIN)
  message(FATAL_ERROR "pass -DSEGIDX_BIN=<path to the segidx binary>")
endif()

function(expect_exit expected_code pattern)
  execute_process(COMMAND ${SEGIDX_BIN} ${ARGN}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL expected_code)
    message(FATAL_ERROR
            "segidx ${ARGN}: exit '${code}', want ${expected_code}\n"
            "stderr: ${err}")
  endif()
  if(NOT pattern STREQUAL "" AND NOT err MATCHES "${pattern}")
    message(FATAL_ERROR
            "segidx ${ARGN}: stderr does not match '${pattern}'\n"
            "stderr: ${err}")
  endif()
endfunction()

# Usage errors: exit 2.
expect_exit(2 "usage:")
expect_exit(2 "usage:" frobnicate)

# Malformed numeric flag values: exit 1, message names the flag. None of
# these reach the filesystem — flags are validated before any file is
# opened or created.
expect_exit(1 "--records: expected a positive integer"
            bench-mixed --records=abc)
expect_exit(1 "--records: expected a positive integer"
            bench-mixed --records=-5)
expect_exit(1 "--records: expected a positive integer"
            torture --records=0 --quiet=1)
expect_exit(1 "--threads: expected a positive integer"
            bench-resilience --threads=0)
expect_exit(1 "--expected: expected a non-negative integer"
            create --file=cli_smoke_unwritten.idx --kind=rtree
            --expected=12x)
expect_exit(1 "--domain: want xlo:xhi:ylo:yhi"
            create --file=cli_smoke_unwritten.idx --kind=rtree
            --domain=1:2:3)
expect_exit(1 "--limit: expected a non-negative integer"
            query --file=cli_smoke_missing.idx --rect=0:1:0:1 --limit=xyz)
expect_exit(1 "--qar: expected a positive number"
            bench-parallel --file=cli_smoke_missing.idx --qar=zz)
expect_exit(1 "--threads: expected positive integers"
            bench-parallel --file=cli_smoke_missing.idx --threads=2,x)
expect_exit(1 "not a TCP port"
            serve --file=cli_smoke_missing.idx --port=99999)
expect_exit(1 "--queue-depth: expected a positive integer"
            serve --file=cli_smoke_missing.idx --queue-depth=0)

message(STATUS "cli flag smoke: all malformed values rejected cleanly")
