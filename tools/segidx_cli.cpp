// segidx command-line tool: create, load, query, and inspect index files.
//
//   segidx create --file=idx --kind=skeleton-srtree [--expected=N]
//                 [--domain=xlo:xhi:ylo:yhi] [--sample=N]
//   segidx insert --file=idx [--input=data.csv]
//       CSV rows: tid,xlo,xhi[,ylo,yhi]   (2 coords = 1-D interval at y=0)
//   segidx query  --file=idx --rect=xlo:xhi:ylo:yhi [--limit=N]
//   segidx stats  --file=idx [--dump=DEPTH]
//   segidx verify --file=idx
//   segidx check  --file=idx [--min-fill=1] [--tight=1] [--strict=1]
//                 [--no-quota=1] [--no-pages=1] [--max-violations=N]
//   segidx bench-parallel --file=idx [--queries=N] [--qar=F]
//                 [--threads=1,2,4,8] [--seed=S]
//   segidx scrub  --file=idx [--rate=EXTENTS_PER_SEC] [--no-quarantine=1]
//   segidx salvage --file=damaged --out=new [--kind=rtree|srtree]
//   segidx bench-resilience [--records=N] [--queries=N] [--repeats=N]
//                 [--threads=N] [--delay-us=N] [--deadline-us=N]
//                 [--pool=BYTES] [--seed=S] [--out=JSON_PATH]
//   segidx bench-mixed [--records=N] [--readers=N] [--commit-every=N]
//                 [--seed=S] [--out=JSON_PATH]
//   segidx torture [--mode=crash|scrub] [--kind=srtree] [--records=N]
//                 [--checkpoint-every=N] [--tear=BYTES] [--max-points=N]
//                 [--rounds=N] [--corrupt=N] [--seed=S] [--pool=BYTES]
//                 [--quiet=1]
//   segidx serve  --file=idx [--port=N] [--host=ADDR] [--threads=N]
//                 [--writers=N] [--max-batch=N] [--queue-depth=N]
//                 [--max-inflight=N] [--commit-every=N] [--budget-us=N]
//                 [--scrub-interval-ms=N] [--scrub-rate=N]
//
// `verify` stops at the first violation; `check` runs the full
// StructureChecker walk and prints every violation plus walk statistics.
// `bench-parallel` runs a batch of random square queries (query area ratio
// `qar` of the root region) serially, then through the parallel
// QueryEngine at each thread count, checking result sets stay identical
// and reporting throughput.
// `scrub` CRC-verifies every reachable node page plus the superblock slots
// and free extents (exit 1 when defects are found); `salvage` scavenges
// every decodable record out of a damaged file into a fresh index at
// --out. `bench-resilience` measures batch query latency with and without
// per-batch deadlines under injected slow reads (in memory) and emits a
// JSON summary. `torture` runs the crash-recovery sweep (--mode=crash,
// default) or the content-corruption scrub/salvage sweep (--mode=scrub);
// both run in memory, no --file.
//
// Every command that opens an index file prints the pager's recovery
// report to stderr (slot fallbacks and journal replays are operator
// signals).
//
// Exit codes: 0 success, 1 runtime error / violations found, 2 usage error.

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/interval_index.h"
#include "exec/write_pool.h"
#include "core/salvage.h"
#include "server/server.h"
#include "storage/fault_injection.h"
#include "torture/recovery_torture.h"
#include "torture/scrub_torture.h"
#include "torture/serve_torture.h"

namespace {

using namespace segidx;
using core::IndexKind;
using core::IndexOptions;
using core::IntervalIndex;

int Usage() {
  std::fprintf(
      stderr,
      "usage: segidx "
      "<create|insert|query|stats|verify|check|bench-parallel> --file=PATH "
      "...\n"
      "  create: --kind=rtree|srtree|skeleton-rtree|skeleton-srtree\n"
      "          [--expected=N] [--sample=N] [--domain=xlo:xhi:ylo:yhi]\n"
      "  insert: [--input=CSV]  rows: tid,xlo,xhi[,ylo,yhi]\n"
      "  query:  --rect=xlo:xhi:ylo:yhi [--limit=N]\n"
      "  stats:  [--dump=DEPTH]  (print tree structure to DEPTH levels)\n"
      "  verify: quick check, stops at the first violation\n"
      "  check:  full structural report  [--min-fill=1] [--tight=1]\n"
      "          [--strict=1] [--no-quota=1] [--no-pages=1]\n"
      "          [--max-violations=N]\n"
      "  bench-parallel: [--queries=N] [--qar=F] [--threads=1,2,4,8]\n"
      "          [--seed=S]\n"
      "  scrub:  verify every extent  [--rate=EXTENTS_PER_SEC]\n"
      "          [--no-quarantine=1]\n"
      "  salvage: rebuild from a damaged file  --out=NEW_PATH\n"
      "          [--kind=rtree|srtree]\n"
      "  bench-resilience: deadline latency bench (no --file; in memory)\n"
      "          [--records=N] [--queries=N] [--repeats=N] [--threads=N]\n"
      "          [--delay-us=N] [--deadline-us=N] [--pool=BYTES] [--seed=S]\n"
      "          [--out=JSON_PATH]\n"
      "  bench-mixed: concurrent writer/reader throughput (no --file)\n"
      "          [--records=N] [--readers=N] [--commit-every=N] [--seed=S]\n"
      "          [--out=JSON_PATH]\n"
      "  torture: fault sweeps (no --file; runs in memory)\n"
      "          --mode=crash (default): [--kind=srtree] [--records=N]\n"
      "          [--checkpoint-every=N] [--tear=BYTES] [--max-points=N]\n"
      "          --mode=scrub: [--kind=srtree] [--records=N] [--rounds=N]\n"
      "          [--corrupt=N]\n"
      "          --mode=serve: end-to-end serving chaos (network faults +\n"
      "          server crash/restart; exactly-once oracle)\n"
      "          [--kind=rtree|srtree] [--writers=N] [--readers=N]\n"
      "          [--ops=N] [--chaos-rounds=N] [--crash-rounds=N]\n"
      "          [--crashes=N] [--reset-prob=F] [--delay-prob=F]\n"
      "          [--short-write-prob=F] [--commit-every=N]\n"
      "          [--deadline-ms=N]\n"
      "          common: [--seed=S] [--pool=BYTES] [--quiet=1]\n"
      "  serve:  socket server (segidxd); stop with SIGINT/SIGTERM\n"
      "          [--port=N] [--host=ADDR] [--threads=N] [--writers=N]\n"
      "          [--max-batch=N] [--queue-depth=N] [--max-inflight=N]\n"
      "          [--commit-every=N] [--budget-us=N]\n"
      "          [--scrub-interval-ms=N] [--scrub-rate=N]\n");
  return 2;
}

// Simple --key=value argument map.
struct Args {
  std::string command;
  std::vector<std::pair<std::string, std::string>> kv;

  std::optional<std::string> Get(const std::string& key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return v;
    }
    return std::nullopt;
  }
};

std::optional<Args> Parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return std::nullopt;
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) return std::nullopt;
    args.kv.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
  }
  return args;
}

std::optional<IndexKind> ParseKind(const std::string& name) {
  if (name == "rtree") return IndexKind::kRTree;
  if (name == "srtree") return IndexKind::kSRTree;
  if (name == "skeleton-rtree") return IndexKind::kSkeletonRTree;
  if (name == "skeleton-srtree") return IndexKind::kSkeletonSRTree;
  return std::nullopt;
}

// Parses "a:b:c:d" into exactly `n` doubles.
std::optional<std::vector<double>> ParseColons(const std::string& text,
                                               size_t n) {
  std::vector<double> out;
  std::stringstream ss(text);
  std::string piece;
  while (std::getline(ss, piece, ':')) {
    char* end = nullptr;
    const double v = std::strtod(piece.c_str(), &end);
    if (end == piece.c_str() || *end != '\0') return std::nullopt;
    out.push_back(v);
  }
  if (out.size() != n) return std::nullopt;
  return out;
}

// Strict numeric value parsers: the whole string must be one number, no
// trailing garbage, no overflow. std::stoull and friends would throw (and,
// uncaught, abort the process) on input like --records=abc; a typo in a
// flag is a user error, not a crash.
bool ParseU64Value(const std::string& text, uint64_t* out) {
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool ParseF64Value(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

// Flag readers. Absent flags leave *out at its default and succeed;
// present-but-malformed values print what was rejected and return false,
// which callers turn into exit code 1 (the convention the bench-parallel
// --threads guard established). All integer flags in this CLI are counts
// or sizes, so negatives are always rejected; `require_positive`
// additionally rejects zero (e.g. --threads=0 would spin up no workers).
bool GetU64(const Args& args, const char* key, uint64_t* out,
            bool require_positive = false) {
  const auto v = args.Get(key);
  if (!v) return true;
  uint64_t parsed = 0;
  if (!ParseU64Value(*v, &parsed) || (require_positive && parsed == 0)) {
    std::fprintf(stderr, "--%s: expected a %s integer, got '%s'\n", key,
                 require_positive ? "positive" : "non-negative", v->c_str());
    return false;
  }
  *out = parsed;
  return true;
}

bool GetSize(const Args& args, const char* key, size_t* out,
             bool require_positive = false) {
  uint64_t v = *out;
  if (!GetU64(args, key, &v, require_positive)) return false;
  *out = static_cast<size_t>(v);
  return true;
}

bool GetI32(const Args& args, const char* key, int* out,
            bool require_positive = false) {
  uint64_t v = static_cast<uint64_t>(*out);
  if (!GetU64(args, key, &v, require_positive)) return false;
  if (v > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    std::fprintf(stderr, "--%s: value %llu out of range\n", key,
                 static_cast<unsigned long long>(v));
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool GetF64(const Args& args, const char* key, double* out,
            bool require_positive = false) {
  const auto v = args.Get(key);
  if (!v) return true;
  double parsed = 0;
  if (!ParseF64Value(*v, &parsed) || (require_positive && parsed <= 0)) {
    std::fprintf(stderr, "--%s: expected a %snumber, got '%s'\n", key,
                 require_positive ? "positive " : "", v->c_str());
    return false;
  }
  *out = parsed;
  return true;
}

// Index options from flags. nullopt (after printing the offending flag)
// when a value does not parse — including a malformed --domain, which used
// to be dropped silently.
std::optional<IndexOptions> OptionsFrom(const Args& args) {
  IndexOptions options;
  if (!GetU64(args, "expected", &options.skeleton.expected_tuples) ||
      !GetU64(args, "sample", &options.skeleton.prediction_sample)) {
    return std::nullopt;
  }
  if (auto domain = args.Get("domain")) {
    const auto v = ParseColons(*domain, 4);
    if (!v) {
      std::fprintf(stderr, "--domain: want xlo:xhi:ylo:yhi, got '%s'\n",
                   domain->c_str());
      return std::nullopt;
    }
    options.skeleton.x_domain = Interval((*v)[0], (*v)[1]);
    options.skeleton.y_domain = Interval((*v)[2], (*v)[3]);
  }
  return options;
}

// Opens an index file and surfaces the pager's recovery report on stderr —
// a slot fallback or journal replay is an operator signal even when the
// command itself succeeds.
Result<std::unique_ptr<IntervalIndex>> OpenIndex(const Args& args,
                                                 const std::string& file) {
  const auto options = OptionsFrom(args);
  if (!options) return InvalidArgumentError("bad flag value");
  auto opened = IntervalIndex::OpenFromDisk(file, *options);
  if (opened.ok()) {
    const storage::RecoveryReport& rec =
        (*opened)->pager()->recovery_report();
    std::string line =
        "recovery: format v" + std::to_string(rec.format_version);
    if (rec.active_slot >= 0) {
      line += ", slot " + std::to_string(rec.active_slot);
    }
    line += ", epoch " + std::to_string(rec.epoch);
    if (rec.fell_back) line += ", FELL BACK to the older superblock slot";
    if (rec.journal_replayed) {
      line += ", replayed " + std::to_string(rec.journal_entries) +
              " journal entries (" + std::to_string(rec.pages_salvaged) +
              " page images)";
    }
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  return opened;
}

int CmdCreate(const Args& args, const std::string& file) {
  const auto kind_name = args.Get("kind");
  if (!kind_name) return Usage();
  const auto kind = ParseKind(*kind_name);
  if (!kind) {
    std::fprintf(stderr, "unknown kind: %s\n", kind_name->c_str());
    return 2;
  }
  const auto options = OptionsFrom(args);
  if (!options) return 1;
  auto index = IntervalIndex::CreateOnDisk(*kind, file, *options);
  if (!index.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  if (auto st = (*index)->Flush(); !st.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("created %s index at %s\n", IndexKindName(*kind),
              file.c_str());
  return 0;
}

int CmdInsert(const Args& args, const std::string& file) {
  auto opened = OpenIndex(args, file);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto index = std::move(opened).value();

  std::ifstream file_input;
  if (auto input = args.Get("input")) {
    file_input.open(*input);
    if (!file_input) {
      std::fprintf(stderr, "cannot open %s\n", input->c_str());
      return 1;
    }
  }
  std::istream& in = file_input.is_open() ? file_input : std::cin;

  uint64_t inserted = 0;
  uint64_t line_number = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string piece;
    std::vector<std::string> fields;
    while (std::getline(ss, piece, ',')) fields.push_back(piece);
    if (fields.size() != 3 && fields.size() != 5) {
      std::fprintf(stderr, "line %llu: expected 3 or 5 fields\n",
                   static_cast<unsigned long long>(line_number));
      return 1;
    }
    const TupleId tid = std::strtoull(fields[0].c_str(), nullptr, 10);
    const double xlo = std::strtod(fields[1].c_str(), nullptr);
    const double xhi = std::strtod(fields[2].c_str(), nullptr);
    Rect rect = fields.size() == 3
                    ? Rect::Segment1D(xlo, xhi)
                    : Rect(xlo, xhi, std::strtod(fields[3].c_str(), nullptr),
                           std::strtod(fields[4].c_str(), nullptr));
    if (auto st = index->Insert(rect, tid); !st.ok()) {
      std::fprintf(stderr, "line %llu: insert failed: %s\n",
                   static_cast<unsigned long long>(line_number),
                   st.ToString().c_str());
      return 1;
    }
    ++inserted;
  }
  if (auto st = index->Flush(); !st.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("inserted %llu records (index now holds %llu)\n",
              static_cast<unsigned long long>(inserted),
              static_cast<unsigned long long>(index->size()));
  return 0;
}

int CmdQuery(const Args& args, const std::string& file) {
  const auto rect_arg = args.Get("rect");
  if (!rect_arg) return Usage();
  const auto coords = ParseColons(*rect_arg, 4);
  if (!coords) {
    std::fprintf(stderr, "bad --rect (want xlo:xhi:ylo:yhi)\n");
    return 2;
  }
  const Rect query((*coords)[0], (*coords)[1], (*coords)[2], (*coords)[3]);
  if (!query.valid()) {
    std::fprintf(stderr, "invalid query rectangle\n");
    return 2;
  }
  size_t limit = 20;
  if (!GetSize(args, "limit", &limit)) return 1;

  auto opened = OpenIndex(args, file);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto index = std::move(opened).value();

  std::vector<rtree::SearchHit> hits;
  uint64_t nodes = 0;
  if (auto st = index->Search(query, &hits, &nodes); !st.ok()) {
    std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::vector<TupleId> tids;
  (void)index->SearchTuples(query, &tids);
  std::printf("%zu records (%zu stored pieces), %llu index nodes accessed\n",
              tids.size(), hits.size(),
              static_cast<unsigned long long>(nodes));
  for (size_t i = 0; i < hits.size() && i < limit; ++i) {
    std::printf("  tid=%llu rect=%s\n",
                static_cast<unsigned long long>(hits[i].tid),
                hits[i].rect.ToString().c_str());
  }
  if (hits.size() > limit) {
    std::printf("  ... (%zu more; raise --limit)\n", hits.size() - limit);
  }
  return 0;
}

int CmdStats(const Args& args, const std::string& file) {
  auto opened = OpenIndex(args, file);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto index = std::move(opened).value();
  std::printf("kind:    %s\n", IndexKindName(index->kind()));
  std::printf("records: %llu\n",
              static_cast<unsigned long long>(index->size()));
  std::printf("height:  %d\n", index->height());
  std::printf("bytes:   %llu\n",
              static_cast<unsigned long long>(index->index_bytes()));
  if (args.Get("dump")) {
    int depth = 0;
    if (!GetI32(args, "dump", &depth)) return 1;
    return index->tree()->DumpStructure(std::cout, depth).ok() ? 0 : 1;
  }
  auto stats = index->tree()->CollectLevelStats();
  if (stats.ok()) {
    for (size_t level = 0; level < stats->size(); ++level) {
      const auto& s = (*stats)[level];
      std::printf(
          "level %zu: %llu nodes, %llu entries, %llu spanning, "
          "avg region %.0fx%.0f\n",
          level, static_cast<unsigned long long>(s.nodes),
          static_cast<unsigned long long>(s.branch_entries),
          static_cast<unsigned long long>(s.spanning_entries),
          s.avg_region_width, s.avg_region_height);
    }
  }
  const rtree::LatchStats latch = index->tree()->latch_stats();
  static const char* const kModeNames[3] = {"read", "write", "exclusive"};
  for (int m = 0; m < 3; ++m) {
    std::printf("gate %-9s %llu enters, %llu blocked, %llu us waiting\n",
                kModeNames[m],
                static_cast<unsigned long long>(latch.gate_enters[m]),
                static_cast<unsigned long long>(latch.gate_blocked[m]),
                static_cast<unsigned long long>(latch.gate_wait_us[m]));
  }
  std::printf("node latch:     %llu acquires, %llu blocked, %llu us waiting\n",
              static_cast<unsigned long long>(latch.latch_acquires),
              static_cast<unsigned long long>(latch.latch_blocked),
              static_cast<unsigned long long>(latch.latch_wait_us));
  return 0;
}

int CmdVerify(const Args& args, const std::string& file) {
  auto opened = OpenIndex(args, file);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  const Status st = (*opened)->CheckInvariants();
  if (!st.ok()) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("ok: all structural invariants hold\n");
  return 0;
}

int CmdCheck(const Args& args, const std::string& file) {
  auto opened = OpenIndex(args, file);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  check::CheckOptions options;
  auto flag = [&args](const char* key) {
    const auto v = args.Get(key);
    return v.has_value() && *v != "0";
  };
  options.expect_min_fill = flag("min-fill");
  options.check_mbr_tightness = flag("tight");
  options.strict_spanning_placement = flag("strict");
  options.check_spanning_quota = !flag("no-quota");
  options.check_page_accounting = !flag("no-pages");
  if (!GetSize(args, "max-violations", &options.max_violations)) return 1;

  auto report = (*opened)->CheckStructure(options);
  if (!report.ok()) {
    std::fprintf(stderr, "check failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::fputs(report->ToString().c_str(), stdout);
  return report->ok() ? 0 : 1;
}

int CmdBenchParallel(const Args& args, const std::string& file) {
  size_t num_queries = 1000;
  double qar = 0.01;
  uint64_t seed = 42;
  std::vector<int> thread_counts = {1, 2, 4, 8};
  if (!GetSize(args, "queries", &num_queries, /*require_positive=*/true) ||
      !GetF64(args, "qar", &qar, /*require_positive=*/true) ||
      !GetU64(args, "seed", &seed)) {
    return 1;
  }
  if (auto v = args.Get("threads")) {
    thread_counts.clear();
    std::stringstream ss(*v);
    std::string piece;
    while (std::getline(ss, piece, ',')) {
      int n = 0;
      try {
        n = std::stoi(piece);
      } catch (const std::exception&) {
        n = 0;
      }
      if (n < 1) {
        std::fprintf(stderr, "--threads: expected positive integers, got '%s'\n",
                     piece.c_str());
        return 1;
      }
      thread_counts.push_back(n);
    }
    if (thread_counts.empty()) return Usage();
  }

  auto opened = OpenIndex(args, file);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto index = std::move(opened).value();
  if (!index->tree()->root_region_valid()) {
    std::fprintf(stderr, "index is empty; nothing to query\n");
    return 1;
  }

  // Square queries covering `qar` of the root region's area, uniformly
  // placed (the paper's QAR query model).
  const Rect region = index->tree()->root_region();
  const double width = region.x.hi - region.x.lo;
  const double height = region.y.hi - region.y.lo;
  const double side = std::sqrt(qar * width * height);
  Rng rng(seed);
  std::vector<Rect> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    const double x = rng.Uniform(region.x.lo,
                                 std::max(region.x.lo, region.x.hi - side));
    const double y = rng.Uniform(region.y.lo,
                                 std::max(region.y.lo, region.y.hi - side));
    queries.emplace_back(x, x + side, y, y + side);
  }

  using Clock = std::chrono::steady_clock;

  // Serial baseline.
  std::vector<std::vector<rtree::SearchHit>> serial(num_queries);
  const auto serial_start = Clock::now();
  for (size_t i = 0; i < num_queries; ++i) {
    if (auto st = index->tree()->Search(queries[i], &serial[i]); !st.ok()) {
      std::fprintf(stderr, "search failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const double serial_secs =
      std::chrono::duration<double>(Clock::now() - serial_start).count();
  std::printf("%zu queries, qar=%g, side=%.1f\n", num_queries, qar, side);
  std::printf("%8s %12s %10s %9s\n", "threads", "queries/s", "time(s)",
              "speedup");
  std::printf("%8s %12.0f %10.3f %9s\n", "serial",
              num_queries / serial_secs, serial_secs, "1.00x");

  for (int threads : thread_counts) {
    std::vector<exec::BatchResult> results;
    const auto start = Clock::now();
    if (auto st = index->SearchBatch(queries, &results, threads); !st.ok()) {
      std::fprintf(stderr, "batch failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const double secs =
        std::chrono::duration<double>(Clock::now() - start).count();

    for (size_t i = 0; i < num_queries; ++i) {
      const auto& hits = results[i].hits;
      if (hits.size() != serial[i].size() ||
          !std::equal(hits.begin(), hits.end(), serial[i].begin(),
                      [](const rtree::SearchHit& a,
                         const rtree::SearchHit& b) {
                        return a.tid == b.tid && a.rect == b.rect;
                      })) {
        std::fprintf(stderr,
                     "MISMATCH: query %zu differs from serial at %d "
                     "threads\n",
                     i, threads);
        return 1;
      }
    }
    std::printf("%8d %12.0f %10.3f %8.2fx\n", threads, num_queries / secs,
                secs, serial_secs / secs);
  }
  std::printf("all parallel result sets identical to serial\n");
  return 0;
}

int CmdScrub(const Args& args, const std::string& file) {
  auto opened = OpenIndex(args, file);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  storage::ScrubOptions options;
  if (!GetU64(args, "rate", &options.max_extents_per_second)) return 1;
  if (auto v = args.Get("no-quarantine"); v.has_value() && *v != "0") {
    options.quarantine_damaged = false;
  }
  auto report = (*opened)->Scrub(options);
  if (!report.ok()) {
    std::fprintf(stderr, "scrub failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::fputs(report->ToString().c_str(), stdout);
  if (!report->clean() && options.quarantine_damaged) {
    std::printf("%zu page(s) quarantined; partial searches will skip them "
                "— run `segidx salvage` to rebuild\n",
                (*opened)->pager()->quarantined_count());
  }
  return report->clean() ? 0 : 1;
}

int CmdSalvage(const Args& args, const std::string& file) {
  const auto out = args.Get("out");
  if (!out) return Usage();
  core::SalvageOptions options;
  if (auto v = args.Get("kind")) {
    const auto kind = ParseKind(*v);
    if (!kind || core::IsSkeleton(*kind)) {
      std::fprintf(stderr,
                   "salvage rebuild kind must be rtree or srtree\n");
      return 2;
    }
    options.rebuild_kind = *kind;
  }
  auto report = core::SalvageFile(file, *out, options);
  if (!report.ok()) {
    std::fprintf(stderr, "salvage failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->ToString().c_str());

  // Prove the rebuilt index is sound before anyone relies on it.
  auto reopened = IntervalIndex::OpenFromDisk(*out, IndexOptions());
  if (!reopened.ok()) {
    std::fprintf(stderr, "rebuilt index does not open: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  if (auto st = (*reopened)->CheckInvariants(); !st.ok()) {
    std::fprintf(stderr, "rebuilt index fails structure check: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("rebuilt index at %s passes all structural checks\n",
              out->c_str());
  return 0;
}

// SIGINT/SIGTERM ask `segidx serve` to shut down gracefully.
volatile std::sig_atomic_t g_stop_serving = 0;

void HandleStopSignal(int) { g_stop_serving = 1; }

int CmdServe(const Args& args, const std::string& file) {
  server::ServerOptions sopts;
  if (auto v = args.Get("host")) sopts.host = *v;
  uint64_t port = 0;
  size_t max_batch = sopts.max_batch;
  if (!GetU64(args, "port", &port) ||
      !GetI32(args, "threads", &sopts.search_threads,
              /*require_positive=*/true) ||
      !GetI32(args, "writers", &sopts.write_threads,
              /*require_positive=*/true) ||
      !GetSize(args, "max-batch", &max_batch, /*require_positive=*/true) ||
      !GetSize(args, "queue-depth", &sopts.max_queue_depth,
               /*require_positive=*/true) ||
      !GetI32(args, "max-inflight", &sopts.max_inflight_per_conn,
              /*require_positive=*/true) ||
      !GetU64(args, "commit-every", &sopts.commit_every) ||
      !GetU64(args, "budget-us", &sopts.default_budget_us) ||
      !GetU64(args, "scrub-interval-ms", &sopts.scrub_interval_ms) ||
      !GetU64(args, "scrub-rate", &sopts.scrub_extents_per_second)) {
    return 1;
  }
  if (port > 65535) {
    std::fprintf(stderr, "--port: %llu is not a TCP port\n",
                 static_cast<unsigned long long>(port));
    return 1;
  }
  sopts.port = static_cast<uint16_t>(port);
  sopts.max_batch = max_batch;

  auto opened = OpenIndex(args, file);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto index = std::move(opened).value();

  server::Server server(index.get(), sopts);
  if (auto st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", st.ToString().c_str());
    return 1;
  }
  // Scripts (and the serving integration test) parse this line for the
  // bound port, so flush it before blocking.
  std::printf("serving %s on %s:%u\n", file.c_str(), sopts.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (!g_stop_serving) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "shutting down\n");
  server.Stop();
  if (auto st = index->Close(); !st.ok()) {
    std::fprintf(stderr, "final checkpoint failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  return 0;
}

int CmdBenchResilience(const Args& args) {
  uint64_t num_records = 2000;
  size_t num_queries = 64;
  size_t repeats = 30;
  int threads = 2;
  uint64_t delay_us = 50;
  uint64_t deadline_us = 2000;
  uint64_t seed = 42;
  if (!GetU64(args, "records", &num_records, /*require_positive=*/true) ||
      !GetSize(args, "queries", &num_queries, /*require_positive=*/true) ||
      !GetSize(args, "repeats", &repeats, /*require_positive=*/true) ||
      !GetI32(args, "threads", &threads, /*require_positive=*/true) ||
      !GetU64(args, "delay-us", &delay_us) ||
      !GetU64(args, "deadline-us", &deadline_us) ||
      !GetU64(args, "seed", &seed)) {
    return 1;
  }

  IndexOptions options;
  // A small pool forces physical reads, so the injected device latency is
  // actually felt by the search path.
  options.pager.buffer_pool_bytes = 16 * 1024;
  if (!GetSize(args, "pool", &options.pager.buffer_pool_bytes,
               /*require_positive=*/true)) {
    return 1;
  }

  auto device = std::make_unique<storage::FaultInjectingBlockDevice>(
      std::make_unique<storage::MemoryBlockDevice>());
  storage::FaultInjectingBlockDevice* dev = device.get();
  auto created = IntervalIndex::CreateWithDevice(
      IndexKind::kSRTree, std::move(device), options);
  if (!created.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  auto index = std::move(created).value();

  Rng rng(seed);
  for (uint64_t i = 0; i < num_records; ++i) {
    const double s = rng.Uniform(0.0, 1000.0);
    const Rect rect(Interval(s, s + rng.Uniform(0.5, 40.0)),
                    Interval::Point(rng.Uniform(0.0, 1000.0)));
    if (auto st = index->Insert(rect, i + 1); !st.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (auto st = index->Flush(); !st.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::vector<Rect> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    const double x = rng.Uniform(0.0, 950.0);
    const double y = rng.Uniform(0.0, 950.0);
    queries.emplace_back(x, x + 50.0, y, y + 50.0);
  }

  dev->SetReadDelay(std::chrono::microseconds(delay_us));

  using Clock = std::chrono::steady_clock;
  auto percentile = [](std::vector<double> ms, double p) {
    std::sort(ms.begin(), ms.end());
    const size_t idx = static_cast<size_t>(p * (ms.size() - 1) + 0.5);
    return ms[idx];
  };
  // One measured pass: `repeats` batches, recording each batch's wall time
  // and how many entries timed out.
  auto run = [&](bool with_deadline, std::vector<double>* batch_ms,
                 uint64_t* exceeded) -> bool {
    for (size_t r = 0; r < repeats; ++r) {
      rtree::SearchOptions so;
      if (with_deadline) {
        so.deadline = Clock::now() + std::chrono::microseconds(deadline_us);
      }
      std::vector<exec::BatchResult> results;
      const auto t0 = Clock::now();
      const Status st = index->SearchBatch(queries, so, &results, threads);
      batch_ms->push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count());
      if (!st.ok() && st.code() != StatusCode::kDeadlineExceeded) {
        std::fprintf(stderr, "batch failed: %s\n", st.ToString().c_str());
        return false;
      }
      for (const exec::BatchResult& res : results) {
        if (res.status.code() == StatusCode::kDeadlineExceeded) ++*exceeded;
      }
    }
    return true;
  };

  std::vector<double> base_ms, deadline_ms;
  uint64_t base_exceeded = 0, deadline_exceeded = 0;
  if (!run(false, &base_ms, &base_exceeded)) return 1;
  if (!run(true, &deadline_ms, &deadline_exceeded)) return 1;

  char json[640];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\": \"resilience\", \"records\": %llu, \"queries\": %zu, "
      "\"repeats\": %zu, \"threads\": %d, \"read_delay_us\": %llu, "
      "\"deadline_us\": %llu, "
      "\"no_deadline\": {\"p50_ms\": %.3f, \"p99_ms\": %.3f}, "
      "\"with_deadline\": {\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
      "\"deadline_exceeded_entries\": %llu}}\n",
      static_cast<unsigned long long>(num_records), num_queries, repeats,
      threads, static_cast<unsigned long long>(delay_us),
      static_cast<unsigned long long>(deadline_us),
      percentile(base_ms, 0.50), percentile(base_ms, 0.99),
      percentile(deadline_ms, 0.50), percentile(deadline_ms, 0.99),
      static_cast<unsigned long long>(deadline_exceeded));
  std::fputs(json, stdout);
  if (auto out = args.Get("out")) {
    std::ofstream f(*out);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", out->c_str());
      return 1;
    }
    f << json;
  }
  return 0;
}

// Mixed read/write throughput: concurrent writers through exec::WritePool
// (group-commit cadence) with reader threads searching concurrently.
// Runs in memory on a uniform-interval workload; emits a JSON summary
// with per-writer-count insert throughput, the 4-writer speedup, reader
// throughput, and the group-commit amortization ratio.
int CmdBenchMixed(const Args& args) {
  uint64_t num_records = 40000;
  int readers = 2;
  uint64_t commit_every = 1024;
  uint64_t seed = 42;
  if (!GetU64(args, "records", &num_records, /*require_positive=*/true) ||
      !GetI32(args, "readers", &readers, /*require_positive=*/true) ||
      !GetU64(args, "commit-every", &commit_every) ||
      !GetU64(args, "seed", &seed)) {
    return 1;
  }

  // Uniform intervals over the CLI bench domain (same family as the
  // paper's I1 workload).
  Rng rng(seed);
  std::vector<Rect> rects;
  rects.reserve(num_records);
  for (uint64_t i = 0; i < num_records; ++i) {
    const double s = rng.Uniform(0.0, 100000.0);
    rects.emplace_back(Interval(s, s + rng.Uniform(1.0, 200.0)),
                       Interval::Point(rng.Uniform(0.0, 100000.0)));
  }
  const size_t preload_count = rects.size() / 2;
  std::vector<Rect> queries;
  for (int i = 0; i < 64; ++i) {
    const double x = rng.Uniform(0.0, 99000.0);
    const double y = rng.Uniform(0.0, 99000.0);
    queries.emplace_back(x, x + 1000.0, y, y + 1000.0);
  }

  struct Row {
    int writers;
    double inserts_per_sec;
    double queries_per_sec;
    uint64_t commit_requests;
    uint64_t commit_batches;
    rtree::LatchStats latch;  // Contention counters for this run's index.
  };
  std::vector<Row> rows;
  for (int writers : {1, 2, 4}) {
    IndexOptions options;
    auto created =
        IntervalIndex::CreateInMemory(IndexKind::kRTree, options);
    if (!created.ok()) {
      std::fprintf(stderr, "create failed: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    auto index = std::move(created).value();
    std::vector<std::pair<Rect, TupleId>> preload;
    preload.reserve(preload_count);
    for (size_t i = 0; i < preload_count; ++i) {
      preload.emplace_back(rects[i], static_cast<TupleId>(i + 1));
    }
    if (auto st = index->BulkLoad(std::move(preload)); !st.ok()) {
      std::fprintf(stderr, "bulk load failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::vector<exec::WriteOp> ops;
    ops.reserve(rects.size() - preload_count);
    for (size_t i = preload_count; i < rects.size(); ++i) {
      ops.push_back(exec::WriteOp{rects[i], static_cast<TupleId>(i + 1)});
    }

    exec::WritePoolOptions wopts;
    wopts.num_threads = writers;
    wopts.commit_every = commit_every;
    IntervalIndex* idx = index.get();
    exec::WritePool pool(
        idx->tree(), [idx] { return idx->Commit(); }, wopts);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> queries_done{0};
    std::atomic<bool> reader_failed{false};
    std::vector<std::thread> reader_threads;
    for (int r = 0; r < readers; ++r) {
      reader_threads.emplace_back([&, r] {
        size_t qi = static_cast<size_t>(r);
        std::vector<rtree::SearchHit> hits;
        while (!stop.load(std::memory_order_relaxed)) {
          hits.clear();
          if (!idx->Search(queries[qi % queries.size()], &hits).ok()) {
            reader_failed.store(true);
            return;
          }
          qi += static_cast<size_t>(readers);
          queries_done.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    const Status st = pool.ApplyBatch(ops);
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    stop.store(true);
    for (std::thread& t : reader_threads) t.join();
    if (!st.ok()) {
      std::fprintf(stderr, "apply batch failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    if (reader_failed.load()) {
      std::fprintf(stderr, "reader thread failed\n");
      return 1;
    }
    if (idx->size() != rects.size()) {
      std::fprintf(stderr, "record count mismatch after %d writers\n",
                   writers);
      return 1;
    }
    if (auto check = idx->CheckInvariants(); !check.ok()) {
      std::fprintf(stderr, "invariant violation after %d writers: %s\n",
                   writers, check.ToString().c_str());
      return 1;
    }
    rows.push_back(Row{writers, static_cast<double>(ops.size()) / secs,
                       static_cast<double>(queries_done.load()) / secs,
                       idx->storage_stats().commit_requests,
                       idx->storage_stats().commit_batches,
                       idx->tree()->latch_stats()});
    const rtree::LatchStats& latch = rows.back().latch;
    std::printf(
        "%d writer(s): %.0f inserts/s, %.0f queries/s, "
        "%llu commits in %llu batches\n"
        "  contention: write gate %llu/%llu blocked (%llu us), "
        "node latch %llu/%llu blocked (%llu us)\n",
        writers, rows.back().inserts_per_sec, rows.back().queries_per_sec,
        static_cast<unsigned long long>(rows.back().commit_requests),
        static_cast<unsigned long long>(rows.back().commit_batches),
        static_cast<unsigned long long>(latch.gate_blocked[1]),
        static_cast<unsigned long long>(latch.gate_enters[1]),
        static_cast<unsigned long long>(latch.gate_wait_us[1]),
        static_cast<unsigned long long>(latch.latch_blocked),
        static_cast<unsigned long long>(latch.latch_acquires),
        static_cast<unsigned long long>(latch.latch_wait_us));
  }

  const double speedup_4w =
      rows.back().inserts_per_sec / rows.front().inserts_per_sec;
  std::string json = "{\"bench\": \"mixed\", \"records\": " +
                     std::to_string(num_records) +
                     ", \"readers\": " + std::to_string(readers) +
                     ", \"commit_every\": " + std::to_string(commit_every) +
                     ", \"runs\": [";
  char buf[512];
  for (size_t i = 0; i < rows.size(); ++i) {
    const rtree::LatchStats& latch = rows[i].latch;
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"writers\": %d, \"inserts_per_sec\": %.0f, "
        "\"queries_per_sec\": %.0f, \"commit_requests\": %llu, "
        "\"commit_batches\": %llu, \"gate_write_enters\": %llu, "
        "\"gate_write_blocked\": %llu, \"gate_write_wait_us\": %llu, "
        "\"gate_read_blocked\": %llu, \"node_latch_acquires\": %llu, "
        "\"node_latch_blocked\": %llu, \"node_latch_wait_us\": %llu}",
        i == 0 ? "" : ", ", rows[i].writers, rows[i].inserts_per_sec,
        rows[i].queries_per_sec,
        static_cast<unsigned long long>(rows[i].commit_requests),
        static_cast<unsigned long long>(rows[i].commit_batches),
        static_cast<unsigned long long>(latch.gate_enters[1]),
        static_cast<unsigned long long>(latch.gate_blocked[1]),
        static_cast<unsigned long long>(latch.gate_wait_us[1]),
        static_cast<unsigned long long>(latch.gate_blocked[0]),
        static_cast<unsigned long long>(latch.latch_acquires),
        static_cast<unsigned long long>(latch.latch_blocked),
        static_cast<unsigned long long>(latch.latch_wait_us));
    json += buf;
  }
  std::snprintf(buf, sizeof(buf), "], \"speedup_4_writers\": %.2f}\n",
                speedup_4w);
  json += buf;
  std::fputs(json.c_str(), stdout);
  if (auto out = args.Get("out")) {
    std::ofstream f(*out);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", out->c_str());
      return 1;
    }
    f << json;
  }
  return 0;
}

int CmdScrubTorture(const Args& args) {
  torture::ScrubTortureOptions options;
  if (auto v = args.Get("kind")) {
    const auto kind = ParseKind(*v);
    if (!kind) {
      std::fprintf(stderr, "unknown kind: %s\n", v->c_str());
      return 2;
    }
    options.kind = *kind;
  }
  uint64_t seed = options.seed;
  if (!GetU64(args, "records", &options.records,
              /*require_positive=*/true) ||
      !GetU64(args, "rounds", &options.rounds, /*require_positive=*/true) ||
      !GetU64(args, "corrupt", &options.max_corrupt_per_round,
              /*require_positive=*/true) ||
      !GetU64(args, "seed", &seed) ||
      !GetSize(args, "pool", &options.index.pager.buffer_pool_bytes,
               /*require_positive=*/true)) {
    return 1;
  }
  options.seed = static_cast<uint32_t>(seed);
  options.log_progress = !args.Get("quiet").has_value();

  auto report = torture::RunScrubTorture(options);
  if (!report.ok()) {
    std::fprintf(stderr, "scrub torture harness failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "corrupted %llu pages over %llu rounds; partial searches dropped "
      "%llu records, salvage recovered %llu\n",
      static_cast<unsigned long long>(report->pages_corrupted),
      static_cast<unsigned long long>(report->rounds_run),
      static_cast<unsigned long long>(report->records_skipped),
      static_cast<unsigned long long>(report->records_salvaged));
  if (!report->ok()) {
    for (const std::string& failure : report->failures) {
      std::fprintf(stderr, "FAIL %s\n", failure.c_str());
    }
    std::fprintf(stderr, "%zu rounds violated resilience guarantees\n",
                 report->failures.size());
    return 1;
  }
  std::printf(
      "every round: scrub found exactly the damage, searches stayed "
      "partial-correct, salvage recovered all reachable records\n");
  return 0;
}

int CmdServeTorture(const Args& args) {
  torture::ServeTortureOptions options;
  if (auto v = args.Get("kind")) {
    const auto kind = ParseKind(*v);
    if (!kind) {
      std::fprintf(stderr, "unknown kind: %s\n", v->c_str());
      return 2;
    }
    options.kind = *kind;
  }
  uint64_t seed = options.seed;
  if (!GetI32(args, "writers", &options.writers,
              /*require_positive=*/true) ||
      !GetI32(args, "readers", &options.readers) ||
      !GetU64(args, "ops", &options.ops_per_writer,
              /*require_positive=*/true) ||
      !GetI32(args, "chaos-rounds", &options.chaos_rounds) ||
      !GetI32(args, "crash-rounds", &options.crash_rounds) ||
      !GetI32(args, "crashes", &options.crashes_per_round,
              /*require_positive=*/true) ||
      !GetF64(args, "reset-prob", &options.reset_prob) ||
      !GetF64(args, "delay-prob", &options.delay_prob) ||
      !GetF64(args, "short-write-prob", &options.short_write_prob) ||
      !GetU64(args, "commit-every", &options.server_commit_every,
              /*require_positive=*/true) ||
      !GetU64(args, "deadline-ms", &options.client_deadline_ms,
              /*require_positive=*/true) ||
      !GetU64(args, "seed", &seed) ||
      !GetSize(args, "pool", &options.index.pager.buffer_pool_bytes,
               /*require_positive=*/true)) {
    return 1;
  }
  options.seed = static_cast<uint32_t>(seed);
  options.log_progress = !args.Get("quiet").has_value();

  auto report = torture::RunServeTorture(options);
  if (!report.ok()) {
    std::fprintf(stderr, "serve torture harness failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "ran %llu rounds, %llu server crashes; clients: %llu reconnects, "
      "%llu retries over %llu injected transport faults; acked %llu "
      "inserts + %llu deletes (%llu in doubt), %llu dedup replays\n",
      static_cast<unsigned long long>(report->rounds_run),
      static_cast<unsigned long long>(report->server_crashes),
      static_cast<unsigned long long>(report->client_reconnects),
      static_cast<unsigned long long>(report->client_retries),
      static_cast<unsigned long long>(report->transport_faults),
      static_cast<unsigned long long>(report->acked_inserts),
      static_cast<unsigned long long>(report->acked_deletes),
      static_cast<unsigned long long>(report->unresolved_ops),
      static_cast<unsigned long long>(report->dedup_hits));
  if (!report->ok()) {
    for (const std::string& failure : report->failures) {
      std::fprintf(stderr, "FAIL %s\n", failure.c_str());
    }
    std::fprintf(stderr, "%zu exactly-once violations\n",
                 report->failures.size());
    return 1;
  }
  std::printf(
      "every acked write survived exactly once; no losses, duplicates, or "
      "resurrections\n");
  return 0;
}

int CmdTorture(const Args& args) {
  if (auto mode = args.Get("mode"); mode.has_value()) {
    if (*mode == "scrub") return CmdScrubTorture(args);
    if (*mode == "serve") return CmdServeTorture(args);
    if (*mode != "crash") {
      std::fprintf(stderr, "--mode: expected crash, scrub, or serve; got "
                           "'%s'\n",
                   mode->c_str());
      return 2;
    }
  }
  torture::TortureOptions options;
  if (auto v = args.Get("kind")) {
    const auto kind = ParseKind(*v);
    if (!kind) {
      std::fprintf(stderr, "unknown kind: %s\n", v->c_str());
      return 2;
    }
    options.kind = *kind;
  }
  uint64_t seed = options.seed;
  if (!GetU64(args, "records", &options.records,
              /*require_positive=*/true) ||
      !GetU64(args, "checkpoint-every", &options.checkpoint_every,
              /*require_positive=*/true) ||
      !GetSize(args, "tear", &options.tear_bytes) ||
      !GetU64(args, "max-points", &options.max_fault_points) ||
      !GetU64(args, "seed", &seed) ||
      !GetSize(args, "pool", &options.index.pager.buffer_pool_bytes,
               /*require_positive=*/true)) {
    return 1;
  }
  options.seed = static_cast<uint32_t>(seed);
  options.log_progress = !args.Get("quiet").has_value();

  auto report = torture::RunRecoveryTorture(options);
  if (!report.ok()) {
    std::fprintf(stderr, "torture harness failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "swept %llu fault points over ops [%llu, %llu), %llu checkpoints; "
      "%llu slot fallbacks, %llu journal replays\n",
      static_cast<unsigned long long>(report->fault_points_run),
      static_cast<unsigned long long>(report->first_fault_op),
      static_cast<unsigned long long>(report->total_ops),
      static_cast<unsigned long long>(report->checkpoints),
      static_cast<unsigned long long>(report->fallbacks),
      static_cast<unsigned long long>(report->journal_replays));
  if (!report->ok()) {
    for (const std::string& failure : report->failures) {
      std::fprintf(stderr, "FAIL %s\n", failure.c_str());
    }
    std::fprintf(stderr, "%zu fault points violated recovery guarantees\n",
                 report->failures.size());
    return 1;
  }
  std::printf("every crash point recovered to a consistent checkpoint\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = Parse(argc, argv);
  if (!args) return Usage();
  if (args->command == "torture") return CmdTorture(*args);
  if (args->command == "bench-resilience") {
    return CmdBenchResilience(*args);
  }
  if (args->command == "bench-mixed") return CmdBenchMixed(*args);
  const auto file = args->Get("file");
  if (!file) return Usage();

  if (args->command == "create") return CmdCreate(*args, *file);
  if (args->command == "insert") return CmdInsert(*args, *file);
  if (args->command == "query") return CmdQuery(*args, *file);
  if (args->command == "stats") return CmdStats(*args, *file);
  if (args->command == "verify") return CmdVerify(*args, *file);
  if (args->command == "check") return CmdCheck(*args, *file);
  if (args->command == "bench-parallel") {
    return CmdBenchParallel(*args, *file);
  }
  if (args->command == "scrub") return CmdScrub(*args, *file);
  if (args->command == "salvage") return CmdSalvage(*args, *file);
  if (args->command == "serve") return CmdServe(*args, *file);
  return Usage();
}
