// segidx command-line tool: create, load, query, and inspect index files.
//
//   segidx create --file=idx --kind=skeleton-srtree [--expected=N]
//                 [--domain=xlo:xhi:ylo:yhi] [--sample=N]
//   segidx insert --file=idx [--input=data.csv]
//       CSV rows: tid,xlo,xhi[,ylo,yhi]   (2 coords = 1-D interval at y=0)
//   segidx query  --file=idx --rect=xlo:xhi:ylo:yhi [--limit=N]
//   segidx stats  --file=idx [--dump=DEPTH]
//   segidx verify --file=idx
//   segidx check  --file=idx [--min-fill=1] [--tight=1] [--strict=1]
//                 [--no-quota=1] [--no-pages=1] [--max-violations=N]
//   segidx bench-parallel --file=idx [--queries=N] [--qar=F]
//                 [--threads=1,2,4,8] [--seed=S]
//   segidx torture [--kind=srtree] [--records=N] [--checkpoint-every=N]
//                 [--tear=BYTES] [--max-points=N] [--seed=S]
//                 [--pool=BYTES] [--quiet=1]
//
// `verify` stops at the first violation; `check` runs the full
// StructureChecker walk and prints every violation plus walk statistics.
// `bench-parallel` runs a batch of random square queries (query area ratio
// `qar` of the root region) serially, then through the parallel
// QueryEngine at each thread count, checking result sets stay identical
// and reporting throughput.
// `torture` runs the crash-recovery sweep (src/torture): an in-memory
// insert/checkpoint workload is crashed at every write/sync index, the
// surviving image re-opened, and structure + durable contents verified.
//
// Exit codes: 0 success, 1 runtime error / violations found, 2 usage error.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/interval_index.h"
#include "torture/recovery_torture.h"

namespace {

using namespace segidx;
using core::IndexKind;
using core::IndexOptions;
using core::IntervalIndex;

int Usage() {
  std::fprintf(
      stderr,
      "usage: segidx "
      "<create|insert|query|stats|verify|check|bench-parallel> --file=PATH "
      "...\n"
      "  create: --kind=rtree|srtree|skeleton-rtree|skeleton-srtree\n"
      "          [--expected=N] [--sample=N] [--domain=xlo:xhi:ylo:yhi]\n"
      "  insert: [--input=CSV]  rows: tid,xlo,xhi[,ylo,yhi]\n"
      "  query:  --rect=xlo:xhi:ylo:yhi [--limit=N]\n"
      "  stats:  [--dump=DEPTH]  (print tree structure to DEPTH levels)\n"
      "  verify: quick check, stops at the first violation\n"
      "  check:  full structural report  [--min-fill=1] [--tight=1]\n"
      "          [--strict=1] [--no-quota=1] [--no-pages=1]\n"
      "          [--max-violations=N]\n"
      "  bench-parallel: [--queries=N] [--qar=F] [--threads=1,2,4,8]\n"
      "          [--seed=S]\n"
      "  torture: crash-recovery sweep (no --file; runs in memory)\n"
      "          [--kind=srtree] [--records=N] [--checkpoint-every=N]\n"
      "          [--tear=BYTES] [--max-points=N] [--seed=S] [--pool=BYTES]\n"
      "          [--quiet=1]\n");
  return 2;
}

// Simple --key=value argument map.
struct Args {
  std::string command;
  std::vector<std::pair<std::string, std::string>> kv;

  std::optional<std::string> Get(const std::string& key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return v;
    }
    return std::nullopt;
  }
};

std::optional<Args> Parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return std::nullopt;
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) return std::nullopt;
    args.kv.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
  }
  return args;
}

std::optional<IndexKind> ParseKind(const std::string& name) {
  if (name == "rtree") return IndexKind::kRTree;
  if (name == "srtree") return IndexKind::kSRTree;
  if (name == "skeleton-rtree") return IndexKind::kSkeletonRTree;
  if (name == "skeleton-srtree") return IndexKind::kSkeletonSRTree;
  return std::nullopt;
}

// Parses "a:b:c:d" into exactly `n` doubles.
std::optional<std::vector<double>> ParseColons(const std::string& text,
                                               size_t n) {
  std::vector<double> out;
  std::stringstream ss(text);
  std::string piece;
  while (std::getline(ss, piece, ':')) {
    char* end = nullptr;
    const double v = std::strtod(piece.c_str(), &end);
    if (end == piece.c_str() || *end != '\0') return std::nullopt;
    out.push_back(v);
  }
  if (out.size() != n) return std::nullopt;
  return out;
}

IndexOptions OptionsFrom(const Args& args) {
  IndexOptions options;
  if (auto expected = args.Get("expected")) {
    options.skeleton.expected_tuples = std::stoull(*expected);
  }
  if (auto sample = args.Get("sample")) {
    options.skeleton.prediction_sample = std::stoull(*sample);
  }
  if (auto domain = args.Get("domain")) {
    if (auto v = ParseColons(*domain, 4)) {
      options.skeleton.x_domain = Interval((*v)[0], (*v)[1]);
      options.skeleton.y_domain = Interval((*v)[2], (*v)[3]);
    }
  }
  return options;
}

int CmdCreate(const Args& args, const std::string& file) {
  const auto kind_name = args.Get("kind");
  if (!kind_name) return Usage();
  const auto kind = ParseKind(*kind_name);
  if (!kind) {
    std::fprintf(stderr, "unknown kind: %s\n", kind_name->c_str());
    return 2;
  }
  auto index = IntervalIndex::CreateOnDisk(*kind, file, OptionsFrom(args));
  if (!index.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  if (auto st = (*index)->Flush(); !st.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("created %s index at %s\n", IndexKindName(*kind),
              file.c_str());
  return 0;
}

int CmdInsert(const Args& args, const std::string& file) {
  auto opened = IntervalIndex::OpenFromDisk(file, OptionsFrom(args));
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto index = std::move(opened).value();

  std::ifstream file_input;
  if (auto input = args.Get("input")) {
    file_input.open(*input);
    if (!file_input) {
      std::fprintf(stderr, "cannot open %s\n", input->c_str());
      return 1;
    }
  }
  std::istream& in = file_input.is_open() ? file_input : std::cin;

  uint64_t inserted = 0;
  uint64_t line_number = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string piece;
    std::vector<std::string> fields;
    while (std::getline(ss, piece, ',')) fields.push_back(piece);
    if (fields.size() != 3 && fields.size() != 5) {
      std::fprintf(stderr, "line %llu: expected 3 or 5 fields\n",
                   static_cast<unsigned long long>(line_number));
      return 1;
    }
    const TupleId tid = std::strtoull(fields[0].c_str(), nullptr, 10);
    const double xlo = std::strtod(fields[1].c_str(), nullptr);
    const double xhi = std::strtod(fields[2].c_str(), nullptr);
    Rect rect = fields.size() == 3
                    ? Rect::Segment1D(xlo, xhi)
                    : Rect(xlo, xhi, std::strtod(fields[3].c_str(), nullptr),
                           std::strtod(fields[4].c_str(), nullptr));
    if (auto st = index->Insert(rect, tid); !st.ok()) {
      std::fprintf(stderr, "line %llu: insert failed: %s\n",
                   static_cast<unsigned long long>(line_number),
                   st.ToString().c_str());
      return 1;
    }
    ++inserted;
  }
  if (auto st = index->Flush(); !st.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("inserted %llu records (index now holds %llu)\n",
              static_cast<unsigned long long>(inserted),
              static_cast<unsigned long long>(index->size()));
  return 0;
}

int CmdQuery(const Args& args, const std::string& file) {
  const auto rect_arg = args.Get("rect");
  if (!rect_arg) return Usage();
  const auto coords = ParseColons(*rect_arg, 4);
  if (!coords) {
    std::fprintf(stderr, "bad --rect (want xlo:xhi:ylo:yhi)\n");
    return 2;
  }
  const Rect query((*coords)[0], (*coords)[1], (*coords)[2], (*coords)[3]);
  if (!query.valid()) {
    std::fprintf(stderr, "invalid query rectangle\n");
    return 2;
  }
  size_t limit = 20;
  if (auto v = args.Get("limit")) limit = std::stoull(*v);

  auto opened = IntervalIndex::OpenFromDisk(file, OptionsFrom(args));
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto index = std::move(opened).value();

  std::vector<rtree::SearchHit> hits;
  uint64_t nodes = 0;
  if (auto st = index->Search(query, &hits, &nodes); !st.ok()) {
    std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::vector<TupleId> tids;
  (void)index->SearchTuples(query, &tids);
  std::printf("%zu records (%zu stored pieces), %llu index nodes accessed\n",
              tids.size(), hits.size(),
              static_cast<unsigned long long>(nodes));
  for (size_t i = 0; i < hits.size() && i < limit; ++i) {
    std::printf("  tid=%llu rect=%s\n",
                static_cast<unsigned long long>(hits[i].tid),
                hits[i].rect.ToString().c_str());
  }
  if (hits.size() > limit) {
    std::printf("  ... (%zu more; raise --limit)\n", hits.size() - limit);
  }
  return 0;
}

int CmdStats(const Args& args, const std::string& file) {
  auto opened = IntervalIndex::OpenFromDisk(file, OptionsFrom(args));
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto index = std::move(opened).value();
  std::printf("kind:    %s\n", IndexKindName(index->kind()));
  std::printf("records: %llu\n",
              static_cast<unsigned long long>(index->size()));
  std::printf("height:  %d\n", index->height());
  std::printf("bytes:   %llu\n",
              static_cast<unsigned long long>(index->index_bytes()));
  if (auto depth = args.Get("dump")) {
    return index->tree()->DumpStructure(std::cout, std::stoi(*depth)).ok()
               ? 0
               : 1;
  }
  auto stats = index->tree()->CollectLevelStats();
  if (stats.ok()) {
    for (size_t level = 0; level < stats->size(); ++level) {
      const auto& s = (*stats)[level];
      std::printf(
          "level %zu: %llu nodes, %llu entries, %llu spanning, "
          "avg region %.0fx%.0f\n",
          level, static_cast<unsigned long long>(s.nodes),
          static_cast<unsigned long long>(s.branch_entries),
          static_cast<unsigned long long>(s.spanning_entries),
          s.avg_region_width, s.avg_region_height);
    }
  }
  return 0;
}

int CmdVerify(const Args& args, const std::string& file) {
  auto opened = IntervalIndex::OpenFromDisk(file, OptionsFrom(args));
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  const Status st = (*opened)->CheckInvariants();
  if (!st.ok()) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("ok: all structural invariants hold\n");
  return 0;
}

int CmdCheck(const Args& args, const std::string& file) {
  auto opened = IntervalIndex::OpenFromDisk(file, OptionsFrom(args));
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  check::CheckOptions options;
  auto flag = [&args](const char* key) {
    const auto v = args.Get(key);
    return v.has_value() && *v != "0";
  };
  options.expect_min_fill = flag("min-fill");
  options.check_mbr_tightness = flag("tight");
  options.strict_spanning_placement = flag("strict");
  options.check_spanning_quota = !flag("no-quota");
  options.check_page_accounting = !flag("no-pages");
  if (auto v = args.Get("max-violations")) {
    options.max_violations = std::stoull(*v);
  }

  auto report = (*opened)->CheckStructure(options);
  if (!report.ok()) {
    std::fprintf(stderr, "check failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::fputs(report->ToString().c_str(), stdout);
  return report->ok() ? 0 : 1;
}

int CmdBenchParallel(const Args& args, const std::string& file) {
  size_t num_queries = 1000;
  double qar = 0.01;
  uint64_t seed = 42;
  std::vector<int> thread_counts = {1, 2, 4, 8};
  if (auto v = args.Get("queries")) num_queries = std::stoull(*v);
  if (auto v = args.Get("qar")) qar = std::stod(*v);
  if (auto v = args.Get("seed")) seed = std::stoull(*v);
  if (auto v = args.Get("threads")) {
    thread_counts.clear();
    std::stringstream ss(*v);
    std::string piece;
    while (std::getline(ss, piece, ',')) {
      int n = 0;
      try {
        n = std::stoi(piece);
      } catch (const std::exception&) {
        n = 0;
      }
      if (n < 1) {
        std::fprintf(stderr, "--threads: expected positive integers, got '%s'\n",
                     piece.c_str());
        return 1;
      }
      thread_counts.push_back(n);
    }
    if (thread_counts.empty()) return Usage();
  }

  auto opened = IntervalIndex::OpenFromDisk(file, OptionsFrom(args));
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto index = std::move(opened).value();
  if (!index->tree()->root_region_valid()) {
    std::fprintf(stderr, "index is empty; nothing to query\n");
    return 1;
  }

  // Square queries covering `qar` of the root region's area, uniformly
  // placed (the paper's QAR query model).
  const Rect region = index->tree()->root_region();
  const double width = region.x.hi - region.x.lo;
  const double height = region.y.hi - region.y.lo;
  const double side = std::sqrt(qar * width * height);
  Rng rng(seed);
  std::vector<Rect> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    const double x = rng.Uniform(region.x.lo,
                                 std::max(region.x.lo, region.x.hi - side));
    const double y = rng.Uniform(region.y.lo,
                                 std::max(region.y.lo, region.y.hi - side));
    queries.emplace_back(x, x + side, y, y + side);
  }

  using Clock = std::chrono::steady_clock;

  // Serial baseline.
  std::vector<std::vector<rtree::SearchHit>> serial(num_queries);
  const auto serial_start = Clock::now();
  for (size_t i = 0; i < num_queries; ++i) {
    if (auto st = index->tree()->Search(queries[i], &serial[i]); !st.ok()) {
      std::fprintf(stderr, "search failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const double serial_secs =
      std::chrono::duration<double>(Clock::now() - serial_start).count();
  std::printf("%zu queries, qar=%g, side=%.1f\n", num_queries, qar, side);
  std::printf("%8s %12s %10s %9s\n", "threads", "queries/s", "time(s)",
              "speedup");
  std::printf("%8s %12.0f %10.3f %9s\n", "serial",
              num_queries / serial_secs, serial_secs, "1.00x");

  for (int threads : thread_counts) {
    std::vector<exec::BatchResult> results;
    const auto start = Clock::now();
    if (auto st = index->SearchBatch(queries, &results, threads); !st.ok()) {
      std::fprintf(stderr, "batch failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const double secs =
        std::chrono::duration<double>(Clock::now() - start).count();

    for (size_t i = 0; i < num_queries; ++i) {
      const auto& hits = results[i].hits;
      if (hits.size() != serial[i].size() ||
          !std::equal(hits.begin(), hits.end(), serial[i].begin(),
                      [](const rtree::SearchHit& a,
                         const rtree::SearchHit& b) {
                        return a.tid == b.tid && a.rect == b.rect;
                      })) {
        std::fprintf(stderr,
                     "MISMATCH: query %zu differs from serial at %d "
                     "threads\n",
                     i, threads);
        return 1;
      }
    }
    std::printf("%8d %12.0f %10.3f %8.2fx\n", threads, num_queries / secs,
                secs, serial_secs / secs);
  }
  std::printf("all parallel result sets identical to serial\n");
  return 0;
}

int CmdTorture(const Args& args) {
  torture::TortureOptions options;
  if (auto v = args.Get("kind")) {
    const auto kind = ParseKind(*v);
    if (!kind) {
      std::fprintf(stderr, "unknown kind: %s\n", v->c_str());
      return 2;
    }
    options.kind = *kind;
  }
  if (auto v = args.Get("records")) options.records = std::stoull(*v);
  if (auto v = args.Get("checkpoint-every")) {
    options.checkpoint_every = std::stoull(*v);
  }
  if (auto v = args.Get("tear")) options.tear_bytes = std::stoull(*v);
  if (auto v = args.Get("max-points")) {
    options.max_fault_points = std::stoull(*v);
  }
  if (auto v = args.Get("seed")) options.seed = std::stoul(*v);
  if (auto v = args.Get("pool")) {
    options.index.pager.buffer_pool_bytes = std::stoull(*v);
  }
  options.log_progress = !args.Get("quiet").has_value();

  auto report = torture::RunRecoveryTorture(options);
  if (!report.ok()) {
    std::fprintf(stderr, "torture harness failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "swept %llu fault points over ops [%llu, %llu), %llu checkpoints; "
      "%llu slot fallbacks, %llu journal replays\n",
      static_cast<unsigned long long>(report->fault_points_run),
      static_cast<unsigned long long>(report->first_fault_op),
      static_cast<unsigned long long>(report->total_ops),
      static_cast<unsigned long long>(report->checkpoints),
      static_cast<unsigned long long>(report->fallbacks),
      static_cast<unsigned long long>(report->journal_replays));
  if (!report->ok()) {
    for (const std::string& failure : report->failures) {
      std::fprintf(stderr, "FAIL %s\n", failure.c_str());
    }
    std::fprintf(stderr, "%zu fault points violated recovery guarantees\n",
                 report->failures.size());
    return 1;
  }
  std::printf("every crash point recovered to a consistent checkpoint\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = Parse(argc, argv);
  if (!args) return Usage();
  if (args->command == "torture") return CmdTorture(*args);
  const auto file = args->Get("file");
  if (!file) return Usage();

  if (args->command == "create") return CmdCreate(*args, *file);
  if (args->command == "insert") return CmdInsert(*args, *file);
  if (args->command == "query") return CmdQuery(*args, *file);
  if (args->command == "stats") return CmdStats(*args, *file);
  if (args->command == "verify") return CmdVerify(*args, *file);
  if (args->command == "check") return CmdCheck(*args, *file);
  if (args->command == "bench-parallel") {
    return CmdBenchParallel(*args, *file);
  }
  return Usage();
}
