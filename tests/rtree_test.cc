#include "rtree/rtree.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "oracle/naive_oracle.h"
#include "storage/block_device.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace segidx::rtree {
namespace {

using oracle::NaiveOracle;
using test_util::MakeMemoryPager;
using test_util::Tids;

std::unique_ptr<RTree> MakeTree(storage::Pager* pager,
                                TreeOptions options = TreeOptions()) {
  auto result = RTree::Create(pager, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(RTreeTest, EmptyTreeSearchFindsNothing) {
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  std::vector<SearchHit> hits;
  uint64_t accesses = 0;
  ASSERT_TRUE(tree->Search(Rect(0, 100, 0, 100), &hits, &accesses).ok());
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(accesses, 1u);  // The (empty) root leaf.
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_EQ(tree->height(), 1);
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(RTreeTest, SingleInsertIsFindable) {
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  ASSERT_TRUE(tree->Insert(Rect(10, 20, 30, 40), 7).ok());
  EXPECT_EQ(tree->size(), 1u);

  std::vector<SearchHit> hits;
  ASSERT_TRUE(tree->Search(Rect(15, 15, 35, 35), &hits).ok());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].tid, 7u);
  EXPECT_EQ(hits[0].rect, Rect(10, 20, 30, 40));

  hits.clear();
  ASSERT_TRUE(tree->Search(Rect(50, 60, 50, 60), &hits).ok());
  EXPECT_TRUE(hits.empty());
}

TEST(RTreeTest, RejectsInvalidRects) {
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  EXPECT_FALSE(tree->Insert(Rect(10, 5, 0, 1), 1).ok());
  std::vector<SearchHit> hits;
  EXPECT_FALSE(tree->Search(Rect(0, 1, 3, 2), &hits).ok());
}

TEST(RTreeTest, CreateValidatesOptions) {
  auto pager = MakeMemoryPager();
  TreeOptions bad;
  bad.enable_spanning = true;
  EXPECT_FALSE(RTree::Create(pager.get(), bad).ok());
  bad = TreeOptions();
  bad.min_fill_fraction = 0.9;
  EXPECT_FALSE(RTree::Create(pager.get(), bad).ok());
}

TEST(RTreeTest, DuplicateEntriesAllowed) {
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  const Rect r(1, 2, 3, 4);
  ASSERT_TRUE(tree->Insert(r, 5).ok());
  ASSERT_TRUE(tree->Insert(r, 5).ok());
  std::vector<SearchHit> hits;
  ASSERT_TRUE(tree->Search(r, &hits).ok());
  EXPECT_EQ(hits.size(), 2u);
}

TEST(RTreeTest, GrowsInHeightAndStaysBalanced) {
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const Coord x = rng.Uniform(0, 100000);
    const Coord y = rng.Uniform(0, 100000);
    ASSERT_TRUE(tree->Insert(Rect(x, x + 10, y, y + 10), i).ok());
  }
  EXPECT_GE(tree->height(), 3);
  // CheckInvariants validates that all leaves share level 0.
  ASSERT_TRUE(tree->CheckInvariants().ok());

  auto counts = tree->CountNodesPerLevel();
  ASSERT_TRUE(counts.ok());
  ASSERT_EQ(counts->size(), static_cast<size_t>(tree->height()));
  // Strictly shrinking level populations up the tree; single root on top.
  EXPECT_EQ(counts->back(), 1u);
  for (size_t i = 1; i < counts->size(); ++i) {
    EXPECT_LT((*counts)[i], (*counts)[i - 1]);
  }
}

TEST(RTreeTest, VariableNodeSizeDoublesPerLevel) {
  auto pager = MakeMemoryPager();
  TreeOptions options;
  options.double_node_size_per_level = true;
  auto tree = MakeTree(pager.get(), options);
  // Leaf capacity from a 1 KB node, level-1 branch capacity from 2 KB.
  EXPECT_EQ(tree->LeafCapacity(), 25u);
  EXPECT_EQ(tree->BranchCapacity(1), 51u);
  EXPECT_EQ(tree->BranchCapacity(2), 102u);
  EXPECT_EQ(tree->SpanningCapacity(1), 0u);

  TreeOptions fixed;
  fixed.double_node_size_per_level = false;
  auto pager2 = MakeMemoryPager();
  auto tree2 = MakeTree(pager2.get(), fixed);
  EXPECT_EQ(tree2->BranchCapacity(1), 25u);
  EXPECT_EQ(tree2->BranchCapacity(5), 25u);
}

struct OracleCase {
  workload::DatasetKind dataset;
  uint64_t count;
  SplitAlgorithm split;
  uint64_t seed;
};

void PrintTo(const OracleCase& c, std::ostream* os) {
  *os << workload::DatasetKindName(c.dataset) << "_n" << c.count << "_"
      << (c.split == SplitAlgorithm::kQuadratic ? "quad"
          : c.split == SplitAlgorithm::kLinear  ? "lin"
                                                : "rstar")
      << "_s" << c.seed;
}

class RTreeOracleTest : public testing::TestWithParam<OracleCase> {};

// The central property: R-Tree search results equal a full scan, for every
// workload shape, including after the tree grows several levels.
TEST_P(RTreeOracleTest, SearchMatchesNaiveOracle) {
  const OracleCase& c = GetParam();
  auto pager = MakeMemoryPager();
  TreeOptions options;
  options.split_algorithm = c.split;
  auto tree = MakeTree(pager.get(), options);
  NaiveOracle oracle;

  workload::DatasetSpec spec;
  spec.kind = c.dataset;
  spec.count = c.count;
  spec.seed = c.seed;
  const std::vector<Rect> data = workload::GenerateDataset(spec);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data[i], i).ok());
    oracle.Insert(data[i], i);
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());

  for (double qar : {0.001, 1.0, 1000.0}) {
    const std::vector<Rect> queries =
        workload::GenerateQueries(qar, 1e6, 25, c.seed + 99);
    for (const Rect& query : queries) {
      std::vector<SearchHit> hits;
      ASSERT_TRUE(tree->Search(query, &hits).ok());
      EXPECT_EQ(Tids(hits), oracle.Search(query));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, RTreeOracleTest,
    testing::Values(
        OracleCase{workload::DatasetKind::kI1, 3000,
                   SplitAlgorithm::kQuadratic, 1},
        OracleCase{workload::DatasetKind::kI2, 3000,
                   SplitAlgorithm::kQuadratic, 2},
        OracleCase{workload::DatasetKind::kI3, 3000,
                   SplitAlgorithm::kQuadratic, 3},
        OracleCase{workload::DatasetKind::kI4, 3000,
                   SplitAlgorithm::kQuadratic, 4},
        OracleCase{workload::DatasetKind::kR1, 3000,
                   SplitAlgorithm::kQuadratic, 5},
        OracleCase{workload::DatasetKind::kR2, 3000,
                   SplitAlgorithm::kQuadratic, 6},
        OracleCase{workload::DatasetKind::kRC2, 3000,
                   SplitAlgorithm::kQuadratic, 7},
        OracleCase{workload::DatasetKind::kI3, 3000, SplitAlgorithm::kLinear,
                   8},
        OracleCase{workload::DatasetKind::kR2, 3000, SplitAlgorithm::kLinear,
                   9},
        OracleCase{workload::DatasetKind::kI1, 200,
                   SplitAlgorithm::kQuadratic, 10},
        OracleCase{workload::DatasetKind::kR2, 60,
                   SplitAlgorithm::kQuadratic, 11},
        OracleCase{workload::DatasetKind::kR2, 3000, SplitAlgorithm::kRStar,
                   12},
        OracleCase{workload::DatasetKind::kI3, 3000, SplitAlgorithm::kRStar,
                   13}),
    testing::PrintToStringParamName());

TEST(RTreeTest, SearchVisitsFewNodesForPointQueries) {
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const Coord x = rng.Uniform(0, 100000);
    const Coord y = rng.Uniform(0, 100000);
    ASSERT_TRUE(tree->Insert(Rect(x, x + 5, y, y + 5), i).ok());
  }
  auto counts = tree->CountNodesPerLevel();
  ASSERT_TRUE(counts.ok());
  uint64_t total_nodes = 0;
  for (uint64_t n : *counts) total_nodes += n;

  std::vector<SearchHit> hits;
  uint64_t accesses = 0;
  ASSERT_TRUE(
      tree->Search(Rect::Point(50000, 50000), &hits, &accesses).ok());
  // A point query must touch far fewer nodes than the whole index.
  EXPECT_LT(accesses, total_nodes / 5);
  EXPECT_GE(accesses, static_cast<uint64_t>(tree->height()));
}

TEST(RTreeTest, DeleteRemovesExactlyOneEntry) {
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  const Rect r(1, 2, 3, 4);
  ASSERT_TRUE(tree->Insert(r, 5).ok());
  ASSERT_TRUE(tree->Insert(r, 5).ok());
  ASSERT_TRUE(tree->Delete(r, 5).ok());
  std::vector<SearchHit> hits;
  ASSERT_TRUE(tree->Search(r, &hits).ok());
  EXPECT_EQ(hits.size(), 1u);
  EXPECT_EQ(tree->size(), 1u);
}

TEST(RTreeTest, DeleteMissingEntryReturnsNotFound) {
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  ASSERT_TRUE(tree->Insert(Rect(1, 2, 3, 4), 5).ok());
  EXPECT_EQ(tree->Delete(Rect(1, 2, 3, 4), 6).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree->Delete(Rect(9, 10, 3, 4), 5).code(),
            StatusCode::kNotFound);
}

TEST(RTreeTest, DeleteHalfThenSearchMatchesOracle) {
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  NaiveOracle oracle;
  workload::DatasetSpec spec;
  spec.kind = workload::DatasetKind::kR1;
  spec.count = 2000;
  spec.seed = 12;
  const std::vector<Rect> data = workload::GenerateDataset(spec);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data[i], i).ok());
    oracle.Insert(data[i], i);
  }
  for (size_t i = 0; i < data.size(); i += 2) {
    ASSERT_TRUE(tree->Delete(data[i], i).ok()) << i;
    oracle.Delete(data[i], i);
  }
  EXPECT_EQ(tree->size(), 1000u);
  ASSERT_TRUE(tree->CheckInvariants().ok());

  const std::vector<Rect> queries = workload::GenerateQueries(1, 1e6, 50, 77);
  for (const Rect& query : queries) {
    std::vector<SearchHit> hits;
    ASSERT_TRUE(tree->Search(query, &hits).ok());
    EXPECT_EQ(Tids(hits), oracle.Search(query));
  }
}

TEST(RTreeTest, DeleteEverythingShrinksToEmptyRoot) {
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  std::vector<Rect> rects;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const Coord x = rng.Uniform(0, 1000);
    const Coord y = rng.Uniform(0, 1000);
    rects.push_back(Rect(x, x + 1, y, y + 1));
    ASSERT_TRUE(tree->Insert(rects.back(), i).ok());
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree->Delete(rects[static_cast<size_t>(i)], i).ok()) << i;
  }
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_EQ(tree->height(), 1);
  std::vector<SearchHit> hits;
  ASSERT_TRUE(tree->Search(Rect(0, 1000, 0, 1000), &hits).ok());
  EXPECT_TRUE(hits.empty());
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST(RTreeTest, PersistsAcrossReopen) {
  const std::string path = testing::TempDir() + "/rtree_persist";
  std::remove(path.c_str());
  storage::PagerOptions pager_options;
  std::vector<Rect> data;
  {
    auto device = storage::FileBlockDevice::Open(path, true).value();
    auto pager =
        storage::Pager::Create(std::move(device), pager_options).value();
    auto tree = MakeTree(pager.get());
    workload::DatasetSpec spec;
    spec.kind = workload::DatasetKind::kI1;
    spec.count = 1500;
    spec.seed = 21;
    data = workload::GenerateDataset(spec);
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_TRUE(tree->Insert(data[i], i).ok());
    }
    ASSERT_TRUE(tree->SaveMeta().ok());
    ASSERT_TRUE(pager->Checkpoint().ok());
  }
  {
    auto device = storage::FileBlockDevice::Open(path, false).value();
    auto pager =
        storage::Pager::Open(std::move(device), pager_options).value();
    auto reopened = RTree::Open(pager.get());
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    auto tree = std::move(reopened).value();
    EXPECT_EQ(tree->size(), 1500u);
    ASSERT_TRUE(tree->CheckInvariants().ok());

    NaiveOracle oracle;
    for (size_t i = 0; i < data.size(); ++i) oracle.Insert(data[i], i);
    for (const Rect& query : workload::GenerateQueries(1, 1e6, 30, 5)) {
      std::vector<SearchHit> hits;
      ASSERT_TRUE(tree->Search(query, &hits).ok());
      EXPECT_EQ(Tids(hits), oracle.Search(query));
    }
  }
}

TEST(RTreeTest, InsertAfterReopenKeepsWorking) {
  const std::string path = testing::TempDir() + "/rtree_reopen_insert";
  std::remove(path.c_str());
  storage::PagerOptions pager_options;
  {
    auto pager = storage::Pager::Create(
                     storage::FileBlockDevice::Open(path, true).value(),
                     pager_options)
                     .value();
    auto tree = MakeTree(pager.get());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          tree->Insert(Rect(i * 10.0, i * 10.0 + 5, 0, 5), i).ok());
    }
    ASSERT_TRUE(tree->SaveMeta().ok());
    ASSERT_TRUE(pager->Checkpoint().ok());
  }
  {
    auto pager = storage::Pager::Open(
                     storage::FileBlockDevice::Open(path, false).value(),
                     pager_options)
                     .value();
    auto tree = RTree::Open(pager.get()).value();
    for (int i = 100; i < 200; ++i) {
      ASSERT_TRUE(
          tree->Insert(Rect(i * 10.0, i * 10.0 + 5, 0, 5), i).ok());
    }
    EXPECT_EQ(tree->size(), 200u);
    ASSERT_TRUE(tree->CheckInvariants().ok());
    std::vector<SearchHit> hits;
    ASSERT_TRUE(tree->Search(Rect(0, 2000, 0, 5), &hits).ok());
    EXPECT_EQ(hits.size(), 200u);
  }
}

TEST(RTreeTest, StatsTrackOperations) {
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const Coord x = rng.Uniform(0, 1000);
    ASSERT_TRUE(tree->Insert(Rect(x, x + 1, x, x + 1), i).ok());
  }
  EXPECT_EQ(tree->stats().inserts, 200u);
  EXPECT_GT(tree->stats().leaf_splits, 0u);
  EXPECT_GT(tree->stats().insert_node_accesses, 200u);

  std::vector<SearchHit> hits;
  ASSERT_TRUE(tree->Search(Rect(0, 1000, 0, 1000), &hits).ok());
  EXPECT_EQ(tree->stats().searches, 1u);
  EXPECT_GT(tree->stats().search_node_accesses, 0u);

  tree->ResetStats();
  EXPECT_EQ(tree->stats().inserts, 0u);
}

}  // namespace
}  // namespace segidx::rtree
