#include "common/geometry.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace segidx {
namespace {

TEST(IntervalTest, BasicProperties) {
  const Interval iv(2, 10);
  EXPECT_TRUE(iv.valid());
  EXPECT_EQ(iv.length(), 8);
  EXPECT_EQ(iv.center(), 6);
  EXPECT_FALSE(iv.is_point());

  const Interval pt = Interval::Point(5);
  EXPECT_TRUE(pt.is_point());
  EXPECT_EQ(pt.length(), 0);
}

TEST(IntervalTest, ContainsPoint) {
  const Interval iv(2, 10);
  EXPECT_TRUE(iv.Contains(2.0));
  EXPECT_TRUE(iv.Contains(10.0));
  EXPECT_TRUE(iv.Contains(5.0));
  EXPECT_FALSE(iv.Contains(1.999));
  EXPECT_FALSE(iv.Contains(10.001));
}

TEST(IntervalTest, ContainsAndSpans) {
  const Interval big(0, 100);
  const Interval small(10, 20);
  EXPECT_TRUE(big.Contains(small));
  EXPECT_TRUE(big.Spans(small));
  EXPECT_FALSE(small.Spans(big));
  // Span is reflexive.
  EXPECT_TRUE(big.Spans(big));
  // Exact boundary containment counts.
  EXPECT_TRUE(big.Spans(Interval(0, 100)));
  EXPECT_TRUE(big.Spans(Interval(0, 50)));
  EXPECT_FALSE(big.Spans(Interval(-1, 50)));
}

TEST(IntervalTest, IntersectsClosedSemantics) {
  EXPECT_TRUE(Interval(0, 5).Intersects(Interval(5, 10)));  // Touching.
  EXPECT_TRUE(Interval(0, 5).Intersects(Interval(3, 4)));
  EXPECT_FALSE(Interval(0, 5).Intersects(Interval(5.001, 10)));
  // Points.
  EXPECT_TRUE(Interval::Point(5).Intersects(Interval(0, 5)));
  EXPECT_TRUE(Interval::Point(5).Intersects(Interval::Point(5)));
  EXPECT_FALSE(Interval::Point(5).Intersects(Interval::Point(5.1)));
}

TEST(IntervalTest, EncloseAndIntersect) {
  const Interval a(0, 5);
  const Interval b(3, 10);
  EXPECT_EQ(a.Enclose(b), Interval(0, 10));
  EXPECT_EQ(a.Intersect(b), Interval(3, 5));
  // Enclose of disjoint intervals covers the gap.
  EXPECT_EQ(Interval(0, 1).Enclose(Interval(9, 10)), Interval(0, 10));
}

TEST(RectTest, AreaMarginCenter) {
  const Rect r(0, 4, 0, 3);
  EXPECT_EQ(r.area(), 12);
  EXPECT_EQ(r.margin(), 7);
  const Rect pt = Rect::Point(1, 2);
  EXPECT_EQ(pt.area(), 0);
  EXPECT_TRUE(pt.valid());
}

TEST(RectTest, Segment1DConstruction) {
  const Rect seg = Rect::Segment1D(10, 90, 5);
  EXPECT_EQ(seg.x, Interval(10, 90));
  EXPECT_TRUE(seg.y.is_point());
  EXPECT_EQ(seg.y.lo, 5);
}

TEST(RectTest, IntersectsAndContains) {
  const Rect a(0, 10, 0, 10);
  const Rect b(5, 15, 5, 15);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Contains(b));
  EXPECT_TRUE(a.Contains(Rect(1, 9, 1, 9)));
  // Disjoint in one dimension only.
  EXPECT_FALSE(a.Intersects(Rect(11, 12, 0, 10)));
  EXPECT_FALSE(a.Intersects(Rect(0, 10, 11, 12)));
  // Edge touching counts as intersection (closed rectangles).
  EXPECT_TRUE(a.Intersects(Rect(10, 12, 0, 10)));
  EXPECT_TRUE(a.Intersects(Rect(10, 12, 10, 12)));  // Corner touch.
}

TEST(RectTest, SpansEitherDimension) {
  const Rect region(10, 20, 10, 20);
  // Spans in X only.
  EXPECT_TRUE(Rect(0, 30, 12, 15).SpansEitherDimension(region));
  // Spans in Y only.
  EXPECT_TRUE(Rect(12, 15, 0, 30).SpansEitherDimension(region));
  // Spans in both.
  EXPECT_TRUE(Rect(0, 30, 0, 30).SpansEitherDimension(region));
  EXPECT_TRUE(Rect(0, 30, 0, 30).SpansBothDimensions(region));
  // Spans in neither.
  EXPECT_FALSE(Rect(12, 15, 12, 15).SpansEitherDimension(region));
  EXPECT_FALSE(Rect(0, 30, 12, 15).SpansBothDimensions(region));
  // A horizontal segment spanning a degenerate-Y region.
  const Rect segment_region = Rect::Segment1D(10, 20, 5);
  EXPECT_TRUE(
      Rect::Segment1D(0, 30, 5).SpansEitherDimension(segment_region));
}

TEST(RectTest, SpansRegionRequiresIntersection) {
  const Rect region(10, 20, 10, 20);
  // Covers the region's X range and touches it in Y: spanning.
  EXPECT_TRUE(Rect(0, 30, 15, 40).SpansRegion(region));
  EXPECT_TRUE(Rect(0, 30, 20, 40).SpansRegion(region));  // Edge touch.
  // Covers the region's X range but lies entirely above it: NOT spanning
  // (this is the difference from SpansEitherDimension).
  EXPECT_FALSE(Rect(0, 30, 25, 40).SpansRegion(region));
  EXPECT_TRUE(Rect(0, 30, 25, 40).SpansEitherDimension(region));
  // Intersects but covers neither dimension: not spanning.
  EXPECT_FALSE(Rect(15, 25, 15, 25).SpansRegion(region));
  // A horizontal segment through the region, covering X: spanning.
  EXPECT_TRUE(Rect::Segment1D(0, 30, 15).SpansRegion(region));
  // The same segment below the region: not spanning.
  EXPECT_FALSE(Rect::Segment1D(0, 30, 5).SpansRegion(region));
}

TEST(RectTest, Enlargement) {
  const Rect r(0, 10, 0, 10);
  EXPECT_EQ(r.Enlargement(Rect(2, 3, 2, 3)), 0);
  // Growing to (0,20)x(0,10): area 200 - 100.
  EXPECT_EQ(r.Enlargement(Rect(15, 20, 0, 10)), 100);
}

TEST(CutRecordTest, FullyEnclosedHasNoRemnants) {
  const CutResult cut = CutRecord(Rect(2, 3, 2, 3), Rect(0, 10, 0, 10));
  EXPECT_EQ(cut.spanning_portion, Rect(2, 3, 2, 3));
  EXPECT_TRUE(cut.remnants.empty());
}

TEST(CutRecordTest, HorizontalOverhangProducesSideRemnants) {
  // Paper Figure 3: a segment extending beyond one border.
  const Rect record = Rect::Segment1D(0, 100, 5);
  const Rect region(20, 60, 0, 10);
  const CutResult cut = CutRecord(record, region);
  EXPECT_EQ(cut.spanning_portion, Rect::Segment1D(20, 60, 5));
  ASSERT_EQ(cut.remnants.size(), 2u);
  EXPECT_EQ(cut.remnants[0], Rect::Segment1D(0, 20, 5));
  EXPECT_EQ(cut.remnants[1], Rect::Segment1D(60, 100, 5));
}

TEST(CutRecordTest, FourSidedOverhang) {
  const Rect record(0, 100, 0, 100);
  const Rect region(40, 60, 40, 60);
  const CutResult cut = CutRecord(record, region);
  EXPECT_EQ(cut.spanning_portion, region);
  ASSERT_EQ(cut.remnants.size(), 4u);
  // Left and right slabs take the full record height; top/bottom pieces
  // cover only the middle column.
  EXPECT_EQ(cut.remnants[0], Rect(0, 40, 0, 100));
  EXPECT_EQ(cut.remnants[1], Rect(60, 100, 0, 100));
  EXPECT_EQ(cut.remnants[2], Rect(40, 60, 0, 40));
  EXPECT_EQ(cut.remnants[3], Rect(40, 60, 60, 100));
}

// Property: the spanning portion plus remnants tile the record — their
// areas sum to the record's area and each piece is inside the record.
TEST(CutRecordTest, PiecesTileTheRecordProperty) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const Rect record(rng.Uniform(0, 50), rng.Uniform(50, 100),
                      rng.Uniform(0, 50), rng.Uniform(50, 100));
    const Rect region(rng.Uniform(0, 60), rng.Uniform(60, 120),
                      rng.Uniform(0, 60), rng.Uniform(60, 120));
    if (!record.Intersects(region)) continue;
    const CutResult cut = CutRecord(record, region);

    EXPECT_TRUE(region.Contains(cut.spanning_portion));
    EXPECT_TRUE(record.Contains(cut.spanning_portion));
    double total = cut.spanning_portion.area();
    for (const Rect& remnant : cut.remnants) {
      EXPECT_TRUE(record.Contains(remnant));
      EXPECT_FALSE(remnant.x.length() == 0 && remnant.y.length() == 0);
      total += remnant.area();
      // Remnant interiors are outside the region: their intersection with
      // the region has zero area.
      if (remnant.Intersects(region)) {
        EXPECT_EQ(remnant.Intersect(region).area(), 0.0);
      }
    }
    EXPECT_NEAR(total, record.area(), 1e-6 * (1 + record.area()));
  }
}

// Algebraic laws the index machinery silently relies on, over random
// inputs: Enclose is commutative/associative-compatible and monotone;
// Intersect of intersecting rects is contained in both; Enlargement is
// non-negative and zero exactly for containment.
TEST(RectAlgebraTest, RandomizedLaws) {
  Rng rng(41);
  auto random_rect = [&rng]() {
    const Coord x = rng.Uniform(-100, 100);
    const Coord y = rng.Uniform(-100, 100);
    return Rect(x, x + rng.Uniform(0, 80), y, y + rng.Uniform(0, 80));
  };
  for (int trial = 0; trial < 3000; ++trial) {
    const Rect a = random_rect();
    const Rect b = random_rect();
    const Rect c = random_rect();

    // Enclose: commutative, idempotent, contains both operands.
    EXPECT_EQ(a.Enclose(b), b.Enclose(a));
    EXPECT_EQ(a.Enclose(a), a);
    EXPECT_TRUE(a.Enclose(b).Contains(a));
    EXPECT_TRUE(a.Enclose(b).Contains(b));
    // Associative.
    EXPECT_EQ(a.Enclose(b).Enclose(c), a.Enclose(b.Enclose(c)));

    // Intersection symmetric; containment of intersection.
    EXPECT_EQ(a.Intersects(b), b.Intersects(a));
    if (a.Intersects(b)) {
      const Rect i = a.Intersect(b);
      EXPECT_TRUE(i.valid());
      EXPECT_TRUE(a.Contains(i));
      EXPECT_TRUE(b.Contains(i));
      EXPECT_EQ(i, b.Intersect(a));
    }

    // Enlargement: non-negative; zero iff already contained.
    EXPECT_GE(a.Enlargement(b), 0);
    if (a.Contains(b)) {
      EXPECT_EQ(a.Enlargement(b), 0);
    }

    // Contains implies Intersects and span relations are consistent.
    if (a.Contains(b)) {
      EXPECT_TRUE(a.Intersects(b));
      EXPECT_TRUE(a.SpansRegion(b));
      EXPECT_TRUE(a.SpansBothDimensions(b));
    }
    if (a.SpansRegion(b)) {
      EXPECT_TRUE(a.Intersects(b));
      EXPECT_TRUE(a.SpansEitherDimension(b));
    }
  }
}

TEST(RectTest, ToStringIsReadable) {
  EXPECT_EQ(Rect(1, 2, 3, 4).ToString(), "[1, 2]x[3, 4]");
  EXPECT_EQ(Interval(1, 2).ToString(), "[1, 2]");
}

}  // namespace
}  // namespace segidx
