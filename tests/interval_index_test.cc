#include "core/interval_index.h"

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "oracle/naive_oracle.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace segidx::core {
namespace {

using oracle::NaiveOracle;
using test_util::Tids;

IndexOptions SmallOptions(uint64_t expected_tuples) {
  IndexOptions options;
  options.skeleton.expected_tuples = expected_tuples;
  options.skeleton.prediction_sample =
      std::max<uint64_t>(1, expected_tuples / 10);
  options.skeleton.coalesce_interval = 500;
  return options;
}

const IndexKind kAllKinds[] = {IndexKind::kRTree, IndexKind::kSRTree,
                               IndexKind::kSkeletonRTree,
                               IndexKind::kSkeletonSRTree};

TEST(IntervalIndexTest, KindNames) {
  EXPECT_STREQ(IndexKindName(IndexKind::kRTree), "R-Tree");
  EXPECT_STREQ(IndexKindName(IndexKind::kSRTree), "SR-Tree");
  EXPECT_STREQ(IndexKindName(IndexKind::kSkeletonRTree), "Skeleton R-Tree");
  EXPECT_STREQ(IndexKindName(IndexKind::kSkeletonSRTree),
               "Skeleton SR-Tree");
  EXPECT_TRUE(IsSkeleton(IndexKind::kSkeletonRTree));
  EXPECT_FALSE(IsSkeleton(IndexKind::kSRTree));
  EXPECT_TRUE(IsSegment(IndexKind::kSkeletonSRTree));
  EXPECT_FALSE(IsSegment(IndexKind::kSkeletonRTree));
}

TEST(IntervalIndexTest, RejectsManuallyEnabledSpanning) {
  IndexOptions options;
  options.tree.enable_spanning = true;
  EXPECT_FALSE(
      IntervalIndex::CreateInMemory(IndexKind::kSRTree, options).ok());
}

TEST(IntervalIndexTest, InsertIntervalConvenience) {
  auto index = IntervalIndex::CreateInMemory(IndexKind::kSRTree,
                                             SmallOptions(100))
                   .value();
  ASSERT_TRUE(index->InsertInterval(Interval(10, 90), 5, 1).ok());
  std::vector<TupleId> tids;
  ASSERT_TRUE(index->SearchTuples(Rect(50, 50, 5, 5), &tids).ok());
  EXPECT_EQ(tids, (std::vector<TupleId>{1}));
}

TEST(IntervalIndexTest, SearchTuplesDeduplicatesCutPieces) {
  auto index = IntervalIndex::CreateInMemory(IndexKind::kSRTree,
                                             SmallOptions(10000))
                   .value();
  workload::DatasetSpec spec;
  spec.kind = workload::DatasetKind::kI3;
  spec.count = 5000;
  spec.seed = 2;
  const std::vector<Rect> data = workload::GenerateDataset(spec);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index->Insert(data[i], i).ok());
  }
  // With exponential lengths some records are cut; SearchTuples must never
  // report a tuple twice.
  for (const Rect& query : workload::GenerateQueries(10, 1e6, 30, 5)) {
    std::vector<TupleId> tids;
    ASSERT_TRUE(index->SearchTuples(query, &tids).ok());
    std::vector<TupleId> sorted = tids;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
  }
}

class AllKindsOracleTest
    : public testing::TestWithParam<std::tuple<IndexKind, int>> {};

TEST_P(AllKindsOracleTest, MatchesOracleOnMixedWorkload) {
  const IndexKind kind = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  auto index =
      IntervalIndex::CreateInMemory(kind, SmallOptions(4000)).value();
  NaiveOracle oracle;

  workload::DatasetSpec spec;
  spec.kind = seed % 2 == 0 ? workload::DatasetKind::kI4
                            : workload::DatasetKind::kR2;
  spec.count = 4000;
  spec.seed = static_cast<uint64_t>(seed);
  const std::vector<Rect> data = workload::GenerateDataset(spec);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index->Insert(data[i], i).ok());
    oracle.Insert(data[i], i);
  }
  ASSERT_TRUE(index->Finalize().ok());
  ASSERT_TRUE(index->CheckInvariants().ok());
  EXPECT_EQ(index->size(), 4000u);

  for (double qar : {0.001, 1.0, 1000.0}) {
    for (const Rect& query :
         workload::GenerateQueries(qar, 1e6, 15, seed + 40)) {
      std::vector<TupleId> tids;
      ASSERT_TRUE(index->SearchTuples(query, &tids).ok());
      std::sort(tids.begin(), tids.end());
      EXPECT_EQ(tids, oracle.Search(query));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllKindsOracleTest,
    testing::Combine(testing::ValuesIn(kAllKinds), testing::Values(1, 2)),
    [](const testing::TestParamInfo<std::tuple<IndexKind, int>>& info) {
      std::string name = IndexKindName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == ' ' || c == '-') c = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(info.param));
    });

TEST(IntervalIndexTest, PersistAndReopenAllKinds) {
  for (IndexKind kind : kAllKinds) {
    const std::string path = testing::TempDir() + "/iidx_" +
                             std::to_string(static_cast<int>(kind));
    std::remove(path.c_str());
    IndexOptions options = SmallOptions(2000);
    NaiveOracle oracle;
    {
      auto created = IntervalIndex::CreateOnDisk(kind, path, options);
      ASSERT_TRUE(created.ok()) << created.status().ToString();
      auto index = std::move(created).value();
      workload::DatasetSpec spec;
      spec.kind = workload::DatasetKind::kI3;
      spec.count = 2000;
      spec.seed = 3;
      const std::vector<Rect> data = workload::GenerateDataset(spec);
      for (size_t i = 0; i < data.size(); ++i) {
        ASSERT_TRUE(index->Insert(data[i], i).ok());
        oracle.Insert(data[i], i);
      }
      ASSERT_TRUE(index->Flush().ok());
    }
    {
      auto opened = IntervalIndex::OpenFromDisk(path, options);
      ASSERT_TRUE(opened.ok())
          << IndexKindName(kind) << ": " << opened.status().ToString();
      auto index = std::move(opened).value();
      EXPECT_EQ(index->kind(), kind);
      EXPECT_EQ(index->size(), 2000u);
      ASSERT_TRUE(index->CheckInvariants().ok());
      for (const Rect& query : workload::GenerateQueries(1, 1e6, 20, 8)) {
        std::vector<TupleId> tids;
        ASSERT_TRUE(index->SearchTuples(query, &tids).ok());
        std::sort(tids.begin(), tids.end());
        EXPECT_EQ(tids, oracle.Search(query));
      }
    }
  }
}

TEST(IntervalIndexTest, OpenMissingFileFails) {
  EXPECT_FALSE(IntervalIndex::OpenFromDisk(
                   testing::TempDir() + "/definitely_missing_index",
                   IndexOptions())
                   .ok());
}

TEST(IntervalIndexTest, DeleteOnlyOnPlainRTree) {
  auto rtree = IntervalIndex::CreateInMemory(IndexKind::kRTree,
                                             SmallOptions(100))
                   .value();
  ASSERT_TRUE(rtree->Insert(Rect(0, 1, 0, 1), 1).ok());
  EXPECT_TRUE(rtree->Delete(Rect(0, 1, 0, 1), 1).ok());

  auto srtree = IntervalIndex::CreateInMemory(IndexKind::kSRTree,
                                              SmallOptions(100))
                    .value();
  ASSERT_TRUE(srtree->Insert(Rect(0, 1, 0, 1), 1).ok());
  EXPECT_EQ(srtree->Delete(Rect(0, 1, 0, 1), 1).code(),
            StatusCode::kUnimplemented);
}

TEST(IntervalIndexTest, BulkLoadOnNonSkeletonKinds) {
  std::vector<std::pair<Rect, TupleId>> records;
  for (int i = 0; i < 500; ++i) {
    const double x = (i % 50) * 100.0;
    const double y = (i / 50) * 1000.0;
    records.emplace_back(Rect(x, x + 10, y, y + 10), i);
  }
  auto index =
      IntervalIndex::CreateInMemory(IndexKind::kRTree, SmallOptions(500))
          .value();
  ASSERT_TRUE(index->BulkLoad(records).ok());
  EXPECT_EQ(index->size(), 500u);
  ASSERT_TRUE(index->CheckInvariants().ok());
  std::vector<TupleId> tids;
  ASSERT_TRUE(index->SearchTuples(Rect(0, 5000, 0, 10000), &tids).ok());
  EXPECT_FALSE(tids.empty());

  // Skeleton kinds refuse: packing replaces skeleton construction.
  auto skeleton = IntervalIndex::CreateInMemory(IndexKind::kSkeletonSRTree,
                                                SmallOptions(500))
                      .value();
  EXPECT_EQ(skeleton->BulkLoad(records).code(),
            StatusCode::kFailedPrecondition);
}

TEST(IntervalIndexTest, DumpStructureMentionsEveryLevel) {
  auto index = IntervalIndex::CreateInMemory(IndexKind::kSRTree,
                                             SmallOptions(2000))
                   .value();
  workload::DatasetSpec spec;
  spec.kind = workload::DatasetKind::kM1;
  spec.count = 2000;
  spec.seed = 7;
  const std::vector<Rect> data = workload::GenerateDataset(spec);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index->Insert(data[i], i).ok());
  }
  std::ostringstream os;
  ASSERT_TRUE(index->tree()->DumpStructure(os, /*max_depth=*/1).ok());
  const std::string dump = os.str();
  EXPECT_NE(dump.find("level-"), std::string::npos);
  EXPECT_NE(dump.find("branches"), std::string::npos);
  EXPECT_NE(dump.find("elided"), std::string::npos);  // Depth was limited.

  // A full dump reaches the leaves and mentions spanning records if any
  // were placed.
  std::ostringstream full;
  ASSERT_TRUE(index->tree()->DumpStructure(full).ok());
  EXPECT_NE(full.str().find("leaf @"), std::string::npos);
  if (index->tree_stats().spanning_placed > 0) {
    EXPECT_NE(full.str().find("~ span"), std::string::npos);
  }
}

TEST(IntervalIndexTest, StatsAndIntrospection) {
  auto index = IntervalIndex::CreateInMemory(IndexKind::kSkeletonSRTree,
                                             SmallOptions(3000))
                   .value();
  workload::DatasetSpec spec;
  spec.kind = workload::DatasetKind::kI3;
  spec.count = 3000;
  spec.seed = 9;
  const std::vector<Rect> data = workload::GenerateDataset(spec);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index->Insert(data[i], i).ok());
  }
  ASSERT_TRUE(index->Finalize().ok());
  EXPECT_GT(index->index_bytes(), 100000u);
  EXPECT_GT(index->height(), 1);
  EXPECT_GT(index->tree_stats().spanning_placed, 0u);
  EXPECT_GT(index->storage_stats().logical_reads, 0u);
  auto per_level = index->NodesPerLevel();
  ASSERT_TRUE(per_level.ok());
  EXPECT_EQ(per_level->size(), static_cast<size_t>(index->height()));
  index->ResetStats();
  EXPECT_EQ(index->tree_stats().inserts, 0u);
  EXPECT_EQ(index->storage_stats().logical_reads, 0u);
}

}  // namespace
}  // namespace segidx::core
