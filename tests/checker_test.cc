// StructureChecker validation: clean trees of every kind pass the full
// check, and a deliberately injected corruption of each invariant class is
// reported as exactly that violation kind. Corruptions are injected by
// rewriting node pages in place through the pager (checksums are recomputed
// by Node::Serialize, so the damage is semantic, not a bad checksum).

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "check/structure_checker.h"
#include "core/interval_index.h"
#include "rtree/node.h"
#include "rtree/rtree.h"
#include "storage/pager.h"

namespace segidx {
namespace {

using check::CheckOptions;
using check::CheckReport;
using check::StructureChecker;
using check::ViolationKind;
using core::IndexKind;
using core::IndexOptions;
using core::IntervalIndex;
using rtree::Node;
using storage::PageId;

using Records = std::vector<std::pair<Rect, TupleId>>;

// A deterministic mixed workload: grid rectangles with positive extent in
// both dimensions, plus domain-spanning slabs that force spanning records
// (and cutting) in SR-Trees.
Records MixedRecords(int n) {
  Records records;
  for (int i = 0; i < n; ++i) {
    const double x = (i % 40) * 250.0;
    const double y = (i / 40) * 400.0;
    if (i % 10 == 7) {
      records.emplace_back(Rect(-500, 10500, y, y + 20),
                           static_cast<TupleId>(i));
    } else {
      records.emplace_back(Rect(x, x + 200, y, y + 300),
                           static_cast<TupleId>(i));
    }
  }
  return records;
}

std::unique_ptr<IntervalIndex> BuildIndex(IndexKind kind,
                                          const Records& records) {
  IndexOptions options;
  options.skeleton.expected_tuples = records.size();
  options.skeleton.prediction_sample = records.size() / 4 + 1;
  auto index = IntervalIndex::CreateInMemory(kind, options).value();
  for (const auto& [rect, tid] : records) {
    EXPECT_TRUE(index->Insert(rect, tid).ok());
  }
  EXPECT_TRUE(index->Finalize().ok());
  return index;
}

Node ReadNode(rtree::RTree* tree, PageId id) {
  return tree->ReadNode(id).value();
}

// Serializes `node` back onto its extent; the page checksum is recomputed,
// so only the injected semantic damage is visible to the checker.
void RewriteNode(storage::Pager* pager, PageId id, const Node& node) {
  auto handle = pager->Fetch(id).value();
  ASSERT_TRUE(node.Serialize(handle.data(), handle.size()).ok());
  handle.MarkDirty();
}

// First leaf found on the left spine.
PageId FindLeaf(rtree::RTree* tree) {
  PageId id = tree->root();
  Node node = ReadNode(tree, id);
  while (!node.is_leaf()) {
    id = node.branches.front().child;
    node = ReadNode(tree, id);
  }
  return id;
}

// Any node holding at least one spanning record; invalid() if none exist.
PageId FindSpanningNode(rtree::RTree* tree) {
  std::vector<PageId> stack = {tree->root()};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    const Node node = ReadNode(tree, id);
    if (!node.spanning.empty()) return id;
    if (!node.is_leaf()) {
      for (const auto& b : node.branches) stack.push_back(b.child);
    }
  }
  return PageId();
}

CheckReport Check(IntervalIndex* index, const CheckOptions& options = {}) {
  return index->CheckStructure(options).value();
}

// Every violation in `report` is of `kind`, and there is at least one.
void ExpectOnly(const CheckReport& report, ViolationKind kind) {
  EXPECT_GE(report.CountOf(kind), 1u) << report.ToString();
  EXPECT_EQ(report.CountOf(kind), report.violations.size())
      << report.ToString();
}

TEST(StructureCheckerTest, CleanTreesOfEveryKindPassTheFullCheck) {
  const Records records = MixedRecords(600);
  for (const IndexKind kind :
       {IndexKind::kRTree, IndexKind::kSRTree, IndexKind::kSkeletonRTree,
        IndexKind::kSkeletonSRTree}) {
    auto index = BuildIndex(kind, records);
    CheckOptions options;
    options.expected_records = &records;
    const CheckReport report = Check(index.get(), options);
    EXPECT_TRUE(report.ok())
        << core::IndexKindName(kind) << ":\n" << report.ToString();
    EXPECT_GT(report.nodes_visited, 1u);
    if (core::IsSegment(kind)) {
      EXPECT_GT(report.spanning_records, 0u) << core::IndexKindName(kind);
    }
  }
}

TEST(StructureCheckerTest, PureInsertTreeSatisfiesMinFillAndTightness) {
  // A plain R-Tree grown by splits alone keeps Guttman's minimum fill and
  // tight MBRs, so the strict options must pass before any corruption.
  auto index = BuildIndex(IndexKind::kRTree, MixedRecords(600));
  CheckOptions options;
  options.expect_min_fill = true;
  options.check_mbr_tightness = true;
  const CheckReport report = Check(index.get(), options);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(StructureCheckerTest, LooseMbrIsReported) {
  auto index = BuildIndex(IndexKind::kRTree, MixedRecords(600));
  rtree::RTree* tree = index->tree();
  Node root = ReadNode(tree, tree->root());
  ASSERT_FALSE(root.is_leaf());
  // Shrink one branch region to its lower corner: the subtree's entries now
  // escape the recorded region.
  Rect& r = root.branches.front().rect;
  r = Rect(Interval::Point(r.x.lo), Interval::Point(r.y.lo));
  RewriteNode(index->pager(), tree->root(), root);

  ExpectOnly(Check(index.get()), ViolationKind::kMbrNotContained);
}

TEST(StructureCheckerTest, SlackMbrIsReportedOnlyUnderTightness) {
  auto index = BuildIndex(IndexKind::kRTree, MixedRecords(600));
  rtree::RTree* tree = index->tree();
  Node root = ReadNode(tree, tree->root());
  ASSERT_FALSE(root.is_leaf());
  ASSERT_GE(root.branches.size(), 2u);
  // Inflate one branch region to the whole root region: still contains its
  // subtree (no containment violation), but no longer the tight MBR.
  root.branches.front().rect = tree->root_region();
  RewriteNode(index->pager(), tree->root(), root);

  EXPECT_TRUE(Check(index.get()).ok());
  CheckOptions tight;
  tight.check_mbr_tightness = true;
  ExpectOnly(Check(index.get(), tight), ViolationKind::kMbrNotTight);
}

TEST(StructureCheckerTest, BrokenSpanningLinkIsReported) {
  auto index = BuildIndex(IndexKind::kSRTree, MixedRecords(600));
  rtree::RTree* tree = index->tree();
  const PageId id = FindSpanningNode(tree);
  ASSERT_TRUE(id.valid()) << "workload produced no spanning records";
  Node node = ReadNode(tree, id);
  PageId bogus;
  bogus.block = 12345678;
  node.spanning.front().linked_child = bogus.Encode();
  RewriteNode(index->pager(), id, node);

  ExpectOnly(Check(index.get()), ViolationKind::kSpanningBrokenLink);
}

TEST(StructureCheckerTest, NonSpanningRecordIsReported) {
  auto index = BuildIndex(IndexKind::kSRTree, MixedRecords(600));
  rtree::RTree* tree = index->tree();
  const PageId id = FindSpanningNode(tree);
  ASSERT_TRUE(id.valid());
  Node node = ReadNode(tree, id);
  auto& entry = node.spanning.front();
  const int branch = node.FindBranch(PageId::Decode(entry.linked_child));
  ASSERT_GE(branch, 0);
  const Rect& region = node.branches[branch].rect;
  ASSERT_TRUE(region.x.length() > 0 && region.y.length() > 0);
  // A point strictly inside the linked branch region spans it in neither
  // dimension.
  entry.rect = Rect::Point(region.x.center(), region.y.center());
  RewriteNode(index->pager(), id, node);

  ExpectOnly(Check(index.get()), ViolationKind::kSpanningNotSpanning);
}

TEST(StructureCheckerTest, EscapedSpanningRecordIsReported) {
  auto index = BuildIndex(IndexKind::kSRTree, MixedRecords(600));
  rtree::RTree* tree = index->tree();
  const PageId id = FindSpanningNode(tree);
  ASSERT_TRUE(id.valid());
  Node node = ReadNode(tree, id);
  // Stretch the record across the whole node region and beyond: it still
  // spans its linked branch, but escapes the node's recorded region.
  const Rect wide(tree->root_region().x.lo - 1e6,
                  tree->root_region().x.hi + 1e6,
                  tree->root_region().y.lo - 1e6,
                  tree->root_region().y.hi + 1e6);
  node.spanning.front().rect = wide;
  RewriteNode(index->pager(), id, node);

  const CheckReport report = Check(index.get());
  EXPECT_GE(report.CountOf(ViolationKind::kSpanningNotContained), 1u)
      << report.ToString();
}

TEST(StructureCheckerTest, OverlappingRemnantsAreReported) {
  const Records records = MixedRecords(600);
  auto index = BuildIndex(IndexKind::kSRTree, records);
  rtree::RTree* tree = index->tree();
  // Find a leaf with spare capacity holding a full-dimensional piece and
  // duplicate that piece: the tuple's stored pieces now overlap.
  std::vector<PageId> stack = {tree->root()};
  bool injected = false;
  while (!stack.empty() && !injected) {
    const PageId id = stack.back();
    stack.pop_back();
    Node node = ReadNode(tree, id);
    if (!node.is_leaf()) {
      for (const auto& b : node.branches) stack.push_back(b.child);
      continue;
    }
    if (node.records.size() + 1 > tree->LeafCapacity()) continue;
    for (const auto& entry : node.records) {
      if (entry.rect.x.length() > 0 && entry.rect.y.length() > 0) {
        node.records.push_back(entry);
        RewriteNode(index->pager(), id, node);
        injected = true;
        break;
      }
    }
  }
  ASSERT_TRUE(injected);

  CheckOptions options;
  options.expected_records = &records;
  ExpectOnly(Check(index.get(), options), ViolationKind::kRemnantOverlap);
}

TEST(StructureCheckerTest, MissingRemnantIsReported) {
  const Records records = MixedRecords(600);
  auto index = BuildIndex(IndexKind::kSRTree, records);
  rtree::RTree* tree = index->tree();
  const PageId id = FindLeaf(tree);
  Node node = ReadNode(tree, id);
  ASSERT_FALSE(node.records.empty());
  node.records.pop_back();
  RewriteNode(index->pager(), id, node);

  CheckOptions options;
  options.expected_records = &records;
  ExpectOnly(Check(index.get(), options), ViolationKind::kRemnantGap);
}

TEST(StructureCheckerTest, UnexpectedAndMissingRecordsAreReported) {
  Records records = MixedRecords(400);
  auto index = BuildIndex(IndexKind::kRTree, records);
  // Drop one record from the expected set: its stored piece becomes
  // unexpected, and the totals disagree.
  records.pop_back();
  CheckOptions options;
  options.expected_records = &records;
  const CheckReport report = Check(index.get(), options);
  EXPECT_GE(report.CountOf(ViolationKind::kUnexpectedRecord), 1u)
      << report.ToString();
  EXPECT_EQ(report.CountOf(ViolationKind::kRecordCountMismatch), 1u)
      << report.ToString();
}

TEST(StructureCheckerTest, WrongNodeSizeClassIsReported) {
  auto index = BuildIndex(IndexKind::kRTree, MixedRecords(600));
  rtree::RTree* tree = index->tree();
  Node root = ReadNode(tree, tree->root());
  ASSERT_FALSE(root.is_leaf());
  // Claim the first child sits on a differently-sized extent than its level
  // dictates (Section 2.1.2 doubling).
  root.branches.front().child.size_class ^= 1;
  RewriteNode(index->pager(), tree->root(), root);

  ExpectOnly(Check(index.get()), ViolationKind::kWrongSizeClass);
}

TEST(StructureCheckerTest, WrongLevelIsReportedAsUnbalanced) {
  auto index = BuildIndex(IndexKind::kRTree, MixedRecords(600));
  rtree::RTree* tree = index->tree();
  const PageId id = FindLeaf(tree);
  Node node = ReadNode(tree, id);
  node.level = 1;  // A leaf claiming to be a branch level.
  node.records.clear();
  RewriteNode(index->pager(), id, node);

  const CheckReport report = Check(index.get());
  EXPECT_GE(report.CountOf(ViolationKind::kUnbalancedTree), 1u)
      << report.ToString();
}

TEST(StructureCheckerTest, BelowMinFillIsReportedOnlyWhenRequested) {
  auto index = BuildIndex(IndexKind::kRTree, MixedRecords(600));
  rtree::RTree* tree = index->tree();
  const PageId id = FindLeaf(tree);
  Node node = ReadNode(tree, id);
  ASSERT_GT(node.records.size(), 1u);
  node.records.resize(1);
  RewriteNode(index->pager(), id, node);

  EXPECT_TRUE(Check(index.get()).ok());
  CheckOptions strict;
  strict.expect_min_fill = true;
  ExpectOnly(Check(index.get(), strict), ViolationKind::kBelowMinFill);
}

TEST(StructureCheckerTest, LeakedExtentIsReportedAsOrphaned) {
  auto index = BuildIndex(IndexKind::kRTree, MixedRecords(400));
  {
    auto leaked = index->pager()->Allocate(0).value();
    leaked.Release();  // Allocated, never linked into the tree or freed.
  }
  ExpectOnly(Check(index.get()), ViolationKind::kPageOrphaned);
}

TEST(StructureCheckerTest, DoublyReferencedChildIsReported) {
  auto index = BuildIndex(IndexKind::kRTree, MixedRecords(600));
  rtree::RTree* tree = index->tree();
  Node root = ReadNode(tree, tree->root());
  ASSERT_FALSE(root.is_leaf());
  ASSERT_LT(root.branches.size(), tree->BranchCapacity(root.level));
  root.branches.push_back(root.branches.front());
  RewriteNode(index->pager(), tree->root(), root);

  ExpectOnly(Check(index.get()), ViolationKind::kPageDoublyReferenced);
}

TEST(StructureCheckerTest, QuickInvariantsCatchDeepDamage) {
  // IntervalIndex::CheckInvariants runs the full walk: page-level damage
  // invisible to the old shallow check now surfaces through the facade.
  auto index = BuildIndex(IndexKind::kRTree, MixedRecords(400));
  {
    auto leaked = index->pager()->Allocate(0).value();
    leaked.Release();
  }
  const Status st = index->CheckInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("PAGE_ORPHANED"), std::string::npos)
      << st.ToString();
}

// --- skeleton grid validation -------------------------------------------

rtree::SkeletonSpec TwoLevelSpec() {
  rtree::SkeletonSpec spec;
  spec.levels.resize(2);
  spec.levels[0].x_bounds = {0, 25, 50, 75, 100};
  spec.levels[0].y_bounds = {0, 50, 100};
  spec.levels[1].x_bounds = {0, 50, 100};
  spec.levels[1].y_bounds = {0, 100};
  return spec;
}

TEST(StructureCheckerTest, ValidSkeletonSpecPasses) {
  EXPECT_TRUE(
      StructureChecker::CheckSpec(TwoLevelSpec(), Rect(0, 100, 0, 100)).ok());
}

TEST(StructureCheckerTest, NonIncreasingSpecBoundsAreRejected) {
  rtree::SkeletonSpec spec = TwoLevelSpec();
  spec.levels[0].x_bounds[2] = spec.levels[0].x_bounds[1];
  EXPECT_FALSE(
      StructureChecker::CheckSpec(spec, Rect(0, 100, 0, 100)).ok());
}

TEST(StructureCheckerTest, NonNestedSpecBoundsAreRejected) {
  rtree::SkeletonSpec spec = TwoLevelSpec();
  spec.levels[1].x_bounds = {0, 40, 100};  // 40 is not a leaf boundary.
  EXPECT_FALSE(
      StructureChecker::CheckSpec(spec, Rect(0, 100, 0, 100)).ok());
}

TEST(StructureCheckerTest, SpecNotCoveringDomainIsRejected) {
  EXPECT_FALSE(
      StructureChecker::CheckSpec(TwoLevelSpec(), Rect(0, 200, 0, 100)).ok());
}

}  // namespace
}  // namespace segidx
