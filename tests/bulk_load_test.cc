#include "rtree/bulk_load.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "oracle/naive_oracle.h"
#include "srtree/srtree.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace segidx::rtree {
namespace {

using oracle::NaiveOracle;
using test_util::MakeMemoryPager;
using test_util::Tids;

std::vector<std::pair<Rect, TupleId>> MakeRecords(
    workload::DatasetKind kind, uint64_t count, uint64_t seed) {
  workload::DatasetSpec spec;
  spec.kind = kind;
  spec.count = count;
  spec.seed = seed;
  const std::vector<Rect> rects = workload::GenerateDataset(spec);
  std::vector<std::pair<Rect, TupleId>> out;
  out.reserve(rects.size());
  for (size_t i = 0; i < rects.size(); ++i) out.emplace_back(rects[i], i);
  return out;
}

struct PackCase {
  PackingMethod method;
  workload::DatasetKind dataset;
  uint64_t count;
};

void PrintTo(const PackCase& c, std::ostream* os) {
  *os << (c.method == PackingMethod::kLowX  ? "LowX"
          : c.method == PackingMethod::kSTR ? "STR"
                                            : "Hilbert")
      << "_"
      << workload::DatasetKindName(c.dataset) << "_n" << c.count;
}

class BulkLoadTest : public testing::TestWithParam<PackCase> {};

TEST_P(BulkLoadTest, MatchesOracleAndInvariants) {
  const PackCase& c = GetParam();
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  auto records = MakeRecords(c.dataset, c.count, 3);
  NaiveOracle oracle;
  for (const auto& [rect, tid] : records) oracle.Insert(rect, tid);

  ASSERT_TRUE(BulkLoad(tree.get(), records, c.method).ok());
  EXPECT_EQ(tree->size(), c.count);
  ASSERT_TRUE(tree->CheckInvariants().ok());

  for (double qar : {0.01, 1.0, 100.0}) {
    for (const Rect& query : workload::GenerateQueries(qar, 1e6, 20, 9)) {
      std::vector<SearchHit> hits;
      ASSERT_TRUE(tree->Search(query, &hits).ok());
      EXPECT_EQ(Tids(hits), oracle.Search(query));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Packings, BulkLoadTest,
    testing::Values(
        PackCase{PackingMethod::kSTR, workload::DatasetKind::kR1, 5000},
        PackCase{PackingMethod::kSTR, workload::DatasetKind::kI3, 5000},
        PackCase{PackingMethod::kLowX, workload::DatasetKind::kR1, 5000},
        PackCase{PackingMethod::kLowX, workload::DatasetKind::kI3, 5000},
        PackCase{PackingMethod::kSTR, workload::DatasetKind::kR2, 24},
        PackCase{PackingMethod::kSTR, workload::DatasetKind::kR2, 25},
        PackCase{PackingMethod::kSTR, workload::DatasetKind::kR2, 26},
        PackCase{PackingMethod::kHilbert, workload::DatasetKind::kR1, 5000},
        PackCase{PackingMethod::kHilbert, workload::DatasetKind::kI3, 5000},
        PackCase{PackingMethod::kHilbert, workload::DatasetKind::kR2, 26}),
    testing::PrintToStringParamName());

TEST(BulkLoadTest, PacksNodesFull) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  ASSERT_TRUE(
      BulkLoad(tree.get(), MakeRecords(workload::DatasetKind::kR1, 10000, 5))
          .ok());
  // 10000 records / 25 per leaf = exactly 400 full leaves.
  const auto counts = tree->CountNodesPerLevel().value();
  EXPECT_EQ(counts[0], 400u);
  // A dynamically grown tree is ~60-70% full: far more leaves.
  auto pager2 = MakeMemoryPager();
  auto dynamic_tree = RTree::Create(pager2.get(), TreeOptions()).value();
  for (const auto& [rect, tid] :
       MakeRecords(workload::DatasetKind::kR1, 10000, 5)) {
    ASSERT_TRUE(dynamic_tree->Insert(rect, tid).ok());
  }
  const auto dynamic_counts = dynamic_tree->CountNodesPerLevel().value();
  EXPECT_GT(dynamic_counts[0], counts[0] * 5 / 4);
}

TEST(BulkLoadTest, PartialFillFraction) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  ASSERT_TRUE(BulkLoad(tree.get(),
                       MakeRecords(workload::DatasetKind::kR1, 1000, 7),
                       PackingMethod::kSTR, /*fill_fraction=*/0.5)
                  .ok());
  // 1000 records / 12 per leaf.
  const auto counts = tree->CountNodesPerLevel().value();
  EXPECT_GE(counts[0], 83u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST(BulkLoadTest, RequiresEmptyTree) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  ASSERT_TRUE(tree->Insert(Rect(0, 1, 0, 1), 1).ok());
  EXPECT_EQ(BulkLoad(tree.get(), MakeRecords(workload::DatasetKind::kR1,
                                             100, 1))
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(BulkLoadTest, RejectsInvalidRecords) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  std::vector<std::pair<Rect, TupleId>> bad = {{Rect(5, 1, 0, 1), 1}};
  EXPECT_FALSE(BulkLoad(tree.get(), bad).ok());
  EXPECT_FALSE(
      BulkLoad(tree.get(), MakeRecords(workload::DatasetKind::kR1, 10, 1),
               PackingMethod::kSTR, /*fill_fraction=*/0)
          .ok());
}

TEST(BulkLoadTest, EmptyInputIsFine) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  ASSERT_TRUE(BulkLoad(tree.get(), {}).ok());
  EXPECT_EQ(tree->size(), 0u);
  std::vector<SearchHit> hits;
  ASSERT_TRUE(tree->Search(Rect(0, 1, 0, 1), &hits).ok());
  EXPECT_TRUE(hits.empty());
}

TEST(BulkLoadTest, PackedTreeAcceptsDynamicInserts) {
  auto pager = MakeMemoryPager();
  auto tree = RTree::Create(pager.get(), TreeOptions()).value();
  auto records = MakeRecords(workload::DatasetKind::kR1, 4000, 11);
  NaiveOracle oracle;
  for (const auto& [rect, tid] : records) oracle.Insert(rect, tid);
  ASSERT_TRUE(BulkLoad(tree.get(), records).ok());

  // Packed nodes are full, so the very first inserts split.
  auto extra = MakeRecords(workload::DatasetKind::kR2, 1000, 12);
  for (const auto& [rect, tid] : extra) {
    ASSERT_TRUE(tree->Insert(rect, 100000 + tid).ok());
    oracle.Insert(rect, 100000 + tid);
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (const Rect& query : workload::GenerateQueries(1, 1e6, 30, 13)) {
    std::vector<SearchHit> hits;
    ASSERT_TRUE(tree->Search(query, &hits).ok());
    EXPECT_EQ(Tids(hits), oracle.Search(query));
  }
}

TEST(BulkLoadTest, WorksOnSRTree) {
  auto pager = MakeMemoryPager();
  auto tree = srtree::SRTree::Create(pager.get(), TreeOptions()).value();
  auto records = MakeRecords(workload::DatasetKind::kI3, 4000, 15);
  NaiveOracle oracle;
  for (const auto& [rect, tid] : records) oracle.Insert(rect, tid);
  ASSERT_TRUE(BulkLoad(tree.get(), records).ok());
  ASSERT_TRUE(tree->CheckInvariants().ok());

  // Later dynamic inserts may create spanning records on the packed frame.
  for (int i = 0; i < 500; ++i) {
    const Coord y = 100.0 * i;
    const Rect r = Rect::Segment1D(0, 100000, y);
    ASSERT_TRUE(tree->Insert(r, 500000 + i).ok());
    oracle.Insert(r, 500000 + i);
  }
  EXPECT_GT(tree->stats().spanning_placed, 0u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (const Rect& query : workload::GenerateQueries(0.01, 1e6, 30, 17)) {
    std::vector<SearchHit> hits;
    ASSERT_TRUE(tree->Search(query, &hits).ok());
    EXPECT_EQ(Tids(hits), oracle.Search(query));
  }
}

}  // namespace
}  // namespace segidx::rtree
