#include "storage/pager.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/block_device.h"
#include "storage/coding.h"

namespace segidx::storage {
namespace {

PagerOptions SmallPool() {
  PagerOptions options;
  options.base_block_size = 1024;
  options.buffer_pool_bytes = 8 * 1024;  // Tiny: forces eviction.
  return options;
}

std::unique_ptr<Pager> MakeMemoryPager(const PagerOptions& options) {
  auto result = Pager::Create(std::make_unique<MemoryBlockDevice>(), options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(PageIdTest, EncodeDecodeRoundTrip) {
  PageId id;
  id.block = 12345;
  id.size_class = 3;
  const PageId back = PageId::Decode(id.Encode());
  EXPECT_EQ(back, id);
  EXPECT_TRUE(id.valid());
  EXPECT_FALSE(PageId().valid());
}

TEST(PageIdTest, DecodeRejectsReservedHighBits) {
  PageId id;
  id.block = 77;
  id.size_class = 2;
  // Bits 40-63 are reserved-zero; a flip anywhere in them means the
  // pointer bytes are corrupt and must not alias a plausible PageId.
  for (int bit = 40; bit < 64; ++bit) {
    const PageId back = PageId::Decode(id.Encode() | (uint64_t{1} << bit));
    EXPECT_FALSE(back.valid()) << "accepted garbage in bit " << bit;
  }
}

TEST(PagerTest, AllocateZeroedAndWritable) {
  auto pager = MakeMemoryPager(PagerOptions());
  auto page = pager->Allocate(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->size(), 1024u);
  for (size_t i = 0; i < page->size(); ++i) {
    ASSERT_EQ(page->data()[i], 0);
  }
  std::memset(page->data(), 0x5a, page->size());
  page->MarkDirty();
}

TEST(PagerTest, ExtentSizesDoublePerClass) {
  auto pager = MakeMemoryPager(PagerOptions());
  EXPECT_EQ(pager->ExtentBytes(0), 1024u);
  EXPECT_EQ(pager->ExtentBytes(1), 2048u);
  EXPECT_EQ(pager->ExtentBytes(4), 16384u);
  auto page = pager->Allocate(4);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->size(), 16384u);
}

TEST(PagerTest, FetchReturnsWrittenBytes) {
  auto pager = MakeMemoryPager(PagerOptions());
  PageId id;
  {
    auto page = pager->Allocate(1);
    ASSERT_TRUE(page.ok());
    id = page->id();
    page->data()[0] = 0x11;
    page->data()[2047] = 0x22;
    page->MarkDirty();
  }
  auto fetched = pager->Fetch(id);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->data()[0], 0x11);
  EXPECT_EQ(fetched->data()[2047], 0x22);
}

TEST(PagerTest, EvictionWritesBackDirtyPages) {
  auto pager = MakeMemoryPager(SmallPool());
  std::vector<PageId> ids;
  // 32 KB of pages through an 8 KB pool.
  for (int i = 0; i < 32; ++i) {
    auto page = pager->Allocate(0);
    ASSERT_TRUE(page.ok());
    page->data()[0] = static_cast<uint8_t>(i);
    page->MarkDirty();
    ids.push_back(page->id());
  }
  EXPECT_GT(pager->stats().evictions, 0u);
  for (int i = 0; i < 32; ++i) {
    auto page = pager->Fetch(ids[static_cast<size_t>(i)]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->data()[0], static_cast<uint8_t>(i));
  }
}

TEST(PagerTest, PinnedPagesSurviveCapacityPressure) {
  auto pager = MakeMemoryPager(SmallPool());
  auto pinned = pager->Allocate(0);
  ASSERT_TRUE(pinned.ok());
  pinned->data()[7] = 0x77;
  pinned->MarkDirty();
  for (int i = 0; i < 64; ++i) {
    auto page = pager->Allocate(0);
    ASSERT_TRUE(page.ok());
  }
  // The pinned frame was never evicted: the pointer is still valid.
  EXPECT_EQ(pinned->data()[7], 0x77);
  EXPECT_GE(pager->pinned_frames(), 1u);
}

TEST(PagerTest, AllPinnedPoolTransientlyExceedsBudgetThenShrinks) {
  PagerOptions options = SmallPool();
  options.lru_partitions = 1;
  auto pager = MakeMemoryPager(options);
  // 16 KB of pinned frames through an 8 KB pool: nothing is evictable, so
  // the pool exceeds its budget rather than failing.
  std::vector<PageHandle> pins;
  for (int i = 0; i < 16; ++i) {
    auto page = pager->Allocate(0);
    ASSERT_TRUE(page.ok());
    pins.push_back(std::move(page).value());
  }
  EXPECT_GT(pager->cached_bytes(), options.buffer_pool_bytes);
  EXPECT_EQ(pager->pinned_frames(), 16u);
  // Releasing the pins lets the pool shrink back within its budget.
  pins.clear();
  EXPECT_LE(pager->cached_bytes(), options.buffer_pool_bytes);
  EXPECT_EQ(pager->pinned_frames(), 0u);
}

TEST(PagerTest, EvictsLeastRecentlyUsedFirst) {
  PagerOptions options = SmallPool();  // Exactly 8 one-block frames.
  options.lru_partitions = 1;          // Global LRU for determinism.
  auto pager = MakeMemoryPager(options);
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    auto page = pager->Allocate(0);
    ASSERT_TRUE(page.ok());
    ids.push_back(page->id());
  }
  // Touch ids[0] so ids[1] becomes the least recently used frame.
  { auto page = pager->Fetch(ids[0]); ASSERT_TRUE(page.ok()); }
  pager->ResetStats();
  { auto page = pager->Allocate(0); ASSERT_TRUE(page.ok()); }
  EXPECT_EQ(pager->stats().evictions, 1u);
  // The recently touched frame survived; the LRU frame did not.
  { auto page = pager->Fetch(ids[0]); ASSERT_TRUE(page.ok()); }
  EXPECT_EQ(pager->stats().physical_reads, 0u);
  { auto page = pager->Fetch(ids[1]); ASSERT_TRUE(page.ok()); }
  EXPECT_EQ(pager->stats().physical_reads, 1u);
}

TEST(PagerTest, ConcurrentFetchesSeeConsistentFrames) {
  auto pager = MakeMemoryPager(SmallPool());  // Evictions stay frequent.
  std::vector<PageId> ids;
  for (int i = 0; i < 64; ++i) {
    auto page = pager->Allocate(0);
    ASSERT_TRUE(page.ok());
    page->data()[0] = static_cast<uint8_t>(i);
    page->MarkDirty();
    ids.push_back(page->id());
  }
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const size_t i = static_cast<size_t>(t * 17 + round) % ids.size();
        auto page = pager->Fetch(ids[i]);
        if (!page.ok() || page->data()[0] != static_cast<uint8_t>(i)) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(pager->stats().logical_reads,
            static_cast<uint64_t>(kThreads) * kRounds);
  EXPECT_EQ(pager->pinned_frames(), 0u);
}

TEST(PagerTest, StatsCountHitsAndMisses) {
  auto pager = MakeMemoryPager(PagerOptions());
  PageId id;
  {
    auto page = pager->Allocate(0);
    ASSERT_TRUE(page.ok());
    id = page->id();
  }
  pager->ResetStats();
  { auto page = pager->Fetch(id); }
  { auto page = pager->Fetch(id); }
  EXPECT_EQ(pager->stats().logical_reads, 2u);
  EXPECT_EQ(pager->stats().cache_hits, 2u);  // Still cached from Allocate.
  EXPECT_EQ(pager->stats().physical_reads, 0u);
}

TEST(PagerTest, FreeReusesExtents) {
  auto pager = MakeMemoryPager(PagerOptions());
  PageId first;
  {
    auto page = pager->Allocate(2);
    ASSERT_TRUE(page.ok());
    first = page->id();
  }
  ASSERT_TRUE(pager->Free(first).ok());
  auto again = pager->Allocate(2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->id().block, first.block);
  // Reallocated extents come back zeroed.
  for (size_t i = 0; i < again->size(); ++i) {
    ASSERT_EQ(again->data()[i], 0);
  }
}

TEST(PagerTest, FreeDifferentClassesUseSeparateLists) {
  auto pager = MakeMemoryPager(PagerOptions());
  PageId small;
  PageId big;
  {
    auto a = pager->Allocate(0);
    auto b = pager->Allocate(3);
    small = a->id();
    big = b->id();
  }
  ASSERT_TRUE(pager->Free(small).ok());
  ASSERT_TRUE(pager->Free(big).ok());
  auto realloc_big = pager->Allocate(3);
  ASSERT_TRUE(realloc_big.ok());
  EXPECT_EQ(realloc_big->id().block, big.block);
}

TEST(PagerTest, FreePinnedPageFails) {
  auto pager = MakeMemoryPager(PagerOptions());
  auto page = pager->Allocate(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(pager->Free(page->id()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PagerTest, UserMetaRoundTrip) {
  auto pager = MakeMemoryPager(PagerOptions());
  const std::string blob = "tree metadata goes here";
  ASSERT_TRUE(pager
                  ->SetUserMeta(reinterpret_cast<const uint8_t*>(blob.data()),
                                blob.size())
                  .ok());
  EXPECT_EQ(std::string(pager->user_meta().begin(), pager->user_meta().end()),
            blob);
  std::vector<uint8_t> too_big(Pager::kUserMetaCapacity + 1, 0);
  EXPECT_FALSE(pager->SetUserMeta(too_big.data(), too_big.size()).ok());
}

TEST(PagerTest, PersistsAcrossReopen) {
  const std::string path = testing::TempDir() + "/pager_persist";
  std::remove(path.c_str());
  PagerOptions options;
  PageId id;
  {
    auto device = FileBlockDevice::Open(path, /*create=*/true).value();
    auto pager = Pager::Create(std::move(device), options).value();
    auto page = pager->Allocate(1);
    ASSERT_TRUE(page.ok());
    id = page->id();
    std::memset(page->data(), 0x3c, page->size());
    page->MarkDirty();
    page->Release();
    const uint8_t meta[] = {'h', 'i'};
    ASSERT_TRUE(pager->SetUserMeta(meta, 2).ok());
    ASSERT_TRUE(pager->Checkpoint().ok());
  }
  {
    auto device = FileBlockDevice::Open(path, /*create=*/false).value();
    auto pager = Pager::Open(std::move(device), options).value();
    EXPECT_EQ(pager->user_meta().size(), 2u);
    EXPECT_EQ(pager->user_meta()[0], 'h');
    auto page = pager->Fetch(id);
    ASSERT_TRUE(page.ok());
    for (size_t i = 0; i < page->size(); ++i) {
      ASSERT_EQ(page->data()[i], 0x3c);
    }
  }
}

TEST(PagerTest, FreeListSurvivesReopen) {
  const std::string path = testing::TempDir() + "/pager_freelist";
  std::remove(path.c_str());
  PagerOptions options;
  PageId freed;
  {
    auto pager =
        Pager::Create(FileBlockDevice::Open(path, true).value(), options)
            .value();
    {
      auto a = pager->Allocate(0);
      auto b = pager->Allocate(0);
      freed = a->id();
    }
    ASSERT_TRUE(pager->Free(freed).ok());
    ASSERT_TRUE(pager->Checkpoint().ok());
  }
  {
    auto pager =
        Pager::Open(FileBlockDevice::Open(path, false).value(), options)
            .value();
    auto page = pager->Allocate(0);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->id().block, freed.block);
  }
}

TEST(PagerTest, OpenRejectsGarbage) {
  auto device = std::make_unique<MemoryBlockDevice>();
  std::vector<uint8_t> junk(2048, 0xab);
  ASSERT_TRUE(device->Write(0, junk.data(), junk.size()).ok());
  const auto result = Pager::Open(std::move(device), PagerOptions());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(PagerTest, OpenRejectsBlockSizeMismatch) {
  auto device = std::make_unique<MemoryBlockDevice>();
  MemoryBlockDevice* raw = device.get();
  {
    PagerOptions options;
    options.base_block_size = 1024;
    auto pager = Pager::Create(std::move(device), options).value();
    ASSERT_TRUE(pager->Checkpoint().ok());
    // Steal the bytes into a fresh device for reopening.
    std::vector<uint8_t> bytes(raw->size());
    ASSERT_TRUE(raw->Read(0, bytes.size(), bytes.data()).ok());
    auto device2 = std::make_unique<MemoryBlockDevice>();
    ASSERT_TRUE(device2->Write(0, bytes.data(), bytes.size()).ok());
    PagerOptions mismatched;
    mismatched.base_block_size = 2048;
    const auto result = Pager::Open(std::move(device2), mismatched);
    EXPECT_FALSE(result.ok());
  }
}

TEST(PageHandleTest, MoveTransfersPin) {
  auto pager = MakeMemoryPager(PagerOptions());
  auto page = pager->Allocate(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(pager->pinned_frames(), 1u);
  PageHandle moved = std::move(page).value();
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(pager->pinned_frames(), 1u);
  moved.Release();
  EXPECT_EQ(pager->pinned_frames(), 0u);
  moved.Release();  // Idempotent.
}

TEST(PagerTest, FreeExtentsEnumeratesEveryFreeList) {
  auto pager = MakeMemoryPager(PagerOptions());
  EXPECT_TRUE(pager->FreeExtents()->empty());

  PageId a, b, c;
  {
    auto pa = pager->Allocate(0);
    auto pb = pager->Allocate(0);
    auto pc = pager->Allocate(2);
    a = pa->id();
    b = pb->id();
    c = pc->id();
  }
  ASSERT_TRUE(pager->Free(a).ok());
  ASSERT_TRUE(pager->Free(c).ok());
  auto free_extents = pager->FreeExtents();
  ASSERT_TRUE(free_extents.ok()) << free_extents.status().ToString();
  ASSERT_EQ(free_extents->size(), 2u);
  bool saw_a = false, saw_c = false;
  for (const PageId& id : *free_extents) {
    saw_a = saw_a || id == a;
    saw_c = saw_c || id == c;
    EXPECT_FALSE(id == b);
  }
  EXPECT_TRUE(saw_a && saw_c);
}

// Scribbles the next-link of a freed extent (its first four bytes on the
// device) and expects FreeExtents to reject the list as corrupt.
void CorruptFreeLink(uint32_t link_target) {
  auto device = std::make_unique<MemoryBlockDevice>();
  MemoryBlockDevice* raw = device.get();
  auto created = Pager::Create(std::move(device), PagerOptions());
  ASSERT_TRUE(created.ok());
  auto pager = std::move(created).value();

  PageId a;
  {
    auto pa = pager->Allocate(0);
    ASSERT_TRUE(pa.ok());
    a = pa->id();
  }
  ASSERT_TRUE(pager->Free(a).ok());
  // Freed extents only reach the on-device chain at the next checkpoint;
  // before that they sit in the in-memory pending list.
  ASSERT_TRUE(pager->Checkpoint().ok());
  uint8_t link[4];
  EncodeU32(link, link_target);
  ASSERT_TRUE(
      raw->Write(static_cast<uint64_t>(a.block) * 1024, link, 4).ok());

  const auto free_extents = pager->FreeExtents();
  ASSERT_FALSE(free_extents.ok());
  EXPECT_EQ(free_extents.status().code(), StatusCode::kCorruption);
}

TEST(PagerTest, FreeExtentsRejectsOutOfRangeLink) {
  CorruptFreeLink(500000);  // Past the allocation high-water mark.
}

TEST(PagerTest, FreeExtentsRejectsCyclicList) {
  CorruptFreeLink(2);  // The freed extent is block 2: a self-loop.
}

TEST(PagerTest, QuarantineBlocksFetchUntilCleared) {
  auto pager = MakeMemoryPager(PagerOptions());
  PageId id;
  {
    auto page = pager->Allocate(0);
    ASSERT_TRUE(page.ok());
    id = page->id();
    std::memset(page->data(), 0x7e, page->size());
    page->MarkDirty();
  }
  ASSERT_TRUE(pager->Checkpoint().ok());

  EXPECT_TRUE(pager->QuarantinePage(id, "checksum mismatch (test)"));
  EXPECT_TRUE(pager->IsQuarantined(id.block));
  EXPECT_EQ(pager->quarantined_count(), 1u);
  // Re-quarantining the same extent is idempotent, not a second slot.
  EXPECT_TRUE(pager->QuarantinePage(id, "again"));
  EXPECT_EQ(pager->quarantined_count(), 1u);

  const auto fetch = pager->Fetch(id);
  ASSERT_FALSE(fetch.ok());
  EXPECT_EQ(fetch.status().code(), StatusCode::kCorruption);
  // Quarantine is page-scoped: the pager itself stays healthy.
  EXPECT_FALSE(pager->degraded());

  const auto listed = pager->QuarantinedPages();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].page, id);

  pager->ClearQuarantine();
  EXPECT_EQ(pager->quarantined_count(), 0u);
  auto page = pager->Fetch(id);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page->data()[0], 0x7e);
}

TEST(PagerTest, QuarantineSetIsBounded) {
  auto pager = MakeMemoryPager(PagerOptions());
  for (size_t i = 0; i < Pager::kMaxQuarantinedPages; ++i) {
    PageId id;
    id.block = static_cast<uint32_t>(100 + i);
    id.size_class = 0;
    EXPECT_TRUE(pager->QuarantinePage(id, "fill"));
  }
  EXPECT_EQ(pager->quarantined_count(), Pager::kMaxQuarantinedPages);
  PageId overflow;
  overflow.block = 99999;
  overflow.size_class = 0;
  // A full set refuses new entries so a mass-corruption event cannot turn
  // every search into a silent near-empty partial result.
  EXPECT_FALSE(pager->QuarantinePage(overflow, "one too many"));
  EXPECT_FALSE(pager->IsQuarantined(overflow.block));
}

TEST(PagerTest, GroupCommitRunsFunctionAndCountsStats) {
  auto pager = MakeMemoryPager(PagerOptions());
  int calls = 0;
  EXPECT_TRUE(pager->GroupCommit([&] {
                     ++calls;
                     return Status::OK();
                   })
                  .ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(pager->stats().commit_requests, 1u);
  EXPECT_EQ(pager->stats().commit_batches, 1u);
}

TEST(PagerTest, GroupCommitPropagatesErrorToEveryBatchMember) {
  auto pager = MakeMemoryPager(PagerOptions());
  const Status st =
      pager->GroupCommit([] { return IoError("sync failed"); });
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  // A later commit starts a fresh batch and is not poisoned by history.
  EXPECT_TRUE(pager->GroupCommit([] { return Status::OK(); }).ok());
}

TEST(PagerTest, ConcurrentGroupCommitsCoalesceIntoBatches) {
  PagerOptions options;
  options.group_commit_window_us = 2000;  // Wide window to force batching.
  auto pager = MakeMemoryPager(options);
  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 20;
  std::atomic<int> executions{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        const Status st = pager->GroupCommit([&] {
          executions.fetch_add(1);
          return Status::OK();
        });
        if (!st.ok()) failed.store(true);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  const StorageStats& stats = pager->stats();
  EXPECT_EQ(stats.commit_requests,
            static_cast<uint64_t>(kThreads * kCommitsPerThread));
  // Every batch runs the function exactly once, on behalf of everyone who
  // joined it; followers must not re-run it.
  EXPECT_EQ(stats.commit_batches, static_cast<uint64_t>(executions.load()));
  EXPECT_LE(stats.commit_batches, stats.commit_requests);
  // With 8 threads hammering a 2ms window, amortization must be visible.
  EXPECT_LT(stats.commit_batches, stats.commit_requests);
}

}  // namespace
}  // namespace segidx::storage
