// Crash-safety suite: fault-injecting device behavior, dual-superblock
// recovery, degraded read-only mode, legacy v1 handling, checkpoint-on-close,
// and the systematic crash-at-every-op torture sweep (ISSUE 4).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/interval_index.h"
#include "rtree/node.h"
#include "storage/block_device.h"
#include "storage/coding.h"
#include "storage/fault_injection.h"
#include "storage/pager.h"
#include "torture/recovery_torture.h"

namespace segidx {
namespace {

using core::IndexKind;
using core::IndexOptions;
using core::IntervalIndex;
using rtree::Node;
using rtree::PageChecksumKind;
using storage::BlockDevice;
using storage::EncodeU16;
using storage::EncodeU32;
using storage::EncodeU64;
using storage::FaultInjectingBlockDevice;
using storage::MemoryBlockDevice;
using storage::PageHandle;
using storage::PageId;
using storage::Pager;
using storage::PagerOptions;

// --- FaultInjectingBlockDevice ---------------------------------------------

std::unique_ptr<FaultInjectingBlockDevice> FaultDevice() {
  return std::make_unique<FaultInjectingBlockDevice>(
      std::make_unique<MemoryBlockDevice>());
}

TEST(FaultInjectionTest, FailNthWriteFiresOnceUnlessSticky) {
  auto dev = FaultDevice();
  const uint8_t b[4] = {1, 2, 3, 4};
  dev->FailNthWrite(1);
  EXPECT_TRUE(dev->Write(0, b, 4).ok());
  EXPECT_EQ(dev->Write(4, b, 4).code(), StatusCode::kIoError);
  EXPECT_TRUE(dev->Write(8, b, 4).ok());
  EXPECT_EQ(dev->counters().writes, 3u);
  EXPECT_EQ(dev->counters().faults_fired, 1u);
}

TEST(FaultInjectionTest, TornWritePersistsPrefixOnly) {
  auto dev = FaultDevice();
  const uint8_t b[8] = {9, 9, 9, 9, 9, 9, 9, 9};
  dev->FailNthWrite(0, /*sticky=*/false, /*tear_bytes=*/4);
  const Status st = dev->Write(0, b, 8);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("torn"), std::string::npos);
  // Only the torn prefix reached the inner device.
  EXPECT_EQ(dev->inner()->size(), 4u);
}

TEST(FaultInjectionTest, StickySyncAndReadFailures) {
  auto dev = FaultDevice();
  dev->FailNthSync(0, /*sticky=*/true);
  EXPECT_EQ(dev->Sync().code(), StatusCode::kIoError);
  EXPECT_EQ(dev->Sync().code(), StatusCode::kIoError);

  const uint8_t b[4] = {1, 2, 3, 4};
  uint8_t out[4];
  EXPECT_TRUE(dev->Write(0, b, 4).ok());
  dev->FailNthRead(0);  // Not sticky: only the next read fails.
  EXPECT_EQ(dev->Read(0, 4, out).code(), StatusCode::kIoError);
  EXPECT_TRUE(dev->Read(0, 4, out).ok());
  EXPECT_EQ(out[3], 4);
}

TEST(FaultInjectionTest, CrashAtOpKillsWritesButNotReads) {
  auto dev = FaultDevice();
  const uint8_t b[4] = {5, 6, 7, 8};
  dev->CrashAtOp(2);                       // write=op0, sync=op1, crash at 2.
  EXPECT_TRUE(dev->Write(0, b, 4).ok());
  EXPECT_TRUE(dev->Sync().ok());
  EXPECT_FALSE(dev->crashed());
  EXPECT_EQ(dev->Write(4, b, 4).code(), StatusCode::kIoError);
  EXPECT_TRUE(dev->crashed());
  EXPECT_EQ(dev->Sync().code(), StatusCode::kIoError);
  EXPECT_EQ(dev->Write(8, b, 4).code(), StatusCode::kIoError);
  uint8_t out[4];
  EXPECT_TRUE(dev->Read(0, 4, out).ok());  // The image stays observable.
  EXPECT_EQ(out[0], 5);
}

TEST(FaultInjectionTest, ReadOnlyModeAndClearFaults) {
  auto dev = FaultDevice();
  const uint8_t b[4] = {1, 1, 1, 1};
  dev->SetReadOnly(true);
  EXPECT_EQ(dev->Write(0, b, 4).code(), StatusCode::kIoError);
  EXPECT_EQ(dev->Sync().code(), StatusCode::kIoError);
  dev->SetReadOnly(false);
  EXPECT_TRUE(dev->Write(0, b, 4).ok());

  dev->FailNthWrite(0, /*sticky=*/true);
  dev->ClearFaults();
  EXPECT_TRUE(dev->Write(4, b, 4).ok());
}

// --- MemoryBlockDevice ------------------------------------------------------

TEST(MemoryBlockDeviceTest, TruncateGrowThenShrinkZeroes) {
  MemoryBlockDevice dev;
  const uint8_t ones[8] = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
  ASSERT_TRUE(dev.Write(0, ones, 8).ok());
  ASSERT_TRUE(dev.Truncate(16).ok());
  uint8_t out[8];
  ASSERT_TRUE(dev.Read(8, 8, out).ok());
  for (uint8_t byte : out) EXPECT_EQ(byte, 0);

  // Fill the grown tail, shrink it away, grow again: the re-grown region
  // must come back zeroed, not with its previous contents.
  ASSERT_TRUE(dev.Write(8, ones, 8).ok());
  ASSERT_TRUE(dev.Truncate(8).ok());
  ASSERT_TRUE(dev.Truncate(16).ok());
  ASSERT_TRUE(dev.Read(8, 8, out).ok());
  for (uint8_t byte : out) EXPECT_EQ(byte, 0);
  EXPECT_EQ(dev.size(), 16u);
}

// --- Dual-superblock recovery ----------------------------------------------

PagerOptions SmallPagerOptions() {
  PagerOptions options;
  options.buffer_pool_bytes = 16 * 1024;
  options.lru_partitions = 1;
  return options;
}

// Builds a v2 image with `checkpoints` checkpoints, each allocating a page
// stamped with the checkpoint number.
std::vector<uint8_t> BuildImage(int checkpoints,
                                std::vector<PageId>* pages = nullptr) {
  auto device = std::make_unique<MemoryBlockDevice>();
  MemoryBlockDevice* raw = device.get();
  auto pager = Pager::Create(std::move(device), SmallPagerOptions()).value();
  for (int i = 0; i < checkpoints; ++i) {
    PageHandle page = pager->Allocate(0).value();
    page.data()[0] = static_cast<uint8_t>(i + 1);
    page.MarkDirty();
    if (pages != nullptr) pages->push_back(page.id());
    page.Release();
    EXPECT_TRUE(pager->Checkpoint().ok());
  }
  return raw->Snapshot();
}

Result<std::unique_ptr<Pager>> OpenImage(std::vector<uint8_t> image) {
  return Pager::Open(std::make_unique<MemoryBlockDevice>(std::move(image)),
                     SmallPagerOptions());
}

TEST(DualSlotTest, FreshCreateReportsSlotZeroEpochOne) {
  auto pager =
      Pager::Create(std::make_unique<MemoryBlockDevice>(), SmallPagerOptions())
          .value();
  const storage::RecoveryReport& report = pager->recovery_report();
  EXPECT_EQ(report.format_version, 2u);
  EXPECT_EQ(report.active_slot, 0);
  EXPECT_EQ(report.epoch, 1u);
  EXPECT_FALSE(report.fell_back);
  EXPECT_EQ(pager->epoch(), 1u);
  EXPECT_EQ(pager->first_data_block(), 2u);
}

TEST(DualSlotTest, CheckpointsAlternateSlotsAndBumpEpoch) {
  std::vector<uint8_t> image = BuildImage(3);  // Epochs 2, 3, 4.
  auto pager = OpenImage(std::move(image)).value();
  EXPECT_EQ(pager->epoch(), 4u);
  // Epoch 4 is the third checkpoint: slots went 0→1→0→1.
  EXPECT_EQ(pager->recovery_report().active_slot, 1);
  EXPECT_FALSE(pager->recovery_report().fell_back);
}

// The acceptance matrix: with either slot independently zeroed or
// bit-flipped, the file must still open via the surviving slot; with both
// damaged it must fail cleanly with kCorruption.
TEST(DualSlotTest, SurvivesEitherSlotDamagedIndependently) {
  std::vector<PageId> pages;
  const std::vector<uint8_t> image = BuildImage(3, &pages);

  for (int slot = 0; slot < 2; ++slot) {
    for (const bool zero : {true, false}) {
      std::vector<uint8_t> copy = image;
      for (size_t i = 0; i < 1024; ++i) {
        uint8_t& b = copy[slot * 1024 + i];
        b = zero ? 0 : static_cast<uint8_t>(~b);
      }
      auto pager = OpenImage(std::move(copy));
      ASSERT_TRUE(pager.ok()) << "slot " << slot << " zero=" << zero << ": "
                              << pager.status().ToString();
      const storage::RecoveryReport& report = (*pager)->recovery_report();
      EXPECT_TRUE(report.fell_back);
      EXPECT_EQ(report.active_slot, slot ^ 1);
      EXPECT_FALSE(report.slot_error[slot].empty());
      // Slot 1 held epoch 4 (newest); killing it falls back to epoch 3.
      EXPECT_EQ(report.epoch, slot == 1 ? 3u : 4u);
      // Every page the surviving checkpoint covers is intact.
      const int visible = slot == 1 ? 2 : 3;
      for (int i = 0; i < visible; ++i) {
        PageHandle page = (*pager)->Fetch(pages[i]).value();
        EXPECT_EQ(page.data()[0], i + 1);
      }
    }
  }

  std::vector<uint8_t> both = image;
  for (size_t i = 0; i < 2048; ++i) both[i] = 0xff;
  auto pager = OpenImage(std::move(both));
  ASSERT_FALSE(pager.ok());
  EXPECT_EQ(pager.status().code(), StatusCode::kCorruption);
  EXPECT_NE(pager.status().message().find("no usable superblock slot"),
            std::string::npos);
}

TEST(DualSlotTest, ReopenAfterFreeWithoutCheckpointLosesOnlyTheFree) {
  auto device = std::make_unique<MemoryBlockDevice>();
  MemoryBlockDevice* raw = device.get();
  auto pager = Pager::Create(std::move(device), SmallPagerOptions()).value();
  PageId a, b;
  {
    PageHandle pa = pager->Allocate(0).value();
    a = pa.id();
    PageHandle pb = pager->Allocate(0).value();
    b = pb.id();
  }
  ASSERT_TRUE(pager->Checkpoint().ok());
  ASSERT_TRUE(pager->Free(b).ok());
  // The free never checkpointed, so the reopened file still sees `b`
  // allocated — a leak of one extent, never corruption.
  auto reopened = OpenImage(raw->Snapshot());
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->Fetch(a).ok());
  EXPECT_TRUE((*reopened)->Fetch(b).ok());
  auto free_extents = (*reopened)->FreeExtents();
  ASSERT_TRUE(free_extents.ok());
  for (const PageId& id : *free_extents) EXPECT_NE(id.block, b.block);
}

// --- Degraded read-only mode ------------------------------------------------

TEST(DegradedModeTest, HardSpillFailureFlipsReadOnlyButKeepsServing) {
  auto device = FaultDevice();
  FaultInjectingBlockDevice* dev = device.get();
  PagerOptions options;
  options.buffer_pool_bytes = 4 * 1024;  // Four one-block frames.
  options.lru_partitions = 1;
  auto pager = Pager::Create(std::move(device), options).value();

  std::vector<PageId> pages;
  for (int i = 0; i < 4; ++i) {
    PageHandle page = pager->Allocate(0).value();
    page.data()[0] = static_cast<uint8_t>(0x10 + i);
    page.MarkDirty();
    pages.push_back(page.id());
  }
  ASSERT_TRUE(pager->Checkpoint().ok());

  // Dirty every cached frame, then kill the device for writes: the next
  // eviction must spill, fail hard, and flip the pager degraded.
  for (int i = 0; i < 4; ++i) {
    PageHandle page = pager->Fetch(pages[i]).value();
    page.data()[0] = static_cast<uint8_t>(0x20 + i);
    page.MarkDirty();
  }
  dev->FailNthWrite(0, /*sticky=*/true);
  PageHandle extra = pager->Allocate(0).value();  // Forces the eviction.
  extra.Release();
  EXPECT_TRUE(pager->degraded());
  EXPECT_EQ(pager->stats().degraded, 1u);

  // Reads keep working: un-evicted dirty frames serve their latest bytes.
  for (int i = 0; i < 4; ++i) {
    PageHandle page = pager->Fetch(pages[i]).value();
    EXPECT_EQ(page.data()[0], 0x20 + i);
  }
  // Mutations are refused with kUnavailable.
  EXPECT_EQ(pager->Allocate(0).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(pager->Free(pages[0]).code(), StatusCode::kUnavailable);
  EXPECT_EQ(pager->Checkpoint().code(), StatusCode::kUnavailable);
  const uint8_t meta[1] = {7};
  EXPECT_EQ(pager->SetUserMeta(meta, 1).code(), StatusCode::kUnavailable);
  // The degraded marker survives a stats reset.
  pager->ResetStats();
  EXPECT_EQ(pager->stats().degraded, 1u);
}

TEST(DegradedModeTest, SearchSucceedsAfterMidSearchWriteFailure) {
  auto device = FaultDevice();
  FaultInjectingBlockDevice* dev = device.get();
  IndexOptions options;
  options.pager.buffer_pool_bytes = 16 * 1024;
  auto index = IntervalIndex::CreateWithDevice(IndexKind::kRTree,
                                               std::move(device), options)
                   .value();
  const int kRecords = 400;
  for (int i = 0; i < kRecords; ++i) {
    const double x = (i % 100) * 10.0;
    ASSERT_TRUE(index->Insert(Rect(x, x + 5, i / 100 * 8.0, i / 100 * 8.0 + 4),
                              i + 1)
                    .ok());
  }
  ASSERT_TRUE(index->Flush().ok());
  // New inserts dirty pages; with writes dead, the eviction pressure of a
  // full-space search must degrade the pager, not break the search.
  for (int i = kRecords; i < kRecords + 50; ++i) {
    ASSERT_TRUE(index->Insert(Rect(3.0, 8.0, 3.0, 8.0), i + 1).ok());
  }
  dev->FailNthWrite(0, /*sticky=*/true);
  std::vector<TupleId> tids;
  ASSERT_TRUE(
      index->SearchTuples(Rect(-1e9, 1e9, -1e9, 1e9), &tids).ok());
  EXPECT_EQ(tids.size(), static_cast<size_t>(kRecords + 50));
  EXPECT_EQ(index->storage_stats().degraded, 1u);
  // Persisting is refused; the previous checkpoint stays the durable state.
  EXPECT_EQ(index->Flush().code(), StatusCode::kUnavailable);
  EXPECT_EQ(index->Close().code(), StatusCode::kUnavailable);
}

// --- Legacy format v1 -------------------------------------------------------

std::vector<uint8_t> BuildV1Image() {
  // Hand-rolled v1 superblock: magic "SEGIDX01", version 1, bbs 1024,
  // max_size_class 7, next_block 1, empty free lists, no metadata.
  std::vector<uint8_t> image(1024, 0);
  EncodeU64(image.data(), 0x5345474944583031ull);
  EncodeU32(image.data() + 8, 1);
  EncodeU32(image.data() + 12, 1024);
  image[16] = 7;
  EncodeU32(image.data() + 24, 1);
  for (int sc = 0; sc <= 7; ++sc) {
    EncodeU32(image.data() + 28 + sc * 4, storage::kInvalidBlock);
  }
  EncodeU16(image.data() + 28 + 8 * 4, 0);
  return image;
}

TEST(LegacyV1Test, OpensReadOnly) {
  auto pager = OpenImage(BuildV1Image());
  ASSERT_TRUE(pager.ok()) << pager.status().ToString();
  EXPECT_EQ((*pager)->format_version(), 1u);
  EXPECT_EQ((*pager)->first_data_block(), 1u);
  EXPECT_EQ((*pager)->epoch(), 0u);
  EXPECT_EQ((*pager)->recovery_report().format_version, 1u);
  EXPECT_EQ((*pager)->Allocate(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*pager)->Checkpoint().code(), StatusCode::kFailedPrecondition);
  const uint8_t meta[1] = {1};
  EXPECT_EQ((*pager)->SetUserMeta(meta, 1).code(),
            StatusCode::kFailedPrecondition);
}

TEST(LegacyV1Test, FnvChecksumRoundTripsAndMissesTailDamage) {
  Node node;
  node.level = 0;
  node.records.push_back({Rect(0, 1, 0, 1), 42});

  std::vector<uint8_t> buf(1024, 0xee);  // Dirty extent tail.
  ASSERT_TRUE(
      node.Serialize(buf.data(), buf.size(), PageChecksumKind::kFnv16).ok());
  ASSERT_TRUE(Node::Deserialize(buf.data(), buf.size(),
                                PageChecksumKind::kFnv16)
                  .ok());
  // The v1 checksum only covers the serialized prefix — damage in the
  // unused tail goes unnoticed. That blind spot is why v2 moved to CRC32C
  // over the full extent.
  buf[1000] ^= 0xff;
  EXPECT_TRUE(Node::Deserialize(buf.data(), buf.size(),
                                PageChecksumKind::kFnv16)
                  .ok());

  ASSERT_TRUE(
      node.Serialize(buf.data(), buf.size(), PageChecksumKind::kCrc32c).ok());
  ASSERT_TRUE(Node::Deserialize(buf.data(), buf.size(),
                                PageChecksumKind::kCrc32c)
                  .ok());
  buf[1000] ^= 0xff;
  const auto damaged = Node::Deserialize(buf.data(), buf.size(),
                                         PageChecksumKind::kCrc32c);
  ASSERT_FALSE(damaged.ok());
  EXPECT_EQ(damaged.status().code(), StatusCode::kCorruption);
  EXPECT_NE(damaged.status().message().find("CRC32C"), std::string::npos);
}

// --- Checkpoint on close ----------------------------------------------------

TEST(CloseTest, DestructorCheckpointsDirtyIndex) {
  const std::string path = testing::TempDir() + "/close_checkpoint_idx";
  std::remove(path.c_str());
  {
    auto index =
        IntervalIndex::CreateOnDisk(IndexKind::kRTree, path, IndexOptions())
            .value();
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(index->Insert(Rect(i, i + 1, 0, 1), i + 1).ok());
    }
    // No Flush(): the destructor must issue the final checkpoint.
  }
  auto reopened = IntervalIndex::OpenFromDisk(path, IndexOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 50u);
  std::vector<TupleId> tids;
  ASSERT_TRUE(
      (*reopened)->SearchTuples(Rect(-1e9, 1e9, -1e9, 1e9), &tids).ok());
  EXPECT_EQ(tids.size(), 50u);
  std::remove(path.c_str());
}

TEST(CloseTest, CloseIsIdempotentAndSkipsCleanIndexes) {
  auto index =
      IntervalIndex::CreateInMemory(IndexKind::kRTree, IndexOptions()).value();
  ASSERT_TRUE(index->Insert(Rect(0, 1, 0, 1), 1).ok());
  ASSERT_TRUE(index->Flush().ok());
  const uint64_t checkpoints = index->storage_stats().checkpoints;
  // Not dirty since the flush: Close() must not checkpoint again.
  EXPECT_TRUE(index->Close().ok());
  EXPECT_TRUE(index->Close().ok());
  EXPECT_EQ(index->storage_stats().checkpoints, checkpoints);
}

TEST(CloseTest, CloseDrainsGroupCommitQueueFromConcurrentWriters) {
  // Writers racing Insert+Commit right up to shutdown: Close() must queue
  // behind the in-flight commit batches and then checkpoint whatever is
  // still dirty, so no acknowledged write is lost on a clean shutdown.
  auto device = std::make_unique<MemoryBlockDevice>();
  MemoryBlockDevice* raw = device.get();
  auto index = IntervalIndex::CreateWithDevice(IndexKind::kRTree,
                                               std::move(device),
                                               IndexOptions())
                   .value();

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 300;
  std::vector<std::thread> writers;
  std::atomic<bool> failed{false};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const double x = w * 1000.0 + i;
        const TupleId tid = static_cast<TupleId>(1 + w * kPerWriter + i);
        if (!index->Insert(Rect(x, x + 1, 0, 1), tid).ok()) {
          failed.store(true);
          return;
        }
        // Half the writers commit on a cadence; the others leave their
        // tail dirty so Close() has real work to drain AND checkpoint.
        if (w % 2 == 0 && i % 64 == 0 && !index->Commit().ok()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_FALSE(failed.load());
  ASSERT_TRUE(index->Close().ok());

  auto reopened = IntervalIndex::OpenFromDevice(
      std::make_unique<MemoryBlockDevice>(raw->Snapshot()), IndexOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(),
            static_cast<uint64_t>(kWriters * kPerWriter));
  std::vector<TupleId> tids;
  ASSERT_TRUE(
      (*reopened)->SearchTuples(Rect(-1e9, 1e9, -1e9, 1e9), &tids).ok());
  EXPECT_EQ(tids.size(), static_cast<size_t>(kWriters * kPerWriter));
}

// --- Torture sweep ----------------------------------------------------------

void RunSweep(torture::TortureOptions options) {
  options.records = 80;
  options.checkpoint_every = 10;
  options.max_fault_points = 150;
  options.index.pager.buffer_pool_bytes = 16 * 1024;
  auto report = torture::RunRecoveryTorture(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->fault_points_run, 0u);
  for (const std::string& failure : report->failures) {
    ADD_FAILURE() << failure;
  }
}

TEST(TortureTest, EveryCrashPointRecovers) {
  torture::TortureOptions options;
  options.kind = IndexKind::kSRTree;
  RunSweep(options);
}

TEST(TortureTest, EveryTornWriteCrashPointRecovers) {
  torture::TortureOptions options;
  options.kind = IndexKind::kSRTree;
  options.tear_bytes = 256;
  RunSweep(options);
}

TEST(TortureTest, RTreeCrashPointsRecover) {
  torture::TortureOptions options;
  options.kind = IndexKind::kRTree;
  options.tear_bytes = 100;
  RunSweep(options);
}

}  // namespace
}  // namespace segidx
