#include "skeleton/spec_builder.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace segidx::skeleton {
namespace {

SpecBuilderParams PaperParams(uint64_t tuples) {
  SpecBuilderParams params;
  params.expected_tuples = tuples;
  params.leaf_fanout = 25;  // 1 KB leaves.
  // SR-Tree branch quotas with doubling node sizes: 28, 57, 115, ...
  params.branch_fanout = [](int level) -> size_t {
    const size_t bytes = 1024u << std::min(level, 7);
    const size_t slots = (bytes - 8) / 48;
    return static_cast<size_t>(slots * 2 / 3);
  };
  return params;
}

Histogram UniformHist(Interval domain) { return Histogram(domain, 100); }

TEST(SpecBuilderTest, RejectsBadParams) {
  Histogram h = UniformHist(Interval(0, 100));
  SpecBuilderParams params = PaperParams(0);
  EXPECT_FALSE(BuildSkeletonSpec(params, h, h).ok());
  params = PaperParams(100);
  params.leaf_fanout = 0;
  EXPECT_FALSE(BuildSkeletonSpec(params, h, h).ok());
  params = PaperParams(100);
  params.branch_fanout = nullptr;
  EXPECT_FALSE(BuildSkeletonSpec(params, h, h).ok());
}

TEST(SpecBuilderTest, TinyInputGivesSingleLevel) {
  Histogram h = UniformHist(Interval(0, 100));
  const auto spec = BuildSkeletonSpec(PaperParams(20), h, h);
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->levels.size(), 1u);
  // ceil(sqrt(ceil(20/25))) = 1 partition per dimension.
  EXPECT_EQ(spec->levels[0].x_bounds.size(), 2u);
}

TEST(SpecBuilderTest, PaperScaleHierarchy) {
  Histogram h = UniformHist(Interval(0, 100000));
  const auto spec = BuildSkeletonSpec(PaperParams(200000), h, h);
  ASSERT_TRUE(spec.ok());
  // 200K / 25 = 8000 leaves -> 90x90 grid; upper levels shrink.
  ASSERT_GE(spec->levels.size(), 2u);
  EXPECT_EQ(spec->levels[0].x_bounds.size(), 91u);
  for (size_t li = 1; li < spec->levels.size(); ++li) {
    EXPECT_LT(spec->levels[li].x_bounds.size(),
              spec->levels[li - 1].x_bounds.size());
  }
}

TEST(SpecBuilderTest, BoundsNestExactly) {
  Histogram hx = UniformHist(Interval(0, 100000));
  Histogram hy = UniformHist(Interval(0, 100000));
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    hx.Add(rng.Uniform(0, 100000));
    hy.Add(rng.Exponential(7000, 100000));
  }
  const auto spec = BuildSkeletonSpec(PaperParams(100000), hx, hy);
  ASSERT_TRUE(spec.ok());
  for (size_t li = 1; li < spec->levels.size(); ++li) {
    for (const auto select :
         {&rtree::SkeletonLevel::x_bounds, &rtree::SkeletonLevel::y_bounds}) {
      const std::vector<Coord>& upper = spec->levels[li].*select;
      const std::vector<Coord>& lower = spec->levels[li - 1].*select;
      // Every upper boundary is also a lower-level boundary.
      for (Coord b : upper) {
        EXPECT_NE(std::find(lower.begin(), lower.end(), b), lower.end());
      }
      EXPECT_EQ(upper.front(), lower.front());
      EXPECT_EQ(upper.back(), lower.back());
    }
  }
}

TEST(SpecBuilderTest, GroupSizesRespectBranchFanout) {
  Histogram h = UniformHist(Interval(0, 100000));
  for (uint64_t tuples : {1000ULL, 10000ULL, 100000ULL, 200000ULL,
                          1000000ULL}) {
    SpecBuilderParams params = PaperParams(tuples);
    const auto spec = BuildSkeletonSpec(params, h, h);
    ASSERT_TRUE(spec.ok()) << tuples;
    for (size_t li = 1; li < spec->levels.size(); ++li) {
      const size_t p = spec->levels[li - 1].x_bounds.size() - 1;
      const size_t q = spec->levels[li].x_bounds.size() - 1;
      const size_t group = (p + q - 1) / q;
      EXPECT_LE(group * group,
                params.branch_fanout(static_cast<int>(li)))
          << "tuples=" << tuples << " level=" << li;
    }
    // Implicit root must be able to reference every top-level cell.
    const size_t top =
        (spec->levels.back().x_bounds.size() - 1) *
        (spec->levels.back().y_bounds.size() - 1);
    EXPECT_LE(top, params.branch_fanout(
                       static_cast<int>(spec->levels.size())));
  }
}

TEST(SpecBuilderTest, PaperRecurrenceGoldenValues) {
  // Hand-computed from the paper's Section 4 pseudo-code with our
  // capacities (leaf fanout 25; SR-Tree planning fanouts 34, 68 at levels
  // 1-2 with node doubling):
  //   n = 200000 -> leaves: ceil(sqrt(ceil(200000/25)))^2 = 90^2 = 8100
  //   level 1:     ceil(sqrt(ceil(8100/34))) = 16, then the grouping
  //                fix-up (ceil(90/P1)^2 must fit 34 branches) raises it
  //                to 18;
  //   level 2:     ceil(sqrt(ceil(324/68))) = 3 after its own fix-up
  //                (ceil(18/2)^2 = 81 > 68 forces P2 = 3);
  //   level 3:     collapses to 1 -> implicit root over 3x3 cells.
  Histogram h = UniformHist(Interval(0, 100000));
  SpecBuilderParams params;
  params.expected_tuples = 200000;
  params.leaf_fanout = 25;
  params.branch_fanout = [](int level) -> size_t {
    const size_t bytes = 1024u << std::min(level, 7);
    return static_cast<size_t>((2.0 / 3.0) * (bytes - 8) / 40);
  };
  const auto spec = BuildSkeletonSpec(params, h, h);
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->levels.size(), 3u);
  EXPECT_EQ(spec->levels[0].x_bounds.size(), 91u);  // 90 partitions.
  EXPECT_EQ(spec->levels[1].x_bounds.size(), 19u);  // 18 partitions.
  EXPECT_EQ(spec->levels[2].x_bounds.size(), 4u);   // 3 partitions.
}

TEST(SpecBuilderTest, SkewedHistogramSkewsLeafCells) {
  Histogram hx = UniformHist(Interval(0, 100000));
  Histogram hy = UniformHist(Interval(0, 100000));
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    hx.Add(rng.Uniform(0, 100000));
    hy.Add(rng.Exponential(7000, 100000));  // Mass near zero.
  }
  const auto spec = BuildSkeletonSpec(PaperParams(100000), hx, hy);
  ASSERT_TRUE(spec.ok());
  const std::vector<Coord>& yb = spec->levels[0].y_bounds;
  // First cells narrow, last cells wide — the paper's Figure 6 shape.
  const Coord first = yb[1] - yb[0];
  const Coord last = yb[yb.size() - 1] - yb[yb.size() - 2];
  EXPECT_LT(first * 10, last);
}

TEST(SpecBuilderTest, BoundariesStrictlyIncreasingEverywhere) {
  Histogram hx = UniformHist(Interval(0, 100000));
  Histogram hy = UniformHist(Interval(0, 100000));
  // Extremely clumped data.
  for (int i = 0; i < 10000; ++i) {
    hx.Add(500.0);
    hy.Add(99999.0);
  }
  const auto spec = BuildSkeletonSpec(PaperParams(50000), hx, hy);
  ASSERT_TRUE(spec.ok());
  for (const rtree::SkeletonLevel& level : spec->levels) {
    for (const std::vector<Coord>* bounds :
         {&level.x_bounds, &level.y_bounds}) {
      for (size_t i = 1; i < bounds->size(); ++i) {
        ASSERT_GT((*bounds)[i], (*bounds)[i - 1]);
      }
    }
  }
}

}  // namespace
}  // namespace segidx::skeleton
