// Smoke coverage for the end-to-end serving chaos torture (ISSUE 10).
// A scaled-down run — real server, real sockets, fault-injected transport
// and block device, one crash+restart cycle — must converge with zero
// lost, duplicated, or resurrected acked writes. The full-size sweep runs
// via `segidx torture --mode=serve` in CI's chaos-serving job.

#include <string>

#include <gtest/gtest.h>

#include "core/interval_index.h"
#include "torture/serve_torture.h"

namespace segidx {
namespace {

std::string Joined(const std::vector<std::string>& failures) {
  std::string out;
  for (const std::string& f : failures) out += f + "\n";
  return out;
}

TEST(ServeTortureTest, ChaosAndCrashRoundsConverge) {
  torture::ServeTortureOptions options;
  options.writers = 2;
  options.readers = 1;
  options.ops_per_writer = 40;
  options.chaos_rounds = 1;
  options.crash_rounds = 1;
  options.crashes_per_round = 1;
  options.seed = 4242;
  const auto report = torture::RunServeTorture(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << Joined(report->failures);
  EXPECT_EQ(report->rounds_run, 2u);
  EXPECT_EQ(report->server_crashes, 1u);
  EXPECT_GE(report->acked_inserts, 1u);
}

// A quieter network still has to converge — and with one writer and no
// faults at all, nothing may be in doubt.
TEST(ServeTortureTest, FaultFreeRunHasNoUnresolvedOps) {
  torture::ServeTortureOptions options;
  options.writers = 1;
  options.readers = 0;
  options.ops_per_writer = 30;
  options.chaos_rounds = 1;
  options.crash_rounds = 0;
  options.reset_prob = 0.0;
  options.short_write_prob = 0.0;
  options.delay_prob = 0.0;
  options.seed = 7;
  const auto report = torture::RunServeTorture(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << Joined(report->failures);
  EXPECT_EQ(report->unresolved_ops, 0u);
  EXPECT_EQ(report->transport_faults, 0u);
}

// Skeleton kinds keep acked records in a build-phase buffer the oracle
// cannot see; the harness must refuse them rather than report bogus loss.
TEST(ServeTortureTest, SkeletonKindsAreRejected) {
  torture::ServeTortureOptions options;
  options.kind = core::IndexKind::kSkeletonRTree;
  const auto report = torture::RunServeTorture(options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace segidx
