// Randomized mixed-operation fuzzing: long interleaved sequences of
// inserts (points, segments, rectangles, degenerate shapes, extreme
// coordinates), searches, deletions (plain R-Tree), flushes, and
// coalescing passes, cross-checked against the naive oracle with periodic
// full invariant validation. Seeds are fixed: failures reproduce exactly.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/interval_index.h"
#include "oracle/naive_oracle.h"

namespace segidx {
namespace {

using core::IndexKind;
using core::IndexOptions;
using core::IntervalIndex;
using oracle::NaiveOracle;

Rect RandomShape(Rng& rng) {
  const double roll = rng.NextDouble();
  const Coord x = rng.Uniform(-1000, 101000);  // Outside the skeleton
  const Coord y = rng.Uniform(-1000, 101000);  // domain on purpose.
  if (roll < 0.25) return Rect::Point(x, y);
  if (roll < 0.5) {
    return Rect::Segment1D(x, x + rng.Exponential(8000, 120000), y);
  }
  if (roll < 0.55) {
    // Extreme: domain-crossing monsters.
    return Rect(-5000, 105000, y, y + rng.Uniform(0, 50));
  }
  return Rect(x, x + rng.Exponential(3000, 60000), y,
              y + rng.Exponential(3000, 60000));
}

Rect RandomQuery(Rng& rng) {
  const double roll = rng.NextDouble();
  const Coord x = rng.Uniform(0, 100000);
  const Coord y = rng.Uniform(0, 100000);
  if (roll < 0.3) return Rect::Point(x, y);
  if (roll < 0.6) {
    return Rect(x, x + rng.Uniform(0, 3000), y, y + rng.Uniform(0, 3000));
  }
  if (roll < 0.8) return Rect(x, x + 10, -1e6, 1e6);  // Vertical stripe.
  return Rect(-1e6, 1e6, y, y + 10);                  // Horizontal stripe.
}

class FuzzTest : public testing::TestWithParam<std::tuple<IndexKind, int>> {
};

TEST_P(FuzzTest, MixedOperationsAgainstOracle) {
  const IndexKind kind = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  Rng rng(static_cast<uint64_t>(seed) * 1000003);

  IndexOptions options;
  options.skeleton.expected_tuples = 3000;
  options.skeleton.prediction_sample = 200;
  options.skeleton.coalesce_interval = 300;
  auto index = IntervalIndex::CreateInMemory(kind, options).value();
  NaiveOracle oracle;

  std::vector<std::pair<Rect, TupleId>> live;
  TupleId next_tid = 0;
  const bool can_delete = kind == IndexKind::kRTree;

  for (int step = 0; step < 4000; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.70 || live.empty()) {
      const Rect r = RandomShape(rng);
      ASSERT_TRUE(index->Insert(r, next_tid).ok()) << step;
      oracle.Insert(r, next_tid);
      live.emplace_back(r, next_tid);
      ++next_tid;
    } else if (roll < 0.78 && can_delete) {
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, live.size() - 1));
      ASSERT_TRUE(index->Delete(live[pick].first, live[pick].second).ok())
          << step;
      ASSERT_TRUE(oracle.Delete(live[pick].first, live[pick].second));
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      const Rect q = RandomQuery(rng);
      std::vector<TupleId> tids;
      ASSERT_TRUE(index->SearchTuples(q, &tids).ok()) << step;
      std::sort(tids.begin(), tids.end());
      ASSERT_EQ(tids, oracle.Search(q)) << "step " << step << " query "
                                        << q.ToString();
    }
    if (step % 1000 == 999) {
      ASSERT_TRUE(index->CheckInvariants().ok()) << step;
    }
  }
  ASSERT_TRUE(index->Finalize().ok());
  ASSERT_TRUE(index->CheckInvariants().ok());
  EXPECT_EQ(index->size(), live.size());
}

std::string FuzzName(
    const testing::TestParamInfo<std::tuple<IndexKind, int>>& info) {
  std::string name = core::IndexKindName(std::get<0>(info.param));
  for (char& c : name) {
    if (c == ' ' || c == '-') c = '_';
  }
  return name + "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, FuzzTest,
    testing::Combine(testing::Values(IndexKind::kRTree, IndexKind::kSRTree,
                                     IndexKind::kSkeletonRTree,
                                     IndexKind::kSkeletonSRTree),
                     testing::Values(1, 2, 3)),
    FuzzName);

// File-backed fuzz with a tiny buffer pool: the same mixed workload must
// survive constant eviction and several flush/reopen cycles.
TEST(FuzzTest, FileBackedWithTinyPoolAndReopen) {
  const std::string path = testing::TempDir() + "/fuzz_file_idx";
  std::remove(path.c_str());
  Rng rng(99);
  IndexOptions options;
  options.skeleton.expected_tuples = 2000;
  options.skeleton.prediction_sample = 100;
  options.pager.buffer_pool_bytes = 16 * 1024;  // ~16 leaf pages.
  NaiveOracle oracle;
  TupleId next_tid = 0;

  auto index = IntervalIndex::CreateOnDisk(IndexKind::kSkeletonSRTree, path,
                                           options)
                   .value();
  uint64_t total_evictions = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (int step = 0; step < 500; ++step) {
      const Rect r = RandomShape(rng);
      ASSERT_TRUE(index->Insert(r, next_tid).ok());
      oracle.Insert(r, next_tid);
      ++next_tid;
    }
    for (int probe = 0; probe < 50; ++probe) {
      const Rect q = RandomQuery(rng);
      std::vector<TupleId> tids;
      ASSERT_TRUE(index->SearchTuples(q, &tids).ok());
      std::sort(tids.begin(), tids.end());
      ASSERT_EQ(tids, oracle.Search(q)) << cycle << "/" << probe;
    }
    total_evictions += index->storage_stats().evictions;
    ASSERT_TRUE(index->Flush().ok());
    auto reopened = IntervalIndex::OpenFromDisk(path, options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    index = std::move(reopened).value();
  }
  EXPECT_GT(total_evictions, 0u);
  ASSERT_TRUE(index->CheckInvariants().ok());
  EXPECT_EQ(index->size(), 2000u);
}

}  // namespace
}  // namespace segidx
