#include "srtree/srtree.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "oracle/naive_oracle.h"
#include "storage/block_device.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace segidx::srtree {
namespace {

using oracle::NaiveOracle;
using rtree::RTree;
using rtree::SearchHit;
using rtree::SplitAlgorithm;
using rtree::TreeOptions;
using test_util::MakeMemoryPager;
using test_util::Tids;

std::unique_ptr<SRTree> MakeTree(storage::Pager* pager,
                                 TreeOptions options = TreeOptions()) {
  auto result = SRTree::Create(pager, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(SRTreeTest, CapacitiesReserveBranchFraction) {
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  // 2 KB node at level 1: 2040 entry bytes. Byte capacity allows 51
  // branches (40 B each); the skeleton planner reserves 2/3 for branches
  // (34) and the remaining third bounds spanning records (14 x 48 B).
  EXPECT_EQ(tree->BranchCapacity(1), 51u);
  EXPECT_EQ(tree->BranchPlanningCapacity(1), 34u);
  EXPECT_EQ(tree->SpanningCapacity(1), 14u);
  EXPECT_EQ(tree->LeafCapacity(), 25u);
  EXPECT_TRUE(tree->spanning_enabled());
}

TEST(SRTreeTest, CreateRejectsFullBranchFraction) {
  auto pager = MakeMemoryPager();
  TreeOptions options;
  options.branch_fraction = 1.0;  // No room for spanning records.
  EXPECT_FALSE(SRTree::Create(pager.get(), options).ok());
}

TEST(SRTreeTest, DeleteIsUnimplemented) {
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  ASSERT_TRUE(tree->Insert(Rect(0, 1, 0, 1), 1).ok());
  EXPECT_EQ(tree->Delete(Rect(0, 1, 0, 1), 1).code(),
            StatusCode::kUnimplemented);
}

TEST(SRTreeTest, LongIntervalsBecomeSpanningRecords) {
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  Rng rng(5);
  // Many short segments to grow structure...
  for (int i = 0; i < 3000; ++i) {
    const Coord x = rng.Uniform(0, 100000);
    const Coord y = rng.Uniform(0, 100000);
    ASSERT_TRUE(
        tree->Insert(Rect::Segment1D(x, x + 50, y), 1000000 + i).ok());
  }
  EXPECT_EQ(tree->stats().spanning_placed, 0u);  // Short segments only.
  // ...then long segments that span leaf regions.
  for (int i = 0; i < 200; ++i) {
    const Coord y = rng.Uniform(0, 100000);
    ASSERT_TRUE(tree->Insert(Rect::Segment1D(0, 100000, y), i).ok());
  }
  EXPECT_GT(tree->stats().spanning_placed, 0u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST(SRTreeTest, SpanningRecordsAreFoundBySearch) {
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  NaiveOracle oracle;
  Rng rng(6);
  for (int i = 0; i < 4000; ++i) {
    const Coord x = rng.Uniform(0, 100000);
    const Coord y = rng.Uniform(0, 100000);
    const Rect r =
        Rect::Segment1D(x, x + rng.Exponential(20000, 100000), y);
    ASSERT_TRUE(tree->Insert(r, i).ok());
    oracle.Insert(r, i);
  }
  ASSERT_GT(tree->stats().spanning_placed, 0u);
  for (const Rect& query : workload::GenerateQueries(0.001, 1e6, 40, 9)) {
    std::vector<SearchHit> hits;
    ASSERT_TRUE(tree->Search(query, &hits).ok());
    EXPECT_EQ(Tids(hits), oracle.Search(query));
  }
}

TEST(SRTreeTest, CutRecordsRemainLogicallyWhole) {
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  NaiveOracle oracle;
  Rng rng(7);
  // Clustered short data forces tight node regions; very long segments
  // must then be cut against them.
  for (int i = 0; i < 4000; ++i) {
    const Coord x = rng.Uniform(0, 100000);
    const Coord y = rng.Uniform(0, 100000);
    const Rect r = Rect::Segment1D(x, x + 20, y);
    ASSERT_TRUE(tree->Insert(r, 100000 + i).ok());
    oracle.Insert(r, 100000 + i);
  }
  for (int i = 0; i < 300; ++i) {
    const Coord c = rng.Uniform(0, 100000);
    const Coord len = rng.Exponential(30000, 100000);
    const Rect r =
        Rect::Segment1D(c - len / 2, c + len / 2, rng.Uniform(0, 100000));
    ASSERT_TRUE(tree->Insert(r, i).ok());
    oracle.Insert(r, i);
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());

  // Every logical record is retrievable in full via any of its pieces.
  for (const Rect& query : workload::GenerateQueries(1, 1e6, 60, 17)) {
    std::vector<SearchHit> hits;
    ASSERT_TRUE(tree->Search(query, &hits).ok());
    EXPECT_EQ(Tids(hits), oracle.Search(query));
  }
}

struct SrOracleCase {
  workload::DatasetKind dataset;
  uint64_t count;
  uint64_t seed;
};

void PrintTo(const SrOracleCase& c, std::ostream* os) {
  *os << workload::DatasetKindName(c.dataset) << "_n" << c.count << "_s"
      << c.seed;
}

class SRTreeOracleTest : public testing::TestWithParam<SrOracleCase> {};

TEST_P(SRTreeOracleTest, SearchMatchesNaiveOracle) {
  const SrOracleCase& c = GetParam();
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  NaiveOracle oracle;

  workload::DatasetSpec spec;
  spec.kind = c.dataset;
  spec.count = c.count;
  spec.seed = c.seed;
  const std::vector<Rect> data = workload::GenerateDataset(spec);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data[i], i).ok());
    oracle.Insert(data[i], i);
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());

  for (double qar : {0.0001, 0.1, 1.0, 10.0, 10000.0}) {
    for (const Rect& query :
         workload::GenerateQueries(qar, 1e6, 20, c.seed + 123)) {
      std::vector<SearchHit> hits;
      ASSERT_TRUE(tree->Search(query, &hits).ok());
      EXPECT_EQ(Tids(hits), oracle.Search(query));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SRTreeOracleTest,
    testing::Values(SrOracleCase{workload::DatasetKind::kI1, 3000, 1},
                    SrOracleCase{workload::DatasetKind::kI2, 3000, 2},
                    SrOracleCase{workload::DatasetKind::kI3, 3000, 3},
                    SrOracleCase{workload::DatasetKind::kI3, 3000, 13},
                    SrOracleCase{workload::DatasetKind::kI4, 3000, 4},
                    SrOracleCase{workload::DatasetKind::kI4, 3000, 14},
                    SrOracleCase{workload::DatasetKind::kR1, 3000, 5},
                    SrOracleCase{workload::DatasetKind::kR2, 3000, 6},
                    SrOracleCase{workload::DatasetKind::kR2, 3000, 16},
                    SrOracleCase{workload::DatasetKind::kRC1, 3000, 7},
                    SrOracleCase{workload::DatasetKind::kRC2, 3000, 8},
                    SrOracleCase{workload::DatasetKind::kI3, 150, 9},
                    SrOracleCase{workload::DatasetKind::kR2, 40, 10}),
    testing::PrintToStringParamName());

TEST(SRTreeTest, ExercisesDemotionAndPromotionPaths) {
  // Point data keeps leaf regions compact, so full-width segments become
  // spanning records; continued point inserts then expand regions and node
  // splits shuffle branches, which must hit the demotion / relink /
  // promotion machinery. Guards against those paths silently dying.
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  Rng rng(99);
  TupleId tid = 0;
  for (int round = 0; round < 60; ++round) {
    for (int i = 0; i < 100; ++i) {
      const Coord x = rng.Uniform(0, 100000);
      const Coord y = rng.Uniform(0, 100000);
      ASSERT_TRUE(tree->Insert(Rect::Point(x, y), tid++).ok());
    }
    for (int i = 0; i < 10; ++i) {
      const Coord y = rng.Uniform(0, 100000);
      const Coord lo = rng.Uniform(0, 50000);
      ASSERT_TRUE(
          tree->Insert(Rect::Segment1D(lo, lo + 50000, y), tid++).ok());
    }
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  EXPECT_GT(tree->stats().spanning_placed, 0u);
  EXPECT_GT(tree->stats().promotions + tree->stats().demotions +
                tree->stats().relinks,
            0u);
}

TEST(SRTreeTest, OneDimensionalRuleLockData) {
  // Paper Section 2.2: variable-length intervals and point data mixed in a
  // single 1-D index (rule predicates over salaries).
  auto pager = MakeMemoryPager();
  auto tree = MakeTree(pager.get());
  NaiveOracle oracle;
  Rng rng(11);
  TupleId tid = 0;
  for (int i = 0; i < 1500; ++i) {
    Rect r;
    if (i % 3 == 0) {
      const Coord v = rng.Uniform(0, 200000);  // Point predicate.
      r = Rect::Segment1D(v, v);
    } else {
      const Coord lo = rng.Uniform(0, 150000);
      r = Rect::Segment1D(lo, lo + rng.Exponential(20000, 50000));
    }
    ASSERT_TRUE(tree->Insert(r, tid).ok());
    oracle.Insert(r, tid);
    ++tid;
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (int i = 0; i < 200; ++i) {
    const Coord v = rng.Uniform(0, 200000);
    const Rect stab = Rect::Segment1D(v, v);
    std::vector<SearchHit> hits;
    ASSERT_TRUE(tree->Search(stab, &hits).ok());
    EXPECT_EQ(Tids(hits), oracle.Search(stab));
  }
}

TEST(SRTreeTest, PersistsAcrossReopen) {
  const std::string path = testing::TempDir() + "/srtree_persist";
  std::remove(path.c_str());
  storage::PagerOptions pager_options;
  std::vector<Rect> data;
  {
    auto pager = storage::Pager::Create(
                     storage::FileBlockDevice::Open(path, true).value(),
                     pager_options)
                     .value();
    auto tree = MakeTree(pager.get());
    // Points (compact leaves) plus full-width segments (guaranteed
    // spanning records) so persistence covers the spanning machinery.
    Rng rng(33);
    for (int i = 0; i < 2200; ++i) {
      const Coord x = rng.Uniform(0, 100000);
      const Coord y = rng.Uniform(0, 100000);
      data.push_back(Rect::Point(x, y));
    }
    for (int i = 0; i < 300; ++i) {
      data.push_back(Rect::Segment1D(0, 100000, rng.Uniform(0, 100000)));
    }
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_TRUE(tree->Insert(data[i], i).ok());
    }
    EXPECT_GT(tree->stats().spanning_placed, 0u);
    ASSERT_TRUE(tree->SaveMeta().ok());
    ASSERT_TRUE(pager->Checkpoint().ok());
  }
  {
    auto pager = storage::Pager::Open(
                     storage::FileBlockDevice::Open(path, false).value(),
                     pager_options)
                     .value();
    // Opening as a plain R-Tree must be refused.
    EXPECT_FALSE(RTree::Open(pager.get()).ok());
    auto tree = SRTree::Open(pager.get()).value();
    EXPECT_EQ(tree->size(), 2500u);
    ASSERT_TRUE(tree->CheckInvariants().ok());
    NaiveOracle oracle;
    for (size_t i = 0; i < data.size(); ++i) oracle.Insert(data[i], i);
    for (const Rect& query : workload::GenerateQueries(0.01, 1e6, 30, 3)) {
      std::vector<SearchHit> hits;
      ASSERT_TRUE(tree->Search(query, &hits).ok());
      EXPECT_EQ(Tids(hits), oracle.Search(query));
    }
  }
}

TEST(SRTreeTest, WrongKindOpenIsRejected) {
  const std::string path = testing::TempDir() + "/srtree_wrong_kind";
  std::remove(path.c_str());
  storage::PagerOptions pager_options;
  {
    auto pager = storage::Pager::Create(
                     storage::FileBlockDevice::Open(path, true).value(),
                     pager_options)
                     .value();
    auto tree = RTree::Create(pager.get(), TreeOptions()).value();
    ASSERT_TRUE(tree->Insert(Rect(0, 1, 0, 1), 1).ok());
    ASSERT_TRUE(tree->SaveMeta().ok());
    ASSERT_TRUE(pager->Checkpoint().ok());
  }
  auto pager = storage::Pager::Open(
                   storage::FileBlockDevice::Open(path, false).value(),
                   pager_options)
                   .value();
  EXPECT_FALSE(SRTree::Open(pager.get()).ok());
}

TEST(SRTreeTest, LinearSplitVariantMatchesOracle) {
  auto pager = MakeMemoryPager();
  TreeOptions options;
  options.split_algorithm = SplitAlgorithm::kLinear;
  auto tree = MakeTree(pager.get(), options);
  NaiveOracle oracle;
  workload::DatasetSpec spec;
  spec.kind = workload::DatasetKind::kI4;
  spec.count = 2500;
  spec.seed = 55;
  const std::vector<Rect> data = workload::GenerateDataset(spec);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data[i], i).ok());
    oracle.Insert(data[i], i);
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (const Rect& query : workload::GenerateQueries(1, 1e6, 40, 21)) {
    std::vector<SearchHit> hits;
    ASSERT_TRUE(tree->Search(query, &hits).ok());
    EXPECT_EQ(Tids(hits), oracle.Search(query));
  }
}

TEST(SRTreeTest, FixedNodeSizeVariantMatchesOracle) {
  auto pager = MakeMemoryPager();
  TreeOptions options;
  options.double_node_size_per_level = false;  // Ablation configuration.
  auto tree = MakeTree(pager.get(), options);
  NaiveOracle oracle;
  workload::DatasetSpec spec;
  spec.kind = workload::DatasetKind::kR2;
  spec.count = 2500;
  spec.seed = 66;
  const std::vector<Rect> data = workload::GenerateDataset(spec);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data[i], i).ok());
    oracle.Insert(data[i], i);
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (const Rect& query : workload::GenerateQueries(1, 1e6, 40, 22)) {
    std::vector<SearchHit> hits;
    ASSERT_TRUE(tree->Search(query, &hits).ok());
    EXPECT_EQ(Tids(hits), oracle.Search(query));
  }
}

}  // namespace
}  // namespace segidx::srtree
