// Integration tests for the segidxd serving layer: a real server::Server
// on a loopback socket, driven by real server::Client connections.
// Covers the acceptance contract of the serving PR: concurrent search and
// write clients agree with a serial oracle, an expired deadline fails the
// request without killing its connection, quotas shed pipelined overload,
// malformed frames drop only the offending connection, and committed
// writes survive a reopen.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/interval_index.h"
#include "gtest/gtest.h"
#include "oracle/naive_oracle.h"
#include "server/client.h"
#include "server/faulty_transport.h"
#include "server/retrying_client.h"
#include "server/server.h"

namespace segidx {
namespace {

using core::IndexKind;
using core::IndexOptions;
using core::IntervalIndex;
using server::Client;
using server::Server;
using server::ServerOptions;

Rect RandomInterval(Rng* rng) {
  const double s = rng->Uniform(0.0, 1000.0);
  return Rect(Interval(s, s + rng->Uniform(0.5, 30.0)),
              Interval::Point(rng->Uniform(0.0, 1000.0)));
}

std::vector<TupleId> SortedTids(const std::vector<rtree::SearchHit>& hits) {
  std::vector<TupleId> tids;
  tids.reserve(hits.size());
  for (const rtree::SearchHit& hit : hits) tids.push_back(hit.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  return tids;
}

std::unique_ptr<IntervalIndex> MakeIndex() {
  auto created =
      IntervalIndex::CreateInMemory(IndexKind::kRTree, IndexOptions());
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return std::move(created).value();
}

TEST(ServerTest, StartStopHealthAndStats) {
  auto index = MakeIndex();
  Server server(index.get(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto health = (*client)->Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_NE(health->find("\"status\": \"ok\""), std::string::npos) << *health;
  EXPECT_NE(health->find("\"quarantined_pages\""), std::string::npos);
  EXPECT_NE(health->find("\"scrub\""), std::string::npos);
  EXPECT_NE(health->find("\"search_queue_depth\""), std::string::npos);

  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (const char* field :
       {"\"searches\"", "\"batches\"", "\"shed_queue_full\"",
        "\"deadline_expired\"", "\"commit_requests\"",
        "\"gate_read_enters\"", "\"pages_quarantined\""}) {
    EXPECT_NE(stats->find(field), std::string::npos)
        << "missing " << field << " in " << *stats;
  }
  server.Stop();
}

// The headline guarantee: N insert clients and M search clients hammering
// the server concurrently, then every query answered over the settled
// index matches a serial oracle exactly.
TEST(ServerTest, ConcurrentClientsMatchOracle) {
  auto index = MakeIndex();
  ServerOptions options;
  options.commit_every = 64;
  options.max_batch = 16;
  Server server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  constexpr int kWriters = 4;
  constexpr int kSearchers = 2;
  constexpr uint64_t kPerWriter = 300;

  // Deterministic per-writer workloads, mirrored into the oracle.
  std::vector<std::vector<std::pair<Rect, TupleId>>> workloads(kWriters);
  oracle::NaiveOracle oracle;
  for (int w = 0; w < kWriters; ++w) {
    Rng rng(1000 + static_cast<uint64_t>(w));
    for (uint64_t i = 0; i < kPerWriter; ++i) {
      const Rect rect = RandomInterval(&rng);
      const TupleId tid = static_cast<TupleId>(w) * kPerWriter + i + 1;
      workloads[static_cast<size_t>(w)].emplace_back(rect, tid);
      oracle.Insert(rect, tid);
    }
  }

  std::atomic<bool> stop_searching{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto client = Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (const auto& [rect, tid] : workloads[static_cast<size_t>(w)]) {
        if (!(*client)->Insert(rect, tid).ok()) {
          ++failures;
          return;
        }
      }
      if (!(*client)->Commit().ok()) ++failures;
    });
  }
  // Searchers run concurrently with the writers; their results are
  // transient (the snapshot moves) so only protocol health is asserted.
  for (int s = 0; s < kSearchers; ++s) {
    threads.emplace_back([&, s] {
      auto client = Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        ++failures;
        return;
      }
      Rng rng(77 + static_cast<uint64_t>(s));
      while (!stop_searching.load()) {
        const double x = rng.Uniform(0.0, 900.0);
        const double y = rng.Uniform(0.0, 900.0);
        server::SearchReply reply;
        if (!(*client)->Search(Rect(x, x + 80, y, y + 80), &reply).ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop_searching.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  ASSERT_EQ(failures.load(), 0);

  // Settled: every query matches the oracle.
  auto client = Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  Rng rng(424242);
  for (int q = 0; q < 50; ++q) {
    const double x = rng.Uniform(0.0, 900.0);
    const double y = rng.Uniform(0.0, 900.0);
    const Rect query(x, x + 100, y, y + 100);
    server::SearchReply reply;
    ASSERT_TRUE((*client)->Search(query, &reply).ok());
    EXPECT_FALSE(reply.partial);
    EXPECT_EQ(SortedTids(reply.hits), oracle.Search(query)) << "query " << q;
  }
  server.Stop();
  EXPECT_EQ(index->size(), kWriters * kPerWriter);
}

TEST(ServerTest, DeleteIsServed) {
  auto index = MakeIndex();
  Server server(index.get(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  const Rect rect(10, 20, 5, 5);
  ASSERT_TRUE((*client)->Insert(rect, 7).ok());
  ASSERT_TRUE((*client)->Insert(Rect(50, 60, 5, 5), 8).ok());
  server::SearchReply reply;
  ASSERT_TRUE((*client)->Search(Rect(0, 100, 0, 10), &reply).ok());
  EXPECT_EQ(reply.hits.size(), 2u);

  ASSERT_TRUE((*client)->Delete(rect, 7).ok());
  ASSERT_TRUE((*client)->Search(Rect(0, 100, 0, 10), &reply).ok());
  ASSERT_EQ(reply.hits.size(), 1u);
  EXPECT_EQ(reply.hits[0].tid, 8u);
  server.Stop();
}

// A request whose budget expires while queued is answered
// kDeadlineExceeded — and the connection stays healthy for the next
// request.
TEST(ServerTest, ExpiredDeadlineFailsRequestNotConnection) {
  auto index = MakeIndex();
  ServerOptions options;
  // Test hook: every batch waits 20ms between dequeue and the admission
  // deadline check, so a 1us budget reliably expires in the queue.
  options.admission_delay_us = 20000;
  Server server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE((*client)->Insert(Rect(10, 20, 5, 5), 1).ok());

  server::SearchReply reply;
  const Status expired =
      (*client)->Search(Rect(0, 100, 0, 10), &reply, /*budget_us=*/1);
  EXPECT_EQ(expired.code(), StatusCode::kDeadlineExceeded)
      << expired.ToString();

  // Same connection, no budget: must succeed.
  ASSERT_TRUE((*client)->Search(Rect(0, 100, 0, 10), &reply).ok());
  EXPECT_EQ(reply.hits.size(), 1u);

  const auto stats = server.stats_snapshot();
  EXPECT_GE(stats.deadline_expired, 1u);
  server.Stop();
}

// Pipelining more requests than the per-connection quota gets the excess
// shed with kResourceExhausted while the admitted ones still complete.
TEST(ServerTest, PerConnectionQuotaShedsPipelinedOverload) {
  auto index = MakeIndex();
  ServerOptions options;
  options.max_inflight_per_conn = 2;
  // Slow the dispatcher so the pipelined burst is all in flight at once.
  options.admission_delay_us = 30000;
  Server server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE((*client)->SendSearch(Rect(0, 10, 0, 10)).ok());
  }
  int ok = 0, shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    server::Response resp;
    ASSERT_TRUE((*client)->ReadResponse(&resp).ok());
    if (resp.code == StatusCode::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(resp.code, StatusCode::kResourceExhausted)
          << resp.ToStatus().ToString();
      ++shed;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  EXPECT_GE(server.stats_snapshot().shed_quota, static_cast<uint64_t>(shed));

  // The connection is still usable after being shed.
  server::SearchReply reply;
  EXPECT_TRUE((*client)->Search(Rect(0, 10, 0, 10), &reply).ok());
  server.Stop();
}

// A malformed frame kills only the offending connection; the server and
// other connections keep serving.
TEST(ServerTest, MalformedFrameDropsConnectionOnly) {
  auto index = MakeIndex();
  Server server(index.get(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Length 3, unknown type 0xee: a protocol violation.
  const uint8_t garbage[] = {3, 0, 0, 0, 0xee, 0x01, 0x02};
  ASSERT_EQ(write(fd, garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));
  uint8_t byte = 0;
  EXPECT_EQ(read(fd, &byte, 1), 0);  // Server closed the connection.
  close(fd);

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto health = (*client)->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_GE(server.stats_snapshot().protocol_errors, 1u);
  server.Stop();
}

// Writes acknowledged after an explicit commit survive stopping the
// server, closing the index, and reopening the file.
TEST(ServerTest, CommittedWritesSurviveReopen) {
  const std::string path =
      testing::TempDir() + "/segidx_server_commit_test.idx";
  std::remove(path.c_str());
  auto created =
      IntervalIndex::CreateOnDisk(IndexKind::kRTree, path, IndexOptions());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto index = std::move(created).value();

  {
    Server server(index.get(), ServerOptions());
    ASSERT_TRUE(server.Start().ok());
    auto client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    for (TupleId tid = 1; tid <= 20; ++tid) {
      ASSERT_TRUE((*client)
                      ->Insert(Rect(Interval(10.0 * static_cast<double>(tid),
                                             10.0 * static_cast<double>(tid) +
                                                 5.0),
                                    Interval::Point(1.0)),
                               tid)
                      .ok());
    }
    ASSERT_TRUE((*client)->Commit().ok());
    server.Stop();
  }
  ASSERT_TRUE(index->Close().ok());
  index.reset();

  auto reopened = IntervalIndex::OpenFromDisk(path, IndexOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 20u);
  std::vector<TupleId> tids;
  ASSERT_TRUE((*reopened)->SearchTuples(Rect(0, 1000, 0, 10), &tids).ok());
  EXPECT_EQ(tids.size(), 20u);
  std::remove(path.c_str());
}

// Resending the same (session, seq) — what a RetryingClient does after a
// lost ack — is answered from the dedup window, not re-applied.
TEST(ServerTest, SessionDedupReplaysDuplicateWrites) {
  auto index = MakeIndex();
  Server server(index.get(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  constexpr uint64_t kSession = 42;
  const Rect rect(10, 20, 5, 5);
  ASSERT_TRUE((*client)->Insert(rect, 7, kSession, /*seq=*/1).ok());
  EXPECT_EQ(index->size(), 1u);

  // The retry: same session and seq, acked OK, applied zero more times.
  ASSERT_TRUE((*client)->Insert(rect, 7, kSession, /*seq=*/1).ok());
  EXPECT_EQ(index->size(), 1u);
  EXPECT_GE(server.stats_snapshot().dedup_hits, 1u);

  // A Hello reports the session's resolved high-water mark.
  server::HelloReply hello{};
  ASSERT_TRUE((*client)->Hello(kSession, &hello).ok());
  EXPECT_EQ(hello.last_seq, 1u);

  // Fresh seq: applied normally.
  ASSERT_TRUE((*client)->Insert(Rect(50, 60, 5, 5), 8, kSession, 2).ok());
  EXPECT_EQ(index->size(), 2u);
  server.Stop();
}

// The dedup window rides inside every checkpoint: after a graceful stop
// and a reopen, a new server still recognizes the old session's seqs.
TEST(ServerTest, DedupWindowSurvivesRestart) {
  const std::string path =
      testing::TempDir() + "/segidx_server_dedup_restart.idx";
  std::remove(path.c_str());
  auto created =
      IntervalIndex::CreateOnDisk(IndexKind::kRTree, path, IndexOptions());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto index = std::move(created).value();

  constexpr uint64_t kSession = 9000;
  {
    Server server(index.get(), ServerOptions());
    ASSERT_TRUE(server.Start().ok());
    auto client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->Insert(Rect(10, 20, 5, 5), 1, kSession, 1).ok());
    ASSERT_TRUE((*client)->Insert(Rect(30, 40, 5, 5), 2, kSession, 2).ok());
    ASSERT_TRUE((*client)->Commit(kSession, 3).ok());
    server.Stop();
  }
  ASSERT_TRUE(index->Close().ok());
  index.reset();

  auto reopened = IntervalIndex::OpenFromDisk(path, IndexOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  index = std::move(reopened).value();
  Server server(index.get(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // Hello resumes the session where the old server left it...
  server::HelloReply hello{};
  ASSERT_TRUE((*client)->Hello(kSession, &hello).ok());
  EXPECT_EQ(hello.last_seq, 3u);

  // ...and a replay of a pre-restart seq is acked without re-applying.
  ASSERT_TRUE((*client)->Insert(Rect(10, 20, 5, 5), 1, kSession, 1).ok());
  EXPECT_EQ(index->size(), 2u);
  EXPECT_GE(server.stats_snapshot().dedup_hits, 1u);
  server.Stop();
  std::remove(path.c_str());
}

// Connections idle past idle_timeout_ms are reaped by the I/O thread;
// active ones are not.
TEST(ServerTest, IdleConnectionsAreReaped) {
  auto index = MakeIndex();
  ServerOptions options;
  options.idle_timeout_ms = 50;
  Server server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  server::SearchReply reply;
  ASSERT_TRUE((*client)->Search(Rect(0, 10, 0, 10), &reply).ok());

  // Go idle; the I/O loop (500ms epoll tick) must reap us.
  uint64_t reaped = 0;
  for (int i = 0; i < 100 && reaped == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    reaped = server.stats_snapshot().idle_reaped;
  }
  EXPECT_GE(reaped, 1u);

  // The reaped connection is dead; a fresh one works.
  EXPECT_FALSE((*client)->Search(Rect(0, 10, 0, 10), &reply).ok());
  auto fresh = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE((*fresh)->Search(Rect(0, 10, 0, 10), &reply).ok());
  server.Stop();
}

// A minimal hand-rolled "server" for client failure-path tests: accepts
// one connection and hands the fd to the test.
class OneShotListener {
 public:
  OneShotListener() {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
              0);
    EXPECT_EQ(listen(listen_fd_, 1), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(
        getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len),
        0);
    port_ = ntohs(addr.sin_port);
  }
  ~OneShotListener() {
    if (conn_fd_ >= 0) close(conn_fd_);
    if (listen_fd_ >= 0) close(listen_fd_);
  }
  uint16_t port() const { return port_; }
  int Accept() {
    conn_fd_ = accept(listen_fd_, nullptr, nullptr);
    EXPECT_GE(conn_fd_, 0);
    return conn_fd_;
  }
  void CloseConn() {
    if (conn_fd_ >= 0) close(conn_fd_);
    conn_fd_ = -1;
  }

 private:
  int listen_fd_ = -1;
  int conn_fd_ = -1;
  uint16_t port_ = 0;
};

// The peer dying mid-round-trip (request sent, no response will come)
// surfaces promptly as kIoError — not a hang, not a success.
TEST(ClientFailureTest, ServerDeathMidRoundTripIsPromptIoError) {
  OneShotListener listener;
  auto connected = Client::Connect("127.0.0.1", listener.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  auto client = std::move(connected).value();
  const int conn = listener.Accept();

  // Read the request off the wire, then die without answering.
  const auto t0 = std::chrono::steady_clock::now();
  std::thread killer([&] {
    uint8_t buf[256];
    (void)read(conn, buf, sizeof(buf));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    listener.CloseConn();
  });
  server::SearchReply reply;
  const Status st = client->Search(Rect(0, 10, 0, 10), &reply);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  killer.join();

  EXPECT_EQ(st.code(), StatusCode::kIoError) << st.ToString();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
}

// A response whose request_id does not match the request means the stream
// is desynchronized; the client reports kCorruption instead of returning
// someone else's answer.
TEST(ClientFailureTest, MismatchedRequestIdIsRejected) {
  OneShotListener listener;
  auto connected = Client::Connect("127.0.0.1", listener.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  auto client = std::move(connected).value();
  const int conn = listener.Accept();

  std::thread responder([&] {
    // Read the request frame: u32 length prefix, then payload whose first
    // 9 bytes are type + request_id (LE).
    uint8_t len_buf[4];
    size_t got = 0;
    while (got < 4) {
      const ssize_t n = read(conn, len_buf + got, 4 - got);
      ASSERT_GT(n, 0);
      got += static_cast<size_t>(n);
    }
    const uint32_t len = static_cast<uint32_t>(len_buf[0]) |
                         (static_cast<uint32_t>(len_buf[1]) << 8) |
                         (static_cast<uint32_t>(len_buf[2]) << 16) |
                         (static_cast<uint32_t>(len_buf[3]) << 24);
    std::vector<uint8_t> payload(len);
    got = 0;
    while (got < len) {
      const ssize_t n = read(conn, payload.data() + got, len - got);
      ASSERT_GT(n, 0);
      got += static_cast<size_t>(n);
    }
    ASSERT_GE(len, 9u);
    // Echo a response that would be perfectly valid — type kSearch, OK
    // code, empty message, empty-but-well-formed search body — except its
    // request_id is off by one.
    uint64_t req_id = 0;
    for (int i = 0; i < 8; ++i) {
      req_id |= static_cast<uint64_t>(payload[1 + i]) << (8 * i);
    }
    const uint64_t wrong = req_id + 1;
    // Payload: u8 type, u64 request_id, u8 code, u32 msg_len, then the
    // search body (u8 partial, u64 nodes_accessed, u32 hit count).
    uint8_t resp[4 + 1 + 8 + 1 + 4 + 13] = {};
    resp[0] = 27;                 // Frame length (LE u32).
    resp[4] = 1;                  // MsgType::kSearch.
    for (int i = 0; i < 8; ++i) {
      resp[5 + i] = static_cast<uint8_t>(wrong >> (8 * i));
    }
    // code = kOk, msg_len = 0, search body all zeros: already in place.
    ASSERT_EQ(write(conn, resp, sizeof(resp)),
              static_cast<ssize_t>(sizeof(resp)));
  });
  server::SearchReply reply;
  const Status st = client->Search(Rect(0, 10, 0, 10), &reply);
  responder.join();
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
}

// RetryingClient against a real server through a hostile transport: every
// insert must eventually ack OK, and exactly-once must hold — N acked
// inserts leave exactly N records.
TEST(RetryingClientTest, ExactlyOnceUnderTransportFaults) {
  auto index = MakeIndex();
  Server server(index.get(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());

  server::transport::FaultPlan plan;
  plan.reset_prob = 0.05;
  plan.short_write_prob = 0.03;
  plan.delay_prob = 0.02;
  plan.max_delay_us = 200;
  plan.seed = 99;
  server::transport::InstallFaultPlan(plan);

  constexpr uint64_t kInserts = 60;
  {
    server::RetryPolicy policy;
    policy.max_attempts = 0;  // Deadline-only: ride out every fault.
    policy.total_deadline_ms = 30000;
    policy.seed = 3;
    server::RetryingClient rc("127.0.0.1", server.port(), /*session_id=*/7,
                              policy);
    Rng rng(55);
    for (uint64_t i = 1; i <= kInserts; ++i) {
      const Status st = rc.Insert(RandomInterval(&rng), i);
      ASSERT_TRUE(st.ok()) << "insert " << i << ": " << st.ToString();
    }
    ASSERT_TRUE(rc.Commit().ok());
  }
  server::transport::ClearFaultPlan();

  server.Stop();
  EXPECT_EQ(index->size(), kInserts);
  std::vector<TupleId> tids;
  ASSERT_TRUE(index->SearchTuples(Rect(-1e6, 1e6, -1e6, 1e6), &tids).ok());
  std::sort(tids.begin(), tids.end());
  ASSERT_EQ(tids.size(), kInserts);  // No duplicates: dedup held.
  for (uint64_t i = 1; i <= kInserts; ++i) EXPECT_EQ(tids[i - 1], i);
}

}  // namespace
}  // namespace segidx
